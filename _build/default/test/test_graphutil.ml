(* Graph algorithms: unit tests on known graphs plus properties
   validated against brute-force reachability on random graphs. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_scc_diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: all singletons. *)
  let g = Graphutil.make 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let comp, members = Graphutil.scc g in
  check_int "four components" 4 (Array.length members);
  (* Edges go from larger to smaller component index. *)
  check_bool "0 after 1" true (comp.(0) > comp.(1));
  check_bool "1 after 3" true (comp.(1) > comp.(3));
  check_bool "2 after 3" true (comp.(2) > comp.(3))

let test_scc_cycle () =
  let g = Graphutil.make 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 3) ] in
  let comp, members = Graphutil.scc g in
  check_int "two components" 2 (Array.length members);
  check_bool "0,1,2 together" true (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  check_bool "3,4 together" true (comp.(3) = comp.(4));
  check_bool "cycle before its target" true (comp.(0) > comp.(3))

let test_scc_self_loop () =
  let g = Graphutil.make 2 [ (0, 0); (0, 1) ] in
  let comp, members = Graphutil.scc g in
  check_int "two components" 2 (Array.length members);
  check_bool "distinct" true (comp.(0) <> comp.(1))

let test_topo () =
  let g = Graphutil.make 4 [ (3, 1); (1, 0); (3, 2); (2, 0) ] in
  let order = Graphutil.topo_order g in
  let pos = Array.make 4 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  check_bool "3 before 1" true (pos.(3) < pos.(1));
  check_bool "1 before 0" true (pos.(1) < pos.(0));
  check_bool "2 before 0" true (pos.(2) < pos.(0))

let test_topo_cycle_rejected () =
  let g = Graphutil.make 2 [ (0, 1); (1, 0) ] in
  match Graphutil.topo_order g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected cycle rejection"

let test_condense () =
  let g = Graphutil.make 4 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ] in
  let comp, members = Graphutil.scc g in
  let c = Graphutil.condense g comp (Array.length members) in
  check_int "two condensed nodes" 2 c.Graphutil.n;
  let edges = Array.fold_left (fun acc l -> acc + List.length l) 0 c.Graphutil.succ in
  check_int "one condensed edge" 1 edges

let test_reachable () =
  let g = Graphutil.make 5 [ (0, 1); (1, 2); (3, 4) ] in
  let r = Graphutil.reachable g [ 0 ] in
  Alcotest.(check (array bool)) "from 0" [| true; true; true; false; false |] r;
  let r2 = Graphutil.reachable g [ 0; 3 ] in
  Alcotest.(check (array bool)) "from 0 and 3" [| true; true; true; true; true |] r2

(* --- Properties on random graphs --- *)

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 1 10 in
    let* edges = list_size (int_range 0 20) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
    return (n, edges))

(* Brute-force transitive reachability. *)
let reach_matrix n edges =
  let r = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    r.(i).(i) <- true
  done;
  List.iter (fun (a, b) -> r.(a).(b) <- true) edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if r.(i).(k) && r.(k).(j) then r.(i).(j) <- true
      done
    done
  done;
  r

let prop_scc_mutual_reachability =
  QCheck2.Test.make ~name:"same component iff mutually reachable" ~count:300 gen_graph (fun (n, edges) ->
      let g = Graphutil.make n edges in
      let comp, _ = Graphutil.scc g in
      let r = reach_matrix n edges in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let together = comp.(i) = comp.(j) in
          let mutual = r.(i).(j) && r.(j).(i) in
          if together <> mutual then ok := false
        done
      done;
      !ok)

let prop_scc_edge_order =
  QCheck2.Test.make ~name:"cross-component edges decrease component index" ~count:300 gen_graph (fun (n, edges) ->
      let g = Graphutil.make n edges in
      let comp, _ = Graphutil.scc g in
      List.for_all (fun (a, b) -> comp.(a) = comp.(b) || comp.(a) > comp.(b)) edges)

let prop_condensation_topo =
  QCheck2.Test.make ~name:"condensation is acyclic and topo-sortable" ~count:300 gen_graph (fun (n, edges) ->
      let g = Graphutil.make n edges in
      let comp, members = Graphutil.scc g in
      let c = Graphutil.condense g comp (Array.length members) in
      match Graphutil.topo_order c with
      | order -> List.length order = Array.length members
      | exception Invalid_argument _ -> false)

let prop_reachable_matches_matrix =
  QCheck2.Test.make ~name:"reachable agrees with brute force" ~count:300
    QCheck2.Gen.(pair gen_graph (int_range 0 9))
    (fun ((n, edges), seed) ->
      let seed = seed mod n in
      let g = Graphutil.make n edges in
      let r = Graphutil.reachable g [ seed ] in
      let m = reach_matrix n edges in
      Array.for_all (fun b -> b) (Array.init n (fun j -> r.(j) = m.(seed).(j))))

let () =
  Alcotest.run "graphutil"
    [
      ( "unit",
        [
          Alcotest.test_case "scc diamond" `Quick test_scc_diamond;
          Alcotest.test_case "scc cycle" `Quick test_scc_cycle;
          Alcotest.test_case "scc self loop" `Quick test_scc_self_loop;
          Alcotest.test_case "topo order" `Quick test_topo;
          Alcotest.test_case "topo rejects cycles" `Quick test_topo_cycle_rejected;
          Alcotest.test_case "condense" `Quick test_condense;
          Alcotest.test_case "reachable" `Quick test_reachable;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_scc_mutual_reachability; prop_scc_edge_order; prop_condensation_topo; prop_reachable_matches_matrix ] );
    ]
