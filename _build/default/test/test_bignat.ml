(* Bignat: differential tests against OCaml int arithmetic plus
   large-number regression cases (the paper's path counts reach
   5 x 10^23). *)

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let of_i = Bignat.of_int

let test_small_roundtrip () =
  List.iter
    (fun n -> check_str "to_string" (string_of_int n) (Bignat.to_string (of_i n)))
    [ 0; 1; 2; 9; 10; 99; 1023; 1024; 999_999_999; 1_000_000_000; max_int ]

let test_of_string () =
  List.iter
    (fun s -> check_str "of_string" s (Bignat.to_string (Bignat.of_string s)))
    [ "0"; "7"; "123456789012345678901234567890"; "500000000000000000000000" ];
  Alcotest.check_raises "empty" (Invalid_argument "Bignat.of_string: empty") (fun () -> ignore (Bignat.of_string ""));
  Alcotest.check_raises "non-digit" (Invalid_argument "Bignat.of_string: non-digit") (fun () ->
      ignore (Bignat.of_string "12x"))

let test_add_sub_known () =
  let a = Bignat.of_string "99999999999999999999" in
  let b = Bignat.of_string "1" in
  check_str "carry chain" "100000000000000000000" (Bignat.to_string (Bignat.add a b));
  check_str "sub" "99999999999999999998" (Bignat.to_string (Bignat.sub a b));
  check_str "saturating" "0" (Bignat.to_string (Bignat.sub b a))

let test_mul_known () =
  let a = Bignat.of_string "123456789" in
  let b = Bignat.of_string "987654321" in
  check_str "mul" "121932631112635269" (Bignat.to_string (Bignat.mul a b));
  check_str "mul by zero" "0" (Bignat.to_string (Bignat.mul a Bignat.zero))

let test_pow2_bits () =
  check_str "2^70" "1180591620717411303424" (Bignat.to_string (Bignat.pow2 70));
  check_int "num_bits 0" 0 (Bignat.num_bits Bignat.zero);
  check_int "num_bits 1" 1 (Bignat.num_bits Bignat.one);
  check_int "num_bits 2" 2 (Bignat.num_bits (of_i 2));
  check_int "num_bits 255" 8 (Bignat.num_bits (of_i 255));
  check_int "num_bits 256" 9 (Bignat.num_bits (of_i 256));
  check_int "num_bits 2^70" 71 (Bignat.num_bits (Bignat.pow2 70))

let test_to_int_opt () =
  check_bool "small fits" true (Bignat.to_int_opt (of_i 42) = Some 42);
  check_bool "max_int fits" true (Bignat.to_int_opt (of_i max_int) = Some max_int);
  check_bool "2^80 does not fit" true (Bignat.to_int_opt (Bignat.pow2 80) = None);
  check_bool "max_int+1 does not fit" true (Bignat.to_int_opt (Bignat.succ (of_i max_int)) = None)

let test_scientific () =
  check_str "exact small" "9999" (Bignat.to_scientific (of_i 9999));
  check_str "5e23" "5e23" (Bignat.to_scientific (Bignat.of_string "500000000000000000000000"));
  check_str "4e4" "4e4" (Bignat.to_scientific (of_i 40000))

let test_compare () =
  check_int "lt" (-1) (Bignat.compare (of_i 5) (of_i 9));
  check_int "eq" 0 (Bignat.compare (of_i 9) (of_i 9));
  check_int "limbs" 1 (Bignat.compare (Bignat.pow2 40) (of_i 7));
  check_bool "min" true (Bignat.equal (Bignat.min (of_i 3) (of_i 8)) (of_i 3));
  check_bool "max" true (Bignat.equal (Bignat.max (of_i 3) (of_i 8)) (of_i 8))

(* Property tests against int arithmetic (values kept small enough that
   int results do not overflow). *)
let small = QCheck2.Gen.int_range 0 1_000_000

let prop_add =
  QCheck2.Test.make ~name:"add agrees with int" ~count:500
    QCheck2.Gen.(pair small small)
    (fun (a, b) -> Bignat.to_string (Bignat.add (of_i a) (of_i b)) = string_of_int (a + b))

let prop_mul =
  QCheck2.Test.make ~name:"mul agrees with int" ~count:500
    QCheck2.Gen.(pair small small)
    (fun (a, b) -> Bignat.to_string (Bignat.mul (of_i a) (of_i b)) = string_of_int (a * b))

let prop_sub =
  QCheck2.Test.make ~name:"sub agrees with saturating int" ~count:500
    QCheck2.Gen.(pair small small)
    (fun (a, b) -> Bignat.to_string (Bignat.sub (of_i a) (of_i b)) = string_of_int (max 0 (a - b)))

let prop_shift =
  QCheck2.Test.make ~name:"shift_left agrees with lsl" ~count:500
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 20))
    (fun (a, k) -> Bignat.to_string (Bignat.shift_left (of_i a) k) = string_of_int (a lsl k))

let prop_roundtrip =
  QCheck2.Test.make ~name:"of_string . to_string = id" ~count:500
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 9))
    (fun digits ->
      let s = String.concat "" (List.map string_of_int digits) in
      let canonical = Bignat.to_string (Bignat.of_string s) in
      (* Only differs by leading zeros. *)
      Bignat.to_string (Bignat.of_string canonical) = canonical)

let prop_mul_commutative =
  QCheck2.Test.make ~name:"mul is commutative" ~count:300
    QCheck2.Gen.(pair small small)
    (fun (a, b) -> Bignat.equal (Bignat.mul (of_i a) (of_i b)) (Bignat.mul (of_i b) (of_i a)))

let prop_mul_distributes =
  QCheck2.Test.make ~name:"mul distributes over add" ~count:300
    QCheck2.Gen.(triple small small small)
    (fun (a, b, c) ->
      Bignat.equal
        (Bignat.mul (of_i a) (Bignat.add (of_i b) (of_i c)))
        (Bignat.add (Bignat.mul (of_i a) (of_i b)) (Bignat.mul (of_i a) (of_i c))))

let prop_num_bits_shift =
  QCheck2.Test.make ~name:"num_bits of n shifted" ~count:300
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 80))
    (fun (a, k) -> Bignat.num_bits (Bignat.shift_left (of_i a) k) = Bignat.num_bits (of_i a) + k)

let prop_compare_total =
  QCheck2.Test.make ~name:"compare agrees with int compare" ~count:500
    QCheck2.Gen.(pair small small)
    (fun (a, b) -> Bignat.compare (of_i a) (of_i b) = compare a b)

let () =
  Alcotest.run "bignat"
    [
      ( "unit",
        [
          Alcotest.test_case "small roundtrip" `Quick test_small_roundtrip;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "add/sub known" `Quick test_add_sub_known;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "pow2 and num_bits" `Quick test_pow2_bits;
          Alcotest.test_case "to_int_opt" `Quick test_to_int_opt;
          Alcotest.test_case "scientific notation" `Quick test_scientific;
          Alcotest.test_case "compare" `Quick test_compare;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add;
            prop_mul;
            prop_sub;
            prop_shift;
            prop_roundtrip;
            prop_compare_total;
            prop_mul_commutative;
            prop_mul_distributes;
            prop_num_bits_shift;
          ] );
    ]
