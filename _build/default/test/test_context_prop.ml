(* Property tests for Algorithm 4 on random call graphs.

   The reference is an independent implementation: components from a
   brute-force reachability matrix, and context counts from explicit
   forward enumeration of the reduced call paths (every distinct
   cross-component edge sequence from the root).  The production code
   uses Tarjan + a topological dynamic program + BDD range/offset
   primitives; agreement on random graphs checks all of it. *)

module Ir = Jir.Ir
module Context = Pta.Context
module Callgraph = Pta.Callgraph

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 1 8 in
    let* edges = list_size (int_range 0 12) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
    return (n, edges))

(* Build an IR program whose call graph is exactly the given one
   (method 0 is the entry). *)
let program_of (n, edges) =
  let p = Ir.create () in
  let g = Ir.add_class p ~name:"G" ~super:(Ir.object_class p) in
  let ms = Array.init n (fun i -> Ir.add_method p ~name:(Printf.sprintf "m%d" i) ~owner:g ~static:true ~formals:[] ~ret:None) in
  List.iter (fun (a, b) -> ignore (Ir.emit_invoke_static p ms.(a) ~target:ms.(b) ~args:[])) edges;
  Ir.add_entry p ms.(0);
  (p, ms)

(* Brute-force components: representative = smallest mutually
   reachable node. *)
let reference_components n edges =
  let r = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    r.(i).(i) <- true
  done;
  List.iter (fun (a, b) -> r.(a).(b) <- true) edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if r.(i).(k) && r.(k).(j) then r.(i).(j) <- true
      done
    done
  done;
  let comp = Array.init n (fun i ->
      let rep = ref i in
      for j = 0 to n - 1 do
        if r.(i).(j) && r.(j).(i) && j < !rep then rep := j
      done;
      !rep)
  in
  (comp, r)

exception Too_many_paths

(* Forward enumeration of reduced call paths from the root: arrivals at
   a component = its context count. *)
let reference_counts n edges =
  let comp, r = reference_components n edges in
  let reachable = Array.init n (fun i -> r.(0).(i)) in
  let cross =
    List.filter (fun (a, b) -> reachable.(a) && reachable.(b) && comp.(a) <> comp.(b)) edges
  in
  let arrivals = Hashtbl.create 8 in
  let budget = ref 20_000 in
  let rec visit c =
    decr budget;
    if !budget <= 0 then raise Too_many_paths;
    Hashtbl.replace arrivals c (1 + Option.value (Hashtbl.find_opt arrivals c) ~default:0);
    List.iter (fun (a, b) -> if comp.(a) = c then visit comp.(b)) cross
  in
  visit comp.(0);
  Array.init n (fun i ->
      if reachable.(i) then Option.value (Hashtbl.find_opt arrivals comp.(i)) ~default:0 else 0)

let prop_counts =
  QCheck2.Test.make ~name:"context counts = explicit reduced-path enumeration" ~count:400 gen_graph
    (fun (n, edges) ->
      match reference_counts n edges with
      | exception Too_many_paths -> true
      | expected ->
        let p, ms = program_of (n, edges) in
        let ctx = Context.number p ~edges:(Callgraph.cha_edges p) ~roots:[ ms.(0) ] in
        Array.for_all (fun i -> Context.method_contexts ctx ms.(i) = expected.(i)) (Array.init n (fun i -> i)))

let prop_iec_bdd_matches_tuples =
  QCheck2.Test.make ~name:"iec_bdd/mc_bdd enumerate exactly the tuple views" ~count:150 gen_graph
    (fun (n, edges) ->
      match reference_counts n edges with
      | exception Too_many_paths -> true
      | _ ->
        let p, ms = program_of (n, edges) in
        let ctx = Context.number p ~edges:(Callgraph.cha_edges p) ~roots:[ ms.(0) ] in
        let sp = Space.create () in
        let dom_c = Domain.make ~name:"C" ~size:(Context.csize ctx) () in
        let dom_i = Domain.make ~name:"I" ~size:(max 1 (Ir.num_invokes p)) () in
        let dom_m = Domain.make ~name:"M" ~size:(Ir.num_methods p) () in
        let cb = Space.alloc_interleaved sp dom_c 2 in
        let ib = Space.alloc sp dom_i in
        let mb = Space.alloc sp dom_m in
        let iec = Context.iec_bdd ctx sp ~caller:cb.(0) ~invoke:ib ~callee:cb.(1) ~target:mb in
        let rel =
          Relation.make sp ~name:"IEC"
            [
              { Relation.attr_name = "c1"; block = cb.(0) };
              { Relation.attr_name = "i"; block = ib };
              { Relation.attr_name = "c2"; block = cb.(1) };
              { Relation.attr_name = "m"; block = mb };
            ]
        in
        Relation.set_bdd rel iec;
        let from_bdd = List.sort compare (List.map (fun t -> (t.(0), t.(1), t.(2), t.(3))) (Relation.tuples rel)) in
        let mc = Context.mc_bdd ctx sp ~context:cb.(0) ~target:mb in
        let mrel =
          Relation.make sp ~name:"mC"
            [ { Relation.attr_name = "c"; block = cb.(0) }; { Relation.attr_name = "m"; block = mb } ]
        in
        Relation.set_bdd mrel mc;
        let mc_from_bdd = List.sort compare (List.map (fun t -> (t.(0), t.(1))) (Relation.tuples mrel)) in
        from_bdd = Context.iec_tuples ctx && mc_from_bdd = Context.mc_tuples ctx)

let prop_total_paths =
  QCheck2.Test.make ~name:"total_paths = sum of per-method counts" ~count:200 gen_graph (fun (n, edges) ->
      match reference_counts n edges with
      | exception Too_many_paths -> true
      | expected ->
        let p, ms = program_of (n, edges) in
        let ctx = Context.number p ~edges:(Callgraph.cha_edges p) ~roots:[ ms.(0) ] in
        ignore ms;
        let total = Array.fold_left ( + ) 0 expected in
        Bignat.to_int_opt (Context.total_paths ctx) = Some total)

let prop_cap_is_upper_bound =
  QCheck2.Test.make ~name:"clamped counts never exceed the cap" ~count:200 gen_graph (fun (n, edges) ->
      let p, ms = program_of (n, edges) in
      let ctx = Context.number ~max_bits:2 p ~edges:(Callgraph.cha_edges p) ~roots:[ ms.(0) ] in
      Array.for_all (fun i -> Context.method_contexts ctx ms.(i) <= 3) (Array.init n (fun i -> i))
      && List.for_all (fun (c1, _, c2, _) -> c1 <= 3 && c2 <= 3) (Context.iec_tuples ctx))

let () =
  Alcotest.run "context_prop"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_counts; prop_iec_bdd_matches_tuples; prop_total_paths; prop_cap_is_upper_bound ] );
    ]
