(* BDD-backed relations: unit tests plus differential testing against
   the pure tuple-set reference implementation (Ref_relation). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dom_a = Domain.make ~name:"A" ~size:6 ()
let dom_b = Domain.make ~name:"B" ~size:4 ()

type setup = { sp : Space.t; a0 : Space.block; a1 : Space.block; b0 : Space.block }

let setup () =
  let sp = Space.create () in
  let a_blocks = Space.alloc_interleaved sp dom_a 2 in
  let b0 = Space.alloc sp dom_b in
  { sp; a0 = a_blocks.(0); a1 = a_blocks.(1); b0 }

let tuples_as_lists r = List.map Array.to_list (Relation.tuples r)

let test_empty_and_add () =
  let s = setup () in
  let r = Relation.make s.sp ~name:"r" [ { Relation.attr_name = "x"; block = s.a0 }; { attr_name = "y"; block = s.b0 } ] in
  check_bool "empty" true (Relation.is_empty r);
  Relation.add_tuple r [| 3; 2 |];
  Relation.add_tuple r [| 5; 0 |];
  Relation.add_tuple r [| 3; 2 |];
  check_int "two tuples" 2 (int_of_float (Relation.count r));
  check_bool "mem" true (Relation.mem_tuple r [| 3; 2 |]);
  check_bool "not mem" false (Relation.mem_tuple r [| 2; 3 |]);
  Alcotest.(check (list (list int))) "tuples" [ [ 3; 2 ]; [ 5; 0 ] ] (List.sort compare (tuples_as_lists r))

let test_add_range_check () =
  let s = setup () in
  let r = Relation.make s.sp ~name:"r" [ { Relation.attr_name = "x"; block = s.a0 } ] in
  Alcotest.check_raises "out of range" (Invalid_argument "Space.const: 6 out of range for A") (fun () ->
      Relation.add_tuple r [| 6 |])

let test_select_project () =
  let s = setup () in
  let attrs = [ { Relation.attr_name = "x"; block = s.a0 }; { Relation.attr_name = "y"; block = s.a1 } ] in
  let r = Relation.of_tuples s.sp ~name:"r" attrs [ [| 0; 1 |]; [| 0; 2 |]; [| 3; 1 |] ] in
  let sel = Relation.select r "x" 0 in
  Alcotest.(check (list (list int))) "select" [ [ 0; 1 ]; [ 0; 2 ] ] (List.sort compare (tuples_as_lists sel));
  let proj = Relation.project r [ "y" ] in
  Alcotest.(check (list (list int))) "project" [ [ 1 ]; [ 2 ] ] (List.sort compare (tuples_as_lists proj));
  let pa = Relation.project_away r [ "y" ] in
  Alcotest.(check (list (list int))) "project_away" [ [ 0 ]; [ 3 ] ] (List.sort compare (tuples_as_lists pa))

let test_join () =
  let s = setup () in
  let a2 = Space.instance s.sp dom_a 2 in
  let e =
    Relation.of_tuples s.sp ~name:"e"
      [ { Relation.attr_name = "src"; block = s.a0 }; { Relation.attr_name = "dst"; block = s.a1 } ]
      [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |] ]
  in
  (* Paths of length 2: rename e to (y, z) with a simultaneous block
     move (src a0 -> a1, dst a1 -> a2), join on y, project it away. *)
  let left = Relation.rename e [ ("dst", "y", s.a1) ] in
  let right = Relation.rename e [ ("src", "y", s.a1); ("dst", "z", a2) ] in
  let two_step = Relation.compose left right [ "y" ] in
  Alcotest.(check (list (list int)))
    "length-2 paths" [ [ 0; 2 ]; [ 1; 3 ] ]
    (List.sort compare (tuples_as_lists two_step))

let test_rename_swap () =
  let s = setup () in
  let attrs = [ { Relation.attr_name = "x"; block = s.a0 }; { Relation.attr_name = "y"; block = s.a1 } ] in
  let r = Relation.of_tuples s.sp ~name:"r" attrs [ [| 1; 2 |]; [| 3; 4 |] ] in
  (* Swap the blocks of x and y simultaneously. *)
  let swapped = Relation.rename r [ ("x", "x", s.a1); ("y", "y", s.a0) ] in
  let sorted_attrs = List.map (fun (a : Relation.attr) -> a.attr_name) (Relation.attrs swapped) in
  Alcotest.(check (list string)) "attr names kept" [ "x"; "y" ] sorted_attrs;
  Alcotest.(check (list (list int)))
    "tuples preserved under swap" [ [ 1; 2 ]; [ 3; 4 ] ]
    (List.sort compare (tuples_as_lists swapped))

let test_union_diff_inter () =
  let s = setup () in
  let attrs = [ { Relation.attr_name = "x"; block = s.a0 } ] in
  let r1 = Relation.of_tuples s.sp ~name:"r1" attrs [ [| 0 |]; [| 1 |]; [| 2 |] ] in
  let r2 = Relation.of_tuples s.sp ~name:"r2" attrs [ [| 1 |]; [| 3 |] ] in
  Alcotest.(check (list (list int))) "union" [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]
    (List.sort compare (tuples_as_lists (Relation.union r1 r2)));
  Alcotest.(check (list (list int))) "diff" [ [ 0 ]; [ 2 ] ] (List.sort compare (tuples_as_lists (Relation.diff r1 r2)));
  Alcotest.(check (list (list int))) "inter" [ [ 1 ] ] (tuples_as_lists (Relation.inter r1 r2))

let test_count_big () =
  let s = setup () in
  let attrs = [ { Relation.attr_name = "x"; block = s.a0 }; { Relation.attr_name = "y"; block = s.a1 } ] in
  let r = Relation.of_tuples s.sp ~name:"r" attrs [ [| 0; 0 |]; [| 1; 1 |]; [| 2; 2 |] ] in
  Alcotest.(check string) "count_big" "3" (Bignat.to_string (Relation.count_big r))

let test_copy_union_in_place_dispose () =
  let s = setup () in
  let attrs = [ { Relation.attr_name = "x"; block = s.a0 } ] in
  let r1 = Relation.of_tuples s.sp ~name:"r1" attrs [ [| 0 |]; [| 1 |] ] in
  let r2 = Relation.copy ~name:"r2" r1 in
  Relation.add_tuple r2 [| 3 |];
  Alcotest.(check int) "copy is independent" 2 (int_of_float (Relation.count r1));
  Alcotest.(check int) "copy extended" 3 (int_of_float (Relation.count r2));
  let before = Relation.version r1 in
  Relation.union_in_place r1 r2;
  Alcotest.(check int) "in-place union" 3 (int_of_float (Relation.count r1));
  Alcotest.(check bool) "version bumped" true (Relation.version r1 > before);
  (* Union with itself changes nothing and keeps the version. *)
  let v = Relation.version r1 in
  Relation.union_in_place r1 r1;
  Alcotest.(check int) "idempotent union keeps version" v (Relation.version r1);
  Relation.dispose r2;
  (* Disposing twice is fine. *)
  Relation.dispose r2

let test_schema_mismatch_errors () =
  let s = setup () in
  let r1 = Relation.of_tuples s.sp ~name:"r1" [ { Relation.attr_name = "x"; block = s.a0 } ] [ [| 0 |] ] in
  let r2 = Relation.of_tuples s.sp ~name:"r2" [ { Relation.attr_name = "y"; block = s.a1 } ] [ [| 0 |] ] in
  (match Relation.union r1 r2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected schema mismatch");
  (match Relation.make s.sp ~name:"bad" [ { Relation.attr_name = "x"; block = s.a0 }; { Relation.attr_name = "y"; block = s.a0 } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected shared-block rejection");
  match Relation.add_tuple r1 [| 0; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity rejection"

let test_space_instance_growth () =
  let sp = Space.create () in
  let d = Domain.make ~name:"G" ~size:8 () in
  let group = Space.alloc_interleaved sp d 2 in
  Alcotest.(check int) "instances allocated" 2 (List.length (Space.instances sp d));
  (* Requesting beyond the group allocates sequentially on demand. *)
  let b3 = Space.instance sp d 3 in
  Alcotest.(check int) "grown to four" 4 (List.length (Space.instances sp d));
  Alcotest.(check int) "instance index" 3 b3.Space.instance;
  (* Blocks of one domain are interchangeable for data. *)
  let r = Relation.of_tuples sp ~name:"r" [ { Relation.attr_name = "x"; block = group.(0) } ] [ [| 5 |] ] in
  let moved = Relation.rename r [ ("x", "x", b3) ] in
  Alcotest.(check (list (list int))) "value preserved across layouts" [ [ 5 ] ]
    (List.map Array.to_list (Relation.tuples moved));
  (* Same-name distinct domains are rejected. *)
  let d2 = Domain.make ~name:"G" ~size:4 () in
  match Space.alloc sp d2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected duplicate-name rejection"

(* --- Differential testing against Ref_relation --- *)

(* Random relations over two attributes of dom_a (size 6) and the
   sequence of operations: union, diff, inter, select, project, join.
   The BDD relation and the reference must agree on tuples. *)

let gen_tuples =
  QCheck2.Gen.(list_size (int_range 0 12) (pair (int_range 0 5) (int_range 0 5)))

let to_arrays l = List.map (fun (x, y) -> [| x; y |]) l
let to_lists l = List.map (fun (x, y) -> [ x; y ]) l

let agree r ref_r = List.sort compare (tuples_as_lists r) = Ref_relation.tuples ref_r

let prop_setops =
  QCheck2.Test.make ~name:"union/diff/inter agree with reference" ~count:200
    QCheck2.Gen.(pair gen_tuples gen_tuples)
    (fun (l1, l2) ->
      let s = setup () in
      let attrs = [ { Relation.attr_name = "x"; block = s.a0 }; { Relation.attr_name = "y"; block = s.a1 } ] in
      let r1 = Relation.of_tuples s.sp ~name:"r1" attrs (to_arrays l1) in
      let r2 = Relation.of_tuples s.sp ~name:"r2" attrs (to_arrays l2) in
      let f1 = Ref_relation.make [ "x"; "y" ] (to_lists l1) in
      let f2 = Ref_relation.make [ "x"; "y" ] (to_lists l2) in
      agree (Relation.union r1 r2) (Ref_relation.union f1 f2)
      && agree (Relation.diff r1 r2) (Ref_relation.diff f1 f2)
      && agree (Relation.inter r1 r2) (Ref_relation.inter f1 f2))

let prop_select_project =
  QCheck2.Test.make ~name:"select/project agree with reference" ~count:200
    QCheck2.Gen.(pair gen_tuples (int_range 0 5))
    (fun (l, v) ->
      let s = setup () in
      let attrs = [ { Relation.attr_name = "x"; block = s.a0 }; { Relation.attr_name = "y"; block = s.a1 } ] in
      let r = Relation.of_tuples s.sp ~name:"r" attrs (to_arrays l) in
      let f = Ref_relation.make [ "x"; "y" ] (to_lists l) in
      let sel_ok = agree (Relation.select r "x" v) (Ref_relation.select f "x" v) in
      let projected = Relation.project r [ "y" ] in
      let ref_projected = Ref_relation.project f [ "y" ] in
      let proj_ok =
        List.sort compare (tuples_as_lists projected) = Ref_relation.tuples ref_projected
      in
      sel_ok && proj_ok)

let prop_join =
  QCheck2.Test.make ~name:"natural join agrees with reference" ~count:200
    QCheck2.Gen.(pair gen_tuples gen_tuples)
    (fun (l1, l2) ->
      let s = setup () in
      (* r1(x, y) join r2(y, z): y shared and stored in the same block
         in both; x and z in distinct blocks. *)
      let a2 = Space.instance s.sp dom_a 2 in
      let r1 =
        Relation.of_tuples s.sp ~name:"r1"
          [ { Relation.attr_name = "x"; block = s.a0 }; { Relation.attr_name = "y"; block = s.a1 } ]
          (to_arrays l1)
      in
      let r2 =
        Relation.of_tuples s.sp ~name:"r2"
          [ { Relation.attr_name = "y"; block = s.a1 }; { Relation.attr_name = "z"; block = a2 } ]
          (to_arrays l2)
      in
      let f1 = Ref_relation.make [ "x"; "y" ] (to_lists l1) in
      let f2 = Ref_relation.make [ "y"; "z" ] (to_lists l2) in
      agree (Relation.join r1 r2) (Ref_relation.join f1 f2)
      && agree (Relation.compose r1 r2 [ "y" ]) (Ref_relation.project (Ref_relation.join f1 f2) [ "x"; "z" ]))

let prop_rename_roundtrip =
  QCheck2.Test.make ~name:"rename to fresh block and back is identity" ~count:100 gen_tuples (fun l ->
      let s = setup () in
      let attrs = [ { Relation.attr_name = "x"; block = s.a0 }; { Relation.attr_name = "y"; block = s.a1 } ] in
      let r = Relation.of_tuples s.sp ~name:"r" attrs (to_arrays l) in
      let a2 = Space.instance s.sp dom_a 2 in
      let moved = Relation.rename r [ ("x", "x", a2) ] in
      let back = Relation.rename moved [ ("x", "x", s.a0) ] in
      Relation.equal r back)

let () =
  Alcotest.run "relation"
    [
      ( "unit",
        [
          Alcotest.test_case "empty and add" `Quick test_empty_and_add;
          Alcotest.test_case "range check" `Quick test_add_range_check;
          Alcotest.test_case "select and project" `Quick test_select_project;
          Alcotest.test_case "join compiles" `Quick test_join;
          Alcotest.test_case "rename swap" `Quick test_rename_swap;
          Alcotest.test_case "union/diff/inter" `Quick test_union_diff_inter;
          Alcotest.test_case "count_big" `Quick test_count_big;
          Alcotest.test_case "copy/union_in_place/dispose" `Quick test_copy_union_in_place_dispose;
          Alcotest.test_case "schema errors" `Quick test_schema_mismatch_errors;
          Alcotest.test_case "space instance growth" `Quick test_space_instance_growth;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_setops; prop_select_project; prop_join; prop_rename_roundtrip ] );
    ]
