(* The Datalog program texts themselves: every algorithm must parse,
   resolve, stratify and plan — alone and composed with every
   compatible §5 query suffix — and the algo6 results must agree with
   the naive evaluator like algo5's do. *)

module Factgen = Jir.Factgen
module Analyses = Pta.Analyses
module Context = Pta.Context
module Programs = Pta.Programs
module Queries = Pta.Queries

let sample_src =
  {|
class A extends Object {
  field f : Object
  method set(v : Object) : void {
    this.f = v
  }
  method get() : Object {
    var r : Object
    r = this.f
    return r
  }
}
class W extends Thread {
  method run() : void {
    var o : Object
    o = new Object() @ "TL"
    sync o
  }
}
class Main extends Object {
  static method main() : void {
    var a : A
    var o : Object
    var r : Object
    var w : W
    a = new A() @ "A0"
    o = new Object() @ "O0"
    a.set(o)
    r = a.get()
    w = new W() @ "W0"
    w.start()
  }
}
entry Main.main
|}

let fg () = Factgen.extract (Jir.Jparser.parse sample_src)

let check_creates ?fg text =
  let element_names =
    match fg with
    | Some fg -> Factgen.element_names fg
    | None -> fun _ -> None
  in
  match Engine.parse_and_create ~element_names text with
  | _ -> ()
  | exception Parser.Parse_error e -> Alcotest.failf "parse error line %d: %s" e.Parser.line e.Parser.message
  | exception Resolve.Check_error m -> Alcotest.failf "check error: %s" m
  | exception Stratify.Not_stratified m -> Alcotest.failf "not stratified: %s" m

let test_inputs_cover_factgen () =
  (* Every relation the extractor produces must be declared (and thus
     loaded) by the programs — a silent whitelist gap would starve the
     analyses of facts. *)
  let fg = fg () in
  let loaded = List.map fst (Programs.input_relations fg) in
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (Printf.sprintf "%s is loaded" name) true (List.mem name loaded))
    fg.Factgen.relations

let test_basic_programs_wellformed () =
  let fg = fg () in
  check_creates (Programs.algo1 fg);
  check_creates (Programs.algo2 fg);
  check_creates (Programs.algo3 fg);
  check_creates (Programs.algo5 fg ~csize:8);
  check_creates (Programs.algo6 fg ~csize:8);
  check_creates (Programs.algo7 fg ~csize:8)

let test_queries_compose () =
  let fg = fg () in
  (* CI refinement over algorithms 1-2. *)
  check_creates (Programs.algo1 ~query:Queries.refinement_ci fg);
  check_creates (Programs.algo2 ~query:Queries.refinement_ci fg);
  (* Every algo5 query suffix. *)
  List.iter
    (fun q -> check_creates ~fg (Programs.algo5 ~query:q fg ~csize:8))
    [
      Queries.refinement_projected_cs;
      Queries.refinement_full_cs;
      Queries.mod_ref;
      Queries.who_points_to ~heap_label:"A0";
      Queries.jce_vuln ~init_method:"A.set";
    ];
  List.iter
    (fun q -> check_creates ~fg (Programs.algo6 ~query:q fg ~csize:8))
    [ Queries.refinement_projected_ts; Queries.refinement_full_ts ]

let test_algo6_vs_naive () =
  let fg = fg () in
  let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
  let ts = Analyses.run_cs_types fg ctx in
  let naive =
    Naive_eval.solve
      (Parser.parse ts.Analyses.program_text)
      ~inputs:
        (Programs.input_relations fg
        @ [
            ("IEC", List.map (fun (a, b, c, d) -> [ a; b; c; d ]) (Context.iec_tuples ctx));
            ("mC", List.map (fun (a, b) -> [ a; b ]) (Context.mc_tuples ctx));
          ])
  in
  List.iter
    (fun out ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "engine = naive on %s" out)
        (Naive_eval.tuples naive out)
        (List.sort compare (List.map Array.to_list (Analyses.tuples ts out))))
    [ "vTC"; "fT" ]

let test_algo7_vs_naive () =
  let fg = fg () in
  let result, _info = Analyses.run_thread_escape fg in
  (* Rebuild the same inputs the driver computed by reading them back
     from the engine. *)
  let ht = List.map Array.to_list (Analyses.tuples result "HT") in
  let vp0t = List.map Array.to_list (Analyses.tuples result "vP0T") in
  let naive =
    Naive_eval.solve
      (Parser.parse result.Analyses.program_text)
      ~inputs:(Programs.input_relations fg @ [ ("HT", ht); ("vP0T", vp0t) ])
  in
  List.iter
    (fun out ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "engine = naive on %s" out)
        (Naive_eval.tuples naive out)
        (List.sort compare (List.map Array.to_list (Analyses.tuples result out))))
    [ "vPT"; "hPT"; "escaped"; "captured"; "neededSyncs" ]

let test_tuples_io_roundtrip () =
  let dir = Filename.temp_file "whalelam" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let tuples = [ [| 0; 3 |]; [| 2; 1 |]; [| 7; 7 |] ] in
  let path = Filename.concat dir "r.tuples" in
  Tuples_io.save_file path tuples;
  Alcotest.(check (list (list int))) "roundtrip" (List.map Array.to_list tuples) (Tuples_io.load_file path);
  (* Standalone bddbddb flow. *)
  let program = Parser.parse "DOMAINS\nV 8\nRELATIONS\ninput r (a : V, b : V)\noutput t (a : V, b : V)\nRULES\nt(x, y) :- r(x, y).\nt(x, z) :- t(x, y), r(y, z).\n" in
  let inputs = Tuples_io.load_inputs ~dir program in
  Alcotest.(check int) "only declared inputs" 1 (List.length inputs);
  let eng = Engine.create program in
  List.iter (fun (n, ts) -> Engine.set_tuples eng n (List.map Array.of_list ts)) inputs;
  ignore (Engine.run eng);
  Tuples_io.save_outputs ~dir program (fun n -> Relation.tuples (Engine.relation eng n));
  let out = Tuples_io.load_file (Filename.concat dir "t.tuples") in
  Alcotest.(check bool) "closure computed" true (List.mem [ 2; 3 ] out || List.mem [ 0; 3 ] out)

let () =
  Alcotest.run "programs"
    [
      ( "wellformed",
        [
          Alcotest.test_case "all algorithms" `Quick test_basic_programs_wellformed;
          Alcotest.test_case "inputs cover the extractor" `Quick test_inputs_cover_factgen;
          Alcotest.test_case "query suffixes compose" `Quick test_queries_compose;
        ] );
      ( "differential",
        [
          Alcotest.test_case "algo6 vs naive" `Quick test_algo6_vs_naive;
          Alcotest.test_case "algo7 vs naive" `Quick test_algo7_vs_naive;
        ] );
      ("io", [ Alcotest.test_case "tuples files" `Quick test_tuples_io_roundtrip ]);
    ]
