test/test_programs.ml: Alcotest Array Engine Filename Jir List Naive_eval Parser Printf Pta Relation Resolve Stratify Sys Tuples_io Unix
