test/test_relation.ml: Alcotest Array Bignat Domain List QCheck2 QCheck_alcotest Ref_relation Relation Space
