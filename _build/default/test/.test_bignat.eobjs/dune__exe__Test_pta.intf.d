test/test_pta.mli:
