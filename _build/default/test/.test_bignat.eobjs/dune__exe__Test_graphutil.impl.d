test/test_graphutil.ml: Alcotest Array Graphutil List QCheck2 QCheck_alcotest
