test/test_bdd.mli:
