test/test_graphutil.mli:
