test/test_datalog.ml: Alcotest Array Ast Domain Engine Format Lexer List Naive_eval Parser Printf QCheck2 QCheck_alcotest Relation Resolve Stratify
