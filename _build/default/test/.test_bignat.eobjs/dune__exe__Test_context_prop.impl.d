test/test_context_prop.ml: Alcotest Array Bignat Domain Hashtbl Jir List Option Printf Pta QCheck2 QCheck_alcotest Relation Space
