test/test_jir.ml: Alcotest Array Jir List Option Printf Synth
