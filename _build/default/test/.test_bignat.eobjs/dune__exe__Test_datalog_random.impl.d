test/test_datalog_random.ml: Alcotest Array Ast Engine Format Gen List Naive_eval Printf QCheck2 QCheck_alcotest Relation Stratify String Test
