test/test_context_prop.mli:
