test/test_programs.mli:
