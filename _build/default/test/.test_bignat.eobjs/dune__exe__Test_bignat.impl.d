test/test_bignat.ml: Alcotest Bignat List QCheck2 QCheck_alcotest String
