test/test_pta.ml: Alcotest Array Bignat Domain Jir List Naive_eval Option Parser Printf Pta Relation Space Synth
