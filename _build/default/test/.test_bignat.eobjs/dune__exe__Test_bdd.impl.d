test/test_bdd.ml: Alcotest Array Bdd Bignat List QCheck2 QCheck_alcotest String
