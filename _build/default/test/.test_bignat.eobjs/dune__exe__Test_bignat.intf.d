test/test_bignat.mli:
