test/test_jir.mli:
