test/test_datalog_random.mli:
