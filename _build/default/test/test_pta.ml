(* The paper's analyses end-to-end: Algorithm 4 numbering on the
   paper's own Example 1, precision ordering CHA ⊇ on-the-fly ⊇
   context-sensitive on a classic container program, differential
   checks of the BDD pipeline against the naive evaluator, thread
   escape analysis, and the §5 queries. *)

module Ir = Jir.Ir
module Jparser = Jir.Jparser
module Factgen = Jir.Factgen
module Analyses = Pta.Analyses
module Context = Pta.Context
module Callgraph = Pta.Callgraph
module Programs = Pta.Programs
module Queries = Pta.Queries

(* --- Algorithm 4 on the paper's Example 1 --- *)

(* Call graph of Figure 1: M2 and M3 form a cycle; edges are created
   in the paper's a..i order. *)
let example1 () =
  let p = Ir.create () in
  let g = Ir.add_class p ~name:"G" ~super:(Ir.object_class p) in
  let mk name = Ir.add_method p ~name ~owner:g ~static:true ~formals:[] ~ret:None in
  let m1 = mk "m1" and m2 = mk "m2" and m3 = mk "m3" in
  let m4 = mk "m4" and m5 = mk "m5" and m6 = mk "m6" in
  let call src dst = ignore (Ir.emit_invoke_static p src ~target:dst ~args:[]) in
  call m1 m2 (* a *);
  call m1 m3 (* b *);
  call m2 m3 (* c *);
  call m3 m2 (* d *);
  call m2 m4 (* e *);
  call m3 m4 (* f *);
  call m3 m5 (* g *);
  call m4 m6 (* h *);
  call m5 m6 (* i *);
  Ir.add_entry p m1;
  (p, [| m1; m2; m3; m4; m5; m6 |])

let test_example1_counts () =
  let p, m = example1 () in
  let edges = Callgraph.cha_edges p in
  Alcotest.(check int) "nine invocation edges" 9 (List.length edges);
  let ctx = Context.number p ~edges ~roots:[ m.(0) ] in
  let counts = Array.map (Context.method_contexts ctx) m in
  Alcotest.(check (array int)) "Example 2's clone counts" [| 1; 2; 2; 4; 2; 6 |] counts;
  Alcotest.(check bool) "M2 and M3 share a component" true
    (Context.scc_of_method ctx m.(1) = Context.scc_of_method ctx m.(2));
  Alcotest.(check string) "17 clones in total" "17" (Bignat.to_string (Context.total_paths ctx));
  Alcotest.(check string) "M6 has the most contexts" "6" (Bignat.to_string (Context.max_contexts ctx));
  Alcotest.(check int) "csize covers 1..6" 7 (Context.csize ctx);
  Alcotest.(check bool) "no merging" false (Context.merged ctx);
  (* Tuple-level: 1+1+2+2+2+2+2+4+2 = 18 context-sensitive edges. *)
  Alcotest.(check int) "IEC tuples" 18 (List.length (Context.iec_tuples ctx));
  Alcotest.(check int) "mC tuples" 17 (List.length (Context.mc_tuples ctx))

let test_example1_bdds_match_tuples () =
  let p, m = example1 () in
  let edges = Callgraph.cha_edges p in
  let ctx = Context.number p ~edges ~roots:[ m.(0) ] in
  let sp = Space.create () in
  let dom_c = Domain.make ~name:"C" ~size:(Context.csize ctx) () in
  let dom_i = Domain.make ~name:"I" ~size:(Ir.num_invokes p) () in
  let dom_m = Domain.make ~name:"M" ~size:(Ir.num_methods p) () in
  let cblocks = Space.alloc_interleaved sp dom_c 2 in
  let iblk = Space.alloc sp dom_i in
  let mblk = Space.alloc sp dom_m in
  let iec =
    Context.iec_bdd ctx sp ~caller:cblocks.(0) ~invoke:iblk ~callee:cblocks.(1) ~target:mblk
  in
  let rel =
    Relation.make sp ~name:"IEC"
      [
        { Relation.attr_name = "c1"; block = cblocks.(0) };
        { Relation.attr_name = "i"; block = iblk };
        { Relation.attr_name = "c2"; block = cblocks.(1) };
        { Relation.attr_name = "m"; block = mblk };
      ]
  in
  Relation.set_bdd rel iec;
  let from_bdd =
    List.sort compare (List.map (fun t -> (t.(0), t.(1), t.(2), t.(3))) (Relation.tuples rel))
  in
  Alcotest.(check bool) "iec_bdd enumerates exactly iec_tuples" true (from_bdd = Context.iec_tuples ctx);
  let mc = Context.mc_bdd ctx sp ~context:cblocks.(0) ~target:mblk in
  let mrel =
    Relation.make sp ~name:"mC"
      [ { Relation.attr_name = "c"; block = cblocks.(0) }; { Relation.attr_name = "m"; block = mblk } ]
  in
  Relation.set_bdd mrel mc;
  let mc_from_bdd = List.sort compare (List.map (fun t -> (t.(0), t.(1))) (Relation.tuples mrel)) in
  Alcotest.(check bool) "mc_bdd enumerates exactly mc_tuples" true (mc_from_bdd = Context.mc_tuples ctx)

let test_context_cap_merging () =
  (* A diamond ladder: counts double at every level; with max_bits 3
     (cap 7) the deep levels merge into the top context. *)
  let p = Ir.create () in
  let g = Ir.add_class p ~name:"G" ~super:(Ir.object_class p) in
  let mk name = Ir.add_method p ~name ~owner:g ~static:true ~formals:[] ~ret:None in
  let depth = 6 in
  let ms = Array.init depth (fun i -> mk (Printf.sprintf "m%d" i)) in
  for i = 0 to depth - 2 do
    ignore (Ir.emit_invoke_static p ms.(i) ~target:ms.(i + 1) ~args:[]);
    ignore (Ir.emit_invoke_static p ms.(i) ~target:ms.(i + 1) ~args:[])
  done;
  Ir.add_entry p ms.(0);
  let edges = Callgraph.cha_edges p in
  let ctx = Context.number ~max_bits:3 p ~edges ~roots:[ ms.(0) ] in
  Alcotest.(check string) "exact count is 2^5" "32" (Bignat.to_string (Context.method_contexts_exact ctx ms.(depth - 1)));
  Alcotest.(check int) "clamped at 7" 7 (Context.method_contexts ctx ms.(depth - 1));
  Alcotest.(check bool) "merged flagged" true (Context.merged ctx);
  (* The tuple view respects the cap. *)
  List.iter
    (fun (c1, _, c2, _) ->
      Alcotest.(check bool) "contexts within cap" true (c1 <= 7 && c2 <= 7))
    (Context.iec_tuples ctx)

(* --- End-to-end precision: the container/getter program --- *)

let container_src =
  {|
class A extends Object {
  field f : Object
  method set(v : Object) : void {
    this.f = v
  }
  method get() : Object {
    var r : Object
    r = this.f
    return r
  }
}
class B extends A {
  method get() : Object {
    var x : Object
    x = new Object() @ "BNEW"
    return x
  }
}
class Main extends Object {
  static method main() : void {
    var a1 : A
    var a2 : A
    var o1 : Object
    var o2 : Object
    var r1 : Object
    var r2 : Object
    a1 = new A() @ "A1"
    a2 = new A() @ "A2"
    a1.set(o1)
    a2.set(o2)
    o1 = new Object() @ "O1"
    o2 = new Object() @ "O2"
    a1.set(o1)
    a2.set(o2)
    r1 = a1.get()
    r2 = a2.get()
  }
}
entry Main.main
|}

let fg_of src = Factgen.extract (Jparser.parse src)

let var_named fg name =
  let names = Option.get (Factgen.element_names fg "V") in
  let found = ref (-1) in
  Array.iteri (fun i n -> if n = name then found := i) names;
  if !found < 0 then Alcotest.failf "no variable named %s" name;
  !found

let heap_names fg hs =
  let names = Option.get (Factgen.element_names fg "H") in
  List.sort compare (List.map (fun h -> names.(h)) hs)

(* Heap targets of a variable in a points-to output; [var_pos]/[heap_pos]
   select the relevant attributes. *)
let targets result rel ~var_pos ~heap_pos v =
  let hs = ref [] in
  List.iter (fun t -> if t.(var_pos) = v then hs := t.(heap_pos) :: !hs) (Analyses.tuples result rel);
  List.sort_uniq compare !hs

let test_precision_ordering () =
  let fg = fg_of container_src in
  let r1 = var_named fg "Main.main.r1" in
  (* CHA-based (Algorithm 2): dispatch of a1.get() sees both A.get and
     B.get, so r1 may point to O1, O2 and BNEW. *)
  let cha = Analyses.run_basic ~algo:Analyses.Algo2 fg in
  Alcotest.(check (list string)) "CHA" [ "BNEW"; "O1"; "O2" ] (heap_names fg (targets cha "vP" ~var_pos:0 ~heap_pos:1 r1));
  (* On-the-fly call graph (Algorithm 3): a1 only points to A objects,
     so B.get is pruned; O1/O2 still merge context-insensitively. *)
  let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  Alcotest.(check (list string)) "on-the-fly" [ "O1"; "O2" ] (heap_names fg (targets otf "vP" ~var_pos:0 ~heap_pos:1 r1));
  (* Context-sensitive (Algorithm 5): the two set/get chains are
     separate clones; r1 gets exactly O1. *)
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
  let cs = Analyses.run_cs fg ctx in
  Alcotest.(check (list string)) "context-sensitive" [ "O1" ] (heap_names fg (targets cs "vPC" ~var_pos:1 ~heap_pos:2 r1));
  (* Projection of CS results refines the on-the-fly CI results. *)
  let vp_ci = List.sort_uniq compare (List.map (fun t -> (t.(0), t.(1))) (Analyses.tuples otf "vP")) in
  let vp_cs = List.sort_uniq compare (List.map (fun t -> (t.(1), t.(2))) (Analyses.tuples cs "vPC")) in
  Alcotest.(check bool) "vPC projected is a subset of vP" true
    (List.for_all (fun pair -> List.mem pair vp_ci) vp_cs)

(* --- Differential: engine vs naive evaluator on full programs --- *)

let naive_inputs fg = List.map (fun (n, ts) -> (n, ts)) (Programs.input_relations fg)

let sorted_tuples_naive r name = Naive_eval.tuples r name
let sorted_tuples_engine result name = List.sort compare (List.map Array.to_list (Analyses.tuples result name))

let check_against_naive fg text result outputs =
  let naive = Naive_eval.solve (Parser.parse text) ~inputs:(naive_inputs fg) in
  List.iter
    (fun out ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "engine = naive on %s" out)
        (sorted_tuples_naive naive out) (sorted_tuples_engine result out))
    outputs

let test_algo2_vs_naive () =
  let fg = fg_of container_src in
  let result = Analyses.run_basic ~algo:Analyses.Algo2 fg in
  check_against_naive fg result.Analyses.program_text result [ "vP"; "hP" ]

let test_algo3_vs_naive () =
  let fg = fg_of container_src in
  let result = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  check_against_naive fg result.Analyses.program_text result [ "vP"; "hP"; "IE" ]

let test_algo5_vs_naive () =
  let fg = fg_of container_src in
  let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
  let cs = Analyses.run_cs fg ctx in
  (* The naive evaluator needs IEC and mC as explicit tuples. *)
  let naive =
    Naive_eval.solve
      (Parser.parse cs.Analyses.program_text)
      ~inputs:
        (naive_inputs fg
        @ [
            ("IEC", List.map (fun (a, b, c, d) -> [ a; b; c; d ]) (Context.iec_tuples ctx));
            ("mC", List.map (fun (a, b) -> [ a; b ]) (Context.mc_tuples ctx));
          ])
  in
  List.iter
    (fun out ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "engine = naive on %s" out)
        (sorted_tuples_naive naive out) (sorted_tuples_engine cs out))
    [ "vPC"; "hP" ]

let test_synth_algo5_vs_naive () =
  (* The full context-sensitive pipeline on a small generated program,
     checked tuple-for-tuple against the naive evaluator. *)
  let params =
    { Synth.Generator.default_params with n_classes = 6; stmts_per_method = 4; calls_per_method = 1; n_interfaces = 1 }
  in
  let fg = Factgen.extract (Synth.Generator.generate params) in
  let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
  let cs = Analyses.run_cs fg ctx in
  let naive =
    Naive_eval.solve
      (Parser.parse cs.Analyses.program_text)
      ~inputs:
        (naive_inputs fg
        @ [
            ("IEC", List.map (fun (a, b, c, d) -> [ a; b; c; d ]) (Context.iec_tuples ctx));
            ("mC", List.map (fun (a, b) -> [ a; b ]) (Context.mc_tuples ctx));
          ])
  in
  List.iter
    (fun out ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "engine = naive on %s" out)
        (sorted_tuples_naive naive out) (sorted_tuples_engine cs out))
    [ "vPC"; "hP" ]

let test_handcoded_vs_engine () =
  (* The hand-coded BDD implementation (§6.4 baseline) must agree
     exactly with the bddbddb-style engine on Algorithm 2. *)
  let params = { Synth.Generator.default_params with n_classes = 10; n_thread_classes = 1 } in
  let fg = Factgen.extract (Synth.Generator.generate params) in
  let hand = Pta.Handcoded.run fg in
  let eng = Analyses.run_basic ~algo:Analyses.Algo2 fg in
  let eng_vp = List.sort compare (List.map (fun t -> (t.(0), t.(1))) (Analyses.tuples eng "vP")) in
  let eng_hp = List.sort compare (List.map (fun t -> (t.(0), t.(1), t.(2))) (Analyses.tuples eng "hP")) in
  Alcotest.(check bool) "vP agrees" true (Pta.Handcoded.vp_tuples hand = eng_vp);
  Alcotest.(check bool) "hP agrees" true (Pta.Handcoded.hp_tuples hand = eng_hp)

let test_synth_algo2_vs_naive () =
  (* A generated program exercises statics, threads, virtual dispatch
     and recursion through the whole pipeline. *)
  let params = { Synth.Generator.default_params with n_classes = 8; n_thread_classes = 1; stmts_per_method = 5 } in
  let fg = Factgen.extract (Synth.Generator.generate params) in
  let result = Analyses.run_basic ~algo:Analyses.Algo2 fg in
  check_against_naive fg result.Analyses.program_text result [ "vP"; "hP" ]

let exception_src =
  {|
class Fails extends Object {
  method work() : Object {
    var e : Object
    var ok : Object
    e = new Object() @ "ERR"
    throw e
    ok = new Object() @ "OK"
    return ok
  }
}
class Main extends Object {
  static method main() : void {
    var f : Fails
    var r : Object
    var caught : Object
    f = new Fails() @ "F"
    r = f.work()
    caught = catch
  }
}
entry Main.main
|}

let test_exception_flow () =
  (* The thrown ERR object must reach main's catch through the
     synthetic exception variables, context-insensitively and
     context-sensitively. *)
  let fg = fg_of exception_src in
  let caught = var_named fg "Main.main.caught" in
  let ci = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  Alcotest.(check (list string)) "CI catch sees the thrown object" [ "ERR" ]
    (heap_names fg (targets ci "vP" ~var_pos:0 ~heap_pos:1 caught));
  let r = var_named fg "Main.main.r" in
  Alcotest.(check (list string)) "return still flows normally" [ "OK" ]
    (heap_names fg (targets ci "vP" ~var_pos:0 ~heap_pos:1 r));
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples ci) in
  let cs = Analyses.run_cs fg ctx in
  Alcotest.(check (list string)) "CS catch sees the thrown object" [ "ERR" ]
    (heap_names fg (targets cs "vPC" ~var_pos:1 ~heap_pos:2 caught))

let array_src =
  {|
class Main extends Object {
  static method main() : void {
    var arr : Object
    var x : Object
    var y : Object
    arr = new Object() @ "ARRAY"
    x = new Object() @ "ELEM"
    arr[] = x
    y = arr[]
  }
}
entry Main.main
|}

let test_array_flow () =
  let fg = fg_of array_src in
  let ci = Analyses.run_basic ~algo:Analyses.Algo2 fg in
  let y = var_named fg "Main.main.y" in
  Alcotest.(check (list string)) "array element read back" [ "ELEM" ]
    (heap_names fg (targets ci "vP" ~var_pos:0 ~heap_pos:1 y))

let test_cs_otf_variant () =
  (* §4.2's on-the-fly CS variant: the discovered context-sensitive
     call graph prunes the virtual dispatch the way Algorithm 3 does,
     so r1 is exactly O1 here too. *)
  let fg = fg_of container_src in
  let result, ctx = Analyses.run_cs_otf fg in
  ignore ctx;
  let r1 = var_named fg "Main.main.r1" in
  Alcotest.(check (list string)) "precise through discovered IECd" [ "O1" ]
    (heap_names fg (targets result "vPC" ~var_pos:1 ~heap_pos:2 r1));
  (* The discovered edge set is a subset of the conservative IEC. *)
  let iecd = Analyses.count result "IECd" in
  let iec = Relation.count (Analyses.relation result "IEC") in
  Alcotest.(check bool) "IECd subset of IEC" true (iecd <= iec && iecd > 0.0)

let depth2_src =
  {|
class Id extends Object {
  static method id(x : Object) : Object {
    return x
  }
}
class Mid extends Object {
  static method mid(y : Object) : Object {
    var r : Object
    r = Id.id(y)
    return r
  }
}
class Main extends Object {
  static method main() : void {
    var o1 : Object
    var o2 : Object
    var r1 : Object
    var r2 : Object
    o1 = new Object() @ "D1"
    o2 = new Object() @ "D2"
    r1 = Mid.mid(o1)
    r2 = Mid.mid(o2)
  }
}
entry Main.main
|}

let test_1cfa_vs_full_cloning () =
  (* Both calls reach Id.id through Mid's single call site, so 1-CFA
     (last call site) merges them while full path cloning keeps them
     apart (§1.1). *)
  let fg = fg_of depth2_src in
  let r1 = var_named fg "Main.main.r1" in
  let one_cfa, _k = Analyses.run_1cfa fg in
  Alcotest.(check (list string)) "1-CFA merges the two chains" [ "D1"; "D2" ]
    (heap_names fg (targets one_cfa "vPC" ~var_pos:1 ~heap_pos:2 r1));
  let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
  let full = Analyses.run_cs fg ctx in
  Alcotest.(check (list string)) "full cloning keeps them apart" [ "D1" ]
    (heap_names fg (targets full "vPC" ~var_pos:1 ~heap_pos:2 r1));
  (* Precision ordering as projected sets: full ⊆ 1-CFA ⊆ CI. *)
  let proj result = List.sort_uniq compare (List.map (fun t -> (t.(1), t.(2))) (Analyses.tuples result "vPC")) in
  let ci = Analyses.run_basic ~algo:Analyses.Algo2 fg in
  let vp_ci = List.sort_uniq compare (List.map (fun t -> (t.(0), t.(1))) (Analyses.tuples ci "vP")) in
  Alcotest.(check bool) "full within 1-CFA" true (List.for_all (fun x -> List.mem x (proj one_cfa)) (proj full));
  Alcotest.(check bool) "1-CFA within CI" true (List.for_all (fun x -> List.mem x vp_ci) (proj one_cfa))

let test_steensgaard_baseline () =
  (* Unification overapproximates inclusion: every Algorithm 2 fact is
     a Steensgaard fact, and on the container program the two distinct
     objects collapse into one class. *)
  let fg = fg_of container_src in
  let st = Pta.Steensgaard.run fg in
  let algo2 = Analyses.run_basic ~algo:Analyses.Algo2 fg in
  let vp2 = List.sort_uniq compare (List.map (fun t -> (t.(0), t.(1))) (Analyses.tuples algo2 "vP")) in
  let vps = Pta.Steensgaard.vp_tuples st in
  Alcotest.(check bool) "inclusion subset of unification" true (List.for_all (fun x -> List.mem x vps) vp2);
  let o1 = var_named fg "Main.main.o1" in
  Alcotest.(check bool) "unification merges O1 and O2" true
    (List.length (Pta.Steensgaard.points_to_of st o1) >= 2);
  Alcotest.(check bool) "avg set size at least inclusion's" true
    (Pta.Steensgaard.avg_points_to st
    >= Relation.count (Analyses.relation algo2 "vP") /. float_of_int (List.length (List.sort_uniq compare (List.map (fun t -> t.(0)) (Analyses.tuples algo2 "vP")))));
  (* Random programs keep the subset property. *)
  List.iter
    (fun seed ->
      let params = { Synth.Generator.default_params with seed; n_classes = 8; n_thread_classes = 1 } in
      let fg = Factgen.extract (Synth.Generator.generate params) in
      let st = Pta.Steensgaard.run fg in
      let vps = Pta.Steensgaard.vp_tuples st in
      let algo2 = Analyses.run_basic ~algo:Analyses.Algo2 fg in
      let vp2 = List.sort_uniq compare (List.map (fun t -> (t.(0), t.(1))) (Analyses.tuples algo2 "vP")) in
      Alcotest.(check bool)
        (Printf.sprintf "subset for seed %d" seed)
        true
        (List.for_all (fun x -> List.mem x vps) vp2))
    [ 1; 7; 99 ]

let cast_src =
  {|
class Apple extends Object {
}
class Banana extends Object {
}
class Main extends Object {
  static method pick(b : Object) : Object {
    return b
  }
  static method main() : void {
    var a : Apple
    var b : Banana
    var mixed : Object
    var fruit : Banana
    a = new Apple() @ "APPLE"
    b = new Banana() @ "BANANA"
    mixed = Main.pick(a)
    mixed = Main.pick(b)
    fruit = (Banana) mixed
  }
}
entry Main.main
|}

let test_cast_type_filter () =
  (* Casts are distinct variables in V with their own declared types
     (§2.3): the type filter drops the Apple from the downcast result
     even context-insensitively. *)
  let fg = fg_of cast_src in
  let mixed = var_named fg "Main.main.mixed" in
  let fruit = var_named fg "Main.main.fruit" in
  let ci = Analyses.run_basic ~algo:Analyses.Algo2 fg in
  Alcotest.(check (list string)) "mixed holds both" [ "APPLE"; "BANANA" ]
    (heap_names fg (targets ci "vP" ~var_pos:0 ~heap_pos:1 mixed));
  Alcotest.(check (list string)) "cast filters to Banana" [ "BANANA" ]
    (heap_names fg (targets ci "vP" ~var_pos:0 ~heap_pos:1 fruit));
  (* Algorithm 1 (no type filter) keeps both — the imprecision the
     filter removes. *)
  let nofilter = Analyses.run_basic ~algo:Analyses.Algo1 fg in
  Alcotest.(check (list string)) "no filter keeps both" [ "APPLE"; "BANANA" ]
    (heap_names fg (targets nofilter "vP" ~var_pos:0 ~heap_pos:1 fruit));
  (* Context-sensitively the cast stays filtered too. *)
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples (Analyses.run_basic ~algo:Analyses.Algo3 fg)) in
  let cs = Analyses.run_cs fg ctx in
  Alcotest.(check (list string)) "CS cast filtered" [ "BANANA" ]
    (heap_names fg (targets cs "vPC" ~var_pos:1 ~heap_pos:2 fruit))

let test_order_search () =
  let fg = fg_of container_src in
  let candidates = Pta.Order_search.search ~budget:3 fg (Pta.Order_search.Basic Analyses.Algo2) in
  Alcotest.(check bool) "at least default and reverse" true (List.length candidates >= 2);
  let peaks = List.map (fun c -> c.Pta.Order_search.peak_nodes) candidates in
  Alcotest.(check bool) "sorted best-first" true (List.sort compare peaks = peaks)

(* --- Thread escape analysis --- *)

let escape_src =
  {|
class Worker extends Thread {
  field priv : Object
  method run() : void {
    var o : Object
    var s : Object
    o = new Object() @ "WLOCAL"
    this.priv = o
    sync o
    s = new Object() @ "WSHARED"
    Main.shared = s
  }
}
class Main extends Object {
  static field shared : Object
  static method main() : void {
    var t1 : Worker
    var g : Object
    t1 = new Worker() @ "T1"
    t1.start()
    g = Main.shared
    sync g
  }
}
entry Main.main
|}

let test_thread_escape () =
  let fg = fg_of escape_src in
  let result, info = Analyses.run_thread_escape fg in
  (* Contexts: 0 global, 1 main, 2/3 the two Worker clones. *)
  Alcotest.(check int) "contexts" 4 info.Analyses.n_contexts;
  Alcotest.(check int) "one thread site" 1 (List.length info.Analyses.thread_sites);
  let names = Option.get (Factgen.element_names fg "H") in
  let escaped = List.sort_uniq compare (List.map (fun t -> names.(t.(1))) (Analyses.tuples result "escaped")) in
  (* WSHARED flows through the static; the global object and the
     thread object itself are shared between contexts. *)
  Alcotest.(check bool) "WSHARED escaped" true (List.mem "WSHARED" escaped);
  Alcotest.(check bool) "thread object escaped" true (List.mem "T1" escaped);
  Alcotest.(check bool) "global escaped" true (List.mem "<global>" escaped);
  Alcotest.(check bool) "WLOCAL captured" false (List.mem "WLOCAL" escaped);
  let counts = Analyses.escape_counts fg result in
  Alcotest.(check int) "captured sites" 1 counts.Analyses.captured_sites;
  (* syncs: sync o is unneeded (captured), sync g is needed. *)
  Alcotest.(check int) "needed syncs" 1 counts.Analyses.needed_syncs;
  Alcotest.(check int) "unneeded syncs" 1 counts.Analyses.unneeded_syncs

let nested_thread_src =
  {|
class Inner extends Thread {
  method run() : void {
    var b : Object
    b = new Object() @ "INNER-LOCAL"
    sync b
  }
}
class Outer extends Thread {
  method run() : void {
    var t : Inner
    var o : Object
    o = new Object() @ "OUTER-LOCAL"
    t = new Inner() @ "INNER-THREAD"
    t.start()
  }
}
class Main extends Object {
  static method main() : void {
    var w : Outer
    w = new Outer() @ "OUTER-THREAD"
    w.start()
  }
}
entry Main.main
|}

let test_nested_threads () =
  (* A thread creating threads: discovery must iterate — Inner's
     creation site is only visible from Outer's contexts. *)
  let fg = fg_of nested_thread_src in
  let result, info = Analyses.run_thread_escape fg in
  (* 0 global, 1 main, 2-3 Outer clones, 4-5 Inner clones. *)
  Alcotest.(check int) "six contexts" 6 info.Analyses.n_contexts;
  Alcotest.(check int) "two thread sites" 2 (List.length info.Analyses.thread_sites);
  let names = Option.get (Factgen.element_names fg "H") in
  let escaped = List.sort_uniq compare (List.map (fun t -> names.(t.(1))) (Analyses.tuples result "escaped")) in
  Alcotest.(check bool) "both thread objects escape" true
    (List.mem "OUTER-THREAD" escaped && List.mem "INNER-THREAD" escaped);
  Alcotest.(check bool) "locals stay captured" true
    ((not (List.mem "INNER-LOCAL" escaped)) && not (List.mem "OUTER-LOCAL" escaped));
  let counts = Analyses.escape_counts fg result in
  Alcotest.(check int) "all syncs removable" 0 counts.Analyses.needed_syncs

let test_single_threaded_escape () =
  let fg = fg_of container_src in
  let result, info = Analyses.run_thread_escape fg in
  Alcotest.(check int) "two contexts (global + main)" 2 info.Analyses.n_contexts;
  let counts = Analyses.escape_counts fg result in
  (* Only the global object escapes, as the paper reports for its
     single-threaded benchmarks (§6.3). *)
  Alcotest.(check int) "one escaped site" 1 counts.Analyses.escaped_sites

let test_precision_lattice_on_synth () =
  (* End-to-end invariant on a generated mid-size program: projected
     points-to sets shrink monotonically along
     Steensgaard ⊇ CHA ⊇ on-the-fly ⊇ 1-CFA ⊇ full cloning. *)
  let profile = Option.get (Synth.Profiles.find "joone") in
  let fg = Factgen.extract (Synth.Generator.generate (Synth.Profiles.params ~scale:0.02 profile)) in
  let pairs2 result rel = List.sort_uniq compare (List.map (fun t -> (t.(0), t.(1))) (Analyses.tuples result rel)) in
  let proj result = List.sort_uniq compare (List.map (fun t -> (t.(1), t.(2))) (Analyses.tuples result "vPC")) in
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  let steens = Pta.Steensgaard.vp_tuples (Pta.Steensgaard.run fg) in
  let cha = Analyses.run_basic ~algo:Analyses.Algo2 fg in
  let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
  let full = Analyses.run_cs fg ctx in
  let cfa1, _ = Analyses.run_1cfa fg in
  let vp_cha = pairs2 cha "vP" and vp_otf = pairs2 otf "vP" in
  Alcotest.(check bool) "CHA within Steensgaard" true (subset vp_cha steens);
  Alcotest.(check bool) "on-the-fly within CHA" true (subset vp_otf vp_cha);
  Alcotest.(check bool) "full cloning within on-the-fly" true (subset (proj full) vp_otf);
  (* 1-CFA is numbered over the CHA graph, so compare against CHA. *)
  Alcotest.(check bool) "1-CFA within CHA" true (subset (proj cfa1) vp_cha);
  Alcotest.(check bool) "strictly fewer pairs down the lattice" true
    (List.length (proj full) <= List.length vp_otf && List.length vp_otf <= List.length vp_cha
    && List.length vp_cha <= List.length steens)

(* --- §5 queries --- *)

let test_type_refinement () =
  let fg = fg_of container_src in
  let ci = Analyses.run_basic ~algo:Analyses.Algo2 ~query:Queries.refinement_ci fg in
  let ci_r = Analyses.refinement_ratios ci ~per_clone:false in
  let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
  let cs_proj = Analyses.run_cs fg ctx ~query:Queries.refinement_projected_cs in
  let proj_r = Analyses.refinement_ratios cs_proj ~per_clone:false in
  let cs_full = Analyses.run_cs fg ctx ~query:Queries.refinement_full_cs in
  let full_r = Analyses.refinement_ratios cs_full ~per_clone:true in
  let ts_full = Analyses.run_cs_types fg ctx ~query:Queries.refinement_full_ts in
  let ts_r = Analyses.refinement_ratios ts_full ~per_clone:true in
  let in_range r =
    r.Analyses.multi_pct >= 0.0 && r.Analyses.multi_pct <= 100.0 && r.Analyses.refinable_pct >= 0.0
    && r.Analyses.refinable_pct <= 100.0 && r.Analyses.population > 0.0
  in
  List.iter (fun r -> Alcotest.(check bool) "ratios in range" true (in_range r)) [ ci_r; proj_r; full_r; ts_r ];
  (* The paper's precision ordering: context-sensitive results are at
     least as precise (fewer multi-typed) as context-insensitive. *)
  Alcotest.(check bool) "projected CS <= CI multi" true (proj_r.Analyses.multi_pct <= ci_r.Analyses.multi_pct);
  Alcotest.(check bool) "full CS <= projected CS multi" true (full_r.Analyses.multi_pct <= proj_r.Analyses.multi_pct)

let test_jce_vuln_query () =
  let params = { Synth.Generator.default_params with n_classes = 8; jce_flavor = true } in
  let p = Synth.Generator.generate params in
  let fg = Factgen.extract p in
  let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
  let cs = Analyses.run_cs fg ctx ~query:(Queries.jce_vuln ~init_method:"PBEKeySpec.init") in
  let from_string = Analyses.tuples cs "fromString" in
  Alcotest.(check bool) "String-derived objects found" true (from_string <> []);
  let inames = Option.get (Factgen.element_names fg "I") in
  let vuln_sites = List.sort_uniq compare (List.map (fun t -> inames.(t.(1))) (Analyses.tuples cs "vuln")) in
  Alcotest.(check (list string)) "exactly the vulnerable call" [ "main:vuln-call" ] vuln_sites

let test_leak_query () =
  let fg = fg_of container_src in
  let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
  let cs = Analyses.run_cs fg ctx ~query:(Queries.who_points_to ~heap_label:"O1") in
  let hnames = Option.get (Factgen.element_names fg "H") in
  let holders = List.sort_uniq compare (List.map (fun t -> hnames.(t.(0))) (Analyses.tuples cs "whoPointsTo")) in
  (* O1 is stored into a1's field: A1 holds it. *)
  Alcotest.(check (list string)) "who points to O1" [ "A1" ] holders;
  Alcotest.(check bool) "whoDunnit found the store" true (Analyses.tuples cs "whoDunnit" <> [])

let test_mod_ref () =
  let fg = fg_of container_src in
  let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
  let cs = Analyses.run_cs fg ctx ~query:Queries.mod_ref in
  let mnames = Option.get (Factgen.element_names fg "M") in
  let hnames = Option.get (Factgen.element_names fg "H") in
  let mods =
    List.sort_uniq compare (List.map (fun t -> (mnames.(t.(1)), hnames.(t.(2)))) (Analyses.tuples cs "modset"))
  in
  (* set modifies its receiver's field; main transitively does too. *)
  Alcotest.(check bool) "A.set mods A1" true (List.mem ("A.set", "A1") mods);
  Alcotest.(check bool) "Main.main mods A1 transitively" true (List.mem ("Main.main", "A1") mods);
  Alcotest.(check bool) "A.get mods nothing" true (List.for_all (fun (m, _) -> m <> "A.get") mods);
  let refs =
    List.sort_uniq compare (List.map (fun t -> (mnames.(t.(1)), hnames.(t.(2)))) (Analyses.tuples cs "refset"))
  in
  Alcotest.(check bool) "A.get refs A1" true (List.mem ("A.get", "A1") refs)

let () =
  Alcotest.run "pta"
    [
      ( "context",
        [
          Alcotest.test_case "Example 1 clone counts" `Quick test_example1_counts;
          Alcotest.test_case "IEC/mC BDDs match tuples" `Quick test_example1_bdds_match_tuples;
          Alcotest.test_case "cap merging" `Quick test_context_cap_merging;
        ] );
      ( "precision",
        [
          Alcotest.test_case "CHA >= on-the-fly >= context-sensitive" `Quick test_precision_ordering;
        ] );
      ( "differential",
        [
          Alcotest.test_case "algo2 vs naive" `Quick test_algo2_vs_naive;
          Alcotest.test_case "algo3 vs naive" `Quick test_algo3_vs_naive;
          Alcotest.test_case "algo5 vs naive" `Quick test_algo5_vs_naive;
          Alcotest.test_case "synth program vs naive" `Quick test_synth_algo2_vs_naive;
          Alcotest.test_case "hand-coded vs engine" `Quick test_handcoded_vs_engine;
          Alcotest.test_case "synth algo5 vs naive" `Quick test_synth_algo5_vs_naive;
        ] );
      ( "escape",
        [
          Alcotest.test_case "two-thread program" `Quick test_thread_escape;
          Alcotest.test_case "single-threaded program" `Quick test_single_threaded_escape;
          Alcotest.test_case "nested thread creation" `Quick test_nested_threads;
        ] );
      ( "features",
        [
          Alcotest.test_case "exception flow" `Quick test_exception_flow;
          Alcotest.test_case "array element flow" `Quick test_array_flow;
          Alcotest.test_case "order search" `Quick test_order_search;
          Alcotest.test_case "cast type filtering" `Quick test_cast_type_filter;
          Alcotest.test_case "on-the-fly CS variant" `Quick test_cs_otf_variant;
          Alcotest.test_case "1-CFA vs full cloning" `Quick test_1cfa_vs_full_cloning;
          Alcotest.test_case "Steensgaard baseline" `Quick test_steensgaard_baseline;
          Alcotest.test_case "precision lattice on synth" `Quick test_precision_lattice_on_synth;
        ] );
      ( "queries",
        [
          Alcotest.test_case "type refinement" `Quick test_type_refinement;
          Alcotest.test_case "JCE vulnerability" `Quick test_jce_vuln_query;
          Alcotest.test_case "memory leak" `Quick test_leak_query;
          Alcotest.test_case "mod-ref" `Quick test_mod_ref;
        ] );
    ]
