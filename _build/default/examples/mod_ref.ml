(* Context-sensitive mod-ref analysis (§5.4).

   Which fields of which objects may a method modify or reference —
   per calling context?  The query builds the transitive
   reachable-variables relation mV*C over the cloned call graph and
   joins it with the stores/loads and the context-sensitive points-to
   results.

   Run with: dune exec examples/mod_ref.exe *)

module Factgen = Jir.Factgen
module Analyses = Pta.Analyses
module Queries = Pta.Queries

let source =
  {|
class Counter extends Object {
  field count : Object
  method bump(v : Object) : void {
    this.count = v
  }
  method peek() : Object {
    var r : Object
    r = this.count
    return r
  }
}
class Audit extends Object {
  static method observe(c : Counter) : Object {
    var snapshot : Object
    snapshot = c.peek()
    return snapshot
  }
}
class Main extends Object {
  static method main() : void {
    var hits : Counter
    var misses : Counter
    var one : Object
    var seen : Object
    hits = new Counter() @ "hits-counter"
    misses = new Counter() @ "misses-counter"
    one = new Object() @ "token"
    hits.bump(one)
    seen = Audit.observe(hits)
    seen = Audit.observe(misses)
  }
}
entry Main.main
|}

let () =
  let program = Jir.Jparser.parse source in
  let fg = Factgen.extract program in
  let ci = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples ci) in
  let cs = Analyses.run_cs fg ctx ~query:Queries.mod_ref in
  let m_names = Option.get (Factgen.element_names fg "M") in
  let h_names = Option.get (Factgen.element_names fg "H") in
  let f_names = Option.get (Factgen.element_names fg "F") in
  let show rel =
    List.iter
      (fun t -> Printf.printf "  ctx %-2d %-15s %s.%s\n" t.(0) m_names.(t.(1)) h_names.(t.(2)) f_names.(t.(3)))
      (List.sort compare (Analyses.tuples cs rel))
  in
  print_endline "mod sets (method may modify object.field):";
  show "modset";
  print_endline "\nref sets (method may reference object.field):";
  show "refset";
  print_endline "\nNote: Counter.bump modifies only the hits counter (it is never";
  print_endline "called on misses), while Audit.observe references both counters —";
  print_endline "but in separate contexts, so a client could specialize per call site."
