(* Quickstart: parse a small program, run the context-insensitive and
   context-sensitive points-to analyses, and show where cloning wins.

   Run with: dune exec examples/quickstart.exe *)

module Factgen = Jir.Factgen
module Analyses = Pta.Analyses
module Context = Pta.Context

(* Two containers, each holding a different object.  A context-
   insensitive analysis merges the two [set] calls and concludes either
   container may hold either object; cloning keeps them apart. *)
let source =
  {|
class Box extends Object {
  field item : Object
  method put(v : Object) : void {
    this.item = v
  }
  method take() : Object {
    var r : Object
    r = this.item
    return r
  }
}
class Main extends Object {
  static method main() : void {
    var red_box : Box
    var blue_box : Box
    var red : Object
    var blue : Object
    var from_red : Object
    var from_blue : Object
    red_box = new Box() @ "RedBox"
    blue_box = new Box() @ "BlueBox"
    red = new Object() @ "RedItem"
    blue = new Object() @ "BlueItem"
    red_box.put(red)
    blue_box.put(blue)
    from_red = red_box.take()
    from_blue = blue_box.take()
  }
}
entry Main.main
|}

let () =
  let program = Jir.Jparser.parse source in
  let fg = Factgen.extract program in
  let heap_name =
    let names = Option.get (Factgen.element_names fg "H") in
    fun h -> names.(h)
  in
  let var_id name =
    let names = Option.get (Factgen.element_names fg "V") in
    let found = ref (-1) in
    Array.iteri (fun i n -> if n = name then found := i) names;
    !found
  in
  (* 1. Context-insensitive points-to with on-the-fly call graph
        discovery (Algorithm 3). *)
  let ci = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let show_ci v =
    let hs =
      List.filter_map (fun t -> if t.(0) = var_id v then Some (heap_name t.(1)) else None) (Analyses.tuples ci "vP")
    in
    Printf.printf "  %-20s -> { %s }\n" v (String.concat ", " (List.sort_uniq compare hs))
  in
  print_endline "Context-insensitive (Algorithm 3): the two put() calls merge:";
  show_ci "Main.main.from_red";
  show_ci "Main.main.from_blue";
  (* 2. Number the contexts (Algorithm 4) and rerun context-sensitively
        (Algorithm 5). *)
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples ci) in
  Printf.printf "\nAlgorithm 4 numbered %s reduced call paths (C domain size %d).\n"
    (Bignat.to_string (Context.total_paths ctx))
    (Context.csize ctx);
  let cs = Analyses.run_cs fg ctx in
  let show_cs v =
    let hs =
      List.filter_map (fun t -> if t.(1) = var_id v then Some (heap_name t.(2)) else None) (Analyses.tuples cs "vPC")
    in
    Printf.printf "  %-20s -> { %s }\n" v (String.concat ", " (List.sort_uniq compare hs))
  in
  print_endline "\nContext-sensitive (Algorithm 5): each call chain is a clone:";
  show_cs "Main.main.from_red";
  show_cs "Main.main.from_blue";
  Printf.printf "\nSolved in %d rule applications, %d fixpoint rounds, %d peak BDD nodes.\n"
    cs.Analyses.stats.Datalog.Engine.rule_applications cs.Analyses.stats.Datalog.Engine.iterations
    cs.Analyses.stats.Datalog.Engine.peak_live_nodes
