examples/security_audit.mli:
