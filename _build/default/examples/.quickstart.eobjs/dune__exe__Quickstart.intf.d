examples/quickstart.mli:
