examples/memory_leak.mli:
