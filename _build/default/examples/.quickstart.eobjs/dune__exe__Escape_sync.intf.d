examples/escape_sync.mli:
