examples/mod_ref.mli:
