examples/mod_ref.ml: Array Jir List Option Printf Pta
