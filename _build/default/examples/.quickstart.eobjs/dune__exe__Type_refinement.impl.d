examples/type_refinement.ml: Jir Option Printf Pta Synth
