examples/bddbddb_direct.ml: Array Bdd Datalog List Printf Relation Space String
