examples/type_refinement.mli:
