examples/escape_sync.ml: Array Jir List Option Printf Pta
