examples/bddbddb_direct.mli:
