examples/quickstart.ml: Array Bignat Datalog Jir List Option Printf Pta String
