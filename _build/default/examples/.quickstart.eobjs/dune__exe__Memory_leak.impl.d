examples/memory_leak.ml: Array Jir List Option Printf Pta
