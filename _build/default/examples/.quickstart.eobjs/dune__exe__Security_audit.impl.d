examples/security_audit.ml: Array Jir List Option Printf Pta
