(* Finding a security vulnerability (§5.2).

   Secret keys must not be stored in immutable String objects, so
   PBEKeySpec.init only accepts char/byte arrays — but a programmer can
   defeat the guard by converting a String.  The query flags every
   init() call whose argument is derived from a String, even through
   many variables, fields and calls.

   Run with: dune exec examples/security_audit.exe *)

module Factgen = Jir.Factgen
module Analyses = Pta.Analyses
module Queries = Pta.Queries

let source =
  {|
class String extends Object {
  method toCharArray() : Object {
    var a : Object
    a = new Object() @ "chars-from-string"
    return a
  }
}
class PBEKeySpec extends Object {
  field key : Object
  method init(k : Object) : void {
    this.key = k
  }
}
class KeyVault extends Object {
  field stored : Object
  method stash(k : Object) : void {
    this.stored = k
  }
  method fetch() : Object {
    var r : Object
    r = this.stored
    return r
  }
}
class Main extends Object {
  static method main() : void {
    var pw : String
    var chars : Object
    var vault : KeyVault
    var laundered : Object
    var spec1 : PBEKeySpec
    var spec2 : PBEKeySpec
    var fresh : Object

    # BAD: key derived from a String, laundered through a container.
    pw = new String() @ "the-password-string"
    chars = pw.toCharArray()
    vault = new KeyVault() @ "vault"
    vault.stash(chars)
    laundered = vault.fetch()
    spec1 = new PBEKeySpec() @ "spec-bad"
    spec1.init(laundered) @ "bad-init-call"

    # GOOD: key material never touched a String.
    fresh = new Object() @ "random-bytes"
    spec2 = new PBEKeySpec() @ "spec-good"
    spec2.init(fresh) @ "good-init-call"
  }
}
entry Main.main
|}

let () =
  let program = Jir.Jparser.parse source in
  let fg = Factgen.extract program in
  let ci = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples ci) in
  let cs = Analyses.run_cs fg ctx ~query:(Queries.jce_vuln ~init_method:"PBEKeySpec.init") in
  let h_names = Option.get (Factgen.element_names fg "H") in
  let i_names = Option.get (Factgen.element_names fg "I") in
  print_endline "Objects derived from String methods (fromString):";
  List.iter (fun t -> Printf.printf "  %s\n" h_names.(t.(0))) (Analyses.tuples cs "fromString");
  print_endline "\nVulnerable PBEKeySpec.init calls (vuln):";
  let vulns = Analyses.tuples cs "vuln" in
  List.iter (fun t -> Printf.printf "  context %-3d at %s\n" t.(0) i_names.(t.(1))) vulns;
  let sites = List.sort_uniq compare (List.map (fun t -> i_names.(t.(1))) vulns) in
  if sites = [ "bad-init-call" ] then
    print_endline "\nOnly the laundered String key is flagged; the fresh key passes the audit."
  else print_endline "\nUNEXPECTED result - the query should flag exactly the bad call."
