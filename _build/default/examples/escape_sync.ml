(* Thread escape analysis and synchronization elimination (§5.6).

   A worker thread keeps a private scratch buffer (never visible to
   other threads) and publishes results through a shared static queue.
   The analysis proves the scratch buffer is captured — its syncs can
   be removed and it could be allocated in a thread-local heap — while
   the published results escape and keep their syncs.

   Run with: dune exec examples/escape_sync.exe *)

module Factgen = Jir.Factgen
module Analyses = Pta.Analyses

let source =
  {|
class Buffer extends Object {
}
class Result extends Object {
}
class Worker extends Thread {
  field scratch : Buffer
  method run() : void {
    var b : Buffer
    var r : Result
    b = new Buffer() @ "scratch-buffer"
    this.scratch = b
    sync b
    r = new Result() @ "published-result"
    Main.results = r
    sync r
  }
}
class Main extends Object {
  static field results : Result
  static method main() : void {
    var w1 : Worker
    var w2 : Worker
    var seen : Result
    w1 = new Worker() @ "worker-1"
    w2 = new Worker() @ "worker-2"
    w1.start()
    w2.start()
    seen = Main.results
    sync seen
  }
}
entry Main.main
|}

let () =
  let program = Jir.Jparser.parse source in
  let fg = Factgen.extract program in
  let result, info = Analyses.run_thread_escape fg in
  Printf.printf "Thread contexts: %d (context 0 = globals, 1 = startup thread, then 2 clones per creation site)\n\n"
    info.Analyses.n_contexts;
  let h_names = Option.get (Factgen.element_names fg "H") in
  let v_names = Option.get (Factgen.element_names fg "V") in
  let show rel =
    let entries =
      List.sort_uniq compare (List.map (fun t -> Printf.sprintf "(ctx %d) %s" t.(0) h_names.(t.(1))) (Analyses.tuples result rel))
    in
    List.iter (fun e -> Printf.printf "  %s\n" e) entries
  in
  print_endline "Captured objects (thread-local; may go on a thread-local heap):";
  show "captured";
  print_endline "\nEscaped objects (reachable from another thread):";
  show "escaped";
  print_endline "\nSynchronizations that are still needed:";
  List.iter
    (fun t -> Printf.printf "  (ctx %d) sync %s\n" t.(0) v_names.(t.(1)))
    (List.sort_uniq compare (Analyses.tuples result "neededSyncs"));
  let counts = Analyses.escape_counts fg result in
  Printf.printf "\nSummary: %d captured / %d escaped allocation sites; %d of %d syncs removable.\n"
    counts.Analyses.captured_sites counts.Analyses.escaped_sites counts.Analyses.unneeded_syncs
    (counts.Analyses.unneeded_syncs + counts.Analyses.needed_syncs)
