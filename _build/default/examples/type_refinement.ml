(* Type refinement (§5.3, Figure 6).

   Libraries declare the most general types; applications use only a
   fraction of that generality.  The query finds variables whose
   declared type can be tightened, across the paper's six analysis
   variants — watch the multi-typed percentage fall and the refinable
   percentage rise as precision increases.

   Run with: dune exec examples/type_refinement.exe *)

module Factgen = Jir.Factgen
module Analyses = Pta.Analyses
module Queries = Pta.Queries

let () =
  (* A mid-size synthetic benchmark: Object-typed utility methods with
     heavy fan-in are exactly where refinement is possible. *)
  let profile = Option.get (Synth.Profiles.find "joone") in
  let program = Synth.Generator.generate (Synth.Profiles.params ~scale:0.03 profile) in
  let fg = Factgen.extract program in
  Printf.printf "Benchmark: %s (%s), scaled.\n\n" profile.Synth.Profiles.name profile.Synth.Profiles.description;
  let row name r =
    Printf.printf "  %-34s population %7.0f   multi %5.2f%%   refinable %5.2f%%\n" name r.Analyses.population
      r.Analyses.multi_pct r.Analyses.refinable_pct
  in
  (* 1-2: context-insensitive, without and with the type filter. *)
  let v1 = Analyses.run_basic ~algo:Analyses.Algo1 fg ~query:Queries.refinement_ci in
  row "CI pointers, no type filter" (Analyses.refinement_ratios v1 ~per_clone:false);
  let v2 = Analyses.run_basic ~algo:Analyses.Algo2 fg ~query:Queries.refinement_ci in
  row "CI pointers, type filter" (Analyses.refinement_ratios v2 ~per_clone:false);
  (* Context numbering for the sensitive variants. *)
  let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
  (* 3-4: context-sensitive, results projected back to plain variables. *)
  let v3 = Analyses.run_cs fg ctx ~query:Queries.refinement_projected_cs in
  row "CS pointers, context projected" (Analyses.refinement_ratios v3 ~per_clone:false);
  let v4 = Analyses.run_cs_types fg ctx ~query:Queries.refinement_projected_ts in
  row "CS types, context projected" (Analyses.refinement_ratios v4 ~per_clone:false);
  (* 5-6: fully context-sensitive, per clone. *)
  let v5 = Analyses.run_cs fg ctx ~query:Queries.refinement_full_cs in
  row "CS pointers, per clone" (Analyses.refinement_ratios v5 ~per_clone:true);
  let v6 = Analyses.run_cs_types fg ctx ~query:Queries.refinement_full_ts in
  row "CS types, per clone" (Analyses.refinement_ratios v6 ~per_clone:true);
  print_endline "\nAs in the paper: type filtering is strictly more precise, the";
  print_endline "context-sensitive pointer analysis more precise still, and the";
  print_endline "fully-cloned results have the fewest multi-typed variables."
