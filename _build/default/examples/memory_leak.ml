(* Debugging a memory leak (§5.1).

   A cache keeps references to session objects after they are done;
   the programmer suspects the allocation at "Session.java:57" leaks.
   The whoPointsTo / whoDunnit queries report which heap objects hold
   the leaked object and which stores (with their calling contexts)
   created the references.

   Run with: dune exec examples/memory_leak.exe *)

module Factgen = Jir.Factgen
module Analyses = Pta.Analyses
module Queries = Pta.Queries

let source =
  {|
class Session extends Object {
}
class Cache extends Object {
  field head : Entry
  method remember(s : Session) : void {
    var e : Entry
    e = new Entry() @ "Cache.remember:entry"
    e.payload = s
    this.head = e
  }
}
class Entry extends Object {
  field payload : Session
}
class Main extends Object {
  static field cache : Cache
  static method handle(c : Cache) : void {
    var s : Session
    s = new Session() @ "Session.java:57"
    c.remember(s)
  }
  static method main() : void {
    var c : Cache
    c = new Cache() @ "TheCache"
    Main.cache = c
    Main.handle(c)
    Main.handle(c)
  }
}
entry Main.main
|}

let () =
  let program = Jir.Jparser.parse source in
  let fg = Factgen.extract program in
  let ci = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples ci) in
  let cs = Analyses.run_cs fg ctx ~query:(Queries.who_points_to ~heap_label:"Session.java:57") in
  let h_names = Option.get (Factgen.element_names fg "H") in
  let f_names = Option.get (Factgen.element_names fg "F") in
  let v_names = Option.get (Factgen.element_names fg "V") in
  print_endline "Who may point to the objects allocated at Session.java:57?";
  List.iter
    (fun t -> Printf.printf "  heap object %-24s field %s\n" h_names.(t.(0)) f_names.(t.(1)))
    (Analyses.tuples cs "whoPointsTo");
  print_endline "\nWhich stores created those references (whoDunnit)?";
  List.iter
    (fun t ->
      Printf.printf "  context %-3d  %s.%s = %s\n" t.(0) v_names.(t.(1)) f_names.(t.(2)) v_names.(t.(3)))
    (Analyses.tuples cs "whoDunnit");
  print_endline "\nSo the Entry objects made in Cache.remember hold the sessions,";
  print_endline "and the cache itself is reachable from the static field Main.cache."
