(* Using the bddbddb engine directly, without the pointer-analysis
   front end: Datalog in, relations out (§2: "we store all program
   information and results as relations and express our analyses in
   Datalog").

   The program below is the paper's own example rule D(w,z) :-
   A(w,x), B(x,y), C(y,z), extended with the transitive closure that
   §2.4.1 uses to illustrate incrementalization.

   Run with: dune exec examples/bddbddb_direct.exe *)

let program =
  {|
# Domains: one set of nodes.
DOMAINS
V 16

RELATIONS
input A (w : V, x : V)
input B (x : V, y : V)
input C (y : V, z : V)
output D (w : V, z : V)
input edge (src : V, dst : V)
output tc (src : V, dst : V)

RULES
# The paper's first example rule (§2.1).
D(w, z) :- A(w, x), B(x, y), C(y, z).

# Transitive closure, incrementalized by the engine (§2.4.1).
tc(x, y) :- edge(x, y).
tc(x, z) :- tc(x, y), edge(y, z).
|}

let () =
  let eng = Datalog.Engine.parse_and_create program in
  Datalog.Engine.set_tuples eng "A" [ [| 0; 1 |]; [| 5; 6 |] ];
  Datalog.Engine.set_tuples eng "B" [ [| 1; 2 |]; [| 6; 7 |] ];
  Datalog.Engine.set_tuples eng "C" [ [| 2; 3 |]; [| 7; 8 |] ];
  Datalog.Engine.set_tuples eng "edge" [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 3; 4 |]; [| 10; 11 |] ];
  let stats = Datalog.Engine.run eng in
  let show name =
    let rel = Datalog.Engine.relation eng name in
    Printf.printf "%s = { %s }\n" name
      (String.concat ", "
         (List.map (fun t -> Printf.sprintf "(%d,%d)" t.(0) t.(1)) (Relation.tuples rel)))
  in
  show "D";
  show "tc";
  Printf.printf "\n%d rule applications over %d strata, %d fixpoint rounds.\n" stats.Datalog.Engine.rule_applications
    stats.Datalog.Engine.strata stats.Datalog.Engine.iterations;
  (* Peek under the hood: the BDD of tc, as Graphviz. *)
  let tc = Datalog.Engine.relation eng "tc" in
  let dot = Bdd.to_dot (Space.man (Datalog.Engine.space eng)) (Relation.bdd tc) in
  Printf.printf "\nThe tc relation is a %d-node BDD; first lines of its dot rendering:\n"
    (Bdd.node_count (Space.man (Datalog.Engine.space eng)) (Relation.bdd tc));
  String.split_on_char '\n' dot |> List.filteri (fun i _ -> i < 6) |> List.iter print_endline
