let var_name p v = (Ir.var p v).Ir.v_name
let cls_name p c = (Ir.cls p c).Ir.cls_name

let pp_args p fmt args =
  Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") (fun f v -> Format.pp_print_string f (var_name p v)) fmt
    args

let pp_stmt p fmt (s : Ir.stmt) =
  match s with
  | Ir.New { dst; cls; heap; init_site = _; args } ->
    Format.fprintf fmt "%s = new %s(%a) @@ %S" (var_name p dst) (cls_name p cls) (pp_args p) args
      (Ir.heap p heap).Ir.h_label
  | Ir.Assign { dst; src } -> Format.fprintf fmt "%s = %s" (var_name p dst) (var_name p src)
  | Ir.Cast { dst; src; target } -> Format.fprintf fmt "%s = (%s) %s" (var_name p dst) (cls_name p target) (var_name p src)
  | Ir.Load { dst; base; fld } ->
    Format.fprintf fmt "%s = %s.%s" (var_name p dst) (var_name p base) (Ir.field p fld).Ir.fld_name
  | Ir.Store { base; fld; src } ->
    Format.fprintf fmt "%s.%s = %s" (var_name p base) (Ir.field p fld).Ir.fld_name (var_name p src)
  | Ir.Load_static { dst; fld } ->
    let f = Ir.field p fld in
    Format.fprintf fmt "%s = %s.%s" (var_name p dst) (cls_name p f.Ir.fld_owner) f.Ir.fld_name
  | Ir.Store_static { fld; src } ->
    let f = Ir.field p fld in
    Format.fprintf fmt "%s.%s = %s" (cls_name p f.Ir.fld_owner) f.Ir.fld_name (var_name p src)
  | Ir.Invoke { ret; kind; site; base; name; target; args } -> (
    let label = (Ir.invoke p site).Ir.i_label in
    let pp_ret fmt =
      match ret with
      | Some r -> Format.fprintf fmt "%s = " (var_name p r)
      | None -> ()
    in
    match (kind, base, target) with
    | Ir.Virtual, Some b, _ -> Format.fprintf fmt "%t%s.%s(%a) @@ %S" pp_ret (var_name p b) name (pp_args p) args label
    | Ir.Static, _, Some m ->
      Format.fprintf fmt "%t%s.%s(%a) @@ %S" pp_ret (cls_name p (Ir.meth p m).Ir.m_owner) name (pp_args p) args label
    | Ir.Special, Some b, Some m ->
      let owner = cls_name p (Ir.meth p m).Ir.m_owner in
      if args = [] then Format.fprintf fmt "%tspecial %s.%s(%s) @@ %S" pp_ret owner name (var_name p b) label
      else Format.fprintf fmt "%tspecial %s.%s(%s, %a) @@ %S" pp_ret owner name (var_name p b) (pp_args p) args label
    | (Ir.Virtual | Ir.Static | Ir.Special), _, _ -> Format.fprintf fmt "# unprintable invoke %s" name)
  | Ir.Array_load { dst; base } -> Format.fprintf fmt "%s = %s[]" (var_name p dst) (var_name p base)
  | Ir.Array_store { base; src } -> Format.fprintf fmt "%s[] = %s" (var_name p base) (var_name p src)
  | Ir.Throw v -> Format.fprintf fmt "throw %s" (var_name p v)
  | Ir.Catch v -> Format.fprintf fmt "%s = catch" (var_name p v)
  | Ir.Return v -> Format.fprintf fmt "return %s" (var_name p v)
  | Ir.Sync v -> Format.fprintf fmt "sync %s" (var_name p v)

let pp_method p fmt (m : Ir.jmethod) =
  let formals = if m.Ir.m_static then m.Ir.m_formals else List.tl m.Ir.m_formals in
  let ret =
    match m.Ir.m_ret with
    | Some c -> cls_name p c
    | None -> "void"
  in
  Format.fprintf fmt "  %smethod %s(%a) : %s {@."
    (if m.Ir.m_static then "static " else "")
    m.Ir.m_name
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") (fun f v ->
         Format.fprintf f "%s : %s" (var_name p v) (cls_name p (Ir.var p v).Ir.v_type)))
    formals ret;
  List.iter
    (fun v -> Format.fprintf fmt "    var %s : %s@." (var_name p v) (cls_name p (Ir.var p v).Ir.v_type))
    m.Ir.m_locals;
  List.iter (fun s -> Format.fprintf fmt "    %a@." (pp_stmt p) s) m.Ir.m_body;
  Format.fprintf fmt "  }@."

(* Is this method worth printing?  Implicit constructors with no body
   and no extra formals are recreated automatically on parse. *)
let nontrivial_method p (m : Ir.jmethod) =
  ignore p;
  not (m.Ir.m_name = "<init>" && m.Ir.m_body = [] && List.length m.Ir.m_formals <= 1)

let builtin_default_method p (m : Ir.jmethod) =
  (m.Ir.m_owner = Ir.thread_class p && m.Ir.m_name = "run" && m.Ir.m_body = [])
  || not (nontrivial_method p m)

let pp p fmt =
  Ir.iter_classes p (fun c ->
      let is_builtin =
        c.Ir.cls_id = Ir.object_class p || c.Ir.cls_id = Ir.thread_class p || c.Ir.cls_id = Ir.string_class p
      in
      let methods = List.map (Ir.meth p) c.Ir.cls_methods in
      let printable_methods =
        List.filter (fun m -> if is_builtin then not (builtin_default_method p m) else nontrivial_method p m) methods
      in
      let printable_fields = List.filter (fun f -> f <> Ir.array_field p) c.Ir.cls_fields in
      if c.Ir.cls_interface then begin
        match c.Ir.cls_impls with
        | [] -> Format.fprintf fmt "interface %s {@.}@." c.Ir.cls_name
        | extends ->
          Format.fprintf fmt "interface %s extends %s {@.}@." c.Ir.cls_name
            (String.concat ", " (List.map (cls_name p) extends))
      end
      else if (not is_builtin) || printable_fields <> [] || printable_methods <> [] then begin
        let implements =
          match c.Ir.cls_impls with
          | [] -> ""
          | impls -> " implements " ^ String.concat ", " (List.map (cls_name p) impls)
        in
        (match c.Ir.cls_super with
        | Some s -> Format.fprintf fmt "class %s extends %s%s {@." c.Ir.cls_name (cls_name p s) implements
        | None -> Format.fprintf fmt "class %s extends Object%s {@." c.Ir.cls_name implements);
        List.iter
          (fun f ->
            (* The built-in array-element descriptor is recreated on
               parse; never print it. *)
            if f <> Ir.array_field p then begin
              let fr = Ir.field p f in
              Format.fprintf fmt "  %sfield %s : %s@."
                (if fr.Ir.fld_static then "static " else "")
                fr.Ir.fld_name (cls_name p fr.Ir.fld_type)
            end)
          c.Ir.cls_fields;
        List.iter (fun m -> pp_method p fmt m) printable_methods;
        Format.fprintf fmt "}@."
      end);
  List.iter
    (fun m ->
      let mm = Ir.meth p m in
      Format.fprintf fmt "entry %s.%s@." (cls_name p mm.Ir.m_owner) mm.Ir.m_name)
    (Ir.entries p)

let pp fmt p = pp p fmt

let to_string p = Format.asprintf "%a" pp p
