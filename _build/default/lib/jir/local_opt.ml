(* Forward copy propagation over a straight-line body.

   [env] maps a variable to the variable currently holding the same
   value.  A definition of [d] kills every binding whose key or value
   is [d]. *)

let kill env d =
  Hashtbl.remove env d;
  let stale = Hashtbl.fold (fun k v acc -> if v = d then k :: acc else acc) env [] in
  List.iter (Hashtbl.remove env) stale

let rep env v =
  match Hashtbl.find_opt env v with
  | Some v' -> v'
  | None -> v

let rewrite_method (m : Ir.jmethod) =
  let env : (Ir.var_id, Ir.var_id) Hashtbl.t = Hashtbl.create 8 in
  let removed = ref 0 in
  let body =
    List.filter_map
      (fun (s : Ir.stmt) ->
        match s with
        | Ir.Assign { dst; src } ->
          let src = rep env src in
          kill env dst;
          if src <> dst then Hashtbl.replace env dst src;
          incr removed;
          None
        | Ir.New { dst; cls; heap; init_site; args } ->
          let args = List.map (rep env) args in
          kill env dst;
          Some (Ir.New { dst; cls; heap; init_site; args })
        | Ir.Cast { dst; src; target } ->
          let src = rep env src in
          kill env dst;
          Some (Ir.Cast { dst; src; target })
        | Ir.Load { dst; base; fld } ->
          let base = rep env base in
          kill env dst;
          Some (Ir.Load { dst; base; fld })
        | Ir.Store { base; fld; src } -> Some (Ir.Store { base = rep env base; fld; src = rep env src })
        | Ir.Load_static { dst; fld } ->
          kill env dst;
          Some (Ir.Load_static { dst; fld })
        | Ir.Store_static { fld; src } -> Some (Ir.Store_static { fld; src = rep env src })
        | Ir.Invoke { ret; kind; site; base; name; target; args } ->
          let base = Option.map (rep env) base in
          let args = List.map (rep env) args in
          (match ret with
          | Some r -> kill env r
          | None -> ());
          Some (Ir.Invoke { ret; kind; site; base; name; target; args })
        | Ir.Array_load { dst; base } ->
          let base = rep env base in
          kill env dst;
          Some (Ir.Array_load { dst; base })
        | Ir.Array_store { base; src } -> Some (Ir.Array_store { base = rep env base; src = rep env src })
        | Ir.Throw v -> Some (Ir.Throw (rep env v))
        | Ir.Catch v ->
          kill env v;
          Some (Ir.Catch v)
        | Ir.Return v -> Some (Ir.Return (rep env v))
        | Ir.Sync v -> Some (Ir.Sync (rep env v)))
      m.Ir.m_body
  in
  m.Ir.m_body <- body;
  !removed

let run p =
  let total = ref 0 in
  Ir.iter_methods p (fun m -> total := !total + rewrite_method m);
  !total
