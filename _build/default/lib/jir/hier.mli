(** Class-hierarchy queries: subtyping, assignability (the paper's
    [aT] relation), virtual-dispatch tables (the [cha] relation of
    Algorithm 3), and thread detection. *)

val subclass_of : Ir.t -> Ir.class_id -> Ir.class_id -> bool
(** [subclass_of p sub sup]: reflexive, transitive. *)

val assignable : Ir.t -> Ir.class_id -> Ir.class_id -> bool
(** [assignable p t1 t2]: a value of type [t2] may be assigned to a
    variable declared [t1] — [t2] is a subclass of [t1], or [t1] is an
    interface [t2] (or an ancestor) implements (§2.3's "allowances for
    interfaces"). *)

val interfaces_of : Ir.t -> Ir.class_id -> Ir.class_id list
(** All interfaces the type conforms to, transitively. *)

val dispatch : Ir.t -> Ir.class_id -> string -> Ir.method_id option
(** [dispatch p c name]: the method invoked when [name] is called on a
    receiver of dynamic type [c] — the nearest declaration of [name] on
    the path from [c] to the root. *)

val is_thread : Ir.t -> Ir.class_id -> bool
(** Subclass of the built-in [Thread]. *)

val run_method : Ir.t -> Ir.class_id -> Ir.method_id option
(** The [run()] method a thread of this class executes. *)

val aT_tuples : Ir.t -> (int * int) list
(** All pairs [(sup, sub)] with [assignable sup sub] — the [aT]
    input relation. *)

val cha_tuples : Ir.t -> (int * string * int) list
(** All [(t, n, m)] with [dispatch t n = Some m], for every concrete
    class [t] and method name [n] visible on it. *)

val thread_dispatch_tuples : Ir.t -> (int * string * int) list
(** The [(t, "start", run)] entries that make [t.start()] dispatch to
    the thread's [run()] method — the paper's thread-to-run matching
    (§3 footnote 3), kept separate so Algorithm 7 can exclude it. *)
