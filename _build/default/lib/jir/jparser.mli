(** Parser for the textual IR format (".jir").

    {v
    # comment
    class A extends Object {
      field f : B
      static field sf : B
      method m(p : B) : B {          # receiver 'this' is implicit
        var v : B
        v = new B()                  # allocation + B.<init>()
        v = new B(p) @ "B.java:12"   # optional site label
        v.f = p                      # instance store
        v = p.f                      # instance load
        A.sf = v                     # static store
        v = A.sf                     # static load
        v = (B) p                    # cast
        v = p.m(v)                   # virtual call
        p.m(v)                       # virtual call, result ignored
        v = A.sm(p)                  # static call
        special Object.<init>(v)     # non-virtual (super/constructor) call
        sync v
        return v
      }
      static method sm(p : B) : B { ... }
    }
    entry A.m
    v} *)

type error = { message : string; line : int }

exception Parse_error of error

val parse : string -> Ir.t
(** Raises {!Parse_error} on syntax or elaboration errors (unknown
    classes/fields/methods/variables, duplicate locals, calling an
    instance member on a class name, ...). *)

val parse_file : string -> Ir.t
