let rec subclass_of p sub sup =
  if sub = sup then true
  else
    match (Ir.cls p sub).Ir.cls_super with
    | Some s -> subclass_of p s sup
    | None -> false

(* All interfaces a type conforms to: its own (or super-interface)
   declarations plus those of its ancestors, transitively. *)
let interfaces_of p c =
  let seen = Hashtbl.create 8 in
  let rec add_iface i =
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      List.iter add_iface (Ir.cls p i).Ir.cls_impls
    end
  in
  let rec walk c =
    List.iter add_iface (Ir.cls p c).Ir.cls_impls;
    match (Ir.cls p c).Ir.cls_super with
    | Some s -> walk s
    | None -> ()
  in
  walk c;
  if (Ir.cls p c).Ir.cls_interface then add_iface c;
  Hashtbl.fold (fun i () acc -> i :: acc) seen []

let assignable p t1 t2 =
  subclass_of p t2 t1 || ((Ir.cls p t1).Ir.cls_interface && List.mem t1 (interfaces_of p t2))

let rec dispatch p c name =
  match Ir.find_method p c name with
  | Some m -> Some m
  | None -> (
    match (Ir.cls p c).Ir.cls_super with
    | Some s -> dispatch p s name
    | None -> None)

let is_thread p c = subclass_of p c (Ir.thread_class p)

let run_method p c = if is_thread p c then dispatch p c "run" else None

let aT_tuples p =
  let out = ref [] in
  Ir.iter_classes p (fun sub ->
      let rec walk sup =
        out := (sup.Ir.cls_id, sub.Ir.cls_id) :: !out;
        match sup.Ir.cls_super with
        | Some s -> walk (Ir.cls p s)
        | None -> ()
      in
      walk sub;
      List.iter (fun i -> out := (i, sub.Ir.cls_id) :: !out) (interfaces_of p sub.Ir.cls_id));
  List.sort_uniq compare !out

(* Method names visible on a class: declared here or inherited. *)
let visible_names p c =
  let names = Hashtbl.create 8 in
  let rec walk c =
    List.iter (fun m -> Hashtbl.replace names (Ir.meth p m).Ir.m_name ()) (Ir.cls p c).Ir.cls_methods;
    match (Ir.cls p c).Ir.cls_super with
    | Some s -> walk s
    | None -> ()
  in
  walk c.Ir.cls_id;
  Hashtbl.fold (fun n () acc -> n :: acc) names []

let cha_tuples p =
  let out = ref [] in
  Ir.iter_classes p (fun c ->
      List.iter
        (fun n ->
          match dispatch p c.Ir.cls_id n with
          | Some m -> if n <> "<init>" then out := (c.Ir.cls_id, n, m) :: !out
          | None -> ())
        (visible_names p c));
  !out

let thread_dispatch_tuples p =
  (* Thread-to-run matching (§3, footnote 3): invoking start() on a
     thread object dispatches to its run() method.  Kept separate from
     [cha] because Algorithm 7 roots threads at their own run() entries
     and must not see these edges. *)
  let out = ref [] in
  Ir.iter_classes p (fun c ->
      if is_thread p c.Ir.cls_id then
        match run_method p c.Ir.cls_id with
        | Some run -> out := (c.Ir.cls_id, "start", run) :: !out
        | None -> ());
  !out
