(** Extraction of the analyses' input relations from an IR program —
    the stand-in for the paper's Joeq frontend (§6.1 "The input
    relations were generated with the Joeq compiler infrastructure").

    Domains produced (sizes are exact, not the paper's generous
    powers of two):
    - [V]: variables — formals, locals, the special global variable;
    - [H]: allocation sites plus one synthetic global object holding
      static fields;
    - [F]: field descriptors (instance and static alike);
    - [T]: classes;
    - [I]: invocation sites, including one per allocation (the
      constructor call — this is how [H ⊆ I] is realized);
    - [N]: virtual method names, with a distinguished null name at
      index 0 for non-virtual sites (§3);
    - [M]: methods;
    - [Z]: parameter positions.

    Relations produced (schemas in the paper's notation):
    [vP0(v,h)], [copyAssign(dst,src)] (copies/casts surviving
    {!Local_opt}), [store(base,f,src)], [load(base,f,dst)], [vT(v,t)],
    [hT(h,t)], [aT(sup,sub)], [cha(t,n,m)], [actual(i,z,v)],
    [formal(m,z,v)], [IE0(i,m)], [mI(m,i,n)], [Mret(m,v)], [Iret(i,v)],
    [mV(m,v)], [mH(m,h)], [syncs(v)], [Mentry(m)], [hRun(h,m)] (thread
    allocation site to its run() method). *)

type t = {
  program : Ir.t;
  domains : (string * int * string array) list;  (** name, size, element names *)
  relations : (string * int list list) list;
}

val extract : ?local_opt:bool -> Ir.t -> t
(** [extract p] rewrites static accesses through the global object and
    produces all domains and relations.  [local_opt] (default true)
    runs {!Local_opt.run} first (on the program in place). *)

val global_heap : t -> int
(** The synthetic global object's index in [H]. *)

val dom_size : t -> string -> int
val element_names : t -> string -> string array option
(** In the shape expected by {!Datalog.Engine.create}. *)

val relation : t -> string -> int list list
val domains_decl : t -> string
(** The DOMAINS section text for a Datalog program over these facts. *)
