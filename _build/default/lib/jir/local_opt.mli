(** Flow-sensitive local copy elimination.

    The paper's analysis is "mostly flow-insensitive, using flow
    sensitivity only in the analysis of local pointers in each
    function" (§1): local variables and their assignments are factored
    away before the relations are extracted (§2.2).  Method bodies in
    this IR are straight-line, so a single forward copy-propagation
    pass is exact: every use of a copied variable is replaced by its
    source, and the copy statement is removed.  Casts are kept — they
    are distinct variables in [V] with their own declared types, which
    is what makes the type filter of Algorithm 2 act on them. *)

val run : Ir.t -> int
(** Rewrites method bodies in place; returns the number of copy
    statements removed. *)
