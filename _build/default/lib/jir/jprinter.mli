(** Pretty-printer for the textual IR format; inverse of {!Jparser}.

    [Jparser.parse (to_string p)] yields a program with identical
    classes, members, statements, and extracted facts (entity ids may
    be renumbered).  Built-in classes are printed only when they carry
    user-added members. *)

val pp : Format.formatter -> Ir.t -> unit
val to_string : Ir.t -> string
