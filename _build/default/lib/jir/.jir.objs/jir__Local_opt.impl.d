lib/jir/local_opt.ml: Hashtbl Ir List Option
