lib/jir/jparser.ml: Array Buffer Format Hashtbl Ir List Option Printf String
