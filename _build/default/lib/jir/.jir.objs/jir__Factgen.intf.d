lib/jir/factgen.mli: Ir
