lib/jir/jparser.mli: Ir
