lib/jir/ir.ml: Array Hashtbl List Option Printf
