lib/jir/hier.mli: Ir
