lib/jir/local_opt.mli: Ir
