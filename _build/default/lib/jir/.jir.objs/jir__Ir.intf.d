lib/jir/ir.mli:
