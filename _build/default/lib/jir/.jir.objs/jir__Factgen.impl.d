lib/jir/factgen.ml: Array Buffer Hashtbl Hier Ir List Local_opt Printf
