lib/jir/jprinter.mli: Format Ir
