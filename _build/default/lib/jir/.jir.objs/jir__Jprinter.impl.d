lib/jir/jprinter.ml: Format Ir List String
