lib/jir/hier.ml: Hashtbl Ir List
