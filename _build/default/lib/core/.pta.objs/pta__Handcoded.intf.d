lib/core/handcoded.mli: Jir
