lib/core/programs.mli: Jir
