lib/core/handcoded.ml: Array Bdd Callgraph Domain Hashtbl Jir List Relation Space Unix
