lib/core/order_search.ml: Analyses Array Context Datalog Hashtbl Jir List Programs Relation String Unix
