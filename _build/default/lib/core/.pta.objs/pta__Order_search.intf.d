lib/core/order_search.mli: Analyses Context Jir
