lib/core/kcfa.mli: Callgraph Jir
