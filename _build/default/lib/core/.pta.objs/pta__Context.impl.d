lib/core/context.ml: Array Bdd Bignat Callgraph Graphutil Jir List Space
