lib/core/callgraph.ml: Graphutil Hashtbl Jir List
