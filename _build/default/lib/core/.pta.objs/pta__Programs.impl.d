lib/core/programs.ml: Jir List Printf
