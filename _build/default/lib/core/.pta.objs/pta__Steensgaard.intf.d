lib/core/steensgaard.mli: Jir
