lib/core/analyses.ml: Array Callgraph Context Datalog Hashtbl Jir Kcfa List Programs Queue Relation
