lib/core/kcfa.ml: Array Callgraph Hashtbl Jir List
