lib/core/steensgaard.ml: Array Handcoded Hashtbl Jir List Unix
