lib/core/queries.ml: Printf Programs
