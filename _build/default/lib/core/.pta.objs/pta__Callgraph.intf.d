lib/core/callgraph.mli: Jir
