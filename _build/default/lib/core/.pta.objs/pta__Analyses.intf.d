lib/core/analyses.mli: Context Datalog Jir Kcfa Programs Relation
