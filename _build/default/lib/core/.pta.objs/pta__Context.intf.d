lib/core/context.mli: Bdd Bignat Callgraph Jir Space
