lib/core/queries.mli: Programs
