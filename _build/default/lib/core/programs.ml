module Factgen = Jir.Factgen

type query_suffix = { q_relations : string; q_rules : string }

let no_query = { q_relations = ""; q_rules = "" }

let common_relations =
  {|input vP0 (variable : V, heap : H)
input vP0g (variable : V, heap : H)
input copyAssign (dest : V, source : V)
input store (base : V, field : F, source : V)
input load (base : V, field : F, dest : V)
input vT (variable : V, type : T)
input hT (heap : H, type : T)
input aT (supertype : T, subtype : T)
input cha (type : T, name : N, target : M)
input chaT (type : T, name : N, target : M)
input actual (invoke : I, param : Z, var : V)
input formal (method : M, param : Z, var : V)
input IE0 (invoke : I, target : M)
input mI (method : M, invoke : I, name : N)
input Mret (method : M, var : V)
input Mthr (method : M, var : V)
input Iret (invoke : I, var : V)
input mV (method : M, var : V)
input mH (method : M, heap : H)
input syncs (var : V)
input Mentry (method : M)
input hRun (heap : H, method : M)
input Mcls (method : M, type : T)
|}

let input_relations fg =
  List.filter
    (fun (name, _) ->
      (* Every relation the common section declares. *)
      List.mem name
        [
          "vP0"; "vP0g"; "copyAssign"; "store"; "load"; "vT"; "hT"; "aT"; "cha"; "chaT"; "actual"; "formal"; "IE0";
          "mI"; "Mret"; "Mthr"; "Iret"; "mV"; "mH"; "syncs"; "Mentry"; "hRun"; "Mcls";
        ])
    fg.Factgen.relations

(* The call-graph and assignment rules shared by the CHA-based
   algorithms.  [IEcha] resolves virtual sites against the receiver's
   declared type (class-hierarchy analysis, §2.2). *)
let cha_call_graph_rules =
  {|IEcha(i, m) :- IE0(i, m).
IEcha(i, m) :- mI(_, i, n), actual(i, 0, v), vT(v, tv), aT(tv, t), cha(t, n, m).
IEcha(i, m) :- mI(_, i, n), actual(i, 0, v), vT(v, tv), aT(tv, t), chaT(t, n, m).
assign(v1, v2) :- copyAssign(v1, v2).
assign(v1, v2) :- IEcha(i, m), formal(m, z, v1), actual(i, z, v2).
assign(v1, v2) :- IEcha(i, m), Iret(i, v1), Mret(m, v2).
assign(v1, v2) :- IEcha(i, m2), mI(m1, i, _), Mthr(m1, v1), Mthr(m2, v2).
|}

let mk ?(query = no_query) fg ~extra_domains ~relations ~rules =
  Printf.sprintf "DOMAINS\n%s%s\nRELATIONS\n%s%s%s\nRULES\n%s\n%s" (Factgen.domains_decl fg) extra_domains
    common_relations relations query.q_relations rules query.q_rules

(* Algorithm 1: context-insensitive, precomputed (CHA) call graph, no
   type filtering. *)
let algo1 ?query fg =
  mk ?query fg ~extra_domains:""
    ~relations:
      {|IEcha (invoke : I, target : M)
assign (dest : V, source : V)
output vP (variable : V, heap : H)
output hP (base : H, field : F, target : H)
|}
    ~rules:
      (cha_call_graph_rules
      ^ {|vP(v, h) :- vP0(v, h).
vP(v, h) :- vP0g(v, h).
vP(v1, h) :- assign(v1, v2), vP(v2, h).
hP(h1, f, h2) :- store(v1, f, v2), vP(v1, h1), vP(v2, h2).
vP(v2, h2) :- load(v1, f, v2), vP(v1, h1), hP(h1, f, h2).
|})

(* Algorithm 2: Algorithm 1 plus the type filter (rules (5)-(9)). *)
let algo2 ?query fg =
  mk ?query fg ~extra_domains:""
    ~relations:
      {|IEcha (invoke : I, target : M)
assign (dest : V, source : V)
vPfilter (variable : V, heap : H)
output vP (variable : V, heap : H)
output hP (base : H, field : F, target : H)
|}
    ~rules:
      (cha_call_graph_rules
      ^ {|vPfilter(v, h) :- vT(v, tv), hT(h, th), aT(tv, th).
vP(v, h) :- vP0(v, h).
vP(v, h) :- vP0g(v, h).
vP(v1, h) :- assign(v1, v2), vP(v2, h), vPfilter(v1, h).
hP(h1, f, h2) :- store(v1, f, v2), vP(v1, h1), vP(v2, h2).
vP(v2, h2) :- load(v1, f, v2), vP(v1, h1), hP(h1, f, h2), vPfilter(v2, h2).
|})

(* Algorithm 3: on-the-fly call graph discovery (rules (10)-(12)):
   virtual sites are resolved against the points-to sets of their
   receivers as those are discovered. *)
let algo3 ?query fg =
  mk ?query fg ~extra_domains:""
    ~relations:
      {|assign (dest : V, source : V)
vPfilter (variable : V, heap : H)
output IE (invoke : I, target : M)
output vP (variable : V, heap : H)
output hP (base : H, field : F, target : H)
|}
    ~rules:
      {|vPfilter(v, h) :- vT(v, tv), hT(h, th), aT(tv, th).
IE(i, m) :- IE0(i, m).
IE(i, m2) :- mI(_, i, n), actual(i, 0, v), vP(v, h), hT(h, t), cha(t, n, m2).
IE(i, m2) :- mI(_, i, n), actual(i, 0, v), vP(v, h), hT(h, t), chaT(t, n, m2).
assign(v1, v2) :- copyAssign(v1, v2).
assign(v1, v2) :- IE(i, m), formal(m, z, v1), actual(i, z, v2).
assign(v1, v2) :- IE(i, m), Iret(i, v1), Mret(m, v2).
assign(v1, v2) :- IE(i, m2), mI(m1, i, _), Mthr(m1, v1), Mthr(m2, v2).
vP(v, h) :- vP0(v, h).
vP(v, h) :- vP0g(v, h).
vP(v1, h) :- assign(v1, v2), vP(v2, h), vPfilter(v1, h).
hP(h1, f, h2) :- store(v1, f, v2), vP(v1, h1), vP(v2, h2).
vP(v2, h2) :- load(v1, f, v2), vP(v1, h1), hP(h1, f, h2), vPfilter(v2, h2).
|}

(* Algorithm 5: context-sensitive points-to over the cloned call graph
   (rules (13)-(18)).  IEC and mC come from Context (Algorithm 4);
   hC(c,h) stands for the paper's IEC(c,h,_,_) use of H ⊆ I. *)
let algo5 ?query fg ~csize =
  mk ?query fg
    ~extra_domains:(Printf.sprintf "C %d\n" csize)
    ~relations:
      {|input IEC (caller : C, invoke : I, callee : C, tgt : M)
input mC (context : C, method : M)
assignC (destc : C, dest : V, srcc : C, src : V)
hC (context : C, heap : H)
anyC (context : C)
vPfilter (variable : V, heap : H)
output vPC (context : C, variable : V, heap : H)
output hP (base : H, field : F, target : H)
|}
    ~rules:
      {|vPfilter(v, h) :- vT(v, tv), hT(h, th), aT(tv, th).
hC(c, h) :- mC(c, m), mH(m, h).
anyC(c) :- mC(c, _).
vPC(c, v, h) :- vP0(v, h), hC(c, h).
vPC(c, v, h) :- vP0g(v, h), anyC(c).
# Local copies (casts, throw/catch edges) stay within their clone.
vPC(c, v1, h) :- copyAssign(v1, v2), vPC(c, v2, h), vPfilter(v1, h).
vPC(c1, v1, h) :- assignC(c1, v1, c2, v2), vPC(c2, v2, h), vPfilter(v1, h).
hP(h1, f, h2) :- store(v1, f, v2), vPC(c, v1, h1), vPC(c, v2, h2).
vPC(c, v2, h2) :- load(v1, f, v2), vPC(c, v1, h1), hP(h1, f, h2), vPfilter(v2, h2).
assignC(c1, v1, c2, v2) :- IEC(c2, i, c1, m), formal(m, z, v1), actual(i, z, v2).
assignC(c2, v1, c1, v2) :- IEC(c2, i, c1, m), Iret(i, v1), Mret(m, v2).
assignC(c2, v1, c1, v2) :- IEC(c2, i, c1, m2), mI(m1, i, _), Mthr(m1, v1), Mthr(m2, v2).
|}

(* Algorithm 6: context-sensitive type analysis (rules (19)-(24)).
   Same cloned graph, but heap objects are abstracted to their types.
   The paper's context-unbound heads of rules (22)/(23) are bound via
   the defining method's contexts. *)
let algo6 ?query fg ~csize =
  mk ?query fg
    ~extra_domains:(Printf.sprintf "C %d\n" csize)
    ~relations:
      {|input IEC (caller : C, invoke : I, callee : C, tgt : M)
input mC (context : C, method : M)
assignC (destc : C, dest : V, srcc : C, src : V)
hC (context : C, heap : H)
anyC (context : C)
vTfilter (variable : V, type : T)
output vTC (context : C, variable : V, type : T)
output fT (field : F, target : T)
|}
    ~rules:
      {|vTfilter(v, t) :- vT(v, tv), aT(tv, t).
hC(c, h) :- mC(c, m), mH(m, h).
anyC(c) :- mC(c, _).
vTC(c, v, t) :- vP0(v, h), hC(c, h), hT(h, t).
vTC(c, v, t) :- vP0g(v, h), anyC(c), hT(h, t).
vTC(c, v1, t) :- copyAssign(v1, v2), vTC(c, v2, t), vTfilter(v1, t).
vTC(c1, v1, t) :- assignC(c1, v1, c2, v2), vTC(c2, v2, t), vTfilter(v1, t).
fT(f, t) :- store(_, f, v2), vTC(_, v2, t).
vTC(c, v, t) :- load(_, f, v), fT(f, t), vTfilter(v, t), mV(m, v), mC(c, m).
assignC(c1, v1, c2, v2) :- IEC(c2, i, c1, m), formal(m, z, v1), actual(i, z, v2).
assignC(c2, v1, c1, v2) :- IEC(c2, i, c1, m), Iret(i, v1), Mret(m, v2).
assignC(c2, v1, c1, v2) :- IEC(c2, i, c1, m2), mI(m1, i, _), Mthr(m1, v1), Mthr(m2, v2).
|}

(* Algorithm 7: thread-sensitive points-to (rules (25)-(30)) plus the
   escaped / captured / neededSyncs queries of §5.6.  The call graph
   here is CHA without the thread-start matching: each thread context
   is rooted solely at its own run() clone (HT/vP0T, computed by the
   driver). *)
let algo7 ?query fg ~csize =
  mk ?query fg
    ~extra_domains:(Printf.sprintf "C %d\n" csize)
    ~relations:
      {|input HT (context : C, heap : H)
input vP0T (cv : C, variable : V, ch : C, heap : H)
IEcha (invoke : I, target : M)
assign (dest : V, source : V)
vPfilter (variable : V, heap : H)
output vPT (cv : C, variable : V, ch : C, heap : H)
output hPT (cb : C, base : H, field : F, ct : C, target : H)
output escaped (context : C, heap : H)
output captured (context : C, heap : H)
output neededSyncs (context : C, var : V)
|}
    ~rules:
      {|vPfilter(v, h) :- vT(v, tv), hT(h, th), aT(tv, th).
IEcha(i, m) :- IE0(i, m).
IEcha(i, m) :- mI(_, i, n), actual(i, 0, v), vT(v, tv), aT(tv, t), cha(t, n, m).
assign(v1, v2) :- copyAssign(v1, v2).
assign(v1, v2) :- IEcha(i, m), formal(m, z, v1), actual(i, z, v2).
assign(v1, v2) :- IEcha(i, m), Iret(i, v1), Mret(m, v2).
assign(v1, v2) :- IEcha(i, m2), mI(m1, i, _), Mthr(m1, v1), Mthr(m2, v2).
vPT(c1, v, c2, h) :- vP0T(c1, v, c2, h).
vPT(c, v, c, h) :- vP0(v, h), HT(c, h).
vPT(c2, v1, ch, h) :- assign(v1, v2), vPT(c2, v2, ch, h), vPfilter(v1, h).
hPT(c1, h1, f, c2, h2) :- store(v1, f, v2), vPT(c, v1, c1, h1), vPT(c, v2, c2, h2).
vPT(c, v2, c2, h2) :- load(v1, f, v2), vPT(c, v1, c1, h1), hPT(c1, h1, f, c2, h2), vPfilter(v2, h2).
escaped(c, h) :- vPT(cv, _, c, h), cv != c.
captured(c, h) :- vPT(c, _, c, h), !escaped(c, h).
neededSyncs(c, v) :- syncs(v), vPT(c, v, ch, h), escaped(ch, h).
|}

(* §4.2's closing variant: number contexts over a conservative (CHA)
   call graph, then discover which context-sensitive invocation edges
   are actually warranted by the points-to results.  The paper notes
   this is "of primarily academic interest" because the call graph
   rarely improves over Algorithm 3's; it is here for completeness and
   the precision ablation. *)
let algo5_otf ?query fg ~csize =
  mk ?query fg
    ~extra_domains:(Printf.sprintf "C %d\n" csize)
    ~relations:
      {|input IEC (caller : C, invoke : I, callee : C, tgt : M)
input mC (context : C, method : M)
output IECd (caller : C, invoke : I, callee : C, tgt : M)
assignC (destc : C, dest : V, srcc : C, src : V)
hC (context : C, heap : H)
anyC (context : C)
vPfilter (variable : V, heap : H)
output vPC (context : C, variable : V, heap : H)
output hP (base : H, field : F, target : H)
|}
    ~rules:
      {|vPfilter(v, h) :- vT(v, tv), hT(h, th), aT(tv, th).
hC(c, h) :- mC(c, m), mH(m, h).
anyC(c) :- mC(c, _).
IECd(c1, i, c2, m) :- IEC(c1, i, c2, m), IE0(i, m).
IECd(c1, i, c2, m) :- IEC(c1, i, c2, m), mI(_, i, n), actual(i, 0, v), vPC(c1, v, h), hT(h, t), cha(t, n, m).
IECd(c1, i, c2, m) :- IEC(c1, i, c2, m), mI(_, i, n), actual(i, 0, v), vPC(c1, v, h), hT(h, t), chaT(t, n, m).
vPC(c, v, h) :- vP0(v, h), hC(c, h).
vPC(c, v, h) :- vP0g(v, h), anyC(c).
vPC(c, v1, h) :- copyAssign(v1, v2), vPC(c, v2, h), vPfilter(v1, h).
vPC(c1, v1, h) :- assignC(c1, v1, c2, v2), vPC(c2, v2, h), vPfilter(v1, h).
hP(h1, f, h2) :- store(v1, f, v2), vPC(c, v1, h1), vPC(c, v2, h2).
vPC(c, v2, h2) :- load(v1, f, v2), vPC(c, v1, h1), hP(h1, f, h2), vPfilter(v2, h2).
assignC(c1, v1, c2, v2) :- IECd(c2, i, c1, m), formal(m, z, v1), actual(i, z, v2).
assignC(c2, v1, c1, v2) :- IECd(c2, i, c1, m), Iret(i, v1), Mret(m, v2).
assignC(c2, v1, c1, v2) :- IECd(c2, i, c1, m2), mI(m1, i, _), Mthr(m1, v1), Mthr(m2, v2).
|}
