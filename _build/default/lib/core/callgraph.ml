module Ir = Jir.Ir
module Hier = Jir.Hier

type edge = { site : Ir.invoke_id; caller : Ir.method_id; callee : Ir.method_id }

let cha_edges ?(thread_start = true) p =
  let edges = ref [] in
  Ir.iter_methods p (fun m ->
      List.iter
        (fun (s : Ir.stmt) ->
          match s with
          | Ir.New { cls; init_site; _ } ->
            edges := { site = init_site; caller = m.Ir.m_id; callee = Ir.init_method p cls } :: !edges
          | Ir.Invoke { kind = Ir.Virtual; site; base = Some b; name; _ } ->
            let recv_ty = (Ir.var p b).Ir.v_type in
            (* Every subclass of the receiver's declared type may be the
               dynamic type; collect the distinct dispatch targets. *)
            let seen = Hashtbl.create 4 in
            Ir.iter_classes p (fun c ->
                if (not c.Ir.cls_interface) && Hier.assignable p recv_ty c.Ir.cls_id then begin
                  (match Hier.dispatch p c.Ir.cls_id name with
                  | Some callee -> Hashtbl.replace seen callee ()
                  | None -> ());
                  if thread_start && name = "start" && Hier.is_thread p c.Ir.cls_id then
                    match Hier.run_method p c.Ir.cls_id with
                    | Some run -> Hashtbl.replace seen run ()
                    | None -> ()
                end);
            Hashtbl.iter (fun callee () -> edges := { site; caller = m.Ir.m_id; callee } :: !edges) seen
          | Ir.Invoke { kind = Ir.Static | Ir.Special; site; target = Some callee; _ } ->
            edges := { site; caller = m.Ir.m_id; callee } :: !edges
          | Ir.Invoke { kind = Ir.Virtual; base = None; _ } | Ir.Invoke { target = None; _ } -> ()
          | Ir.Assign _ | Ir.Cast _ | Ir.Load _ | Ir.Store _ | Ir.Load_static _ | Ir.Store_static _
          | Ir.Array_load _ | Ir.Array_store _ | Ir.Throw _ | Ir.Catch _ | Ir.Return _ | Ir.Sync _ -> ())
        m.Ir.m_body);
  List.rev !edges

let of_ie_tuples p tuples =
  List.map (fun (site, callee) -> { site; caller = (Ir.invoke p site).Ir.i_method; callee }) tuples

let default_roots p =
  let roots = Hashtbl.create 8 in
  List.iter (fun m -> Hashtbl.replace roots m ()) (Ir.entries p);
  Ir.iter_heaps p (fun h ->
      match Hier.run_method p h.Ir.h_cls with
      | Some run -> Hashtbl.replace roots run ()
      | None -> ());
  Hashtbl.fold (fun m () acc -> m :: acc) roots []

let reachable_methods p edges ~roots =
  let g =
    Graphutil.make (Ir.num_methods p) (List.map (fun e -> (e.caller, e.callee)) edges)
  in
  Graphutil.reachable g roots
