(** Empirical variable-order search.

    Finding the best BDD variable order is NP-complete (§2.4.2); the
    paper's bddbddb "automatically explores different alternatives
    empirically to find an effective ordering" [35].  This module does
    the same at the granularity the engine controls: the relative
    order of the logical domains' variable blocks.  Candidates are the
    declaration order, its reverse, and seeded random permutations;
    each candidate solves the given program and is scored by peak live
    BDD nodes (ties broken by time). *)

type candidate = {
  order : string list;
  seconds : float;
  peak_nodes : int;
  rule_applications : int;
}

type job =
  | Basic of Analyses.basic
  | Context_sensitive of Context.t  (** Algorithm 5 *)

val search : ?budget:int -> ?seed:int -> Jir.Factgen.t -> job -> candidate list
(** [search ~budget fg job] runs [2 + budget] candidates (default
    budget 6) and returns them best-first. *)
