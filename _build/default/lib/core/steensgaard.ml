module Factgen = Jir.Factgen

type stats = { classes : int; unifications : int; seconds : float }

(* Union-find over growable nodes.  Node metadata lives at roots:
   - [pointee]: the single abstract class this class's values point to;
   - [fields]: field id -> node holding that field's contents;
   - [heaps]: allocation sites belonging to this class. *)
type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable pointee : int array; (* -1 = none *)
  mutable fields : (int, int) Hashtbl.t array;
  mutable heaps : int list array;
  mutable n : int;
  mutable unifications : int;
}

type result = { uf : t; nvars : int; st : stats }

let create capacity =
  {
    parent = Array.init capacity (fun i -> i);
    rank = Array.make capacity 0;
    pointee = Array.make capacity (-1);
    fields = Array.init capacity (fun _ -> Hashtbl.create 2);
    heaps = Array.make capacity [];
    n = capacity;
    unifications = 0;
  }

let grow t =
  let cap = Array.length t.parent in
  let cap' = max 16 (cap * 2) in
  let extend a fill = Array.init cap' (fun i -> if i < cap then a.(i) else fill i) in
  t.parent <- extend t.parent (fun i -> i);
  t.rank <- extend t.rank (fun _ -> 0);
  t.pointee <- extend t.pointee (fun _ -> -1);
  t.fields <- extend t.fields (fun _ -> Hashtbl.create 2);
  t.heaps <- extend t.heaps (fun _ -> [])

let fresh t =
  if t.n = Array.length t.parent then grow t;
  let id = t.n in
  t.n <- t.n + 1;
  id

let rec find t x = if t.parent.(x) = x then x else begin
    let r = find t t.parent.(x) in
    t.parent.(x) <- r;
    r
  end

(* Unify two classes, recursively unifying pointees and same-named
   fields.  Termination: every recursive call strictly decreases the
   number of classes. *)
let rec unify t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    t.unifications <- t.unifications + 1;
    let big, small = if t.rank.(ra) >= t.rank.(rb) then (ra, rb) else (rb, ra) in
    t.parent.(small) <- big;
    if t.rank.(big) = t.rank.(small) then t.rank.(big) <- t.rank.(big) + 1;
    t.heaps.(big) <- t.heaps.(small) @ t.heaps.(big);
    (* Merge field maps. *)
    Hashtbl.iter
      (fun f node ->
        match Hashtbl.find_opt t.fields.(big) f with
        | Some node' -> unify t node node'
        | None -> Hashtbl.add t.fields.(big) f node)
      t.fields.(small);
    (* Merge pointees. *)
    let pa = t.pointee.(big) and pb = t.pointee.(small) in
    match (pa, pb) with
    | -1, -1 -> ()
    | -1, p -> t.pointee.(big) <- p
    | _, -1 -> ()
    | p, q -> unify t p q
  end

let pointee_of t x =
  let r = find t x in
  if t.pointee.(r) = -1 then begin
    let p = fresh t in
    (* [fresh] may grow the arrays; re-find to be safe. *)
    let r = find t x in
    t.pointee.(r) <- p
  end;
  t.pointee.(find t x)

let field_of t cls f =
  let r = find t cls in
  match Hashtbl.find_opt t.fields.(r) f with
  | Some node -> node
  | None ->
    let node = fresh t in
    let r = find t cls in
    Hashtbl.add t.fields.(r) f node;
    node

(* x = y: unify the pointee classes. *)
let assign t x y = unify t (pointee_of t x) (pointee_of t y)

let run fg =
  let t0 = Unix.gettimeofday () in
  let nvars = Factgen.dom_size fg "V" in
  let nheaps = Factgen.dom_size fg "H" in
  (* Nodes 0..nvars-1 are variables; nvars..nvars+nheaps-1 are a class
     per allocation site (holding the site). *)
  let uf = create (nvars + nheaps + 64) in
  let heap_node h = nvars + h in
  for h = 0 to nheaps - 1 do
    uf.heaps.(heap_node h) <- [ h ]
  done;
  (* vP0: x = new h unifies pts(x) with h's class. *)
  List.iter
    (fun tu ->
      match tu with
      | [ v; h ] -> unify uf (pointee_of uf v) (heap_node h)
      | _ -> ())
    (Factgen.relation fg "vP0" @ Factgen.relation fg "vP0g");
  (* Local copies. *)
  List.iter
    (fun tu ->
      match tu with
      | [ d; s ] -> assign uf d s
      | _ -> ())
    (Factgen.relation fg "copyAssign");
  (* Parameter/return/exception binding over the CHA call graph — the
     same edges Algorithm 2 resolves. *)
  List.iter (fun (d, s) -> assign uf d s) (Handcoded.assign_tuples fg);
  (* Stores and loads through the unified field nodes. *)
  List.iter
    (fun tu ->
      match tu with
      | [ base; f; src ] -> assign uf (field_of uf (pointee_of uf base) f) src
      | _ -> ())
    (Factgen.relation fg "store");
  List.iter
    (fun tu ->
      match tu with
      | [ base; f; dst ] -> assign uf dst (field_of uf (pointee_of uf base) f)
      | _ -> ())
    (Factgen.relation fg "load");
  let roots = Hashtbl.create 64 in
  for x = 0 to uf.n - 1 do
    Hashtbl.replace roots (find uf x) ()
  done;
  {
    uf;
    nvars;
    st = { classes = Hashtbl.length roots; unifications = uf.unifications; seconds = Unix.gettimeofday () -. t0 };
  }

let stats r = r.st

let points_to_of r v =
  let uf = r.uf in
  let root = find uf v in
  if uf.pointee.(root) = -1 then []
  else List.sort_uniq compare uf.heaps.(find uf uf.pointee.(root))

let vp_tuples r =
  let out = ref [] in
  for v = 0 to r.nvars - 1 do
    List.iter (fun h -> out := (v, h) :: !out) (points_to_of r v)
  done;
  List.sort compare !out

let avg_points_to r =
  let total = ref 0 and vars = ref 0 in
  for v = 0 to r.nvars - 1 do
    match points_to_of r v with
    | [] -> ()
    | hs ->
      incr vars;
      total := !total + List.length hs
  done;
  if !vars = 0 then 0.0 else float_of_int !total /. float_of_int !vars
