(** 1-CFA context numbering — the k-limited alternative the paper
    contrasts its cloning scheme with (§1.1: "Shivers proposed the
    concept of k-CFA whereby one remembers only the last k call
    sites").

    A method's context is its most recent call site (entry methods get
    the distinguished context 1), so the context count is bounded by
    the number of invocation sites, but distinct call {e paths} ending
    at the same site are merged.  The result plugs into the same
    Algorithm 5 Datalog program via {!Analyses.run_cs_with}, making
    full-cloning vs 1-CFA a one-variable ablation. *)

type t

val number : Jir.Ir.t -> edges:Callgraph.edge list -> roots:Jir.Ir.method_id list -> t

val csize : t -> int
(** Context domain size: 0 unused, 1 = entry, then one per invocation
    site. *)

val iec_tuples : t -> (int * int * int * int) list
(** [(caller_ctx, invoke, callee_ctx, target)] — callee context is
    determined by the invocation site alone. *)

val mc_tuples : t -> (int * int) list
val contexts_of_method : t -> Jir.Ir.method_id -> int list
