(** Steensgaard-style unification-based points-to analysis.

    The paper positions inclusion-based analysis against the
    unification-based family (§1, citing Steensgaard [28]): "pointers
    are assumed to be either unaliased or are pointing to the same set
    of locations".  This is that baseline — near-linear time via
    union-find, one pass, no fixpoint — used by the ablation benchmark
    to reproduce the precision gap that motivates the paper.

    The abstraction: every variable (and field instance) has at most
    one abstract pointee class; assignments unify the pointee classes
    of both sides, recursively unifying their fields.  The call graph
    is the same CHA graph Algorithm 2 uses, including return and
    exception binding, so the comparison isolates the
    unification-vs-inclusion choice. *)

type result

type stats = { classes : int; unifications : int; seconds : float }

val run : Jir.Factgen.t -> result
val stats : result -> stats

val vp_tuples : result -> (int * int) list
(** The variable points-to relation [(v, h)], comparable to
    Algorithm 2's [vP].  Always a superset of it. *)

val points_to_of : result -> int -> int list
(** Heap ids a variable may point to. *)

val avg_points_to : result -> float
(** Average points-to set size over variables with non-empty sets —
    the precision metric for the ablation table. *)
