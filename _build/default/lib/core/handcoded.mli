(** Hand-coded BDD implementation of Algorithm 2 — the baseline the
    paper's authors wrote before building bddbddb (§6.4: "At the early
    stages of our research, we hand-coded every points-to analysis
    using BDD operations directly"; bddbddb-generated code ended up
    faster).

    The implementation is the §2.4.1 rename/relprod pseudocode spelled
    out by hand, with the manual incrementalization of the
    transitive-closure rule shown in the paper.  Used by the ablation
    benchmark to reproduce the bddbddb-vs-manual comparison, and by
    the test suite as yet another independent implementation to
    differential-test the engine against. *)

type stats = {
  vp_count : float;  (** tuples in the computed vP *)
  hp_count : float;
  iterations : int;
  peak_live_nodes : int;
  seconds : float;
}

type result

val assign_tuples : Jir.Factgen.t -> (int * int) list
(** The CHA-precomputed assign relation (parameters, returns,
    exceptions, local copies) the paper's Algorithm 2 takes as input;
    shared with the {!Steensgaard} baseline. *)

val run : Jir.Factgen.t -> result
(** Context-insensitive, type-filtered points-to over the CHA call
    graph (the assign relation is precomputed at the tuple level,
    as the paper's Algorithm 2 assumes). *)

val stats : result -> stats
val vp_tuples : result -> (int * int) list
val hp_tuples : result -> (int * int * int) list
