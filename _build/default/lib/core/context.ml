module Ir = Jir.Ir

type numbered_edge = { ne_edge : Callgraph.edge; ne_k : int; ne_offset : int; ne_intra : bool }

type t = {
  program : Ir.t;
  reach : bool array;
  comp : int array; (* method -> component, only meaningful if reachable *)
  nsccs : int;
  counts_exact : Bignat.t array; (* per component *)
  counts : int array; (* clamped *)
  numbered : numbered_edge list;
  cap : int;
  hit_cap : bool;
}

let number ?(max_bits = 61) p ~edges ~roots =
  if max_bits < 1 || max_bits > 61 then invalid_arg "Context.number: max_bits must be in [1, 61]";
  let cap = (1 lsl max_bits) - 1 in
  let cap_big = Bignat.of_int cap in
  let reach = Callgraph.reachable_methods p edges ~roots in
  let live_edges =
    List.filter (fun (e : Callgraph.edge) -> reach.(e.Callgraph.caller) && reach.(e.Callgraph.callee)) edges
  in
  let g = Graphutil.make (Ir.num_methods p) (List.map (fun e -> (e.Callgraph.caller, e.Callgraph.callee)) live_edges) in
  let comp, members = Graphutil.scc g in
  let nsccs = Array.length members in
  (* Incoming cross-component edges per component, deterministic order. *)
  let incoming = Array.make nsccs [] in
  let intra = ref [] in
  List.iter
    (fun (e : Callgraph.edge) ->
      let cs = comp.(e.Callgraph.caller) and cd = comp.(e.Callgraph.callee) in
      if cs = cd then intra := e :: !intra else incoming.(cd) <- e :: incoming.(cd))
    live_edges;
  let edge_order (a : Callgraph.edge) (b : Callgraph.edge) =
    compare (a.Callgraph.site, a.Callgraph.caller, a.Callgraph.callee) (b.Callgraph.site, b.Callgraph.caller, b.Callgraph.callee)
  in
  Array.iteri (fun i l -> incoming.(i) <- List.sort edge_order l) incoming;
  let has_root = Array.make nsccs false in
  List.iter (fun r -> if reach.(r) then has_root.(comp.(r)) <- true) roots;
  let is_reachable_scc = Array.make nsccs false in
  Array.iteri (fun m r -> if r then is_reachable_scc.(comp.(m)) <- true) reach;
  (* Counts in dependency order.  Tarjan numbers a component after the
     components it reaches, so callers have larger indices than their
     callees; descending index order is therefore topological. *)
  let counts_exact = Array.make nsccs Bignat.zero in
  let counts = Array.make nsccs 0 in
  let numbered = ref [] in
  let hit_cap = ref false in
  for c = nsccs - 1 downto 0 do
    if is_reachable_scc.(c) then begin
      (* Clamped numbering drives the actual clone ranges; exact counts
         are kept alongside for reporting. *)
      let offset = ref (if has_root.(c) then 1 else 0) in
      let exact = ref (if has_root.(c) then Bignat.one else Bignat.zero) in
      List.iter
        (fun (e : Callgraph.edge) ->
          let k = counts.(comp.(e.Callgraph.caller)) in
          numbered := { ne_edge = e; ne_k = k; ne_offset = !offset; ne_intra = false } :: !numbered;
          offset := min cap (!offset + k);
          exact := Bignat.add !exact counts_exact.(comp.(e.Callgraph.caller)))
        incoming.(c);
      counts_exact.(c) <- !exact;
      if Bignat.compare !exact cap_big > 0 then hit_cap := true;
      counts.(c) <-
        (match Bignat.to_int_opt (Bignat.min !exact cap_big) with
        | Some v -> min v cap
        | None -> cap)
    end
  done;
  (* Intra-component edges: clone i calls clone i. *)
  List.iter
    (fun (e : Callgraph.edge) ->
      let k = counts.(comp.(e.Callgraph.caller)) in
      numbered := { ne_edge = e; ne_k = k; ne_offset = 0; ne_intra = true } :: !numbered)
    !intra;
  { program = p; reach; comp; nsccs; counts_exact; counts; numbered = List.rev !numbered; cap; hit_cap = !hit_cap }

let num_sccs t = t.nsccs
let reachable t m = t.reach.(m)
let scc_of_method t m = if t.reach.(m) then Some t.comp.(m) else None
let method_contexts t m = if t.reach.(m) then t.counts.(t.comp.(m)) else 0
let method_contexts_exact t m = if t.reach.(m) then t.counts_exact.(t.comp.(m)) else Bignat.zero
let edges t = t.numbered
let merged t = t.hit_cap

let total_paths t =
  let total = ref Bignat.zero in
  Array.iteri (fun m r -> if r then total := Bignat.add !total t.counts_exact.(t.comp.(m))) t.reach;
  !total

let max_contexts t =
  let best = ref Bignat.zero in
  Array.iter (fun c -> best := Bignat.max !best c) t.counts_exact;
  !best

let csize t =
  let m = Array.fold_left max 0 t.counts in
  max 2 (m + 1)

(* The BDD for one numbered edge over (caller, callee) context blocks:
   callers 1..k with callee = caller + offset, except that callers
   mapping beyond the cap are merged into the top context. *)
let edge_context_bdd t sp ~caller ~callee ne =
  let man = Space.man sp in
  if ne.ne_k = 0 then Bdd.bdd_false
  else if ne.ne_intra then
    Bdd.mk_and man (Space.range sp caller ~lo:1 ~hi:ne.ne_k) (Space.equal_blocks sp caller callee)
  else begin
    let cap = t.cap in
    let straight_hi = min ne.ne_k (cap - ne.ne_offset) in
    let straight =
      if straight_hi >= 1 then
        Bdd.mk_and man
          (Space.range sp caller ~lo:1 ~hi:straight_hi)
          (Space.add_const sp ~src:caller ~dst:callee ~delta:ne.ne_offset)
      else Bdd.bdd_false
    in
    let overflow =
      if straight_hi < ne.ne_k then
        Bdd.mk_and man
          (Space.range sp caller ~lo:(max 1 (straight_hi + 1)) ~hi:ne.ne_k)
          (Space.const sp callee cap)
      else Bdd.bdd_false
    in
    Bdd.mk_or man straight overflow
  end

let iec_bdd t sp ~caller ~invoke ~callee ~target =
  let man = Space.man sp in
  let acc = ref Bdd.bdd_false in
  List.iter
    (fun ne ->
      let ctx = edge_context_bdd t sp ~caller ~callee ne in
      if ctx <> Bdd.bdd_false then begin
        let b =
          Bdd.mk_and man ctx
            (Bdd.mk_and man
               (Space.const sp invoke ne.ne_edge.Callgraph.site)
               (Space.const sp target ne.ne_edge.Callgraph.callee))
        in
        acc := Bdd.mk_or man !acc b
      end)
    t.numbered;
  !acc

let iec_tuples t =
  let out = ref [] in
  List.iter
    (fun ne ->
      for x = 1 to ne.ne_k do
        let callee_ctx = if ne.ne_intra then x else min t.cap (x + ne.ne_offset) in
        out := (x, ne.ne_edge.Callgraph.site, callee_ctx, ne.ne_edge.Callgraph.callee) :: !out
      done)
    t.numbered;
  List.sort_uniq compare !out

let mc_tuples t =
  let out = ref [] in
  for m = 0 to Ir.num_methods t.program - 1 do
    let k = method_contexts t m in
    for c = 1 to k do
      out := (c, m) :: !out
    done
  done;
  List.sort compare !out

let mc_bdd t sp ~context ~target =
  let man = Space.man sp in
  let acc = ref Bdd.bdd_false in
  for m = 0 to Ir.num_methods t.program - 1 do
    let k = method_contexts t m in
    if k > 0 then
      acc :=
        Bdd.mk_or man !acc (Bdd.mk_and man (Space.range sp context ~lo:1 ~hi:k) (Space.const sp target m))
  done;
  !acc
