(** The paper's algorithms and queries as Datalog program text.

    Like the paper (§6.1: "The input to bddbddb is more or less the
    Datalog programs exactly as they are presented in this paper"),
    the Datalog below {e is} the implementation; the drivers in
    {!Analyses} only marshal inputs and outputs.  Each function
    instantiates the DOMAINS section with the program-under-analysis's
    actual sizes from {!Jir.Factgen}.

    Differences from the paper's listings, as recorded in DESIGN.md:
    - [assign] is computed by rules from the extracted [actual]/
      [formal]/[Iret]/[Mret] relations (plus [copyAssign] for local
      copies surviving {!Jir.Local_opt}) instead of arriving
      precomputed;
    - rule (14)'s [IEC(c,h,_,_)] — which exploits H ⊆ I at the domain
      level — is expressed as [hC(c,h) :- mC(c,m), mH(m,h)], with the
      same meaning;
    - the global variable's points-to seed [vP0g] is injected into
      every context ([anyC]);
    - heads that the paper leaves context-unbound (rules (22)/(23) and
      the first mV*C rule of §5.4) are bound through [mC]. *)

type query_suffix = { q_relations : string; q_rules : string }
(** Extra RELATIONS/RULES text appended before the engine runs; see
    {!Queries}. *)

val no_query : query_suffix

val algo1 : ?query:query_suffix -> Jir.Factgen.t -> string
(** Context-insensitive points-to, CHA call graph, no type filter
    (Algorithm 1).  Outputs [vP(v,h)], [hP(h1,f,h2)]. *)

val algo2 : ?query:query_suffix -> Jir.Factgen.t -> string
(** Algorithm 1 + type filtering (Algorithm 2). *)

val algo3 : ?query:query_suffix -> Jir.Factgen.t -> string
(** On-the-fly call graph discovery (Algorithm 3).  Adds output
    [IE(i,m)]. *)

val algo5 : ?query:query_suffix -> Jir.Factgen.t -> csize:int -> string
(** Context-sensitive points-to over the cloned graph (Algorithm 5).
    Inputs [IEC] and [mC] are provided by {!Context}; outputs
    [vPC(c,v,h)] and [hP]. *)

val algo5_otf : ?query:query_suffix -> Jir.Factgen.t -> csize:int -> string
(** §4.2's closing variant: contexts numbered over a conservative
    (CHA) call graph, invocation edges discovered on the fly from the
    context-sensitive points-to results.  Adds output [IECd], the
    discovered context-sensitive call graph. *)

val algo6 : ?query:query_suffix -> Jir.Factgen.t -> csize:int -> string
(** Context-sensitive type analysis (Algorithm 6).  Outputs
    [vTC(c,v,t)], [fT(f,t)]. *)

val algo7 : ?query:query_suffix -> Jir.Factgen.t -> csize:int -> string
(** Thread-sensitive points-to and escape analysis (Algorithm 7).
    Inputs [HT]/[vP0T] provided by {!Analyses.thread_escape}; outputs
    [vPT], [hPT], [escaped], [captured], [neededSyncs]. *)

val input_relations : Jir.Factgen.t -> (string * int list list) list
(** The extracted relations every algorithm declares as input. *)
