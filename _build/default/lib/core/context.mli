(** Algorithm 4: context numbering for the cloned call graph.

    Every reduced (SCC-collapsed) acyclic call path to a method defines
    one of its contexts.  Methods in a strongly connected component
    share their context count; a component's count is the sum of its
    callers' counts over all incoming invocation edges (+1 entry
    context if it contains a root), so counts grow exponentially and
    are tracked exactly with {!Bignat}.  Each method is assigned the
    contiguous context range [1 .. count], and each invocation edge is
    assigned a constant {e offset}: callers' clone [x] invokes callee
    clone [x + offset].  Contiguous ranges and constant offsets are
    exactly what the BDD primitives {!Bdd.range} and {!Bdd.add_const}
    encode in O(bits) — the key to the paper's scalability (§4.1).

    Counts beyond [2^max_bits - 1] are merged into the top context,
    mirroring the paper's handling of pmd's 5 x 10^23 paths with a
    63-bit JavaBDD limit (§6.1). *)

type numbered_edge = {
  ne_edge : Callgraph.edge;
  ne_k : int;  (** clamped caller context count *)
  ne_offset : int;  (** callee context = caller context + offset *)
  ne_intra : bool;  (** same-SCC edge: clone i calls clone i *)
}

type t

val number : ?max_bits:int -> Jir.Ir.t -> edges:Callgraph.edge list -> roots:Jir.Ir.method_id list -> t
(** [max_bits] defaults to 61 (an OCaml-int-safe stand-in for the
    paper's 63-bit limit). *)

val num_sccs : t -> int
val scc_of_method : t -> Jir.Ir.method_id -> int option
(** [None] for methods unreachable from the roots. *)

val method_contexts : t -> Jir.Ir.method_id -> int
(** Clamped context count of a reachable method; 0 if unreachable. *)

val method_contexts_exact : t -> Jir.Ir.method_id -> Bignat.t
val edges : t -> numbered_edge list
val reachable : t -> Jir.Ir.method_id -> bool

val total_paths : t -> Bignat.t
(** Total number of clones — Figure 3's "C.S. Paths" column. *)

val max_contexts : t -> Bignat.t
(** Largest per-method context count. *)

val merged : t -> bool
(** Whether any count hit the cap. *)

val csize : t -> int
(** Context domain size: clamped maximum count + 1 (context 0 is
    unused; contexts are numbered from 1 as in the paper). *)

(** {2 BDD construction} *)

val iec_bdd :
  t -> Space.t -> caller:Space.block -> invoke:Space.block -> callee:Space.block -> target:Space.block -> Bdd.t
(** The context-sensitive invocation edges
    [IEC(caller : C, invoke : I, callee : C, target : M)], built edge
    by edge from range/offset primitives. *)

val mc_bdd : t -> Space.t -> context:Space.block -> target:Space.block -> Bdd.t
(** [mC(c, m)]: method [m] runs in context [c] — the contiguous range
    [1 .. count m] for every reachable method. *)

(** {2 Explicit enumeration}

    Exponential in general — these exist for differential testing of
    the BDD construction and for the naive reference evaluator, and
    must only be called when counts are small. *)

val iec_tuples : t -> (int * int * int * int) list
(** All [(caller_ctx, invoke, callee_ctx, target)] tuples of {!iec_bdd}. *)

val mc_tuples : t -> (int * int) list
