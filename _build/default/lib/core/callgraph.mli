(** Call graphs over {!Jir.Ir} programs.

    A call graph is a multigraph of invocation edges
    [(invoke site, caller, callee)]; the caller is always the method
    containing the site.  Graphs are built either by class-hierarchy
    analysis (the paper's §2.2 a-priori call graph) or from the [IE]
    relation produced by on-the-fly discovery (Algorithm 3). *)

type edge = { site : Jir.Ir.invoke_id; caller : Jir.Ir.method_id; callee : Jir.Ir.method_id }

val cha_edges : ?thread_start:bool -> Jir.Ir.t -> edge list
(** Class-hierarchy-analysis edges: statically bound sites ([IE0])
    plus, for each virtual site, the dispatch targets over all
    subclasses of the receiver's declared type.  [thread_start]
    (default true) includes the synthetic thread-object-to-run()
    matching edges; Algorithm 7 excludes them so that threads are
    rooted only at their own run() entries. *)

val of_ie_tuples : Jir.Ir.t -> (int * int) list -> edge list
(** Reattach callers to [(site, target)] tuples of a discovered [IE]
    relation. *)

val default_roots : Jir.Ir.t -> Jir.Ir.method_id list
(** Declared entry methods plus the run() methods of instantiated
    thread classes (§4.1 footnote 4: "other entry methods ... and
    thread run methods"). *)

val reachable_methods : Jir.Ir.t -> edge list -> roots:Jir.Ir.method_id list -> bool array
(** Methods transitively callable from the roots, including the
    constructors invoked by reachable allocations (size
    [num_methods]). *)
