module Ir = Jir.Ir

type t = {
  program : Ir.t;
  reach : bool array;
  method_ctxs : (int, unit) Hashtbl.t array; (* per method: context set *)
  edges : Callgraph.edge list;
}

let ctx_of_site i = i + 2

let number p ~edges ~roots =
  let reach = Callgraph.reachable_methods p edges ~roots in
  let live = List.filter (fun (e : Callgraph.edge) -> reach.(e.Callgraph.caller) && reach.(e.Callgraph.callee)) edges in
  let method_ctxs = Array.init (Ir.num_methods p) (fun _ -> Hashtbl.create 4) in
  List.iter (fun r -> if reach.(r) then Hashtbl.replace method_ctxs.(r) 1 ()) roots;
  List.iter
    (fun (e : Callgraph.edge) -> Hashtbl.replace method_ctxs.(e.Callgraph.callee) (ctx_of_site e.Callgraph.site) ())
    live;
  { program = p; reach; method_ctxs; edges = live }

let csize t = Ir.num_invokes t.program + 2

let contexts_of_method t m = List.sort compare (Hashtbl.fold (fun c () acc -> c :: acc) t.method_ctxs.(m) [])

let iec_tuples t =
  let out = ref [] in
  List.iter
    (fun (e : Callgraph.edge) ->
      Hashtbl.iter
        (fun c () -> out := (c, e.Callgraph.site, ctx_of_site e.Callgraph.site, e.Callgraph.callee) :: !out)
        t.method_ctxs.(e.Callgraph.caller))
    t.edges;
  List.sort_uniq compare !out

let mc_tuples t =
  let out = ref [] in
  Array.iteri (fun m ctxs -> Hashtbl.iter (fun c () -> out := (c, m) :: !out) ctxs) t.method_ctxs;
  List.sort compare !out
