module Factgen = Jir.Factgen
module Engine = Datalog.Engine

type candidate = { order : string list; seconds : float; peak_nodes : int; rule_applications : int }
type job = Basic of Analyses.basic | Context_sensitive of Context.t

(* A tiny deterministic shuffler (no dependency on the synth library). *)
let shuffle seed xs =
  let state = ref (seed * 2654435761 land max_int) in
  let next bound =
    state := ((!state * 1103515245) + 12345) land max_int;
    !state / 65536 mod bound
  in
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = next (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let run_candidate fg job order =
  let t0 = Unix.gettimeofday () in
  let text =
    match job with
    | Basic Analyses.Algo1 -> Programs.algo1 fg
    | Basic Analyses.Algo2 -> Programs.algo2 fg
    | Basic Analyses.Algo3 -> Programs.algo3 fg
    | Context_sensitive ctx -> Programs.algo5 fg ~csize:(Context.csize ctx)
  in
  let eng = Engine.parse_and_create ~element_names:(Factgen.element_names fg) ~domain_order:order text in
  List.iter
    (fun (name, tuples) -> Engine.set_tuples eng name (List.map Array.of_list tuples))
    (Programs.input_relations fg);
  (match job with
  | Context_sensitive ctx ->
    let block_of rel n = (Relation.find_attr rel n).Relation.block in
    let iec = Engine.relation eng "IEC" in
    Relation.set_bdd iec
      (Context.iec_bdd ctx (Engine.space eng) ~caller:(block_of iec "caller") ~invoke:(block_of iec "invoke")
         ~callee:(block_of iec "callee") ~target:(block_of iec "tgt"));
    let mc = Engine.relation eng "mC" in
    Relation.set_bdd mc
      (Context.mc_bdd ctx (Engine.space eng) ~context:(block_of mc "context") ~target:(block_of mc "method"))
  | Basic _ -> ());
  let s = Engine.run eng in
  {
    order;
    seconds = Unix.gettimeofday () -. t0;
    peak_nodes = s.Engine.peak_live_nodes;
    rule_applications = s.Engine.rule_applications;
  }

let search ?(budget = 6) ?(seed = 1) fg job =
  let base = [ "V"; "H"; "F"; "T"; "I"; "N"; "M"; "Z" ] in
  let base =
    match job with
    | Context_sensitive _ -> base @ [ "C" ]
    | Basic _ -> base
  in
  let candidates =
    base :: List.rev base :: List.init budget (fun i -> shuffle (seed + i) base)
  in
  (* Deduplicate orders (a shuffle may reproduce one already tried). *)
  let seen = Hashtbl.create 8 in
  let candidates =
    List.filter
      (fun o ->
        let key = String.concat "," o in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      candidates
  in
  let results = List.map (run_candidate fg job) candidates in
  List.sort (fun a b -> compare (a.peak_nodes, a.seconds) (b.peak_nodes, b.seconds)) results
