(** The §5 queries, as {!Programs.query_suffix} values composed onto
    the analysis programs.

    All six Figure 6 type-refinement variants share the outputs
    [activeV]/[multiT]/[refinable] (or their per-clone counterparts
    [activeC]/[multiC]/[refinableC]) so the drivers can compute the
    percentages uniformly. *)

val refinement_ci : Programs.query_suffix
(** §5.3 over a context-insensitive [vP] (Figure 6 columns 1-2,
    depending on the base algorithm). *)

val refinement_projected_cs : Programs.query_suffix
(** Over [vPC] with the context projected away (Figure 6 column 3). *)

val refinement_projected_ts : Programs.query_suffix
(** Over [vTC] projected (Figure 6 column 4). *)

val refinement_full_cs : Programs.query_suffix
(** Per-clone refinement over [vPC] (Figure 6 column 5). *)

val refinement_full_ts : Programs.query_suffix
(** Per-clone refinement over [vTC] (Figure 6 column 6). *)

val mod_ref : Programs.query_suffix
(** §5.4 context-sensitive mod-ref over Algorithm 5's results:
    outputs [mVC], [modset], [refset]. *)

val who_points_to : heap_label:string -> Programs.query_suffix
(** §5.1 memory-leak debugging: who may point to objects allocated at
    the site labelled [heap_label], and which stores (with contexts)
    created the references.  Outputs [whoPointsTo], [whoDunnit]. *)

val jce_vuln : init_method:string -> Programs.query_suffix
(** §5.2 security audit: objects derived from [String] flowing into
    the first argument of [init_method] (e.g. ["PBEKeySpec.init"]).
    Outputs [fromString], [vuln]. *)
