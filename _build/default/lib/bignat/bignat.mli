(** Arbitrary-precision natural numbers.

    Call graphs in the paper have up to 5 x 10^23 reduced call paths
    (pmd, Figure 3), far beyond [max_int].  This module provides the
    small arbitrary-precision arithmetic needed to count call paths,
    size BDD context domains, and print Figure 3's "C.S. Paths" column.

    Values are immutable.  Only naturals are supported; subtraction
    saturates at zero. *)

type t

val zero : t
val one : t

val of_int : int -> t
(** [of_int n] is [n] as a natural.  Raises [Invalid_argument] if
    [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in an OCaml [int]. *)

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [max 0 (a - b)] (saturating). *)

val mul : t -> t -> t
val succ : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val min : t -> t -> t
val max : t -> t -> t

val shift_left : t -> int -> t
(** [shift_left n k] is [n * 2^k]. *)

val pow2 : int -> t
(** [pow2 k] is [2^k]. *)

val num_bits : t -> int
(** [num_bits n] is the number of bits needed to represent [n]; 0 for
    zero.  Equivalently [ceil (log2 (n + 1))]. *)

val to_string : t -> string
(** Decimal representation. *)

val of_string : string -> t
(** Parses a decimal string.  Raises [Invalid_argument] on anything
    other than a non-empty digit sequence. *)

val to_scientific : t -> string
(** Short form like ["5e23"] or ["4e4"], matching how Figure 3 reports
    path counts ("5 x 10^23").  Exact below 10^4. *)

val to_float : t -> float
(** Approximate conversion ([infinity] when out of range). *)

val pp : Format.formatter -> t -> unit
