(* Little-endian limbs in base 2^30.  The representation is normalized:
   no trailing zero limbs, and zero is the empty array.  Base 2^30 keeps
   every intermediate product of two limbs plus a carry within the 63-bit
   OCaml int range (30 + 30 + small). *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]

let is_zero n = Array.length n = 0

let normalize (a : int array) : t =
  let len = ref (Array.length a) in
  while !len > 0 && a.(!len - 1) = 0 do
    decr len
  done;
  if !len = Array.length a then a else Array.sub a 0 !len

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec limbs acc n = if n = 0 then List.rev acc else limbs ((n land limb_mask) :: acc) (n lsr limb_bits) in
    Array.of_list (limbs [] n)
  end

let to_int_opt n =
  (* At most three 30-bit limbs can fit in a 63-bit int, and only if the
     combined width stays under [Sys.int_size - 1]. *)
  let bits_available = Sys.int_size - 1 in
  let rec go i acc shift =
    if i = Array.length n then Some acc
    else if shift >= bits_available then None
    else if shift + limb_bits > bits_available && n.(i) lsr (bits_available - shift) <> 0 then None
    else go (i + 1) (acc lor (n.(i) lsl shift)) (shift + limb_bits)
  in
  go 0 0 0

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + Stdlib.max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = !carry + (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

let succ n = add n one

(* Saturating subtraction: returns zero when b >= a. *)
let sub (a : t) (b : t) : t =
  if compare a b <= 0 then zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make la 0 in
    let borrow = ref 0 in
    for i = 0 to la - 1 do
      let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    normalize r
  end

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let shift_left (n : t) k =
  if is_zero n || k = 0 then n
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let ln = Array.length n in
    let r = Array.make (ln + limb_shift + 1) 0 in
    for i = 0 to ln - 1 do
      let v = n.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land limb_mask);
      r.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let pow2 k = shift_left one k

let num_bits n =
  let ln = Array.length n in
  if ln = 0 then 0
  else begin
    let top = n.(ln - 1) in
    let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
    ((ln - 1) * limb_bits) + width 0 top
  end

(* Division of the whole number by a small int, used only for decimal
   printing.  Returns the quotient and remainder. *)
let divmod_small (n : t) d =
  let ln = Array.length n in
  let q = Array.make ln 0 in
  let rem = ref 0 in
  for i = ln - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor n.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

let to_string n =
  if is_zero n then "0"
  else begin
    (* Peel nine decimal digits at a time (10^9 < 2^30 * small, fits). *)
    let chunks = ref [] in
    let cur = ref n in
    while not (is_zero !cur) do
      let q, r = divmod_small !cur 1_000_000_000 in
      chunks := r :: !chunks;
      cur := q
    done;
    match !chunks with
    | [] -> "0"
    | first :: rest ->
      let buf = Buffer.create 32 in
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let of_string s =
  if s = "" then invalid_arg "Bignat.of_string: empty";
  String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Bignat.of_string: non-digit") s;
  let ten = of_int 10 in
  let acc = ref zero in
  String.iter (fun c -> acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))) s;
  !acc

let to_scientific n =
  let s = to_string n in
  let digits = String.length s in
  if digits <= 4 then s
  else Printf.sprintf "%ce%d" s.[0] (digits - 1)

let to_float n = float_of_string (to_string n)

let pp fmt n = Format.pp_print_string fmt (to_string n)
