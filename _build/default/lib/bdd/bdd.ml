(* Hash-consed OBDD manager.

   Nodes live in parallel int arrays indexed by handle; slot 0 and 1 are
   the terminals.  The unique table is a chained hash whose bucket array
   always has the same length as the node arrays (load factor <= 1).
   Freed slots are threaded through [next] as a free list and marked
   with [var = -1].

   The operation cache is a single direct-mapped array with stride-5
   entries [op; a; b; c; result]; all memoized operations (apply, not,
   ite, exist, relprod, replace) share it, distinguished by [op].  It is
   cleared on GC because freed handles may be reused.

   GC is mark-sweep from registered roots and is only ever invoked
   explicitly, so in-flight intermediate results cannot be collected. *)

type t = int

type varmap = {
  map_id : int;
  map : int array; (* indexed by variable; identity beyond its length *)
}

type man = {
  mutable var : int array;
  mutable low : int array;
  mutable high : int array;
  mutable next : int array; (* hash chain or free list *)
  mutable buckets : int array; (* heads, -1 = empty *)
  mutable free_head : int;
  mutable num_slots : int; (* slots ever allocated, including freed *)
  mutable num_free : int;
  mutable peak_live : int;
  mutable nvars : int;
  cache : int array;
  cache_mask : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable map_counter : int;
  mutable roots : t ref list;
  mutable root_fns : (unit -> t list) list;
  mutable gcs : int;
}

let bdd_false = 0
let bdd_true = 1
let terminal_var = max_int

let is_const n = n < 2
let is_true n = n = 1
let is_false n = n = 0

let var m n =
  if is_const n then invalid_arg "Bdd.var: terminal";
  m.var.(n)

let low m n =
  if is_const n then invalid_arg "Bdd.low: terminal";
  m.low.(n)

let high m n =
  if is_const n then invalid_arg "Bdd.high: terminal";
  m.high.(n)

(* Level of a node with terminals at the bottom of the order. *)
let level m n = if is_const n then terminal_var else m.var.(n)

let live_nodes m = m.num_slots - 2 - m.num_free
let peak_live_nodes m = m.peak_live
let reset_peak m = m.peak_live <- live_nodes m
let gc_count m = m.gcs
let cache_stats m = (m.cache_hits, m.cache_misses)
let nvars m = m.nvars
let extend_vars m n = if n > m.nvars then m.nvars <- n

let hash3 a b c = (a * 12582917) lxor (b * 4256249) lxor (c * 741457)

let create ?(node_hint = 1 lsl 16) ?(cache_bits = 16) ~nvars () =
  let cap =
    let rec up c = if c >= node_hint then c else up (c * 2) in
    up 1024
  in
  let m =
    {
      var = Array.make cap 0;
      low = Array.make cap 0;
      high = Array.make cap 0;
      next = Array.make cap (-1);
      buckets = Array.make cap (-1);
      free_head = -1;
      num_slots = 2;
      num_free = 0;
      peak_live = 0;
      nvars;
      cache = Array.make ((1 lsl cache_bits) * 5) (-1);
      cache_mask = (1 lsl cache_bits) - 1;
      cache_hits = 0;
      cache_misses = 0;
      map_counter = 0;
      roots = [];
      root_fns = [];
      gcs = 0;
    }
  in
  (* Terminals: self-looping pseudo-nodes never reached by recursion. *)
  m.var.(0) <- terminal_var;
  m.var.(1) <- terminal_var;
  m.low.(0) <- 0;
  m.high.(0) <- 0;
  m.low.(1) <- 1;
  m.high.(1) <- 1;
  m

let rehash m =
  Array.fill m.buckets 0 (Array.length m.buckets) (-1);
  let mask = Array.length m.buckets - 1 in
  for n = 2 to m.num_slots - 1 do
    if m.var.(n) >= 0 then begin
      let b = hash3 m.var.(n) m.low.(n) m.high.(n) land mask in
      m.next.(n) <- m.buckets.(b);
      m.buckets.(b) <- n
    end
  done

let grow m =
  let cap = Array.length m.var in
  let cap' = cap * 2 in
  let copy a = Array.append a (Array.make cap 0) in
  m.var <- copy m.var;
  m.low <- copy m.low;
  m.high <- copy m.high;
  m.next <- copy m.next;
  m.buckets <- Array.make cap' (-1);
  rehash m

let mk m v l h =
  if l = h then l
  else begin
    let mask = Array.length m.buckets - 1 in
    let b = hash3 v l h land mask in
    let rec find n = if n = -1 then -1 else if m.var.(n) = v && m.low.(n) = l && m.high.(n) = h then n else find m.next.(n) in
    let found = find m.buckets.(b) in
    if found >= 0 then found
    else begin
      let slot =
        if m.free_head >= 0 then begin
          let s = m.free_head in
          m.free_head <- m.next.(s);
          m.num_free <- m.num_free - 1;
          s
        end else begin
          if m.num_slots = Array.length m.var then grow m;
          let s = m.num_slots in
          m.num_slots <- m.num_slots + 1;
          s
        end
      in
      m.var.(slot) <- v;
      m.low.(slot) <- l;
      m.high.(slot) <- h;
      (* Recompute the bucket: [grow] may have changed the mask. *)
      let b = hash3 v l h land (Array.length m.buckets - 1) in
      m.next.(slot) <- m.buckets.(b);
      m.buckets.(b) <- slot;
      let live = live_nodes m in
      if live > m.peak_live then m.peak_live <- live;
      slot
    end
  end

let ithvar m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.ithvar";
  mk m i bdd_false bdd_true

let nithvar m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.nithvar";
  mk m i bdd_true bdd_false

(* Operation codes for the shared cache. *)
let op_and = 1
let op_or = 2
let op_xor = 3
let op_diff = 4
let op_imp = 5
let op_biimp = 6
let op_not = 7
let op_ite = 8
let op_exist = 9
let op_relprod = 10
let op_replace = 11

let cache_lookup m op a b c =
  let slot = hash3 (op + (a * 31)) b c land m.cache_mask in
  let i = slot * 5 in
  let cache = m.cache in
  if cache.(i) = op && cache.(i + 1) = a && cache.(i + 2) = b && cache.(i + 3) = c then begin
    m.cache_hits <- m.cache_hits + 1;
    cache.(i + 4)
  end else begin
    m.cache_misses <- m.cache_misses + 1;
    -1
  end

let cache_store m op a b c r =
  let slot = hash3 (op + (a * 31)) b c land m.cache_mask in
  let i = slot * 5 in
  let cache = m.cache in
  cache.(i) <- op;
  cache.(i + 1) <- a;
  cache.(i + 2) <- b;
  cache.(i + 3) <- c;
  cache.(i + 4) <- r

let rec mk_not m f =
  if f = bdd_false then bdd_true
  else if f = bdd_true then bdd_false
  else begin
    let cached = cache_lookup m op_not f 0 0 in
    if cached >= 0 then cached
    else begin
      let r = mk m m.var.(f) (mk_not m m.low.(f)) (mk_not m m.high.(f)) in
      cache_store m op_not f 0 0 r;
      r
    end
  end

(* Terminal rules for the binary connectives; returns -1 when no rule
   applies and the recursion must proceed. *)
let apply_terminal m op f g =
  if op = op_and then
    if f = bdd_false || g = bdd_false then bdd_false
    else if f = bdd_true then g
    else if g = bdd_true then f
    else if f = g then f
    else -1
  else if op = op_or then
    if f = bdd_true || g = bdd_true then bdd_true
    else if f = bdd_false then g
    else if g = bdd_false then f
    else if f = g then f
    else -1
  else if op = op_xor then
    if f = g then bdd_false
    else if f = bdd_false then g
    else if g = bdd_false then f
    else if f = bdd_true then mk_not m g
    else if g = bdd_true then mk_not m f
    else -1
  else if op = op_diff then
    if f = bdd_false || g = bdd_true then bdd_false
    else if f = g then bdd_false
    else if g = bdd_false then f
    else if f = bdd_true then mk_not m g
    else -1
  else if op = op_imp then
    if f = bdd_false || g = bdd_true then bdd_true
    else if f = g then bdd_true
    else if f = bdd_true then g
    else if g = bdd_false then mk_not m f
    else -1
  else if op = op_biimp then
    if f = g then bdd_true
    else if f = bdd_true then g
    else if g = bdd_true then f
    else if f = bdd_false then mk_not m g
    else if g = bdd_false then mk_not m f
    else -1
  else invalid_arg "Bdd.apply_terminal: bad op"

let commutative op = op = op_and || op = op_or || op = op_xor || op = op_biimp

let rec apply m op f g =
  let t = apply_terminal m op f g in
  if t >= 0 then t
  else begin
    (* Canonicalize commutative operands for better cache hits. *)
    let f, g = if commutative op && f > g then (g, f) else (f, g) in
    let cached = cache_lookup m op f g 0 in
    if cached >= 0 then cached
    else begin
      let vf = level m f and vg = level m g in
      let v = if vf < vg then vf else vg in
      let f0, f1 = if vf = v then (m.low.(f), m.high.(f)) else (f, f) in
      let g0, g1 = if vg = v then (m.low.(g), m.high.(g)) else (g, g) in
      let r = mk m v (apply m op f0 g0) (apply m op f1 g1) in
      cache_store m op f g 0 r;
      r
    end
  end

let mk_and m f g = apply m op_and f g
let mk_or m f g = apply m op_or f g
let mk_xor m f g = apply m op_xor f g
let mk_diff m f g = apply m op_diff f g
let mk_imp m f g = apply m op_imp f g
let mk_biimp m f g = apply m op_biimp f g

let rec mk_ite m f g h =
  if f = bdd_true then g
  else if f = bdd_false then h
  else if g = h then g
  else if g = bdd_true && h = bdd_false then f
  else if g = bdd_false && h = bdd_true then mk_not m f
  else begin
    let cached = cache_lookup m op_ite f g h in
    if cached >= 0 then cached
    else begin
      let vf = level m f and vg = level m g and vh = level m h in
      let v = min vf (min vg vh) in
      let f0, f1 = if vf = v then (m.low.(f), m.high.(f)) else (f, f) in
      let g0, g1 = if vg = v then (m.low.(g), m.high.(g)) else (g, g) in
      let h0, h1 = if vh = v then (m.low.(h), m.high.(h)) else (h, h) in
      let r = mk m v (mk_ite m f0 g0 h0) (mk_ite m f1 g1 h1) in
      cache_store m op_ite f g h r;
      r
    end
  end

let cube_of_vars m vs =
  let sorted = List.sort_uniq compare vs in
  List.fold_right (fun v acc -> mk m v bdd_false acc) sorted bdd_true

(* Drop leading cube variables above (i.e. at smaller levels than) [v];
   they cannot occur in the function being quantified below [v]. *)
let rec skip_cube m cube v =
  if is_const cube then cube
  else if m.var.(cube) < v then skip_cube m m.high.(cube) v
  else cube

let rec exist_rec m cube f =
  if is_const f then f
  else begin
    let cube = skip_cube m cube m.var.(f) in
    if cube = bdd_true then f
    else begin
      let cached = cache_lookup m op_exist f cube 0 in
      if cached >= 0 then cached
      else begin
        let v = m.var.(f) in
        let r =
          if m.var.(cube) = v then mk_or m (exist_rec m m.high.(cube) m.low.(f)) (exist_rec m m.high.(cube) m.high.(f))
          else mk m v (exist_rec m cube m.low.(f)) (exist_rec m cube m.high.(f))
        in
        cache_store m op_exist f cube 0 r;
        r
      end
    end
  end

let exist m ~cube f = exist_rec m cube f
let forall m ~cube f = mk_not m (exist_rec m cube (mk_not m f))

let rec relprod_rec m cube f g =
  if f = bdd_false || g = bdd_false then bdd_false
  else if cube = bdd_true then apply m op_and f g
  else if f = bdd_true && g = bdd_true then bdd_true
  else begin
    let vf = level m f and vg = level m g in
    let v = if vf < vg then vf else vg in
    let cube = skip_cube m cube v in
    if cube = bdd_true then apply m op_and f g
    else begin
      let f, g = if f > g then (g, f) else (f, g) in
      let cached = cache_lookup m op_relprod f g cube in
      if cached >= 0 then cached
      else begin
        let vf = level m f and vg = level m g in
        let v = if vf < vg then vf else vg in
        let f0, f1 = if vf = v then (m.low.(f), m.high.(f)) else (f, f) in
        let g0, g1 = if vg = v then (m.low.(g), m.high.(g)) else (g, g) in
        let r =
          if m.var.(cube) = v then mk_or m (relprod_rec m m.high.(cube) f0 g0) (relprod_rec m m.high.(cube) f1 g1)
          else mk m v (relprod_rec m cube f0 g0) (relprod_rec m cube f1 g1)
        in
        cache_store m op_relprod f g cube r;
        r
      end
    end
  end

let relprod m ~cube f g = relprod_rec m cube f g

let make_map m pairs =
  let map = Array.init m.nvars (fun i -> i) in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= m.nvars || b < 0 || b >= m.nvars then invalid_arg "Bdd.make_map: variable out of range";
      map.(a) <- b)
    pairs;
  m.map_counter <- m.map_counter + 1;
  { map_id = m.map_counter; map }

let rec replace_rec m vm f =
  if is_const f then f
  else begin
    let cached = cache_lookup m op_replace f vm.map_id 0 in
    if cached >= 0 then cached
    else begin
      let v = m.var.(f) in
      let v' = if v < Array.length vm.map then vm.map.(v) else v in
      let l = replace_rec m vm m.low.(f) in
      let h = replace_rec m vm m.high.(f) in
      (* [mk_ite] rather than [mk]: correct even when the renaming does
         not preserve the variable order. *)
      let r = mk_ite m (ithvar m v') h l in
      cache_store m op_replace f vm.map_id 0 r;
      r
    end
  end

let replace m vm f = replace_rec m vm f

let support m f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go n =
    if not (is_const n) && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      Hashtbl.replace vars m.var.(n) ();
      go m.low.(n);
      go m.high.(n)
    end
  in
  go f;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let node_count m f =
  let seen = Hashtbl.create 64 in
  let rec go n =
    if not (is_const n) && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      go m.low.(n);
      go m.high.(n)
    end
  in
  go f;
  Hashtbl.length seen

(* Generic satcount parameterized by a small semiring. *)
let satcount_gen m ~vars f ~zero ~two_pow ~add ~scale =
  let len = Array.length vars in
  let pos = Hashtbl.create len in
  Array.iteri (fun i v -> Hashtbl.add pos v i) vars;
  let memo = Hashtbl.create 64 in
  (* [count n i] = assignments of vars.(i..) satisfying n, where n's top
     variable has position >= i. *)
  let rec count n i =
    if n = bdd_false then zero
    else if n = bdd_true then two_pow (len - i)
    else begin
      let j =
        match Hashtbl.find_opt pos m.var.(n) with
        | Some j -> j
        | None -> invalid_arg "Bdd.satcount: support not included in vars"
      in
      let c =
        match Hashtbl.find_opt memo n with
        | Some c -> c
        | None ->
          let c = add (count m.low.(n) (j + 1)) (count m.high.(n) (j + 1)) in
          Hashtbl.add memo n c;
          c
      in
      scale c (j - i)
    end
  in
  count f 0

let satcount m ~vars f =
  satcount_gen m ~vars f ~zero:0.0 ~two_pow:(fun k -> Float.pow 2.0 (float_of_int k)) ~add:( +. )
    ~scale:(fun c k -> c *. Float.pow 2.0 (float_of_int k))

let satcount_big m ~vars f =
  satcount_gen m ~vars f ~zero:Bignat.zero ~two_pow:Bignat.pow2 ~add:Bignat.add ~scale:(fun c k -> Bignat.shift_left c k)

let iter_sat m ~vars yield f =
  let len = Array.length vars in
  let assignment = Array.make len false in
  let rec go i n =
    if n <> bdd_false then
      if i = len then begin
        if n = bdd_true then yield assignment
        else invalid_arg "Bdd.iter_sat: support not included in vars"
      end
      else begin
        let vn = level m n in
        if vn = vars.(i) then begin
          assignment.(i) <- false;
          go (i + 1) m.low.(n);
          assignment.(i) <- true;
          go (i + 1) m.high.(n)
        end
        else if vn > vars.(i) then begin
          (* n does not depend on vars.(i): both values satisfy. *)
          assignment.(i) <- false;
          go (i + 1) n;
          assignment.(i) <- true;
          go (i + 1) n
        end
        else invalid_arg "Bdd.iter_sat: vars must be sorted and include the support"
      end
  in
  go 0 f

(* --- Arithmetic primitives (LSB-first bit blocks) --- *)

let const_value m ~bits value =
  let w = Array.length bits in
  if w < Sys.int_size - 1 && value lsr w <> 0 then invalid_arg "Bdd.const_value: value too wide";
  let acc = ref bdd_true in
  for i = w - 1 downto 0 do
    let lit = if (value lsr i) land 1 = 1 then ithvar m bits.(i) else nithvar m bits.(i) in
    acc := mk_and m lit !acc
  done;
  !acc

let range m ~bits ~lo ~hi =
  if lo > hi then bdd_false
  else begin
    let w = Array.length bits in
    (* x <= hi, built LSB to MSB. *)
    let le = ref bdd_true in
    for i = 0 to w - 1 do
      let x = ithvar m bits.(i) in
      le := if (hi lsr i) land 1 = 1 then mk_ite m x !le bdd_true else mk_ite m x bdd_false !le
    done;
    (* x >= lo. *)
    let ge = ref bdd_true in
    for i = 0 to w - 1 do
      let x = ithvar m bits.(i) in
      ge := if (lo lsr i) land 1 = 1 then mk_ite m x !ge bdd_false else mk_ite m x bdd_true !ge
    done;
    mk_and m !le !ge
  end

let add_const m ~src ~dst ~delta =
  if Array.length src <> Array.length dst then invalid_arg "Bdd.add_const: width mismatch";
  if delta < 0 then invalid_arg "Bdd.add_const: negative delta";
  let w = Array.length src in
  let acc = ref bdd_true in
  let carry = ref bdd_false in
  for i = 0 to w - 1 do
    let s = ithvar m src.(i) and d = ithvar m dst.(i) in
    let di = (delta lsr i) land 1 = 1 in
    (* sum bit = s xor delta_i xor carry *)
    let s_xor_c = mk_xor m s !carry in
    let sum = if di then mk_not m s_xor_c else s_xor_c in
    acc := mk_and m !acc (mk_biimp m d sum);
    (* carry' = delta_i ? (s or carry) : (s and carry) *)
    carry := if di then mk_or m s !carry else mk_and m s !carry
  done;
  (* Exclude overflowing assignments: the final carry must be 0, and the
     part of delta beyond the width must be 0. *)
  if w < Sys.int_size - 1 && delta lsr w <> 0 then bdd_false else mk_and m !acc (mk_not m !carry)

let equal_blocks m ~src ~dst =
  if Array.length src <> Array.length dst then invalid_arg "Bdd.equal_blocks: width mismatch";
  let acc = ref bdd_true in
  for i = Array.length src - 1 downto 0 do
    acc := mk_and m (mk_biimp m (ithvar m src.(i)) (ithvar m dst.(i))) !acc
  done;
  !acc

let to_dot ?(var_name = fun i -> Printf.sprintf "x%d" i) m f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph bdd {\n";
  Buffer.add_string buf "  node0 [shape=box, label=\"0\"];\n";
  Buffer.add_string buf "  node1 [shape=box, label=\"1\"];\n";
  let seen = Hashtbl.create 64 in
  let rec go n =
    if not (is_const n) && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      Buffer.add_string buf (Printf.sprintf "  node%d [label=%S];\n" n (var_name m.var.(n)));
      Buffer.add_string buf (Printf.sprintf "  node%d -> node%d [style=dashed];\n" n m.low.(n));
      Buffer.add_string buf (Printf.sprintf "  node%d -> node%d;\n" n m.high.(n));
      go m.low.(n);
      go m.high.(n)
    end
  in
  go f;
  (match f with
  | 0 | 1 -> ()
  | root -> Buffer.add_string buf (Printf.sprintf "  root [shape=none, label=\"\"];\n  root -> node%d;\n" root));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* --- Garbage collection --- *)

let add_root m r = m.roots <- r :: m.roots
let remove_root m r = m.roots <- List.filter (fun r' -> r' != r) m.roots
let add_root_fn m f = m.root_fns <- f :: m.root_fns

let gc m =
  let marked = Bytes.make m.num_slots '\000' in
  let rec mark n =
    if n >= 2 && Bytes.get marked n = '\000' then begin
      Bytes.set marked n '\001';
      mark m.low.(n);
      mark m.high.(n)
    end
  in
  List.iter (fun r -> mark !r) m.roots;
  List.iter (fun f -> List.iter mark (f ())) m.root_fns;
  (* Sweep: free unmarked live slots. *)
  for n = 2 to m.num_slots - 1 do
    if m.var.(n) >= 0 && Bytes.get marked n = '\000' then begin
      m.var.(n) <- -1;
      m.next.(n) <- m.free_head;
      m.free_head <- n;
      m.num_free <- m.num_free + 1
    end
  done;
  rehash m;
  (* Rebuilding the buckets clobbered the free list threading: restore it. *)
  m.free_head <- -1;
  m.num_free <- 0;
  for n = m.num_slots - 1 downto 2 do
    if m.var.(n) = -1 then begin
      m.next.(n) <- m.free_head;
      m.free_head <- n;
      m.num_free <- m.num_free + 1
    end
  done;
  Array.fill m.cache 0 (Array.length m.cache) (-1);
  m.gcs <- m.gcs + 1
