type stratum = { preds : string list; once_rules : Ast.rule list; loop_rules : Ast.rule list }

exception Not_stratified of string

(* Dependency graph over all predicate names: an edge body -> head for
   every body literal.  Returns (names, index-of, graph, negative edge
   list). *)
let dependency_graph (p : Ast.program) =
  let names = List.map (fun (r : Ast.rel_decl) -> r.Ast.rel_name) p.Ast.relations in
  let index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.add index n i) names;
  let idx n =
    match Hashtbl.find_opt index n with
    | Some i -> i
    | None -> raise (Not_stratified (Printf.sprintf "undeclared relation %s" n))
  in
  let edges = ref [] in
  let neg_edges = ref [] in
  List.iter
    (fun (r : Ast.rule) ->
      let h = idx r.Ast.head.Ast.pred in
      List.iter
        (fun lit ->
          match lit with
          | Ast.Pos a -> edges := (idx a.Ast.pred, h) :: !edges
          | Ast.Neg a ->
            edges := (idx a.Ast.pred, h) :: !edges;
            neg_edges := (idx a.Ast.pred, h) :: !neg_edges
          | Ast.Cmp _ -> ())
        r.Ast.body)
    p.Ast.rules;
  (Array.of_list names, idx, Graphutil.make (List.length names) !edges, !neg_edges)

let strata (p : Ast.program) =
  let names, idx, g, neg_edges = dependency_graph p in
  let comp, members = Graphutil.scc g in
  List.iter
    (fun (a, b) ->
      if comp.(a) = comp.(b) then
        raise
          (Not_stratified
             (Printf.sprintf "negation of %s inside the recursive component defining %s" names.(a) names.(b))))
    neg_edges;
  let ncomps = Array.length members in
  (* Tarjan completes the components a node can reach before the node's
     own component, so for a dependency edge body -> head we have
     comp(head) < comp(body).  Descending index order therefore
     evaluates dependencies first. *)
  let rules_of_comp = Array.make ncomps ([], []) in
  List.iter
    (fun (r : Ast.rule) ->
      let c = comp.(idx r.Ast.head.Ast.pred) in
      let recursive =
        List.exists
          (fun lit ->
            match lit with
            | Ast.Pos a -> comp.(idx a.Ast.pred) = c
            | Ast.Neg _ | Ast.Cmp _ -> false)
          r.Ast.body
      in
      let once, loop = rules_of_comp.(c) in
      rules_of_comp.(c) <- (if recursive then (once, r :: loop) else (r :: once, loop)))
    p.Ast.rules;
  List.filter_map
    (fun c ->
      let once, loop = rules_of_comp.(c) in
      if once = [] && loop = [] then None
      else
        Some { preds = List.map (fun v -> names.(v)) members.(c); once_rules = List.rev once; loop_rules = List.rev loop })
    (List.init ncomps (fun c -> ncomps - 1 - c))

let is_recursive (p : Ast.program) (r : Ast.rule) =
  let _, idx, g, _ = dependency_graph p in
  let comp, _ = Graphutil.scc g in
  let c = comp.(idx r.Ast.head.Ast.pred) in
  List.exists
    (fun lit ->
      match lit with
      | Ast.Pos a -> comp.(idx a.Ast.pred) = c
      | Ast.Neg _ | Ast.Cmp _ -> false)
    r.Ast.body
