(** Text format for relation tuples, one tuple per line as
    space-separated ordinals ([#] comments allowed) — the counterpart
    of bddbddb's ".tuples" files, used by the standalone Datalog
    front end. *)

val load_file : string -> int list list
(** Raises [Sys_error] / [Failure] on unreadable files or non-integer
    fields. *)

val save_file : string -> int array list -> unit

val load_inputs : dir:string -> Ast.program -> (string * int list list) list
(** For every [input] relation of the program, load ["<dir>/<name>.tuples"]
    if it exists (missing files mean empty relations). *)

val save_outputs : dir:string -> Ast.program -> (string -> int array list) -> unit
(** Write every [output] relation to ["<dir>/<name>.tuples"]. *)
