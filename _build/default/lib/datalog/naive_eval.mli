(** Slow, obviously-correct Datalog evaluator over explicit tuple
    sets — the executable specification of {!Engine}, used for
    differential testing (the paper's semi-naive BDD evaluation was
    "very difficult to get correct"; §6.4 reports a subtle
    incrementalization bug found months later — this is our guard
    against the same).

    Evaluation is naive fixpoint iteration per stratum with
    backtracking joins; exponential in the worst case, fine for test
    programs. *)

type result

val solve :
  ?element_names:(string -> string array option) ->
  Ast.program ->
  inputs:(string * int list list) list ->
  result
(** Raises the same {!Resolve.Check_error} / {!Stratify.Not_stratified}
    as the engine on bad programs. *)

val tuples : result -> string -> int list list
(** Sorted, deduplicated tuples of a relation after solving. *)
