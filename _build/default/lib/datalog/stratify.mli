(** Stratification and rule ordering (§2.4.1 "rule application order").

    bddbddb accepts stratified Datalog (§2.1): rules are grouped into
    strata, each with a unique minimal model, solved in dependency
    order.  Within a stratum, a rule is {e recursive} if some positive
    body predicate belongs to the same stratum; recursive rules are
    iterated to fixpoint (semi-naively), non-recursive ones are applied
    once — the paper's observation that rule (1) of Algorithm 1 "can be
    applied only once at the beginning". *)

type stratum = {
  preds : string list;  (** predicates defined in this stratum *)
  once_rules : Ast.rule list;  (** apply once, before iterating *)
  loop_rules : Ast.rule list;  (** iterate to fixpoint *)
}

exception Not_stratified of string

val strata : Ast.program -> stratum list
(** Strata in evaluation order.  Raises {!Not_stratified} when a
    negation occurs inside a recursive component. *)

val is_recursive : Ast.program -> Ast.rule -> bool
