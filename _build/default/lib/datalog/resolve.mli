(** Name resolution and static checking of Datalog programs.

    Checks performed (errors are reported with the offending rule
    pretty-printed):
    - domain and relation names are declared once; attribute domains
      exist; attribute names are unique per relation;
    - every atom refers to a declared relation with the right arity;
    - each variable is used consistently at positions of a single
      domain; comparisons relate terms of one domain;
    - constants name valid elements of their domain;
    - {e safety}: every head variable, and every variable of a negated
      atom or comparison, is bound by some positive body atom; facts
      (empty body) are all-constant; wildcards may not occur in heads;
    - input relations may not appear in rule heads. *)

type pred = {
  decl : Ast.rel_decl;
  doms : Domain.t array;  (** attribute domains, positionally *)
}

type t = {
  program : Ast.program;
  domains : (string * Domain.t) list;  (** declaration order *)
  preds : (string, pred) Hashtbl.t;
}

exception Check_error of string

val resolve : ?element_names:(string -> string array option) -> Ast.program -> t
(** [element_names dom_name] supplies the optional element-name table
    for a domain (the paper's ".map" files). *)

val pred : t -> string -> pred
(** Raises {!Check_error} on unknown predicates. *)

val const_index : Domain.t -> string -> int
(** Resolve a constant in a domain; raises {!Check_error}. *)

val term_domain : t -> Ast.rule -> string -> Domain.t
(** Domain of a variable within a (resolved) rule. *)

val var_domains : t -> Ast.rule -> (string, Domain.t) Hashtbl.t
(** Domains of all variables of a rule. *)
