(** Hand-written lexer for the Datalog concrete syntax. *)

type token =
  | IDENT of string  (** identifiers: predicates, variables, domains *)
  | STRING of string  (** "quoted" constant or file name *)
  | INT of int
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | TURNSTILE  (** [:-] *)
  | DOT
  | BANG
  | EQ
  | NEQ
  | UNDERSCORE
  | EOF

type error = { message : string; line : int; col : int }

exception Lex_error of error

val tokens : string -> (token * int) list
(** [tokens src] lexes the whole source, returning each token with its
    line number.  Comments run from [#] to end of line.
    Raises {!Lex_error}. *)

val pp_token : Format.formatter -> token -> unit
