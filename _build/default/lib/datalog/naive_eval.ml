module Tuples = Set.Make (struct
  type t = int list

  let compare = compare
end)

type result = { db : (string, Tuples.t ref) Hashtbl.t }

let lookup env v = List.assoc_opt v env

(* Match one atom argument against a tuple value, extending the
   environment; [None] means mismatch. *)
let match_arg (res : Resolve.t) dom env (arg : Ast.term) value =
  match arg with
  | Ast.Wildcard -> Some env
  | Ast.Const c -> if Resolve.const_index dom c = value then Some env else None
  | Ast.Var v -> (
    match lookup env v with
    | Some bound -> if bound = value then Some env else None
    | None ->
      ignore res;
      Some ((v, value) :: env))

let match_atom res (preds : (string, Resolve.pred) Hashtbl.t) db env (a : Ast.atom) =
  let p = Hashtbl.find preds a.Ast.pred in
  let tuples = !(Hashtbl.find db a.Ast.pred) in
  Tuples.fold
    (fun tu acc ->
      let rec go env args vals i =
        match (args, vals) with
        | [], [] -> Some env
        | arg :: args', v :: vals' -> (
          match match_arg res p.Resolve.doms.(i) env arg v with
          | Some env' -> go env' args' vals' (i + 1)
          | None -> None)
        | [], _ :: _ | _ :: _, [] -> None
      in
      match go env a.Ast.args tu 0 with
      | Some env' -> env' :: acc
      | None -> acc)
    tuples []

let term_value dom env (t : Ast.term) =
  match t with
  | Ast.Var v -> (
    match lookup env v with
    | Some x -> x
    | None -> raise (Resolve.Check_error "unbound variable in naive evaluation"))
  | Ast.Const c -> Resolve.const_index dom c
  | Ast.Wildcard -> raise (Resolve.Check_error "wildcard where a value is needed")

(* Domain of a comparison, needed to resolve constants on either side. *)
let cmp_domain res rule l r =
  match (l, r) with
  | Ast.Var v, _ | _, Ast.Var v -> Resolve.term_domain res rule v
  | (Ast.Const _ | Ast.Wildcard), (Ast.Const _ | Ast.Wildcard) ->
    raise (Resolve.Check_error "comparison without variables")

let eval_rule res db (rule : Ast.rule) =
  let preds = res.Resolve.preds in
  (* Positive atoms bind; negations and comparisons filter afterwards
     (all their variables are positively bound by safety). *)
  let positives = List.filter_map (function Ast.Pos a -> Some a | Ast.Neg _ | Ast.Cmp _ -> None) rule.Ast.body in
  let filters = List.filter (function Ast.Pos _ -> false | Ast.Neg _ | Ast.Cmp _ -> true) rule.Ast.body in
  let envs = List.fold_left (fun envs a -> List.concat_map (fun env -> match_atom res preds db env a) envs) [ [] ] positives in
  let envs =
    List.filter
      (fun env ->
        List.for_all
          (fun lit ->
            match lit with
            | Ast.Neg a -> match_atom res preds db env a = []
            | Ast.Cmp (l, op, r) ->
              let dom = cmp_domain res rule l r in
              let lv = term_value dom env l and rv = term_value dom env r in
              (match op with
              | Ast.Eq -> lv = rv
              | Ast.Neq -> lv <> rv)
            | Ast.Pos _ -> true)
          filters)
      envs
  in
  let hp = Hashtbl.find preds rule.Ast.head.Ast.pred in
  List.map
    (fun env -> List.mapi (fun i arg -> term_value hp.Resolve.doms.(i) env arg) rule.Ast.head.Ast.args)
    envs

let solve ?element_names (program : Ast.program) ~inputs =
  let res = Resolve.resolve ?element_names program in
  let strata = Stratify.strata program in
  let db : (string, Tuples.t ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (decl : Ast.rel_decl) -> Hashtbl.add db decl.Ast.rel_name (ref Tuples.empty)) program.Ast.relations;
  List.iter
    (fun (name, tuples) ->
      let slot =
        match Hashtbl.find_opt db name with
        | Some s -> s
        | None -> raise (Resolve.Check_error (Printf.sprintf "unknown input relation %s" name))
      in
      let p = Hashtbl.find res.Resolve.preds name in
      List.iter
        (fun tu ->
          if List.length tu <> Array.length p.Resolve.doms then
            raise (Resolve.Check_error (Printf.sprintf "tuple arity mismatch for %s" name));
          List.iteri
            (fun i v ->
              if v < 0 || v >= Domain.size p.Resolve.doms.(i) then
                raise (Resolve.Check_error (Printf.sprintf "value %d out of range for %s" v name)))
            tu;
          slot := Tuples.add tu !slot)
        tuples)
    inputs;
  let apply_rules rules =
    List.fold_left
      (fun changed rule ->
        let derived = eval_rule res db rule in
        let slot = Hashtbl.find db rule.Ast.head.Ast.pred in
        List.fold_left
          (fun changed tu ->
            if Tuples.mem tu !slot then changed
            else begin
              slot := Tuples.add tu !slot;
              true
            end)
          changed derived)
      false rules
  in
  List.iter
    (fun (st : Stratify.stratum) ->
      ignore (apply_rules st.Stratify.once_rules);
      if st.Stratify.loop_rules <> [] then begin
        let continue = ref true in
        while !continue do
          continue := apply_rules st.Stratify.loop_rules
        done
      end)
    strata;
  { db }

let tuples r name =
  match Hashtbl.find_opt r.db name with
  | Some s -> Tuples.elements !s
  | None -> raise (Resolve.Check_error (Printf.sprintf "unknown relation %s" name))
