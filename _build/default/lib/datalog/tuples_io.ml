let load_file path =
  let ic = open_in path in
  let tuples = ref [] in
  (try
     let line_no = ref 0 in
     while true do
       let line = input_line ic in
       incr line_no;
       let line =
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line
       in
       let fields = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
       if fields <> [] then begin
         let tuple =
           List.map
             (fun s ->
               match int_of_string_opt s with
               | Some v -> v
               | None -> failwith (Printf.sprintf "%s:%d: not an integer: %s" path !line_no s))
             fields
         in
         tuples := tuple :: !tuples
       end
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !tuples

let save_file path tuples =
  let oc = open_out path in
  List.iter
    (fun t ->
      Array.iteri
        (fun i v ->
          if i > 0 then output_char oc ' ';
          output_string oc (string_of_int v))
        t;
      output_char oc '\n')
    tuples;
  close_out oc

let load_inputs ~dir (program : Ast.program) =
  List.filter_map
    (fun (r : Ast.rel_decl) ->
      match r.Ast.rel_kind with
      | Ast.Input ->
        let path = Filename.concat dir (r.Ast.rel_name ^ ".tuples") in
        if Sys.file_exists path then Some (r.Ast.rel_name, load_file path) else Some (r.Ast.rel_name, [])
      | Ast.Output | Ast.Internal -> None)
    program.Ast.relations

let save_outputs ~dir (program : Ast.program) tuples_of =
  List.iter
    (fun (r : Ast.rel_decl) ->
      match r.Ast.rel_kind with
      | Ast.Output -> save_file (Filename.concat dir (r.Ast.rel_name ^ ".tuples")) (tuples_of r.Ast.rel_name)
      | Ast.Input | Ast.Internal -> ())
    program.Ast.relations
