lib/datalog/resolve.ml: Array Ast Domain Format Hashtbl List
