lib/datalog/tuples_io.ml: Array Ast Filename List Printf String Sys
