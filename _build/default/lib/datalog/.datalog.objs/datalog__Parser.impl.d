lib/datalog/parser.ml: Array Ast Format Lexer List String
