lib/datalog/naive_eval.ml: Array Ast Domain Hashtbl List Printf Resolve Set Stratify
