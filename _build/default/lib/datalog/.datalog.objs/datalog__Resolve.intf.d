lib/datalog/resolve.mli: Ast Domain Hashtbl
