lib/datalog/engine.ml: Array Ast Bdd Domain Format Hashtbl List Option Parser Relation Resolve Space Stratify Unix
