lib/datalog/ast.mli: Format
