lib/datalog/naive_eval.mli: Ast
