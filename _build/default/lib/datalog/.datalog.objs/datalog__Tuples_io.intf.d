lib/datalog/tuples_io.mli: Ast
