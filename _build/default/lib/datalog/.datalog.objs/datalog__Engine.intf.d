lib/datalog/engine.mli: Ast Domain Relation Space
