lib/datalog/stratify.ml: Array Ast Graphutil Hashtbl List Printf
