lib/datalog/lexer.mli: Format
