type token =
  | IDENT of string
  | STRING of string
  | INT of int
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | TURNSTILE
  | DOT
  | BANG
  | EQ
  | NEQ
  | UNDERSCORE
  | EOF

type error = { message : string; line : int; col : int }

exception Lex_error of error

let fail ~line ~col message = raise (Lex_error { message; line; col })

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '_' || c = '\''
let is_digit c = c >= '0' && c <= '9'

let tokens src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let col = ref 1 in
  let i = ref 0 in
  let emit t = out := (t, !line) :: !out in
  let advance () =
    if !i < n && src.[!i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr i
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '(' then (emit LPAREN; advance ())
    else if c = ')' then (emit RPAREN; advance ())
    else if c = ',' then (emit COMMA; advance ())
    else if c = '.' then (emit DOT; advance ())
    else if c = '=' then (emit EQ; advance ())
    else if c = ':' then begin
      advance ();
      if !i < n && src.[!i] = '-' then (emit TURNSTILE; advance ()) else emit COLON
    end
    else if c = '!' then begin
      advance ();
      if !i < n && src.[!i] = '=' then (emit NEQ; advance ()) else emit BANG
    end
    else if c = '_' then begin
      (* A lone underscore is a wildcard; [_] may not start an
         identifier, mirroring the paper's don't-care notation. *)
      advance ();
      if !i < n && is_ident_char src.[!i] then fail ~line:!line ~col:!col "identifiers may not start with '_'"
      else emit UNDERSCORE
    end
    else if c = '"' then begin
      let start_line = !line and start_col = !col in
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !i >= n then fail ~line:start_line ~col:start_col "unterminated string"
        else begin
          let c = src.[!i] in
          if c = '"' then begin
            advance ();
            closed := true
          end
          else if c = '\n' then fail ~line:start_line ~col:start_col "newline in string"
          else begin
            Buffer.add_char buf c;
            advance ()
          end
        end
      done;
      emit (STRING (Buffer.contents buf))
    end
    else if is_digit c then begin
      let buf = Buffer.create 8 in
      while !i < n && is_digit src.[!i] do
        Buffer.add_char buf src.[!i];
        advance ()
      done;
      emit (INT (int_of_string (Buffer.contents buf)))
    end
    else if is_ident_start c then begin
      let buf = Buffer.create 16 in
      while !i < n && is_ident_char src.[!i] do
        Buffer.add_char buf src.[!i];
        advance ()
      done;
      emit (IDENT (Buffer.contents buf))
    end
    else fail ~line:!line ~col:!col (Printf.sprintf "unexpected character %C" c)
  done;
  emit EOF;
  List.rev !out

let pp_token fmt = function
  | IDENT s -> Format.fprintf fmt "identifier %s" s
  | STRING s -> Format.fprintf fmt "string %S" s
  | INT i -> Format.fprintf fmt "integer %d" i
  | LPAREN -> Format.pp_print_string fmt "'('"
  | RPAREN -> Format.pp_print_string fmt "')'"
  | COMMA -> Format.pp_print_string fmt "','"
  | COLON -> Format.pp_print_string fmt "':'"
  | TURNSTILE -> Format.pp_print_string fmt "':-'"
  | DOT -> Format.pp_print_string fmt "'.'"
  | BANG -> Format.pp_print_string fmt "'!'"
  | EQ -> Format.pp_print_string fmt "'='"
  | NEQ -> Format.pp_print_string fmt "'!='"
  | UNDERSCORE -> Format.pp_print_string fmt "'_'"
  | EOF -> Format.pp_print_string fmt "end of input"
