(** Pure tuple-set relations: the executable specification of
    {!Relation}, used by the test suite for differential testing.
    No BDDs involved; everything is explicit sets of tuples. *)

type t

val make : string list -> int list list -> t
(** [make attrs tuples]: attribute names and tuples (values in
    attribute order). Duplicate tuples are collapsed. *)

val attrs : t -> string list
val tuples : t -> int list list
(** Sorted, deduplicated. *)

val mem : t -> int list -> bool
val cardinal : t -> int
val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t
val equal : t -> t -> bool
val select : t -> string -> int -> t
val project : t -> string list -> t
(** Keep the named attributes, in the given order. *)

val rename : t -> (string * string) list -> t
val join : t -> t -> t
(** Natural join on shared attribute names; result attributes are the
    left relation's followed by the right-only ones, matching
    {!Relation.join}. *)
