lib/bddrel/domain.mli: Format
