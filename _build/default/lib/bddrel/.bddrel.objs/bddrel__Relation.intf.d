lib/bddrel/relation.mli: Bdd Bignat Space
