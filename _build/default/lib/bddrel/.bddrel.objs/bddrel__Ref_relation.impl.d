lib/bddrel/ref_relation.ml: Hashtbl List Printf Set
