lib/bddrel/space.mli: Bdd Domain
