lib/bddrel/relation.ml: Array Bdd Domain Hashtbl List Option Printf Space
