lib/bddrel/ref_relation.mli:
