lib/bddrel/domain.ml: Array Format Hashtbl
