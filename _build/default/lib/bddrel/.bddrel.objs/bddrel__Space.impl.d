lib/bddrel/space.ml: Array Bdd Domain Hashtbl List Printf
