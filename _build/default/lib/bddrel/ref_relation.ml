module Tuples = Set.Make (struct
  type t = int list

  let compare = compare
end)

type t = { names : string list; set : Tuples.t }

let make names tuples =
  List.iter (fun tu -> if List.length tu <> List.length names then invalid_arg "Ref_relation.make: arity") tuples;
  { names; set = Tuples.of_list tuples }

let attrs r = r.names
let tuples r = Tuples.elements r.set
let mem r tu = Tuples.mem tu r.set
let cardinal r = Tuples.cardinal r.set

let check_same a b = if a.names <> b.names then invalid_arg "Ref_relation: schema mismatch"

let union a b =
  check_same a b;
  { a with set = Tuples.union a.set b.set }

let diff a b =
  check_same a b;
  { a with set = Tuples.diff a.set b.set }

let inter a b =
  check_same a b;
  { a with set = Tuples.inter a.set b.set }

let equal a b =
  check_same a b;
  Tuples.equal a.set b.set

let index_of r n =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Ref_relation: unknown attribute %s" n)
    | x :: _ when x = n -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 r.names

let select r n v =
  let i = index_of r n in
  { r with set = Tuples.filter (fun tu -> List.nth tu i = v) r.set }

let project r keep =
  let idxs = List.map (index_of r) keep in
  let set = Tuples.fold (fun tu acc -> Tuples.add (List.map (fun i -> List.nth tu i) idxs) acc) r.set Tuples.empty in
  { names = keep; set }

let rename r moves =
  let names =
    List.map
      (fun n ->
        match List.assoc_opt n moves with
        | Some n' -> n'
        | None -> n)
      r.names
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then invalid_arg "Ref_relation.rename: duplicate result attribute";
      Hashtbl.add seen n ())
    names;
  { names; set = r.set }

let join a b =
  let shared = List.filter (fun n -> List.mem n a.names) b.names in
  let b_only = List.filter (fun n -> not (List.mem n a.names)) b.names in
  let names = a.names @ b_only in
  let a_idx n = index_of a n and b_idx n = index_of b n in
  let set =
    Tuples.fold
      (fun ta acc ->
        Tuples.fold
          (fun tb acc ->
            let matches = List.for_all (fun n -> List.nth ta (a_idx n) = List.nth tb (b_idx n)) shared in
            if matches then Tuples.add (ta @ List.map (fun n -> List.nth tb (b_idx n)) b_only) acc else acc)
          b.set acc)
      a.set Tuples.empty
  in
  { names; set }
