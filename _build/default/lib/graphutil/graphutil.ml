type t = { n : int; succ : int list array }

let make n edges =
  if n < 0 then invalid_arg "Graphutil.make";
  let succ = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Graphutil.make: edge out of range";
      succ.(a) <- b :: succ.(a))
    edges;
  { n; succ }

(* Iterative Tarjan: an explicit stack of (node, remaining successors)
   frames so deep graphs cannot overflow the OCaml stack. *)
let scc g =
  let index = Array.make g.n (-1) in
  let lowlink = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let comp = Array.make g.n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let members = ref [] in
  let visit root =
    let frames = ref [ (root, ref g.succ.(root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (v, rest) :: outer -> (
        match !rest with
        | w :: more ->
          rest := more;
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack := w :: !stack;
            on_stack.(w) <- true;
            frames := (w, ref g.succ.(w)) :: !frames
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        | [] ->
          if lowlink.(v) = index.(v) then begin
            (* v is the root of a component: pop down to v. *)
            let c = !next_comp in
            incr next_comp;
            let rec pop acc =
              match !stack with
              | [] -> acc
              | w :: rest ->
                stack := rest;
                on_stack.(w) <- false;
                comp.(w) <- c;
                if w = v then w :: acc else pop (w :: acc)
            in
            members := pop [] :: !members
          end;
          frames := outer;
          (match outer with
          | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(v)
          | [] -> ()))
    done
  in
  for v = 0 to g.n - 1 do
    if index.(v) = -1 then visit v
  done;
  let member_arr = Array.make !next_comp [] in
  List.iteri (fun i ms -> member_arr.(i) <- ms) (List.rev !members);
  (comp, member_arr)

let condense g comp ncomps =
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  Array.iteri
    (fun v succs ->
      List.iter
        (fun w ->
          let a = comp.(v) and b = comp.(w) in
          if a <> b && not (Hashtbl.mem seen (a, b)) then begin
            Hashtbl.add seen (a, b) ();
            edges := (a, b) :: !edges
          end)
        succs)
    g.succ;
  make ncomps !edges

let topo_order g =
  let indegree = Array.make g.n 0 in
  Array.iter (fun succs -> List.iter (fun w -> indegree.(w) <- indegree.(w) + 1) succs) g.succ;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indegree;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr count;
    List.iter
      (fun w ->
        indegree.(w) <- indegree.(w) - 1;
        if indegree.(w) = 0 then Queue.add w queue)
      g.succ.(v)
  done;
  if !count <> g.n then invalid_arg "Graphutil.topo_order: graph has a cycle";
  List.rev !order

let reachable g seeds =
  let seen = Array.make g.n false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go g.succ.(v)
    end
  in
  List.iter go seeds;
  seen
