(** Directed-graph algorithms shared by the Datalog stratifier
    (predicate dependency SCCs) and the context-numbering pass
    (call-graph SCCs, Algorithm 4 steps 2-4).

    Graphs are on integer nodes [0 .. n-1] with adjacency lists. *)

type t = { n : int; succ : int list array }

val make : int -> (int * int) list -> t
(** [make n edges] builds a graph; duplicate edges are kept (the call
    graph is a multigraph), self-loops allowed. *)

val scc : t -> int array * int list array
(** Tarjan's strongly connected components.
    Returns [(comp, members)]: [comp.(v)] is the component index of
    node [v], and [members.(c)] lists the nodes of component [c].
    Component indices are in {e reverse topological order} of the
    condensation: if there is an edge from component [a] to component
    [b] (with [a <> b]) then [comp] satisfies [a > b]. *)

val condense : t -> int array -> int -> t
(** [condense g comp ncomps] is the condensation graph on component
    indices, with duplicate edges and self-loops removed. *)

val topo_order : t -> int list
(** Topological order of an acyclic graph (sources first).  Raises
    [Invalid_argument] if the graph has a cycle. *)

val reachable : t -> int list -> bool array
(** Nodes reachable from the given seeds (seeds included). *)
