(** Deterministic pseudo-random numbers (splitmix64).

    The synthetic benchmarks must be bit-for-bit reproducible across
    runs and platforms, so we use our own tiny generator rather than
    [Random]. *)

type t

val create : int -> t
val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound > 0]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val pick_array : t -> 'a array -> 'a
