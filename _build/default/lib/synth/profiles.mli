(** The 21 Sourceforge benchmarks of Figure 3, as generator profiles.

    Each profile records the paper's reported statistics (classes,
    methods, bytecodes, variables, allocation sites, reduced-call-path
    count) and derives {!Generator.params} reproducing the program's
    {e shape} at a chosen scale: class/method counts scale linearly,
    call fan-out is tuned so that profiles with astronomically many
    contexts in the paper (pmd's 5e23, megamek's 4e14) also sit at the
    top of the context-count ordering here. *)

type t = {
  name : string;
  description : string;
  paper_classes : int;
  paper_methods : int;
  paper_bytecodes : int;
  paper_vars : int;
  paper_allocs : int;
  paper_paths : string;  (** e.g. ["5e23"] *)
  single_threaded : bool;
}

val all : t list
(** In the paper's (size) order. *)

val find : string -> t option

val params : ?scale:float -> t -> Generator.params
(** Generator parameters at [scale] (default 0.04: the largest
    benchmark then has ~90 user classes, which the full
    context-sensitive pipeline analyzes in seconds). *)
