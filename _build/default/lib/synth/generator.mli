(** Deterministic synthetic Java-like programs.

    The paper evaluates on 21 Sourceforge applications we cannot ship;
    this generator produces programs with the same {e structural}
    statistics (Figure 3: classes, methods, statement counts,
    allocation density) and the same analysis-relevant phenomena:

    - deep single-inheritance hierarchies rooted at a library "Base"
      class that declares the shared virtual method names, so virtual
      sites have many CHA targets for Algorithm 3 to prune;
    - utility methods with heavy caller fan-in whose arguments and
      results flow through [Object]-typed signatures — the situation
      where context sensitivity pays (and where reduced call paths
      multiply into the paper's 10^14-and-beyond counts);
    - a recursion fraction creating call-graph SCCs that Algorithm 4
      collapses;
    - optional thread classes ([new T(); t.start()]) and [sync]
      operations for the escape analysis;
    - optional "JCE flavor": a [PBEKeySpec]-like class and
      [String]-derived flows for the §5.2 security query. *)

type params = {
  seed : int;
  n_classes : int;  (** user classes, excluding built-ins *)
  hierarchy_depth : int;
  fields_per_class : int;
  methods_per_class : int;
  stmts_per_method : int;
  calls_per_method : int;
  virtual_fraction : float;  (** virtual vs static calls *)
  recursion_fraction : float;  (** backward (cycle-forming) call targets *)
  n_thread_classes : int;
  sync_fraction : float;  (** probability of a sync per method *)
  n_extra_entries : int;  (** class-initializer-style extra roots *)
  n_interfaces : int;
  jce_flavor : bool;
}

val default_params : params

val generate : params -> Jir.Ir.t
(** Deterministic in [params] (including [seed]). *)
