lib/synth/generator.mli: Jir
