lib/synth/rng.ml: Array Int64 List
