lib/synth/profiles.ml: Generator Hashtbl List String
