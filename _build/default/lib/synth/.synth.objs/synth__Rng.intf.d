lib/synth/rng.mli:
