lib/synth/profiles.mli: Generator
