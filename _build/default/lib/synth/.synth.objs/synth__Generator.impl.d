lib/synth/generator.ml: Array Hashtbl Jir List Option Printf Rng
