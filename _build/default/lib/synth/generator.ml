module Ir = Jir.Ir
module Hier = Jir.Hier

type params = {
  seed : int;
  n_classes : int;
  hierarchy_depth : int;
  fields_per_class : int;
  methods_per_class : int;
  stmts_per_method : int;
  calls_per_method : int;
  virtual_fraction : float;
  recursion_fraction : float;
  n_thread_classes : int;
  sync_fraction : float;
  n_extra_entries : int;
  n_interfaces : int;
  jce_flavor : bool;
}

let default_params =
  {
    seed = 42;
    n_classes = 24;
    hierarchy_depth = 4;
    fields_per_class = 2;
    methods_per_class = 3;
    stmts_per_method = 8;
    calls_per_method = 2;
    virtual_fraction = 0.6;
    recursion_fraction = 0.1;
    n_thread_classes = 0;
    sync_fraction = 0.2;
    n_extra_entries = 1;
    n_interfaces = 2;
    jce_flavor = false;
  }

(* Per-method state for well-typed statement generation. *)
type pool = { mutable vars : (Ir.var_id * Ir.class_id) list; mutable fresh : int }

let generate params =
  let rng = Rng.create params.seed in
  let p = Ir.create () in
  let obj = Ir.object_class p in
  (* Base declares the shared virtual method names so that every
     receiver typed Base can dispatch them. *)
  let base = Ir.add_class p ~name:"Base" ~super:obj in
  let n_virtual_names = max 2 params.methods_per_class in
  let vnames = Array.init n_virtual_names (fun i -> Printf.sprintf "f%d" i) in
  Array.iter
    (fun n ->
      (* Base's default implementations are identities — the classic
         case where cloning pays: callers' arguments flow back out. *)
      let m = Ir.add_method p ~name:n ~owner:base ~static:false ~formals:[ ("p", obj) ] ~ret:(Some obj) in
      match (Ir.meth p m).Ir.m_formals with
      | [ _this; param ] -> Ir.emit_return p m param
      | _ -> ())
    vnames;
  (* Interfaces: a small hierarchy of their own; classes implement
     them below, and some fields/formals are interface-typed so the
     assignability "allowances for interfaces" are exercised. *)
  let interfaces =
    Array.init (max 0 params.n_interfaces) (fun i ->
        let extends =
          if i > 0 && Rng.bool rng 0.3 then [ Option.get (Ir.find_class p (Printf.sprintf "I%d" (Rng.int rng i))) ]
          else []
        in
        Ir.add_interface p ~extends ~name:(Printf.sprintf "I%d" i))
  in
  (* User classes: thread classes first, then a Base-rooted hierarchy
     bounded by hierarchy_depth. *)
  let depth = Hashtbl.create 64 in
  Hashtbl.add depth base 1;
  let classes =
    Array.init params.n_classes (fun i ->
        if i < params.n_thread_classes then begin
          let c = Ir.add_class p ~name:(Printf.sprintf "T%d" i) ~super:(Ir.thread_class p) in
          Hashtbl.add depth c 1;
          c
        end
        else begin
          (* Candidate supers: Base or an earlier non-thread class with
             remaining depth budget. *)
          let candidates = ref [ base ] in
          for j = params.n_thread_classes to i - 1 do
            let cj = Ir.find_class p (Printf.sprintf "C%d" j) in
            match cj with
            | Some cj when Hashtbl.find depth cj < params.hierarchy_depth -> candidates := cj :: !candidates
            | Some _ | None -> ()
          done;
          let super = Rng.pick rng !candidates in
          let impls =
            if Array.length interfaces > 0 && Rng.bool rng 0.4 then [ Rng.pick_array rng interfaces ] else []
          in
          let c = Ir.add_class p ~impls ~name:(Printf.sprintf "C%d" i) ~super in
          Hashtbl.add depth c (Hashtbl.find depth super + 1);
          c
        end)
  in
  let non_thread_classes = Array.sub classes params.n_thread_classes (params.n_classes - params.n_thread_classes) in
  let user_or_base = if Array.length non_thread_classes = 0 then [| base |] else non_thread_classes in
  (* Fields. *)
  Array.iteri
    (fun i c ->
      for k = 0 to params.fields_per_class - 1 do
        let ty =
          if Array.length interfaces > 0 && Rng.bool rng 0.2 then Rng.pick_array rng interfaces
          else Rng.pick_array rng user_or_base
        in
        ignore (Ir.add_field p ~name:(Printf.sprintf "g%d" k) ~owner:c ~ty ~static:false)
      done;
      if i mod 8 = 0 then ignore (Ir.add_field p ~name:"shared" ~owner:c ~ty:obj ~static:true))
    classes;
  (* Method signatures. *)
  let static_methods = ref [] in
  Array.iteri
    (fun _ c ->
      if Hier.is_thread p c then ignore (Ir.add_method p ~name:"run" ~owner:c ~static:false ~formals:[] ~ret:None)
      else
        for k = 0 to params.methods_per_class - 1 do
          if Rng.bool rng 0.7 then begin
            let n = Rng.pick_array rng vnames in
            if Ir.find_method p c n = None then
              ignore (Ir.add_method p ~name:n ~owner:c ~static:false ~formals:[ ("p", obj) ] ~ret:(Some obj))
          end
          else begin
            let m =
              Ir.add_method p ~name:(Printf.sprintf "s%d" k) ~owner:c ~static:true ~formals:[ ("p", obj) ]
                ~ret:(Some obj)
            in
            static_methods := m :: !static_methods
          end
        done)
    classes;
  let static_methods = Array.of_list (List.rev !static_methods) in
  (* Concrete non-thread classes assignable to the type, for
     allocations (interface-typed slots get an implementing class). *)
  let alloc_candidates ty =
    let out = ref [] in
    Array.iter (fun c -> if Hier.assignable p ty c then out := c :: !out) user_or_base;
    if Hier.assignable p ty base then out := base :: !out;
    match !out with
    | [] -> if (Ir.cls p ty).Ir.cls_interface then [ base ] else [ ty ]
    | cands -> cands
  in
  (* Statement generation. *)
  let fresh_local pool m ty =
    let v = Ir.add_local p m ~name:(Printf.sprintf "t%d" pool.fresh) ~ty in
    pool.fresh <- pool.fresh + 1;
    pool.vars <- (v, ty) :: pool.vars;
    v
  in
  let emit_alloc pool m ty =
    let cls = Rng.pick rng (alloc_candidates ty) in
    let v = fresh_local pool m cls in
    ignore (Ir.emit_new p m ~dst:v ~cls ~args:[]);
    v
  in
  let obtain pool m ty =
    let fits = List.filter (fun (_, t) -> Hier.assignable p ty t) pool.vars in
    match fits with
    | [] -> emit_alloc pool m ty
    | _ -> fst (Rng.pick rng fits)
  in
  let instance_fields c =
    (* Fields visible on class c, non-static, with Java-style
       shadowing: the most-derived declaration of a name wins. *)
    let seen = Hashtbl.create 8 in
    let rec go c acc =
      let own =
        List.filter
          (fun f ->
            let fr = Ir.field p f in
            if fr.Ir.fld_static || Hashtbl.mem seen fr.Ir.fld_name then false
            else begin
              Hashtbl.add seen fr.Ir.fld_name ();
              true
            end)
          (Ir.cls p c).Ir.cls_fields
      in
      match (Ir.cls p c).Ir.cls_super with
      | Some s -> go s (acc @ own)
      | None -> acc @ own
    in
    go c []
  in
  let static_fields = ref [] in
  Ir.iter_fields p (fun f -> if f.Ir.fld_static then static_fields := f.Ir.fld_id :: !static_fields);
  let static_fields = Array.of_list !static_fields in
  let gen_call pool m =
    if Rng.bool rng params.virtual_fraction || Array.length static_methods = 0 then begin
      let name = Rng.pick_array rng vnames in
      let recv = obtain pool m base in
      let arg = obtain pool m obj in
      let ret = fresh_local pool m obj in
      ignore (Ir.emit_invoke_virtual p ~ret m ~base:recv ~name ~args:[ arg ])
    end
    else begin
      let target =
        if Rng.bool rng params.recursion_fraction then Rng.pick_array rng static_methods
        else begin
          (* Forward bias: prefer targets declared after this method. *)
          let later = Array.to_list static_methods |> List.filter (fun t -> t > m) in
          match later with
          | [] -> Rng.pick_array rng static_methods
          | _ -> Rng.pick rng later
        end
      in
      let arg = obtain pool m obj in
      let ret = fresh_local pool m obj in
      ignore (Ir.emit_invoke_static p ~ret m ~target ~args:[ arg ])
    end
  in
  let gen_body m =
    let mm = Ir.meth p m in
    let pool = { vars = List.map (fun v -> (v, (Ir.var p v).Ir.v_type)) mm.Ir.m_formals; fresh = 0 } in
    ignore (emit_alloc pool m base);
    for _ = 1 to params.calls_per_method do
      gen_call pool m
    done;
    let budget = max 0 (params.stmts_per_method - 1 - params.calls_per_method) in
    for _ = 1 to budget do
      let kind = Rng.int rng 100 in
      if kind < 25 then ignore (emit_alloc pool m (Rng.pick_array rng user_or_base))
      else if kind < 50 then begin
        (* Store through this (or any var) into an instance field. *)
        let recv, recv_ty =
          if mm.Ir.m_static then begin
            let v = obtain pool m base in
            (v, (Ir.var p v).Ir.v_type)
          end
          else (List.hd mm.Ir.m_formals, mm.Ir.m_owner)
        in
        match instance_fields recv_ty with
        | [] -> ()
        | flds ->
          let f = Rng.pick rng flds in
          let src = obtain pool m (Ir.field p f).Ir.fld_type in
          Ir.emit_store p m ~base:recv ~fld:f ~src
      end
      else if kind < 75 then begin
        let recv, recv_ty =
          if mm.Ir.m_static then begin
            let v = obtain pool m base in
            (v, (Ir.var p v).Ir.v_type)
          end
          else (List.hd mm.Ir.m_formals, mm.Ir.m_owner)
        in
        match instance_fields recv_ty with
        | [] -> ()
        | flds ->
          let f = Rng.pick rng flds in
          let dst = fresh_local pool m (Ir.field p f).Ir.fld_type in
          Ir.emit_load p m ~dst ~base:recv ~fld:f
      end
      else if kind < 83 && Array.length static_fields > 0 then begin
        let f = Rng.pick_array rng static_fields in
        if Rng.bool rng 0.5 then Ir.emit_store_static p m ~fld:f ~src:(obtain pool m (Ir.field p f).Ir.fld_type)
        else begin
          let dst = fresh_local pool m (Ir.field p f).Ir.fld_type in
          Ir.emit_load_static p m ~dst ~fld:f
        end
      end
      else if kind < 90 then begin
        (* Array element traffic through the special field. *)
        let base = obtain pool m obj in
        if Rng.bool rng 0.5 then Ir.emit_array_store p m ~base ~src:(obtain pool m obj)
        else begin
          let dst = fresh_local pool m obj in
          Ir.emit_array_load p m ~dst ~base
        end
      end
      else begin
        (* Copy between compatible locals; Local_opt will factor it. *)
        let src = obtain pool m obj in
        let dst = fresh_local pool m obj in
        Ir.emit_assign p m ~dst ~src
      end
    done;
    if Rng.bool rng params.sync_fraction then Ir.emit_sync p m (obtain pool m obj);
    if Rng.bool rng 0.12 then Ir.emit_throw p m (obtain pool m obj);
    if Rng.bool rng 0.08 then begin
      let caught = fresh_local pool m obj in
      Ir.emit_catch p m caught
    end;
    match mm.Ir.m_ret with
    | Some ty -> Ir.emit_return p m (obtain pool m ty)
    | None -> ()
  in
  (* Constructor bodies: initialize the first own field. *)
  Array.iter
    (fun c ->
      match List.filter (fun f -> not (Ir.field p f).Ir.fld_static) (Ir.cls p c).Ir.cls_fields with
      | [] -> ()
      | f :: _ ->
        let m = Ir.init_method p c in
        let mm = Ir.meth p m in
        let pool = { vars = List.map (fun v -> (v, (Ir.var p v).Ir.v_type)) mm.Ir.m_formals; fresh = 0 } in
        let v = emit_alloc pool m (Ir.field p f).Ir.fld_type in
        Ir.emit_store p m ~base:(List.hd mm.Ir.m_formals) ~fld:f ~src:v)
    classes;
  (* Ordinary method bodies. *)
  Ir.iter_methods p (fun m ->
      let owner_is_user = m.Ir.m_owner = base || Array.exists (fun c -> c = m.Ir.m_owner) classes in
      if owner_is_user && m.Ir.m_name <> "<init>" && m.Ir.m_owner <> base then gen_body m.Ir.m_id);
  (* JCE flavor for the §5.2 query: String-derived values flowing into
     PBEKeySpec.init. *)
  let jce =
    if params.jce_flavor then begin
      let string_cls = Ir.string_class p in
      let to_chars = Ir.add_method p ~name:"toCharArray" ~owner:string_cls ~static:false ~formals:[] ~ret:(Some obj) in
      let pool = { vars = []; fresh = 0 } in
      let v = emit_alloc pool to_chars obj in
      Ir.emit_return p to_chars v;
      let spec = Ir.add_class p ~name:"PBEKeySpec" ~super:base in
      let init = Ir.add_method p ~name:"init" ~owner:spec ~static:false ~formals:[ ("key", obj) ] ~ret:None in
      ignore init;
      Some (string_cls, to_chars, spec)
    end
    else None
  in
  (* Main. *)
  let main_cls = Ir.add_class p ~name:"Main" ~super:base in
  let main = Ir.add_method p ~name:"main" ~owner:main_cls ~static:true ~formals:[] ~ret:None in
  let pool = { vars = []; fresh = 0 } in
  let n_allocs = min params.n_classes (4 + (params.n_classes / 4)) in
  for _ = 1 to max 1 n_allocs do
    let v = emit_alloc pool main (Rng.pick_array rng user_or_base) in
    let name = Rng.pick_array rng vnames in
    let arg = obtain pool main obj in
    let ret = fresh_local pool main obj in
    ignore (Ir.emit_invoke_virtual p ~ret main ~base:v ~name ~args:[ arg ])
  done;
  if Array.length static_fields > 0 then
    Ir.emit_store_static p main ~fld:static_fields.(0) ~src:(obtain pool main obj);
  (* Spawn one thread per thread class. *)
  for i = 0 to params.n_thread_classes - 1 do
    let tc = classes.(i) in
    let v = fresh_local pool main tc in
    ignore (Ir.emit_new p main ~dst:v ~cls:tc ~args:[]);
    ignore (Ir.emit_invoke_virtual p main ~base:v ~name:"start" ~args:[])
  done;
  (match jce with
  | Some (string_cls, to_chars, spec) ->
    let s = fresh_local pool main string_cls in
    ignore (Ir.emit_new p main ~dst:s ~cls:string_cls ~args:[]);
    let key = fresh_local pool main obj in
    ignore (Ir.emit_invoke_special p main ~ret:key ~base:s ~target:to_chars ~args:[]);
    let k = fresh_local pool main spec in
    ignore (Ir.emit_new p main ~dst:k ~cls:spec ~args:[]);
    ignore (Ir.emit_invoke_virtual p main ~base:k ~name:"init" ~args:[ key ] ~label:"main:vuln-call");
    (* A safe use for contrast: a non-String key. *)
    let safe = fresh_local pool main obj in
    ignore (Ir.emit_new p main ~dst:safe ~cls:obj ~args:[]);
    let k2 = fresh_local pool main spec in
    ignore (Ir.emit_new p main ~dst:k2 ~cls:spec ~args:[]);
    ignore (Ir.emit_invoke_virtual p main ~base:k2 ~name:"init" ~args:[ safe ] ~label:"main:safe-call")
  | None -> ());
  Ir.add_entry p main;
  (* Extra class-initializer-like entries. *)
  for i = 0 to params.n_extra_entries - 1 do
    let c = Rng.pick_array rng user_or_base in
    let m = Ir.add_method p ~name:(Printf.sprintf "clinit%d" i) ~owner:c ~static:true ~formals:[] ~ret:None in
    let pool = { vars = []; fresh = 0 } in
    ignore (emit_alloc pool m base);
    if Array.length static_fields > 0 then begin
      let f = Rng.pick_array rng static_fields in
      Ir.emit_store_static p m ~fld:f ~src:(obtain pool m (Ir.field p f).Ir.fld_type)
    end;
    Ir.add_entry p m
  done;
  p
