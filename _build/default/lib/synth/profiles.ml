type t = {
  name : string;
  description : string;
  paper_classes : int;
  paper_methods : int;
  paper_bytecodes : int;
  paper_vars : int;
  paper_allocs : int;
  paper_paths : string;
  single_threaded : bool;
}

(* Figure 3 of the paper, verbatim. *)
let all =
  [
    ("freetts", "speech synthesis system", 215, 723, 48_000, 8_000, 3_000, "4e4", true);
    ("nfcchat", "scalable, distributed chat client", 283, 993, 61_000, 11_000, 3_000, "8e6", false);
    ("jetty", "HTTP server and servlet container", 309, 1160, 66_000, 12_000, 3_000, "9e5", false);
    ("openwfe", "java workflow engine", 337, 1215, 74_000, 14_000, 4_000, "3e6", true);
    ("joone", "Java neural net framework", 375, 1531, 92_000, 17_000, 4_000, "1e7", false);
    ("jboss", "J2EE application server", 348, 1554, 104_000, 17_000, 4_000, "3e8", false);
    ("jbossdep", "J2EE deployer", 431, 1924, 119_000, 21_000, 5_000, "4e8", false);
    ("sshdaemon", "SSH daemon", 485, 2053, 115_000, 24_000, 5_000, "4e9", false);
    ("pmd", "Java source code analyzer", 394, 1971, 140_000, 19_000, 4_000, "5e23", true);
    ("azureus", "Java bittorrent client", 498, 2714, 167_000, 24_000, 5_000, "2e9", false);
    ("freenet", "anonymous peer-to-peer file sharing system", 667, 3200, 210_000, 38_000, 8_000, "2e7", false);
    ("sshterm", "SSH terminal", 808, 4059, 241_000, 42_000, 8_000, "5e11", false);
    ("jgraph", "mathematical graph-theory objects and algorithms", 1041, 5753, 337_000, 59_000, 10_000, "1e11", false);
    ("umldot", "makes UML class diagrams from Java code", 1189, 6505, 362_000, 65_000, 11_000, "3e14", false);
    ("jbidwatch", "auction site bidding, sniping, and tracking tool", 1474, 8262, 489_000, 90_000, 16_000, "7e13", false);
    ("columba", "graphical email client with internationalization", 2020, 10574, 572_000, 111_000, 19_000, "1e13", false);
    ("gantt", "plan projects using Gantt charts", 1834, 10487, 597_000, 117_000, 20_000, "1e13", false);
    ("jxplorer", "ldap browser", 1927, 10702, 645_000, 133_000, 22_000, "2e9", false);
    ("jedit", "programmer's text editor", 1788, 10934, 667_000, 124_000, 20_000, "6e7", false);
    ("megamek", "networked BattleTech game", 1265, 8970, 668_000, 123_000, 21_000, "4e14", false);
    ("gruntspud", "graphical CVS client", 2277, 12846, 687_000, 145_000, 24_000, "2e9", false);
  ]
  |> List.map (fun (name, description, c, m, b, v, a, paths, st) ->
         {
           name;
           description;
           paper_classes = c;
           paper_methods = m;
           paper_bytecodes = b;
           paper_vars = v;
           paper_allocs = a;
           paper_paths = paths;
           single_threaded = st;
         })

let find name = List.find_opt (fun p -> p.name = name) all

(* log10 of the paper's path count, from the "KeM" notation. *)
let paths_exponent t =
  match String.index_opt t.paper_paths 'e' with
  | Some i -> int_of_string (String.sub t.paper_paths (i + 1) (String.length t.paper_paths - i - 1))
  | None -> 4

let hash_seed name = Hashtbl.hash name land 0xFFFF

let params ?(scale = 0.04) t =
  let e = paths_exponent t in
  {
    Generator.seed = 1 + hash_seed t.name;
    n_classes = max 6 (int_of_float (float_of_int t.paper_classes *. scale));
    hierarchy_depth = 4;
    fields_per_class = 2;
    (* methods per class from the paper's ratio, floor 2. *)
    methods_per_class = max 2 (t.paper_methods / t.paper_classes);
    (* bytecodes per method / ~8 bytecodes per IR statement. *)
    stmts_per_method = max 5 (t.paper_bytecodes / t.paper_methods / 8);
    (* Call fan-out drives the context count: profiles with huge paper
       path counts get wider fan-out. *)
    calls_per_method = (if e >= 20 then 5 else if e >= 12 then 3 else if e >= 8 then 2 else 1);
    virtual_fraction = (if t.name = "jedit" || t.name = "megamek" then 0.45 else if t.name = "jxplorer" then 0.9 else 0.65);
    recursion_fraction = (if e >= 20 then 0.02 else 0.1);
    n_thread_classes = (if t.single_threaded then 0 else max 2 (t.paper_methods / 2500));
    sync_fraction = 0.25;
    n_extra_entries = 2;
    n_interfaces = max 1 (int_of_float (float_of_int t.paper_classes *. scale) / 8);
    jce_flavor = false;
  }
