(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§6) over the 21 scaled synthetic benchmarks.

     dune exec bench/main.exe -- [--table fig3|fig4|fig5|fig6|scaling|ablations|persist|update|certify|serve|swap|mem|example1|bechamel|all]
                                 (comma-separate to run several, e.g. --table fig4,persist)
                                 [--scale S] [--benchmarks a,b,c]
                                 [--json OUT.json]

   Shapes, not absolute numbers, are the target: who wins, by what
   kind of factor, and how cost grows with the number of contexts.
   Paper values are printed alongside for comparison.

   [--json OUT.json] additionally writes every engine-backed run as a
   machine-readable record — wall-clock seconds, peak live BDD nodes,
   op-cache hit rate, rule applications, fixpoint rounds, GC count —
   so the perf trajectory across PRs can be tracked (the checked-in
   baseline lives in BENCH_results.json). *)

module Ir = Jir.Ir
module Factgen = Jir.Factgen
module Analyses = Pta.Analyses
module Context = Pta.Context
module Callgraph = Pta.Callgraph
module Queries = Pta.Queries
module Engine = Datalog.Engine
module Ast = Datalog.Ast

let scale = ref 0.04
let table = ref "all"
let only = ref []
let json_path = ref None

let () =
  let rec parse = function
    | [] -> ()
    | "--table" :: v :: rest ->
      table := v;
      parse rest
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--benchmarks" :: v :: rest ->
      only := String.split_on_char ',' v;
      parse rest
    | "--json" :: v :: rest ->
      (* Fail fast on an unwritable path rather than after minutes of runs. *)
      (try close_out (open_out v)
       with Sys_error msg ->
         prerr_endline ("cannot write --json output: " ^ msg);
         exit 1);
      json_path := Some v;
      parse rest
    | arg :: _ ->
      prerr_endline ("unknown argument " ^ arg);
      exit 1
  in
  parse (List.tl (Array.to_list Sys.argv))

(* --- Machine-readable results (--json) --- *)

type json_row = {
  r_table : string;
  r_bench : string;
  r_algo : string;
  r_seconds : float;
  r_peak : int;
  r_hit_rate : float;
  r_rule_apps : int;
  r_iters : int;
  r_gcs : int;
  r_arena : Bdd.arena_stats;
  r_rules : Engine.rule_stat list;
}

let json_rows : json_row list ref = ref []

let record ~table:r_table ~bench:r_bench ~algo:r_algo (s : Engine.stats) =
  json_rows :=
    {
      r_table;
      r_bench;
      r_algo;
      r_seconds = s.Engine.solve_seconds;
      r_peak = s.Engine.peak_live_nodes;
      r_hit_rate = Engine.cache_hit_rate s;
      r_rule_apps = s.Engine.rule_applications;
      r_iters = s.Engine.iterations;
      r_gcs = s.Engine.gcs;
      r_arena = s.Engine.arena;
      r_rules = s.Engine.rule_stats;
    }
    :: !json_rows

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Per-rule attribution of one engine run: "file:line" (or the head
   predicate when the rule has no position), seconds, applications, and
   BDD op-cache lookups. *)
let json_rules (rules : Engine.rule_stat list) =
  String.concat ", "
    (List.map
       (fun (r : Engine.rule_stat) ->
         let where =
           match r.Engine.rs_rule.Ast.rule_pos with
           | Some p -> Format.asprintf "%a" Ast.pp_pos p
           | None -> r.Engine.rs_rule.Ast.head.Ast.pred
         in
         Printf.sprintf
           "{ \"rule\": \"%s\", \"head\": \"%s\", \"seconds\": %.6f, \"applications\": %d, \
            \"bdd_cache_lookups\": %d }"
           (json_escape where)
           (json_escape r.Engine.rs_rule.Ast.head.Ast.pred)
           r.Engine.rs_seconds r.Engine.rs_applications r.Engine.rs_cache_lookups)
       rules)

let write_json path =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"whalelam-bench-v7\",\n";
  Printf.fprintf oc
    "  \"schema_note\": \"v7 adds the certify table: <label>-cold-solve vs <label>-certify rows compare a \
     full solve against an independent fixpoint certification of its saved store (one non-semi-naive rule \
     application plus input containment), for the context-insensitive (cha/algo2) and claimed-context \
     context-sensitive (cs/algo5) checker paths.  \
     v6 adds the mem table (uncapped Sweep-vs-Compact GC locality delta and an \
     eviction-rate sweep over node-arena memory caps) and per-row arena counters: every engine-backed row \
     carries an arena object (page_bits, pages_total/resident/pinned, peak_pages_resident, evictions, \
     fault_ins, spill_reads, spill_writes, table_bytes) from the paged node arena; rows measured outside \
     the engine carry a zeroed arena object.  \
     v5 adds the update table: cold-solve vs incremental-update rows time a one-method \
     edit re-solved through the delta-layer store, and load-N-layers/load-compacted rows sweep chain length.  \
     v4 added the serve table: algo workers-N rows record wall seconds for the 1k-query \
     test_serve mix on N worker domains over a frozen space (queries/sec = 1000/seconds; cold solve and \
     store load excluded).  v3 added per-rule attribution: each engine-backed row carries a rules array \
     (rule = file:line of the Datalog rule, head predicate, seconds, applications, bdd_cache_lookups); \
     rows measured outside the engine carry zero solve counters and an empty rules array\",\n";
  Printf.fprintf oc "  \"scale\": %g,\n  \"rows\": [" !scale;
  List.iteri
    (fun i r ->
      let a = r.r_arena in
      Printf.fprintf oc "%s\n    { \"table\": \"%s\", \"benchmark\": \"%s\", \"algo\": \"%s\", \"seconds\": %.6f, \
                         \"peak_live_nodes\": %d, \"cache_hit_rate\": %.4f, \"rule_applications\": %d, \
                         \"iterations\": %d, \"gcs\": %d, \"arena\": { \"page_bits\": %d, \"pages_total\": %d, \
                         \"pages_resident\": %d, \"pages_pinned\": %d, \"peak_pages_resident\": %d, \
                         \"evictions\": %d, \"fault_ins\": %d, \"spill_reads\": %d, \"spill_writes\": %d, \
                         \"table_bytes\": %d }, \"rules\": [%s] }"
        (if i = 0 then "" else ",")
        (json_escape r.r_table) (json_escape r.r_bench) (json_escape r.r_algo) r.r_seconds r.r_peak r.r_hit_rate
        r.r_rule_apps r.r_iters r.r_gcs a.Bdd.page_bits a.Bdd.pages_total a.Bdd.pages_resident a.Bdd.pages_pinned
        a.Bdd.peak_pages_resident a.Bdd.evictions a.Bdd.fault_ins a.Bdd.spill_reads a.Bdd.spill_writes
        a.Bdd.table_bytes (json_rules r.r_rules))
    (List.rev !json_rows);
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %d benchmark records to %s\n" (List.length !json_rows) path

let profiles () =
  List.filter (fun p -> !only = [] || List.mem p.Synth.Profiles.name !only) Synth.Profiles.all

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Cache the per-profile pipeline so the figures don't recompute it. *)
type prepared = {
  profile : Synth.Profiles.t;
  fg : Factgen.t;
  otf : Analyses.result;
  ctx : Context.t;
}

let prepared_cache : (string, prepared) Hashtbl.t = Hashtbl.create 32

let prepare profile =
  match Hashtbl.find_opt prepared_cache profile.Synth.Profiles.name with
  | Some p -> p
  | None ->
    let program = Synth.Generator.generate (Synth.Profiles.params ~scale:!scale profile) in
    let fg = Factgen.extract program in
    let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
    let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
    let p = { profile; fg; otf; ctx } in
    Hashtbl.add prepared_cache profile.Synth.Profiles.name p;
    p

let knodes n = float_of_int n /. 1000.0

(* --- Figure 3: benchmark statistics --- *)

let fig3 () =
  header "Figure 3: benchmark statistics (measured at this scale vs paper)";
  Printf.printf "%-11s %8s %8s %8s %7s %7s %10s | %8s %8s %7s\n" "name" "classes" "methods" "stmts" "vars"
    "allocs" "cs-paths" "p.class" "p.meth" "p.paths";
  List.iter
    (fun profile ->
      let { fg; ctx; _ } = prepare profile in
      let p = fg.Factgen.program in
      Printf.printf "%-11s %8d %8d %8d %7d %7d %10s | %8d %8d %7s\n" profile.Synth.Profiles.name (Ir.num_classes p)
        (Ir.num_methods p) (Ir.stmt_count p) (Ir.num_vars p) (Ir.num_heaps p)
        (Bignat.to_scientific (Context.total_paths ctx))
        profile.Synth.Profiles.paper_classes profile.Synth.Profiles.paper_methods profile.Synth.Profiles.paper_paths)
    (profiles ())

(* --- Figure 4: analysis times and memory --- *)

let time_run f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let fig4 () =
  header "Figure 4: analysis time (s) and peak live BDD nodes (K)";
  Printf.printf "%-11s | %6s %6s | %6s %6s | %6s %5s %6s | %7s %7s | %6s %6s | %6s %6s\n" "name" "ci-nf"
    "mem" "ci-tf" "mem" "otf" "iters" "mem" "cs" "mem" "cstype" "mem" "thread" "mem";
  List.iter
    (fun profile ->
      let { fg; ctx; _ } = prepare profile in
      let a1, _ = time_run (fun () -> Analyses.run_basic ~algo:Analyses.Algo1 fg) in
      let a2, _ = time_run (fun () -> Analyses.run_basic ~algo:Analyses.Algo2 fg) in
      let a3, _ = time_run (fun () -> Analyses.run_basic ~algo:Analyses.Algo3 fg) in
      let cs, _ = time_run (fun () -> Analyses.run_cs fg ctx) in
      let ts, _ = time_run (fun () -> Analyses.run_cs_types fg ctx) in
      let (esc, _), _ = time_run (fun () -> Analyses.run_thread_escape fg) in
      let s (r : Analyses.result) = r.Analyses.stats in
      let sec r = (s r).Engine.solve_seconds in
      let mem r = knodes (s r).Engine.peak_live_nodes in
      let name = profile.Synth.Profiles.name in
      List.iter
        (fun (algo, r) -> record ~table:"fig4" ~bench:name ~algo (s r))
        [ ("ci-nofilter", a1); ("ci-typefilter", a2); ("otf", a3); ("cs", cs); ("cstype", ts); ("thread", esc) ];
      Printf.printf
        "%-11s | %6.2f %6.0f | %6.2f %6.0f | %6.2f %5d %6.0f | %7.2f %7.0f | %6.2f %6.0f | %6.2f %6.0f\n"
        profile.Synth.Profiles.name (sec a1) (mem a1) (sec a2) (mem a2) (sec a3) (s a3).Engine.iterations
        (mem a3) (sec cs) (mem cs) (sec ts) (mem ts) (sec esc) (mem esc))
    (profiles ());
  print_endline "\nPaper shape to check: the type filter speeds the CI analysis up (ci-tf <= ci-nf);";
  print_endline "the CS type analysis is much cheaper than CS pointers; thread-sensitive cost is";
  print_endline "comparable to context-insensitive cost."

(* --- Figure 5: escape analysis --- *)

let fig5 () =
  header "Figure 5: escape analysis (allocation sites and sync operations)";
  Printf.printf "%-11s %9s %9s %9s %9s\n" "name" "captured" "escaped" "-needed" "needed";
  List.iter
    (fun profile ->
      let { fg; _ } = prepare profile in
      let result, _info = Analyses.run_thread_escape fg in
      let c = Analyses.escape_counts fg result in
      Printf.printf "%-11s %9d %9d %9d %9d\n" profile.Synth.Profiles.name c.Analyses.captured_sites
        c.Analyses.escaped_sites c.Analyses.unneeded_syncs c.Analyses.needed_syncs)
    (profiles ());
  print_endline "\nPaper shape to check: single-threaded benchmarks (freetts, openwfe, pmd) have";
  print_endline "exactly one escaped object (the global); multi-threaded ones capture 30-50% of";
  print_endline "sites and 15-30% of syncs are unneeded."

(* --- Figure 6: type refinement --- *)

let fig6 () =
  header "Figure 6: type refinement, % multi-typed / % refinable variables";
  Printf.printf "%-11s | %13s | %13s | %13s | %13s | %13s | %13s\n" "name" "ci-nofilter" "ci-filter"
    "proj-cs-ptr" "proj-cs-type" "full-cs-ptr" "full-cs-type";
  List.iter
    (fun profile ->
      let { fg; ctx; _ } = prepare profile in
      let cell r = Printf.sprintf "%5.1f / %5.1f" r.Analyses.multi_pct r.Analyses.refinable_pct in
      let v1 =
        Analyses.refinement_ratios (Analyses.run_basic ~algo:Analyses.Algo1 fg ~query:Queries.refinement_ci)
          ~per_clone:false
      in
      let v2 =
        Analyses.refinement_ratios (Analyses.run_basic ~algo:Analyses.Algo2 fg ~query:Queries.refinement_ci)
          ~per_clone:false
      in
      let v3 = Analyses.refinement_ratios (Analyses.run_cs fg ctx ~query:Queries.refinement_projected_cs) ~per_clone:false in
      let v4 =
        Analyses.refinement_ratios (Analyses.run_cs_types fg ctx ~query:Queries.refinement_projected_ts) ~per_clone:false
      in
      let v5 = Analyses.refinement_ratios (Analyses.run_cs fg ctx ~query:Queries.refinement_full_cs) ~per_clone:true in
      let v6 = Analyses.refinement_ratios (Analyses.run_cs_types fg ctx ~query:Queries.refinement_full_ts) ~per_clone:true in
      Printf.printf "%-11s | %13s | %13s | %13s | %13s | %13s | %13s\n" profile.Synth.Profiles.name (cell v1)
        (cell v2) (cell v3) (cell v4) (cell v5) (cell v6))
    (profiles ());
  print_endline "\nPaper shape to check: multi% falls monotonically with precision; the fully";
  print_endline "context-sensitive columns have by far the fewest multi-typed variables."

(* --- §6.2 scaling: time vs lg^2(paths) --- *)

let scaling () =
  header "Scaling (§6.2): context-sensitive solve time vs lg^2(#paths)";
  print_endline "Same program size, growing call fan-out: paths explode, time should only";
  print_endline "grow with lg^2(paths) (the BDD exploits cross-context sharing).\n";
  let profile = Option.get (Synth.Profiles.find "gruntspud") in
  let base = Synth.Profiles.params ~scale:(2.0 *. !scale) profile in
  Printf.printf "%-8s %9s %10s %8s %10s %14s\n" "fan-out" "methods" "paths" "lg2^2" "cs-time" "time/lg2^2(ms)";
  List.iter
    (fun fanout ->
      let params = { base with Synth.Generator.calls_per_method = fanout } in
      let program = Synth.Generator.generate params in
      let fg = Factgen.extract program in
      let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
      let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
      let cs = Analyses.run_cs fg ctx in
      record ~table:"scaling" ~bench:"gruntspud" ~algo:(Printf.sprintf "cs-fanout-%d" fanout) cs.Analyses.stats;
      let paths = Context.total_paths ctx in
      let lg = float_of_int (Bignat.num_bits paths) in
      let t = cs.Analyses.stats.Engine.solve_seconds in
      Printf.printf "%-8d %9d %10s %8.0f %9.2fs %14.2f\n" fanout (Ir.num_methods fg.Factgen.program)
        (Bignat.to_scientific paths) (lg *. lg) t
        (1000.0 *. t /. (lg *. lg)))
    [ 1; 2; 3; 4; 5; 6 ];
  print_endline "\nPaper shape to check: paths grow by orders of magnitude down the column while";
  print_endline "time grows only by a small factor — polylogarithmic in the path count";
  print_endline "(the paper fits O(lg^2 n), §6.2), nothing like the linear-in-contexts cost";
  print_endline "an explicit representation would pay."

(* --- §6.4 ablations --- *)

let ablations () =
  header "Ablations (§2.4.1 optimizations and §6.4 comparisons)";
  let profile = Option.get (Synth.Profiles.find "gantt") in
  let { fg; ctx; _ } = prepare profile in
  (* bddbddb vs hand-coded Algorithm 2. *)
  let eng, _ = time_run (fun () -> Analyses.run_basic ~algo:Analyses.Algo2 fg) in
  let hand = Pta.Handcoded.run fg in
  let hst = Pta.Handcoded.stats hand in
  Printf.printf "bddbddb engine (Algorithm 2):    %.3fs, %6.0fK peak nodes\n"
    eng.Analyses.stats.Engine.solve_seconds
    (knodes eng.Analyses.stats.Engine.peak_live_nodes);
  Printf.printf "hand-coded BDD (Algorithm 2):    %.3fs, %6.0fK peak nodes (results agree: %b)\n"
    hst.Pta.Handcoded.seconds
    (knodes hst.Pta.Handcoded.peak_live_nodes)
    (hst.Pta.Handcoded.vp_count = Relation.count (Analyses.relation eng "vP"));
  (* Engine optimization toggles on the context-sensitive analysis. *)
  let run_with options label =
    let r, _ = time_run (fun () -> Analyses.run_cs ~options fg ctx) in
    record ~table:"ablations" ~bench:profile.Synth.Profiles.name ~algo:label r.Analyses.stats;
    Printf.printf "%-32s %.3fs, %6.0fK peak nodes, %4d rule applications\n" label
      r.Analyses.stats.Engine.solve_seconds
      (knodes r.Analyses.stats.Engine.peak_live_nodes)
      r.Analyses.stats.Engine.rule_applications
  in
  let d = Engine.default_options in
  run_with d "CS: all optimizations:";
  run_with { d with Engine.semi_naive = false } "CS: no incrementalization:";
  run_with { d with Engine.hoist = false } "CS: no loop-invariant caching:";
  run_with { d with Engine.greedy_blocks = false } "CS: no attribute naming:";
  run_with { d with Engine.reorder_joins = true } "CS: greedy join reordering:";
  (* Variable (domain) order. *)
  let order_run label order =
    let text = Pta.Programs.algo5 fg ~csize:(Context.csize ctx) in
    let eng = Engine.parse_and_create ~element_names:(Factgen.element_names fg) ?domain_order:order text in
    List.iter
      (fun (name, tuples) -> Engine.set_tuples eng name (List.map Array.of_list tuples))
      (Pta.Programs.input_relations fg);
    let block_of rel n = (Relation.find_attr rel n).Relation.block in
    let iec = Engine.relation eng "IEC" in
    Relation.set_bdd iec
      (Context.iec_bdd ctx (Engine.space eng) ~caller:(block_of iec "caller") ~invoke:(block_of iec "invoke")
         ~callee:(block_of iec "callee") ~target:(block_of iec "tgt"));
    let mc = Engine.relation eng "mC" in
    Relation.set_bdd mc
      (Context.mc_bdd ctx (Engine.space eng) ~context:(block_of mc "context") ~target:(block_of mc "method"));
    let s = Engine.run eng in
    record ~table:"ablations" ~bench:profile.Synth.Profiles.name ~algo:label s;
    Printf.printf "%-32s %.3fs, %6.0fK peak nodes\n" label s.Engine.solve_seconds (knodes s.Engine.peak_live_nodes)
  in
  (* §4.2's on-the-fly CS variant over the conservative numbering. *)
  let otf_cs, _ = time_run (fun () -> Analyses.run_cs_otf fg) in
  let otf_cs, _ctx = otf_cs in
  Printf.printf "%-32s %.3fs, %6.0fK peak nodes (IECd %.0f of IEC %.0f edges)\n" "CS: on-the-fly call graph:"
    otf_cs.Analyses.stats.Engine.solve_seconds
    (knodes otf_cs.Analyses.stats.Engine.peak_live_nodes)
    (Analyses.count otf_cs "IECd")
    (Relation.count (Analyses.relation otf_cs "IEC"));
  order_run "CS: declaration domain order:" None;
  order_run "CS: reversed domain order:" (Some [ "C"; "Z"; "M"; "N"; "I"; "T"; "F"; "H"; "V" ]);
  (* Empirical order search, as bddbddb does automatically. *)
  let candidates = Pta.Order_search.search ~budget:5 fg (Pta.Order_search.Context_sensitive ctx) in
  (match (candidates, List.rev candidates) with
  | best :: _, worst :: _ ->
    Printf.printf "order search (%d candidates):    best  %6.0fK nodes (%s)\n" (List.length candidates)
      (knodes best.Pta.Order_search.peak_nodes)
      (String.concat " " best.Pta.Order_search.order);
    Printf.printf "%-32s worst %6.0fK nodes (%s)\n" "" (knodes worst.Pta.Order_search.peak_nodes)
      (String.concat " " worst.Pta.Order_search.order)
  | _, _ -> ());
  (* Context-abstraction and precision baselines (§1 unification
     contrast, §1.1 k-CFA contrast). *)
  header "Baselines: unification vs inclusion vs 1-CFA vs full cloning";
  let projected_pairs result rel attrs =
    Relation.count (Relation.project (Analyses.relation result rel) attrs)
  in
  let st = Pta.Steensgaard.run fg in
  let sst = Pta.Steensgaard.stats st in
  Printf.printf "%-34s %8.3fs  vP pairs %8d\n" "Steensgaard (unification):" sst.Pta.Steensgaard.seconds
    (List.length (Pta.Steensgaard.vp_tuples st));
  let a2, _ = time_run (fun () -> Analyses.run_basic ~algo:Analyses.Algo2 fg) in
  Printf.printf "%-34s %8.3fs  vP pairs %8.0f\n" "Algorithm 2 (inclusion, CI):"
    a2.Analyses.stats.Engine.solve_seconds
    (Analyses.count a2 "vP");
  let cfa1, _k = Analyses.run_1cfa fg in
  Printf.printf "%-34s %8.3fs  vP pairs %8.0f (projected)\n" "Algorithm 5 under 1-CFA:"
    cfa1.Analyses.stats.Engine.solve_seconds
    (projected_pairs cfa1 "vPC" [ "variable"; "heap" ]);
  let full, _ = time_run (fun () -> Analyses.run_cs fg ctx) in
  Printf.printf "%-34s %8.3fs  vP pairs %8.0f (projected)\n" "Algorithm 5 (full cloning):"
    full.Analyses.stats.Engine.solve_seconds
    (projected_pairs full "vPC" [ "variable"; "heap" ]);
  print_endline "\nPaper shape to check: every optimization helps or is neutral; the variable";
  print_endline "order changes cost noticeably (optimal ordering is NP-complete, §2.4.2);";
  print_endline "precision strictly improves from unification to inclusion to 1-CFA to";
  print_endline "full cloning (fewer points-to pairs = more precise)."

(* --- Persistence: store save/load and warm query latency --- *)

(* Rows measured outside the engine (store save/load, query batches)
   have no solve counters; only the seconds column is meaningful. *)
let timed_stats seconds =
  {
    Engine.rule_applications = 0;
    iterations = 0;
    strata = 0;
    peak_live_nodes = 0;
    solve_seconds = seconds;
    gcs = 0;
    op_cache = [];
    rule_stats = [];
    arena =
      {
        Bdd.page_bits = 0;
        pages_total = 0;
        pages_resident = 0;
        pages_pinned = 0;
        peak_pages_resident = 0;
        evictions = 0;
        fault_ins = 0;
        spill_reads = 0;
        spill_writes = 0;
        table_bytes = 0;
        resident_bytes = 0;
      };
  }

(* 100 mixed queries (50 points-to, 25 alias, 25 reverse points-to)
   over a (variable, heap) relation — the serve daemon's workload. *)
let query_batch pt =
  let dom_of name = (Relation.find_attr pt name).Relation.block.Space.dom in
  let nv = Domain.size (dom_of "variable") and nh = Domain.size (dom_of "heap") in
  for i = 0 to 49 do
    ignore (Queries.points_to pt ~var:(i * 13 mod nv))
  done;
  for i = 0 to 24 do
    ignore (Queries.alias_heaps pt ~v1:(i * 13 mod nv) ~v2:(((i * 29) + 1) mod nv))
  done;
  for i = 0 to 24 do
    ignore (Queries.pointed_by pt ~heap:(i * 7 mod nh))
  done

let persist () =
  header "Persistence: cold solve vs warm store (gantt, gruntspud)";
  (* Earlier tables (fig4 etc.) leave a large major heap; without a
     compact their deferred GC work gets charged to the load/query
     timings below, drowning the store's own cost. *)
  Gc.compact ();
  Printf.printf "%-11s %9s %9s %9s %10s %10s %9s\n" "name" "cs-solve" "save" "load" "cold-100q" "warm-100q"
    "speedup";
  List.iter
    (fun name ->
      match Synth.Profiles.find name with
      | None -> ()
      | Some profile ->
        let { fg; ctx; _ } = prepare profile in
        let dir = Filename.concat (Filename.get_temp_dir_name ()) ("whalelam-bench-store-" ^ name) in
        let cs, _ = time_run (fun () -> Analyses.run_cs fg ctx) in
        record ~table:"persist" ~bench:name ~algo:"cold-solve" cs.Analyses.stats;
        let eng = cs.Analyses.engine in
        let with_pt vpc f =
          let pt = Relation.project vpc [ "variable"; "heap" ] in
          Fun.protect ~finally:(fun () -> Relation.dispose pt) (fun () -> f pt)
        in
        let t_cold_q =
          with_pt (Analyses.relation cs "vPC") (fun pt -> snd (time_run (fun () -> query_batch pt)))
        in
        record ~table:"persist" ~bench:name ~algo:"cold-query-batch" (timed_stats t_cold_q);
        let _, t_save =
          time_run (fun () ->
              Bddrel.Store.save ~dir ~key:"bench" ~config:[ ("benchmark", name) ] ~space:(Engine.space eng)
                ~relations:(Engine.exported_relations eng))
        in
        record ~table:"persist" ~bench:name ~algo:"store-save" (timed_stats t_save);
        let st, t_load = time_run (fun () -> Bddrel.Store.load ~dir) in
        record ~table:"persist" ~bench:name ~algo:"store-load" (timed_stats t_load);
        let t_warm =
          with_pt
            (Option.get (Bddrel.Store.find st "vPC"))
            (fun pt -> snd (time_run (fun () -> query_batch pt)))
        in
        record ~table:"persist" ~bench:name ~algo:"warm-query-batch" (timed_stats t_warm);
        let t_solve = cs.Analyses.stats.Engine.solve_seconds in
        Printf.printf "%-11s %8.3fs %8.3fs %8.3fs %9.4fs %9.4fs %8.1fx\n" name t_solve t_save t_load t_cold_q
          t_warm
          ((t_solve +. t_cold_q) /. (t_load +. t_warm)))
    [ "gantt"; "gruntspud" ];
  print_endline "\nShape to check: answering a 100-query batch from a loaded store (load + warm)";
  print_endline "beats re-solving (cs-solve + cold batch) by well over an order of magnitude;";
  print_endline "save/load cost is a small fraction of one solve."

(* --- Incremental update: single-edit re-solve vs cold --- *)

let update_bench () =
  header "Incremental update: single-edit re-solve vs cold (algo3)";
  Gc.compact ();
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "whalelam-bench-update" in
  Printf.printf "%-11s %10s %10s %9s %9s\n" "name" "cold" "update" "verdict" "speedup";
  List.iter
    (fun name ->
      match Synth.Profiles.find name with
      | None -> ()
      | Some profile ->
        let gen () = Synth.Generator.generate (Synth.Profiles.params ~scale:!scale profile) in
        let fg = Factgen.extract (gen ()) in
        let cold, t_cold = time_run (fun () -> Analyses.run_basic ~algo:Analyses.Algo3 fg) in
        record ~table:"update" ~bench:name ~algo:"cold-solve" cold.Analyses.stats;
        ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
        Bddrel.Store.save ~dir ~key:"bench-update" ~config:[]
          ~space:(Engine.space cold.Analyses.engine)
          ~relations:(Engine.declared_relations cold.Analyses.engine);
        (* One appended method — the incremental-friendly edit shape
           [ptacli update] is built for. *)
        let edited = gen () in
        ignore (Synth.Edits.apply edited { Synth.Edits.kind = Synth.Edits.Add_method; seed = 0 });
        let fg2 = Factgen.extract edited in
        let o, t_upd =
          time_run (fun () ->
              let st = Bddrel.Store.load ~dir in
              match Pta.Incr.update ~algo:Analyses.Algo3 ~store:st fg2 with
              | Ok o -> o
              | Error e -> failwith (Solver_error.to_string e))
        in
        (match o.Pta.Incr.stats with
        | Some s -> record ~table:"update" ~bench:name ~algo:"incremental-update" s
        | None -> record ~table:"update" ~bench:name ~algo:"incremental-update" (timed_stats t_upd));
        Printf.printf "%-11s %9.3fs %9.3fs %9s %8.1fx\n" name t_cold t_upd
          (match o.Pta.Incr.verdict with
          | Pta.Incr.Incremental -> "incr"
          | Pta.Incr.Unchanged -> "unchanged"
          | Pta.Incr.Cold _ -> "cold")
          (t_cold /. t_upd))
    [ "gantt"; "gruntspud" ];
  (* Chain-length sweep: load cost as delta layers stack up, then
     after compaction — the ops question "how often should a watch
     loop compact?". *)
  (match Synth.Profiles.find "gantt" with
  | None -> ()
  | Some profile ->
    Printf.printf "\n%-22s %10s %9s\n" "chain state" "load" "layers";
    let gen () = Synth.Generator.generate (Synth.Profiles.params ~scale:!scale profile) in
    let base = gen () in
    let fg = Factgen.extract base in
    let cold = Analyses.run_basic ~algo:Analyses.Algo3 fg in
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
    Bddrel.Store.save ~dir ~key:"chain-0" ~config:[]
      ~space:(Engine.space cold.Analyses.engine)
      ~relations:(Engine.declared_relations cold.Analyses.engine);
    let measure label =
      let _, t = time_run (fun () -> Bddrel.Store.load ~dir) in
      let layers = Option.value (Bddrel.Store.read_layers ~dir) ~default:0 in
      record ~table:"update" ~bench:"gantt" ~algo:label (timed_stats t);
      Printf.printf "%-22s %9.3fs %9d\n" label t layers
    in
    measure "load-base";
    for i = 1 to 8 do
      ignore (Synth.Edits.apply base { Synth.Edits.kind = Synth.Edits.Add_method; seed = i });
      let fgi = Factgen.extract base in
      let st = Bddrel.Store.load ~dir in
      (match Pta.Incr.update ~algo:Analyses.Algo3 ~store:st fgi with
      | Ok o ->
        ignore
          (Bddrel.Store.save_delta ~dir ~key:(Printf.sprintf "chain-%d" i) ~config:[]
             ~space:(Engine.space o.Pta.Incr.engine) ~deltas:o.Pta.Incr.deltas)
      | Error e -> failwith (Solver_error.to_string e));
      if i = 1 || i = 4 || i = 8 then measure (Printf.sprintf "load-%d-layers" i)
    done;
    ignore (Bddrel.Store.compact ~dir);
    measure "load-compacted");
  print_endline "\nShape to check: a one-method edit re-solves several times faster than cold";
  print_endline "with an \"incr\" verdict; chain load cost grows mildly with layer count and";
  print_endline "compaction restores base-load cost."

(* --- Semantic certification: independent check vs cold solve --- *)

(* Certification is one non-semi-naive application of every rule plus
   input containment, so it should cost roughly one fixpoint round of
   the solve it checks — the ops question is whether certify-on-commit
   (ptacli update --certify, the --watch default) is cheap enough to
   leave on.  Measured for both the context-insensitive (algo2) and
   context-sensitive (algo5, claimed-context checker) store shapes. *)
let certify_bench () =
  header "Certification: independent fixpoint check vs cold solve (cha + cs)";
  Gc.compact ();
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "whalelam-bench-certify" in
  Printf.printf "%-11s %-6s %10s %10s %9s\n" "name" "algo" "cold" "certify" "ratio";
  List.iter
    (fun name ->
      match Synth.Profiles.find name with
      | None -> ()
      | Some profile ->
        let { fg; ctx; _ } = prepare profile in
        let run_one label tag solve =
          let r, t_cold = time_run solve in
          record ~table:"certify" ~bench:name ~algo:(label ^ "-cold-solve") r.Analyses.stats;
          ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
          Bddrel.Store.save ~dir
            ~key:("bench-certify-" ^ label)
            ~config:[ ("algo", tag) ]
            ~space:(Engine.space r.Analyses.engine)
            ~relations:(Engine.declared_relations r.Analyses.engine);
          let st = Bddrel.Store.load ~dir in
          let v, t_cert = time_run (fun () -> Pta.Certify.certify_store fg st) in
          if not (Pta.Certify.passed v) then List.iter print_endline (Pta.Certify.verdict_lines v);
          record ~table:"certify" ~bench:name ~algo:(label ^ "-certify") (timed_stats t_cert);
          Printf.printf "%-11s %-6s %9.3fs %9.3fs %8.1f%%\n" name label t_cold t_cert
            (100.0 *. t_cert /. t_cold)
        in
        run_one "cha" "algo2" (fun () -> Analyses.run_basic ~algo:Analyses.Algo2 fg);
        run_one "cs" "algo5" (fun () -> Analyses.run_cs fg ctx))
    [ "gantt"; "gruntspud" ];
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  print_endline "\nShape to check: a certification is one checker-engine build plus one full";
  print_endline "rule-application round, so its cost relative to cold solve shrinks as the";
  print_endline "solve's round count grows (<= 15% at paper scale); at this synthetic scale";
  print_endline "the fixed engine-build cost both sides share dominates and the ratio is";
  print_endline "larger — the marginal check cost over a build is what stays small."

(* --- Warm-query serving: frozen space, worker domains --- *)

(* The test_serve synthetic store: 48 variables over a sparse 128k
   heap domain, two of them with a 60k fan-out so alias/leak queries
   do real BDD work.  Same seeds as the test, so this measures exactly
   the soak workload. *)
let serve_bench () =
  header "Serve: warm queries/sec vs worker domains (frozen space, per-domain ctxs)";
  let nv = 48 and nh = 131072 in
  let rng = Random.State.make [| 0x5EED; 42 |] in
  let tbl = Hashtbl.create 4096 in
  for v = 0 to 1 do
    let start = Hashtbl.length tbl in
    while Hashtbl.length tbl - start < 60000 do
      Hashtbl.replace tbl (v, Random.State.int rng nh) ()
    done
  done;
  for v = 2 to nv - 1 do
    for _ = 1 to 1 + Random.State.int rng 8 do
      Hashtbl.replace tbl (v, Random.State.int rng nh) ()
    done
  done;
  let tuples = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []) in
  let heaps_of = Array.make nv [] in
  List.iter (fun (v, h) -> heaps_of.(v) <- h :: heaps_of.(v)) tuples;
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "whalelam-bench-serve" in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  let sp = Space.create () in
  let vdom = Domain.make ~name:"V" ~size:nv ~element_names:(Array.init nv (Printf.sprintf "v%d")) () in
  let hdom = Domain.make ~name:"H" ~size:nh ~element_names:(Array.init nh (Printf.sprintf "h%d")) () in
  let vb = Space.alloc sp vdom and hb = Space.alloc sp hdom in
  let vp =
    Relation.of_tuples sp ~name:"vP"
      [ { Relation.attr_name = "variable"; block = vb }; { Relation.attr_name = "heap"; block = hb } ]
      (List.map (fun (v, h) -> [| v; h |]) tuples)
  in
  Bddrel.Store.save ~dir ~key:"bench-serve" ~config:[] ~space:sp ~relations:[ vp ];
  let st = Bddrel.Store.load ~dir in
  let srv = Pta.Serve.make st in
  (* The test_serve 1k mixed query soak (same slot layout and seed). *)
  let qrng = Random.State.make [| 0xBADCAFE |] in
  let malformed =
    [| ""; "   "; "# just a comment"; "bogus"; "points-to"; "alias v1"; "points-to nosuchvar"; "leak h999999"; "count nope"; "vuln"; "refine" |]
  in
  let queries =
    Array.init 1000 (fun i0 ->
        let i = i0 + 1 in
        let rv ?(lo = 2) () = lo + Random.State.int qrng (nv - lo) in
        match i mod 10 with
        | 0 | 1 | 2 -> Printf.sprintf "points-to v%d" (rv ())
        | 3 | 4 -> Printf.sprintf "alias v%d v%d" (rv ()) (rv ())
        | 5 ->
          let v = rv () in
          Printf.sprintf "leak h%d" (List.nth heaps_of.(v) (Random.State.int qrng (List.length heaps_of.(v))))
        | 6 -> "count vP"
        | 7 | 8 -> malformed.(Random.State.int qrng (Array.length malformed))
        | _ -> if i mod 2 = 0 then "health" else "stats")
  in
  let roomy = { Pta.Serve.rq_timeout_s = Some 30.0; rq_max_allocs = Some 2_000_000; rq_max_nodes = None } in
  (* One timed run: W domains, each with its own ctx, pulling query
     indices off a shared atomic counter until the mix is drained.
     Cold solve and store load happened above, outside the clock. *)
  let run_workers w =
    let stats = Pta.Serve.make_stats () in
    let idx = Atomic.make 0 in
    let worker () =
      let ctx = Pta.Serve.new_ctx srv in
      let rec go () =
        let i = Atomic.fetch_and_add idx 1 in
        if i < Array.length queries then begin
          ignore (Pta.Serve.serve_line ~limits:roomy ~stats srv ctx queries.(i));
          go ()
        end
      in
      go ()
    in
    let t0 = Unix.gettimeofday () in
    let domains = List.init w (fun _ -> Stdlib.Domain.spawn worker) in
    List.iter Stdlib.Domain.join domains;
    Unix.gettimeofday () -. t0
  in
  (* Warm-up pass outside the clock: fault in name tables and let each
     evaluator path run once. *)
  ignore (run_workers 1);
  let cores = Stdlib.Domain.recommended_domain_count () in
  Printf.printf "host cores (recommended_domain_count): %d\n\n" cores;
  Printf.printf "%-9s %10s %12s %9s\n" "workers" "seconds" "queries/sec" "speedup";
  let base = ref 0.0 in
  List.iter
    (fun w ->
      let dt = run_workers w in
      if w = 1 then base := dt;
      let qps = float_of_int (Array.length queries) /. dt in
      record ~table:"serve" ~bench:"synthetic-48v-128kh" ~algo:(Printf.sprintf "workers-%d" w)
        (timed_stats dt);
      Printf.printf "%-9d %9.3fs %12.0f %8.2fx\n" w dt qps (!base /. dt))
    [ 1; 4; 8 ];
  print_endline "\nShape to check: queries/sec scales with worker domains over one frozen";
  print_endline "space (>=2.5x at 4 workers on a >=4-core host; on fewer cores the domains";
  print_endline "time-slice and the ratio is bounded by the core count).  Cold solve and";
  print_endline "store load are excluded; answers are bit-identical at every width (the";
  print_endline "test_serve parallel soak asserts that)."

(* --- Hot-swap: follower swap latency + serving under snapshot churn ---
   The replicated serving tier's two costs: how long a follower's
   verify + load + freeze + swap takes (the window during which it
   serves the *old* snapshot, never nothing), and what snapshot churn
   does to warm-query throughput (workers rebuild their ctx per swap,
   so some cache warmth is lost but the request path never blocks on a
   load). *)

let swap_bench () =
  header "Hot swap: follower swap latency and throughput under snapshot churn";
  let nv = 48 and nh = 16384 in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "whalelam-bench-swap" in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  (* Content encodes its version ([v2] -> h(32+version)); a ~5k-tuple
     filler relation gives load + freeze something real to chew on. *)
  let save_version version =
    let sp = Space.create () in
    let vdom = Domain.make ~name:"V" ~size:nv ~element_names:(Array.init nv (Printf.sprintf "v%d")) () in
    let hdom = Domain.make ~name:"H" ~size:nh ~element_names:(Array.init nh (Printf.sprintf "h%d")) () in
    let vb = Space.alloc sp vdom and hb = Space.alloc sp hdom in
    let tuples =
      List.concat_map
        (fun v -> if v = 2 then [ [| 2; 32 + version |] ] else [ [| v; v |]; [| v; v + 8 |] ])
        (List.init nv Fun.id)
    in
    let vp =
      Relation.of_tuples sp ~name:"vP"
        [ { Relation.attr_name = "variable"; block = vb }; { Relation.attr_name = "heap"; block = hb } ]
        tuples
    in
    let hb2 = Space.alloc sp hdom in
    let rng = Random.State.make [| 0xF111; version |] in
    let filler =
      Relation.of_tuples sp ~name:"filler"
        [ { Relation.attr_name = "a"; block = hb }; { Relation.attr_name = "b"; block = hb2 } ]
        (List.init 5_000 (fun _ -> [| Random.State.int rng nh; Random.State.int rng nh |]))
    in
    Bddrel.Store.save ~dir ~key:"bench-swap-0123" ~config:[] ~space:sp ~relations:[ vp; filler ]
  in
  save_version 1;
  let source = Pta.Serve.Source.create (Pta.Serve.make (Bddrel.Store.load ~dir)) in
  let stats = Pta.Serve.make_stats () in
  let pool = Pta.Serve.Pool.create ~stats ~workers:4 source in
  let follow = Pta.Serve.Follow.make ~dir source in
  let next_version = ref 2 in
  let one_swap () =
    save_version !next_version;
    incr next_version;
    match Pta.Serve.Follow.poll follow with
    | Pta.Serve.Follow.Swapped { seconds; _ } ->
      Pta.Serve.Pool.poke pool;
      seconds
    | Pta.Serve.Follow.Unchanged | Pta.Serve.Follow.Rejected _ -> failwith "bench swap did not happen"
  in
  (* Swap latency over 10 swaps (save cost excluded: [seconds] is the
     follower's own verify + load + freeze + swap). *)
  let lats = List.init 10 (fun _ -> one_swap ()) in
  let avg = List.fold_left ( +. ) 0.0 lats /. 10.0 in
  let worst = List.fold_left max 0.0 lats in
  record ~table:"swap" ~bench:"synthetic-48v-16kh" ~algo:"swap-latency-avg" (timed_stats avg);
  record ~table:"swap" ~bench:"synthetic-48v-16kh" ~algo:"swap-latency-max" (timed_stats worst);
  Printf.printf "swap latency (verify+load+freeze+swap): avg %.1fms  max %.1fms over 10 swaps\n\n"
    (avg *. 1e3) (worst *. 1e3);
  (* Throughput: the same 8k-query warm batch, steady vs. continuous
     snapshot churn (ctx teardown + cache refill on every worker per
     swap). *)
  let queries =
    let qrng = Random.State.make [| 0x5A5A |] in
    Array.init 16000 (fun i ->
        let rv () = Random.State.int qrng nv in
        match i mod 4 with
        | 0 -> Printf.sprintf "points-to v%d" (rv ())
        | 1 -> Printf.sprintf "alias v%d v%d" (rv ()) (rv ())
        | 2 -> Printf.sprintf "leak h%d" (Random.State.int qrng nv)
        | _ -> "count vP")
  in
  let swaps_done = ref 0 in
  let run_batch ~churn =
    let idx = Atomic.make 0 in
    let done_ = Atomic.make false in
    let client () =
      let rec go () =
        let i = Atomic.fetch_and_add idx 1 in
        if i < Array.length queries then begin
          ignore (Pta.Serve.Pool.run pool queries.(i));
          go ()
        end
      in
      go ()
    in
    (* One churner domain owns the save -> poll -> poke sequence (saves
       must not race each other); clients only ever query. *)
    let churner () =
      swaps_done := 0;
      while not (Atomic.get done_) do
        ignore (one_swap ());
        incr swaps_done;
        Unix.sleepf 0.005
      done
    in
    let t0 = Unix.gettimeofday () in
    let ch = if churn then Some (Stdlib.Domain.spawn churner) else None in
    let domains = List.init 4 (fun _ -> Stdlib.Domain.spawn client) in
    List.iter Stdlib.Domain.join domains;
    Atomic.set done_ true;
    Option.iter Stdlib.Domain.join ch;
    Unix.gettimeofday () -. t0
  in
  ignore (run_batch ~churn:false) (* warm-up *);
  let steady = run_batch ~churn:false in
  let churned = run_batch ~churn:true in
  record ~table:"swap" ~bench:"synthetic-48v-16kh" ~algo:"steady-batch" (timed_stats steady);
  record ~table:"swap" ~bench:"synthetic-48v-16kh" ~algo:"churn-batch" (timed_stats churned);
  Printf.printf "%-16s %10s %12s\n" "mode" "seconds" "queries/sec";
  Printf.printf "%-16s %9.3fs %12.0f\n" "steady" steady (float_of_int (Array.length queries) /. steady);
  Printf.printf "%-16s %9.3fs %12.0f\n" (Printf.sprintf "churn (%d swaps)" !swaps_done) churned
    (float_of_int (Array.length queries) /. churned);
  Pta.Serve.Pool.shutdown pool;
  print_endline "\nShape to check: swap latency is load-bound (milliseconds for this store,";
  print_endline "seconds only for paper-scale ones) and the churn batch pays the swap +";
  print_endline "cache-refill tax without ever blocking a request on a load."

(* --- Node-arena memory behavior: GC locality and paging cost --- *)

(* Two questions about the paged arena, answered on the two largest
   profiles' context-sensitive solve:

   1. Locality: with GC forced to actually run (the default policy
      never collects an uncapped gantt-sized solve), does the Compact
      mode's level-clustered renumbering cost anything against the
      free-list Sweep it replaced?  Interleaved min-of-5 per mode, so
      cache warm-up and machine noise hit both sides alike; the
      acceptance bar is Compact within 5% of Sweep.

   2. Paging: how does solve time degrade as the memory cap squeezes
      below the working set, and how hard does the pager work?  One
      capped run per cap point, smallest cap last. *)
let mem_bench () =
  header "Memory: GC-mode locality delta and eviction rate vs arena cap";
  let d = Engine.default_options in
  let min_of xs = List.fold_left min infinity xs in
  Printf.printf "%-11s | %8s %8s %7s | gc mode locality (min of 7, gc every 64 apps)\n" "name" "sweep"
    "compact" "delta";
  List.iter
    (fun profile ->
      let name = profile.Synth.Profiles.name in
      if name = "gantt" || name = "gruntspud" then begin
        let { fg; ctx; _ } = prepare profile in
        let one gc_mode =
          let r = Analyses.run_cs ~options:{ d with Engine.gc_interval = 64; gc_mode = Some gc_mode } fg ctx in
          r.Analyses.stats
        in
        (* Interleave the modes so drift affects both equally; record
           each mode's best run (min-of-7 is what the delta is on). *)
        let runs = List.init 7 (fun _ -> (one Bdd.Sweep, one Bdd.Compact)) in
        let sweep = min_of (List.map (fun (s, _) -> s.Engine.solve_seconds) runs)
        and compact = min_of (List.map (fun (_, c) -> c.Engine.solve_seconds) runs) in
        let best seconds pick =
          List.find (fun r -> (pick r).Engine.solve_seconds = seconds) runs |> pick
        in
        record ~table:"mem" ~bench:name ~algo:"gc-sweep" (best sweep fst);
        record ~table:"mem" ~bench:name ~algo:"gc-compact" (best compact snd);
        Printf.printf "%-11s | %8.3f %8.3f %+6.1f%% |\n" name sweep compact
          ((compact -. sweep) /. sweep *. 100.0)
      end)
    (profiles ());
  print_endline "\nShape to check: compact (level-clustered) within 5% of sweep — the";
  print_endline "clustering is free at solve time and pays off once the arena pages.";
  (match List.find_opt (fun p -> p.Synth.Profiles.name = "gantt") (profiles ()) with
  | None -> ()
  | Some profile ->
    let { fg; ctx; _ } = prepare profile in
    Printf.printf "\n%-9s | %8s %9s %9s %9s | gantt cs under a shrinking arena cap\n" "cap" "seconds"
      "evictions" "fault-ins" "peak-pages";
    List.iter
      (fun cap_mib ->
        let options =
          match cap_mib with
          | None -> d
          | Some mib -> { d with Engine.mem_cap_bytes = Some (mib * 1024 * 1024) }
        in
        let r = Analyses.run_cs ~options fg ctx in
        let s = r.Analyses.stats in
        let a = s.Engine.arena in
        let label = match cap_mib with None -> "uncapped" | Some mib -> Printf.sprintf "%d MiB" mib in
        record ~table:"mem" ~bench:"gantt"
          ~algo:(match cap_mib with None -> "cap-uncapped" | Some mib -> Printf.sprintf "cap-%dmib" mib)
          s;
        Printf.printf "%-9s | %8.3f %9d %9d %9d |\n" label s.Engine.solve_seconds a.Bdd.evictions
          a.Bdd.fault_ins a.Bdd.peak_pages_resident)
      (* 8 MiB is well under gantt's ~11 MiB live working set: real
         paging (~40k evictions) at still-bounded cost.  Smaller caps
         degrade smoothly too (6 MiB ~6x, 4 MiB ~12x the 8 MiB time)
         but are too slow to re-measure on every harness run. *)
      [ None; Some 24; Some 16; Some 12; Some 8 ];
    print_endline "\nShape to check: caps above the live working set cost nothing (zero";
    print_endline "evictions); below it, eviction rate climbs and time degrades smoothly.")

(* --- The paper's running example --- *)

let example1 () =
  header "Example 1 / Figure 1-2: path numbering";
  let p = Ir.create () in
  let g = Ir.add_class p ~name:"G" ~super:(Ir.object_class p) in
  let mk name = Ir.add_method p ~name ~owner:g ~static:true ~formals:[] ~ret:None in
  let m = Array.init 6 (fun i -> mk (Printf.sprintf "M%d" (i + 1))) in
  let call src dst = ignore (Ir.emit_invoke_static p src ~target:dst ~args:[]) in
  List.iter
    (fun (s, d) -> call m.(s - 1) m.(d - 1))
    [ (1, 2); (1, 3); (2, 3); (3, 2); (2, 4); (3, 4); (3, 5); (4, 6); (5, 6) ];
  Ir.add_entry p m.(0);
  let edges = Callgraph.cha_edges p in
  let ctx = Context.number p ~edges ~roots:[ m.(0) ] in
  Array.iteri (fun i mid -> Printf.printf "  M%d: %d contexts\n" (i + 1) (Context.method_contexts ctx mid)) m;
  Printf.printf "  (paper: M1=1, M2=M3=2 [one SCC], M4=4, M5=2, M6=6)\n"

(* --- Bechamel micro-benchmarks: one Test.make per table --- *)

let bechamel () =
  header "Bechamel micro-benchmarks (one Test.make per table, small workload)";
  let open Bechamel in
  let small = Option.get (Synth.Profiles.find "freetts") in
  let fg = (prepare small).fg in
  let otf () = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let fig3_work () =
    let o = otf () in
    ignore (Context.total_paths (Analyses.make_context fg ~ie:(Analyses.ie_tuples o)))
  in
  let fig4_work () =
    let o = otf () in
    let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples o) in
    ignore (Analyses.run_cs fg ctx)
  in
  let fig5_work () = ignore (Analyses.run_thread_escape fg) in
  let fig6_work () = ignore (Analyses.run_basic ~algo:Analyses.Algo2 fg ~query:Queries.refinement_ci) in
  let tests =
    Test.make_grouped ~name:"tables"
      [
        Test.make ~name:"fig3-stats" (Staged.stage fig3_work);
        Test.make ~name:"fig4-cs-points-to" (Staged.stage fig4_work);
        Test.make ~name:"fig5-escape" (Staged.stage fig5_work);
        Test.make ~name:"fig6-refinement" (Staged.stage fig6_work);
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "  %-28s %10.3f ms/run\n" name (est /. 1e6)
      | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
    results

let () =
  let t0 = Unix.gettimeofday () in
  Printf.printf "whalelam benchmark harness - scale %.3f\n" !scale;
  let wanted = String.split_on_char ',' !table in
  let run name f = if !table = "all" || List.mem name wanted then f () in
  run "example1" example1;
  run "fig3" fig3;
  run "fig4" fig4;
  run "fig5" fig5;
  run "fig6" fig6;
  run "scaling" scaling;
  run "ablations" ablations;
  run "persist" persist;
  run "update" update_bench;
  run "certify" certify_bench;
  run "serve" serve_bench;
  run "swap" swap_bench;
  run "mem" mem_bench;
  run "bechamel" bechamel;
  (match !json_path with
  | Some path -> write_json path
  | None -> ());
  Printf.printf "\ntotal harness time: %.1fs\n" (Unix.gettimeofday () -. t0)
