(* Randomized differential tests for the specialized BDD apply kernels
   (and/or/diff), the order-preserving replace fast path, and the
   GC-surviving op cache.

   A seeded random operation sequence is run over three BDD-backed
   relations while the pure tuple-set Ref_relation mirrors every step;
   explicit [Bdd.gc] calls are interleaved so every result must stay
   correct across node-slot reuse, table growth, and cache sweeps.
   Renames are chosen so both the monotone (order-preserving) replace
   path and the generic mk_ite path are exercised. *)

let seed = 0x5eed
let steps = 160
let gc_every = 12
let initial_tuples = 120

let dom = Domain.make ~name:"D" ~size:64 ()

type st = {
  sp : Space.t;
  man : Bdd.man;
  b : Space.block array; (* three interleaved instances of D *)
  rels : Relation.t array; (* all over attrs x@b.(0), y@b.(1) *)
  refs : Ref_relation.t array;
}

let attrs st = [ { Relation.attr_name = "x"; block = st.b.(0) }; { attr_name = "y"; block = st.b.(1) } ]

let sorted_tuples r = List.sort compare (List.map Array.to_list (Relation.tuples r))

let check_same ctx r rf =
  Alcotest.(check (list (list int))) ctx (Ref_relation.tuples rf) (sorted_tuples r);
  Alcotest.(check int) (ctx ^ ": cardinal") (Ref_relation.cardinal rf) (int_of_float (Relation.count r))

let random_tuples rs k = List.init k (fun _ -> [ Random.State.int rs 64; Random.State.int rs 64 ])

let setup rs =
  let sp = Space.create ~node_hint:64 () in
  let b = Space.alloc_interleaved sp dom 3 in
  let st = { sp; man = Space.man sp; b; rels = [||]; refs = [||] } in
  let make i =
    let tuples = random_tuples rs initial_tuples in
    let r = Relation.of_tuples sp ~name:(Printf.sprintf "r%d" i) (attrs st) (List.map Array.of_list tuples) in
    let rf = Ref_relation.make [ "x"; "y" ] tuples in
    (r, rf)
  in
  let pairs = Array.init 3 make in
  { st with rels = Array.map fst pairs; refs = Array.map snd pairs }

(* Binary set operations go straight through the specialized kernels on
   the raw relation BDDs (set_bdd keeps the shared attribute layout). *)
let set_op st kernel ref_op k i j =
  Relation.set_bdd st.rels.(k) (kernel st.man (Relation.bdd st.rels.(i)) (Relation.bdd st.rels.(j)));
  st.refs.(k) <- ref_op st.refs.(i) st.refs.(j)

let shift_up st r = Relation.rename r [ ("x", "x", st.b.(1)); ("y", "y", st.b.(2)) ]
let shift_down st r = Relation.rename r [ ("x", "x", st.b.(0)); ("y", "y", st.b.(1)) ]
let swap st r = Relation.rename r [ ("x", "x", st.b.(1)); ("y", "y", st.b.(0)) ]

let step st rs n =
  let k = Random.State.int rs 3 in
  let r = st.rels.(k) and rf = st.refs.(k) in
  let ctx = Printf.sprintf "step %d rel %d" n k in
  (match Random.State.int rs 9 with
  | 0 ->
      let tuples = random_tuples rs (1 + Random.State.int rs 4) in
      List.iter (fun t -> Relation.add_tuple r (Array.of_list t)) tuples;
      st.refs.(k) <- Ref_relation.union rf (Ref_relation.make [ "x"; "y" ] tuples)
  | 1 -> set_op st Bdd.mk_or Ref_relation.union k (Random.State.int rs 3) (Random.State.int rs 3)
  | 2 -> set_op st Bdd.mk_and Ref_relation.inter k (Random.State.int rs 3) (Random.State.int rs 3)
  | 3 -> set_op st Bdd.mk_diff Ref_relation.diff k (Random.State.int rs 3) (Random.State.int rs 3)
  | 4 ->
      (* Monotone instance shift: tuples must be preserved verbatim. *)
      let up = shift_up st r in
      check_same (ctx ^ ": shift up") up rf;
      Relation.dispose up
  | 5 ->
      (* Round-trip through the shifted layout and back. *)
      let up = shift_up st r in
      let back = shift_down st up in
      Alcotest.(check bool) (ctx ^ ": shift round-trip") true (Relation.equal r back);
      Relation.dispose up;
      Relation.dispose back
  | 6 ->
      (* Block swap: non-monotone, takes the generic replace path. *)
      let sw = swap st r in
      check_same (ctx ^ ": swap") sw rf;
      Relation.dispose sw
  | 7 ->
      let a = if Random.State.bool rs then "x" else "y" in
      let v = Random.State.int rs 64 in
      let sel = Relation.select r a v in
      check_same (ctx ^ ": select") sel (Ref_relation.select rf a v);
      Relation.dispose sel
  | _ ->
      let proj = Relation.project r [ "y" ] in
      check_same (ctx ^ ": project") proj (Ref_relation.project rf [ "y" ]);
      Relation.dispose proj);
  if (n + 1) mod gc_every = 0 then Bdd.gc st.man;
  check_same ctx st.rels.(k) st.refs.(k)

let test_differential () =
  let rs = Random.State.make [| seed |] in
  let st = setup rs in
  (* The engine's common rename (instance shift) must hit the
     order-preserving fast path; a swap must not. *)
  Alcotest.(check bool) "shift renaming is monotone" true
    (Bdd.map_is_monotone (Space.renaming st.sp [ (st.b.(0), st.b.(1)); (st.b.(1), st.b.(2)) ]));
  Alcotest.(check bool) "swap renaming is not monotone" false
    (Bdd.map_is_monotone (Space.renaming st.sp [ (st.b.(0), st.b.(1)); (st.b.(1), st.b.(0)) ]));
  for n = 0 to steps - 1 do
    step st rs n
  done;
  for k = 0 to 2 do
    check_same (Printf.sprintf "final rel %d" k) st.rels.(k) st.refs.(k)
  done;
  (* The sequence must actually have stressed the machinery: several
     collections, and growth past the minimum 1024-slot node table. *)
  Alcotest.(check bool) "at least 3 gcs" true (Bdd.gc_count st.man >= 3);
  Alcotest.(check bool) "node table grew" true (Bdd.peak_live_nodes st.man > 1024)

(* Abort-and-resume: a bulk load killed mid-way by an injected
   allocation budget must leave the manager consistent, and redoing the
   same (idempotent) tuple additions without the budget must land on
   exactly the reference set — then the ordinary differential sequence
   keeps passing on the same Space. *)
let test_abort_resume () =
  let rs = Random.State.make [| seed + 1 |] in
  let st = setup rs in
  let tuples = random_tuples rs 3000 in
  let scratch = Relation.of_tuples st.sp ~name:"scratch" (attrs st) [] in
  let add_all () = List.iter (fun t -> Relation.add_tuple scratch (Array.of_list t)) tuples in
  Bdd.set_budget st.man (Some (Budget.make ~max_allocations:(Bdd.allocations st.man + 1) ()));
  let aborted = match add_all () with () -> false | exception Bdd.Limit_exceeded (Budget.Allocations _) -> true in
  Alcotest.(check bool) "budget aborted the bulk load" true aborted;
  (* The partial prefix is garbage-collectable and the table reusable. *)
  Bdd.gc st.man;
  Bdd.set_budget st.man None;
  add_all ();
  let rf = Ref_relation.make [ "x"; "y" ] tuples in
  check_same "resumed load matches reference" scratch rf;
  Bdd.gc st.man;
  check_same "still matches after gc" scratch rf;
  (* The same manager keeps passing the random differential sequence. *)
  for n = 0 to 39 do
    step st rs n
  done

(* Serialize → deserialize round-trips over the same randomized
   churn (which forces GCs every 12 steps and grows the node table):
   reloading into the same manager must hash-cons back to the very
   same handles, and reloading into a fresh manager with the same
   variable layout must reproduce every tuple set and node count. *)
let test_serialize_roundtrip () =
  let rs = Random.State.make [| seed + 2 |] in
  let st = setup rs in
  for n = 0 to 79 do
    step st rs n
  done;
  Alcotest.(check bool) "churn forced gcs" true (Bdd.gc_count st.man >= 3);
  let data = Bdd.serialize st.man (Array.to_list (Array.map Relation.bdd st.rels)) in
  (* Another GC between dump and reload: the dump must not depend on
     live node numbering.  Solver spaces collect by compaction, which
     renumbers every handle — so re-read the relations' (rewritten)
     roots after the collection before comparing. *)
  Bdd.gc st.man;
  let roots = Array.to_list (Array.map Relation.bdd st.rels) in
  let back = Bdd.deserialize st.man data in
  List.iter2
    (fun a b -> Alcotest.(check int) "same-manager handle identity" (a : Bdd.t :> int) (b : Bdd.t :> int))
    roots back;
  (* Fresh manager, same layout. *)
  let sp2 = Space.create ~node_hint:64 () in
  let b2 = Space.alloc_interleaved sp2 dom 3 in
  let man2 = Space.man sp2 in
  let back2 = Bdd.deserialize man2 data in
  List.iteri
    (fun k root2 ->
      let r2 =
        Relation.make sp2 ~name:(Printf.sprintf "r%d'" k)
          [ { Relation.attr_name = "x"; block = b2.(0) }; { attr_name = "y"; block = b2.(1) } ]
      in
      Relation.set_bdd r2 root2;
      check_same (Printf.sprintf "fresh-manager rel %d tuples" k) r2 st.refs.(k);
      Alcotest.(check int)
        (Printf.sprintf "fresh-manager rel %d node count" k)
        (Bdd.node_count st.man (Relation.bdd st.rels.(k)))
        (Bdd.node_count man2 root2))
    back2

(* Corrupt dumps must be rejected with [Bad_input] (never a crash or a
   silently wrong BDD): truncation, bad magic, trailing garbage, and a
   bytewise scramble of the triple section.  Since the WLBDD02 framing
   carries a whole-dump CRC-32, every single-byte scramble must be
   rejected, not just the structurally invalid ones. *)
let expect_bad_input ctx f =
  match f () with
  | _ -> Alcotest.fail (ctx ^ ": expected Bad_input")
  | exception Solver_error.Error (Solver_error.Bad_input _) -> ()

let test_deserialize_rejects_corruption () =
  let rs = Random.State.make [| seed + 3 |] in
  let st = setup rs in
  for n = 0 to 23 do
    step st rs n
  done;
  let data = Bdd.serialize st.man [ Relation.bdd st.rels.(0) ] in
  expect_bad_input "truncated" (fun () ->
      Bdd.deserialize st.man (String.sub data 0 (String.length data - 5)));
  expect_bad_input "empty" (fun () -> Bdd.deserialize st.man "");
  expect_bad_input "bad magic" (fun () ->
      Bdd.deserialize st.man ("X" ^ String.sub data 1 (String.length data - 1)));
  expect_bad_input "trailing garbage" (fun () -> Bdd.deserialize st.man (data ^ "!"));
  (* Scramble one byte of every triple: the frame CRC must catch every
     single perturbation (CRC-32 detects all single-byte errors), on
     top of the structural validation (out-of-order child, non-reduced
     node, bad var) that guards checksummed-but-malformed input. *)
  let header = String.length "WLBDD02\n" + 12 in
  for off = header to min (String.length data - 1) (header + 60) do
    let b = Bytes.of_string data in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
    match Bdd.deserialize st.man (Bytes.to_string b) with
    | _ -> Alcotest.failf "scramble at byte %d went undetected" off
    | exception Solver_error.Error (Solver_error.Bad_input _) -> ()
  done

let () =
  Alcotest.run "bdd_kernels"
    [
      ("differential", [ Alcotest.test_case "random ops vs Ref_relation across gcs" `Quick test_differential ]);
      ("robustness", [ Alcotest.test_case "abort mid-load, resume idempotently" `Quick test_abort_resume ]);
      ( "serialization",
        [
          Alcotest.test_case "serialize/deserialize round-trip across gcs" `Quick test_serialize_roundtrip;
          Alcotest.test_case "corrupt dumps rejected as Bad_input" `Quick test_deserialize_rejects_corruption;
        ] );
    ]
