(* Incremental re-analysis tests: [Pta.Incr.update] against a stored
   gantt fixpoint, and the delta-layer store chain underneath it.

   - differential identity: whatever verdict an edit script draws
     (incremental, unchanged, or a cold fall-back), every relation of
     the updated engine is BDD-bit-identical to a cold solve of the
     edited program;
   - policy: append-only edits go [Incremental], retractions go
     [Cold (Removals _)], a byte-identical program goes [Unchanged];
   - chain: ten [save_delta] layers fold back to the right relation
     contents, before and after [compact], and the chain tip (not the
     stale base) is what [read_ident] reports;
   - crash safety: kill at every fs op of [save_delta] and [compact],
     reopen must be old tip, new tip, or (compact only) cleanly
     absent — never a mix — and a broken tail quarantines while the
     base keeps serving. *)

module Analyses = Pta.Analyses
module Incr = Pta.Incr
module Engine = Datalog.Engine

let tmp_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "whalelam-%s-%d" name (Unix.getpid ())) in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  dir

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "update failed: %s" (Solver_error.to_string e)

(* The generator is deterministic in its params, so "the same program"
   is re-creatable at will and an edited copy diffs only by the edit. *)
let gen_gantt () =
  let profile = Option.get (Synth.Profiles.find "gantt") in
  Synth.Generator.generate (Synth.Profiles.params ~scale:0.04 profile)

(* One shared base: cold-solve the pristine gantt program and persist
   every declared relation (the incremental restart needs the working
   relations, not just the interface).  Tests copy this directory
   rather than mutating it. *)
let base =
  lazy
    (let fg = Jir.Factgen.extract (gen_gantt ()) in
     let r, cold_seconds = time (fun () -> Analyses.run_basic ~algo:Analyses.Algo3 fg) in
     let dir = tmp_dir "incr-base" in
     Store.save ~dir ~key:"base-key" ~config:[ ("algo", "algo3") ] ~space:(Engine.space r.Analyses.engine)
       ~relations:(Engine.declared_relations r.Analyses.engine);
     (dir, cold_seconds))

let copy_base name =
  let src, _ = Lazy.force base in
  let dir = tmp_dir name in
  ignore (Sys.command (Printf.sprintf "cp -r %s %s" (Filename.quote src) (Filename.quote dir)));
  dir

(* BDD-bit-identity between two engines over the same program text:
   both carry the same variable numbering, so canonical dump bytes
   decide semantic equality (same argument as test_store). *)
let check_engines_equal ctx (got : Engine.t) (want : Engine.t) =
  let gman = Space.man (Engine.space got) and wman = Space.man (Engine.space want) in
  let by_name eng = List.map (fun r -> (Relation.name r, r)) (Engine.declared_relations eng) in
  let gots = by_name got and wants = by_name want in
  Alcotest.(check int) (ctx ^ ": relation count") (List.length wants) (List.length gots);
  List.iter
    (fun (name, w) ->
      match List.assoc_opt name gots with
      | None -> Alcotest.failf "%s: relation %s missing from update" ctx name
      | Some g ->
        Alcotest.(check (float 0.0)) (ctx ^ ": " ^ name ^ " cardinality") (Relation.count w) (Relation.count g);
        Alcotest.(check bool) (ctx ^ ": " ^ name ^ " dump bytes") true
          (Bdd.serialize wman [ Relation.bdd w ] = Bdd.serialize gman [ Relation.bdd g ]))
    wants

let update_against dir fg = ok (Incr.update ~algo:Analyses.Algo3 ~store:(Store.load ~dir) fg)

(* --- The headline case: one appended method, incremental, identical,
   and much faster than the cold solve it replaces. ------------------- *)

let test_add_method_incremental () =
  let dir = copy_base "incr-addm" in
  let _, cold_base_seconds = Lazy.force base in
  let p = gen_gantt () in
  let desc = Synth.Edits.apply p { Synth.Edits.kind = Synth.Edits.Add_method; seed = 0 } in
  Printf.printf "edit: %s\n%!" desc;
  let fg = Jir.Factgen.extract p in
  let o, inc_seconds = time (fun () -> update_against dir fg) in
  Alcotest.(check string) "verdict" "incremental" (Incr.verdict_to_string o.Incr.verdict);
  Alcotest.(check bool) "some input gained tuples" true (o.Incr.changed_inputs <> []);
  Alcotest.(check bool) "solve ran (stats present)" true (o.Incr.stats <> None);
  let cold, cold_seconds = time (fun () -> Analyses.run_basic ~algo:Analyses.Algo3 fg) in
  check_engines_equal "add-method" o.Incr.engine cold.Analyses.engine;
  (* Persist the update as a delta layer: the chain tip must now carry
     the new identity, fold back bit-identically, and verify clean. *)
  let layer =
    Store.save_delta ~dir ~key:"edited-key" ~config:[ ("algo", "algo3") ] ~space:(Engine.space o.Incr.engine)
      ~deltas:o.Incr.deltas
  in
  Alcotest.(check int) "first delta layer" 1 layer;
  Alcotest.(check (option string)) "read_key follows the chain tip" (Some "edited-key") (Store.read_key ~dir);
  Alcotest.(check bool) "ident is the chain tip" true (Store.read_ident ~dir = Some ("edited-key", 2));
  let st = Store.load ~dir in
  Alcotest.(check string) "loaded key is the tip's" "edited-key" (Store.key st);
  Alcotest.(check int) "one layer folded" 1 (Store.layers st);
  List.iter
    (fun r ->
      let name = Relation.name r in
      match Store.find st name with
      | None -> Alcotest.failf "chain load lost %s" name
      | Some ld -> Alcotest.(check (float 0.0)) ("chain " ^ name) (Relation.count r) (Relation.count ld))
    (Engine.declared_relations o.Incr.engine);
  List.iter
    (fun (c : Store.check) ->
      if not c.Store.chk_ok then Alcotest.failf "verify after save_delta: %s: %s" c.Store.chk_name c.Store.chk_detail)
    (Store.verify ~dir ());
  let cold_ref = Float.max cold_seconds cold_base_seconds in
  Printf.printf "add-method: cold %.2fs, incremental update %.2fs (%.1fx)\n%!" cold_ref inc_seconds
    (cold_ref /. inc_seconds);
  Alcotest.(check bool) "incremental at least 5x faster than cold" true (inc_seconds *. 5.0 <= cold_ref)

let test_unchanged () =
  let dir = copy_base "incr-unchanged" in
  let fg = Jir.Factgen.extract (gen_gantt ()) in
  let o = update_against dir fg in
  Alcotest.(check string) "verdict" "unchanged" (Incr.verdict_to_string o.Incr.verdict);
  Alcotest.(check bool) "no deltas" true (o.Incr.deltas = []);
  Alcotest.(check bool) "nothing solved" true (o.Incr.stats = None);
  (* The adopted fixpoint must still be the real one. *)
  let cold = Analyses.run_basic ~algo:Analyses.Algo3 (Jir.Factgen.extract (gen_gantt ())) in
  check_engines_equal "unchanged" o.Incr.engine cold.Analyses.engine

let test_removal_goes_cold () =
  let dir = copy_base "incr-removal" in
  let p = gen_gantt () in
  let desc = Synth.Edits.apply p { Synth.Edits.kind = Synth.Edits.Remove_alloc; seed = 0 } in
  Printf.printf "edit: %s\n%!" desc;
  let fg = Jir.Factgen.extract p in
  let o = update_against dir fg in
  (match o.Incr.verdict with
  | Incr.Cold (Incr.Removals rels) -> Alcotest.(check bool) "names the shrunk inputs" true (rels <> [])
  | v -> Alcotest.failf "expected Cold (Removals _), got %s" (Incr.verdict_to_string v));
  let cold = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  check_engines_equal "remove-alloc" o.Incr.engine cold.Analyses.engine

(* --- Randomized edit scripts: 1-3 edits of any kind, update once,
   always bit-identical to cold, verdict consistent with the policy. -- *)

let test_random_edit_scripts () =
  let rng = Random.State.make [| 0xED175 |] in
  for script = 1 to 4 do
    let dir = copy_base (Printf.sprintf "incr-script%d" script) in
    let p = gen_gantt () in
    let n_edits = 1 + Random.State.int rng 3 in
    let kinds = [| Synth.Edits.Add_method; Synth.Edits.Add_alloc; Synth.Edits.Remove_alloc |] in
    let specs =
      List.init n_edits (fun _ ->
          { Synth.Edits.kind = kinds.(Random.State.int rng 3); seed = Random.State.int rng 100 })
    in
    let removed_any = List.exists (fun s -> s.Synth.Edits.kind = Synth.Edits.Remove_alloc) specs in
    List.iter (fun s -> Printf.printf "script %d: %s\n%!" script (Synth.Edits.apply p s)) specs;
    let fg = Jir.Factgen.extract p in
    let o = update_against dir fg in
    Printf.printf "script %d: verdict %s\n%!" script (Incr.verdict_to_string o.Incr.verdict);
    if removed_any then
      Alcotest.(check bool)
        (Printf.sprintf "script %d: retraction cannot be incremental" script)
        true
        (match o.Incr.verdict with Incr.Cold _ -> true | _ -> false);
    let cold = Analyses.run_basic ~algo:Analyses.Algo3 fg in
    check_engines_equal (Printf.sprintf "script %d" script) o.Incr.engine cold.Analyses.engine
  done

(* --- Synthetic chain: cheap hand-built store, ten layers, compact. -- *)

let named_domain name size =
  Domain.make ~name ~size
    ~element_names:(Array.init size (Printf.sprintf "%s%d" (String.lowercase_ascii name)))
    ()

(* A one-relation store: [r] over an 8-bit domain.  [mk_space] rebuilds
   the identical variable layout so cross-manager delta saves are
   legal, exactly as an update run would. *)
let mk_space () =
  let sp = Space.create () in
  let b = Space.alloc sp (named_domain "D" 256) in
  (sp, b)

let save_chain_base dir tuples =
  let sp, b = mk_space () in
  let r =
    Relation.of_tuples sp ~name:"r" [ { Relation.attr_name = "x"; block = b } ] (List.map (fun x -> [| x |]) tuples)
  in
  Store.save ~dir ~key:"k0" ~config:[ ("gen", "chain") ] ~space:sp ~relations:[ r ]

let save_chain_delta dir ~key ~add ~remove =
  let sp, b = mk_space () in
  let mk tuples =
    Relation.bdd (Relation.of_tuples sp ~name:"d" [ { Relation.attr_name = "x"; block = b } ] (List.map (fun x -> [| x |]) tuples))
  in
  Store.save_delta ~dir ~key ~config:[ ("gen", "chain") ] ~space:sp ~deltas:[ ("r", mk add, mk remove) ]

let sorted_tuples st =
  match Store.find st "r" with
  | None -> Alcotest.fail "relation r missing"
  | Some r -> List.sort compare (List.map (fun t -> t.(0)) (Relation.tuples r))

let check_chain ctx dir ~expect ~key ~snapshot ~layers =
  let st = Store.load ~dir in
  Alcotest.(check (list int)) (ctx ^ ": folded tuples") (List.sort compare expect) (sorted_tuples st);
  Alcotest.(check string) (ctx ^ ": tip key") key (Store.key st);
  Alcotest.(check int) (ctx ^ ": snapshot") snapshot (Store.snapshot st);
  Alcotest.(check int) (ctx ^ ": layers") layers (Store.layers st);
  Alcotest.(check bool) (ctx ^ ": read_ident is tip") true (Store.read_ident ~dir = Some (key, snapshot));
  List.iter
    (fun (c : Store.check) ->
      if not c.Store.chk_ok then Alcotest.failf "%s: verify: %s: %s" ctx c.Store.chk_name c.Store.chk_detail)
    (Store.verify ~dir ())

let test_ten_layer_chain () =
  let dir = tmp_dir "incr-chain" in
  save_chain_base dir [ 0; 1 ];
  let expect = ref [ 0; 1 ] in
  for i = 1 to 10 do
    (* Layer 5 also retracts tuple 0, exercising the fold's subtract. *)
    let add = [ i + 1 ] and remove = if i = 5 then [ 0 ] else [] in
    let layer = save_chain_delta dir ~key:(Printf.sprintf "k%d" i) ~add ~remove in
    Alcotest.(check int) (Printf.sprintf "layer index %d" i) i layer;
    expect := List.filter (fun x -> not (List.mem x remove)) !expect @ add;
    check_chain (Printf.sprintf "after layer %d" i) dir ~expect:!expect ~key:(Printf.sprintf "k%d" i)
      ~snapshot:(i + 1) ~layers:i
  done;
  Alcotest.(check (option int)) "read_layers sees 10" (Some 10) (Store.read_layers ~dir);
  (* Compact: same contents, same tip key, one more snapshot, no layers. *)
  let squashed = Store.compact ~dir in
  Alcotest.(check int) "compacted 10 layers" 10 squashed;
  check_chain "after compact" dir ~expect:!expect ~key:"k10" ~snapshot:12 ~layers:0;
  Alcotest.(check int) "compact with no layers is a no-op" 0 (Store.compact ~dir);
  (* The chain keeps growing on top of the new base. *)
  let layer = save_chain_delta dir ~key:"k11" ~add:[ 100 ] ~remove:[] in
  Alcotest.(check int) "fresh chain restarts at layer 1" 1 layer;
  check_chain "post-compact delta" dir ~expect:(100 :: !expect) ~key:"k11" ~snapshot:13 ~layers:1

(* --- Crash matrix for save_delta: the base is never touched, so every
   crash point must reopen as old tip or new tip — absent is a bug. --- *)

let test_save_delta_crash_matrix () =
  let scratch = tmp_dir "incr-crash-scratch" in
  save_chain_base scratch [ 0; 1 ];
  ignore (save_chain_delta scratch ~key:"k1" ~add:[ 2 ] ~remove:[]);
  let ops = Faults.record_fs_ops (fun () -> ignore (save_chain_delta scratch ~key:"k2" ~add:[ 3 ] ~remove:[ 0 ])) in
  let n = List.length ops in
  Printf.printf "save_delta crash matrix: %d crash points\n%!" n;
  Alcotest.(check bool) "save_delta has a real crash surface" true (n >= 6);
  let dir = tmp_dir "incr-crash" in
  for i = 1 to n do
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
    save_chain_base dir [ 0; 1 ];
    ignore (save_chain_delta dir ~key:"k1" ~add:[ 2 ] ~remove:[]);
    (match Faults.crash_at_fs_op i (fun () -> ignore (save_chain_delta dir ~key:"k2" ~add:[ 3 ] ~remove:[ 0 ])) with
    | None -> Alcotest.failf "crash point %d/%d never fired" i n
    | Some label ->
      let ctx = Printf.sprintf "crash %d/%d (%s)" i n label in
      (match Store.read_ident ~dir with
      | Some ("k1", 2) -> check_chain ctx dir ~expect:[ 0; 1; 2 ] ~key:"k1" ~snapshot:2 ~layers:1
      | Some ("k2", 3) -> check_chain ctx dir ~expect:[ 1; 2; 3 ] ~key:"k2" ~snapshot:3 ~layers:2
      | other ->
        Alcotest.failf "%s: ident neither old nor new tip: %s" ctx
          (match other with Some (k, s) -> Printf.sprintf "(%s, %d)" k s | None -> "<none>"));
      (* Recovery: appending over the debris must land a healthy k2. *)
      ignore (save_chain_delta dir ~key:"k2r" ~add:[ 3 ] ~remove:[ 0 ]);
      match Store.read_ident ~dir with
      | Some (("k2" | "k2r"), _) ->
        let st = Store.load ~dir in
        Alcotest.(check (list int)) (ctx ^ ": recovered tuples") [ 1; 2; 3 ] (sorted_tuples st)
      | other ->
        Alcotest.failf "%s: recovery ident %s" ctx
          (match other with Some (k, s) -> Printf.sprintf "(%s, %d)" k s | None -> "<none>"))
  done

(* --- Crash matrix for compact: old chain, new base, or cleanly
   absent (the full save's torn window), never a mix. ----------------- *)

let test_compact_crash_matrix () =
  let prime dir =
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
    save_chain_base dir [ 0; 1 ];
    ignore (save_chain_delta dir ~key:"k1" ~add:[ 2 ] ~remove:[]);
    ignore (save_chain_delta dir ~key:"k2" ~add:[ 3 ] ~remove:[ 0 ])
  in
  let scratch = tmp_dir "incr-compact-scratch" in
  prime scratch;
  let ops = Faults.record_fs_ops (fun () -> ignore (Store.compact ~dir:scratch)) in
  let n = List.length ops in
  Printf.printf "compact crash matrix: %d crash points\n%!" n;
  Alcotest.(check bool) "compact has a real crash surface" true (n >= 6);
  let dir = tmp_dir "incr-compact-crash" in
  for i = 1 to n do
    prime dir;
    match Faults.crash_at_fs_op i (fun () -> ignore (Store.compact ~dir)) with
    | None -> Alcotest.failf "crash point %d/%d never fired" i n
    | Some label ->
      let ctx = Printf.sprintf "compact crash %d/%d (%s)" i n label in
      (match Store.read_ident ~dir with
      | Some ("k2", 3) ->
        (* Old chain (layer files may already be partly gone only
           after the new base committed, so the chain must be whole). *)
        check_chain ctx dir ~expect:[ 1; 2; 3 ] ~key:"k2" ~snapshot:3 ~layers:2
      | Some ("k2", 4) ->
        let st = Store.load ~dir in
        Alcotest.(check (list int)) (ctx ^ ": compacted tuples") [ 1; 2; 3 ] (sorted_tuples st)
      | Some (k, s) -> Alcotest.failf "%s: impossible ident (%s, %d)" ctx k s
      | None ->
        Alcotest.(check bool) (ctx ^ ": cleanly absent") false (Store.exists ~dir));
      (* Recovery: a fresh base save over whatever is left. *)
      save_chain_base dir [ 7 ];
      let st = Store.load ~dir in
      Alcotest.(check (list int)) (ctx ^ ": recovery tuples") [ 7 ] (sorted_tuples st)
  done

(* --- Torn tail: corrupt one layer, quarantine it, base keeps serving. *)

let test_quarantine_torn_tail () =
  let dir = tmp_dir "incr-torn" in
  save_chain_base dir [ 0 ];
  ignore (save_chain_delta dir ~key:"k1" ~add:[ 1 ] ~remove:[]);
  ignore (save_chain_delta dir ~key:"k2" ~add:[ 2 ] ~remove:[]);
  ignore (save_chain_delta dir ~key:"k3" ~add:[ 3 ] ~remove:[]);
  Faults.corrupt_file (Filename.concat (Filename.concat dir "store") "layer.2.bdd") ~at:5 "XYZ";
  let checks = Store.verify ~dir () in
  Alcotest.(check bool) "corruption detected" true (List.exists (fun (c : Store.check) -> not c.Store.chk_ok) checks);
  Alcotest.(check (option int)) "cut point is layer 2" (Some 2) (Store.first_broken_layer checks);
  (match Store.quarantine_layers ~dir ~from_layer:2 with
  | None -> Alcotest.fail "expected a quarantine destination"
  | Some dest ->
    Alcotest.(check bool) "quarantine dir exists" true (Sys.is_directory dest);
    Alcotest.(check bool) "base manifest still there" true (Store.exists ~dir));
  (* Base + layer 1 keep serving; the chain can then regrow. *)
  check_chain "after tail quarantine" dir ~expect:[ 0; 1 ] ~key:"k1" ~snapshot:2 ~layers:1;
  ignore (save_chain_delta dir ~key:"k2b" ~add:[ 9 ] ~remove:[]);
  check_chain "regrown chain" dir ~expect:[ 0; 1; 9 ] ~key:"k2b" ~snapshot:5 ~layers:2;
  (* A corrupt base is not a layer problem: first_broken_layer demurs. *)
  Faults.corrupt_file (Filename.concat (Filename.concat dir "store") "relations.bdd") ~at:10 "XYZ";
  let checks = Store.verify ~dir () in
  Alcotest.(check bool) "base corruption detected" true
    (List.exists (fun (c : Store.check) -> not c.Store.chk_ok) checks);
  Alcotest.(check (option int)) "no layer cut for a broken base" None (Store.first_broken_layer checks)

let () =
  Alcotest.run "incr"
    [
      ( "update",
        [
          Alcotest.test_case "add-method: incremental, bit-identical, 5x faster" `Quick test_add_method_incremental;
          Alcotest.test_case "identical program: unchanged, nothing solved" `Quick test_unchanged;
          Alcotest.test_case "removal: cold fall-back, still identical" `Quick test_removal_goes_cold;
          Alcotest.test_case "random edit scripts always match cold" `Quick test_random_edit_scripts;
        ] );
      ( "chain",
        [
          Alcotest.test_case "ten layers fold correctly, before and after compact" `Quick test_ten_layer_chain;
          Alcotest.test_case "torn tail quarantines, base keeps serving" `Quick test_quarantine_torn_tail;
        ] );
      ( "crash-safety",
        [
          Alcotest.test_case "kill at every save_delta fs op: old tip or new tip" `Quick test_save_delta_crash_matrix;
          Alcotest.test_case "kill at every compact fs op: chain, base, or absent" `Quick test_compact_crash_matrix;
        ] );
    ]
