(* IR, textual format, local copy elimination, and fact extraction. *)

module Ir = Jir.Ir
module Hier = Jir.Hier
module Jparser = Jir.Jparser
module Jprinter = Jir.Jprinter
module Local_opt = Jir.Local_opt
module Factgen = Jir.Factgen

let sample =
  {|
class A extends Object {
  field f : Object
  method set(v : Object) : void {
    this.f = v
  }
  method get() : Object {
    var r : Object
    r = this.f
    return r
  }
}
class B extends A {
  method get() : Object {
    var x : Object
    x = new Object() @ "B.get:new"
    return x
  }
}
class Main extends Object {
  static field shared : Object
  static method id(x : Object) : Object {
    return x
  }
  static method main() : void {
    var a1 : A
    var a2 : A
    var o1 : Object
    var o2 : Object
    var r1 : Object
    var r2 : Object
    a1 = new A() @ "A1"
    a2 = new B() @ "A2"
    o1 = new Object() @ "O1"
    o2 = new Object() @ "O2"
    a1.set(o1)
    a2.set(o2)
    r1 = a1.get()
    r2 = a2.get()
    Main.shared = r1
    r2 = Main.shared
    sync r2
  }
}
entry Main.main
|}

let parse () = Jparser.parse sample

let test_parse_counts () =
  let p = parse () in
  (* Object, Thread, String + A, B, Main. *)
  Alcotest.(check int) "classes" 6 (Ir.num_classes p);
  (* The 5 program allocations, plus the built-in global heap (id 0). *)
  Alcotest.(check int) "heaps" 6 (Ir.num_heaps p);
  Alcotest.(check bool) "A exists" true (Ir.find_class p "A" <> None);
  Alcotest.(check int) "entries" 1 (List.length (Ir.entries p));
  (* 5 allocs = 5 init sites, plus 4 calls (set x2, get x2). *)
  Alcotest.(check int) "invoke sites" 9 (Ir.num_invokes p)

let test_hierarchy () =
  let p = parse () in
  let a = Option.get (Ir.find_class p "A") in
  let b = Option.get (Ir.find_class p "B") in
  let main = Option.get (Ir.find_class p "Main") in
  Alcotest.(check bool) "B <= A" true (Hier.subclass_of p b a);
  Alcotest.(check bool) "A </= B" false (Hier.subclass_of p a b);
  Alcotest.(check bool) "A <= Object" true (Hier.subclass_of p a (Ir.object_class p));
  Alcotest.(check bool) "assignable A := B" true (Hier.assignable p a b);
  Alcotest.(check bool) "not assignable B := A" false (Hier.assignable p b a);
  (* Dispatch: B overrides get, inherits set. *)
  let a_get = Option.get (Ir.find_method p a "get") in
  let b_get = Option.get (Ir.find_method p b "get") in
  let a_set = Option.get (Ir.find_method p a "set") in
  Alcotest.(check bool) "dispatch B.get" true (Hier.dispatch p b "get" = Some b_get);
  Alcotest.(check bool) "dispatch A.get" true (Hier.dispatch p a "get" = Some a_get);
  Alcotest.(check bool) "dispatch B.set inherited" true (Hier.dispatch p b "set" = Some a_set);
  Alcotest.(check bool) "no dispatch on Main.get" true (Hier.dispatch p main "get" = None);
  Alcotest.(check bool) "Main not a thread" false (Hier.is_thread p main)

let test_parse_errors () =
  let cases =
    [
      "class A extends Nope {}";
      "class A extends Object { method m() : void { x = y } }";
      "class A extends Object { method m() : void { var x : A\nvar x : A } }";
      "class A extends A {}";
      "class A extends Object {} class A extends Object {}";
      "class A extends Object { method m() : void { var v : A\nv = w.f } }";
      "entry A.main";
      "class A extends Object { method m(v : Object) : void { v.nope = v } }";
    ]
  in
  List.iter
    (fun src ->
      match Jparser.parse src with
      | exception Jparser.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" src)
    cases

let facts_of p = (Factgen.extract ~local_opt:false p).Factgen.relations

let test_printer_roundtrip () =
  let p1 = parse () in
  let printed = Jprinter.to_string p1 in
  let p2 = Jparser.parse printed in
  Alcotest.(check int) "classes preserved" (Ir.num_classes p1) (Ir.num_classes p2);
  Alcotest.(check int) "methods preserved" (Ir.num_methods p1) (Ir.num_methods p2);
  Alcotest.(check int) "stmts preserved" (Ir.stmt_count p1) (Ir.stmt_count p2);
  let f1 = facts_of (parse ()) and f2 = facts_of (Jparser.parse printed) in
  List.iter2
    (fun (n1, t1) (n2, t2) ->
      Alcotest.(check string) "relation name" n1 n2;
      Alcotest.(check (list (list int))) (Printf.sprintf "facts of %s" n1) (List.sort compare t1) (List.sort compare t2))
    f1 f2

let test_local_opt () =
  let src =
    {|
class A extends Object {
  field f : Object
  method m(v : Object) : void {
    var a : Object
    var b : Object
    a = v
    b = a
    this.f = b
  }
}
entry A.m
|}
  in
  let p = Jparser.parse src in
  let removed = Local_opt.run p in
  Alcotest.(check int) "copies removed" 2 removed;
  let a = Option.get (Ir.find_class p "A") in
  let m = Option.get (Ir.find_method p a "m") in
  let body = (Ir.meth p m).Ir.m_body in
  Alcotest.(check int) "single statement left" 1 (List.length body);
  (match body with
  | [ Ir.Store { src = s; _ } ] ->
    (* The store now uses the formal v directly. *)
    Alcotest.(check string) "store source is v" "v" (Ir.var p s).Ir.v_name
  | _ -> Alcotest.fail "expected a single store")

let test_local_opt_kill () =
  (* A redefinition must kill the copy: the load result, not the stale
     copy source, flows onward. *)
  let src =
    {|
class A extends Object {
  field f : Object
  method m(v : Object, w : A) : Object {
    var a : Object
    a = v
    a = w.f
    return a
  }
}
entry A.m
|}
  in
  let p = Jparser.parse src in
  ignore (Local_opt.run p);
  let a = Option.get (Ir.find_class p "A") in
  let m = Option.get (Ir.find_method p a "m") in
  match (Ir.meth p m).Ir.m_body with
  | [ Ir.Load { dst; _ }; Ir.Return r ] ->
    Alcotest.(check int) "return the loaded value" dst r
  | _ -> Alcotest.fail "expected load then return"

let find_rel facts name = List.assoc name facts

let test_factgen_tuples () =
  let p = parse () in
  let fg = Factgen.extract ~local_opt:false p in
  let facts = fg.Factgen.relations in
  let a = Option.get (Ir.find_class p "A") in
  let b = Option.get (Ir.find_class p "B") in
  (* aT is reflexive and transitive along the hierarchy. *)
  let at = find_rel facts "aT" in
  Alcotest.(check bool) "aT(A, B)" true (List.mem [ a; b ] at);
  Alcotest.(check bool) "aT(A, A)" true (List.mem [ a; a ] at);
  Alcotest.(check bool) "aT(Object, B)" true (List.mem [ Ir.object_class p; b ] at);
  Alcotest.(check bool) "no aT(B, A)" false (List.mem [ b; a ] at);
  (* vP0: one tuple per allocation. *)
  Alcotest.(check int) "vP0 count" 5 (List.length (find_rel facts "vP0"));
  Alcotest.(check int) "global seed" 1 (List.length (find_rel facts "vP0g"));
  (* Static accesses go through the global variable. *)
  let gv = Ir.global_var p in
  let stores = find_rel facts "store" in
  Alcotest.(check bool) "static store via global" true (List.exists (fun t -> List.hd t = gv) stores);
  let loads = find_rel facts "load" in
  Alcotest.(check bool) "static load via global" true (List.exists (fun t -> List.hd t = gv) loads);
  (* hT covers the synthetic global object. *)
  let ht = find_rel facts "hT" in
  Alcotest.(check bool) "global object typed Object" true (List.mem [ Factgen.global_heap fg; Ir.object_class p ] ht);
  (* Each allocation produced a constructor-call edge in IE0. *)
  let ie0 = find_rel facts "IE0" in
  Alcotest.(check bool) "IE0 has constructor edges" true (List.length ie0 >= 5);
  (* syncs has the one sync. *)
  Alcotest.(check int) "syncs" 1 (List.length (find_rel facts "syncs"));
  (* cha dispatch rows: get on B resolves to B.get. *)
  let cha = find_rel facts "cha" in
  let b_get = Option.get (Ir.find_method p b "get") in
  let names = Option.get (Factgen.element_names fg "N") in
  let get_name_idx = ref (-1) in
  Array.iteri (fun i n -> if n = "get" then get_name_idx := i) names;
  Alcotest.(check bool) "cha(B, get, B.get)" true (List.mem [ b; !get_name_idx; b_get ] cha)

let test_factgen_domains () =
  let p = parse () in
  let fg = Factgen.extract ~local_opt:false p in
  (* V already includes one exception variable per method (real vars
     allocated at method creation), H the built-in global heap. *)
  Alcotest.(check int) "V size" (Ir.num_vars p) (Factgen.dom_size fg "V");
  Alcotest.(check bool) "V has an exc var per method" true (Ir.num_vars p > Ir.num_methods p);
  Alcotest.(check int) "H size" (Ir.num_heaps p) (Factgen.dom_size fg "H");
  Alcotest.(check int) "T size" (Ir.num_classes p) (Factgen.dom_size fg "T");
  (* Element names resolve. *)
  let h_names = Option.get (Factgen.element_names fg "H") in
  Alcotest.(check bool) "A1 label present" true (Array.exists (fun n -> n = "A1") h_names);
  Alcotest.(check string) "global heap is element 0" "<global>" h_names.(0)

let test_redeclare_init () =
  let src =
    {|
class A extends Object {
  field f : Object
  method <init>(v : Object) : void {
    this.f = v
  }
}
class Main extends Object {
  static method main() : void {
    var o : Object
    var a : A
    o = new Object()
    a = new A(o)
  }
}
entry Main.main
|}
  in
  let p = Jparser.parse src in
  let a = Option.get (Ir.find_class p "A") in
  let init = Ir.init_method p a in
  Alcotest.(check int) "init has this + v" 2 (List.length (Ir.meth p init).Ir.m_formals);
  Alcotest.(check int) "init body" 1 (List.length (Ir.meth p init).Ir.m_body);
  (* actual(init_site, 1, o) must exist. *)
  let fg = Factgen.extract ~local_opt:false p in
  let actuals = List.assoc "actual" fg.Factgen.relations in
  Alcotest.(check bool) "constructor argument bound" true (List.exists (fun t -> List.nth t 1 = 1) actuals)

let test_generator_sanity () =
  let params = { Synth.Generator.default_params with n_classes = 16; n_thread_classes = 2; jce_flavor = true } in
  let p = Synth.Generator.generate params in
  Alcotest.(check bool) "has classes" true (Ir.num_classes p > 16);
  Alcotest.(check bool) "has statements" true (Ir.stmt_count p > 50);
  Alcotest.(check bool) "has entries" true (List.length (Ir.entries p) >= 1);
  Alcotest.(check bool) "has PBEKeySpec" true (Ir.find_class p "PBEKeySpec" <> None);
  (* Determinism. *)
  let p2 = Synth.Generator.generate params in
  Alcotest.(check int) "deterministic stmts" (Ir.stmt_count p) (Ir.stmt_count p2);
  let f1 = facts_of p and f2 = facts_of p2 in
  List.iter2 (fun (n, t1) (_, t2) -> Alcotest.(check int) (n ^ " deterministic") (List.length t1) (List.length t2)) f1 f2

(* Relation schemas, for mapping fact tuples to element names (ids are
   renumbered by a parse round-trip; names are stable). *)
let schemas =
  [
    ("vP0", [ "V"; "H" ]);
    ("vP0g", [ "V"; "H" ]);
    ("copyAssign", [ "V"; "V" ]);
    ("store", [ "V"; "F"; "V" ]);
    ("load", [ "V"; "F"; "V" ]);
    ("vT", [ "V"; "T" ]);
    ("hT", [ "H"; "T" ]);
    ("aT", [ "T"; "T" ]);
    ("cha", [ "T"; "N"; "M" ]);
    ("chaT", [ "T"; "N"; "M" ]);
    ("actual", [ "I"; "Z"; "V" ]);
    ("formal", [ "M"; "Z"; "V" ]);
    ("IE0", [ "I"; "M" ]);
    ("mI", [ "M"; "I"; "N" ]);
    ("Mret", [ "M"; "V" ]);
    ("Mthr", [ "M"; "V" ]);
    ("Iret", [ "I"; "V" ]);
    ("mV", [ "M"; "V" ]);
    ("mH", [ "M"; "H" ]);
    ("syncs", [ "V" ]);
    ("Mentry", [ "M" ]);
    ("Mcls", [ "M"; "T" ]);
    ("hRun", [ "H"; "M" ]);
  ]

let named_facts p =
  let fg = Factgen.extract ~local_opt:false p in
  List.map
    (fun (name, tuples) ->
      let doms = List.assoc name schemas in
      let named =
        List.map (fun t -> List.map2 (fun d v -> (Option.get (Factgen.element_names fg d)).(v)) doms t) tuples
      in
      (name, List.sort compare named))
    fg.Factgen.relations

let test_generator_roundtrip () =
  let params = { Synth.Generator.default_params with n_classes = 10; n_thread_classes = 1; jce_flavor = true } in
  let p = Synth.Generator.generate params in
  let printed = Jprinter.to_string p in
  let p2 = Jparser.parse printed in
  Alcotest.(check int) "stmt count" (Ir.stmt_count p) (Ir.stmt_count p2);
  (* Compare name-level facts: entity ids may be renumbered by the
     round-trip, but every named tuple must survive. *)
  let f1 = named_facts (Synth.Generator.generate params) and f2 = named_facts p2 in
  List.iter2
    (fun (n1, t1) (_, t2) -> Alcotest.(check (list (list string))) (Printf.sprintf "facts of %s" n1) t1 t2)
    f1 f2

let test_arrays_and_exceptions () =
  let src =
    {|
class A extends Object {
  method fill(arr : Object, v : Object) : void {
    arr[] = v
  }
  method fetch(arr : Object) : Object {
    var r : Object
    r = arr[]
    return r
  }
  method risky() : void {
    var e : Object
    e = new Object() @ "BOOM"
    throw e
  }
  method guard() : Object {
    var caught : Object
    caught = catch
    return caught
  }
}
entry A.risky
|}
  in
  let p = Jparser.parse src in
  let fg = Factgen.extract ~local_opt:false p in
  let facts = fg.Factgen.relations in
  (* Array accesses become load/store through the special field. *)
  let af = Ir.array_field p in
  Alcotest.(check bool) "array store" true (List.exists (fun t -> List.nth t 1 = af) (find_rel facts "store"));
  Alcotest.(check bool) "array load" true (List.exists (fun t -> List.nth t 1 = af) (find_rel facts "load"));
  (* Every method has an exception variable in Mthr. *)
  Alcotest.(check int) "Mthr arity = methods" (Ir.num_methods p) (List.length (find_rel facts "Mthr"));
  (* throw/catch show up as copies involving the exception variable. *)
  let a = Option.get (Ir.find_class p "A") in
  let risky = Option.get (Ir.find_method p a "risky") in
  let exc_of_risky = List.assoc risky (List.map (function [ m; v ] -> (m, v) | _ -> (-1, -1)) (find_rel facts "Mthr")) in
  Alcotest.(check bool) "throw assigns into exc var" true
    (List.exists (fun t -> List.hd t = exc_of_risky) (find_rel facts "copyAssign"));
  (* Round-trips through the printer. *)
  let p2 = Jparser.parse (Jprinter.to_string p) in
  Alcotest.(check int) "roundtrip stmts" (Ir.stmt_count p) (Ir.stmt_count p2)

let test_interfaces () =
  let src =
    {|
interface Readable {
}
interface Closeable {
}
interface Stream extends Readable, Closeable {
}
class File extends Object implements Stream {
  method read(this2 : Readable) : void {
  }
}
class Sock extends File {
}
class Main extends Object {
  static method main() : void {
    var f : File
    var r : Readable
    f = new File()
    r = f
    r.read(r)
  }
}
entry Main.main
|}
  in
  let p = Jparser.parse src in
  let file = Option.get (Ir.find_class p "File") in
  let sock = Option.get (Ir.find_class p "Sock") in
  let readable = Option.get (Ir.find_class p "Readable") in
  let stream = Option.get (Ir.find_class p "Stream") in
  let closeable = Option.get (Ir.find_class p "Closeable") in
  Alcotest.(check bool) "File : Stream" true (Hier.assignable p stream file);
  Alcotest.(check bool) "File : Readable via extends" true (Hier.assignable p readable file);
  Alcotest.(check bool) "Sock inherits conformance" true (Hier.assignable p closeable sock);
  Alcotest.(check bool) "Readable not assignable from Main" false
    (Hier.assignable p readable (Option.get (Ir.find_class p "Main")));
  Alcotest.(check bool) "interface not assignable to class" false (Hier.assignable p file readable);
  (* aT includes the interface rows. *)
  let fg = Factgen.extract ~local_opt:false p in
  let at = List.assoc "aT" fg.Factgen.relations in
  Alcotest.(check bool) "aT(Readable, Sock)" true (List.mem [ readable; sock ] at);
  (* Interfaces cannot be instantiated. *)
  (match Jparser.parse "interface I {}\nclass M extends Object { static method main() : void { var x : I\nx = new I() } }\nentry M.main" with
  | exception Jparser.Parse_error _ -> ()
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of interface instantiation");
  (* Round-trip. *)
  let p2 = Jparser.parse (Jprinter.to_string p) in
  Alcotest.(check int) "classes preserved" (Ir.num_classes p) (Ir.num_classes p2);
  Alcotest.(check bool) "interface flag preserved" true
    (Ir.cls p2 (Option.get (Ir.find_class p2 "Stream"))).Ir.cls_interface

let test_profiles () =
  Alcotest.(check int) "21 benchmarks" 21 (List.length Synth.Profiles.all);
  let pmd = Option.get (Synth.Profiles.find "pmd") in
  Alcotest.(check string) "pmd paths" "5e23" pmd.Synth.Profiles.paper_paths;
  Alcotest.(check bool) "pmd single-threaded" true pmd.Synth.Profiles.single_threaded;
  let params = Synth.Profiles.params ~scale:0.02 pmd in
  Alcotest.(check bool) "pmd fan-out is widest" true (params.Synth.Generator.calls_per_method >= 5);
  let p = Synth.Generator.generate params in
  Alcotest.(check bool) "generates" true (Ir.num_methods p > 10)

let () =
  Alcotest.run "jir"
    [
      ( "parser",
        [
          Alcotest.test_case "counts" `Quick test_parse_counts;
          Alcotest.test_case "hierarchy" `Quick test_hierarchy;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "printer roundtrip" `Quick test_printer_roundtrip;
          Alcotest.test_case "redeclare init" `Quick test_redeclare_init;
        ] );
      ( "local_opt",
        [
          Alcotest.test_case "copy chains removed" `Quick test_local_opt;
          Alcotest.test_case "redefinition kills" `Quick test_local_opt_kill;
        ] );
      ( "factgen",
        [
          Alcotest.test_case "tuples" `Quick test_factgen_tuples;
          Alcotest.test_case "domains" `Quick test_factgen_domains;
        ] );
      ( "synth",
        [
          Alcotest.test_case "generator sanity" `Quick test_generator_sanity;
          Alcotest.test_case "generator roundtrip" `Quick test_generator_roundtrip;
          Alcotest.test_case "arrays and exceptions" `Quick test_arrays_and_exceptions;
          Alcotest.test_case "interfaces" `Quick test_interfaces;
          Alcotest.test_case "profiles" `Quick test_profiles;
        ] );
    ]
