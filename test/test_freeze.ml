(* Differential unit suite for [Bdd.freeze] / [Bdd.eval_ctx]: the
   frozen snapshot plus per-domain evaluation contexts that back the
   parallel warm-query daemon.

   Ground truth is the *live* manager: every ctx operation is mirrored
   by the corresponding live kernel and both results are compared as
   explicit satisfying-assignment sets (14 variables, so full
   enumeration is cheap).  Covered:

   - frozen handles evaluate identically before and after the live
     manager is mutated and collected (snapshot isolation);
   - a long random op sequence (and/or/diff/not/exist/relprod) in a
     ctx matches the live kernels, across [ctx_reset]s, with the
     sequence replayed twice to pin determinism;
   - >= 3 ctxs over one frozen space evaluate the same op sequence
     concurrently (one domain each) and agree bit-for-bit;
   - [ctx_satcount] / [ctx_const_value] / [ctx_cube_of_vars]
     differentials, and the per-ctx budget kill + recovery. *)

let nvars = 14
let all_vars = Array.init nvars Fun.id

(* Semantic fingerprint: sorted satisfying assignments as bitmasks. *)
let mask_of bits =
  let m = ref 0 in
  Array.iteri (fun i b -> if b then m := !m lor (1 lsl i)) bits;
  !m

let sats_live man f =
  let acc = ref [] in
  Bdd.iter_sat man ~vars:all_vars (fun bits -> acc := mask_of bits :: !acc) f;
  List.sort compare !acc

let sats_ctx ctx f =
  let acc = ref [] in
  Bdd.ctx_iter_sat ctx ~vars:all_vars (fun bits -> acc := mask_of bits :: !acc) f;
  List.sort compare !acc

(* A pool of rooted BDDs over a fresh manager: all literals plus
   [extra] random combinations. *)
let build_pool rng man extra =
  let pool = ref [] in
  let add f = pool := f :: !pool in
  for i = 0 to nvars - 1 do
    add (Bdd.ithvar man i);
    add (Bdd.nithvar man i)
  done;
  for _ = 1 to extra do
    let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
    add
      (match Random.State.int rng 5 with
      | 0 -> Bdd.mk_and man (pick ()) (pick ())
      | 1 -> Bdd.mk_or man (pick ()) (pick ())
      | 2 -> Bdd.mk_diff man (pick ()) (pick ())
      | 3 -> Bdd.mk_xor man (pick ()) (pick ())
      | _ -> Bdd.mk_not man (pick ()))
  done;
  Bdd.add_root_fn man (fun () -> !pool);
  pool

let setup ?(extra = 60) seed =
  let rng = Random.State.make [| seed |] in
  let man = Bdd.create ~node_hint:256 ~nvars () in
  let pool = build_pool rng man extra in
  (rng, man, Array.of_list !pool)

(* --- snapshot isolation --------------------------------------------- *)

let test_frozen_matches_live () =
  let rng, man, pool = setup 0xF7EE2E in
  (* Unrooted garbage, so the freeze-time GC has something to sweep. *)
  for _ = 1 to 50 do
    ignore (Bdd.mk_and man pool.(Random.State.int rng (Array.length pool)) (Bdd.ithvar man 0))
  done;
  let reference = Array.map (sats_live man) pool in
  let fz = Bdd.freeze man in
  Alcotest.(check int) "frozen nvars" nvars (Bdd.frozen_nvars fz);
  Alcotest.(check bool) "frozen live nodes positive" true (Bdd.frozen_live_nodes fz > 0);
  let ctx = Bdd.eval_ctx fz in
  Array.iteri
    (fun i f -> Alcotest.(check (list int)) (Printf.sprintf "pool %d via ctx" i) reference.(i) (sats_ctx ctx f))
    pool;
  (* Mutate and collect the live manager: the snapshot must not move. *)
  for _ = 1 to 200 do
    ignore
      (Bdd.mk_or man
         pool.(Random.State.int rng (Array.length pool))
         (Bdd.mk_not man pool.(Random.State.int rng (Array.length pool))))
  done;
  Bdd.gc man;
  Array.iteri
    (fun i f ->
      Alcotest.(check (list int))
        (Printf.sprintf "pool %d via ctx after live churn+gc" i)
        reference.(i) (sats_ctx ctx f))
    pool;
  (* And the live handles still answer the same too (roots held). *)
  Array.iteri
    (fun i f -> Alcotest.(check (list int)) (Printf.sprintf "pool %d live" i) reference.(i) (sats_live man f))
    pool

(* --- random op differential, live kernels as oracle ------------------ *)

(* One op described abstractly so it can be interpreted against the
   live manager, a ctx, or several ctxs in different domains. *)
type op =
  | Op2 of int * int * int (* kernel 0=and 1=or 2=diff, operand indices *)
  | Op_not of int
  | Op_exist of int * int list (* operand, cube vars *)
  | Op_relprod of int * int * int list

let random_ops rng pool_len count =
  (* Operand indices may also point at results of earlier ops:
     index < pool_len + k for the k-th op. *)
  List.init count (fun k ->
      let pick () = Random.State.int rng (pool_len + k) in
      let cube () =
        List.sort_uniq compare (List.init (1 + Random.State.int rng 3) (fun _ -> Random.State.int rng nvars))
      in
      match Random.State.int rng 6 with
      | 0 -> Op2 (0, pick (), pick ())
      | 1 -> Op2 (1, pick (), pick ())
      | 2 -> Op2 (2, pick (), pick ())
      | 3 -> Op_not (pick ())
      | 4 -> Op_exist (pick (), cube ())
      | _ -> Op_relprod (pick (), pick (), cube ()))

let run_ops_live man pool ops =
  let results = ref [] in
  Bdd.add_root_fn man (fun () -> !results);
  let vals = ref (Array.to_list pool) in
  let get i = List.nth !vals i in
  List.iter
    (fun op ->
      let f =
        match op with
        | Op2 (0, i, j) -> Bdd.mk_and man (get i) (get j)
        | Op2 (1, i, j) -> Bdd.mk_or man (get i) (get j)
        | Op2 (_, i, j) -> Bdd.mk_diff man (get i) (get j)
        | Op_not i -> Bdd.mk_not man (get i)
        | Op_exist (i, vs) -> Bdd.exist man ~cube:(Bdd.cube_of_vars man vs) (get i)
        | Op_relprod (i, j, vs) -> Bdd.relprod man ~cube:(Bdd.cube_of_vars man vs) (get i) (get j)
      in
      results := f :: !results;
      vals := !vals @ [ f ])
    ops;
  List.map (sats_live man) (List.rev !results)

let run_ops_ctx ctx pool ops =
  let vals = ref (Array.to_list pool) in
  let get i = List.nth !vals i in
  let sats = ref [] in
  List.iter
    (fun op ->
      let f =
        match op with
        | Op2 (0, i, j) -> Bdd.ctx_and ctx (get i) (get j)
        | Op2 (1, i, j) -> Bdd.ctx_or ctx (get i) (get j)
        | Op2 (_, i, j) -> Bdd.ctx_diff ctx (get i) (get j)
        | Op_not i -> Bdd.ctx_not ctx (get i)
        | Op_exist (i, vs) -> Bdd.ctx_exist ctx ~cube:(Bdd.ctx_cube_of_vars ctx vs) (get i)
        | Op_relprod (i, j, vs) ->
          Bdd.ctx_relprod ctx ~cube:(Bdd.ctx_cube_of_vars ctx vs) (get i) (get j)
      in
      sats := sats_ctx ctx f :: !sats;
      vals := !vals @ [ f ])
    ops;
  List.rev !sats

let test_ctx_differential () =
  let rng, man, pool = setup 0xD1FF in
  let fz = Bdd.freeze man in
  let ctx = Bdd.eval_ctx fz in
  (* Three rounds against the live oracle, resetting the ctx between
     rounds: every round restarts from frozen handles only, so reset
     correctness (dead arena, swept cache) is on the line each time. *)
  for round = 1 to 3 do
    let ops = random_ops rng (Array.length pool) 70 in
    let live = run_ops_live man pool ops in
    let via_ctx = run_ops_ctx ctx pool ops in
    List.iteri
      (fun i (l, c) ->
        Alcotest.(check (list int)) (Printf.sprintf "round %d op %d" round i) l c)
      (List.combine live via_ctx);
    (* Determinism: replaying the identical sequence on a fresh ctx
       reproduces the same answers. *)
    let fresh = Bdd.eval_ctx fz in
    Alcotest.(check bool)
      (Printf.sprintf "round %d replay on fresh ctx identical" round)
      true
      (run_ops_ctx fresh pool ops = via_ctx);
    Bdd.ctx_reset ctx
  done;
  Alcotest.(check int) "reset leaves no ctx-local nodes" 0 (Bdd.ctx_live_nodes ctx)

(* --- concurrent ctxs -------------------------------------------------- *)

let test_concurrent_ctxs () =
  let rng, man, pool = setup 0xC0C0 in
  let fz = Bdd.freeze man in
  let ops = random_ops rng (Array.length pool) 60 in
  let reference = run_ops_live man pool ops in
  let n_ctxs = 4 in
  let domains =
    List.init n_ctxs (fun _ ->
        Stdlib.Domain.spawn (fun () ->
            let ctx = Bdd.eval_ctx fz in
            run_ops_ctx ctx pool ops))
  in
  let transcripts = List.map Stdlib.Domain.join domains in
  List.iteri
    (fun d transcript ->
      Alcotest.(check bool) (Printf.sprintf "ctx %d agrees with live oracle" d) true (transcript = reference))
    transcripts

(* --- counting, constants, budget ------------------------------------- *)

let test_ctx_counting_and_budget () =
  let rng, man, pool = setup ~extra:40 0x5A7C0 in
  let fz = Bdd.freeze man in
  let ctx = Bdd.eval_ctx fz in
  Array.iteri
    (fun i f ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "satcount pool %d" i)
        (Bdd.satcount man ~vars:all_vars f)
        (Bdd.ctx_satcount ctx ~vars:all_vars f))
    pool;
  (* const_value over a random 6-bit block agrees with the live one. *)
  let bits = Array.init 6 (fun i -> 2 * i) in
  for v = 0 to 63 do
    ignore (Random.State.int rng 2);
    Alcotest.(check (list int))
      (Printf.sprintf "const_value %d" v)
      (sats_live man (Bdd.const_value man ~bits v))
      (sats_ctx ctx (Bdd.ctx_const_value ctx ~bits v))
  done;
  (* Budget: a cap resolved against the ctx's counters kills a fresh
     build at the amortized check site; after reset + uncapping the
     same build succeeds, from a clean arena. *)
  let build c =
    (* A deliberately wide disjunction of two-block value pairs:
       thousands of fresh intermediate nodes, enough to cross the
       amortized budget-check interval several times. *)
    let evens = Array.init 7 (fun k -> 2 * k) and odds = Array.init 7 (fun k -> (2 * k) + 1) in
    let acc = ref Bdd.bdd_false in
    for i = 0 to 2999 do
      (* A mixed 14-bit value per step: ~3k distinct points, so the
         growing union keeps allocating instead of cache-hitting. *)
      let v = i * 2654435761 land 16383 in
      let pair =
        Bdd.ctx_and c
          (Bdd.ctx_const_value c ~bits:evens (v land 127))
          (Bdd.ctx_const_value c ~bits:odds (v lsr 7))
      in
      acc := Bdd.ctx_or c !acc pair
    done;
    !acc
  in
  Bdd.ctx_set_budget ctx (Some (Budget.make ~max_allocations:(Bdd.ctx_allocations ctx + 8) ()));
  let killed = match build ctx with _ -> false | exception Bdd.Limit_exceeded _ -> true in
  Alcotest.(check bool) "tight ctx budget kills the build" true killed;
  Bdd.ctx_set_budget ctx None;
  Bdd.ctx_reset ctx;
  let full = build ctx in
  Alcotest.(check bool) "recovered build is non-trivial" true (Bdd.ctx_satcount ctx ~vars:all_vars full > 0.0)

let () =
  Alcotest.run "freeze"
    [
      ( "frozen",
        [ Alcotest.test_case "frozen eval matches live, isolated from churn" `Quick test_frozen_matches_live ] );
      ( "ctx",
        [
          Alcotest.test_case "random ops vs live kernels across resets" `Quick test_ctx_differential;
          Alcotest.test_case "satcount/const_value differential + budget kill" `Quick
            test_ctx_counting_and_budget;
        ] );
      ( "concurrent",
        [ Alcotest.test_case "4 ctxs, 1 frozen space, identical answers" `Quick test_concurrent_ctxs ] );
    ]
