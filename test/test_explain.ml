(* Golden-plan tests: the optimized query plans Engine.explain prints
   for Algorithm 1 and Algorithm 5 over a fixed sample program are
   committed under test/golden/.  A diff means the planner or a pass
   changed — inspect it, and if intentional regenerate with

     dune exec bin/ptacli.exe -- explain sample.jir --algo cha-nofilter \
       > test/golden/explain_algo1.txt
     dune exec bin/ptacli.exe -- explain sample.jir --algo cs \
       > test/golden/explain_algo5.txt

   where sample.jir holds the program text below. *)

module Factgen = Jir.Factgen
module Analyses = Pta.Analyses

let sample_src =
  {|
class A extends Object {
  field f : Object
  method set(v : Object) : void {
    this.f = v
  }
  method get() : Object {
    var r : Object
    r = this.f
    return r
  }
}
class W extends Thread {
  method run() : void {
    var o : Object
    o = new Object() @ "TL"
    sync o
  }
}
class Main extends Object {
  static method main() : void {
    var a : A
    var o : Object
    var r : Object
    var w : W
    a = new A() @ "A0"
    o = new Object() @ "O0"
    a.set(o)
    r = a.get()
    w = new W() @ "W0"
    w.start()
  }
}
entry Main.main
|}

let fg () = Factgen.extract (Jir.Jparser.parse sample_src)

let read_golden name =
  let path = Filename.concat "golden" name in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden name eng =
  let actual = Format.asprintf "%a" Engine.explain eng in
  let expected = read_golden name in
  if actual <> expected then
    Alcotest.failf "explain output differs from golden/%s; actual output:\n%s" name actual

let test_algo1 () =
  let eng, _ = Analyses.prepare_basic ~algo:Analyses.Algo1 (fg ()) in
  check_golden "explain_algo1.txt" eng

let test_algo5 () =
  (* The same construction as `ptacli explain --algo cs`: discover the
     call graph (Algorithm 3), number contexts, prepare Algorithm 5. *)
  let fg = fg () in
  let ci = Analyses.run_basic ~algo:Analyses.Algo3 fg in
  let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples ci) in
  let eng, _ = Analyses.prepare_cs fg ctx in
  check_golden "explain_algo5.txt" eng

let () =
  Alcotest.run "explain"
    [
      ( "golden",
        [
          Alcotest.test_case "algorithm 1 plans" `Quick test_algo1;
          Alcotest.test_case "algorithm 5 plans" `Quick test_algo5;
        ] );
    ]
