(* Differential testing of the BDD engine against the naive evaluator
   on randomly generated Datalog programs: random (stratified) rules
   over two domains with duplicate variables, wildcards, constants,
   comparisons and negation-on-inputs, solved over random input tuples
   under every combination of engine optimizations. *)

open QCheck2

let d0_size = 4
let d1_size = 5

(* Relation name -> attribute domains ("D0"/"D1"). *)
let schema =
  [
    ("in0", [ "D0" ]);
    ("in1", [ "D0"; "D1" ]);
    ("in2", [ "D1"; "D1" ]);
    ("r0", [ "D0"; "D1" ]);
    ("r1", [ "D0" ]);
    ("r2", [ "D1"; "D1" ]);
  ]

let derived = [ "r0"; "r1"; "r2" ]
let inputs = [ "in0"; "in1"; "in2" ]

let decls =
  {
    Ast.domains =
      [
        { Ast.dom_name = "D0"; dom_size = d0_size; dom_map = None };
        { Ast.dom_name = "D1"; dom_size = d1_size; dom_map = None };
      ];
    var_order = None;
    relations =
      List.map
        (fun (name, doms) ->
          {
            Ast.rel_name = name;
            rel_kind = (if List.mem name inputs then Ast.Input else Ast.Output);
            rel_attrs = List.mapi (fun i d -> (Printf.sprintf "a%d" i, d)) doms;
          })
        schema;
    rules = [];
  }

let var_pool = function
  | "D0" -> [ "x0"; "x1"; "x2" ]
  | _ -> [ "y0"; "y1"; "y2" ]

let dom_size = function
  | "D0" -> d0_size
  | _ -> d1_size

(* One random positive atom; returns the atom and the variables it
   binds (with their domains). *)
let gen_pos_atom =
  Gen.(
    let* name, doms = oneofl schema in
    let* args =
      flatten_l
        (List.map
           (fun d ->
             let* choice = int_bound 9 in
             if choice < 6 then
               let* v = oneofl (var_pool d) in
               return (Ast.Var v)
             else if choice < 8 then
               let* c = int_bound (dom_size d - 1) in
               return (Ast.Const (string_of_int c))
             else return Ast.Wildcard)
           doms)
    in
    return { Ast.pred = name; args })

let bound_vars_of atoms =
  List.concat_map
    (fun (a : Ast.atom) ->
      let _, doms = List.assoc a.Ast.pred (List.map (fun (n, d) -> (n, (n, d))) schema) in
      List.filteri (fun _ _ -> true) (List.map2 (fun arg d ->
          match arg with
          | Ast.Var v -> Some (v, d)
          | Ast.Const _ | Ast.Wildcard -> None)
        a.Ast.args doms)
      |> List.filter_map (fun x -> x))
    atoms

let gen_rule =
  Gen.(
    let* n_atoms = int_range 1 3 in
    let* atoms = list_repeat n_atoms gen_pos_atom in
    let bound = bound_vars_of atoms in
    let bound_in d = List.filter (fun (_, dd) -> dd = d) bound |> List.map fst in
    (* Optional comparison among bound variables of one domain. *)
    let* cmp =
      let* want = bool in
      if not want then return []
      else
        let* d = oneofl [ "D0"; "D1" ] in
        match List.sort_uniq compare (bound_in d) with
        | [] -> return []
        | [ v ] ->
          let* c = int_bound (dom_size d - 1) in
          let* op = oneofl [ Ast.Eq; Ast.Neq ] in
          return [ Ast.Cmp (Ast.Var v, op, Ast.Const (string_of_int c)) ]
        | v1 :: v2 :: _ ->
          let* op = oneofl [ Ast.Eq; Ast.Neq ] in
          return [ Ast.Cmp (Ast.Var v1, op, Ast.Var v2) ]
    in
    (* Optional negation over an input relation using bound variables. *)
    let* neg =
      let* want = bool in
      if not want then return []
      else
        let* name = oneofl inputs in
        let doms = List.assoc name schema in
        let* args =
          flatten_l
            (List.map
               (fun d ->
                 match bound_in d with
                 | [] -> Gen.return Ast.Wildcard
                 | vs ->
                   let* use_var = bool in
                   if use_var then
                     let* v = oneofl vs in
                     return (Ast.Var v)
                   else return Ast.Wildcard)
               doms)
        in
        return [ Ast.Neg { Ast.pred = name; args } ]
    in
    (* Head over a derived relation, arguments drawn from bound
       variables (falling back to constants). *)
    let* head_name = oneofl derived in
    let head_doms = List.assoc head_name schema in
    let* head_args =
      flatten_l
        (List.map
           (fun d ->
             match bound_in d with
             | [] ->
               let* c = int_bound (dom_size d - 1) in
               return (Ast.Const (string_of_int c))
             | vs ->
               let* pick_const = int_bound 9 in
               if pick_const < 2 then
                 let* c = int_bound (dom_size d - 1) in
                 return (Ast.Const (string_of_int c))
               else
                 let* v = oneofl vs in
                 return (Ast.Var v))
           head_doms)
    in
    return
      {
        Ast.head = { Ast.pred = head_name; args = head_args };
        body = List.map (fun a -> Ast.Pos a) atoms @ cmp @ neg;
        rule_pos = None;
      })

let gen_tuples arity sizes =
  Gen.(list_size (int_range 0 10) (flatten_l (List.init arity (fun i -> int_bound (List.nth sizes i - 1)))))

let gen_case =
  Gen.(
    let* n_rules = int_range 1 6 in
    let* rules = list_repeat n_rules gen_rule in
    let* t0 = gen_tuples 1 [ d0_size ] in
    let* t1 = gen_tuples 2 [ d0_size; d1_size ] in
    let* t2 = gen_tuples 2 [ d1_size; d1_size ] in
    return ({ decls with Ast.rules }, [ ("in0", t0); ("in1", t1); ("in2", t2) ]))

let print_case (program, tuples) =
  Format.asprintf "%a@.inputs: %s" Ast.pp_program program
    (String.concat "; "
       (List.map
          (fun (n, ts) ->
            Printf.sprintf "%s = {%s}" n (String.concat ", " (List.map (fun t -> String.concat " " (List.map string_of_int t)) ts)))
          tuples))

let run_case options (program, tuples) =
  let eng = Engine.create ~options program in
  List.iter (fun (name, ts) -> Engine.set_tuples eng name (List.map Array.of_list ts)) tuples;
  ignore (Engine.run eng);
  List.map
    (fun name -> (name, List.sort compare (List.map Array.to_list (Relation.tuples (Engine.relation eng name)))))
    derived

let naive_case (program, tuples) =
  let r = Naive_eval.solve program ~inputs:tuples in
  List.map (fun name -> (name, Naive_eval.tuples r name)) derived

let make_prop name options =
  Test.make ~name ~count:250 ~print:print_case gen_case (fun case ->
      match naive_case case with
      | exception Stratify.Not_stratified _ -> true
      | expected -> run_case options case = expected)

(* IR-level differential: run the BDD executor and the tuple-level
   reference executor over the *same* optimized IR (the plans the
   engine compiled, via {!Engine.ir_plans}), and require identical
   tuple sets — plus agreement with the independent naive oracle. *)
let ir_case options (program, tuples) =
  let eng = Engine.create ~options program in
  List.iter (fun (name, ts) -> Engine.set_tuples eng name (List.map Array.of_list ts)) tuples;
  ignore (Engine.run eng);
  let bdd =
    List.map
      (fun name -> (name, List.sort compare (List.map Array.to_list (Relation.tuples (Engine.relation eng name)))))
      derived
  in
  let r = Naive_eval.solve_ir ~plans:(Engine.ir_plans eng) program ~inputs:tuples in
  let ref_exec = List.map (fun name -> (name, Naive_eval.tuples r name)) derived in
  (bdd, ref_exec)

let make_ir_prop name options =
  Test.make ~name ~count:250 ~print:print_case gen_case (fun case ->
      match naive_case case with
      | exception Stratify.Not_stratified _ -> true
      | expected ->
        let bdd, ref_exec = ir_case options case in
        bdd = ref_exec && bdd = expected)

let default = Engine.default_options

let prop_default = make_prop "random programs: engine = naive (default opts)" default
let prop_no_seminaive = make_prop "random programs (no semi-naive)" { default with Engine.semi_naive = false }
let prop_no_hoist = make_prop "random programs (no hoisting)" { default with Engine.hoist = false }
let prop_no_greedy = make_prop "random programs (no greedy blocks)" { default with Engine.greedy_blocks = false }
let prop_gc_every_rule = make_prop "random programs (gc every rule)" { default with Engine.gc_interval = 1 }
let prop_reorder = make_prop "random programs (join reordering)" { default with Engine.reorder_joins = true }

let ir_props =
  [
    make_ir_prop "same IR: bdd = reference (default opts)" default;
    make_ir_prop "same IR (no naming)" { default with Engine.greedy_blocks = false };
    make_ir_prop "same IR (join reordering)" { default with Engine.reorder_joins = true };
    make_ir_prop "same IR (no pushdown)" { default with Engine.pushdown = false };
    make_ir_prop "same IR (no semi-naive)" { default with Engine.semi_naive = false };
    make_ir_prop "same IR (no hoisting)" { default with Engine.hoist = false };
    make_ir_prop "same IR (all passes off)"
      {
        default with
        Engine.greedy_blocks = false;
        reorder_joins = false;
        pushdown = false;
        semi_naive = false;
        hoist = false;
      };
    make_ir_prop "same IR (all passes on)"
      {
        default with
        Engine.greedy_blocks = true;
        reorder_joins = true;
        pushdown = true;
        semi_naive = true;
        hoist = true;
      };
  ]

let () =
  Alcotest.run "datalog_random"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_default; prop_no_seminaive; prop_no_hoist; prop_no_greedy; prop_gc_every_rule; prop_reorder ] );
      ("ir-differential", List.map QCheck_alcotest.to_alcotest ir_props);
    ]
