(* Soak test for the hardened request path ([Pta.Serve.serve_line]):
   a mid-size hand-built points-to store takes ~1k mixed queries —
   valid, malformed, unknown names, budget-blowing, and one that
   raises an unexpected exception — and the server must

   - answer every valid query identically to an independent tuple-list
     oracle,
   - kill over-budget requests with [err budget] and answer the very
     next query correctly,
   - contain unexpected exceptions to [err internal] + connection
     close (the firewall), never a crash,
   - keep its file-descriptor count flat, and
   - keep its stats counters consistent with what was served. *)

module Serve = Pta.Serve

let tmp_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "whalelam-%s-%d" name (Unix.getpid ())) in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  dir

let count_fds () =
  if Sys.file_exists "/proc/self/fd" then Some (Array.length (Sys.readdir "/proc/self/fd")) else None

let nv = 48
let nh = 131072

(* The oracle: plain (var, heap) tuple lists, built once, queried with
   list operations — no BDDs anywhere near it. *)
let heaps_of = Array.make nv []

let tuples =
  let rng = Random.State.make [| 0x5EED; 42 |] in
  let tbl = Hashtbl.create 4096 in
  (* v0 and v1 each point to 60k random heaps in a sparse 128k domain: [alias v0 v1]
     must then build a large fresh intersection BDD — the
     budget-blowing query (warm point lookups barely allocate). *)
  for v = 0 to 1 do
    let start = Hashtbl.length tbl in
    while Hashtbl.length tbl - start < 60000 do
      Hashtbl.replace tbl (v, Random.State.int rng nh) ()
    done
  done;
  (* Every other variable points to a handful. *)
  for v = 2 to nv - 1 do
    for _ = 1 to 1 + Random.State.int rng 8 do
      Hashtbl.replace tbl (v, Random.State.int rng nh) ()
    done
  done;
  let all = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []) in
  List.iter (fun (v, h) -> heaps_of.(v) <- h :: heaps_of.(v)) all;
  all

let store_dir =
  lazy
    (let dir = tmp_dir "serve-soak" in
     let sp = Space.create () in
     let vdom = Domain.make ~name:"V" ~size:nv ~element_names:(Array.init nv (Printf.sprintf "v%d")) () in
     let hdom = Domain.make ~name:"H" ~size:nh ~element_names:(Array.init nh (Printf.sprintf "h%d")) () in
     let vb = Space.alloc sp vdom and hb = Space.alloc sp hdom in
     let vp =
       Relation.of_tuples sp ~name:"vP"
         [ { Relation.attr_name = "variable"; block = vb }; { Relation.attr_name = "heap"; block = hb } ]
         (List.map (fun (v, h) -> [| v; h |]) tuples)
     in
     (* A "modset" relation *without* a "method" attribute: [modref]
        queries against it raise Not_found deep inside [handle] — the
        protocol-reachable trigger for the exception firewall. *)
     let modset =
       Relation.of_tuples sp ~name:"modset"
         [ { Relation.attr_name = "x"; block = vb }; { Relation.attr_name = "y"; block = hb } ]
         [ [| 1; 2 |] ]
     in
     Store.save ~dir ~key:"soak-key" ~config:[] ~space:sp ~relations:[ vp; modset ];
     dir)

let heap_names hs = List.map (Printf.sprintf "h%d") hs
let sorted = List.sort compare

(* Generous budgets that every request runs under without tripping;
   tight ones that the v0 fan-out must blow. *)
let roomy = { Serve.rq_timeout_s = Some 30.0; rq_max_allocs = Some 2_000_000; rq_max_nodes = None }
let tight = { Serve.rq_timeout_s = Some 30.0; rq_max_allocs = Some 64; rq_max_nodes = None }

let check_valid (o : Serve.outcome) q =
  if not o.Serve.ok then Alcotest.failf "query %S failed: %s" q (String.concat " | " o.Serve.lines)

let check_points_to (o : Serve.outcome) q v =
  check_valid o q;
  Alcotest.(check (list string)) ("answer: " ^ q) (sorted (heap_names heaps_of.(v))) (sorted o.Serve.lines)

let check_alias (o : Serve.outcome) q v1 v2 =
  check_valid o q;
  let shared = List.filter (fun h -> List.mem h heaps_of.(v2)) heaps_of.(v1) in
  (match o.Serve.lines with
  | head :: rest ->
    Alcotest.(check string) ("verdict: " ^ q) (if shared = [] then "no" else "yes") head;
    Alcotest.(check (list string)) ("heaps: " ^ q) (sorted (heap_names shared)) (sorted rest)
  | [] -> Alcotest.failf "query %S: empty reply" q)

let check_leak (o : Serve.outcome) q h =
  check_valid o q;
  let vars = List.filter (fun v -> List.mem h heaps_of.(v)) (List.init nv Fun.id) in
  Alcotest.(check (list string)) ("answer: " ^ q) (sorted (List.map (Printf.sprintf "v%d") vars)) (sorted o.Serve.lines)

let test_soak () =
  let st = Store.load ~dir:(Lazy.force store_dir) in
  let srv = Serve.make st in
  let stats = Serve.make_stats () in
  let ctx = Serve.new_ctx srv in
  let ask ?(limits = roomy) line = Serve.serve_line ~limits ~stats srv ctx line in
  let fd0 = count_fds () in
  let rng = Random.State.make [| 0xBADCAFE |] in
  let malformed =
    [| ""; "   "; "# just a comment"; "bogus"; "points-to"; "alias v1"; "points-to nosuchvar"; "leak h999999"; "count nope"; "vuln"; "refine" |]
  in
  let expected_served = ref 0 in
  let soak_rounds = 1000 in
  for i = 1 to soak_rounds do
    (* Normal-pool variables exclude the two fan-out ones. *)
    let rv ?(lo = 2) () = lo + Random.State.int rng (nv - lo) in
    match i mod 10 with
    | 0 | 1 | 2 ->
      let v = rv () in
      let q = Printf.sprintf "points-to v%d" v in
      incr expected_served;
      check_points_to (ask q).Serve.outcome q v
    | 3 | 4 ->
      let v1 = rv () and v2 = rv () in
      let q = Printf.sprintf "alias v%d v%d" v1 v2 in
      incr expected_served;
      check_alias (ask q).Serve.outcome q v1 v2
    | 5 ->
      (* A heap some variable really points to, so leak lists are
         usually non-empty. *)
      let v = rv () in
      let h = List.nth heaps_of.(v) (Random.State.int rng (List.length heaps_of.(v))) in
      let q = Printf.sprintf "leak h%d" h in
      incr expected_served;
      check_leak (ask q).Serve.outcome q h
    | 6 ->
      incr expected_served;
      let o = (ask "count vP").Serve.outcome in
      check_valid o "count vP";
      Alcotest.(check (list string)) "count vP" [ Printf.sprintf "vP %d" (List.length tuples) ] o.Serve.lines
    | 7 | 8 ->
      (* Malformed / unknown input: the reply is an error, the server
         survives, and the connection stays open. *)
      let q = malformed.(Random.State.int rng (Array.length malformed)) in
      let s = ask q in
      if not (s.Serve.outcome.Serve.command = "" && s.Serve.outcome.Serve.lines = []) then begin
        incr expected_served;
        Alcotest.(check bool) (Printf.sprintf "%S is an error" q) false s.Serve.outcome.Serve.ok
      end;
      Alcotest.(check bool) (Printf.sprintf "%S does not close" q) false s.Serve.close
    | _ ->
      incr expected_served;
      let q = if i mod 2 = 0 then "health" else "stats" in
      let o = (ask q).Serve.outcome in
      check_valid o q;
      if q = "health" then
        Alcotest.(check string) "health status" "status ok" (List.hd o.Serve.lines)
  done;
  (* Budget isolation: the fan-out query dies with [err budget] under
     tight limits, and the very next (normal) query still answers
     correctly off a clean baseline. *)
  for _ = 1 to 25 do
    let s = ask ~limits:tight "alias v0 v1" in
    incr expected_served;
    Alcotest.(check string) "budget kill" "budget" s.Serve.outcome.Serve.command;
    Alcotest.(check bool) "budget kill is an error" false s.Serve.outcome.Serve.ok;
    Alcotest.(check bool) "budget kill keeps the connection" false s.Serve.close;
    let v = 2 + Random.State.int rng (nv - 2) in
    let q = Printf.sprintf "points-to v%d" v in
    incr expected_served;
    check_points_to (ask q).Serve.outcome q v
  done;
  Alcotest.(check bool) "budget kills recorded" true (Atomic.get stats.Serve.s_budget_kills >= 25);
  (* The untight fan-out still works: correctness is not sacrificed. *)
  incr expected_served;
  check_points_to (ask "points-to v0").Serve.outcome "points-to v0" 0;
  (* Firewall: the crafted modset relation makes [modref] raise
     Not_found inside evaluation; the reply is [err internal] with a
     connection close, and the server keeps answering. *)
  for _ = 1 to 3 do
    let s = ask "modref v1" in
    incr expected_served;
    Alcotest.(check string) "firewall reply" "internal" s.Serve.outcome.Serve.command;
    Alcotest.(check bool) "firewall closes the connection" true s.Serve.close;
    incr expected_served;
    check_points_to (ask "points-to v3").Serve.outcome "points-to v3" 3
  done;
  Alcotest.(check int) "firewall trips recorded" 3 (Atomic.get stats.Serve.s_firewall_trips);
  (* Descriptor stability across the whole soak. *)
  (match (fd0, count_fds ()) with
  | Some before, Some after -> Alcotest.(check int) "fd count stable" before after
  | _ -> ());
  (* Stats consistency. *)
  Alcotest.(check int) "queries counted" !expected_served (Atomic.get stats.Serve.s_queries);
  Alcotest.(check int) "ok + err = queries" (Atomic.get stats.Serve.s_queries)
    (Atomic.get stats.Serve.s_ok + Atomic.get stats.Serve.s_err);
  let latency_total =
    Hashtbl.fold (fun _ (l : Serve.latency) acc -> acc + l.Serve.l_count) stats.Serve.s_latency 0
  in
  Alcotest.(check int) "latency rows cover every query" (Atomic.get stats.Serve.s_queries) latency_total;
  let lines = Serve.stats_lines stats in
  Alcotest.(check bool) "stats_lines mentions budget kills" true
    (List.exists
       (fun l -> l = Printf.sprintf "budget-exceeded %d" (Atomic.get stats.Serve.s_budget_kills))
       lines)

(* --- Parallel soak --------------------------------------------------

   Eight concurrent "clients" (domains), each with its own evaluation
   ctx, run the *same* deterministic 1k mixed valid/malformed query
   mix plus a tail of budget-kill and firewall pairs.  Over a frozen
   space a given query sequence on a fresh ctx is fully deterministic
   — including budget-kill messages — so every domain's full answer
   transcript must be bit-identical to the single-threaded reference
   run, the shared stats must add up exactly, and the fd count must
   stay flat (no hidden per-domain descriptors). *)

let n_clients = 8
let kill_pairs = 5
let firewall_pairs = 2

(* The deterministic mix: (line, use_tight_limits).  No [health] or
   [stats] here — their replies embed wall-clock uptime, which would
   break bit-identical comparison.  Malformed entries are all
   non-silent so the served-query count per run is deterministic. *)
let parallel_mix =
  lazy
    (let rng = Random.State.make [| 0xC0FFEE |] in
     let rv ?(lo = 2) () = lo + Random.State.int rng (nv - lo) in
     let malformed =
       [| "bogus"; "points-to"; "alias v1"; "points-to nosuchvar"; "leak h999999"; "count nope"; "refine" |]
     in
     let base =
       List.init 1000 (fun i ->
           let q =
             match (i + 1) mod 10 with
             | 0 | 1 | 2 -> Printf.sprintf "points-to v%d" (rv ())
             | 3 | 4 -> Printf.sprintf "alias v%d v%d" (rv ()) (rv ())
             | 5 ->
               let v = rv () in
               Printf.sprintf "leak h%d" (List.nth heaps_of.(v) (Random.State.int rng (List.length heaps_of.(v))))
             | 6 -> "count vP"
             | 7 | 8 -> malformed.(Random.State.int rng (Array.length malformed))
             | _ -> "help"
           in
           (q, false))
     in
     let kills =
       List.concat (List.init kill_pairs (fun _ -> [ ("alias v0 v1", true); ("points-to v7", false) ]))
     in
     let trips =
       List.concat (List.init firewall_pairs (fun _ -> [ ("modref v1", false); ("points-to v3", false) ]))
     in
     (base, base @ kills @ trips))

(* One client: a fresh ctx, the whole sequence, raw result tuples out.
   No Alcotest inside (this runs inside spawned domains). *)
let run_mix srv stats queries =
  let ctx = Serve.new_ctx srv in
  List.map
    (fun (line, tight_q) ->
      let s = Serve.serve_line ~limits:(if tight_q then tight else roomy) ~stats srv ctx line in
      (s.Serve.outcome.Serve.ok, s.Serve.outcome.Serve.command, s.Serve.outcome.Serve.lines, s.Serve.close))
    queries

(* Check one (query, result) pair against the tuple oracle. *)
let oracle_check (line, tight_q) (ok_, cmd, lines, close_) =
  let var_ord v = int_of_string (String.sub v 1 (String.length v - 1)) in
  if tight_q then begin
    Alcotest.(check string) ("budget kill: " ^ line) "budget" cmd;
    Alcotest.(check bool) "budget kill is an error" false ok_;
    Alcotest.(check bool) "budget kill keeps the connection" false close_
  end
  else
    match String.split_on_char ' ' line with
    | [ "modref"; "v1" ] ->
      Alcotest.(check string) ("firewall: " ^ line) "internal" cmd;
      Alcotest.(check bool) "firewall closes the connection" true close_
    | [ "points-to"; v ] when ok_ ->
      Alcotest.(check (list string)) ("answer: " ^ line)
        (sorted (heap_names heaps_of.(var_ord v)))
        (sorted lines)
    | [ "alias"; v1; v2 ] when ok_ ->
      let shared = List.filter (fun h -> List.mem h heaps_of.(var_ord v2)) heaps_of.(var_ord v1) in
      (match lines with
      | head :: rest ->
        Alcotest.(check string) ("verdict: " ^ line) (if shared = [] then "no" else "yes") head;
        Alcotest.(check (list string)) ("heaps: " ^ line) (sorted (heap_names shared)) (sorted rest)
      | [] -> Alcotest.failf "query %S: empty reply" line)
    | [ "leak"; h ] when ok_ ->
      let h = var_ord h in
      let vars = List.filter (fun v -> List.mem h heaps_of.(v)) (List.init nv Fun.id) in
      Alcotest.(check (list string)) ("answer: " ^ line)
        (sorted (List.map (Printf.sprintf "v%d") vars))
        (sorted lines)
    | [ "count"; "vP" ] ->
      Alcotest.(check (list string)) "count vP" [ Printf.sprintf "vP %d" (List.length tuples) ] lines
    | "points-to" :: _ | "alias" :: _ | "leak" :: _ ->
      (* Valid-shape query that failed: only the malformed pool may do
         that, and those carry out-of-domain names by construction. *)
      Alcotest.(check bool) ("expected failure is an error: " ^ line) false ok_
    | _ -> ()

let test_parallel_soak () =
  let st = Store.load ~dir:(Lazy.force store_dir) in
  let srv = Serve.make st in
  let _base, queries = Lazy.force parallel_mix in
  (* Single-threaded reference run, oracle-checked. *)
  let ref_stats = Serve.make_stats () in
  let reference = run_mix srv ref_stats queries in
  List.iter2 oracle_check queries reference;
  let per_run_queries = Atomic.get ref_stats.Serve.s_queries in
  Alcotest.(check bool) "reference run counts every query" true (per_run_queries >= List.length queries);
  Alcotest.(check int) "reference budget kills" kill_pairs (Atomic.get ref_stats.Serve.s_budget_kills);
  Alcotest.(check int) "reference firewall trips" firewall_pairs (Atomic.get ref_stats.Serve.s_firewall_trips);
  (* The concurrent run: n_clients domains, one shared stats. *)
  let fd0 = count_fds () in
  let stats = Serve.make_stats () in
  let domains =
    List.init n_clients (fun _ -> Stdlib.Domain.spawn (fun () -> run_mix srv stats queries))
  in
  let transcripts = List.map Stdlib.Domain.join domains in
  (match (fd0, count_fds ()) with
  | Some before, Some after -> Alcotest.(check int) "fd count stable across parallel soak" before after
  | _ -> ());
  List.iteri
    (fun i transcript ->
      Alcotest.(check bool)
        (Printf.sprintf "client %d transcript bit-identical to single-threaded run" i)
        true (transcript = reference))
    transcripts;
  (* Stats are exactly consistent: every counter is the single-run
     value times the number of clients, with no lost updates. *)
  Alcotest.(check int) "parallel queries counted" (n_clients * per_run_queries) (Atomic.get stats.Serve.s_queries);
  Alcotest.(check int) "parallel ok + err = queries" (Atomic.get stats.Serve.s_queries)
    (Atomic.get stats.Serve.s_ok + Atomic.get stats.Serve.s_err);
  Alcotest.(check int) "parallel budget kills" (n_clients * kill_pairs) (Atomic.get stats.Serve.s_budget_kills);
  Alcotest.(check int) "parallel firewall trips" (n_clients * firewall_pairs)
    (Atomic.get stats.Serve.s_firewall_trips);
  let latency_total =
    Hashtbl.fold (fun _ (l : Serve.latency) acc -> acc + l.Serve.l_count) stats.Serve.s_latency 0
  in
  Alcotest.(check int) "parallel latency rows cover every query" (Atomic.get stats.Serve.s_queries) latency_total

(* The daemon-shaped path: a Serve.Pool with 4 worker domains takes
   the same 1k valid/malformed mix from 8 concurrent client threads.
   Which worker (hence which ctx, with which history) answers a given
   query is scheduling-dependent, so budget-kill tails are excluded;
   every remaining answer is history-independent and must equal the
   reference, and nothing may be dropped.  After [shutdown], further
   requests bounce with [err shutdown]. *)
let test_pool () =
  let st = Store.load ~dir:(Lazy.force store_dir) in
  let srv = Serve.make st in
  let base, _queries = Lazy.force parallel_mix in
  let ref_stats = Serve.make_stats () in
  let reference = run_mix srv ref_stats base in
  let stats = Serve.make_stats () in
  let pool = Serve.Pool.create ~limits:roomy ~stats ~workers:4 (Serve.Source.create srv) in
  let client () =
    List.map
      (fun (line, _) ->
        let s = Serve.Pool.run pool line in
        (s.Serve.outcome.Serve.ok, s.Serve.outcome.Serve.command, s.Serve.outcome.Serve.lines, s.Serve.close))
      base
  in
  let results = Array.make n_clients [] in
  let clients = List.init n_clients (fun i -> Thread.create (fun () -> results.(i) <- client ()) ()) in
  List.iter Thread.join clients;
  let transcripts = Array.to_list results in
  List.iteri
    (fun i transcript ->
      Alcotest.(check int) (Printf.sprintf "pool client %d: nothing dropped" i) (List.length base)
        (List.length transcript);
      Alcotest.(check bool) (Printf.sprintf "pool client %d answers match reference" i) true
        (transcript = reference))
    transcripts;
  Alcotest.(check int) "pool queries counted"
    (n_clients * Atomic.get ref_stats.Serve.s_queries)
    (Atomic.get stats.Serve.s_queries);
  Serve.Pool.shutdown pool;
  let s = Serve.Pool.run pool "points-to v3" in
  Alcotest.(check string) "post-shutdown requests bounce" "shutdown" s.Serve.outcome.Serve.command;
  Alcotest.(check bool) "post-shutdown bounce closes" true s.Serve.close

(* --- Protocol fuzz --------------------------------------------------
   1k+ seeded hostile lines — binary garbage, control characters,
   oversized payloads, token floods, almost-valid prefixes — first
   straight into [serve_line], then through the [Pta.Router] relay
   over a real unix socket.  Invariants: no exception ever escapes,
   every non-blank input yields a structured reply ([err ...] for the
   garbage), the descriptor count is flat, and the stats counters add
   up. *)

(* A tiny dedicated store: fuzz replies must stay small so the run is
   fast, and the soak store's 60k-row fan-outs would swamp it. *)
let fuzz_store_dir =
  lazy
    (let dir = tmp_dir "serve-fuzz" in
     let sp = Space.create () in
     let vdom = Domain.make ~name:"V" ~size:8 ~element_names:(Array.init 8 (Printf.sprintf "v%d")) () in
     let hdom = Domain.make ~name:"H" ~size:64 ~element_names:(Array.init 64 (Printf.sprintf "h%d")) () in
     let vb = Space.alloc sp vdom and hb = Space.alloc sp hdom in
     let vp =
       Relation.of_tuples sp ~name:"vP"
         [ { Relation.attr_name = "variable"; block = vb }; { Relation.attr_name = "heap"; block = hb } ]
         (List.init 8 (fun v -> [| v; v * 3 mod 64 |]))
     in
     Store.save ~dir ~key:"fuzz-key" ~config:[] ~space:sp ~relations:[ vp ];
     dir)

let fuzz_lines ?(strip_newlines = false) n =
  let rng = Random.State.make [| 0xF0225; n |] in
  let rand_bytes len =
    String.init len (fun _ ->
        let c = Char.chr (Random.State.int rng 256) in
        if strip_newlines && (c = '\n' || c = '\r') then 'x' else c)
  in
  let words = [| "points-to"; "alias"; "leak"; "count"; "modref"; "relations"; "help"; "vuln"; "refine" |] in
  List.init n (fun i ->
      match i mod 8 with
      | 0 -> rand_bytes (Random.State.int rng 200)
      | 1 -> String.make (4096 + Random.State.int rng 100_000) 'a'
      | 2 -> words.(Random.State.int rng (Array.length words)) ^ " " ^ rand_bytes (1 + Random.State.int rng 40)
      | 3 -> String.concat " " (List.init (1 + Random.State.int rng 500) (fun _ -> "v0"))
      | 4 -> Printf.sprintf "points-to v%d extra junk \x01\x02\x7f" (Random.State.int rng 16)
      | 5 -> "\t \x00ok points-to 3 12us"
      | 6 -> "err " ^ rand_bytes (Random.State.int rng 60)
      | _ ->
        String.init (Random.State.int rng 30) (fun _ ->
            let c = Char.chr (1 + Random.State.int rng 31) in
            if strip_newlines && (c = '\n' || c = '\r') then 'x' else c))

let test_serve_line_fuzz () =
  let st = Store.load ~dir:(Lazy.force fuzz_store_dir) in
  let srv = Serve.make st in
  let stats = Serve.make_stats () in
  let ctx = Serve.new_ctx srv in
  let fd0 = count_fds () in
  let lines = fuzz_lines 1200 in
  let served = ref 0 in
  List.iter
    (fun line ->
      match Serve.serve_line ~limits:roomy ~stats srv ctx line with
      | s ->
        let o = s.Serve.outcome in
        if not (o.Serve.command = "" && o.Serve.lines = []) then begin
          incr served;
          (* Framing invariant: an error reply is exactly one message
             line; a success reply's row count matches its body. *)
          if o.Serve.ok then Alcotest.(check int) "ok rows = body lines" (List.length o.Serve.lines) o.Serve.count
          else Alcotest.(check bool) ("error reply has a message: " ^ String.escaped line) true (o.Serve.lines <> [])
        end
      | exception e -> Alcotest.failf "serve_line raised on %S: %s" line (Printexc.to_string e))
    lines;
  Alcotest.(check bool) "fuzz actually served replies" true (!served >= 1000);
  Alcotest.(check int) "queries counted" !served (Atomic.get stats.Serve.s_queries);
  Alcotest.(check int) "ok + err = queries" (Atomic.get stats.Serve.s_queries)
    (Atomic.get stats.Serve.s_ok + Atomic.get stats.Serve.s_err);
  match (fd0, count_fds ()) with
  | Some before, Some after -> Alcotest.(check int) "fd count stable" before after
  | _ -> ()

(* In-process backend daemon speaking the wire protocol over a unix
   socket, exactly as the ptacli serve driver frames it; the router
   relays fuzz through it. *)
let start_fuzz_backend ~sock =
  let st = Store.load ~dir:(Lazy.force fuzz_store_dir) in
  let srv = Serve.make st in
  let stats = Serve.make_stats () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX sock);
  Unix.listen fd 8;
  let stop = ref false in
  let thread =
    Thread.create
      (fun () ->
        while not !stop do
          match Unix.select [ fd ] [] [] 0.1 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | [], _, _ -> ()
          | _ -> (
            match Unix.accept fd with
            | exception Unix.Unix_error _ -> ()
            | cfd, _ ->
              let ic = Unix.in_channel_of_descr cfd and oc = Unix.out_channel_of_descr cfd in
              let ctx = Serve.new_ctx srv in
              (try
                 let continue = ref true in
                 while !continue do
                   let line = input_line ic in
                   if String.trim line = "quit" then continue := false
                   else begin
                     let s = Serve.serve_line ~limits:roomy ~stats srv ctx line in
                     let o = s.Serve.outcome in
                     if not (o.Serve.command = "" && o.Serve.lines = []) then begin
                       Printf.fprintf oc "%s %s %d %.0fus\n"
                         (if o.Serve.ok then "ok" else "err")
                         o.Serve.command o.Serve.count s.Serve.latency_us;
                       List.iter (fun l -> output_string oc (l ^ "\n")) o.Serve.lines
                     end;
                     flush oc;
                     if s.Serve.close then continue := false
                   end
                 done
               with End_of_file | Sys_error _ -> ());
              try Unix.close cfd with Unix.Unix_error _ -> ())
        done;
        try Unix.close fd with Unix.Unix_error _ -> ())
      ()
  in
  (thread, stop)

let test_router_relay_fuzz () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock = Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "fuzz-backend-%d.sock" (Unix.getpid ())) in
  (try Sys.remove sock with Sys_error _ -> ());
  let thread, stop = start_fuzz_backend ~sock in
  (* Snappy retry policy: hostile lines that legitimately drop the
     backend connection ("quit", protocol desync) burn a full
     timeout+backoff ladder each; the defaults would stretch 1k lines
     into minutes. *)
  let policy =
    {
      Pta.Router.default_policy with
      Pta.Router.request_timeout_s = 5.0;
      backoff_base_s = 0.005;
      backoff_max_s = 0.05;
      breaker_cooldown_s = 0.05;
    }
  in
  let router = Pta.Router.create ~policy [ sock ] in
  let session = Pta.Router.session ~seed:1 in
  Fun.protect
    ~finally:(fun () ->
      (* Session first: dropping the sticky connection unblocks the
         backend thread's [input_line] so the join can't hang when an
         assertion fires mid-loop. *)
      Pta.Router.close_session session;
      stop := true;
      (try Thread.join thread with _ -> ());
      try Sys.remove sock with Sys_error _ -> ())
    (fun () ->
      Pta.Router.probe_all router;
      let fd0 = count_fds () in
      (* The wire protocol is line-framed, so a client can never hand
         the relay an embedded newline: strip them (a raw \n would
         legitimately desync any line protocol). *)
      let lines = fuzz_lines ~strip_newlines:true 1000 in
      let replies = ref 0 in
      List.iter
        (fun line ->
          match Pta.Router.handle router session line with
          | None -> () (* blank/comment: no reply owed *)
          | Some r ->
            incr replies;
            let h = r.Pta.Router.rp_header in
            let ok_hdr =
              (String.length h >= 3 && String.sub h 0 3 = "ok ")
              || (String.length h >= 4 && String.sub h 0 4 = "err ")
            in
            if not ok_hdr then
              Alcotest.failf "relay of %S produced unframed header %S" (String.escaped line)
                r.Pta.Router.rp_header
          | exception e -> Alcotest.failf "router raised on %S: %s" (String.escaped line) (Printexc.to_string e))
        lines;
      Alcotest.(check bool) "relay produced replies" true (!replies >= 800);
      (* Sane fleet afterwards: a valid query still answers through
         the relay. *)
      (match Pta.Router.handle router session "count vP" with
      | Some r ->
        Alcotest.(check bool) "post-fuzz count vP is ok" true
          (String.length r.Pta.Router.rp_header >= 3 && String.sub r.Pta.Router.rp_header 0 3 = "ok ");
        Alcotest.(check (list string)) "post-fuzz count vP body" [ "vP 8" ] r.Pta.Router.rp_body
      | None -> Alcotest.fail "post-fuzz count vP owed a reply");
      Pta.Router.close_session session;
      match (fd0, count_fds ()) with
      | Some before, Some after ->
        (* The sticky backend connection is closed; only pre-existing
           fds remain. *)
        Alcotest.(check int) "fd count stable" before after
      | _ -> ())

let () =
  Alcotest.run "serve"
    [
      ("soak", [ Alcotest.test_case "1k mixed queries: correct, isolated, fd-stable" `Quick test_soak ]);
      ( "fuzz",
        [
          Alcotest.test_case "1.2k hostile lines straight into serve_line" `Quick test_serve_line_fuzz;
          Alcotest.test_case "1k hostile lines through the route relay" `Quick test_router_relay_fuzz;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "8 domains, bit-identical transcripts, exact stats" `Quick test_parallel_soak;
          Alcotest.test_case "worker pool: 8 clients x 4 domains, nothing dropped" `Quick test_pool;
        ] );
    ]
