(* Semantic self-certification ([Pta.Certify]) tests:

   - a genuine fixpoint — cold, incremental, or loaded under a memory
     cap — passes certification, and the pass can be recorded in the
     store manifest ([mark_certified]) and read back;
   - a single CRC-clean tuple flip that byte-level [Store.verify]
     cannot see fails certification with the violating rule (or the
     non-contained input) and bounded witness tuples;
   - the certification mark names the exact chain-tip identity:
     [save_delta] moves the tip past it, [save] drops it;
   - a [Serve.Follow ~require_certified] follower rejects an
     uncertified candidate while the old snapshot keeps serving, and
     swaps the moment the mark appears. *)

module Analyses = Pta.Analyses
module Certify = Pta.Certify
module Incr = Pta.Incr
module Serve = Pta.Serve
module Engine = Datalog.Engine

let tmp_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "whalelam-%s-%d" name (Unix.getpid ())) in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  dir

let gen_gantt () =
  let profile = Option.get (Synth.Profiles.find "gantt") in
  Synth.Generator.generate (Synth.Profiles.params ~scale:0.04 profile)

let gantt_fg = lazy (Jir.Factgen.extract (gen_gantt ()))

(* One shared base: a cold Algorithm 2 solve of gantt, persisted with
   the algo tag [certify_store] keys its checker construction on.
   Tests copy the directory rather than mutating it. *)
let base =
  lazy
    (let fg = Lazy.force gantt_fg in
     let r = Analyses.run_basic ~algo:Analyses.Algo2 fg in
     let dir = tmp_dir "certify-base" in
     Store.save ~dir ~key:"certify-base-key" ~config:[ ("algo", "algo2") ] ~space:(Engine.space r.Analyses.engine)
       ~relations:(Engine.declared_relations r.Analyses.engine);
     dir)

let copy_base name =
  let src = Lazy.force base in
  let dir = tmp_dir name in
  ignore (Sys.command (Printf.sprintf "cp -r %s %s" (Filename.quote src) (Filename.quote dir)));
  dir

let store_healthy dir =
  let checks = Store.verify ~dir () in
  checks <> [] && List.for_all (fun (c : Store.check) -> c.Store.chk_ok) checks

let certify ?(dir_load = fun dir -> Store.load ~dir) dir =
  let st = dir_load dir in
  Certify.certify_store (Lazy.force gantt_fg) st

(* --- a genuine fixpoint certifies, and the mark round-trips --- *)

let test_cold_pass_and_mark () =
  let dir = copy_base "certify-pass" in
  let v = certify dir in
  (match v.Certify.v_failure with
  | None -> ()
  | Some f -> Alcotest.failf "clean store failed certification: %s" (Certify.failure_to_string f));
  Alcotest.(check bool) "passed" true (Certify.passed v);
  Alcotest.(check bool) "report counts rules" true (v.Certify.v_report.Certify.c_rules > 0);
  Alcotest.(check bool) "report counts strata" true (v.Certify.v_report.Certify.c_strata >= 1);
  Alcotest.(check bool) "report counts relations" true (v.Certify.v_report.Certify.c_relations > 0);
  (* verdict_lines lead with the structured ok line *)
  (match Certify.verdict_lines v with
  | first :: _ -> Alcotest.(check bool) "ok line" true (String.length first >= 11 && String.sub first 0 11 = "certify: ok")
  | [] -> Alcotest.fail "no verdict lines");
  (* The mark names the chain tip and reads back equal to read_ident. *)
  Alcotest.(check bool) "unmarked before" true (Store.read_certified ~dir = None);
  let ident = Store.mark_certified ~dir in
  Alcotest.(check bool) "mark returns the tip identity" true (Store.read_ident ~dir = Some ident);
  Alcotest.(check bool) "mark reads back" true (Store.read_certified ~dir = Some ident);
  (* The rewritten manifest is still byte-healthy (fresh selfsum). *)
  Alcotest.(check bool) "marked store verifies" true (store_healthy dir)

(* --- CRC-clean corruption: verify green, certify red --- *)

let check_catches ~what dir relation =
  Store.corrupt_tuple_for_tests ~dir ~relation;
  Alcotest.(check bool) (what ^ ": store verify still green") true (store_healthy dir);
  let v = certify dir in
  Alcotest.(check bool) (what ^ ": certification fails") false (Certify.passed v);
  (match v.Certify.v_failure with
  | Some (Certify.Rule_not_closed { rule; witness; _ }) ->
    Alcotest.(check bool) (what ^ ": rule text present") true (String.length rule > 0);
    Alcotest.(check bool) (what ^ ": witness tuples present") true (witness.Certify.w_tuples <> []);
    Alcotest.(check bool) (what ^ ": witness total >= 1") true (witness.Certify.w_total >= 1.0)
  | Some (Certify.Input_not_contained { relation = r; witness }) ->
    Alcotest.(check bool) (what ^ ": input named") true (String.length r > 0);
    Alcotest.(check bool) (what ^ ": witness tuples present") true (witness.Certify.w_tuples <> [])
  | Some f -> Alcotest.failf "%s: unexpected failure kind: %s" what (Certify.failure_to_string f)
  | None -> Alcotest.failf "%s: no failure recorded" what);
  v

let test_derived_corruption_caught () =
  let dir = copy_base "certify-corrupt-derived" in
  let v = check_catches ~what:"derived vP flip" dir "vP" in
  (* Deleting a derived tuple re-derives in one application: this must
     surface as a rule-closure violation, with the rule's source
     position attached. *)
  match v.Certify.v_failure with
  | Some (Certify.Rule_not_closed { rule_pos; _ }) ->
    Alcotest.(check bool) "rule position attached" true (rule_pos <> None)
  | _ -> Alcotest.fail "expected Rule_not_closed for a derived-tuple deletion"

let test_input_corruption_caught () =
  let dir = copy_base "certify-corrupt-input" in
  (* Pick a genuinely non-empty extracted input relation that the
     store holds under the same name: deleting its first tuple must
     fail the containment check (inputs are checked before rules). *)
  let st = Store.load ~dir in
  let input_name =
    let inputs = Pta.Programs.input_relations (Lazy.force gantt_fg) in
    match
      List.find_opt
        (fun (name, tuples) -> tuples <> [] && Store.find st name <> None)
        inputs
    with
    | Some (name, _) -> name
    | None -> Alcotest.fail "no non-empty input relation stored"
  in
  let v = check_catches ~what:("input " ^ input_name ^ " flip") dir input_name in
  match v.Certify.v_failure with
  | Some (Certify.Input_not_contained { relation; _ }) ->
    Alcotest.(check string) "the corrupted input is named" input_name relation
  | Some (Certify.Rule_not_closed _) ->
    (* Legal when the deleted tuple is *also* re-derivable and the
       input check passed because extraction order differs — but with
       containment checked first this should not happen. *)
    Alcotest.fail "input deletion reported as rule violation (containment must be checked first)"
  | _ -> Alcotest.fail "expected Input_not_contained"

(* --- mark invalidation across the chain --- *)

let test_mark_invalidation () =
  let dir = copy_base "certify-mark-inval" in
  let marked = Store.mark_certified ~dir in
  Alcotest.(check bool) "marked" true (Store.read_certified ~dir = Some marked);
  (* save_delta moves the tip: the stale mark must no longer equal the
     tip identity (the caller-side comparison Follow does). *)
  let st = Store.load ~dir in
  ignore (Store.save_delta ~dir ~key:"certify-rekeyed" ~config:(Store.config st) ~space:(Store.space st) ~deltas:[]);
  let stale = Store.read_certified ~dir in
  Alcotest.(check bool) "mark survives textually" true (stale = Some marked);
  Alcotest.(check bool) "but no longer names the tip" true (Store.read_ident ~dir <> stale);
  (* A fresh full save drops the line entirely. *)
  let st2 = Store.load ~dir in
  Store.save ~dir ~key:"certify-resaved" ~config:(Store.config st2) ~space:(Store.space st2)
    ~relations:(Store.relations st2);
  Alcotest.(check bool) "full save drops the mark" true (Store.read_certified ~dir = None);
  (* Re-marking after the save vouches for the new tip. *)
  let remarked = Store.mark_certified ~dir in
  Alcotest.(check bool) "re-mark names the new tip" true (Store.read_ident ~dir = Some remarked)

(* --- incremental and mem-capped results certify bit-identically --- *)

let test_incremental_and_memcap_pass () =
  let dir = copy_base "certify-incr" in
  (* The unchanged-program incremental path: an empty delta re-key.
     The folded chain still certifies against the same program. *)
  let st = Store.load ~dir in
  let fg = Lazy.force gantt_fg in
  let o =
    match Incr.update ~algo:Analyses.Algo2 ~store:st fg with
    | Ok o -> o
    | Error e -> Alcotest.failf "incremental update failed: %s" (Solver_error.to_string e)
  in
  let eng = o.Incr.engine in
  ignore
    (Store.save_delta ~dir ~key:"certify-incr-tip" ~config:[ ("algo", "algo2") ] ~space:(Engine.space eng)
       ~deltas:o.Incr.deltas);
  let v_incr = certify dir in
  (match v_incr.Certify.v_failure with
  | None -> ()
  | Some f -> Alcotest.failf "incremental chain failed certification: %s" (Certify.failure_to_string f));
  (* The same chain loaded under a paging memory cap certifies too:
     certification is a property of the relations, not of how the
     pages were resident. *)
  let v_capped = certify ~dir_load:(fun dir -> Store.load_with ~mem_cap_bytes:(2 * 1024 * 1024) ~dir ()) dir in
  match v_capped.Certify.v_failure with
  | None -> ()
  | Some f -> Alcotest.failf "mem-capped load failed certification: %s" (Certify.failure_to_string f)

(* --- follower gate: require-certified --- *)

(* Hand-built tiny store a [Serve.t] accepts (a vP relation), so the
   Follow plumbing runs without a full analysis. *)
let save_tiny ~dir =
  let sp = Space.create () in
  let vdom = Domain.make ~name:"V" ~size:4 ~element_names:(Array.init 4 (Printf.sprintf "v%d")) () in
  let hdom = Domain.make ~name:"H" ~size:16 ~element_names:(Array.init 16 (Printf.sprintf "h%d")) () in
  let vb = Space.alloc sp vdom and hb = Space.alloc sp hdom in
  let vp =
    Relation.of_tuples sp ~name:"vP"
      [ { Relation.attr_name = "variable"; block = vb }; { Relation.attr_name = "heap"; block = hb } ]
      [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 3; 5 |] ]
  in
  Store.save ~dir ~key:"tiny-certify-key" ~config:[] ~space:sp ~relations:[ vp ]

let test_follow_require_certified () =
  let dir = tmp_dir "certify-follow" in
  save_tiny ~dir;
  let source = Serve.Source.create (Serve.make (Store.load ~dir)) in
  let follower = Serve.Follow.make ~require_certified:true ~dir source in
  (match Serve.Follow.poll follower with
  | Serve.Follow.Unchanged -> ()
  | _ -> Alcotest.fail "initial poll should be Unchanged");
  let gen0 = Serve.Source.generation source in
  (* A CRC-clean semantic corruption commits a *new, uncertified*
     snapshot: the gate must reject it before any load cost, and the
     old snapshot keeps serving (generation unchanged). *)
  Store.corrupt_tuple_for_tests ~dir ~relation:"vP";
  (match Serve.Follow.poll follower with
  | Serve.Follow.Rejected { reason } ->
    let mentions_cert =
      let rec find i =
        i + 9 <= String.length reason && (String.sub reason i 9 = "certified" || find (i + 1))
      in
      String.length reason >= 9 && find 0
    in
    Alcotest.(check bool) ("reject reason names certification: " ^ reason) true mentions_cert
  | Serve.Follow.Swapped _ -> Alcotest.fail "uncertified candidate was swapped in"
  | Serve.Follow.Unchanged -> Alcotest.fail "new snapshot went unnoticed");
  Alcotest.(check int) "old snapshot keeps serving" gen0 (Serve.Source.generation source);
  (* Marking the tip certified unblocks the very next poll. *)
  ignore (Store.mark_certified ~dir);
  (match Serve.Follow.poll follower with
  | Serve.Follow.Swapped _ -> ()
  | Serve.Follow.Rejected { reason } -> Alcotest.failf "certified candidate rejected: %s" reason
  | Serve.Follow.Unchanged -> Alcotest.fail "certified candidate went unnoticed");
  Alcotest.(check int) "swap bumped the generation" (gen0 + 1) (Serve.Source.generation source);
  (* A plain follower (no gate) takes uncertified saves as before. *)
  let plain = Serve.Follow.make ~dir source in
  Store.corrupt_tuple_for_tests ~dir ~relation:"vP";
  match Serve.Follow.poll plain with
  | Serve.Follow.Swapped _ -> ()
  | Serve.Follow.Rejected { reason } -> Alcotest.failf "ungated follower rejected a committed save: %s" reason
  | Serve.Follow.Unchanged -> Alcotest.fail "ungated follower missed the save"

let () =
  Alcotest.run "certify"
    [
      ( "certify",
        [
          Alcotest.test_case "cold fixpoint passes; mark round-trips" `Quick test_cold_pass_and_mark;
          Alcotest.test_case "CRC-clean derived-tuple flip: verify green, certify red" `Quick
            test_derived_corruption_caught;
          Alcotest.test_case "CRC-clean input-tuple flip: input containment fails" `Quick
            test_input_corruption_caught;
          Alcotest.test_case "incremental chain and mem-capped load both certify" `Quick
            test_incremental_and_memcap_pass;
        ] );
      ( "mark",
        [ Alcotest.test_case "save_delta outdates the mark; save drops it" `Quick test_mark_invalidation ] );
      ( "follow",
        [
          Alcotest.test_case "require-certified rejects, then swaps once marked" `Quick
            test_follow_require_certified;
        ] );
    ]
