(* Datalog front end and engine: parser round-trips, stratification,
   error reporting, and differential testing of the BDD engine against
   the naive tuple-set evaluator on classic programs with random
   inputs. *)

let check_bool = Alcotest.(check bool)

(* --- Parser --- *)

let tc_src =
  {|
# transitive closure
DOMAINS
V 8

RELATIONS
input e (src : V, dst : V)
output t (src : V, dst : V)

RULES
t(x, y) :- e(x, y).
t(x, z) :- t(x, y), e(y, z).
|}

let test_parse_tc () =
  let p = Parser.parse tc_src in
  Alcotest.(check int) "domains" 1 (List.length p.Ast.domains);
  Alcotest.(check int) "relations" 2 (List.length p.Ast.relations);
  Alcotest.(check int) "rules" 2 (List.length p.Ast.rules);
  let r = List.nth p.Ast.rules 1 in
  Alcotest.(check int) "body size" 2 (List.length r.Ast.body)

let test_parse_roundtrip () =
  (* Structural equality modulo rule positions: printing reflows the
     source, so line numbers legitimately differ. *)
  let strip (p : Ast.program) =
    { p with Ast.rules = List.map (fun r -> { r with Ast.rule_pos = None }) p.Ast.rules }
  in
  let p = Parser.parse tc_src in
  let printed = Format.asprintf "%a" Ast.pp_program p in
  let p2 = Parser.parse printed in
  check_bool "pp then parse preserves structure" true (strip p = strip p2)

let test_parse_features () =
  let src =
    {|
DOMAINS
V 16
T 4 "type.map"

RELATIONS
input vT (v : V, t : T)
input aT (sup : T, sub : T)
output bad (v : V, t : T)
output refinable (v : V)

RULES
bad(v, t) :- vT(v, tv), !aT(t, tv).
refinable(v) :- vT(v, td), bad(v, tc), td != tc, vT(v, "2").
|}
  in
  let p = Parser.parse src in
  let r = List.nth p.Ast.rules 1 in
  check_bool "has cmp literal" true
    (List.exists (function Ast.Cmp (_, Ast.Neq, _) -> true | _ -> false) r.Ast.body);
  check_bool "has const" true
    (List.exists
       (function Ast.Pos { Ast.args; _ } -> List.mem (Ast.Const "2") args | _ -> false)
       r.Ast.body)

let test_parse_errors () =
  let bad_cases =
    [
      "DOMAINS\nV x\nRELATIONS\nRULES\n";
      "DOMAINS\nRELATIONS\nr (a : V\nRULES\n";
      "DOMAINS\nRELATIONS\nRULES\nfoo(x) :- .\n";
      "RELATIONS\nRULES\n";
    ]
  in
  List.iter
    (fun src ->
      match Parser.parse src with
      | exception Parser.Parse_error _ -> ()
      | exception Lexer.Lex_error _ -> ()
      | _ -> Alcotest.failf "expected parse failure for %S" src)
    bad_cases

let test_lexer_wildcard_rule () =
  match Lexer.tokens "_x" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "identifiers may not start with underscore"

let test_error_line_numbers () =
  (* Errors must carry the line of the offending token. *)
  (match Parser.parse "DOMAINS\nV 4\nRELATIONS\nr (a : V)\nRULES\nr(x) :-\n" with
  | exception Parser.Parse_error e -> Alcotest.(check bool) "near the broken rule" true (e.Parser.line >= 6)
  | _ -> Alcotest.fail "expected error");
  match Lexer.tokens "a b\nc $ d" with
  | exception Lexer.Lex_error e ->
    Alcotest.(check int) "lex error line" 2 e.Lexer.line;
    Alcotest.(check bool) "lex error column" true (e.Lexer.col >= 3)
  | _ -> Alcotest.fail "expected lex error"

(* --- Stratification --- *)

let test_stratify_tc () =
  let p = Parser.parse tc_src in
  let strata = Stratify.strata p in
  Alcotest.(check int) "one stratum with rules" 1 (List.length strata);
  let st = List.hd strata in
  Alcotest.(check int) "once rules" 1 (List.length st.Stratify.once_rules);
  Alcotest.(check int) "loop rules" 1 (List.length st.Stratify.loop_rules)

let neg_src =
  {|
DOMAINS
V 8
RELATIONS
input e (src : V, dst : V)
input node (n : V)
output t (src : V, dst : V)
output unreach (src : V, dst : V)
RULES
t(x, y) :- e(x, y).
t(x, z) :- t(x, y), e(y, z).
unreach(x, y) :- node(x), node(y), !t(x, y).
|}

let test_stratify_negation () =
  let p = Parser.parse neg_src in
  let strata = Stratify.strata p in
  Alcotest.(check int) "two strata" 2 (List.length strata);
  (* t's stratum must come before unreach's. *)
  let first = List.hd strata in
  check_bool "t first" true (List.mem "t" first.Stratify.preds)

let test_unstratified_rejected () =
  let src =
    {|
DOMAINS
V 4
RELATIONS
input e (src : V, dst : V)
output p (x : V)
output q (x : V)
RULES
p(x) :- e(x, _), !q(x).
q(x) :- e(x, _), !p(x).
|}
  in
  match Stratify.strata (Parser.parse src) with
  | exception Stratify.Not_stratified _ -> ()
  | _ -> Alcotest.fail "expected Not_stratified"

(* --- Resolver errors --- *)

let expect_check_error src =
  match Engine.parse_and_create src with
  | exception Resolve.Check_error _ -> ()
  | _ -> Alcotest.failf "expected Check_error for %s" src

let test_resolve_errors () =
  (* Unbound head variable. *)
  expect_check_error
    "DOMAINS\nV 4\nRELATIONS\ninput e (a : V, b : V)\noutput p (a : V, b : V)\nRULES\np(x, y) :- e(x, x).\n";
  (* Arity mismatch. *)
  expect_check_error "DOMAINS\nV 4\nRELATIONS\ninput e (a : V, b : V)\noutput p (a : V)\nRULES\np(x) :- e(x).\n";
  (* Unknown relation. *)
  expect_check_error "DOMAINS\nV 4\nRELATIONS\noutput p (a : V)\nRULES\np(x) :- q(x).\n";
  (* Variable used at two domains. *)
  expect_check_error
    "DOMAINS\nV 4\nW 4\nRELATIONS\ninput e (a : V)\ninput f (a : W)\noutput p (a : V)\nRULES\np(x) :- e(x), f(x).\n";
  (* Negation with unbound variable. *)
  expect_check_error
    "DOMAINS\nV 4\nRELATIONS\ninput e (a : V)\ninput f (a : V)\noutput p (a : V)\nRULES\np(x) :- e(x), !f(y).\n";
  (* Head of an input relation. *)
  expect_check_error "DOMAINS\nV 4\nRELATIONS\ninput e (a : V)\noutput p (a : V)\nRULES\ne(x) :- p(x).\n";
  (* Constant out of domain range. *)
  expect_check_error "DOMAINS\nV 4\nRELATIONS\ninput e (a : V)\noutput p (a : V)\nRULES\np(x) :- e(x), x = 9.\n"

(* --- Engine vs naive evaluator --- *)

let arrays_to_lists l = List.sort compare (List.map Array.to_list l)

let run_engine ?options src inputs outputs =
  let eng = Engine.parse_and_create ?options src in
  List.iter (fun (name, tuples) -> Engine.set_tuples eng name (List.map Array.of_list tuples)) inputs;
  ignore (Engine.run eng);
  List.map (fun name -> (name, arrays_to_lists (Relation.tuples (Engine.relation eng name)))) outputs

let run_naive src inputs outputs =
  let r = Naive_eval.solve (Parser.parse src) ~inputs in
  List.map (fun name -> (name, Naive_eval.tuples r name)) outputs

let differential ?options src inputs outputs =
  let e = run_engine ?options src inputs outputs in
  let n = run_naive src inputs outputs in
  List.iter2
    (fun (name, et) ((_ : string), nt) ->
      Alcotest.(check (list (list int))) (Printf.sprintf "relation %s" name) nt et)
    e n

let gen_edges max_node =
  QCheck2.Gen.(list_size (int_range 0 20) (pair (int_range 0 max_node) (int_range 0 max_node)))

let edges_to_tuples es = List.map (fun (a, b) -> [ a; b ]) es

let prop_tc =
  QCheck2.Test.make ~name:"transitive closure: engine = naive" ~count:60 (gen_edges 7) (fun es ->
      let inputs = [ ("e", edges_to_tuples es) ] in
      run_engine tc_src inputs [ "t" ] = run_naive tc_src inputs [ "t" ])

let prop_tc_no_seminaive =
  QCheck2.Test.make ~name:"TC with naive engine iteration = naive" ~count:30 (gen_edges 7) (fun es ->
      let inputs = [ ("e", edges_to_tuples es) ] in
      let options = { Engine.default_options with semi_naive = false } in
      run_engine ~options tc_src inputs [ "t" ] = run_naive tc_src inputs [ "t" ])

let prop_tc_no_hoist_no_greedy =
  QCheck2.Test.make ~name:"TC without hoist/greedy = naive" ~count:30 (gen_edges 7) (fun es ->
      let inputs = [ ("e", edges_to_tuples es) ] in
      let options = { Engine.default_options with hoist = false; greedy_blocks = false } in
      run_engine ~options tc_src inputs [ "t" ] = run_naive tc_src inputs [ "t" ])

let prop_negation =
  QCheck2.Test.make ~name:"stratified negation: engine = naive" ~count:60
    QCheck2.Gen.(pair (gen_edges 5) (list_size (int_range 0 6) (int_range 0 5)))
    (fun (es, nodes) ->
      let inputs = [ ("e", edges_to_tuples es); ("node", List.map (fun x -> [ x ]) nodes) ] in
      run_engine neg_src inputs [ "t"; "unreach" ] = run_naive neg_src inputs [ "t"; "unreach" ])

let sg_src =
  {|
DOMAINS
V 8
RELATIONS
input flat (a : V, b : V)
input up (a : V, b : V)
input down (a : V, b : V)
output sg (a : V, b : V)
RULES
sg(x, y) :- flat(x, y).
sg(x, y) :- up(x, z1), sg(z1, z2), down(z2, y).
|}

let prop_same_generation =
  QCheck2.Test.make ~name:"same-generation: engine = naive" ~count:40
    QCheck2.Gen.(triple (gen_edges 7) (gen_edges 7) (gen_edges 7))
    (fun (f, u, d) ->
      let inputs = [ ("flat", edges_to_tuples f); ("up", edges_to_tuples u); ("down", edges_to_tuples d) ] in
      run_engine sg_src inputs [ "sg" ] = run_naive sg_src inputs [ "sg" ])

let feature_src =
  {|
DOMAINS
V 8
RELATIONS
input e (a : V, b : V)
output selfloop (a : V)
output nonself (a : V, b : V)
output haspred (a : V)
output fromzero (a : V)
output dup (a : V, b : V)
RULES
selfloop(x) :- e(x, x).
nonself(x, y) :- e(x, y), x != y.
haspred(y) :- e(_, y).
fromzero(y) :- e(0, y).
dup(x, x) :- e(x, _).
|}

let prop_features =
  QCheck2.Test.make ~name:"dup vars, wildcards, constants, !=: engine = naive" ~count:80 (gen_edges 7) (fun es ->
      let inputs = [ ("e", edges_to_tuples es) ] in
      let outs = [ "selfloop"; "nonself"; "haspred"; "fromzero"; "dup" ] in
      run_engine feature_src inputs outs = run_naive feature_src inputs outs)

let mixed_domains_src =
  {|
DOMAINS
A 8
B 4
RELATIONS
input r (x : A, y : B)
input s (y : B, z : A)
output q (x : A, z : A)
output swapped (z : A, x : A)
RULES
q(x, z) :- r(x, y), s(y, z).
swapped(z, x) :- q(x, z).
|}

let prop_mixed_domains =
  QCheck2.Test.make ~name:"two domains and attribute swap: engine = naive" ~count:60
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 15) (pair (int_range 0 7) (int_range 0 3)))
        (list_size (int_range 0 15) (pair (int_range 0 3) (int_range 0 7))))
    (fun (rs, ss) ->
      let inputs = [ ("r", edges_to_tuples rs); ("s", edges_to_tuples ss) ] in
      run_engine mixed_domains_src inputs [ "q"; "swapped" ] = run_naive mixed_domains_src inputs [ "q"; "swapped" ])

let test_facts_and_rerun () =
  let src =
    {|
DOMAINS
V 8
RELATIONS
input e (a : V, b : V)
output t (a : V, b : V)
RULES
t(x, y) :- e(x, y).
t(x, z) :- t(x, y), e(y, z).
t(7, 7).
|}
  in
  let eng = Engine.parse_and_create src in
  Engine.set_tuples eng "e" [ [| 0; 1 |] ];
  ignore (Engine.run eng);
  let t = Engine.relation eng "t" in
  Alcotest.(check (list (list int))) "fact included" [ [ 0; 1 ]; [ 7; 7 ] ] (arrays_to_lists (Relation.tuples t));
  (* Incremental re-run after adding tuples. *)
  Engine.add_tuple eng "e" [| 1; 2 |];
  ignore (Engine.run eng);
  Alcotest.(check (list (list int)))
    "re-run converges" [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 7; 7 ] ]
    (arrays_to_lists (Relation.tuples t))

let test_element_names () =
  let src = {|
DOMAINS
V 4 "v.map"
RELATIONS
input e (a : V, b : V)
output t (a : V)
RULES
t(y) :- e("alice", y).
|} in
  let element_names = function
    | "V" -> Some [| "alice"; "bob"; "carol"; "dan" |]
    | _ -> None
  in
  let eng = Engine.parse_and_create ~element_names src in
  Engine.set_tuples eng "e" [ [| 0; 2 |]; [| 1; 3 |] ];
  ignore (Engine.run eng);
  Alcotest.(check (list (list int))) "named constant" [ [ 2 ] ] (arrays_to_lists (Relation.tuples (Engine.relation eng "t")))

let test_stats () =
  let eng = Engine.parse_and_create tc_src in
  Engine.set_tuples eng "e" [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 3; 4 |] ];
  let s = Engine.run eng in
  check_bool "applications counted" true (s.Engine.rule_applications > 0);
  check_bool "iterated" true (s.Engine.iterations >= 3);
  check_bool "peak nodes positive" true (s.Engine.peak_live_nodes > 0)

let test_bddvarorder_directive () =
  (* bddbddb's .bddvarorder directive changes the physical layout but
     never the results. *)
  let src order = Printf.sprintf "DOMAINS\nA 8\nB 8\n.bddvarorder %S\nRELATIONS\ninput e (x : A, y : B)\noutput t (y : B, x : A)\nRULES\nt(y, x) :- e(x, y).\n" order in
  let run order =
    let eng = Engine.parse_and_create (src order) in
    Engine.set_tuples eng "e" [ [| 1; 2 |]; [| 3; 4 |] ];
    ignore (Engine.run eng);
    arrays_to_lists (Relation.tuples (Engine.relation eng "t"))
  in
  Alcotest.(check (list (list int))) "A B order" [ [ 2; 1 ]; [ 4; 3 ] ] (run "A B");
  Alcotest.(check (list (list int))) "B A order" [ [ 2; 1 ]; [ 4; 3 ] ] (run "B A");
  (* Unknown domain in the directive is rejected. *)
  match Engine.parse_and_create (src "A NOPE") with
  | exception Engine.Engine_error _ -> ()
  | _ -> Alcotest.fail "expected rejection of unknown domain in .bddvarorder"

let test_engine_accessors () =
  let eng = Engine.parse_and_create tc_src in
  Alcotest.(check int) "domain size" 8 (Domain.size (Engine.domain eng "V"));
  Alcotest.(check int) "two relations" 2 (List.length (Engine.relations eng));
  Alcotest.(check bool) "no stats before run" true (Engine.last_stats eng = None);
  Engine.set_tuples eng "e" [ [| 0; 1 |] ];
  let s = Engine.run eng in
  (match Engine.last_stats eng with
  | Some s' -> Alcotest.(check int) "stats cached" s.Engine.rule_applications s'.Engine.rule_applications
  | None -> Alcotest.fail "stats missing after run");
  (match Engine.relation eng "nope" with
  | exception Engine.Engine_error _ -> ()
  | _ -> Alcotest.fail "expected unknown-relation error");
  match Engine.domain eng "Z9" with
  | exception Engine.Engine_error _ -> ()
  | _ -> Alcotest.fail "expected unknown-domain error"

let test_fact_only_program () =
  (* Rules with empty bodies and no inputs at all. *)
  let src = "DOMAINS\nV 4\nRELATIONS\noutput f (a : V, b : V)\nRULES\nf(0, 1).\nf(2, 3).\n" in
  let eng = Engine.parse_and_create src in
  ignore (Engine.run eng);
  Alcotest.(check (list (list int))) "facts materialized" [ [ 0; 1 ]; [ 2; 3 ] ]
    (arrays_to_lists (Relation.tuples (Engine.relation eng "f")))

let test_leading_negation () =
  (* A negation with no variables is ready before any join, so it is
     scheduled as the plan's first step, operating on the initial
     full-universe environment.  The executor must treat that subtract
     as a real first step — an earlier version silently discarded it,
     letting the following join overwrite it. *)
  let src =
    "DOMAINS\nV 4\nRELATIONS\ninput guard (a : V)\ninput d (a : V)\noutput r (a : V)\nRULES\nr(x) :- !guard(_), d(x).\n"
  in
  let run guard =
    let eng = Engine.parse_and_create src in
    Engine.set_tuples eng "guard" (List.map (fun v -> [| v |]) guard);
    Engine.set_tuples eng "d" [ [| 0 |]; [| 2 |] ];
    ignore (Engine.run eng);
    arrays_to_lists (Relation.tuples (Engine.relation eng "r"))
  in
  (* Non-empty guard: the rule body is false for every x. *)
  Alcotest.(check (list (list int))) "guard non-empty" [] (run [ 1 ]);
  (* Empty guard: the negation holds and r copies d. *)
  Alcotest.(check (list (list int))) "guard empty" [ [ 0 ]; [ 2 ] ] (run []);
  (* And the reference executors agree. *)
  differential src [ ("guard", [ [ 1 ] ]); ("d", [ [ 0 ]; [ 2 ] ]) ] [ "r" ];
  differential src [ ("guard", []); ("d", [ [ 0 ]; [ 2 ] ]) ] [ "r" ]

let test_gc_during_solve () =
  (* Tight gc interval: correctness must not depend on collection
     timing. *)
  let options = { Engine.default_options with gc_interval = 1 } in
  let inputs = [ ("e", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ]; [ 4; 5 ] ]) ] in
  differential ~options tc_src inputs [ "t" ]

let () =
  Alcotest.run "datalog"
    [
      ( "parser",
        [
          Alcotest.test_case "transitive closure" `Quick test_parse_tc;
          Alcotest.test_case "pp roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "negation, cmp, consts" `Quick test_parse_features;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "underscore rule" `Quick test_lexer_wildcard_rule;
          Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
        ] );
      ( "stratify",
        [
          Alcotest.test_case "tc strata" `Quick test_stratify_tc;
          Alcotest.test_case "negation strata" `Quick test_stratify_negation;
          Alcotest.test_case "unstratified rejected" `Quick test_unstratified_rejected;
        ] );
      ("resolve", [ Alcotest.test_case "static errors" `Quick test_resolve_errors ]);
      ( "engine",
        [
          Alcotest.test_case "facts and rerun" `Quick test_facts_and_rerun;
          Alcotest.test_case "element names" `Quick test_element_names;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "gc during solve" `Quick test_gc_during_solve;
          Alcotest.test_case "bddvarorder directive" `Quick test_bddvarorder_directive;
          Alcotest.test_case "engine accessors" `Quick test_engine_accessors;
          Alcotest.test_case "fact-only program" `Quick test_fact_only_program;
          Alcotest.test_case "leading no-variable negation" `Quick test_leading_negation;
        ] );
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_tc;
            prop_tc_no_seminaive;
            prop_tc_no_hoist_no_greedy;
            prop_negation;
            prop_same_generation;
            prop_features;
            prop_mixed_domains;
          ] );
    ]
