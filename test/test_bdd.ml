(* BDD manager: differential tests against brute-force truth tables on
   a handful of variables, plus unit tests for the arithmetic
   primitives (range, add_const) and garbage collection. *)

let nvars = 8

let fresh () = Bdd.create ~node_hint:1024 ~nvars ()

(* Truth tables over [n] variables as bitmasks: bit [a] of the table is
   the value of the function on the assignment where variable [i] has
   value [(a lsr i) land 1]. *)
let table_bits n = 1 lsl n

let rec eval m f asg =
  if Bdd.is_const f then Bdd.is_true f
  else if asg (Bdd.var m f) then eval m (Bdd.high m f) asg
  else eval m (Bdd.low m f) asg

let bdd_of_table m n table =
  let acc = ref Bdd.bdd_false in
  for a = 0 to table_bits n - 1 do
    if (table lsr a) land 1 = 1 then begin
      let minterm = ref Bdd.bdd_true in
      for i = 0 to n - 1 do
        let lit = if (a lsr i) land 1 = 1 then Bdd.ithvar m i else Bdd.nithvar m i in
        minterm := Bdd.mk_and m !minterm lit
      done;
      acc := Bdd.mk_or m !acc !minterm
    end
  done;
  !acc

let table_of_bdd m n f =
  let t = ref 0 in
  for a = 0 to table_bits n - 1 do
    if eval m f (fun i -> (a lsr i) land 1 = 1) then t := !t lor (1 lsl a)
  done;
  !t

let n = 4
let full_mask = (1 lsl table_bits n) - 1

let gen_table = QCheck2.Gen.int_bound full_mask
let gen_two = QCheck2.Gen.pair gen_table gen_table

let prop name count gen f = QCheck2.Test.make ~name ~count gen f

let prop_roundtrip =
  prop "table -> bdd -> table" 300 gen_table (fun t ->
      let m = fresh () in
      table_of_bdd m n (bdd_of_table m n t) = t)

let binop_prop name bdd_op table_op =
  prop name 300 gen_two (fun (t1, t2) ->
      let m = fresh () in
      let f = bdd_of_table m n t1 and g = bdd_of_table m n t2 in
      table_of_bdd m n (bdd_op m f g) = table_op t1 t2 land full_mask)

let prop_and = binop_prop "mk_and" Bdd.mk_and ( land )
let prop_or = binop_prop "mk_or" Bdd.mk_or ( lor )
let prop_xor = binop_prop "mk_xor" Bdd.mk_xor ( lxor )
let prop_diff = binop_prop "mk_diff" Bdd.mk_diff (fun a b -> a land lnot b)
let prop_imp = binop_prop "mk_imp" Bdd.mk_imp (fun a b -> lnot a lor b)
let prop_biimp = binop_prop "mk_biimp" Bdd.mk_biimp (fun a b -> lnot (a lxor b))

let prop_not =
  prop "mk_not" 300 gen_table (fun t ->
      let m = fresh () in
      table_of_bdd m n (Bdd.mk_not m (bdd_of_table m n t)) = lnot t land full_mask)

let prop_ite =
  prop "mk_ite" 200
    QCheck2.Gen.(triple gen_table gen_table gen_table)
    (fun (tf, tg, th) ->
      let m = fresh () in
      let f = bdd_of_table m n tf and g = bdd_of_table m n tg and h = bdd_of_table m n th in
      table_of_bdd m n (Bdd.mk_ite m f g h) = ((tf land tg) lor (lnot tf land th)) land full_mask)

(* Reference existential quantification on tables. *)
let table_exist vars t =
  let out = ref 0 in
  for a = 0 to table_bits n - 1 do
    (* a satisfies (exists vars. f) iff some assignment agreeing with a
       outside vars satisfies f. *)
    let rec anysat vs a =
      match vs with
      | [] -> (t lsr a) land 1 = 1
      | v :: rest -> anysat rest (a land lnot (1 lsl v)) || anysat rest (a lor (1 lsl v))
    in
    if anysat vars a then out := !out lor (1 lsl a)
  done;
  !out

let gen_varset = QCheck2.Gen.(list_size (int_range 0 3) (int_range 0 (n - 1)))

let prop_exist =
  prop "exist" 300 (QCheck2.Gen.pair gen_table gen_varset) (fun (t, vars) ->
      let m = fresh () in
      let cube = Bdd.cube_of_vars m vars in
      table_of_bdd m n (Bdd.exist m ~cube (bdd_of_table m n t)) = table_exist vars t)

let prop_forall =
  prop "forall = not exist not" 200 (QCheck2.Gen.pair gen_table gen_varset) (fun (t, vars) ->
      let m = fresh () in
      let cube = Bdd.cube_of_vars m vars in
      let f = bdd_of_table m n t in
      Bdd.forall m ~cube f = Bdd.mk_not m (Bdd.exist m ~cube (Bdd.mk_not m f)))

let prop_relprod =
  prop "relprod = exist (and)" 300 (QCheck2.Gen.pair gen_two gen_varset) (fun ((t1, t2), vars) ->
      let m = fresh () in
      let cube = Bdd.cube_of_vars m vars in
      let f = bdd_of_table m n t1 and g = bdd_of_table m n t2 in
      Bdd.relprod m ~cube f g = Bdd.exist m ~cube (Bdd.mk_and m f g))

(* Replace by an order-changing permutation: reference permutes
   assignment bits. *)
let prop_replace_swap =
  prop "replace swaps variables 0 and 3" 300 gen_table (fun t ->
      let m = fresh () in
      let map = Bdd.make_map m [ (0, 3); (3, 0) ] in
      let expected = ref 0 in
      for a = 0 to table_bits n - 1 do
        if (t lsr a) land 1 = 1 then begin
          let b0 = (a lsr 0) land 1 and b3 = (a lsr 3) land 1 in
          let a' = a land lnot 0b1001 lor (b0 lsl 3) lor (b3 lsl 0) in
          expected := !expected lor (1 lsl a')
        end
      done;
      table_of_bdd m n (Bdd.replace m map (bdd_of_table m n t)) = !expected)

(* A non-decreasing map takes the order-preserving fast path inside
   replace; the semantics must be indistinguishable from the generic
   path: variable i of f becomes variable i+1 of the result. *)
let prop_replace_mono =
  prop "monotone shift replace matches semantics" 300 gen_table (fun t ->
      let m = fresh () in
      let map = Bdd.make_map m [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
      let g = Bdd.replace m map (bdd_of_table m n t) in
      let ok = ref (Bdd.map_is_monotone map) in
      for a = 0 to 31 do
        let expect = (t lsr ((a lsr 1) land 15)) land 1 = 1 in
        if eval m g (fun i -> (a lsr i) land 1 = 1) <> expect then ok := false
      done;
      !ok)

let prop_replace_shift =
  prop "replace to fresh variables preserves satcount" 200 gen_table (fun t ->
      let m = fresh () in
      let map = Bdd.make_map m [ (0, 4); (1, 5); (2, 6); (3, 7) ] in
      let f = bdd_of_table m n t in
      let g = Bdd.replace m map f in
      Bdd.satcount m ~vars:[| 0; 1; 2; 3 |] f = Bdd.satcount m ~vars:[| 4; 5; 6; 7 |] g)

let popcount t =
  let rec go acc t = if t = 0 then acc else go (acc + (t land 1)) (t lsr 1) in
  go 0 t

let prop_satcount =
  prop "satcount = popcount of table" 300 gen_table (fun t ->
      let m = fresh () in
      let f = bdd_of_table m n t in
      int_of_float (Bdd.satcount m ~vars:[| 0; 1; 2; 3 |] f) = popcount t
      && Bignat.to_int_opt (Bdd.satcount_big m ~vars:[| 0; 1; 2; 3 |] f) = Some (popcount t))

let prop_satcount_padded =
  prop "satcount over a wider var set scales by 2^extra" 200 gen_table (fun t ->
      let m = fresh () in
      let f = bdd_of_table m n t in
      int_of_float (Bdd.satcount m ~vars:[| 0; 1; 2; 3; 4; 5 |] f) = popcount t * 4)

let prop_iter_sat =
  prop "iter_sat enumerates exactly the table's minterms" 200 gen_table (fun t ->
      let m = fresh () in
      let f = bdd_of_table m n t in
      let seen = ref [] in
      Bdd.iter_sat m ~vars:[| 0; 1; 2; 3 |]
        (fun asg ->
          let a = ref 0 in
          Array.iteri (fun i b -> if b then a := !a lor (1 lsl i)) asg;
          seen := !a :: !seen)
        f;
      let expected = List.filter (fun a -> (t lsr a) land 1 = 1) (List.init (table_bits n) (fun a -> a)) in
      List.sort compare !seen = expected)

let prop_support =
  prop "support of x_i and x_j" 100
    QCheck2.Gen.(pair (int_range 0 7) (int_range 0 7))
    (fun (i, j) ->
      let m = fresh () in
      let f = Bdd.mk_and m (Bdd.ithvar m i) (Bdd.ithvar m j) in
      Bdd.support m f = List.sort_uniq compare [ i; j ])

(* --- Arithmetic primitives --- *)

let bits4 = [| 0; 1; 2; 3 |]

let value_set m f =
  let vals = ref [] in
  Bdd.iter_sat m ~vars:bits4
    (fun asg ->
      let v = ref 0 in
      Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) asg;
      vals := !v :: !vals)
    f;
  List.sort compare !vals

let prop_range =
  prop "range lo..hi contains exactly [lo, hi]" 200
    QCheck2.Gen.(pair (int_range 0 15) (int_range 0 15))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let m = fresh () in
      value_set m (Bdd.range m ~bits:bits4 ~lo ~hi) = List.init (hi - lo + 1) (fun i -> lo + i))

let prop_range_empty =
  prop "range with lo > hi is empty" 50
    QCheck2.Gen.(pair (int_range 1 15) (int_range 0 15))
    (fun (lo, extra) ->
      let m = fresh () in
      ignore extra;
      Bdd.range m ~bits:bits4 ~lo ~hi:(lo - 1) = Bdd.bdd_false)

let prop_const_value =
  prop "const_value is a singleton range" 50 (QCheck2.Gen.int_range 0 15) (fun v ->
      let m = fresh () in
      Bdd.const_value m ~bits:bits4 v = Bdd.range m ~bits:bits4 ~lo:v ~hi:v)

let prop_add_const =
  prop "add_const relates src to src+delta without overflow" 200
    QCheck2.Gen.(int_range 0 15)
    (fun delta ->
      let m = fresh () in
      let src = [| 0; 1; 2; 3 |] and dst = [| 4; 5; 6; 7 |] in
      let rel = Bdd.add_const m ~src ~dst ~delta in
      let ok = ref true in
      for s = 0 to 15 do
        let expect = s + delta <= 15 in
        let pair_bdd =
          Bdd.mk_and m (Bdd.const_value m ~bits:src s)
            (if expect then Bdd.const_value m ~bits:dst (s + delta) else Bdd.bdd_true)
        in
        let hit = Bdd.mk_and m rel pair_bdd <> Bdd.bdd_false in
        if hit <> expect then ok := false
      done;
      !ok)

let prop_equal_blocks =
  prop "equal_blocks = add_const 0" 20 QCheck2.Gen.unit (fun () ->
      let m = fresh () in
      Bdd.equal_blocks m ~src:[| 0; 1; 2; 3 |] ~dst:[| 4; 5; 6; 7 |]
      = Bdd.add_const m ~src:[| 0; 1; 2; 3 |] ~dst:[| 4; 5; 6; 7 |] ~delta:0)

(* --- Unit tests --- *)

let test_terminals () =
  Alcotest.(check bool) "false const" true (Bdd.is_false Bdd.bdd_false);
  Alcotest.(check bool) "true const" true (Bdd.is_true Bdd.bdd_true);
  let m = fresh () in
  Alcotest.(check bool) "x and not x" true (Bdd.mk_and m (Bdd.ithvar m 0) (Bdd.nithvar m 0) = Bdd.bdd_false);
  Alcotest.(check bool) "x or not x" true (Bdd.mk_or m (Bdd.ithvar m 0) (Bdd.nithvar m 0) = Bdd.bdd_true)

let test_hash_consing () =
  let m = fresh () in
  let f1 = Bdd.mk_and m (Bdd.ithvar m 0) (Bdd.ithvar m 1) in
  let f2 = Bdd.mk_and m (Bdd.ithvar m 1) (Bdd.ithvar m 0) in
  Alcotest.(check bool) "canonical" true (f1 = f2);
  Alcotest.(check int) "node_count of x0&x1" 2 (Bdd.node_count m f1);
  Alcotest.(check int) "node_count of var" 1 (Bdd.node_count m (Bdd.ithvar m 3))

let test_gc_preserves_roots () =
  let m = fresh () in
  let keep = ref (bdd_of_table m n 0b1011_0110_0101_1001) in
  Bdd.add_root m keep;
  (* Make garbage. *)
  for i = 0 to 50 do
    ignore (bdd_of_table m n (i * 977 land full_mask))
  done;
  let live_before = Bdd.live_nodes m in
  let table_before = table_of_bdd m n !keep in
  Bdd.gc m;
  Alcotest.(check bool) "gc frees something" true (Bdd.live_nodes m < live_before);
  Alcotest.(check int) "rooted value unchanged" table_before (table_of_bdd m n !keep);
  (* New allocations after gc reuse slots and still compute correctly. *)
  let t2 = 0b0110_1001_1100_0011 in
  Alcotest.(check int) "post-gc allocation" t2 (table_of_bdd m n (bdd_of_table m n t2));
  Alcotest.(check int) "gc counted" 1 (Bdd.gc_count m)

let test_gc_root_fn () =
  let m = fresh () in
  let stash = ref Bdd.bdd_true in
  Bdd.add_root_fn m (fun () -> [ !stash ]);
  stash := bdd_of_table m n 0xABCD;
  Bdd.gc m;
  Alcotest.(check int) "root_fn keeps value" 0xABCD (table_of_bdd m n !stash)

let test_table_growth () =
  (* Force many allocations through a tiny initial table. *)
  let m = Bdd.create ~node_hint:64 ~nvars:20 () in
  let acc = ref Bdd.bdd_false in
  for i = 0 to 19 do
    acc := Bdd.mk_or m !acc (Bdd.mk_and m (Bdd.ithvar m i) (Bdd.ithvar m ((i + 7) mod 20)))
  done;
  Alcotest.(check bool) "survives growth" true (Bdd.node_count m !acc > 20);
  Alcotest.(check bool) "peak tracked" true (Bdd.peak_live_nodes m >= Bdd.live_nodes m)

let test_to_dot () =
  let m = fresh () in
  let f = Bdd.mk_and m (Bdd.ithvar m 0) (Bdd.nithvar m 2) in
  let dot = Bdd.to_dot m f in
  Alcotest.(check bool) "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "labels present" true
    (let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains dot "x0" && contains dot "x2" && contains dot "style=dashed");
  Alcotest.(check bool) "terminal-only dot" true (String.length (Bdd.to_dot m Bdd.bdd_true) > 0)

let test_peak_and_cache_stats () =
  let m = fresh () in
  ignore (bdd_of_table m n 0xBEEF);
  let peak = Bdd.peak_live_nodes m in
  Alcotest.(check bool) "peak >= live" true (peak >= Bdd.live_nodes m);
  Bdd.reset_peak m;
  Alcotest.(check int) "reset to live" (Bdd.live_nodes m) (Bdd.peak_live_nodes m);
  (* Repeating an operation must hit the cache. *)
  let f = bdd_of_table m n 0xAAAA and g = bdd_of_table m n 0x0F0F in
  ignore (Bdd.mk_and m f g);
  let hits_before, _ = Bdd.cache_stats m in
  ignore (Bdd.mk_and m f g);
  let hits_after, _ = Bdd.cache_stats m in
  Alcotest.(check bool) "cache hit recorded" true (hits_after > hits_before)

let test_map_monotone () =
  let m = fresh () in
  Alcotest.(check bool) "shift by one is monotone" true
    (Bdd.map_is_monotone (Bdd.make_map m [ (0, 1); (1, 2); (2, 3); (3, 4) ]));
  Alcotest.(check bool) "swap is not monotone" false
    (Bdd.map_is_monotone (Bdd.make_map m [ (0, 3); (3, 0) ]));
  (* Moving a whole block past unmapped variables is non-monotone as a
     total map (7 -> 4 at the seam) even though it is increasing on the
     mapped variables alone. *)
  Alcotest.(check bool) "block move is not monotone" false
    (Bdd.map_is_monotone (Bdd.make_map m [ (0, 4); (1, 5); (2, 6); (3, 7) ]))

let test_cache_survives_gc () =
  let m = fresh () in
  let f = ref (bdd_of_table m n 0xAAAA) and g = ref (bdd_of_table m n 0x0FF0) in
  Bdd.add_root m f;
  Bdd.add_root m g;
  let keep = ref (Bdd.mk_and m !f !g) in
  Bdd.add_root m keep;
  for i = 0 to 30 do
    ignore (bdd_of_table m n (i * 41 land full_mask))
  done;
  (* Refresh the cache entry (garbage above may have evicted the slot),
     then collect: operands and result are rooted, so the sweep must
     keep the entry and the next lookup must hit. *)
  ignore (Bdd.mk_and m !f !g);
  Bdd.gc m;
  let hits_before = fst (Bdd.cache_stats m) in
  let r2 = Bdd.mk_and m !f !g in
  Alcotest.(check bool) "same node after gc" true (r2 = !keep);
  Alcotest.(check bool) "cache hit after gc" true (fst (Bdd.cache_stats m) > hits_before);
  let per = Bdd.cache_stats_by_class m in
  let h, ms = List.fold_left (fun (h, ms) (_, h', m') -> (h + h', ms + m')) (0, 0) per in
  Alcotest.(check bool) "per-class stats sum to totals" true ((h, ms) = Bdd.cache_stats m);
  Alcotest.(check bool) "and class present" true (List.exists (fun (nm, _, _) -> nm = "and") per)

let test_extend_vars () =
  let m = Bdd.create ~nvars:2 () in
  Alcotest.check_raises "out of range" (Invalid_argument "Bdd.ithvar") (fun () -> ignore (Bdd.ithvar m 5));
  Bdd.extend_vars m 6;
  Alcotest.(check bool) "after extend" true (Bdd.ithvar m 5 <> Bdd.bdd_false)

let () =
  Alcotest.run "bdd"
    [
      ( "unit",
        [
          Alcotest.test_case "terminals" `Quick test_terminals;
          Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "gc preserves roots" `Quick test_gc_preserves_roots;
          Alcotest.test_case "gc root functions" `Quick test_gc_root_fn;
          Alcotest.test_case "node table growth" `Quick test_table_growth;
          Alcotest.test_case "extend_vars" `Quick test_extend_vars;
          Alcotest.test_case "map monotonicity" `Quick test_map_monotone;
          Alcotest.test_case "cache survives gc" `Quick test_cache_survives_gc;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
          Alcotest.test_case "peak and cache stats" `Quick test_peak_and_cache_stats;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip;
            prop_and;
            prop_or;
            prop_xor;
            prop_diff;
            prop_imp;
            prop_biimp;
            prop_not;
            prop_ite;
            prop_exist;
            prop_forall;
            prop_relprod;
            prop_replace_swap;
            prop_replace_mono;
            prop_replace_shift;
            prop_satcount;
            prop_satcount_padded;
            prop_iter_sat;
            prop_support;
            prop_range;
            prop_range_empty;
            prop_const_value;
            prop_add_const;
            prop_equal_blocks;
          ] );
    ]
