(* Randomized differential tests for the paged node arena: a capped
   manager (tiny pages, byte cap far below the working set, spilling
   cold pages to disk) must compute bit-for-bit the same relations as
   an uncapped, effectively-flat manager running the identical
   operation sequence.

   Both spaces are created with the same variable layout, so the
   canonical {!Bdd.serialize} dump — which is independent of handle
   numbering — doubles as the bit-identity fingerprint: equal dumps
   mean equal BDDs, whatever paging, eviction, and GC renumbering
   happened along the way.  The sequences interleave explicit GCs
   (compaction renumbers and level-clusters survivors) and are sized
   so the capped side provably pages: the suite asserts >= 100
   evictions actually occurred. *)

let seed = 0xa7e4a
let steps = 220
let gc_every = 16
let initial_tuples = 150
let dom_size = 256

(* Page/cap geometry: 16-slot pages (the clamp floor) of 512 data
   bytes each; an 8 KiB cap leaves ~13 unpinned resident pages, far
   below the thousands of nodes the sequence allocates. *)
let tiny_page_bits = 4
let tiny_cap = 8 * 1024

let dom = Domain.make ~name:"D" ~size:dom_size ()

type side = {
  sp : Space.t;
  man : Bdd.man;
  b : Space.block array;
  rels : Relation.t array;
}

let attrs side =
  [ { Relation.attr_name = "x"; block = side.b.(0) }; { attr_name = "y"; block = side.b.(1) } ]

let make_side ?page_bits ?mem_cap_bytes ?spill_path tuples =
  let sp = Space.create ~node_hint:64 ?page_bits ?mem_cap_bytes ?spill_path () in
  let b = Space.alloc_interleaved sp dom 3 in
  let side = { sp; man = Space.man sp; b; rels = [||] } in
  let make i =
    Relation.of_tuples sp ~name:(Printf.sprintf "r%d" i) (attrs side)
      (List.map Array.of_list tuples.(i))
  in
  { side with rels = Array.init 3 make }

let random_tuples rs k = List.init k (fun _ -> [ Random.State.int rs dom_size; Random.State.int rs dom_size ])

let sorted_tuples r = List.sort compare (List.map Array.to_list (Relation.tuples r))

(* The fingerprint: one shared-DAG canonical dump of all three roots. *)
let fingerprint side =
  Bdd.serialize side.man (Array.to_list (Array.map Relation.bdd side.rels))

let check_sides ctx a b =
  for k = 0 to 2 do
    Alcotest.(check (list (list int)))
      (Printf.sprintf "%s: rel %d tuples" ctx k)
      (sorted_tuples a.rels.(k)) (sorted_tuples b.rels.(k))
  done;
  Alcotest.(check string) (ctx ^ ": canonical dumps identical") (fingerprint a) (fingerprint b)

(* One random mutation, described as data so the identical step can be
   replayed against both sides. *)
type op =
  | Add of int * int list list
  | Union of int * int * int
  | Inter of int * int * int
  | Diff of int * int * int
  | SelectInto of int * string * int

let random_op rs =
  let r3 () = Random.State.int rs 3 in
  match Random.State.int rs 6 with
  | 0 -> Add (r3 (), random_tuples rs (1 + Random.State.int rs 5))
  | 1 -> Union (r3 (), r3 (), r3 ())
  | 2 -> Inter (r3 (), r3 (), r3 ())
  | 3 -> Diff (r3 (), r3 (), r3 ())
  | 4 -> SelectInto (r3 (), (if Random.State.bool rs then "x" else "y"), Random.State.int rs dom_size)
  | _ -> Add (r3 (), random_tuples rs (4 + Random.State.int rs 8))

let apply_op side = function
  | Add (k, tuples) -> List.iter (fun t -> Relation.add_tuple side.rels.(k) (Array.of_list t)) tuples
  | Union (k, i, j) ->
      Relation.set_bdd side.rels.(k)
        (Bdd.mk_or side.man (Relation.bdd side.rels.(i)) (Relation.bdd side.rels.(j)))
  | Inter (k, i, j) ->
      Relation.set_bdd side.rels.(k)
        (Bdd.mk_and side.man (Relation.bdd side.rels.(i)) (Relation.bdd side.rels.(j)))
  | Diff (k, i, j) ->
      Relation.set_bdd side.rels.(k)
        (Bdd.mk_diff side.man (Relation.bdd side.rels.(i)) (Relation.bdd side.rels.(j)))
  | SelectInto (k, a, v) ->
      let sel = Relation.select side.rels.(k) a v in
      Relation.set_bdd side.rels.(k) (Relation.bdd sel);
      Relation.dispose sel

let setup_pair rs ~spill_path =
  let tuples = Array.init 3 (fun _ -> random_tuples rs initial_tuples) in
  let flat = make_side tuples in
  let capped =
    make_side ~page_bits:tiny_page_bits ~mem_cap_bytes:tiny_cap ~spill_path tuples
  in
  (flat, capped)

let with_tmp_spill f =
  let path = Filename.temp_file "arena-test" ".spill" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* Growth + >= 3 GCs + heavy paging: the core differential run. *)
let test_differential_capped () =
  with_tmp_spill @@ fun spill_path ->
  let rs = Random.State.make [| seed |] in
  let flat, capped = setup_pair rs ~spill_path in
  check_sides "initial" flat capped;
  for n = 0 to steps - 1 do
    let op = random_op rs in
    apply_op flat op;
    apply_op capped op;
    if (n + 1) mod gc_every = 0 then begin
      Bdd.gc flat.man;
      Bdd.gc capped.man
    end;
    if (n + 1) mod 40 = 0 then check_sides (Printf.sprintf "step %d" n) flat capped
  done;
  check_sides "final" flat capped;
  Alcotest.(check bool) "at least 3 gcs" true (Bdd.gc_count capped.man >= 3);
  let st = Bdd.arena_stats capped.man in
  Alcotest.(check bool)
    (Printf.sprintf "capped side really paged (%d evictions)" st.Bdd.evictions)
    true
    (st.Bdd.evictions >= 100);
  Alcotest.(check bool) "spill file saw writes" true (st.Bdd.spill_writes > 0);
  Alcotest.(check bool) "spilled pages faulted back" true (st.Bdd.fault_ins > 0);
  (* The uncapped side must never have touched the pager. *)
  let fl = Bdd.arena_stats flat.man in
  Alcotest.(check int) "flat side: zero evictions" 0 fl.Bdd.evictions;
  Alcotest.(check int) "flat side: zero spill writes" 0 fl.Bdd.spill_writes

(* Freezing a paged space: the snapshot is fully resident and answers
   exactly like the live relations did. *)
let test_freeze_capped () =
  with_tmp_spill @@ fun spill_path ->
  let rs = Random.State.make [| seed + 1 |] in
  let flat, capped = setup_pair rs ~spill_path in
  for n = 0 to 99 do
    let op = random_op rs in
    apply_op flat op;
    apply_op capped op;
    if (n + 1) mod gc_every = 0 then Bdd.gc capped.man
  done;
  let live = Array.map sorted_tuples capped.rels in
  (* Space first, relations after: the freeze-time compaction
     renumbers, rewriting the registered roots in place. *)
  let fz = Space.freeze capped.sp in
  let frels = Array.map Relation.freeze capped.rels in
  Alcotest.(check bool) "frozen snapshot has bytes" true (Space.frozen_bytes fz > 0);
  let ctx = Space.eval_ctx fz in
  Array.iteri
    (fun k fr ->
      let tuples = List.sort compare (List.map Array.to_list (Relation.tuples_ctx ctx fr)) in
      Alcotest.(check (list (list int))) (Printf.sprintf "frozen rel %d" k) live.(k) tuples)
    frels;
  check_sides "live relations undisturbed by freeze" flat capped

(* A budget abort mid-way through a bulk load on a paging arena must
   leave the manager consistent; redoing the idempotent additions
   lands on exactly the flat side's result. *)
let test_budget_abort_resume () =
  with_tmp_spill @@ fun spill_path ->
  let rs = Random.State.make [| seed + 2 |] in
  let flat, capped = setup_pair rs ~spill_path in
  let tuples = random_tuples rs 2500 in
  let add_all side = List.iter (fun t -> Relation.add_tuple side.rels.(0) (Array.of_list t)) tuples in
  Bdd.set_budget capped.man
    (Some (Budget.make ~max_allocations:(Bdd.allocations capped.man + 1) ()));
  let aborted =
    match add_all capped with
    | () -> false
    | exception Bdd.Limit_exceeded (Budget.Allocations _) -> true
  in
  Alcotest.(check bool) "budget aborted the bulk load" true aborted;
  Bdd.gc capped.man;
  Bdd.set_budget capped.man None;
  add_all capped;
  add_all flat;
  check_sides "after abort and resume" flat capped

(* An injected crash on a spill write surfaces as the injector's
   exception with the pool unmutated: clearing the hook, the very same
   workload continues and still matches the flat side bit-for-bit. *)
let test_spill_fault_injection () =
  with_tmp_spill @@ fun spill_path ->
  let rs = Random.State.make [| seed + 3 |] in
  let flat, capped = setup_pair rs ~spill_path in
  let ops = List.init 120 (fun _ -> random_op rs) in
  List.iter (apply_op flat) ops;
  Faults.set_fs_hook
    (Some (fun label -> if label = "arena-spill-write" then raise (Faults.Crashed label)));
  let crashed = ref false in
  let rec run = function
    | [] -> ()
    | op :: rest -> (
        match apply_op capped op with
        | () -> run rest
        | exception Faults.Crashed _ ->
            crashed := true;
            Faults.set_fs_hook None;
            (* The failed eviction mutated nothing: retry the same op,
               then finish the sequence. *)
            run (op :: rest))
  in
  Fun.protect ~finally:(fun () -> Faults.set_fs_hook None) (fun () -> run ops);
  Alcotest.(check bool) "fault actually fired" true !crashed;
  check_sides "after injected spill fault" flat capped

(* A genuinely failing spill device (path into a missing directory) is
   a structured [Solver_error], not a crash or a corrupt arena. *)
let test_spill_io_error_is_structured () =
  let rs = Random.State.make [| seed + 4 |] in
  let tuples = Array.init 3 (fun _ -> random_tuples rs initial_tuples) in
  let outcome =
    match
      let broken =
        make_side ~page_bits:tiny_page_bits ~mem_cap_bytes:tiny_cap
          ~spill_path:"/nonexistent-arena-dir/arena.spill" tuples
      in
      List.iter
        (fun t -> Relation.add_tuple broken.rels.(0) (Array.of_list t))
        (random_tuples rs 4000)
    with
    | () -> "completed without spilling"
    | exception Solver_error.Error (Solver_error.Internal msg) ->
        if String.length msg >= 6 && String.sub msg 0 6 = "arena:" then "structured arena error"
        else "internal error without arena context: " ^ msg
  in
  Alcotest.(check string) "spill IO failure outcome" "structured arena error" outcome

let count_fds () =
  if Sys.file_exists "/proc/self/fd" then Array.length (Sys.readdir "/proc/self/fd") else -1

(* A disk-full (or EIO) hit mid-spill must abort as a *structured*
   [Solver_error.Internal] — not a raw [Unix_error] — with the page
   pool unmutated, the spill fd closed and the scratch file released
   (holding disk exactly when the disk ran out would be perverse).
   The recovery path is the driver's: dispose and re-run the same
   workload on a fresh manager, which lands bit-identical to the
   never-faulted flat side. *)
let test_enospc_mid_spill () =
  with_tmp_spill @@ fun spill_path ->
  let rs = Random.State.make [| seed + 5 |] in
  (* Baseline before any capped arena exists: after the abort closes
     the scratch fd, the process must be back to exactly this. *)
  let fds_before = count_fds () in
  let tuples = Array.init 3 (fun _ -> random_tuples rs initial_tuples) in
  let flat = make_side tuples in
  let ops = List.init 120 (fun _ -> random_op rs) in
  List.iter (apply_op flat) ops;
  Faults.set_fs_hook
    (Some
       (fun label ->
         if label = "arena-spill-write" then raise (Unix.Unix_error (Unix.ENOSPC, "write", spill_path))));
  let outcome =
    Fun.protect
      ~finally:(fun () -> Faults.set_fs_hook None)
      (fun () ->
        match
          let capped = make_side ~page_bits:tiny_page_bits ~mem_cap_bytes:tiny_cap ~spill_path tuples in
          List.iter (apply_op capped) ops
        with
        | () -> "completed without spilling"
        | exception Solver_error.Error (Solver_error.Internal msg) ->
            if String.length msg >= 6 && String.sub msg 0 6 = "arena:" then "structured arena error"
            else "internal error without arena context: " ^ msg
        | exception Unix.Unix_error (e, _, _) -> "raw Unix_error escaped: " ^ Unix.error_message e)
  in
  Alcotest.(check string) "ENOSPC outcome" "structured arena error" outcome;
  (* The failing write closed the scratch fd and removed the file:
     descriptor count is back to the pre-arena baseline. *)
  Alcotest.(check int) "spill fd closed on abort" fds_before (count_fds ());
  Alcotest.(check bool) "scratch file released" false (Sys.file_exists spill_path);
  (* Retry on a fresh manager (fault cleared): bit-identical result. *)
  let retry = make_side ~page_bits:tiny_page_bits ~mem_cap_bytes:tiny_cap ~spill_path tuples in
  List.iter (apply_op retry) ops;
  check_sides "after ENOSPC abort, fresh-manager retry" flat retry

(* Orphan spill scratch files (a SIGKILLed capped process leaves one
   behind) are swept at the next arena startup in the same directory —
   but only when the creator pid is provably dead *and* the file is
   old enough; live-process and fresh files are never touched. *)
let test_sweep_stale_spills () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "sweep-test-%d" (Unix.getpid ())) in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  Unix.mkdir dir 0o755;
  (* A provably dead pid: fork a child that exits immediately and reap
     it.  (Reuse before the test ends is astronomically unlikely.) *)
  let dead_pid =
    match Unix.fork () with
    | 0 -> Stdlib.exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        pid
  in
  let touch ?(age = 0.0) name =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc "junk";
    close_out oc;
    if age > 0.0 then begin
      let t = Unix.gettimeofday () -. age in
      Unix.utimes path t t
    end;
    path
  in
  let dead_old = touch ~age:3600.0 (Printf.sprintf "arena.%d.spill" dead_pid) in
  let dead_old2 = touch ~age:3600.0 (Printf.sprintf "whalelam-arena.%d.abc123.spill" dead_pid) in
  let dead_fresh = touch (Printf.sprintf "whalelam-arena.%d.fresh1.spill" dead_pid) in
  (* same name family, but fresh: age guard must protect it *)
  let live = touch ~age:3600.0 (Printf.sprintf "arena.%d.spill" (Unix.getpid ())) in
  let other = touch ~age:3600.0 "not-an-arena-file.spill" in
  let removed = Bdd.sweep_stale_spills ~dir () in
  Alcotest.(check int) "swept exactly the dead+old scratch files" 2 removed;
  Alcotest.(check bool) "dead old arena.* gone" false (Sys.file_exists dead_old);
  Alcotest.(check bool) "dead old whalelam-arena.* gone" false (Sys.file_exists dead_old2);
  Alcotest.(check bool) "fresh file survives (age guard)" true (Sys.file_exists dead_fresh);
  Alcotest.(check bool) "live-pid file survives" true (Sys.file_exists live);
  Alcotest.(check bool) "unrelated file survives" true (Sys.file_exists other);
  (* max_age_s:0 drops the age guard: the fresh dead-pid file goes too. *)
  Alcotest.(check int) "age 0 sweeps the fresh dead-pid file" 1 (Bdd.sweep_stale_spills ~max_age_s:0.0 ~dir ());
  Alcotest.(check bool) "fresh dead-pid file gone at age 0" false (Sys.file_exists dead_fresh);
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let () =
  Alcotest.run "arena"
    [
      ( "differential",
        [
          Alcotest.test_case "capped vs flat, growth + 3 GCs + >=100 evictions" `Quick
            test_differential_capped;
        ] );
      ("freeze", [ Alcotest.test_case "freeze a paged space" `Quick test_freeze_capped ]);
      ( "budget",
        [ Alcotest.test_case "abort and resume under a cap" `Quick test_budget_abort_resume ] );
      ( "faults",
        [
          Alcotest.test_case "injected spill crash leaves arena usable" `Quick
            test_spill_fault_injection;
          Alcotest.test_case "spill IO error is a structured solver error" `Quick
            test_spill_io_error_is_structured;
          Alcotest.test_case "ENOSPC mid-spill: structured abort, fd closed, retry identical" `Quick
            test_enospc_mid_spill;
        ] );
      ( "sweep",
        [ Alcotest.test_case "stale spill scratch files swept, guarded by pid and age" `Quick
            test_sweep_stale_spills ] );
    ]
