(* Replicated serving tier soak: the snapshot-follower swap machinery
   in-process, then the real thing — two [ptacli serve --follow]
   daemons behind a [ptacli route] router taking continuous mixed load
   while a writer re-saves the store, followers are SIGKILLed and
   restarted mid-swap, and a crash-injected save tears the snapshot on
   disk.  Acceptance, per the replication design:

   - zero wrong answers: every data reply is checked against a
     versioned oracle (variable [v2] points to exactly [h(32+version)],
     so any answer identifies which snapshot served it);
   - zero client-visible dropped connections or [err unavailable];
   - >= 5 rolling swaps and >= 2 follower kill/restarts under >= 1k
     queries;
   - torn snapshots are rejected (old snapshot keeps serving) and the
     next clean save recovers;
   - the old frozen spaces really die: fd count flat and major-heap
     live words bounded across >= 20 in-process swaps;
   - a follower pointed at a broken store exits 1 without binding. *)

module Serve = Pta.Serve

let tmp_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "whalelam-%s-%d" name (Unix.getpid ())) in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  dir

let count_fds () =
  if Sys.file_exists "/proc/self/fd" then Some (Array.length (Sys.readdir "/proc/self/fd")) else None

(* --- Versioned store ------------------------------------------------
   Tiny points-to store whose content encodes its own version: [v2]
   points to exactly [h(32+version)] and nothing else, every other
   variable to the constant pair [h(v), h(v+8)].  An optional bulk
   [filler] relation (fresh pseudo-random tuples per version) makes
   each frozen space big enough that a leaked one is visible in the
   major heap. *)

let nv = 8
let nh = 4096
let repl_key = "repl-0123456789abcdef" (* ptacli logs [String.sub key 0 12] *)

let save_version ?(filler = 0) ~dir version =
  let sp = Space.create () in
  let vdom = Domain.make ~name:"V" ~size:nv ~element_names:(Array.init nv (Printf.sprintf "v%d")) () in
  let hdom = Domain.make ~name:"H" ~size:nh ~element_names:(Array.init nh (Printf.sprintf "h%d")) () in
  let vb = Space.alloc sp vdom and hb = Space.alloc sp hdom in
  let tuples =
    List.concat_map
      (fun v -> if v = 2 then [ [| 2; 32 + version |] ] else [ [| v; v |]; [| v; v + 8 |] ])
      (List.init nv Fun.id)
  in
  let vp =
    Relation.of_tuples sp ~name:"vP"
      [ { Relation.attr_name = "variable"; block = vb }; { Relation.attr_name = "heap"; block = hb } ]
      tuples
  in
  let relations =
    if filler = 0 then [ vp ]
    else begin
      let hb2 = Space.alloc sp hdom in
      let rng = Random.State.make [| 0xF111; version |] in
      let bulk =
        Relation.of_tuples sp ~name:"filler"
          [ { Relation.attr_name = "a"; block = hb }; { Relation.attr_name = "b"; block = hb2 } ]
          (List.init filler (fun _ -> [| Random.State.int rng nh; Random.State.int rng nh |]))
      in
      [ vp; bulk ]
    end
  in
  Store.save ~dir ~key:repl_key ~config:[] ~space:sp ~relations

let v2_answer version = [ Printf.sprintf "h%d" (32 + version) ]
let sorted = List.sort compare

(* --- In-process rolling swaps --------------------------------------
   Source + Pool + Follow wired exactly as the [ptacli serve --follow]
   driver wires them, churned through 24 snapshot swaps.  Checks the
   swap protocol (answers flip atomically, identity tracks the disk),
   the rejection path (a corrupted manifest leaves the old snapshot
   serving, reported once per broken disk state), and reclamation (fd
   count flat, live words bounded — the 23 dead frozen spaces, each
   carrying a ~10k-tuple filler relation, must actually be GC'd). *)

let test_inprocess_swaps () =
  let dir = tmp_dir "repl-inproc" in
  let filler = 10_000 in
  save_version ~filler ~dir 1;
  let source = Serve.Source.create (Serve.make (Store.load ~dir)) in
  let stats = Serve.make_stats () in
  let pool = Serve.Pool.create ~stats ~workers:2 source in
  let follow = Serve.Follow.make ~dir source in
  let ask line =
    let s = Serve.Pool.run pool line in
    if not s.Serve.outcome.Serve.ok then
      Alcotest.failf "query %S failed: %s" line (String.concat " | " s.Serve.outcome.Serve.lines);
    sorted s.Serve.outcome.Serve.lines
  in
  Alcotest.(check (list string)) "initial v2" (v2_answer 1) (ask "points-to v2");
  let fd0 = count_fds () in
  let live_words () =
    Gc.full_major ();
    (Gc.stat ()).Gc.live_words
  in
  let baseline = ref 0 in
  let last_swaps = 25 in
  for v = 2 to last_swaps do
    save_version ~filler ~dir v;
    (match Serve.Follow.poll follow with
    | Serve.Follow.Swapped { snapshot; key; _ } ->
      Alcotest.(check string) "swap key" repl_key key;
      Alcotest.(check int) "swap snapshot" v snapshot
    | Serve.Follow.Unchanged -> Alcotest.failf "swap %d: poll saw no change" v
    | Serve.Follow.Rejected { reason } -> Alcotest.failf "swap %d rejected: %s" v reason);
    Serve.Pool.poke pool;
    (* The very next pooled request must already see the new snapshot:
       workers refresh before serving, never mid-request. *)
    Alcotest.(check (list string)) (Printf.sprintf "v2 after swap %d" v) (v2_answer v) (ask "points-to v2");
    Alcotest.(check (list string)) (Printf.sprintf "v0 after swap %d" v) [ "h0"; "h8" ] (ask "points-to v0");
    Alcotest.(check (pair string int)) "served ident" (repl_key, v) (Serve.Follow.served_ident follow);
    if v = 6 then baseline := live_words ()
  done;
  (* Reclamation: 19 further swaps past the baseline may not have
     accumulated dead frozen spaces (each filler space alone is >> the
     slack if retained). *)
  let final = live_words () in
  if final > !baseline + 300_000 then
    Alcotest.failf "frozen spaces leak across swaps: %d live words after swap 6, %d after swap %d" !baseline final
      last_swaps;
  (match (fd0, count_fds ()) with
  | Some a, Some b -> Alcotest.(check int) "fd count flat across swaps" a b
  | _ -> ());
  (* Rejection: a manifest claiming a new identity but failing its
     self-checksum must be refused, old snapshot still serving; the
     same broken disk state is reported only once (stat dedup). *)
  let mpath = Store.manifest_path dir in
  let pristine = In_channel.with_open_bin mpath In_channel.input_all in
  let broken =
    String.split_on_char '\n' pristine
    |> List.map (fun l -> if l = Printf.sprintf "snapshot %d" last_swaps then "snapshot 9999" else l)
    |> String.concat "\n"
  in
  Out_channel.with_open_bin mpath (fun oc -> Out_channel.output_string oc broken);
  (match Serve.Follow.poll follow with
  | Serve.Follow.Rejected _ -> ()
  | _ -> Alcotest.fail "corrupt manifest was not rejected");
  Alcotest.(check (list string)) "old snapshot serves after rejection" (v2_answer last_swaps) (ask "points-to v2");
  (match Serve.Follow.poll follow with
  | Serve.Follow.Unchanged -> ()
  | Serve.Follow.Swapped _ -> Alcotest.fail "swapped onto a corrupt manifest"
  | Serve.Follow.Rejected { reason } -> Alcotest.failf "rejection not deduped: %s" reason);
  (* Restoring the pristine manifest is not a new snapshot (same
     identity as served)… *)
  Out_channel.with_open_bin mpath (fun oc -> Out_channel.output_string oc pristine);
  (match Serve.Follow.poll follow with
  | Serve.Follow.Unchanged -> ()
  | _ -> Alcotest.fail "restored manifest should read as unchanged");
  (* …and a clean save right after recovers the swap pipeline. *)
  save_version ~filler ~dir (last_swaps + 1);
  (match Serve.Follow.poll follow with
  | Serve.Follow.Swapped { snapshot; _ } -> Alcotest.(check int) "recovery snapshot" (last_swaps + 1) snapshot
  | _ -> Alcotest.fail "clean save after rejection did not swap");
  Serve.Pool.poke pool;
  Alcotest.(check (list string)) "v2 after recovery" (v2_answer (last_swaps + 1)) (ask "points-to v2");
  Serve.Pool.shutdown pool

(* --- Process-level soak ---------------------------------------------
   Real binaries, real sockets, real kills. *)

let bin = "../bin/ptacli.exe"

let devnull = lazy (Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0)

let spawn args log =
  let logfd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let pid = Unix.create_process bin args (Lazy.force devnull) logfd logfd in
  Unix.close logfd;
  pid

let spawn_follower ~dir ~sock ~log =
  spawn
    [| bin; "serve"; "--store"; dir; "--socket"; sock; "--follow"; "--poll-interval"; "0.05"; "--workers"; "2" |]
    log

let wait_for_socket sock =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    let ready =
      Sys.file_exists sock
      &&
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect fd (Unix.ADDR_UNIX sock) with
          | () -> true
          | exception Unix.Unix_error _ -> false)
    in
    if ready then ()
    else if Unix.gettimeofday () > deadline then Alcotest.failf "socket %s never came up" sock
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

(* Strictly framed client: header [ok|err <cmd> <rows> <latency>],
   then exactly [rows] body lines after [ok] and exactly one after
   [err].  Any framing violation or channel error is a client-visible
   drop — an immediate failure. *)
type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let disconnect c =
  (try
     output_string c.oc "quit\n";
     flush c.oc
   with Sys_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let ask_framed c line =
  output_string c.oc (line ^ "\n");
  flush c.oc;
  let header = input_line c.ic in
  match String.split_on_char ' ' (String.trim header) with
  | status :: _cmd :: rows :: _ when status = "ok" || status = "err" ->
    let n =
      if status = "err" then 1
      else
        match int_of_string_opt rows with
        | Some n when n >= 0 -> n
        | _ -> failwith (Printf.sprintf "query %S: bad rows in header %S" line header)
    in
    let body = ref [] in
    for _ = 1 to n do
      body := input_line c.ic :: !body
    done;
    (status, List.rev !body)
  | _ -> failwith (Printf.sprintf "query %S: bad header %S" line header)

let test_process_soak () =
  let dir = tmp_dir "repl-soak" in
  let sockdir = tmp_dir "repl-socks" in
  ignore (Sys.command (Printf.sprintf "mkdir -p %s" (Filename.quote sockdir)));
  let s1 = Filename.concat sockdir "f1.sock"
  and s2 = Filename.concat sockdir "f2.sock"
  and rs = Filename.concat sockdir "router.sock" in
  let l1 = Filename.concat sockdir "f1.log"
  and l2 = Filename.concat sockdir "f2.log"
  and lr = Filename.concat sockdir "router.log" in
  save_version ~dir 1;
  let f1 = ref (spawn_follower ~dir ~sock:s1 ~log:l1) in
  let f2 = ref (spawn_follower ~dir ~sock:s2 ~log:l2) in
  wait_for_socket s1;
  wait_for_socket s2;
  let router =
    spawn
      [|
        bin; "route"; "--socket"; rs; "--backend"; s1; "--backend"; s2; "--probe-interval"; "0.2"; "--retries"; "4";
        "--request-timeout"; "10"; "--max-clients"; "32";
      |]
      lr
  in
  wait_for_socket rs;
  (* Shared soak state: the writer publishes the newest version before
     saving it, so every client-side check is against versions 1..maxv
     — any other answer is a wrong answer from nowhere. *)
  let maxv = Atomic.make 1 in
  let stop = Atomic.make false in
  let queries = Atomic.make 0 in
  let failure = Atomic.make None in
  let fail_once fmt =
    Printf.ksprintf
      (fun msg -> if Atomic.compare_and_set failure None (Some msg) then Atomic.set stop true)
      fmt
  in
  let client_loop tid () =
    match connect rs with
    | exception e -> fail_once "client %d could not connect: %s" tid (Printexc.to_string e)
    | c ->
      (try
         let i = ref 0 in
         while not (Atomic.get stop) do
           incr i;
           (match !i mod 8 with
           | 0 | 1 | 4 -> (
             let status, body = ask_framed c "points-to v2" in
             let hi = Atomic.get maxv in
             match (status, body) with
             | "ok", [ h ] ->
               let ok = List.exists (fun v -> v2_answer v = [ h ]) (List.init hi (fun i -> i + 1)) in
               if not ok then fail_once "client %d: v2 answered %S, valid versions 1..%d" tid h hi
             | _ -> fail_once "client %d: v2 reply %s/%d rows" tid status (List.length body))
           | 2 ->
             let status, body = ask_framed c "points-to v0" in
             if not (status = "ok" && sorted body = [ "h0"; "h8" ]) then
               fail_once "client %d: v0 answered %s %s" tid status (String.concat "," body)
           | 3 -> (
             let status, body = ask_framed c "alias v0 v0" in
             match (status, body) with
             | "ok", "yes" :: rest when sorted rest = [ "h0"; "h8" ] -> ()
             | _ -> fail_once "client %d: alias v0 v0 answered %s %s" tid status (String.concat "," body))
           | 5 ->
             let status, body = ask_framed c "count vP" in
             if not (status = "ok" && body = [ "vP 15" ]) then
               fail_once "client %d: count vP answered %s %s" tid status (String.concat "," body)
           | 6 ->
             (* Router-local commands, still strictly framed. *)
             let status, _ = ask_framed c (if !i mod 16 = 6 then "health" else "stats") in
             if status <> "ok" then fail_once "client %d: router %s not ok" tid status
           | _ ->
             let status, body = ask_framed c "points-to nosuchvar" in
             if not (status = "err" && List.length body = 1) then
               fail_once "client %d: semantic error misframed: %s/%d" tid status (List.length body));
           Atomic.incr queries
         done
       with e -> fail_once "client %d dropped: %s" tid (Printexc.to_string e));
      disconnect c
  in
  let clients = List.init 4 (fun tid -> Thread.create (client_loop tid) ()) in
  let reap pid = ignore (Unix.waitpid [] pid) in
  let kill_and_restart which pidref sock log =
    Unix.kill !pidref Sys.sigkill;
    reap !pidref;
    Thread.delay 0.2;
    (* SIGKILL leaves the socket file behind: the restart exercises
       stale-socket reclamation. *)
    pidref := spawn_follower ~dir ~sock ~log;
    wait_for_socket sock;
    ignore which
  in
  (* Writer + chaos: six rolling saves; follower 1 killed/restarted
     under version 3, follower 2 under version 5, and a crash-injected
     save tears the store on disk after version 4 (both followers must
     reject it and keep serving; the version-5 save recovers). *)
  for v = 2 to 7 do
    Atomic.set maxv v;
    save_version ~dir v;
    Thread.delay 0.4;
    match v with
    | 3 -> kill_and_restart "f1" f1 s1 l1
    | 4 ->
      (match Faults.crash_at_fs_op 10 (fun () -> save_version ~dir 31) with
      | Some label ->
        if not (String.length label >= 5 && String.sub label 0 5 = "write") then
          Alcotest.failf "torn save crashed at %S, expected a data write" label
      | None -> Alcotest.fail "torn-save crash point never fired");
      Alcotest.(check bool) "torn save leaves no committed store" true (Store.read_ident ~dir = None);
      (* Let both followers poll the debris and reject it while load
         continues. *)
      Thread.delay 0.4
    | 5 -> kill_and_restart "f2" f2 s2 l2
    | _ -> ()
  done;
  (* Keep the load running until the query floor is comfortably met. *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  while Atomic.get queries < 1200 && Atomic.get failure = None && Unix.gettimeofday () < deadline do
    Thread.delay 0.05
  done;
  Atomic.set stop true;
  List.iter Thread.join clients;
  (match Atomic.get failure with
  | Some msg ->
    List.iter
      (fun log ->
        if Sys.file_exists log then
          Printf.printf "--- %s ---\n%s\n" log (In_channel.with_open_bin log In_channel.input_all))
      [ l1; l2; lr ];
    Alcotest.fail msg
  | None -> ());
  let total = Atomic.get queries in
  Printf.printf "process soak: %d queries, final version 7\n%!" total;
  Alcotest.(check bool) "soak floor: >= 1200 queries" true (total >= 1200);
  (* Convergence: both backends behind the router must reach version 7
     — eight consecutive round-robined answers pin both. *)
  let c = connect rs in
  let rec converge n tries =
    if n >= 8 then ()
    else if tries > 400 then Alcotest.fail "fleet never converged to version 7"
    else begin
      let status, body = ask_framed c "points-to v2" in
      if status = "ok" && body = v2_answer 7 then converge (n + 1) tries
      else begin
        Thread.delay 0.05;
        converge 0 (tries + 1)
      end
    end
  in
  converge 0 0;
  (* The router observed the chaos: sticky connections to a SIGKILLed
     backend fail mid-use, so at least one retry switched backends. *)
  let _, stats_body = ask_framed c "stats" in
  let counter name =
    List.fold_left
      (fun acc l ->
        match String.split_on_char ' ' l with
        | [ n; v ] when n = name -> ( match int_of_string_opt v with Some i -> i | None -> acc)
        | _ -> acc)
      (-1) stats_body
  in
  let failovers = counter "failovers" in
  Printf.printf "router: retries %d failovers %d unavailable %d\n%!" (counter "retries") failovers
    (counter "unavailable");
  Alcotest.(check bool) "router failed over at least once" true (failovers >= 1);
  Alcotest.(check int) "no err unavailable ever synthesized" 0 (counter "unavailable");
  disconnect c;
  (* Graceful teardown; then audit the follower logs for the swap and
     fault lines the soak must have produced. *)
  Unix.kill router Sys.sigterm;
  reap router;
  Unix.kill !f1 Sys.sigterm;
  Unix.kill !f2 Sys.sigterm;
  reap !f1;
  reap !f2;
  let log_count needle log =
    let text = In_channel.with_open_bin log In_channel.input_all in
    let n = String.length needle and len = String.length text in
    let count = ref 0 in
    for pos = 0 to len - n do
      if String.sub text pos n = needle then incr count
    done;
    !count
  in
  List.iter
    (fun log ->
      if log_count "serve: swap ok" log < 3 then Alcotest.failf "%s: fewer than 3 swaps logged" log;
      if log_count "serve: swap rejected" log < 1 then Alcotest.failf "%s: torn save never rejected" log)
    [ l1; l2 ];
  (* Both restarted followers reclaimed the stale socket their
     SIGKILLed predecessor left behind. *)
  List.iter
    (fun log ->
      if log_count "removing stale socket" log < 1 then Alcotest.failf "%s: stale socket was not reclaimed" log)
    [ l1; l2 ]

(* --- Fail-fast startup ----------------------------------------------
   A follower pointed at a missing/broken store must exit 1 with a
   structured error before binding: no socket file may exist for a
   router to trip over. *)

let test_initial_load_failure () =
  let dir = tmp_dir "repl-nostore" in
  let sockdir = tmp_dir "repl-nostore-socks" in
  ignore (Sys.command (Printf.sprintf "mkdir -p %s %s" (Filename.quote dir) (Filename.quote sockdir)));
  let sock = Filename.concat sockdir "f.sock" in
  let log = Filename.concat sockdir "f.log" in
  let pid = spawn_follower ~dir ~sock ~log in
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 1 -> ()
  | _, status ->
    let d = match status with
      | Unix.WEXITED n -> Printf.sprintf "exit %d" n
      | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
      | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n
    in
    Alcotest.failf "follower on a missing store: expected exit 1, got %s" d);
  Alcotest.(check bool) "no socket file left behind" false (Sys.file_exists sock)

let () =
  Alcotest.run "replication"
    [
      ( "swap",
        [
          Alcotest.test_case "in-process rolling swaps + rejection + reclamation" `Quick test_inprocess_swaps;
        ] );
      ( "soak",
        [
          Alcotest.test_case "followers + router under kills and torn saves" `Quick test_process_soak;
          Alcotest.test_case "initial load failure exits 1 without binding" `Quick test_initial_load_failure;
        ] );
    ]
