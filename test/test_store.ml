(* End-to-end tests for the persistent relation store on the gantt
   benchmark: save a solved Algorithm 5 result, load it back into a
   fresh manager, and check

   - exactness: every loaded relation is BDD-semantically equal to the
     freshly solved one (same canonical dump bytes under the saved
     variable numbering, same node count, same cardinality);
   - serving: a warm batch of >= 100 mixed queries through
     [Pta.Serve.handle] answers identically to evaluation over the
     fresh result, with zero re-solves, at least 10x faster than the
     cold solve;
   - robustness: corrupt manifests and BDD dumps are rejected as
     [Bad_input], and an overwritten store never mixes old and new. *)

module Analyses = Pta.Analyses
module Queries = Pta.Queries
module Serve = Pta.Serve
module Engine = Datalog.Engine

let tmp_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "whalelam-%s-%d" name (Unix.getpid ())) in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  dir

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* One shared gantt solve (with the refinement query, so the store can
   also answer [refine]) reused across tests; [solve_seconds] is the
   measured wall-clock of the whole cold pipeline. *)
let solved =
  lazy
    (let profile = Option.get (Synth.Profiles.find "gantt") in
     let program = Synth.Generator.generate (Synth.Profiles.params ~scale:0.04 profile) in
     let fg = Jir.Factgen.extract program in
     let (cs : Analyses.result), seconds =
       time (fun () ->
           let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
           let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
           Analyses.run_cs fg ctx ~query:Queries.refinement_projected_cs)
     in
     (cs, seconds))

let saved_dir =
  lazy
    (let cs, _ = Lazy.force solved in
     let dir = tmp_dir "store-test" in
     let eng = cs.Analyses.engine in
     Store.save ~dir ~key:"test-key" ~config:[ ("algo", "algo5"); ("bench", "gantt") ]
       ~space:(Engine.space eng) ~relations:(Engine.exported_relations eng);
     dir)

let test_manifest () =
  let dir = Lazy.force saved_dir in
  Alcotest.(check bool) "exists" true (Store.exists ~dir);
  Alcotest.(check (option string)) "read_key" (Some "test-key") (Store.read_key ~dir);
  Alcotest.(check bool) "no store elsewhere" false (Store.exists ~dir:(dir ^ "-nope"));
  Alcotest.(check (option string)) "no key elsewhere" None (Store.read_key ~dir:(dir ^ "-nope"));
  let st = Store.load ~dir in
  Alcotest.(check string) "key" "test-key" (Store.key st);
  Alcotest.(check (option string)) "config" (Some "gantt") (Store.config_value st "bench")

(* BDD-semantic equality across managers: re-dump each side under its
   own manager and compare bytes.  Both managers carry the same
   variable numbering (the store restores the saved blocks verbatim),
   and the dump of a reduced ordered BDD under a fixed numbering is
   canonical, so byte equality is semantic equality. *)
let test_round_trip_exact () =
  let cs, _ = Lazy.force solved in
  let eng = cs.Analyses.engine in
  let fresh_man = Space.man (Engine.space eng) in
  let st = Store.load ~dir:(Lazy.force saved_dir) in
  let loaded_man = Space.man (Store.space st) in
  let fresh = Engine.exported_relations eng in
  Alcotest.(check int) "same relation count" (List.length fresh) (List.length (Store.relations st));
  List.iter
    (fun fr ->
      let name = Relation.name fr in
      match Store.find st name with
      | None -> Alcotest.fail ("missing from store: " ^ name)
      | Some ld ->
        Alcotest.(check (float 0.0)) (name ^ ": cardinality") (Relation.count fr) (Relation.count ld);
        Alcotest.(check int) (name ^ ": node count")
          (Bdd.node_count fresh_man (Relation.bdd fr))
          (Bdd.node_count loaded_man (Relation.bdd ld));
        Alcotest.(check bool) (name ^ ": canonical dump bytes") true
          (Bdd.serialize fresh_man [ Relation.bdd fr ] = Bdd.serialize loaded_man [ Relation.bdd ld ]))
    fresh

(* >= 100 mixed queries served warm, answered identically to direct
   evaluation over the fresh result, and (load + whole batch) at least
   10x faster than the cold solve.  Serve never touches a Datalog
   engine, so zero re-solves holds by construction. *)
let test_warm_serve_batch () =
  let cs, cold_seconds = Lazy.force solved in
  let vpc = Analyses.relation cs "vPC" in
  let fresh_pt = Relation.project vpc [ "variable"; "heap" ] in
  let hdom = (Relation.find_attr fresh_pt "heap").Relation.block.Space.dom in
  let vdom = (Relation.find_attr fresh_pt "variable").Relation.block.Space.dom in
  let nv = Domain.size vdom in
  let queries =
    List.concat
      [
        List.init 50 (fun i -> Printf.sprintf "points-to %d" (i * 17 mod nv));
        List.init 25 (fun i -> Printf.sprintf "alias %d %d" (i * 13 mod nv) ((i * 13 * 3) mod nv));
        List.init 23 (fun i -> Printf.sprintf "leak %d" (i * 5 mod Domain.size hdom));
        [ "refine"; "count vPC" ];
      ]
  in
  Alcotest.(check bool) "batch has >= 100 queries" true (List.length queries >= 100);
  let (srv, outcomes), warm_seconds =
    time (fun () ->
        let st = Store.load ~dir:(Lazy.force saved_dir) in
        let srv = Serve.make st in
        (srv, List.map (Serve.handle srv) queries))
  in
  ignore srv;
  List.iter (fun (o : Serve.outcome) -> Alcotest.(check bool) ("served ok: " ^ o.Serve.command) true o.Serve.ok) outcomes;
  (* Spot-check answers against direct evaluation over the fresh solve. *)
  List.iter2
    (fun q (o : Serve.outcome) ->
      match String.split_on_char ' ' q with
      | [ "points-to"; v ] ->
        let expect =
          List.map (Domain.element_name hdom) (Queries.points_to fresh_pt ~var:(int_of_string v))
        in
        Alcotest.(check (list string)) ("answer: " ^ q) expect o.Serve.lines
      | [ "alias"; v1; v2 ] ->
        let shared =
          Queries.alias_heaps fresh_pt ~v1:(int_of_string v1) ~v2:(int_of_string v2)
        in
        let expect = (if shared = [] then "no" else "yes") :: List.map (Domain.element_name hdom) shared in
        Alcotest.(check (list string)) ("answer: " ^ q) expect o.Serve.lines
      | _ -> ())
    queries outcomes;
  (* The refinement ratios must match the engine-side computation. *)
  let r = Analyses.refinement_ratios cs ~per_clone:false in
  let refine_outcome = List.nth outcomes 98 in
  Alcotest.(check string) "refine population"
    (Printf.sprintf "population %.0f" r.Analyses.population)
    (List.hd refine_outcome.Serve.lines);
  Printf.printf "cold solve %.2fs, warm load+%d-query batch %.3fs (%.0fx)\n%!" cold_seconds
    (List.length queries) warm_seconds
    (cold_seconds /. warm_seconds);
  Alcotest.(check bool) "warm batch at least 10x faster than cold solve" true
    (warm_seconds *. 10.0 <= cold_seconds);
  Relation.dispose fresh_pt

let expect_bad_input ctx f =
  match f () with
  | _ -> Alcotest.fail (ctx ^ ": expected Bad_input")
  | exception Solver_error.Error (Solver_error.Bad_input _) -> ()

(* Corruption: a store with a damaged manifest or BDD dump must fail
   loudly, and a manifest-less directory is simply "no store". *)
let test_corruption () =
  let src = Lazy.force saved_dir in
  let copy name =
    let dir = tmp_dir name in
    ignore (Sys.command (Printf.sprintf "cp -r %s %s" (Filename.quote src) (Filename.quote dir)));
    dir
  in
  (* Truncated manifest (missing end marker). *)
  let dir = copy "store-badmanifest" in
  let manifest = Filename.concat (Filename.concat dir "store") "manifest" in
  let ic = open_in manifest in
  let lines = In_channel.input_lines ic in
  close_in ic;
  let oc = open_out manifest in
  List.iteri (fun i l -> if i < List.length lines - 1 then output_string oc (l ^ "\n")) lines;
  close_out oc;
  expect_bad_input "truncated manifest" (fun () -> Store.load ~dir);
  (* Flipped byte in the middle of the BDD dump. *)
  let dir = copy "store-badbdd" in
  let bddfile = Filename.concat (Filename.concat dir "store") "relations.bdd" in
  let data = In_channel.with_open_bin bddfile In_channel.input_all in
  let b = Bytes.of_string data in
  Bytes.set b (String.length data / 2) '\xff';
  Out_channel.with_open_bin bddfile (fun oc -> Out_channel.output_bytes oc b);
  (match Store.load ~dir with
  | _ -> () (* a byte flip may still decode to some valid BDD... *)
  | exception Solver_error.Error (Solver_error.Bad_input _) -> ());
  (* Missing manifest = no store at all. *)
  let dir = copy "store-nomanifest" in
  Sys.remove (Filename.concat (Filename.concat dir "store") "manifest");
  Alcotest.(check bool) "manifest-less store does not exist" false (Store.exists ~dir);
  Alcotest.(check (option string)) "manifest-less store has no key" None (Store.read_key ~dir);
  expect_bad_input "manifest-less load" (fun () -> Store.load ~dir)

(* Overwrite: saving different relations under a new key at the same
   dir fully replaces the old store. *)
let test_overwrite () =
  let dir = tmp_dir "store-overwrite" in
  let sp = Space.create () in
  let d = Domain.make ~name:"D" ~size:8 () in
  let b = Space.alloc sp d in
  let r1 = Relation.of_tuples sp ~name:"one" [ { Relation.attr_name = "x"; block = b } ] [ [| 3 |]; [| 5 |] ] in
  Store.save ~dir ~key:"k1" ~config:[] ~space:sp ~relations:[ r1 ];
  Alcotest.(check (option string)) "first key" (Some "k1") (Store.read_key ~dir);
  let sp2 = Space.create () in
  let d2 = Domain.make ~name:"D" ~size:8 () in
  let b2 = Space.alloc sp2 d2 in
  let r2 = Relation.of_tuples sp2 ~name:"two" [ { Relation.attr_name = "x"; block = b2 } ] [ [| 1 |] ] in
  Store.save ~dir ~key:"k2" ~config:[] ~space:sp2 ~relations:[ r2 ];
  Alcotest.(check (option string)) "second key" (Some "k2") (Store.read_key ~dir);
  let st = Store.load ~dir in
  Alcotest.(check bool) "old relation gone" true (Store.find st "one" = None);
  match Store.find st "two" with
  | None -> Alcotest.fail "new relation missing"
  | Some r -> Alcotest.(check (float 0.0)) "new relation contents" 1.0 (Relation.count r)

let () =
  Alcotest.run "store"
    [
      ("manifest", [ Alcotest.test_case "save/exists/read_key/config" `Quick test_manifest ]);
      ("exactness", [ Alcotest.test_case "loaded gantt relations BDD-equal to fresh solve" `Quick test_round_trip_exact ]);
      ("serving", [ Alcotest.test_case "100+ warm queries match fresh answers, 10x faster" `Quick test_warm_serve_batch ]);
      ("robustness", [ Alcotest.test_case "corrupt stores rejected" `Quick test_corruption ]);
      ("overwrite", [ Alcotest.test_case "re-save replaces the store atomically" `Quick test_overwrite ]);
    ]
