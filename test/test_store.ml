(* End-to-end tests for the persistent relation store on the gantt
   benchmark: save a solved Algorithm 5 result, load it back into a
   fresh manager, and check

   - exactness: every loaded relation is BDD-semantically equal to the
     freshly solved one (same canonical dump bytes under the saved
     variable numbering, same node count, same cardinality);
   - serving: a warm batch of >= 100 mixed queries through
     [Pta.Serve.handle] answers identically to evaluation over the
     fresh result, with zero re-solves, at least 10x faster than the
     cold solve;
   - robustness: corrupt manifests and BDD dumps are rejected as
     [Bad_input], and an overwritten store never mixes old and new. *)

module Analyses = Pta.Analyses
module Queries = Pta.Queries
module Serve = Pta.Serve
module Engine = Datalog.Engine

let tmp_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "whalelam-%s-%d" name (Unix.getpid ())) in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  dir

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* One shared gantt solve (with the refinement query, so the store can
   also answer [refine]) reused across tests; [solve_seconds] is the
   measured wall-clock of the whole cold pipeline. *)
let solved =
  lazy
    (let profile = Option.get (Synth.Profiles.find "gantt") in
     let program = Synth.Generator.generate (Synth.Profiles.params ~scale:0.04 profile) in
     let fg = Jir.Factgen.extract program in
     let (cs : Analyses.result), seconds =
       time (fun () ->
           let otf = Analyses.run_basic ~algo:Analyses.Algo3 fg in
           let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples otf) in
           Analyses.run_cs fg ctx ~query:Queries.refinement_projected_cs)
     in
     (cs, seconds))

let saved_dir =
  lazy
    (let cs, _ = Lazy.force solved in
     let dir = tmp_dir "store-test" in
     let eng = cs.Analyses.engine in
     Store.save ~dir ~key:"test-key" ~config:[ ("algo", "algo5"); ("bench", "gantt") ]
       ~space:(Engine.space eng) ~relations:(Engine.exported_relations eng);
     dir)

let test_manifest () =
  let dir = Lazy.force saved_dir in
  Alcotest.(check bool) "exists" true (Store.exists ~dir);
  Alcotest.(check (option string)) "read_key" (Some "test-key") (Store.read_key ~dir);
  Alcotest.(check bool) "no store elsewhere" false (Store.exists ~dir:(dir ^ "-nope"));
  Alcotest.(check (option string)) "no key elsewhere" None (Store.read_key ~dir:(dir ^ "-nope"));
  Alcotest.(check (option int)) "read_snapshot" (Some 1) (Store.read_snapshot ~dir);
  Alcotest.(check bool) "read_ident" true (Store.read_ident ~dir = Some ("test-key", 1));
  Alcotest.(check (option int)) "no snapshot elsewhere" None (Store.read_snapshot ~dir:(dir ^ "-nope"));
  let st = Store.load ~dir in
  Alcotest.(check string) "key" "test-key" (Store.key st);
  Alcotest.(check int) "snapshot counter" 1 (Store.snapshot st);
  Alcotest.(check (option string)) "config" (Some "gantt") (Store.config_value st "bench")

(* BDD-semantic equality across managers: re-dump each side under its
   own manager and compare bytes.  Both managers carry the same
   variable numbering (the store restores the saved blocks verbatim),
   and the dump of a reduced ordered BDD under a fixed numbering is
   canonical, so byte equality is semantic equality. *)
let test_round_trip_exact () =
  let cs, _ = Lazy.force solved in
  let eng = cs.Analyses.engine in
  let fresh_man = Space.man (Engine.space eng) in
  let st = Store.load ~dir:(Lazy.force saved_dir) in
  let loaded_man = Space.man (Store.space st) in
  let fresh = Engine.exported_relations eng in
  Alcotest.(check int) "same relation count" (List.length fresh) (List.length (Store.relations st));
  List.iter
    (fun fr ->
      let name = Relation.name fr in
      match Store.find st name with
      | None -> Alcotest.fail ("missing from store: " ^ name)
      | Some ld ->
        Alcotest.(check (float 0.0)) (name ^ ": cardinality") (Relation.count fr) (Relation.count ld);
        Alcotest.(check int) (name ^ ": node count")
          (Bdd.node_count fresh_man (Relation.bdd fr))
          (Bdd.node_count loaded_man (Relation.bdd ld));
        Alcotest.(check bool) (name ^ ": canonical dump bytes") true
          (Bdd.serialize fresh_man [ Relation.bdd fr ] = Bdd.serialize loaded_man [ Relation.bdd ld ]))
    fresh

(* >= 100 mixed queries served warm, answered identically to direct
   evaluation over the fresh result, and (load + whole batch) at least
   10x faster than the cold solve.  Serve never touches a Datalog
   engine, so zero re-solves holds by construction. *)
let test_warm_serve_batch () =
  let cs, cold_seconds = Lazy.force solved in
  let vpc = Analyses.relation cs "vPC" in
  let fresh_pt = Relation.project vpc [ "variable"; "heap" ] in
  let hdom = (Relation.find_attr fresh_pt "heap").Relation.block.Space.dom in
  let vdom = (Relation.find_attr fresh_pt "variable").Relation.block.Space.dom in
  let nv = Domain.size vdom in
  let queries =
    List.concat
      [
        List.init 50 (fun i -> Printf.sprintf "points-to %d" (i * 17 mod nv));
        List.init 25 (fun i -> Printf.sprintf "alias %d %d" (i * 13 mod nv) ((i * 13 * 3) mod nv));
        List.init 23 (fun i -> Printf.sprintf "leak %d" (i * 5 mod Domain.size hdom));
        [ "refine"; "count vPC" ];
      ]
  in
  Alcotest.(check bool) "batch has >= 100 queries" true (List.length queries >= 100);
  let (srv, outcomes), warm_seconds =
    time (fun () ->
        let st = Store.load ~dir:(Lazy.force saved_dir) in
        let srv = Serve.make st in
        let ctx = Serve.new_ctx srv in
        (srv, List.map (Serve.handle srv ctx) queries))
  in
  ignore srv;
  List.iter (fun (o : Serve.outcome) -> Alcotest.(check bool) ("served ok: " ^ o.Serve.command) true o.Serve.ok) outcomes;
  (* Spot-check answers against direct evaluation over the fresh solve. *)
  List.iter2
    (fun q (o : Serve.outcome) ->
      match String.split_on_char ' ' q with
      | [ "points-to"; v ] ->
        let expect =
          List.map (Domain.element_name hdom) (Queries.points_to fresh_pt ~var:(int_of_string v))
        in
        Alcotest.(check (list string)) ("answer: " ^ q) expect o.Serve.lines
      | [ "alias"; v1; v2 ] ->
        let shared =
          Queries.alias_heaps fresh_pt ~v1:(int_of_string v1) ~v2:(int_of_string v2)
        in
        let expect = (if shared = [] then "no" else "yes") :: List.map (Domain.element_name hdom) shared in
        Alcotest.(check (list string)) ("answer: " ^ q) expect o.Serve.lines
      | _ -> ())
    queries outcomes;
  (* The refinement ratios must match the engine-side computation. *)
  let r = Analyses.refinement_ratios cs ~per_clone:false in
  let refine_outcome = List.nth outcomes 98 in
  Alcotest.(check string) "refine population"
    (Printf.sprintf "population %.0f" r.Analyses.population)
    (List.hd refine_outcome.Serve.lines);
  Printf.printf "cold solve %.2fs, warm load+%d-query batch %.3fs (%.0fx)\n%!" cold_seconds
    (List.length queries) warm_seconds
    (cold_seconds /. warm_seconds);
  Alcotest.(check bool) "warm batch at least 10x faster than cold solve" true
    (warm_seconds *. 10.0 <= cold_seconds);
  Relation.dispose fresh_pt

let expect_bad_input ctx f =
  match f () with
  | _ -> Alcotest.fail (ctx ^ ": expected Bad_input")
  | exception Solver_error.Error (Solver_error.Bad_input _) -> ()

(* Corruption: a store with a damaged manifest or BDD dump must fail
   loudly, and a manifest-less directory is simply "no store". *)
let test_corruption () =
  let src = Lazy.force saved_dir in
  let copy name =
    let dir = tmp_dir name in
    ignore (Sys.command (Printf.sprintf "cp -r %s %s" (Filename.quote src) (Filename.quote dir)));
    dir
  in
  (* Truncated manifest (missing end marker). *)
  let dir = copy "store-badmanifest" in
  let manifest = Filename.concat (Filename.concat dir "store") "manifest" in
  let ic = open_in manifest in
  let lines = In_channel.input_lines ic in
  close_in ic;
  let oc = open_out manifest in
  List.iteri (fun i l -> if i < List.length lines - 1 then output_string oc (l ^ "\n")) lines;
  close_out oc;
  expect_bad_input "truncated manifest" (fun () -> Store.load ~dir);
  (* Flipped byte in the middle of the BDD dump: the manifest CRC must
     reject it before the deserializer sees a single triple. *)
  let dir = copy "store-badbdd" in
  let bddfile = Filename.concat (Filename.concat dir "store") "relations.bdd" in
  let data = In_channel.with_open_bin bddfile In_channel.input_all in
  let b = Bytes.of_string data in
  let mid = String.length data / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x5A));
  Out_channel.with_open_bin bddfile (fun oc -> Out_channel.output_bytes oc b);
  expect_bad_input "flipped BDD dump byte" (fun () -> Store.load ~dir);
  (* Missing manifest = no store at all. *)
  let dir = copy "store-nomanifest" in
  Sys.remove (Filename.concat (Filename.concat dir "store") "manifest");
  Alcotest.(check bool) "manifest-less store does not exist" false (Store.exists ~dir);
  Alcotest.(check (option string)) "manifest-less store has no key" None (Store.read_key ~dir);
  expect_bad_input "manifest-less load" (fun () -> Store.load ~dir)

(* Overwrite: saving different relations under a new key at the same
   dir fully replaces the old store. *)
let test_overwrite () =
  let dir = tmp_dir "store-overwrite" in
  let sp = Space.create () in
  let d = Domain.make ~name:"D" ~size:8 () in
  let b = Space.alloc sp d in
  let r1 = Relation.of_tuples sp ~name:"one" [ { Relation.attr_name = "x"; block = b } ] [ [| 3 |]; [| 5 |] ] in
  Store.save ~dir ~key:"k1" ~config:[] ~space:sp ~relations:[ r1 ];
  Alcotest.(check (option string)) "first key" (Some "k1") (Store.read_key ~dir);
  let sp2 = Space.create () in
  let d2 = Domain.make ~name:"D" ~size:8 () in
  let b2 = Space.alloc sp2 d2 in
  let r2 = Relation.of_tuples sp2 ~name:"two" [ { Relation.attr_name = "x"; block = b2 } ] [ [| 1 |] ] in
  Store.save ~dir ~key:"k2" ~config:[] ~space:sp2 ~relations:[ r2 ];
  Alcotest.(check (option string)) "second key" (Some "k2") (Store.read_key ~dir);
  let st = Store.load ~dir in
  Alcotest.(check bool) "old relation gone" true (Store.find st "one" = None);
  match Store.find st "two" with
  | None -> Alcotest.fail "new relation missing"
  | Some r -> Alcotest.(check (float 0.0)) "new relation contents" 1.0 (Relation.count r)

(* --- Crash-point matrix ---------------------------------------------

   Two small hand-built stores, A then B, saved to the same directory.
   [Faults.record_fs_ops] enumerates every file-system mutation the
   B-save makes; then, for each op index, we re-prime the directory
   with A and simulate a kill exactly there ([Faults.crash_at_fs_op]).
   Reopening after the crash must yield exactly A, exactly B, or a
   cleanly absent store — never a hang, a partial load, or a mix — and
   a subsequent save must recover to a healthy B despite whatever temp
   debris the crash left. *)

let named_domain name size =
  Domain.make ~name ~size
    ~element_names:(Array.init size (Printf.sprintf "%s%d" (String.lowercase_ascii name)))
    ()

let save_a dir =
  let sp = Space.create () in
  let b = Space.alloc sp (named_domain "D" 8) in
  let one = Relation.of_tuples sp ~name:"one" [ { Relation.attr_name = "x"; block = b } ] [ [| 3 |]; [| 5 |] ] in
  Store.save ~dir ~key:"kA" ~config:[ ("gen", "A") ] ~space:sp ~relations:[ one ]

let save_b dir =
  let sp = Space.create () in
  let bd = Space.alloc sp (named_domain "D" 8) in
  let be = Space.alloc sp (named_domain "E" 4) in
  let two = Relation.of_tuples sp ~name:"two" [ { Relation.attr_name = "x"; block = bd } ] [ [| 1 |] ] in
  let three =
    Relation.of_tuples sp ~name:"three"
      [ { Relation.attr_name = "x"; block = bd }; { Relation.attr_name = "y"; block = be } ]
      [ [| 0; 2 |]; [| 7; 3 |]; [| 4; 1 |] ]
  in
  Store.save ~dir ~key:"kB" ~config:[ ("gen", "B") ] ~space:sp ~relations:[ two; three ]

let check_store_is ctx which dir =
  let st = Store.load ~dir in
  let count name = match Store.find st name with Some r -> Relation.count r | None -> -1.0 in
  (match which with
  | `A ->
    Alcotest.(check string) (ctx ^ ": key") "kA" (Store.key st);
    Alcotest.(check (float 0.0)) (ctx ^ ": one") 2.0 (count "one");
    Alcotest.(check bool) (ctx ^ ": no two") true (Store.find st "two" = None)
  | `B ->
    Alcotest.(check string) (ctx ^ ": key") "kB" (Store.key st);
    Alcotest.(check (float 0.0)) (ctx ^ ": two") 1.0 (count "two");
    Alcotest.(check (float 0.0)) (ctx ^ ": three") 3.0 (count "three");
    Alcotest.(check bool) (ctx ^ ": no one") true (Store.find st "one" = None));
  (* A loadable store must also be fully healthy under verify. *)
  List.iter
    (fun (c : Store.check) ->
      if not c.Store.chk_ok then Alcotest.failf "%s: verify check %s failed: %s" ctx c.Store.chk_name c.Store.chk_detail)
    (Store.verify ~dir ())

let starts_with prefix s = String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let test_crash_matrix () =
  (* Enumerate the crash points of an overwriting save on a scratch
     directory (the recording run really performs the save). *)
  let scratch = tmp_dir "store-crash-scratch" in
  save_a scratch;
  let ops = Faults.record_fs_ops (fun () -> save_b scratch) in
  let n = List.length ops in
  Printf.printf "crash matrix: %d crash points\n%!" n;
  Alcotest.(check bool) "save exposes a real crash surface (>= 20 ops)" true (n >= 20);
  (* Ordering invariants of the write protocol itself. *)
  let arr = Array.of_list ops in
  (* The snapshot serial must be durable before the old store is
     invalidated: a crash in the torn window must not reset the
     counter.  So every op before the manifest removal touches only
     the serial file (or its directory fsync), and the removal itself
     is the first manifest-touching op. *)
  let idx_remove =
    let found = ref (-1) in
    Array.iteri
      (fun i op -> if !found < 0 && starts_with "remove " op && Filename.basename op = "manifest" then found := i)
      arr;
    !found
  in
  Alcotest.(check bool) "overwrite removes the old manifest" true (idx_remove >= 0);
  for i = 0 to idx_remove - 1 do
    let op = arr.(i) in
    let about_serial =
      let base = Filename.basename op in
      base = "serial" || base = "serial.tmp" || starts_with "fsync-dir " op
    in
    if not about_serial then
      Alcotest.failf "op %d (%s) precedes manifest removal but is not the serial commit" (i + 1) op
  done;
  Alcotest.(check bool) "manifest removal is fsynced" true (starts_with "fsync-dir " arr.(idx_remove + 1));
  Alcotest.(check bool) "manifest rename is the commit point (second-to-last op)" true
    (starts_with "rename " arr.(n - 2) && Filename.basename arr.(n - 2) = "manifest");
  Alcotest.(check bool) "commit rename is made durable (last op)" true (starts_with "fsync-dir " arr.(n - 1));
  Array.iteri
    (fun i op ->
      if starts_with "rename " op then begin
        let target = String.sub op 7 (String.length op - 7) in
        Alcotest.(check string)
          (Printf.sprintf "op %d: rename of %s preceded by its temp fsync" (i + 1) target)
          ("fsync " ^ target ^ ".tmp") arr.(i - 1)
      end)
    arr;
  (* The matrix: kill at every single crash point, then reopen. *)
  let dir = tmp_dir "store-crash" in
  for i = 1 to n do
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
    save_a dir;
    (match Faults.crash_at_fs_op i (fun () -> save_b dir) with
    | None -> Alcotest.failf "crash point %d/%d never fired" i n
    | Some label ->
      let ctx = Printf.sprintf "crash %d/%d (%s)" i n label in
      (match Store.read_key ~dir with
      | None ->
        (* Cleanly absent: exists agrees and load fails structurally. *)
        Alcotest.(check bool) (ctx ^ ": absent store does not exist") false (Store.exists ~dir);
        expect_bad_input (ctx ^ ": absent load") (fun () -> Store.load ~dir)
      | Some "kA" -> check_store_is ctx `A dir
      | Some "kB" -> check_store_is ctx `B dir
      | Some other -> Alcotest.failf "%s: impossible store key %S" ctx other);
      (* Recovery: a fresh save over the debris must yield a healthy B. *)
      save_b dir;
      check_store_is (ctx ^ ": recovery save") `B dir)
  done

(* --- Byte-flip fuzz -------------------------------------------------
   Every single-byte corruption of every store file must surface as a
   structured [Bad_input] — never an assert, a deserializer crash, or
   a silently wrong load. *)

let test_byte_flip_fuzz () =
  let dir = tmp_dir "store-fuzz" in
  save_b dir;
  let sd = Filename.concat dir "store" in
  let files = [ "manifest"; "relations.bdd"; "D.map"; "E.map" ] in
  let rng = Random.State.make [| 0xC0FFEE |] in
  List.iter
    (fun file ->
      let path = Filename.concat sd file in
      let pristine = In_channel.with_open_bin path In_channel.input_all in
      let len = String.length pristine in
      for _ = 1 to 25 do
        let pos = Random.State.int rng len in
        let flip = 1 + Random.State.int rng 255 in
        let b = Bytes.of_string pristine in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor flip));
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
        let ctx = Printf.sprintf "%s byte %d xor %#x" file pos flip in
        (match Store.load ~dir with
        | _ -> Alcotest.failf "%s: corruption loaded successfully" ctx
        | exception Solver_error.Error (Solver_error.Bad_input _) -> ()
        | exception e -> Alcotest.failf "%s: unstructured failure %s" ctx (Printexc.to_string e));
        Alcotest.(check bool) (ctx ^ ": verify flags it") true
          (List.exists (fun (c : Store.check) -> not c.Store.chk_ok) (Store.verify ~dir ()));
        (* Restore the pristine bytes for the next flip. *)
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc pristine)
      done)
    files;
  check_store_is "pristine after fuzz" `B dir

(* --- Reader-side race -----------------------------------------------
   [Store.load] racing a concurrent writer's re-saves must yield the
   old store, the new store, or a structured [Bad_input] (the window
   where the old manifest is already invalidated) — never a silent
   mix.  The manifest commit point plus per-file checksums carry the
   whole argument: a manifest that parses describes exactly one save,
   and data replaced underneath it fails its recorded CRC.  [verify]
   and [read_ident] must never raise under the same churn, and the
   snapshot counter observed by successful loads must be
   nondecreasing. *)

let test_reader_race () =
  let dir = tmp_dir "store-race" in
  save_a dir;
  let stop = Atomic.make false in
  let writes = Atomic.make 0 in
  let writer =
    Stdlib.Domain.spawn (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          incr i;
          if !i land 1 = 0 then save_a dir else save_b dir;
          Atomic.incr writes
        done)
  in
  let loads = ref 0 and saw_a = ref 0 and saw_b = ref 0 and torn = ref 0 in
  let last_snapshot = ref 0 in
  let deadline = Unix.gettimeofday () +. 3.0 in
  (while Unix.gettimeofday () < deadline do
     incr loads;
     match Store.load ~dir with
     | st ->
       let count name = match Store.find st name with Some r -> Relation.count r | None -> -1.0 in
       (match Store.key st with
       | "kA" ->
         incr saw_a;
         Alcotest.(check (float 0.0)) "A: one" 2.0 (count "one");
         Alcotest.(check bool) "A: no two" true (Store.find st "two" = None)
       | "kB" ->
         incr saw_b;
         Alcotest.(check (float 0.0)) "B: two" 1.0 (count "two");
         Alcotest.(check (float 0.0)) "B: three" 3.0 (count "three");
         Alcotest.(check bool) "B: no one" true (Store.find st "one" = None)
       | k -> Alcotest.failf "impossible store key %S (a mixed load?)" k);
       if Store.snapshot st < !last_snapshot then
         Alcotest.failf "snapshot went backwards: %d after %d" (Store.snapshot st) !last_snapshot;
       last_snapshot := Store.snapshot st
     | exception Solver_error.Error (Solver_error.Bad_input _) -> incr torn
     | exception e -> Alcotest.failf "unstructured racing-load failure: %s" (Printexc.to_string e)
   done);
  Atomic.set stop true;
  Stdlib.Domain.join writer;
  Printf.printf "reader race: %d writes, %d loads (%d A, %d B, %d torn), last snapshot %d\n%!"
    (Atomic.get writes) !loads !saw_a !saw_b !torn !last_snapshot;
  Alcotest.(check bool) "raced against real churn (>= 10 writes)" true (Atomic.get writes >= 10);
  Alcotest.(check bool) "saw both generations" true (!saw_a > 0 && !saw_b > 0);
  (* The dir settles to the writer's final save and is healthy. *)
  match Store.read_key ~dir with
  | Some "kA" -> check_store_is "settled" `A dir
  | Some "kB" -> check_store_is "settled" `B dir
  | other -> Alcotest.failf "settled store unreadable: key %s" (Option.value other ~default:"<none>")

(* [verify] under the same swap churn: whatever instant it samples, it
   must return a well-formed check list — healthy or cleanly failing —
   and never raise.  Same for the cheap identity readers a follower
   polls with. *)
let test_verify_under_swap () =
  let dir = tmp_dir "store-verify-swap" in
  save_b dir;
  let stop = Atomic.make false in
  let writer =
    Stdlib.Domain.spawn (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          incr i;
          if !i land 1 = 0 then save_a dir else save_b dir
        done)
  in
  let verdicts = ref 0 and healthy = ref 0 and unhealthy = ref 0 in
  let deadline = Unix.gettimeofday () +. 2.0 in
  (while Unix.gettimeofday () < deadline do
     incr verdicts;
     (match Store.verify ~dir () with
     | [] -> Alcotest.fail "verify returned an empty check list"
     | checks ->
       if List.for_all (fun (c : Store.check) -> c.Store.chk_ok) checks then incr healthy
       else incr unhealthy
     | exception e -> Alcotest.failf "verify raised under swap: %s" (Printexc.to_string e));
     (* The follower's cheap pre-checks obey the same contract. *)
     (match Store.verify ~structural:false ~dir () with
     | _ -> ()
     | exception e -> Alcotest.failf "non-structural verify raised: %s" (Printexc.to_string e));
     match Store.read_ident ~dir with
     | Some _ | None -> ()
     | exception e -> Alcotest.failf "read_ident raised under swap: %s" (Printexc.to_string e)
   done);
  Atomic.set stop true;
  Stdlib.Domain.join writer;
  Printf.printf "verify under swap: %d verdicts (%d healthy, %d transiently unhealthy)\n%!" !verdicts
    !healthy !unhealthy;
  Alcotest.(check bool) "caught at least one healthy instant" true (!healthy > 0)

(* --- verify / quarantine -------------------------------------------- *)

let test_verify_quarantine () =
  let dir = tmp_dir "store-verify" in
  save_b dir;
  let checks = Store.verify ~dir () in
  (* manifest + relations.bdd + D.map + E.map + structural load *)
  Alcotest.(check int) "check count" 5 (List.length checks);
  Alcotest.(check bool) "healthy" true (List.for_all (fun (c : Store.check) -> c.Store.chk_ok) checks);
  Alcotest.(check bool) "nothing to quarantine elsewhere" true (Store.quarantine ~dir:(dir ^ "-none") = None);
  (match Store.verify ~dir:(dir ^ "-none") () with
  | [ c ] -> Alcotest.(check bool) "missing store is one failing check" false c.Store.chk_ok
  | l -> Alcotest.failf "missing store: expected one check, got %d" (List.length l));
  Faults.corrupt_file (Filename.concat (Filename.concat dir "store") "relations.bdd") ~at:10 "XYZ";
  Alcotest.(check bool) "corruption detected" true
    (List.exists (fun (c : Store.check) -> not c.Store.chk_ok) (Store.verify ~dir ()));
  (match Store.quarantine ~dir with
  | None -> Alcotest.fail "expected a quarantine destination"
  | Some dest ->
    Alcotest.(check bool) "quarantine dir exists" true (Sys.is_directory dest);
    Alcotest.(check bool) "store gone after quarantine" false (Store.exists ~dir));
  (* The next save starts clean and is healthy again; a second
     quarantine picks a fresh suffix. *)
  save_b dir;
  check_store_is "rebuilt after quarantine" `B dir;
  match Store.quarantine ~dir with
  | Some dest2 -> Alcotest.(check bool) "fresh quarantine suffix" true (Filename.check_suffix dest2 ".broken.2")
  | None -> Alcotest.fail "second quarantine refused"

let () =
  Alcotest.run "store"
    [
      ("manifest", [ Alcotest.test_case "save/exists/read_key/config" `Quick test_manifest ]);
      ("exactness", [ Alcotest.test_case "loaded gantt relations BDD-equal to fresh solve" `Quick test_round_trip_exact ]);
      ("serving", [ Alcotest.test_case "100+ warm queries match fresh answers, 10x faster" `Quick test_warm_serve_batch ]);
      ("robustness", [ Alcotest.test_case "corrupt stores rejected" `Quick test_corruption ]);
      ("overwrite", [ Alcotest.test_case "re-save replaces the store atomically" `Quick test_overwrite ]);
      ( "crash-safety",
        [
          Alcotest.test_case "kill at every fs op: reopen is old, new, or cleanly absent" `Quick test_crash_matrix;
          Alcotest.test_case "every byte flip in every file is a structured error" `Quick test_byte_flip_fuzz;
          Alcotest.test_case "verify and quarantine" `Quick test_verify_quarantine;
        ] );
      ( "replication",
        [
          Alcotest.test_case "load racing a writer: old, new, or structured error" `Quick test_reader_race;
          Alcotest.test_case "verify under swap churn never raises" `Quick test_verify_under_swap;
        ] );
    ]
