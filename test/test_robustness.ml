(* Robustness of the resource-governed solver runtime: structured
   budget errors for every limit kind, cooperative cancellation via
   injected faults, abort-and-resume on the same engine and node table,
   loader validation with file:line:field diagnostics, fd hygiene of
   the .tuples reader, and the soundness of the graceful-degradation
   ladder (every fallback answer is a superset of the precise one). *)

module Analyses = Pta.Analyses

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- transitive closure over a chain: a small engine with a real
   multi-round fixpoint --- *)

let tc_src =
  {|
DOMAINS
V 256

RELATIONS
input e (src : V, dst : V)
output t (src : V, dst : V)

RULES
t(x, y) :- e(x, y).
t(x, z) :- t(x, y), e(y, z).
|}

let chain_edges = List.init 255 (fun i -> [| i; i + 1 |])

let tc_engine () =
  let eng = Engine.parse_and_create tc_src in
  Engine.set_tuples eng "e" chain_edges;
  eng

let man_of eng = Space.man (Engine.space eng)
let sorted_t eng = List.sort compare (List.map Array.to_list (Relation.tuples (Engine.relation eng "t")))

let reference_t = lazy (let eng = tc_engine () in ignore (Engine.run eng); sorted_t eng)

let expect_exhausted what pick = function
  | Error (Solver_error.Budget_exhausted e) -> (
    match pick e.Solver_error.reason with
    | true -> e
    | false ->
      Alcotest.failf "%s: wrong reason: %s" what (Budget.reason_to_string e.Solver_error.reason))
  | Error e -> Alcotest.failf "%s: unexpected error: %s" what (Solver_error.to_string e)
  | Ok _ -> Alcotest.failf "%s: solve unexpectedly succeeded" what

(* --- budget limit kinds produce the matching structured reason --- *)

let test_iteration_budget () =
  let eng = tc_engine () in
  Engine.set_budget eng (Some (Budget.make ~max_iterations:2 ()));
  let e =
    expect_exhausted "iterations" (function Budget.Iterations { limit } -> limit = 2 | _ -> false)
      (Engine.solve eng)
  in
  check_int "aborted on the round after the limit" 3 e.Solver_error.partial_iterations;
  check_bool "live nodes recorded" true (e.Solver_error.live_nodes > 0)

let test_allocation_budget () =
  let eng = tc_engine () in
  (* One more allocation than already spent: the next amortized check
     inside [Bdd.mk] must trip. *)
  let limit = Bdd.allocations (man_of eng) + 1 in
  Engine.set_budget eng (Some (Budget.make ~max_allocations:limit ()));
  ignore
    (expect_exhausted "allocations"
       (function Budget.Allocations { actual; _ } -> actual > limit | _ -> false)
       (Engine.solve eng))

let test_node_budget () =
  let eng = tc_engine () in
  Engine.set_budget eng (Some (Budget.make ~max_live_nodes:1 ()));
  ignore
    (expect_exhausted "live nodes"
       (function Budget.Live_nodes { actual; _ } -> actual > 1 | _ -> false)
       (Engine.solve eng))

let test_timeout_budget () =
  let eng = tc_engine () in
  let b = Budget.make ~timeout_s:0.0 () in
  ignore (Unix.select [] [] [] 0.002) (* let the deadline pass *);
  Engine.set_budget eng (Some b);
  ignore
    (expect_exhausted "timeout" (function Budget.Timeout _ -> true | _ -> false) (Engine.solve eng))

(* --- fault injection: cooperative cancellation between checks --- *)

let test_cancellation () =
  let eng = tc_engine () in
  let b = Budget.unlimited () in
  Faults.cancel_after_checks b 5;
  Engine.set_budget eng (Some b);
  ignore
    (expect_exhausted "cancel" (function Budget.Cancelled -> true | _ -> false) (Engine.solve eng));
  check_bool "flag observable afterwards" true (Budget.is_cancelled b)

let test_check_cadence () =
  (* The solver must actually reach check sites; otherwise every limit
     above could only fire by accident. *)
  let eng = tc_engine () in
  let b = Budget.unlimited () in
  let n = Faults.count_checks b in
  Engine.set_budget eng (Some b);
  ignore (Engine.run eng);
  check_bool "budget consulted many times during a solve" true (!n > 10)

(* --- abort, then resume to the exact fixpoint on the same engine --- *)

let resume_after abort_budget =
  let eng = tc_engine () in
  Engine.set_budget eng (Some abort_budget);
  (match Engine.solve eng with
  | Error (Solver_error.Budget_exhausted _) -> ()
  | Error e -> Alcotest.failf "expected exhaustion, got: %s" (Solver_error.to_string e)
  | Ok _ -> Alcotest.fail "budget did not abort the solve");
  (* The node table must still be collectable and usable. *)
  Bdd.gc (man_of eng);
  Engine.set_budget eng None;
  let stats = Engine.solve eng in
  check_bool "resumed solve succeeds" true (Result.is_ok stats);
  Alcotest.(check (list (list int))) "resumed fixpoint matches uninterrupted run" (Lazy.force reference_t)
    (sorted_t eng)

let test_resume_after_iteration_abort () = resume_after (Budget.make ~max_iterations:3 ())

let test_resume_after_midrule_abort () =
  (* An allocation limit fires inside [Bdd.mk], mid rule application —
     the harshest abort point. *)
  let eng = tc_engine () in
  let limit = Bdd.allocations (man_of eng) + 1 in
  Engine.set_budget eng (Some (Budget.make ~max_allocations:limit ()));
  (match Engine.solve eng with
  | Error (Solver_error.Budget_exhausted _) -> ()
  | Error e -> Alcotest.failf "expected exhaustion, got: %s" (Solver_error.to_string e)
  | Ok _ -> Alcotest.fail "budget did not abort the solve");
  Bdd.gc (man_of eng);
  Engine.set_budget eng None;
  ignore (Engine.run eng);
  Alcotest.(check (list (list int))) "mid-rule abort then resume matches" (Lazy.force reference_t) (sorted_t eng)

(* --- loader validation: file:line:field diagnostics, no fd leaks --- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let expect_bad_input what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Bad_input" what
  | exception Solver_error.Error (Solver_error.Bad_input b) -> b
  | exception Solver_error.Error e -> Alcotest.failf "%s: wrong error: %s" what (Solver_error.to_string e)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_loader_diagnostics () =
  let path = Filename.temp_file "robust" ".tuples" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let schema = [ ("src", 4); ("dst", 4) ] in
  write_file path "0 1\n2 zap\n";
  let b = expect_bad_input "non-integer" (fun () -> Tuples_io.load_file path) in
  check_int "non-integer line" 2 b.Solver_error.line;
  check_bool "non-integer message" true (contains b.Solver_error.msg "not an integer");
  write_file path "3 3\n1 9\n";
  let b = expect_bad_input "range" (fun () -> Tuples_io.load_file ~schema path) in
  check_int "range line" 2 b.Solver_error.line;
  check_bool "range names the field" true (contains b.Solver_error.msg "dst");
  check_bool "range shows the bound" true (contains b.Solver_error.msg "[0, 4)");
  write_file path "# comment\n1 2 3\n";
  let b = expect_bad_input "arity" (fun () -> Tuples_io.load_file ~schema path) in
  check_int "arity line" 2 b.Solver_error.line;
  check_bool "arity message" true (contains b.Solver_error.msg "expected 2 fields");
  (* A healthy file with comments and blanks still loads. *)
  write_file path "# ok\n0 1\n\n3 2\n";
  Alcotest.(check (list (list int))) "valid file loads" [ [ 0; 1 ]; [ 3; 2 ] ] (Tuples_io.load_file ~schema path)

let test_corrupt_file_injection () =
  let path = Filename.temp_file "robust" ".tuples" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write_file path "0 1\n1 2\n2 3\n";
  Alcotest.(check int) "pristine file loads" 3 (List.length (Tuples_io.load_file path));
  Faults.corrupt_file path ~at:4 "x$%";
  let b = expect_bad_input "corrupted" (fun () -> Tuples_io.load_file path) in
  check_bool "corruption located" true (b.Solver_error.line > 0)

let count_fds () =
  if Sys.file_exists "/proc/self/fd" then Some (Array.length (Sys.readdir "/proc/self/fd")) else None

let test_no_fd_leak () =
  match count_fds () with
  | None -> () (* no procfs on this platform; nothing to measure *)
  | Some before ->
    let bad = Filename.temp_file "robust" ".tuples" in
    Fun.protect ~finally:(fun () -> Sys.remove bad) @@ fun () ->
    write_file bad "1 1\nnope\n";
    for _ = 1 to 50 do
      (try ignore (Tuples_io.load_file bad) with Solver_error.Error _ -> ());
      (try ignore (Tuples_io.load_file (bad ^ ".missing")) with Solver_error.Error _ -> ());
      try ignore (Jir.Jparser.parse_file bad) with _ -> ()
    done;
    (match count_fds () with
    | Some after -> check_int "fd count unchanged after 150 failed loads" before after
    | None -> ())

(* --- the degradation ladder returns sound overapproximations --- *)

let fg_of_profile name scale =
  let prof = Option.get (Synth.Profiles.find name) in
  Jir.Factgen.extract (Synth.Generator.generate (Synth.Profiles.params ~scale prof))

let is_superset big small =
  let h = Hashtbl.create (List.length big) in
  List.iter (fun p -> Hashtbl.replace h p ()) big;
  List.for_all (Hashtbl.mem h) small

let precise_and_ci fg =
  let precise =
    match Analyses.solve_with_fallback fg with
    | Ok fb when fb.Analyses.rung = Analyses.Rung_cs -> fb
    | Ok fb -> Alcotest.failf "unbudgeted ladder degraded to %s" (Analyses.rung_name fb.Analyses.rung)
    | Error e -> Alcotest.failf "unbudgeted ladder failed: %s" (Solver_error.to_string e)
  in
  let ci =
    match Analyses.solve_basic ~algo:Analyses.Algo2 fg with
    | Ok r -> r
    | Error e -> Alcotest.failf "algo2 failed: %s" (Solver_error.to_string e)
  in
  (precise, ci)

let test_fallback_ladder name scale () =
  let fg = fg_of_profile name scale in
  let precise, ci = precise_and_ci fg in
  (* Self-calibrate the budget on the fixpoint-round axis: the precise
     pipeline (on-the-fly call graph, then the context-sensitive solve)
     always needs more rounds than plain Algorithm 2 on these programs,
     so a limit of exactly Algorithm 2's round count exhausts the
     precise attempt and lets the fallback finish. *)
  let rounds (r : Analyses.result) = r.Analyses.stats.Datalog.Engine.iterations in
  let i_ci = rounds ci in
  let i_otf =
    match Analyses.solve_basic ~algo:Analyses.Algo3 fg with
    | Ok r -> rounds r
    | Error e -> Alcotest.failf "algo3 failed: %s" (Solver_error.to_string e)
  in
  let i_cs = rounds (Option.get precise.Analyses.result) in
  check_bool "calibration: precise pipeline needs more rounds than algo2" true (max i_otf i_cs > i_ci);
  let budget = Budget.make ~max_iterations:i_ci () in
  (match Analyses.solve_with_fallback ~budget fg with
  | Ok fb ->
    check_bool "answered by the context-insensitive rung" true (fb.Analyses.rung = Analyses.Rung_ci);
    check_bool "the failed precise attempt is reported" true
      (List.exists (fun (r, _) -> r = Analyses.Rung_cs) fb.Analyses.failures);
    check_bool "ci answer is a superset of the precise one" true
      (is_superset fb.Analyses.vp precise.Analyses.vp);
    check_bool "degradation is strict here" true
      (List.length fb.Analyses.vp >= List.length precise.Analyses.vp)
  | Error e -> Alcotest.failf "ladder failed: %s" (Solver_error.to_string e));
  (* A budget too tight even for Algorithm 2 falls through to
     Steensgaard, which needs no BDDs at all. *)
  (match Analyses.solve_with_fallback ~budget:(Budget.make ~max_live_nodes:100 ()) fg with
  | Ok fb ->
    check_bool "answered by the Steensgaard rung" true (fb.Analyses.rung = Analyses.Rung_steens);
    check_int "both BDD rungs reported failed" 2 (List.length fb.Analyses.failures);
    check_bool "unification answer is a superset of the precise one" true
      (is_superset fb.Analyses.vp precise.Analyses.vp)
  | Error e -> Alcotest.failf "steensgaard ladder failed: %s" (Solver_error.to_string e))

let test_cancel_does_not_degrade () =
  let fg = fg_of_profile "gantt" 0.01 in
  let budget = Budget.unlimited () in
  Faults.cancel_after_checks budget 3;
  match Analyses.solve_with_fallback ~budget fg with
  | Error (Solver_error.Budget_exhausted { Solver_error.reason = Budget.Cancelled; _ }) -> ()
  | Error e -> Alcotest.failf "expected cancellation, got: %s" (Solver_error.to_string e)
  | Ok fb -> Alcotest.failf "cancelled ladder still answered via %s" (Analyses.rung_name fb.Analyses.rung)

let () =
  Alcotest.run "robustness"
    [
      ( "budgets",
        [
          Alcotest.test_case "iteration limit" `Quick test_iteration_budget;
          Alcotest.test_case "allocation limit" `Quick test_allocation_budget;
          Alcotest.test_case "live-node limit" `Quick test_node_budget;
          Alcotest.test_case "wall-clock deadline" `Quick test_timeout_budget;
          Alcotest.test_case "cooperative cancellation" `Quick test_cancellation;
          Alcotest.test_case "check cadence" `Quick test_check_cadence;
        ] );
      ( "resume",
        [
          Alcotest.test_case "abort between rounds, rerun" `Quick test_resume_after_iteration_abort;
          Alcotest.test_case "abort mid-rule, rerun" `Quick test_resume_after_midrule_abort;
        ] );
      ( "loaders",
        [
          Alcotest.test_case "file:line:field diagnostics" `Quick test_loader_diagnostics;
          Alcotest.test_case "injected corruption" `Quick test_corrupt_file_injection;
          Alcotest.test_case "no fd leak on failed loads" `Quick test_no_fd_leak;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "ladder soundness (gantt)" `Slow (test_fallback_ladder "gantt" 0.02);
          Alcotest.test_case "ladder soundness (joone)" `Slow (test_fallback_ladder "joone" 0.02);
          Alcotest.test_case "cancellation does not degrade" `Quick test_cancel_does_not_degrade;
        ] );
    ]
