(* ptacli: command-line driver for the whalelam analyses.

   Subcommands:
     stats         program statistics (Figure 3-style row)
     analyze       run one of the paper's algorithms on a .jir program
     query         run a §5 query on top of the context-sensitive analysis
     order-search  empirical BDD domain-order search (§2.4.2)
     datalog       standalone bddbddb: solve a Datalog file over .tuples
     explain       print optimized per-rule query plans (and, after
                   --solve, per-rule time/BDD-op attribution)
     gen           generate a synthetic benchmark program *)

module Ir = Jir.Ir
module Factgen = Jir.Factgen
module Analyses = Pta.Analyses
module Context = Pta.Context
open Cmdliner

let read_program path =
  try Ok (Jir.Jparser.parse_file path) with
  | Jir.Jparser.Parse_error e -> Error (Printf.sprintf "%s:%d: %s" path e.Jir.Jparser.line e.Jir.Jparser.message)
  | Sys_error m -> Error m

let or_die = function
  | Ok v -> v
  | Error m ->
    prerr_endline m;
    exit 1

let program_arg =
  (* A plain string, not Arg.file: missing files are then reported by
     our own error protocol (one line, exit 1) instead of cmdliner's
     usage error (exit 124). *)
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM.jir" ~doc:"Program in the textual IR format.")

(* --- resource budgets --- *)

let budget_term =
  let max_nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-nodes" ] ~docv:"N" ~doc:"Abort the solve when live BDD nodes exceed $(docv).")
  in
  let max_allocs =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-allocs" ] ~docv:"N" ~doc:"Abort the solve after $(docv) fresh BDD node allocations.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Abort the solve after $(docv) seconds of wall-clock time.")
  in
  let max_iters =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-iters" ] ~docv:"N" ~doc:"Abort the solve after $(docv) fixpoint rounds.")
  in
  let make n a t i =
    if n = None && a = None && t = None && i = None then None
    else Some (Budget.make ?max_live_nodes:n ?max_allocations:a ?timeout_s:t ?max_iterations:i ())
  in
  Term.(const make $ max_nodes $ max_allocs $ timeout $ max_iters)

let options_of_budget ?(mem = (None, None)) budget =
  let page_bits, mem_cap_mib = mem in
  {
    Datalog.Engine.default_options with
    Datalog.Engine.budget;
    page_bits;
    mem_cap_bytes = Option.map (fun mib -> mib * 1024 * 1024) mem_cap_mib;
  }

(* --- node-arena paging knobs --- *)

let mem_term =
  let page_bits =
    Arg.(
      value
      & opt (some int) None
      & info [ "page-bits" ] ~docv:"B"
          ~doc:"Node-arena page size: $(docv) node slots per page as a power of two (default 12 = 4096 slots).")
  in
  let mem_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "mem-cap" ] ~docv:"MIB"
          ~doc:
            "Cap resident BDD node pages at $(docv) MiB.  Past the cap, cold pages spill to a scratch file and \
             fault back in on demand; answers are bit-identical to an uncapped run.")
  in
  Term.(const (fun p c -> (p, c)) $ page_bits $ mem_cap)

(* Turn a structured solver error into the process exit protocol (the
   top-level handler prints it and maps it to an exit code). *)
let solved = function
  | Ok r -> r
  | Error e -> raise (Solver_error.Error e)

(* --- persistent result stores --- *)

let read_file_bytes path =
  let ic = try open_in_bin path with Sys_error m -> (prerr_endline m; exit 1) in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> really_input_string ic (in_channel_length ic))

(* The cache key: a content hash of everything that determines the
   solved relations — raw program bytes, algorithm, the exact query
   suffix text, and the store format itself.  Any change to any of
   them makes an existing store a miss (and a re-save). *)
let store_key ~program_bytes ~algo ~(query : Pta.Programs.query_suffix) =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            program_bytes;
            algo;
            query.Pta.Programs.q_relations;
            query.Pta.Programs.q_rules;
            string_of_int Store.format_version;
          ]))

(* Stores persist every declared relation, internals included: an
   incremental [ptacli update] restarts the fixpoint from the previous
   run's working relations, which the interface-only set cannot seed. *)
let save_store ~dir ~key ~config (result : Analyses.result) =
  let eng = result.Analyses.engine in
  let rels = Datalog.Engine.declared_relations eng in
  Store.save ~dir ~key ~config ~space:(Datalog.Engine.space eng) ~relations:rels;
  Printf.printf "store: saved %d relations to %s/store (key %s)\n" (List.length rels) dir (String.sub key 0 12)

let store_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Persistent result store directory.  When a store with a matching content key exists, answer from it \
           without solving; otherwise solve cold and save.")

(* --- stats --- *)

let stats_cmd =
  let run path =
    let p = or_die (read_program path) in
    let fg = Factgen.extract p in
    let ci = Analyses.run_basic ~algo:Analyses.Algo3 fg in
    let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples ci) in
    Printf.printf "classes      %d\n" (Ir.num_classes p);
    Printf.printf "methods      %d\n" (Ir.num_methods p);
    Printf.printf "statements   %d\n" (Ir.stmt_count p);
    Printf.printf "variables    %d\n" (Ir.num_vars p);
    Printf.printf "alloc sites  %d\n" (Ir.num_heaps p);
    Printf.printf "invokes      %d\n" (Ir.num_invokes p);
    Printf.printf "c.s. paths   %s\n" (Bignat.to_scientific (Context.total_paths ctx));
    Printf.printf "max contexts %s\n" (Bignat.to_scientific (Context.max_contexts ctx));
    if Context.merged ctx then print_endline "note: context counts were merged at the bit cap"
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print program statistics (the Figure 3 columns).") Term.(const run $ program_arg)

(* --- analyze --- *)

type algo_choice = Cha_nofilter | Cha | Otf | Cs | Cs_otf | One_cfa | Cs_types | Escape | Handcoded | Steens

let algo_conv =
  Arg.enum
    [
      ("cha-nofilter", Cha_nofilter);
      ("cha", Cha);
      ("otf", Otf);
      ("cs", Cs);
      ("cstypes", Cs_types);
      ("cs-otf", Cs_otf);
      ("1cfa", One_cfa);
      ("escape", Escape);
      ("handcoded", Handcoded);
      ("steensgaard", Steens);
    ]

let print_stats (s : Datalog.Engine.stats) =
  Printf.printf "solve time        %.3fs\n" s.Datalog.Engine.solve_seconds;
  Printf.printf "rule applications %d\n" s.Datalog.Engine.rule_applications;
  Printf.printf "fixpoint rounds   %d\n" s.Datalog.Engine.iterations;
  Printf.printf "strata            %d\n" s.Datalog.Engine.strata;
  Printf.printf "peak BDD nodes    %d\n" s.Datalog.Engine.peak_live_nodes

(* --stats: the per-op-class BDD cache counters, GC totals, and the
   node arena's pager counters. *)
let print_extended_stats (s : Datalog.Engine.stats) =
  Printf.printf "GC runs           %d\n" s.Datalog.Engine.gcs;
  Printf.printf "op cache hit rate %.1f%%\n" (100.0 *. Datalog.Engine.cache_hit_rate s);
  Printf.printf "per-op cache      %10s %12s %8s\n" "hits" "misses" "hit%";
  List.iter
    (fun (name, h, m) ->
      if h + m > 0 then
        Printf.printf "  %-15s %10d %12d %7.1f%%\n" name h m (100.0 *. float_of_int h /. float_of_int (h + m)))
    s.Datalog.Engine.op_cache;
  let a = s.Datalog.Engine.arena in
  Printf.printf "node table bytes  %d\n" a.Bdd.table_bytes;
  Printf.printf "arena pages       %d total, %d resident (peak %d), %d pinned (page bits %d)\n" a.Bdd.pages_total
    a.Bdd.pages_resident a.Bdd.peak_pages_resident a.Bdd.pages_pinned a.Bdd.page_bits;
  if a.Bdd.evictions > 0 || a.Bdd.fault_ins > 0 then
    Printf.printf "arena paging      %d evictions, %d fault-ins, %d spill writes, %d spill reads\n" a.Bdd.evictions
      a.Bdd.fault_ins a.Bdd.spill_writes a.Bdd.spill_reads;
  match Meminfo.peak_rss_kb () with
  | Some kb -> Printf.printf "peak RSS          %d KiB\n" kb
  | None -> ()

let stats_flag =
  Arg.(value & flag & info [ "stats" ] ~doc:"Also print GC count and per-operation BDD cache hit rates.")

let dump_relation fg result name =
  let rel = Analyses.relation result name in
  Printf.printf "%s (%.0f tuples):\n" name (Relation.count rel);
  let attrs = Relation.attrs rel in
  List.iter
    (fun t ->
      let parts =
        List.mapi
          (fun i (a : Relation.attr) ->
            let dom = Domain.name a.Relation.block.Space.dom in
            match Factgen.element_names fg dom with
            | Some names when t.(i) < Array.length names -> names.(t.(i))
            | Some _ | None -> string_of_int t.(i))
          attrs
      in
      Printf.printf "  %s\n" (String.concat "  " parts))
    (Analyses.tuples result name)

let print_steens_stats r =
  let st = Pta.Steensgaard.stats r in
  Printf.printf "solve time        %.3fs\n" st.Pta.Steensgaard.seconds;
  Printf.printf "classes           %d\n" st.Pta.Steensgaard.classes;
  Printf.printf "unifications      %d\n" st.Pta.Steensgaard.unifications;
  Printf.printf "vP pairs          %d\n" (List.length (Pta.Steensgaard.vp_tuples r));
  Printf.printf "avg points-to     %.2f\n" (Pta.Steensgaard.avg_points_to r)

let algo_tag = function
  | Cha_nofilter -> "algo1"
  | Cha -> "algo2"
  | Otf -> "algo3"
  | Cs -> "algo5"
  | Cs_otf -> "algo5-otf"
  | One_cfa -> "1cfa"
  | Cs_types -> "algo6"
  | Escape -> "algo7"
  | Handcoded -> "handcoded"
  | Steens -> "steensgaard"

let analyze_cmd =
  let run path algo dump stats budget mem fallback save_store_dir =
    let p = or_die (read_program path) in
    let fg = Factgen.extract p in
    let options = options_of_budget ~mem budget in
    (match (save_store_dir, algo) with
    | Some _, (Handcoded | Steens) ->
      prerr_endline "ptacli: --save-store needs an engine-backed algorithm (not handcoded/steensgaard)";
      exit 1
    | _ -> ());
    let finish result =
      print_stats result.Analyses.stats;
      if stats then print_extended_stats result.Analyses.stats;
      List.iter
        (fun name ->
          print_newline ();
          dump_relation fg result name)
        dump;
      match save_store_dir with
      | Some dir ->
        let key =
          store_key ~program_bytes:(read_file_bytes path) ~algo:(algo_tag algo) ~query:Pta.Programs.no_query
        in
        save_store ~dir ~key
          ~config:[ ("program", Filename.basename path); ("algo", algo_tag algo) ]
          result
      | None -> ()
    in
    let with_context k =
      let ci = solved (Analyses.solve_basic ~options ~algo:Analyses.Algo3 fg) in
      let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples ci) in
      Printf.printf "contexts: %s reduced call paths, C domain size %d%s\n"
        (Bignat.to_scientific (Context.total_paths ctx))
        (Context.csize ctx)
        (if Context.merged ctx then " (merged at cap)" else "");
      k ctx
    in
    if fallback && algo <> Cs then begin
      prerr_endline "ptacli: --fallback only applies to --algo cs";
      exit 1
    end;
    match algo with
    | Cs when fallback ->
      let fb = solved (Analyses.solve_with_fallback ~options ?budget fg) in
      List.iter
        (fun (r, e) ->
          Printf.printf "%s failed: %s\n" (Analyses.rung_name r) (Solver_error.to_string e))
        fb.Analyses.failures;
      (match fb.Analyses.rung with
      | Analyses.Rung_cs -> print_endline "precision: precise (context-sensitive)"
      | rung ->
        Printf.printf "degraded to %s\n" (Analyses.rung_name rung);
        Printf.printf "precision: overapproximate (%s)\n"
          (match rung with Analyses.Rung_ci -> "context-insensitive" | _ -> "unification-based"));
      Printf.printf "vP pairs          %d\n" (List.length fb.Analyses.vp);
      (match (fb.Analyses.result, fb.Analyses.steens) with
      | Some r, _ -> finish r
      | None, Some s -> print_steens_stats s
      | None, None -> ())
    | Cha_nofilter -> finish (solved (Analyses.solve_basic ~options ~algo:Analyses.Algo1 fg))
    | Cha -> finish (solved (Analyses.solve_basic ~options ~algo:Analyses.Algo2 fg))
    | Otf -> finish (solved (Analyses.solve_basic ~options ~algo:Analyses.Algo3 fg))
    | Cs -> with_context (fun ctx -> finish (solved (Analyses.solve_cs ~options fg ctx)))
    | Cs_otf ->
      let result, _ctx = Analyses.run_cs_otf ~options fg in
      finish result
    | One_cfa ->
      let result, _k = Analyses.run_1cfa ~options fg in
      finish result
    | Cs_types -> with_context (fun ctx -> finish (Analyses.run_cs_types ~options fg ctx))
    | Escape ->
      let result, info = Analyses.run_thread_escape ~options fg in
      Printf.printf "thread contexts   %d\n" info.Analyses.n_contexts;
      let c = Analyses.escape_counts fg result in
      Printf.printf "captured sites    %d\n" c.Analyses.captured_sites;
      Printf.printf "escaped sites     %d\n" c.Analyses.escaped_sites;
      Printf.printf "needed syncs      %d\n" c.Analyses.needed_syncs;
      Printf.printf "unneeded syncs    %d\n" c.Analyses.unneeded_syncs;
      finish result
    | Handcoded ->
      let r = Pta.Handcoded.run fg in
      let st = Pta.Handcoded.stats r in
      Printf.printf "solve time        %.3fs\n" st.Pta.Handcoded.seconds;
      Printf.printf "iterations        %d\n" st.Pta.Handcoded.iterations;
      Printf.printf "peak BDD nodes    %d\n" st.Pta.Handcoded.peak_live_nodes;
      Printf.printf "vP tuples         %.0f\n" st.Pta.Handcoded.vp_count;
      Printf.printf "hP tuples         %.0f\n" st.Pta.Handcoded.hp_count
    | Steens -> print_steens_stats (Pta.Steensgaard.run fg)
  in
  let algo =
    Arg.(
      value
      & opt algo_conv Otf
      & info [ "algo"; "a" ] ~docv:"ALGO"
          ~doc:
            "Algorithm: cha-nofilter (Algorithm 1), cha (Algorithm 2), otf (Algorithm 3), cs (Algorithm 5), \
             cs-otf (§4.2 variant), 1cfa (k-CFA baseline), cstypes (Algorithm 6), escape (Algorithm 7), \
             handcoded (manual BDD Algorithm 2), steensgaard (unification baseline).")
  in
  let dump =
    Arg.(value & opt_all string [] & info [ "dump" ] ~docv:"REL" ~doc:"Print the tuples of an output relation.")
  in
  let fallback =
    Arg.(
      value
      & flag
      & info [ "fallback" ]
          ~doc:
            "When the budget exhausts a context-sensitive run, retry context-insensitively (Algorithm 2), \
             then with Steensgaard unification — each rung a sound overapproximation of the one above.")
  in
  let save_store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-store" ] ~docv:"DIR"
          ~doc:
            "Persist the solved relations (inputs and outputs, as one shared-DAG BDD dump) under $(docv)/store, \
             keyed by a content hash of the program and configuration, for later $(b,query --store) / $(b,serve).")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run one of the paper's analyses.")
    Term.(const run $ program_arg $ algo $ dump $ stats_flag $ budget_term $ mem_term $ fallback $ save_store_dir)

(* --- query --- *)

(* The per-variable queries (--points-to/--alias), shared between the
   cold path (freshly solved relations) and the warm path (relations
   loaded from a store), so both paths print byte-identical answers. *)
let answer_pt_queries pt pt_query alias_query =
  let dom_of name = (Relation.find_attr pt name).Relation.block.Space.dom in
  let vdom = dom_of "variable" and hdom = dom_of "heap" in
  let resolve what s =
    match Domain.element_index vdom s with
    | Some v -> v
    | None ->
      prerr_endline (Printf.sprintf "ptacli: unknown %s %S" what s);
      exit 1
  in
  (match pt_query with
  | Some v ->
    let heaps = Pta.Queries.points_to pt ~var:(resolve "variable" v) in
    Printf.printf "points-to %s (%d heaps):\n" v (List.length heaps);
    List.iter (fun h -> Printf.printf "  %s\n" (Domain.element_name hdom h)) heaps
  | None -> ());
  match alias_query with
  | Some (v1, v2) ->
    let shared = Pta.Queries.alias_heaps pt ~v1:(resolve "variable" v1) ~v2:(resolve "variable" v2) in
    Printf.printf "alias %s %s: %s (%d shared heaps)\n" v1 v2 (if shared = [] then "no" else "yes")
      (List.length shared);
    List.iter (fun h -> Printf.printf "  %s\n" (Domain.element_name hdom h)) shared
  | None -> ()

(* Dump a store-loaded relation in the same format as [dump_relation]
   (which reads names through Factgen): the store's .map files carry
   the same element names, through Domain.element_name. *)
let dump_store_relation st name =
  match Store.find st name with
  | None ->
    prerr_endline (Printf.sprintf "ptacli: relation %s missing from store" name);
    exit 1
  | Some rel ->
    Printf.printf "%s (%.0f tuples):\n" name (Relation.count rel);
    let doms =
      List.map (fun (a : Relation.attr) -> a.Relation.block.Space.dom) (Relation.attrs rel)
    in
    List.iter
      (fun t ->
        let parts = List.mapi (fun i d -> Domain.element_name d t.(i)) doms in
        Printf.printf "  %s\n" (String.concat "  " parts))
      (List.sort compare (Relation.tuples rel))

let query_cmd =
  let run path leak vuln refine modref pt_query alias_query store_dir =
    let p = or_die (read_program path) in
    let fg = Factgen.extract p in
    let any =
      leak <> None || vuln <> None || refine || modref || pt_query <> None || alias_query <> None
    in
    if not any then
      prerr_endline "nothing to do: pass --leak, --vuln, --refine, --modref, --points-to or --alias"
    else begin
      let cold_solve query =
        let ci = Analyses.run_basic ~algo:Analyses.Algo3 fg in
        let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples ci) in
        Analyses.run_cs fg ctx ~query
      in
      let print_refine_line population multi_pct refinable_pct =
        Printf.printf "population %.0f, multi-typed %.2f%%, refinable %.2f%%\n" population multi_pct
          refinable_pct
      in
      let with_pt_of_relation vpc_or_vp k =
        (* Project the context away once; vP passes through unchanged. *)
        let has_ctx = List.exists (fun (a : Relation.attr) -> a.Relation.attr_name = "context") (Relation.attrs vpc_or_vp) in
        if has_ctx then begin
          let pt = Relation.project vpc_or_vp [ "variable"; "heap" ] in
          Fun.protect ~finally:(fun () -> Relation.dispose pt) (fun () -> k pt)
        end
        else k vpc_or_vp
      in
      match store_dir with
      | None ->
        (* No store: solve per query family, exactly as before. *)
        (match leak with
        | Some label ->
          let cs = cold_solve (Pta.Queries.who_points_to ~heap_label:label) in
          dump_relation fg cs "whoPointsTo";
          dump_relation fg cs "whoDunnit"
        | None -> ());
        (match vuln with
        | Some meth ->
          let cs = cold_solve (Pta.Queries.jce_vuln ~init_method:meth) in
          dump_relation fg cs "fromString";
          dump_relation fg cs "vuln"
        | None -> ());
        if refine then begin
          let cs = cold_solve Pta.Queries.refinement_projected_cs in
          let r = Analyses.refinement_ratios cs ~per_clone:false in
          print_refine_line r.Analyses.population r.Analyses.multi_pct r.Analyses.refinable_pct
        end;
        if modref then begin
          let cs = cold_solve Pta.Queries.mod_ref in
          dump_relation fg cs "modset";
          dump_relation fg cs "refset"
        end;
        if pt_query <> None || alias_query <> None then begin
          let cs = cold_solve Pta.Programs.no_query in
          with_pt_of_relation (Analyses.relation cs "vPC") (fun pt ->
              answer_pt_queries pt pt_query alias_query)
        end
      | Some dir ->
        (* One combined solve covers every question the store will be
           asked, so any later invocation with the same program and
           flags is a pure read. *)
        let suffix =
          let s = Pta.Queries.combine Pta.Queries.mod_ref Pta.Queries.refinement_projected_cs in
          let s =
            match leak with
            | Some label -> Pta.Queries.combine s (Pta.Queries.who_points_to ~heap_label:label)
            | None -> s
          in
          match vuln with
          | Some meth -> Pta.Queries.combine s (Pta.Queries.jce_vuln ~init_method:meth)
          | None -> s
        in
        let key = store_key ~program_bytes:(read_file_bytes path) ~algo:"algo5" ~query:suffix in
        (* The warm-hit test compares against the {e chain tip}
           identity, not the base manifest: after a `ptacli update`
           appended delta layers, the base key still matches the old
           program, but the store's contents are the folded tip — a
           stale base must read as a miss, and a current tip as a hit
           with its snapshot serial named. *)
        let tip = Store.read_ident ~dir in
        if (match tip with Some (k, _) -> k = key | None -> false) then begin
          let snapshot = match tip with Some (_, s) -> s | None -> 0 in
          Printf.printf "query path: store hit (%s/store, snapshot %d)\n" dir snapshot;
          let st = Store.load ~dir in
          (match leak with
          | Some _ ->
            dump_store_relation st "whoPointsTo";
            dump_store_relation st "whoDunnit"
          | None -> ());
          (match vuln with
          | Some _ ->
            dump_store_relation st "fromString";
            dump_store_relation st "vuln"
          | None -> ());
          if refine then begin
            let count name =
              match Store.find st name with Some r -> Relation.count r | None -> 0.0
            in
            let population = count "activeV" in
            let pct x = if population = 0.0 then 0.0 else 100.0 *. x /. population in
            print_refine_line population (pct (count "multiT")) (pct (count "refinable"))
          end;
          if modref then begin
            dump_store_relation st "modset";
            dump_store_relation st "refset"
          end;
          if pt_query <> None || alias_query <> None then begin
            match Store.find st "vPC" with
            | Some vpc -> with_pt_of_relation vpc (fun pt -> answer_pt_queries pt pt_query alias_query)
            | None ->
              prerr_endline "ptacli: relation vPC missing from store";
              exit 1
          end
        end
        else begin
          Printf.printf "query path: cold solve (%s)\n"
            (if Store.exists ~dir then "store key mismatch: program or queries changed" else "no store yet");
          let cs = cold_solve suffix in
          (match leak with
          | Some _ ->
            dump_relation fg cs "whoPointsTo";
            dump_relation fg cs "whoDunnit"
          | None -> ());
          (match vuln with
          | Some _ ->
            dump_relation fg cs "fromString";
            dump_relation fg cs "vuln"
          | None -> ());
          if refine then begin
            let r = Analyses.refinement_ratios cs ~per_clone:false in
            print_refine_line r.Analyses.population r.Analyses.multi_pct r.Analyses.refinable_pct
          end;
          if modref then begin
            dump_relation fg cs "modset";
            dump_relation fg cs "refset"
          end;
          if pt_query <> None || alias_query <> None then
            with_pt_of_relation (Analyses.relation cs "vPC") (fun pt ->
                answer_pt_queries pt pt_query alias_query);
          let config =
            [ ("program", Filename.basename path); ("algo", "algo5") ]
            @ (match leak with Some l -> [ ("leak", l) ] | None -> [])
            @ match vuln with Some m -> [ ("vuln", m) ] | None -> []
          in
          save_store ~dir ~key ~config cs
        end
    end
  in
  let leak = Arg.(value & opt (some string) None & info [ "leak" ] ~docv:"LABEL" ~doc:"§5.1 leak query for a heap label.") in
  let vuln =
    Arg.(value & opt (some string) None & info [ "vuln" ] ~docv:"METHOD" ~doc:"§5.2 String-key audit (e.g. PBEKeySpec.init).")
  in
  let refine = Arg.(value & flag & info [ "refine" ] ~doc:"§5.3 type refinement percentages.") in
  let modref = Arg.(value & flag & info [ "modref" ] ~doc:"§5.4 context-sensitive mod-ref sets.") in
  let pt_query =
    Arg.(
      value
      & opt (some string) None
      & info [ "points-to" ] ~docv:"VAR" ~doc:"Heaps the variable may point to (any context).")
  in
  let alias_query =
    Arg.(
      value
      & opt (some (pair ~sep:',' string string)) None
      & info [ "alias" ] ~docv:"V1,V2" ~doc:"May the two variables alias (share a pointed-to heap)?")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Run the §5 queries over the context-sensitive results, answering from a persistent store when one \
          matches ($(b,--store)).")
    Term.(const run $ program_arg $ leak $ vuln $ refine $ modref $ pt_query $ alias_query $ store_dir_arg)

(* --- update: incremental re-analysis against a stored solve --- *)

let basic_of_tag = function
  | "algo1" -> Some Analyses.Algo1
  | "algo2" -> Some Analyses.Algo2
  | "algo3" -> Some Analyses.Algo3
  | _ -> None

let update_cmd =
  let run path dir budget mem stats watch poll_interval compact_every certify no_certify =
    let options = options_of_budget ~mem budget in
    (* Certification default: on for --watch (a long-running writer
       feeding --require-certified followers must never commit an
       unvouched layer), off for a one-shot update unless asked. *)
    let do_certify = (not no_certify) && (certify || watch) in
    (* One update cycle: compare the program against the chain tip,
       re-solve by the cheapest sound route (Pta.Incr), and commit the
       result as a delta layer (incremental/unchanged) or a fresh base
       (cold).  Re-loads the store each time so a watch loop always
       diffs against the latest tip. *)
    let update_once () =
      if not (Store.exists ~dir) then begin
        prerr_endline
          (Printf.sprintf "ptacli: no store at %s/store (run 'analyze --save-store %s' first)" dir dir);
        exit 1
      end;
      let st = Store.load ~dir in
      let tag = Option.value (Store.config_value st "algo") ~default:"(unrecorded)" in
      match basic_of_tag tag with
      | None ->
        prerr_endline
          (Printf.sprintf
             "ptacli: store was saved by %s; update supports algo1/algo2/algo3 (analyze --algo \
              cha-nofilter|cha|otf)"
             tag);
        exit 1
      | Some algo ->
        let program_bytes = read_file_bytes path in
        let key = store_key ~program_bytes ~algo:tag ~query:Pta.Programs.no_query in
        if Store.key st = key then
          Printf.printf "update: store already current (key %s, snapshot %d, %d layers)\n%!"
            (String.sub key 0 12) (Store.snapshot st) (Store.layers st)
        else begin
          let p = or_die (read_program path) in
          let fg = Factgen.extract p in
          let t0 = Unix.gettimeofday () in
          let o = solved (Pta.Incr.update ~options ~algo ~store:st fg) in
          let eng = o.Pta.Incr.engine in
          let config = [ ("program", Filename.basename path); ("algo", tag) ] in
          let cert_verdict e =
            Pta.Certify.certify_engine ~algo:tag ~fresh_inputs:(Pta.Programs.input_relations fg) e
          in
          (* Certify the candidate *before* commit: a result that is
             not a closed model of this program's rules never reaches
             the chain, so followers demanding certified snapshots
             cannot be fed a wrong answer by the incremental path. *)
          let incr_certified =
            (not do_certify)
            ||
            let v = cert_verdict eng in
            List.iter print_endline (Pta.Certify.verdict_lines v);
            Pta.Certify.passed v
          in
          if not incr_certified then begin
            Printf.eprintf
              "update: incremental result failed certification; quarantining delta chain and re-solving cold\n%!";
            (match Store.quarantine_layers ~dir ~from_layer:1 with
            | Some dest -> Printf.eprintf "update: quarantined delta layers to %s\n%!" dest
            | None -> ());
            let cold = solved (Analyses.solve_basic ~options ~algo fg) in
            let ceng = cold.Analyses.engine in
            let cv = cert_verdict ceng in
            List.iter print_endline (Pta.Certify.verdict_lines cv);
            if not (Pta.Certify.passed cv) then
              raise
                (Solver_error.Error
                   (Solver_error.Internal "cold re-solve also failed certification; refusing to commit"));
            Store.save ~dir ~key ~config ~space:(Datalog.Engine.space ceng)
              ~relations:(Datalog.Engine.declared_relations ceng);
            let mk, ms = Store.mark_certified ~dir in
            Printf.printf "update: cold re-solve committed and certified in %.3fs (key %s, snapshot %d)\n%!"
              (Unix.gettimeofday () -. t0)
              (String.sub mk 0 12) ms
          end
          else begin
          (match o.Pta.Incr.verdict with
          | Pta.Incr.Cold _ ->
            Store.save ~dir ~key ~config ~space:(Datalog.Engine.space eng)
              ~relations:(Datalog.Engine.declared_relations eng)
          | Pta.Incr.Incremental | Pta.Incr.Unchanged ->
            ignore
              (Store.save_delta ~dir ~key ~config ~space:(Datalog.Engine.space eng)
                 ~deltas:o.Pta.Incr.deltas));
          if do_certify then ignore (Store.mark_certified ~dir);
          let layers = Option.value (Store.read_layers ~dir) ~default:0 in
          let snapshot = match Store.read_ident ~dir with Some (_, s) -> s | None -> 0 in
          Printf.printf "update: %s in %.3fs (%d relations changed; snapshot %d, %d layer%s)\n%!"
            (Pta.Incr.verdict_to_string o.Pta.Incr.verdict)
            (Unix.gettimeofday () -. t0)
            (List.length o.Pta.Incr.deltas)
            snapshot layers
            (if layers = 1 then "" else "s");
          (if compact_every > 0 && layers >= compact_every then
             match Store.compact ~dir with
             | 0 -> ()
             | n ->
               Printf.printf "update: compacted %d layer%s into a new base (snapshot %d)\n%!" n
                 (if n = 1 then "" else "s")
                 (Option.value (Store.read_snapshot ~dir) ~default:0);
               (* compact drops the certified line (new base = new
                  identity); the fold of a just-certified tip is
                  content-identical, so re-mark it. *)
               if do_certify then ignore (Store.mark_certified ~dir));
          (match (stats, o.Pta.Incr.stats) with
          | true, Some s ->
            print_stats s;
            print_extended_stats s
          | _ -> ())
          end
        end
    in
    if not watch then update_once ()
    else begin
      (* Writer loop: re-run an update whenever the .jir file changes.
         The program file should be replaced atomically (write + rename)
         — exactly what `gen -o` does — so a poll never reads a torn
         program.  SIGTERM/SIGINT stop cleanly after the in-flight
         update commits, which a downstream `serve --follow` then picks
         up whole or not at all. *)
      let stop = ref false in
      let handler _ = stop := true in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
      Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
      let file_stat () =
        match Unix.stat path with
        | s -> Some (s.Unix.st_ino, s.Unix.st_mtime, s.Unix.st_size)
        | exception Unix.Unix_error _ -> None
      in
      update_once ();
      let seen = ref (file_stat ()) in
      Printf.eprintf "update: watching %s (poll every %.2fs; SIGTERM stops)\n%!" path poll_interval;
      while not !stop do
        Thread.delay poll_interval;
        if not !stop then begin
          let cur = file_stat () in
          if cur <> !seen && cur <> None then begin
            seen := cur;
            try update_once () with
            | Solver_error.Error e -> Printf.eprintf "update: failed: %s\n%!" (Solver_error.to_string e)
          end
        end
      done;
      prerr_endline "update: watch stopped"
    end
  in
  let store_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:"Store directory written by $(b,analyze --save-store) (and updated in place by this command).")
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Writer-loop mode: after the first update, keep watching the program file and re-update on every \
             change, feeding $(b,serve --follow) daemons a stream of incremental snapshots.  SIGTERM/SIGINT \
             stop cleanly.")
  in
  let poll_interval =
    Arg.(
      value
      & opt float 0.5
      & info [ "poll-interval" ] ~docv:"SECONDS" ~doc:"How often $(b,--watch) stats the program file.")
  in
  let compact_every =
    Arg.(
      value
      & opt int 16
      & info [ "compact-every" ] ~docv:"N"
          ~doc:
            "Compact the delta chain back to a single base once it reaches $(docv) layers (LSM-style), \
             bounding load-time fold work for followers.  0 never compacts.")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Semantically certify each result before committing it (independent one-application fixpoint \
             check, see $(b,ptacli certify)): a pass records a $(b,certified) mark for \
             $(b,serve --follow --require-certified) followers; a failure quarantines the delta chain and \
             forces a cold re-solve instead of committing a wrong answer.  Default on under $(b,--watch), \
             off otherwise.")
  in
  let no_certify =
    Arg.(
      value & flag
      & info [ "no-certify" ]
          ~doc:"Skip certification even under $(b,--watch) (overrides $(b,--certify)).")
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Incrementally re-analyze a modified program against a persistent store: diff the extracted input \
          relations against the stored ones (BDD diffs), re-solve from only the added tuples, and append \
          the result as a delta layer — bit-identical to a cold solve at a fraction of the cost.  Removals \
          or negation fall back to a cold solve and a fresh base (sound by construction, never wrong).  \
          $(b,--watch) turns this into a long-running writer for an evolving codebase, certifying every \
          commit by default (see $(b,--certify)).")
    Term.(
      const run $ program_arg $ store_dir $ budget_term $ mem_term $ stats_flag $ watch $ poll_interval
      $ compact_every $ certify $ no_certify)

(* --- certify: independent semantic check of a stored result --- *)

(* Shared by the top-level `certify` verb and `store certify`: load
   the folded chain tip, re-extract the program's input relations, run
   the independent fixpoint check (Pta.Certify — shares the rule plans
   with the solver but not its fixpoint driver), and on a pass record
   the `certified <key> <snapshot>` mark that `serve --follow
   --require-certified` demands.  Exit 1 with the violating rule and
   bounded witness tuples on a failure. *)
let run_certification path dir budget mem max_witness =
  let options = options_of_budget ~mem budget in
  if not (Store.exists ~dir) then begin
    prerr_endline
      (Printf.sprintf "ptacli: no store at %s/store (run 'analyze --save-store %s' first)" dir dir);
    exit 1
  end;
  let st = Store.load ~dir in
  let p = or_die (read_program path) in
  let fg = Factgen.extract p in
  let v = Pta.Certify.certify_store ~options ~query:Pta.Programs.no_query ~max_witness fg st in
  List.iter print_endline (Pta.Certify.verdict_lines v);
  if Pta.Certify.passed v then begin
    let key, snapshot = Store.mark_certified ~dir in
    Printf.printf "certify: marked key %s snapshot %d as certified\n" (String.sub key 0 12) snapshot
  end
  else exit 1

let max_witness_term =
  Arg.(
    value
    & opt int 5
    & info [ "max-witness" ] ~docv:"N"
        ~doc:"Tuples printed per violation witness (the full fresh-tuple count is always reported).")

let certify_store_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:"Store directory written by $(b,analyze --save-store) or $(b,update) (certified in place).")

let certify_cmd =
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Independently check that a stored result is a genuine fixpoint of the program it claims to \
          solve: every extracted input relation must be contained in the solution, and one full \
          application of every resolved rule must add nothing (BDD containment per rule).  The checker \
          reuses the solver's optimized rule plans but not its fixpoint driver, so a solver bug, a \
          CRC-clean on-disk corruption, or a wrong incremental shortcut is caught here even when \
          $(b,store verify) reports every checksum healthy.  A pass records a $(b,certified) mark in the \
          store manifest — what $(b,serve --follow --require-certified) demands before hot-swapping — \
          naming the exact chain-tip identity, so any later save invalidates it.  On failure, prints the \
          first violating rule with bounded witness tuples and exits 1.")
    Term.(const run_certification $ program_arg $ certify_store_dir_arg $ budget_term $ mem_term $ max_witness_term)

(* --- serve ---

   The fault-tolerant daemon driver.  `Pta.Serve.serve_line` does the
   per-request work (budget, firewall, stats); this layer owns the
   process lifecycle: stale-socket detection, a bounded concurrent
   accept loop (one thread per connection doing I/O, evaluation
   dispatched onto a pool of worker domains each owning a private
   evaluation ctx over the frozen store), `err busy` backpressure at
   capacity, EINTR-safe accept, and SIGTERM/SIGINT graceful shutdown
   that drains in-flight requests, joins the pool, removes the socket
   file and prints final stats. *)

(* Probe an existing socket path: connect succeeding means a live
   daemon owns it (refuse to clobber); connection refused means the
   previous daemon died without cleanup (unlink the stale file); a
   non-socket at the path is never removed.

   The connect is EINTR-safe: a signal (e.g. a SIGTERM aimed at a
   previous instance mid-restart) interrupting the probe must not
   misclassify a live daemon as stale.  After EINTR the connection may
   complete asynchronously, so a retry answering EALREADY/EISCONN also
   means alive. *)
let prepare_socket_path path =
  if Sys.file_exists path then begin
    match (Unix.stat path).Unix.st_kind with
    | Unix.S_SOCK ->
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let alive =
        let rec connect_probe () =
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> connect_probe ()
          | exception Unix.Unix_error ((Unix.EALREADY | Unix.EISCONN), _, _) -> true
          | exception Unix.Unix_error _ -> false
        in
        connect_probe ()
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      if alive then begin
        Printf.eprintf "serve: a live daemon is already listening on %s; refusing to replace it\n%!" path;
        exit 1
      end
      else begin
        Printf.eprintf "serve: removing stale socket %s (no listener answered the probe)\n%!" path;
        try Sys.remove path with Sys_error _ -> ()
      end
    | _ ->
      Printf.eprintf "serve: %s exists and is not a socket; refusing to remove it\n%!" path;
      exit 1
  end

let serve_cmd =
  let run dir socket max_clients workers req_timeout req_max_allocs req_max_nodes follow poll_interval
      require_certified =
    (* The initial load happens before any socket work on purpose: a
       follower pointed at a missing or broken store must exit with a
       structured error (code 1) without ever binding — leaving no
       socket file behind for a router to trip over. *)
    let st = Store.load ~dir in
    (* --require-certified also gates the *initial* snapshot: refusing
       to start beats serving an unvouched-for answer until the first
       swap.  (The same comparison gates every later candidate in
       Serve.Follow.poll.) *)
    if require_certified then begin
      let ident = Store.read_ident ~dir in
      if ident = None || Store.read_certified ~dir <> ident then begin
        Printf.eprintf
          "serve: store at %s is not certified (run 'ptacli certify PROGRAM.jir --store %s' first, or drop \
           --require-certified)\n%!"
          dir dir;
        exit 1
      end
    end;
    let srv = Pta.Serve.make st in
    let stats = Pta.Serve.make_stats () in
    let limits =
      {
        Pta.Serve.rq_timeout_s = (if req_timeout > 0.0 then Some req_timeout else None);
        Pta.Serve.rq_max_allocs = (if req_max_allocs > 0 then Some req_max_allocs else None);
        Pta.Serve.rq_max_nodes = (if req_max_nodes > 0 then Some req_max_nodes else None);
      }
    in
    Printf.eprintf "serve: loaded %d relations from %s/store (key %s snapshot %d)\n%!"
      (List.length (Store.relations st))
      dir
      (String.sub (Store.key st) 0 12)
      (Store.snapshot st);
    let shutdown = ref false in
    (* Evaluation runs on a pool of worker domains, each with a
       private ctx over the frozen store; connection threads only do
       I/O and block in [Pool.run] until their answer is ready.  The
       pool reads the server through a swappable source so a follower
       can hot-swap snapshots underneath it. *)
    let source = Pta.Serve.Source.create srv in
    let pool = Pta.Serve.Pool.create ~limits ~stats ~workers source in
    (* --follow: watch the store directory and hot-swap on a new
       committed save.  The watcher never touches the serving path —
       a rejected (torn/corrupt) candidate logs one structured line
       and the old snapshot keeps answering. *)
    let watcher_thread =
      if not follow then None
      else begin
        let fstate = Pta.Serve.Follow.make ~require_certified ~dir source in
        let watcher () =
          while not !shutdown do
            Thread.delay poll_interval;
            if not !shutdown then
              match Pta.Serve.Follow.poll fstate with
              | Pta.Serve.Follow.Unchanged -> ()
              | Pta.Serve.Follow.Swapped { snapshot; key; seconds } ->
                Pta.Serve.Pool.poke pool;
                Printf.eprintf "serve: swap ok key=%s snapshot=%d (%.2fs)\n%!"
                  (String.sub key 0 12) snapshot seconds
              | Pta.Serve.Follow.Rejected { reason } ->
                Printf.eprintf "serve: swap rejected: %s\n%!" reason
          done
        in
        Printf.eprintf "serve: following %s (poll every %.2fs)\n%!" dir poll_interval;
        Some (Thread.create watcher ())
      end
    in
    let join_watcher () =
      match watcher_thread with
      | Some t -> ( try Thread.join t with _ -> ())
      | None -> ()
    in
    let in_flight = Atomic.make 0 in
    let serve_pooled line =
      Atomic.incr in_flight;
      Fun.protect
        ~finally:(fun () -> Atomic.decr in_flight)
        (fun () -> Pta.Serve.Pool.run pool line)
    in
    (* Per query: one header line "ok|err <command> <rows> <latency>"
       on stdout, then the result rows.  The banner and shutdown notes
       go to stderr so stdout stays a pure protocol stream. *)
    let handle_channel ic oc =
      let served = ref 0 in
      (try
         let continue = ref true in
         while !continue do
           let line = input_line ic in
           if String.trim line = "quit" then continue := false
           else begin
             let s = serve_pooled line in
             let o = s.Pta.Serve.outcome in
             if not (o.Pta.Serve.command = "" && o.Pta.Serve.lines = []) then begin
               incr served;
               Printf.fprintf oc "%s %s %d %.0fus\n"
                 (if o.Pta.Serve.ok then "ok" else "err")
                 o.Pta.Serve.command o.Pta.Serve.count s.Pta.Serve.latency_us;
               List.iter (fun l -> output_string oc (l ^ "\n")) o.Pta.Serve.lines
             end;
             flush oc;
             if s.Pta.Serve.close || !shutdown then continue := false
           end
         done
       with End_of_file | Sys_error _ -> ());
      !served
    in
    let print_final () =
      Printf.eprintf "serve: shutdown\n";
      List.iter (fun l -> Printf.eprintf "serve:   %s\n" l) (Pta.Serve.stats_lines stats);
      flush stderr
    in
    (* A peer hanging up mid-reply must error the write, not kill the
       process with SIGPIPE. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    match socket with
    | None ->
      (* stdin mode: one implicit connection.  A signal between
         requests exits immediately; mid-request it drains first. *)
      let handler _ =
        shutdown := true;
        if Atomic.get in_flight = 0 then begin
          print_final ();
          exit 0
        end
      in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
      Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
      Atomic.incr stats.Pta.Serve.s_connections;
      let n = handle_channel stdin stdout in
      shutdown := true;
      join_watcher ();
      Pta.Serve.Pool.shutdown pool;
      Printf.eprintf "serve: done (%d queries)\n%!" n;
      print_final ()
    | Some path ->
      let handler _ = shutdown := true in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
      Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
      prepare_socket_path path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      Printf.eprintf
        "serve: listening on %s (max %d concurrent connections, %d worker domain%s; 'quit' ends a connection; \
         SIGTERM drains and exits)\n%!"
        path max_clients
        (Pta.Serve.Pool.workers pool)
        (if Pta.Serve.Pool.workers pool = 1 then "" else "s");
      (* conn_mutex guards all of: active, conn_fds, threads.  The
         shutdown path reads them from the main thread while
         connection workers mutate them. *)
      let conn_mutex = Mutex.create () in
      let active = ref 0 in
      let conn_fds : (int, Unix.file_descr) Hashtbl.t = Hashtbl.create 8 in
      let threads = ref [] in
      let next_id = ref 0 in
      let worker (id, cfd) =
        let ic = Unix.in_channel_of_descr cfd and oc = Unix.out_channel_of_descr cfd in
        let n = handle_channel ic oc in
        Printf.eprintf "serve: connection closed (%d queries)\n%!" n;
        (try flush oc with Sys_error _ -> ());
        Mutex.lock conn_mutex;
        decr active;
        Hashtbl.remove conn_fds id;
        Mutex.unlock conn_mutex;
        try Unix.close cfd with Unix.Unix_error _ -> ()
      in
      (* EINTR-safe, shutdown-aware accept: select with a short timeout
         so a signal that lands between syscalls is still noticed. *)
      let rec accept_next () =
        if !shutdown then None
        else
          match Unix.select [ fd ] [] [] 0.25 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_next ()
          | [], _, _ -> accept_next ()
          | _ :: _, _, _ -> (
            match Unix.accept fd with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_next ()
            | cfd, _ -> Some cfd)
      in
      let rec loop () =
        match accept_next () with
        | None -> ()
        | Some cfd ->
          Mutex.lock conn_mutex;
          let full = !active >= max_clients in
          if not full then incr active;
          Mutex.unlock conn_mutex;
          if full then begin
            (* Backpressure: explicit err busy reply, then hang up. *)
            Atomic.incr stats.Pta.Serve.s_rejected;
            let oc = Unix.out_channel_of_descr cfd in
            (try
               Printf.fprintf oc "err busy 0 0us\nserver at capacity (%d connections); retry later\n" max_clients;
               flush oc
             with Sys_error _ -> ());
            try Unix.close cfd with Unix.Unix_error _ -> ()
          end
          else begin
            Atomic.incr stats.Pta.Serve.s_connections;
            incr next_id;
            let id = !next_id in
            Mutex.lock conn_mutex;
            Hashtbl.replace conn_fds id cfd;
            threads := Thread.create worker (id, cfd) :: !threads;
            Mutex.unlock conn_mutex
          end;
          loop ()
      in
      loop ();
      (* Graceful shutdown, in order: stop accepting; half-close every
         live connection so blocked readers see EOF once their
         in-flight request has been answered; join the connection
         threads (each drains through [Pool.run] first); only then
         shut the pool down and join the worker domains; finally
         remove the socket file and print stats.  The pool must
         outlive the connection threads or an in-flight [Pool.run]
         would bounce with [err shutdown]. *)
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Mutex.lock conn_mutex;
      Hashtbl.iter
        (fun _ cfd -> try Unix.shutdown cfd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
        conn_fds;
      let conn_threads = !threads in
      Mutex.unlock conn_mutex;
      List.iter (fun t -> try Thread.join t with _ -> ()) conn_threads;
      join_watcher ();
      Pta.Serve.Pool.shutdown pool;
      (try Sys.remove path with Sys_error _ -> ());
      print_final ()
  in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR" ~doc:"Store directory written by $(b,analyze --save-store) or $(b,query --store).")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix domain socket instead of reading queries from stdin.")
  in
  let max_clients =
    Arg.(
      value
      & opt int 8
      & info [ "max-clients" ] ~docv:"N"
          ~doc:"Concurrent connection cap; further clients get an explicit $(b,err busy) reply.")
  in
  let workers =
    Arg.(
      value
      & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker domains evaluating queries in parallel over the frozen store (each with a private \
             operation cache and node arena).  1 (default) serializes evaluation as before; values up to \
             the core count scale warm-query throughput near-linearly.")
  in
  let req_timeout =
    Arg.(
      value
      & opt float 30.0
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-request wall-clock budget; an over-budget query answers $(b,err budget) instead of wedging \
                the daemon.  0 disables.")
  in
  let req_max_allocs =
    Arg.(
      value
      & opt int 0
      & info [ "request-max-allocs" ] ~docv:"N"
          ~doc:"Per-request cap on fresh BDD node allocations.  0 (default) disables.")
  in
  let req_max_nodes =
    Arg.(
      value
      & opt int 0
      & info [ "request-max-nodes" ] ~docv:"N"
          ~doc:"Per-request cap on live BDD node growth.  0 (default) disables.")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:
            "Follower mode: watch the store directory and hot-swap to each new committed save with zero \
             downtime — in-flight queries finish against the old snapshot, later ones answer from the new \
             one.  A torn or corrupt candidate is rejected with a structured log line and the old snapshot \
             keeps serving.")
  in
  let poll_interval =
    Arg.(
      value
      & opt float 0.5
      & info [ "poll-interval" ] ~docv:"SECONDS"
          ~doc:"How often $(b,--follow) checks the store manifest for a new save (one stat when unchanged).")
  in
  let require_certified =
    Arg.(
      value & flag
      & info [ "require-certified" ]
          ~doc:
            "Serve (and with $(b,--follow), hot-swap to) only snapshots carrying a semantic certification \
             mark matching the chain-tip identity (see $(b,ptacli certify)).  An uncertified candidate is \
             rejected with a structured log line while the old certified snapshot keeps serving — zero \
             downtime, zero exposure to byte-perfect but semantically wrong saves.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running query daemon: load a persistent store once, then answer line-delimited queries \
          (points-to, alias, leak, modref, vuln, refine, health, stats, ...) from the solved relations, \
          printing per-query latency and row counts.  Per-request budgets, an exception firewall, bounded \
          concurrency with $(b,err busy) backpressure, and SIGTERM/SIGINT graceful shutdown keep one bad \
          query or client from taking the daemon down.  $(b,--workers N) evaluates queries on a pool of \
          worker domains over the frozen store.  $(b,--follow) hot-swaps to new saves of the store with \
          zero downtime.  'help' lists the protocol.")
    Term.(
      const run $ dir $ socket $ max_clients $ workers $ req_timeout $ req_max_allocs $ req_max_nodes
      $ follow $ poll_interval $ require_certified)

(* --- route: fault-tolerant router over serve backends --------------

   The accept-loop shell around [Pta.Router]: same socket lifecycle as
   `serve` (stale-socket reclaim, EINTR-safe accept, --max-clients
   with err busy, SIGTERM/SIGINT drain), one thread per client
   connection doing I/O, plus a prober thread health-checking the
   backends every --probe-interval.  All forwarding policy — retries,
   backoff + jitter, failover, circuit breakers — lives in the library
   module. *)

let route_cmd =
  let run socket backends max_clients request_timeout retries probe_interval =
    if backends = [] then begin
      Printf.eprintf "route: at least one --backend socket is required\n%!";
      exit 1
    end;
    let policy =
      {
        Pta.Router.default_policy with
        Pta.Router.request_timeout_s = (if request_timeout > 0.0 then request_timeout else 86400.0);
        Pta.Router.retries = max 0 retries;
      }
    in
    let router = Pta.Router.create ~policy backends in
    (* First probe before accepting: health/stats answered from the
       very first connection reflect a real fleet view. *)
    Pta.Router.probe_all router;
    let shutdown = ref false in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let handler _ = shutdown := true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
    Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
    let prober =
      Thread.create
        (fun () ->
          while not !shutdown do
            Thread.delay probe_interval;
            if not !shutdown then Pta.Router.probe_all router
          done)
        ()
    in
    prepare_socket_path socket;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX socket);
    Unix.listen fd 16;
    Printf.eprintf "route: listening on %s over %d backend(s) (max %d clients, %d retries)\n%!" socket
      (List.length backends) max_clients (max 0 retries);
    let conn_mutex = Mutex.create () in
    let active = ref 0 in
    let conn_fds : (int, Unix.file_descr) Hashtbl.t = Hashtbl.create 8 in
    let threads = ref [] in
    let next_id = ref 0 in
    let worker (id, cfd) =
      let ic = Unix.in_channel_of_descr cfd and oc = Unix.out_channel_of_descr cfd in
      let sess = Pta.Router.session ~seed:id in
      (try
         let continue = ref true in
         while !continue do
           let line = input_line ic in
           if String.trim line = "quit" then continue := false
           else begin
             (match Pta.Router.handle router sess line with
             | None -> ()
             | Some r ->
               output_string oc (r.Pta.Router.rp_header ^ "\n");
               List.iter (fun l -> output_string oc (l ^ "\n")) r.Pta.Router.rp_body);
             flush oc;
             if !shutdown then continue := false
           end
         done
       with End_of_file | Sys_error _ -> ());
      Pta.Router.close_session sess;
      (try flush oc with Sys_error _ -> ());
      Mutex.lock conn_mutex;
      decr active;
      Hashtbl.remove conn_fds id;
      Mutex.unlock conn_mutex;
      try Unix.close cfd with Unix.Unix_error _ -> ()
    in
    let rec accept_next () =
      if !shutdown then None
      else
        match Unix.select [ fd ] [] [] 0.25 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_next ()
        | [], _, _ -> accept_next ()
        | _ :: _, _, _ -> (
          match Unix.accept fd with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_next ()
          | cfd, _ -> Some cfd)
    in
    let rec loop () =
      match accept_next () with
      | None -> ()
      | Some cfd ->
        Mutex.lock conn_mutex;
        let full = !active >= max_clients in
        if not full then incr active;
        Mutex.unlock conn_mutex;
        if full then begin
          let oc = Unix.out_channel_of_descr cfd in
          (try
             Printf.fprintf oc "err busy 0 0us\nrouter at capacity (%d connections); retry later\n"
               max_clients;
             flush oc
           with Sys_error _ -> ());
          try Unix.close cfd with Unix.Unix_error _ -> ()
        end
        else begin
          incr next_id;
          let id = !next_id in
          Mutex.lock conn_mutex;
          Hashtbl.replace conn_fds id cfd;
          threads := Thread.create worker (id, cfd) :: !threads;
          Mutex.unlock conn_mutex
        end;
        loop ()
    in
    loop ();
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Mutex.lock conn_mutex;
    Hashtbl.iter
      (fun _ cfd -> try Unix.shutdown cfd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      conn_fds;
    let conn_threads = !threads in
    Mutex.unlock conn_mutex;
    List.iter (fun t -> try Thread.join t with _ -> ()) conn_threads;
    (try Thread.join prober with _ -> ());
    (try Sys.remove socket with Sys_error _ -> ());
    Printf.eprintf "route: shutdown\n";
    List.iter (fun l -> Printf.eprintf "route:   %s\n" l) (Pta.Router.stats_lines router);
    flush stderr
  in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket the router listens on.")
  in
  let backends =
    Arg.(
      value & opt_all string []
      & info [ "backend" ] ~docv:"SOCK"
          ~doc:"A backend daemon socket (repeatable).  Queries are load-balanced round-robin across \
                healthy backends.")
  in
  let max_clients =
    Arg.(
      value
      & opt int 16
      & info [ "max-clients" ] ~docv:"N"
          ~doc:"Concurrent client connection cap; further clients get an explicit $(b,err busy) reply.")
  in
  let request_timeout =
    Arg.(
      value
      & opt float 30.0
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-attempt timeout for one forwarded request (send + full reply).  0 disables.")
  in
  let retries =
    Arg.(
      value
      & opt int 3
      & info [ "retries" ] ~docv:"N"
          ~doc:"Extra attempts after the first on connect failure, mid-stream EOF, timeout, or \
                $(b,err busy): each retry backs off exponentially with jitter and prefers a different \
                backend (failover).")
  in
  let probe_interval =
    Arg.(
      value
      & opt float 1.0
      & info [ "probe-interval" ] ~docv:"SECONDS"
          ~doc:"How often the prober thread health-checks every backend; a successful probe closes an \
                open circuit breaker.")
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Fault-tolerant query router over $(b,serve) backends: relays the line protocol to healthy \
          backends with round-robin load balancing, per-backend circuit breakers, bounded retry with \
          exponential backoff + jitter, and failover — clients see $(b,err unavailable) only when every \
          backend is down.  $(b,stats) and $(b,health) are answered by the router itself with \
          per-backend breaker state and snapshot identity.")
    Term.(const run $ socket $ backends $ max_clients $ request_timeout $ retries $ probe_interval)

(* --- store verify / repair --- *)

let store_group_cmd =
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR" ~doc:"Store directory to check (the parent of $(b,store/)).")
  in
  let print_checks checks =
    List.iter
      (fun (c : Store.check) ->
        Printf.printf "%-16s %s  %s\n" c.Store.chk_name (if c.Store.chk_ok then "ok  " else "FAIL") c.Store.chk_detail)
      checks
  in
  let healthy checks = checks <> [] && List.for_all (fun (c : Store.check) -> c.Store.chk_ok) checks in
  let verify =
    let run dir =
      let checks = Store.verify ~dir () in
      print_checks checks;
      if healthy checks then print_endline "store: valid"
      else begin
        print_endline "store: INVALID ('ptacli store repair' quarantines it; re-solving rebuilds it)";
        exit 1
      end
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Health-check a persistent store: manifest parse (including its own checksum), per-file size and \
            CRC-32 against the manifest, then a full structural load.  Exit 0 when every check passes, 1 \
            otherwise.")
      Term.(const run $ dir_arg)
  in
  let repair =
    let run dir =
      let checks = Store.verify ~dir () in
      if healthy checks then print_endline "store: healthy, nothing to repair"
      else begin
        print_checks checks;
        (* When the base snapshot itself is sound and only the delta
           chain is damaged, amputate the broken tail: the base and any
           earlier intact layers keep serving while the writer re-applies
           its updates. *)
        match Store.first_broken_layer checks with
        | Some n -> (
          match Store.quarantine_layers ~dir ~from_layer:n with
          | None -> print_endline "store: nothing on disk to repair"
          | Some dest ->
            Printf.printf "store: quarantined delta layers >= %d to %s\n" n dest;
            print_endline "store: base snapshot and earlier layers keep serving; re-run 'ptacli update' to re-apply")
        | None -> (
          match Store.quarantine ~dir with
          | None -> print_endline "store: nothing on disk to repair"
          | Some dest ->
            Printf.printf "store: quarantined broken store to %s\n" dest;
            print_endline "store: re-run 'ptacli analyze --save-store' or 'ptacli query --store' to rebuild")
      end
    in
    Cmd.v
      (Cmd.info "repair"
         ~doc:
           "Quarantine the broken part of a store.  When only the delta-layer chain is damaged, the broken \
            tail moves to $(b,store/layers.broken.<n>/) and the base snapshot keeps serving; otherwise the \
            whole $(b,store/) moves to $(b,store.broken.<n>/) so the next solve rebuilds it from scratch.  A \
            healthy store is left untouched.")
      Term.(const run $ dir_arg)
  in
  let compact =
    let run dir =
      match Store.compact ~dir with
      | 0 -> print_endline "store: no delta layers to compact"
      | n ->
        Printf.printf "store: compacted %d layer%s into a new base (snapshot %d)\n" n
          (if n = 1 then "" else "s")
          (Option.value (Store.read_snapshot ~dir) ~default:0)
    in
    Cmd.v
      (Cmd.info "compact"
         ~doc:
           "Squash the delta-layer chain into a single base snapshot (load the folded store, save it whole, \
            drop the layer files).  Readers racing the compaction see either the old chain or the new base — \
            never a mix.")
      Term.(const run $ dir_arg)
  in
  let certify =
    Cmd.v
      (Cmd.info "certify"
         ~doc:
           "Semantic twin of $(b,verify): alias for the top-level $(b,ptacli certify) verb.  $(b,verify) \
            proves the bytes on disk are the bytes that were written; $(b,certify) proves the relations \
            they encode are a genuine fixpoint of $(i,PROGRAM.jir)'s rules.  Both can disagree — a \
            CRC-clean tuple flip passes $(b,verify) and fails here.")
      Term.(const run_certification $ program_arg $ dir_arg $ budget_term $ mem_term $ max_witness_term)
  in
  let corrupt =
    let relation_arg =
      Arg.(
        required
        & opt (some string) None
        & info [ "relation" ] ~docv:"NAME" ~doc:"Stored relation to corrupt.")
    in
    let run dir relation =
      Store.corrupt_tuple_for_tests ~dir ~relation;
      Printf.printf "store: semantically corrupted relation %s (checksums freshly consistent; 'store \
                     verify' will pass, 'certify' will not)\n"
        relation
    in
    Cmd.v
      (Cmd.info "corrupt" ~docs:Cmdliner.Manpage.s_none
         ~doc:
           "Test hook: flip one tuple of a stored relation and re-save with fresh checksums — byte-level \
            $(b,verify) stays green, semantic $(b,certify) fails.  Exists so the robustness suite and CI \
            can exercise the certification path; never use on a store you care about.")
      Term.(const run $ dir_arg $ relation_arg)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Persistent store maintenance: $(b,verify) integrity across the delta chain, $(b,certify) the \
          semantics against a program, $(b,repair) by quarantine, $(b,compact) the chain into a fresh \
          base.")
    [ verify; certify; repair; compact; corrupt ]

(* --- order-search --- *)

let order_search_cmd =
  let run path budget cs =
    let p = or_die (read_program path) in
    let fg = Factgen.extract p in
    let job =
      if cs then begin
        let ci = Analyses.run_basic ~algo:Analyses.Algo3 fg in
        Pta.Order_search.Context_sensitive (Analyses.make_context fg ~ie:(Analyses.ie_tuples ci))
      end
      else Pta.Order_search.Basic Analyses.Algo2
    in
    let candidates = Pta.Order_search.search ~budget fg job in
    Printf.printf "%-40s %10s %9s\n" "domain order" "peak nodes" "seconds";
    List.iter
      (fun c ->
        Printf.printf "%-40s %10d %8.3fs\n"
          (String.concat " " c.Pta.Order_search.order)
          c.Pta.Order_search.peak_nodes c.Pta.Order_search.seconds)
      candidates
  in
  let budget = Arg.(value & opt int 6 & info [ "budget" ] ~docv:"N" ~doc:"Number of random orders to try.") in
  let cs = Arg.(value & flag & info [ "cs" ] ~doc:"Search for Algorithm 5 instead of Algorithm 2.") in
  Cmd.v
    (Cmd.info "order-search" ~doc:"Empirically search BDD domain orders (§2.4.2), best first.")
    Term.(const run $ program_arg $ budget $ cs)

(* --- datalog --- *)

let datalog_cmd =
  let run path dir stats budget =
    let src =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Datalog.Parser.parse ~file:path src with
    | exception Datalog.Parser.Parse_error e ->
      prerr_endline (Printf.sprintf "%s:%d: %s" path e.Datalog.Parser.line e.Datalog.Parser.message);
      exit 1
    | program -> (
      match Datalog.Engine.create ~options:(options_of_budget budget) program with
      | exception Datalog.Resolve.Check_error m ->
        prerr_endline m;
        exit 1
      | eng ->
        List.iter
          (fun (name, tuples) -> Datalog.Engine.set_tuples eng name (List.map Array.of_list tuples))
          (Datalog.Tuples_io.load_inputs ~dir program);
        let s = solved (Datalog.Engine.solve eng) in
        Datalog.Tuples_io.save_outputs ~dir program (fun name ->
            Relation.tuples (Datalog.Engine.relation eng name));
        Printf.printf "solved in %.3fs (%d rule applications, %d rounds, %d peak nodes)\n"
          s.Datalog.Engine.solve_seconds s.Datalog.Engine.rule_applications s.Datalog.Engine.iterations
          s.Datalog.Engine.peak_live_nodes;
        if stats then print_extended_stats s;
        List.iter
          (fun (r : Datalog.Ast.rel_decl) ->
            match r.Datalog.Ast.rel_kind with
            | Datalog.Ast.Output ->
              Printf.printf "  %s: %.0f tuples\n" r.Datalog.Ast.rel_name
                (Relation.count (Datalog.Engine.relation eng r.Datalog.Ast.rel_name))
            | Datalog.Ast.Input | Datalog.Ast.Internal -> ())
          program.Datalog.Ast.relations)
  in
  let dl = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM.dl" ~doc:"Datalog program.") in
  let dir =
    Arg.(value & opt dir "." & info [ "facts" ] ~docv:"DIR" ~doc:"Directory of <relation>.tuples files.")
  in
  Cmd.v
    (Cmd.info "datalog" ~doc:"Standalone bddbddb: solve a Datalog program over .tuples files.")
    Term.(const run $ dl $ dir $ stats_flag $ budget_term)

(* --- explain --- *)

let explain_cmd =
  let run path algo solve budget facts_dir =
    let options = options_of_budget budget in
    let finish eng =
      if solve then ignore (Datalog.Engine.run eng);
      Format.printf "%a@?" Datalog.Engine.explain eng
    in
    if Filename.check_suffix path ".dl" then begin
      let src = read_file_bytes path in
      match Datalog.Parser.parse ~file:path src with
      | exception Datalog.Parser.Parse_error e ->
        prerr_endline (Printf.sprintf "%s:%d: %s" path e.Datalog.Parser.line e.Datalog.Parser.message);
        exit 1
      | program ->
        let eng = Datalog.Engine.create ~options program in
        if solve then
          List.iter
            (fun (name, tuples) -> Datalog.Engine.set_tuples eng name (List.map Array.of_list tuples))
            (Datalog.Tuples_io.load_inputs ~dir:facts_dir program);
        finish eng
    end
    else begin
      let p = or_die (read_program path) in
      let fg = Factgen.extract p in
      let eng =
        match algo with
        | Cha_nofilter -> fst (Analyses.prepare_basic ~options ~algo:Analyses.Algo1 fg)
        | Cha -> fst (Analyses.prepare_basic ~options ~algo:Analyses.Algo2 fg)
        | Otf -> fst (Analyses.prepare_basic ~options ~algo:Analyses.Algo3 fg)
        | Cs ->
          let ci = Analyses.run_basic ~options ~algo:Analyses.Algo3 fg in
          let ctx = Analyses.make_context fg ~ie:(Analyses.ie_tuples ci) in
          fst (Analyses.prepare_cs ~options fg ctx)
        | Cs_otf | One_cfa | Cs_types | Escape | Handcoded | Steens ->
          prerr_endline "ptacli: explain supports --algo cha-nofilter, cha, otf or cs";
          exit 1
      in
      finish eng
    end
  in
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROGRAM" ~doc:"A $(b,.jir) program (pick the analysis with $(b,--algo)) or a $(b,.dl) Datalog file.")
  in
  let algo =
    Arg.(
      value
      & opt algo_conv Cha
      & info [ "algo"; "a" ] ~docv:"ALGO"
          ~doc:"Analysis whose plans to explain (for .jir input): cha-nofilter, cha, otf or cs.")
  in
  let solve =
    Arg.(
      value
      & flag
      & info [ "solve" ]
          ~doc:"Solve first, so the report includes per-rule time and BDD-op attribution.")
  in
  let facts_dir =
    Arg.(
      value
      & opt dir "."
      & info [ "facts" ] ~docv:"DIR" ~doc:"Directory of <relation>.tuples files (for .dl input with $(b,--solve)).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Print the optimized query plan of every rule: physical domain assignments, join/subtract/filter \
          steps with early quantification, rename counts, the optimization pass pipeline, and (with \
          $(b,--solve)) per-rule time and BDD-op attribution.")
    Term.(const run $ target $ algo $ solve $ budget_term $ facts_dir)

(* --- gen --- *)

let gen_cmd =
  let run profile scale seed edits out =
    match Synth.Profiles.find profile with
    | None ->
      prerr_endline
        (Printf.sprintf "unknown profile %s; available: %s" profile
           (String.concat ", " (List.map (fun p -> p.Synth.Profiles.name) Synth.Profiles.all)));
      exit 1
    | Some prof ->
      let params = Synth.Profiles.params ~scale prof in
      let params = { params with Synth.Generator.seed = Option.value seed ~default:params.Synth.Generator.seed } in
      let p = Synth.Generator.generate params in
      (* Edit descriptions go to stderr: with no -o the program itself
         owns stdout. *)
      List.iter
        (fun spec_text ->
          match Synth.Edits.parse spec_text with
          | Error msg ->
            prerr_endline ("ptacli: " ^ msg);
            exit 1
          | Ok spec -> Printf.eprintf "gen: %s\n%!" (Synth.Edits.apply p spec))
        edits;
      let text = Jir.Jprinter.to_string p in
      (match out with
      | Some path ->
        (* Write-then-rename so an `update --watch` polling this path
           never reads a torn program. *)
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        output_string oc text;
        close_out oc;
        Sys.rename tmp path;
        Printf.printf "wrote %s: %d classes, %d methods, %d statements\n" path (Ir.num_classes p) (Ir.num_methods p)
          (Ir.stmt_count p)
      | None -> print_string text)
  in
  let profile = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROFILE" ~doc:"Benchmark profile name.") in
  let scale = Arg.(value & opt float 0.04 & info [ "scale" ] ~docv:"S" ~doc:"Size scale factor.") in
  let seed = Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc:"Override the profile seed.") in
  let edits =
    Arg.(
      value & opt_all string []
      & info [ "edit" ] ~docv:"SPEC"
          ~doc:
            "Apply a scripted edit after generation (repeatable, applied in order).  $(docv) is \
             $(i,name)[:$(i,seed)] with name one of add-method | add-alloc | remove-alloc; deterministic in \
             (program, spec), so the same flags reproduce the same edited program — the raw material for \
             exercising $(b,ptacli update).")
  in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.") in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic benchmark program in the textual IR format.")
    Term.(const run $ profile $ scale $ seed $ edits $ out)

(* Top-level error protocol: one-line message on stderr, exit 1 for bad
   input, 2 for budget exhaustion, 3 for internal errors.  No OCaml
   backtrace reaches the user unless PTACLI_DEBUG=1, in which case the
   exception propagates untouched. *)
(* Deterministic kill injection for the CI robustness job:
   PTACLI_CRASH_AT_FS_OP=N makes the N-th announced file-system
   mutation of this process raise Faults.Crashed, simulating kill -9
   at exactly that point of the store write path (no cleanup code
   runs; temp files are left behind as a real kill would).  The
   process exits 137 — the same code a real SIGKILL would yield. *)
let () =
  match Option.bind (Sys.getenv_opt "PTACLI_CRASH_AT_FS_OP") int_of_string_opt with
  | Some n when n >= 1 ->
    let seen = ref 0 in
    Faults.set_fs_hook
      (Some
         (fun label ->
           incr seen;
           if !seen = n then raise (Faults.Crashed label)))
  | _ -> ()

let () =
  let debug = Sys.getenv_opt "PTACLI_DEBUG" = Some "1" in
  if debug then Printexc.record_backtrace true;
  let doc = "cloning-based context-sensitive pointer alias analysis using BDDs" in
  let info = Cmd.info "ptacli" ~version:"1.0" ~doc in
  let group =
    Cmd.group info
      [
        stats_cmd;
        analyze_cmd;
        query_cmd;
        update_cmd;
        certify_cmd;
        serve_cmd;
        route_cmd;
        store_group_cmd;
        order_search_cmd;
        datalog_cmd;
        explain_cmd;
        gen_cmd;
      ]
  in
  let die code msg =
    prerr_endline ("ptacli: " ^ msg);
    code
  in
  let code =
    try Cmd.eval ~catch:false group with
    | e when debug -> raise e
    | Faults.Crashed label -> die 137 (Printf.sprintf "simulated crash at fs op %S" label)
    | Solver_error.Error err -> die (Solver_error.exit_code err) (Solver_error.to_string err)
    | Bdd.Limit_exceeded reason -> die 2 ("budget exhausted: " ^ Budget.reason_to_string reason)
    | Jir.Jparser.Parse_error e -> die 1 (Printf.sprintf "line %d: %s" e.Jir.Jparser.line e.Jir.Jparser.message)
    | Datalog.Parser.Parse_error e ->
      die 1 (Printf.sprintf "line %d: %s" e.Datalog.Parser.line e.Datalog.Parser.message)
    | Datalog.Resolve.Check_error m -> die 1 m
    | Sys_error m -> die 1 m
    | Datalog.Engine.Engine_error m -> die 3 ("internal error: " ^ m)
    | Failure m -> die 3 ("internal error: " ^ m)
    | Invalid_argument m -> die 3 ("internal error: " ^ m)
  in
  exit code
