type class_id = int
type field_id = int
type method_id = int
type var_id = int
type heap_id = int
type invoke_id = int

type invoke_kind = Virtual | Static | Special

type stmt =
  | New of { dst : var_id; cls : class_id; heap : heap_id; init_site : invoke_id; args : var_id list }
  | Assign of { dst : var_id; src : var_id }
  | Cast of { dst : var_id; src : var_id; target : class_id }
  | Load of { dst : var_id; base : var_id; fld : field_id }
  | Store of { base : var_id; fld : field_id; src : var_id }
  | Load_static of { dst : var_id; fld : field_id }
  | Store_static of { fld : field_id; src : var_id }
  | Invoke of {
      ret : var_id option;
      kind : invoke_kind;
      site : invoke_id;
      base : var_id option;
      name : string;
      target : method_id option;
      args : var_id list;
    }
  | Array_load of { dst : var_id; base : var_id }
  | Array_store of { base : var_id; src : var_id }
  | Throw of var_id
  | Catch of var_id
  | Return of var_id
  | Sync of var_id

type jclass = {
  cls_id : class_id;
  cls_name : string;
  cls_super : class_id option;
  cls_interface : bool;
  mutable cls_impls : class_id list;
  mutable cls_fields : field_id list;
  mutable cls_methods : method_id list;
}

type jfield = { fld_id : field_id; fld_name : string; fld_owner : class_id; fld_type : class_id; fld_static : bool }
type jvar = { v_id : var_id; v_name : string; v_type : class_id; v_owner : method_id option }

type jmethod = {
  m_id : method_id;
  m_name : string;
  m_owner : class_id;
  m_static : bool;
  m_formals : var_id list;
  m_ret : class_id option;
  m_exc : var_id;
  mutable m_locals : var_id list;
  mutable m_body : stmt list;
}

type heap_site = { h_id : heap_id; h_cls : class_id; h_method : method_id; h_label : string }
type invoke_site = { i_id : invoke_id; i_method : method_id; i_label : string }

(* Dense tables: id -> entity, ids allocated consecutively. *)
type 'a table = { mutable items : 'a array; mutable len : int }

let table_make () = { items = [||]; len = 0 }

let table_add tb x =
  if tb.len = Array.length tb.items then begin
    let cap = max 16 (2 * Array.length tb.items) in
    let items = Array.make cap x in
    Array.blit tb.items 0 items 0 tb.len;
    tb.items <- items
  end;
  tb.items.(tb.len) <- x;
  tb.len <- tb.len + 1;
  tb.len - 1

let table_get tb i =
  if i < 0 || i >= tb.len then invalid_arg "Ir: id out of range";
  tb.items.(i)

let table_iter tb f =
  for i = 0 to tb.len - 1 do
    f tb.items.(i)
  done

type t = {
  classes : jclass table;
  fields : jfield table;
  methods : jmethod table;
  vars : jvar table;
  heaps : heap_site table;
  invokes : invoke_site table;
  mutable entry_methods : method_id list;
  mutable object_cls : class_id;
  mutable thread_cls : class_id;
  mutable string_cls : class_id;
  mutable global : var_id;
  mutable array_fld : field_id;
  by_class_name : (string, class_id) Hashtbl.t;
}

let num_classes t = t.classes.len
let num_fields t = t.fields.len
let num_methods t = t.methods.len
let num_vars t = t.vars.len
let num_heaps t = t.heaps.len
let num_invokes t = t.invokes.len

let cls t i = table_get t.classes i
let field t i = table_get t.fields i
let meth t i = table_get t.methods i
let var t i = table_get t.vars i
let heap t i = table_get t.heaps i
let invoke t i = table_get t.invokes i

let entries t = List.rev t.entry_methods

let find_class t name = Hashtbl.find_opt t.by_class_name name

let find_method t c name =
  let rec go = function
    | [] -> None
    | m :: rest -> if (table_get t.methods m).m_name = name then Some m else go rest
  in
  go (table_get t.classes c).cls_methods

let add_var t ~name ~ty ~owner =
  let id = t.vars.len in
  ignore (table_add t.vars { v_id = id; v_name = name; v_type = ty; v_owner = owner });
  id

let add_method t ~name ~owner ~static ~formals ~ret =
  let id = t.methods.len in
  let m =
    { m_id = id; m_name = name; m_owner = owner; m_static = static; m_formals = []; m_ret = ret; m_exc = -1; m_locals = []; m_body = [] }
  in
  ignore (table_add t.methods m);
  let formals = if static then formals else ("this", owner) :: formals in
  let formal_ids = List.map (fun (n, ty) -> add_var t ~name:n ~ty ~owner:(Some id)) formals in
  (* The method's exception variable (the paper's V includes thrown
     exceptions) is a real var allocated here, at method-creation time:
     its id is interleaved with the program's ids in construction
     order, so append-only program edits never renumber it.  It is not
     a local — the printer omits it and re-parsing re-creates it at
     the same position. *)
  let exc = add_var t ~name:"<exc>" ~ty:t.object_cls ~owner:(Some id) in
  let m = table_get t.methods id in
  let m = { m with m_formals = formal_ids; m_exc = exc } in
  t.methods.items.(id) <- m;
  let c = table_get t.classes owner in
  c.cls_methods <- c.cls_methods @ [ id ];
  id

let add_class ?(impls = []) t ~name ~super =
  if Hashtbl.mem t.by_class_name name then invalid_arg (Printf.sprintf "Ir.add_class: duplicate class %s" name);
  if (cls t super).cls_interface then invalid_arg (Printf.sprintf "Ir.add_class: superclass of %s is an interface" name);
  List.iter
    (fun i ->
      if not (cls t i).cls_interface then invalid_arg (Printf.sprintf "Ir.add_class: %s implements a non-interface" name))
    impls;
  let id = t.classes.len in
  ignore
    (table_add t.classes
       {
         cls_id = id;
         cls_name = name;
         cls_super = Some super;
         cls_interface = false;
         cls_impls = impls;
         cls_fields = [];
         cls_methods = [];
       });
  Hashtbl.add t.by_class_name name id;
  ignore (add_method t ~name:"<init>" ~owner:id ~static:false ~formals:[] ~ret:None);
  id

let add_interface ?(extends = []) t ~name =
  if Hashtbl.mem t.by_class_name name then invalid_arg (Printf.sprintf "Ir.add_interface: duplicate class %s" name);
  List.iter
    (fun i ->
      if not (cls t i).cls_interface then invalid_arg (Printf.sprintf "Ir.add_interface: %s extends a non-interface" name))
    extends;
  let id = t.classes.len in
  ignore
    (table_add t.classes
       {
         cls_id = id;
         cls_name = name;
         cls_super = Some t.object_cls;
         cls_interface = true;
         cls_impls = extends;
         cls_fields = [];
         cls_methods = [];
       });
  Hashtbl.add t.by_class_name name id;
  id

let add_field t ~name ~owner ~ty ~static =
  let id = t.fields.len in
  ignore (table_add t.fields { fld_id = id; fld_name = name; fld_owner = owner; fld_type = ty; fld_static = static });
  let c = table_get t.classes owner in
  c.cls_fields <- c.cls_fields @ [ id ];
  id

let add_root_class t ~name =
  let id = t.classes.len in
  ignore
    (table_add t.classes
       {
         cls_id = id;
         cls_name = name;
         cls_super = None;
         cls_interface = false;
         cls_impls = [];
         cls_fields = [];
         cls_methods = [];
       });
  Hashtbl.add t.by_class_name name id;
  id

let create () =
  let t =
    {
      classes = table_make ();
      fields = table_make ();
      methods = table_make ();
      vars = table_make ();
      heaps = table_make ();
      invokes = table_make ();
      entry_methods = [];
      object_cls = 0;
      thread_cls = 0;
      string_cls = 0;
      global = 0;
      array_fld = 0;
      by_class_name = Hashtbl.create 64;
    }
  in
  let obj = add_root_class t ~name:"Object" in
  t.object_cls <- obj;
  ignore (add_method t ~name:"<init>" ~owner:obj ~static:false ~formals:[] ~ret:None);
  (* The special global variable for static field access (§2.2). *)
  t.global <- add_var t ~name:"<global>" ~ty:obj ~owner:None;
  (* The abstract heap node the global variable points at: heap 0,
     allocated before any program heap so its id never moves as the
     program grows (incremental re-analysis relies on append-only edits
     keeping existing element ids stable). *)
  ignore (table_add t.heaps { h_id = 0; h_cls = obj; h_method = 0; h_label = "<global>" });
  let thread = add_class t ~name:"Thread" ~super:obj in
  t.thread_cls <- thread;
  ignore (add_method t ~name:"run" ~owner:thread ~static:false ~formals:[] ~ret:None);
  let string = add_class t ~name:"String" ~super:obj in
  t.string_cls <- string;
  (* The special array-element field descriptor, owned by Object. *)
  t.array_fld <- add_field t ~name:"<elem>" ~owner:obj ~ty:obj ~static:false;
  t

let object_class t = t.object_cls
let thread_class t = t.thread_cls
let string_class t = t.string_cls
let global_var t = t.global
let global_heap (_ : t) : heap_id = 0
let array_field t = t.array_fld

let add_local t m ~name ~ty =
  let id = add_var t ~name ~ty ~owner:(Some m) in
  let mm = table_get t.methods m in
  mm.m_locals <- mm.m_locals @ [ id ];
  id

let add_entry t m = t.entry_methods <- m :: t.entry_methods

let init_method t c =
  match find_method t c "<init>" with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Ir.init_method: class %s has no <init>" (cls t c).cls_name)

let redeclare_init t c ~formals =
  let m = init_method t c in
  let formal_ids = List.map (fun (n, ty) -> add_var t ~name:n ~ty ~owner:(Some m)) formals in
  let mm = table_get t.methods m in
  let this =
    match mm.m_formals with
    | this :: _ -> this
    | [] -> invalid_arg "Ir.redeclare_init: constructor without receiver"
  in
  t.methods.items.(m) <- { mm with m_formals = this :: formal_ids };
  m

let push_stmt t m s =
  let mm = table_get t.methods m in
  mm.m_body <- mm.m_body @ [ s ]

let fresh_invoke t m label =
  let id = t.invokes.len in
  ignore (table_add t.invokes { i_id = id; i_method = m; i_label = label });
  id

let emit_new t ?label m ~dst ~cls:c ~args =
  if (cls t c).cls_interface then invalid_arg "Ir.emit_new: cannot instantiate an interface";
  let h_id = t.heaps.len in
  let label = Option.value label ~default:(Printf.sprintf "%s:new%d" (meth t m).m_name h_id) in
  ignore (table_add t.heaps { h_id; h_cls = c; h_method = m; h_label = label });
  let init_site = fresh_invoke t m (label ^ ":<init>") in
  push_stmt t m (New { dst; cls = c; heap = h_id; init_site; args });
  h_id

let emit_assign t m ~dst ~src = push_stmt t m (Assign { dst; src })
let emit_cast t m ~dst ~src ~target = push_stmt t m (Cast { dst; src; target })
let emit_load t m ~dst ~base ~fld = push_stmt t m (Load { dst; base; fld })
let emit_store t m ~base ~fld ~src = push_stmt t m (Store { base; fld; src })
let emit_load_static t m ~dst ~fld = push_stmt t m (Load_static { dst; fld })
let emit_store_static t m ~fld ~src = push_stmt t m (Store_static { fld; src })

let emit_invoke_virtual t ?label ?ret m ~base ~name ~args =
  let site = fresh_invoke t m (Option.value label ~default:(Printf.sprintf "%s:call%d" (meth t m).m_name t.invokes.len)) in
  push_stmt t m (Invoke { ret; kind = Virtual; site; base = Some base; name; target = None; args });
  site

let emit_invoke_static t ?label ?ret m ~target ~args =
  let site = fresh_invoke t m (Option.value label ~default:(Printf.sprintf "%s:scall%d" (meth t m).m_name t.invokes.len)) in
  let name = (meth t target).m_name in
  push_stmt t m (Invoke { ret; kind = Static; site; base = None; name; target = Some target; args });
  site

let emit_invoke_special t ?label ?ret m ~base ~target ~args =
  let site = fresh_invoke t m (Option.value label ~default:(Printf.sprintf "%s:icall%d" (meth t m).m_name t.invokes.len)) in
  let name = (meth t target).m_name in
  push_stmt t m (Invoke { ret; kind = Special; site; base = Some base; name; target = Some target; args });
  site

let emit_array_load t m ~dst ~base = push_stmt t m (Array_load { dst; base })
let emit_array_store t m ~base ~src = push_stmt t m (Array_store { base; src })
let emit_throw t m v = push_stmt t m (Throw v)
let emit_catch t m v = push_stmt t m (Catch v)
let emit_return t m v = push_stmt t m (Return v)
let emit_sync t m v = push_stmt t m (Sync v)

let iter_classes t f = table_iter t.classes f
let iter_methods t f = table_iter t.methods f
let iter_fields t f = table_iter t.fields f
let iter_vars t f = table_iter t.vars f
let iter_heaps t f = table_iter t.heaps f
let iter_invokes t f = table_iter t.invokes f

let stmt_count t =
  let n = ref 0 in
  table_iter t.methods (fun m -> n := !n + List.length m.m_body);
  !n
