(** A Java-like intermediate representation — the stand-in for the
    paper's Joeq bytecode frontend.

    The IR models exactly what the analyses consume: classes with
    single inheritance, reference-typed fields (static and instance),
    methods with formals/locals/returns, and the pointer-relevant
    statements (allocation, copy, cast, field load/store, static
    load/store, virtual/static/special invocation, return, monitor
    synchronization).  Primitive values and intraprocedural control
    flow are deliberately absent: the paper's analysis is
    flow-insensitive apart from local-copy factoring (see
    {!Local_opt}), so straight-line bodies lose nothing.

    Allocation sites are modeled as invocations of the class's [<init>]
    method, giving the paper's [H ⊆ I] property (heap objects are named
    by the invocation sites of object-creation methods): every [New]
    carries both a heap id and the invoke id of its constructor call.

    All entities are identified by dense integer ids, which become the
    element ordinals of the Datalog domains ([V], [H], [F], [T], [I],
    [N], [M], [Z]). *)

type class_id = int
type field_id = int
type method_id = int
type var_id = int
type heap_id = int
type invoke_id = int

type invoke_kind = Virtual | Static | Special

type stmt =
  | New of { dst : var_id; cls : class_id; heap : heap_id; init_site : invoke_id; args : var_id list }
      (** [dst = new C(args)]: allocation plus constructor call. *)
  | Assign of { dst : var_id; src : var_id }
  | Cast of { dst : var_id; src : var_id; target : class_id }
  | Load of { dst : var_id; base : var_id; fld : field_id }
  | Store of { base : var_id; fld : field_id; src : var_id }
  | Load_static of { dst : var_id; fld : field_id }
  | Store_static of { fld : field_id; src : var_id }
  | Invoke of {
      ret : var_id option;
      kind : invoke_kind;
      site : invoke_id;
      base : var_id option;  (** receiver; [None] for static calls *)
      name : string;  (** method name; dispatch key for virtual calls *)
      target : method_id option;  (** statically bound target, if known *)
      args : var_id list;  (** excluding the receiver *)
    }
  | Array_load of { dst : var_id; base : var_id }  (** [dst = base[]] *)
  | Array_store of { base : var_id; src : var_id }  (** [base[] = src] *)
  | Throw of var_id
  | Catch of var_id  (** the variable receives the method's in-flight exception *)
  | Return of var_id
  | Sync of var_id  (** a synchronization operation on the variable *)

type jclass = {
  cls_id : class_id;
  cls_name : string;
  cls_super : class_id option;  (** [None] only for the root Object *)
  cls_interface : bool;
  mutable cls_impls : class_id list;
      (** for a class: implemented interfaces; for an interface: its
          super-interfaces *)
  mutable cls_fields : field_id list;
  mutable cls_methods : method_id list;
}

type jfield = { fld_id : field_id; fld_name : string; fld_owner : class_id; fld_type : class_id; fld_static : bool }

type jvar = {
  v_id : var_id;
  v_name : string;
  v_type : class_id;
  v_owner : method_id option;  (** [None] for the special global variable *)
}

type jmethod = {
  m_id : method_id;
  m_name : string;
  m_owner : class_id;
  m_static : bool;
  m_formals : var_id list;  (** receiver first for instance methods *)
  m_ret : class_id option;
  m_exc : var_id;
      (** the method's exception variable (thrown/caught values flow
          through it); a real var allocated at method-creation time so
          its id stays stable under append-only program edits.  Not a
          member of [m_locals]; the printer omits it. *)
  mutable m_locals : var_id list;
  mutable m_body : stmt list;
}

type heap_site = { h_id : heap_id; h_cls : class_id; h_method : method_id; h_label : string }
type invoke_site = { i_id : invoke_id; i_method : method_id; i_label : string }

type t
(** A mutable program under construction / analysis. *)

val create : unit -> t
(** A fresh program containing the built-in classes [Object] (id 0),
    [Thread], and [String], each with an implicit empty [<init>], the
    special global variable (id 0) used for static field access, and
    the abstract global heap node (heap id 0) it points at. *)

(** {2 Built-ins} *)

val object_class : t -> class_id
val thread_class : t -> class_id
val string_class : t -> class_id
val global_var : t -> var_id

val global_heap : t -> heap_id
(** The abstract heap node for the global object; always heap 0. *)

val array_field : t -> field_id
(** The special field descriptor denoting an array element access
    (§2.2: "There is a special field descriptor to denote an array
    access"). *)

(** {2 Construction} *)

val add_class : ?impls:class_id list -> t -> name:string -> super:class_id -> class_id
(** Also creates the implicit empty [<init>] constructor.  [impls]
    must be interfaces. *)

val add_interface : ?extends:class_id list -> t -> name:string -> class_id
(** Interfaces carry no fields, methods, or constructor — the paper's
    [M] domain "does not include abstract or interface methods"; they
    exist for the assignability relation [aT] (§2.3: "with allowances
    for interfaces"). *)

val add_field : t -> name:string -> owner:class_id -> ty:class_id -> static:bool -> field_id

val add_method :
  t -> name:string -> owner:class_id -> static:bool -> formals:(string * class_id) list -> ret:class_id option ->
  method_id
(** For instance methods a receiver formal [this : owner] is prepended
    automatically. *)

val redeclare_init : t -> class_id -> formals:(string * class_id) list -> method_id
(** Give the class's implicit [<init>] real formals (receiver is
    prepended automatically).  The body, if any, is kept. *)

val add_local : t -> method_id -> name:string -> ty:class_id -> var_id
val add_entry : t -> method_id -> unit
(** Register an entry method ([main], class initializers, finalizers). *)

(** {2 Statement emission (appended to the method body)} *)

val emit_new : t -> ?label:string -> method_id -> dst:var_id -> cls:class_id -> args:var_id list -> heap_id
val emit_assign : t -> method_id -> dst:var_id -> src:var_id -> unit
val emit_cast : t -> method_id -> dst:var_id -> src:var_id -> target:class_id -> unit
val emit_load : t -> method_id -> dst:var_id -> base:var_id -> fld:field_id -> unit
val emit_store : t -> method_id -> base:var_id -> fld:field_id -> src:var_id -> unit
val emit_load_static : t -> method_id -> dst:var_id -> fld:field_id -> unit
val emit_store_static : t -> method_id -> fld:field_id -> src:var_id -> unit

val emit_invoke_virtual :
  t -> ?label:string -> ?ret:var_id -> method_id -> base:var_id -> name:string -> args:var_id list -> invoke_id

val emit_invoke_static :
  t -> ?label:string -> ?ret:var_id -> method_id -> target:method_id -> args:var_id list -> invoke_id

val emit_invoke_special :
  t -> ?label:string -> ?ret:var_id -> method_id -> base:var_id -> target:method_id -> args:var_id list -> invoke_id

val emit_array_load : t -> method_id -> dst:var_id -> base:var_id -> unit
val emit_array_store : t -> method_id -> base:var_id -> src:var_id -> unit
val emit_throw : t -> method_id -> var_id -> unit
val emit_catch : t -> method_id -> var_id -> unit
val emit_return : t -> method_id -> var_id -> unit
val emit_sync : t -> method_id -> var_id -> unit

(** {2 Access} *)

val num_classes : t -> int
val num_fields : t -> int
val num_methods : t -> int
val num_vars : t -> int
val num_heaps : t -> int
val num_invokes : t -> int

val cls : t -> class_id -> jclass
val field : t -> field_id -> jfield
val meth : t -> method_id -> jmethod
val var : t -> var_id -> jvar
val heap : t -> heap_id -> heap_site
val invoke : t -> invoke_id -> invoke_site

val entries : t -> method_id list

val find_class : t -> string -> class_id option
val find_method : t -> class_id -> string -> method_id option
(** Method declared in exactly this class (no inheritance walk). *)

val init_method : t -> class_id -> method_id
(** The class's [<init>]. *)

val iter_classes : t -> (jclass -> unit) -> unit
val iter_methods : t -> (jmethod -> unit) -> unit
val iter_fields : t -> (jfield -> unit) -> unit
val iter_vars : t -> (jvar -> unit) -> unit
val iter_heaps : t -> (heap_site -> unit) -> unit
val iter_invokes : t -> (invoke_site -> unit) -> unit

val stmt_count : t -> int
(** Total statements — the stand-in for Figure 3's bytecode counts. *)
