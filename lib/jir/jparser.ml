type error = { message : string; line : int }

exception Parse_error of error

(* --- Lexer --- *)

type token =
  | IDENT of string
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | EQ
  | DOT
  | AT
  | LBRACKET
  | RBRACKET
  | EOF

let fail line fmt = Format.kasprintf (fun message -> raise (Parse_error { message; line })) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let lex src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let emit t = out := (t, !line) :: !out in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '{' then (emit LBRACE; incr i)
    else if c = '}' then (emit RBRACE; incr i)
    else if c = '(' then (emit LPAREN; incr i)
    else if c = ')' then (emit RPAREN; incr i)
    else if c = ',' then (emit COMMA; incr i)
    else if c = ':' then (emit COLON; incr i)
    else if c = '=' then (emit EQ; incr i)
    else if c = '.' then (emit DOT; incr i)
    else if c = '@' then (emit AT; incr i)
    else if c = '[' then (emit LBRACKET; incr i)
    else if c = ']' then (emit RBRACKET; incr i)
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      while !i < n && src.[!i] <> '"' do
        if src.[!i] = '\n' then fail !line "newline in string";
        Buffer.add_char buf src.[!i];
        incr i
      done;
      if !i >= n then fail !line "unterminated string";
      incr i;
      emit (STRING (Buffer.contents buf))
    end
    else if c = '<' then begin
      (* Angle-bracketed names: <init>, <clinit>, <global>. *)
      let buf = Buffer.create 8 in
      Buffer.add_char buf '<';
      incr i;
      while !i < n && src.[!i] <> '>' do
        Buffer.add_char buf src.[!i];
        incr i
      done;
      if !i >= n then fail !line "unterminated '<...>' name";
      Buffer.add_char buf '>';
      incr i;
      emit (IDENT (Buffer.contents buf))
    end
    else if is_ident_start c then begin
      let buf = Buffer.create 16 in
      while !i < n && is_ident_char src.[!i] do
        Buffer.add_char buf src.[!i];
        incr i
      done;
      emit (IDENT (Buffer.contents buf))
    end
    else fail !line "unexpected character %C" c
  done;
  emit EOF;
  List.rev !out

(* --- Surface AST --- *)

type s_stmt =
  | S_var of string * string
  | S_assign of string * string
  | S_new of { dst : string; cls : string; args : string list; label : string option }
  | S_cast of { dst : string; cls : string; src : string }
  | S_get of { dst : string; recv : string; member : string }
  | S_put of { recv : string; member : string; src : string }
  | S_call of { ret : string option; recv : string; name : string; args : string list; label : string option }
  | S_special of { ret : string option; cls : string; name : string; args : string list; label : string option }
  | S_array_load of { dst : string; base : string }
  | S_array_store of { base : string; src : string }
  | S_throw of string
  | S_catch of string
  | S_return of string
  | S_sync of string

type s_method = {
  sm_name : string;
  sm_static : bool;
  sm_formals : (string * string) list;
  sm_ret : string;
  sm_body : (s_stmt * int) list;
  sm_line : int;
}

type s_class = {
  sc_name : string;
  sc_super : string;
  sc_interface : bool;
  sc_impls : string list;  (* implemented (class) or extended (interface) interfaces *)
  sc_fields : (string * string * bool) list;  (* name, type, static *)
  sc_methods : s_method list;
  sc_line : int;
}

type s_program = { s_classes : s_class list; s_entries : (string * string * int) list }

(* --- Parser --- *)

type state = { toks : (token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let describe = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | STRING s -> Printf.sprintf "string %S" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | COLON -> "':'"
  | EQ -> "'='"
  | DOT -> "'.'"
  | AT -> "'@'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | EOF -> "end of input"

let expect st tok what =
  if peek st = tok then advance st else fail (line st) "expected %s, found %s" what (describe (peek st))

let ident st what =
  match peek st with
  | IDENT s ->
    advance st;
    s
  | t -> fail (line st) "expected %s, found %s" what (describe t)

let arg_list st =
  expect st LPAREN "'('";
  let args = ref [] in
  if peek st <> RPAREN then begin
    args := [ ident st "an argument variable" ];
    while peek st = COMMA do
      advance st;
      args := ident st "an argument variable" :: !args
    done
  end;
  expect st RPAREN "')'";
  List.rev !args

let opt_label st =
  if peek st = AT then begin
    advance st;
    match peek st with
    | STRING s ->
      advance st;
      Some s
    | t -> fail (line st) "expected a string label after '@', found %s" (describe t)
  end
  else None

(* Statement after an optional "dst =" has been consumed. *)
let rhs_stmt st dst =
  match peek st with
  | IDENT "new" ->
    advance st;
    let cls = ident st "a class name" in
    let args = arg_list st in
    let label = opt_label st in
    S_new { dst; cls; args; label }
  | LPAREN ->
    advance st;
    let cls = ident st "a class name in cast" in
    expect st RPAREN "')'";
    let src = ident st "a variable" in
    S_cast { dst; cls; src }
  | IDENT "special" ->
    advance st;
    let cls = ident st "a class name" in
    expect st DOT "'.'";
    let name = ident st "a method name" in
    let args = arg_list st in
    let label = opt_label st in
    S_special { ret = Some dst; cls; name; args; label }
  | IDENT "catch" ->
    advance st;
    S_catch dst
  | IDENT _ -> (
    let recv = ident st "a variable or class name" in
    match peek st with
    | LBRACKET ->
      advance st;
      expect st RBRACKET "']'";
      S_array_load { dst; base = recv }
    | DOT -> (
      advance st;
      let member = ident st "a member name" in
      match peek st with
      | LPAREN ->
        let args = arg_list st in
        let label = opt_label st in
        S_call { ret = Some dst; recv; name = member; args; label }
      | RBRACE | LBRACE | RPAREN | COMMA | COLON | EQ | DOT | AT | LBRACKET | RBRACKET | EOF | IDENT _ | STRING _ ->
        S_get { dst; recv; member })
    | RBRACE | LBRACE | LPAREN | RPAREN | COMMA | COLON | EQ | AT | RBRACKET | EOF | IDENT _ | STRING _ ->
      S_assign (dst, recv))
  | t -> fail (line st) "expected an expression, found %s" (describe t)

let statement st =
  let ln = line st in
  let s =
    match peek st with
    | IDENT "var" ->
      advance st;
      let name = ident st "a variable name" in
      expect st COLON "':'";
      let ty = ident st "a type name" in
      S_var (name, ty)
    | IDENT "return" ->
      advance st;
      S_return (ident st "a variable")
    | IDENT "throw" ->
      advance st;
      S_throw (ident st "a variable")
    | IDENT "sync" ->
      advance st;
      S_sync (ident st "a variable")
    | IDENT "special" ->
      advance st;
      let cls = ident st "a class name" in
      expect st DOT "'.'";
      let name = ident st "a method name" in
      let args = arg_list st in
      let label = opt_label st in
      S_special { ret = None; cls; name; args; label }
    | IDENT _ -> (
      let first = ident st "a statement" in
      match peek st with
      | LBRACKET ->
        advance st;
        expect st RBRACKET "']'";
        expect st EQ "'='";
        S_array_store { base = first; src = ident st "a variable" }
      | EQ ->
        advance st;
        rhs_stmt st first
      | DOT -> (
        advance st;
        let member = ident st "a member name" in
        match peek st with
        | LPAREN ->
          let args = arg_list st in
          let label = opt_label st in
          S_call { ret = None; recv = first; name = member; args; label }
        | EQ ->
          advance st;
          let src = ident st "a variable" in
          S_put { recv = first; member; src }
        | t -> fail (line st) "expected '(' or '=' after member access, found %s" (describe t))
      | t -> fail (line st) "expected '=' or '.' in statement, found %s" (describe t))
    | t -> fail (line st) "expected a statement, found %s" (describe t)
  in
  (s, ln)

let method_decl st ~static =
  let ln = line st in
  expect st (IDENT "method") "'method'";
  let name = ident st "a method name" in
  expect st LPAREN "'('";
  let formals = ref [] in
  if peek st <> RPAREN then begin
    let formal () =
      let n = ident st "a formal name" in
      expect st COLON "':'";
      let ty = ident st "a type name" in
      (n, ty)
    in
    formals := [ formal () ];
    while peek st = COMMA do
      advance st;
      formals := formal () :: !formals
    done
  end;
  expect st RPAREN "')'";
  expect st COLON "':'";
  let ret = ident st "a return type" in
  expect st LBRACE "'{'";
  let body = ref [] in
  while peek st <> RBRACE do
    body := statement st :: !body
  done;
  expect st RBRACE "'}'";
  { sm_name = name; sm_static = static; sm_formals = List.rev !formals; sm_ret = ret; sm_body = List.rev !body; sm_line = ln }

let name_list st what =
  let names = ref [ ident st what ] in
  while peek st = COMMA do
    advance st;
    names := ident st what :: !names
  done;
  List.rev !names

let interface_decl st =
  let ln = line st in
  expect st (IDENT "interface") "'interface'";
  let name = ident st "an interface name" in
  let extends = if peek st = IDENT "extends" then (advance st; name_list st "an interface name") else [] in
  expect st LBRACE "'{'";
  expect st RBRACE "'}' (interfaces declare no members)";
  { sc_name = name; sc_super = "Object"; sc_interface = true; sc_impls = extends; sc_fields = []; sc_methods = []; sc_line = ln }

let class_decl st =
  let ln = line st in
  expect st (IDENT "class") "'class'";
  let name = ident st "a class name" in
  expect st (IDENT "extends") "'extends'";
  let super = ident st "a superclass name" in
  let impls = if peek st = IDENT "implements" then (advance st; name_list st "an interface name") else [] in
  expect st LBRACE "'{'";
  let fields = ref [] in
  let methods = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | RBRACE ->
      advance st;
      continue := false
    | IDENT "field" ->
      advance st;
      let n = ident st "a field name" in
      expect st COLON "':'";
      let ty = ident st "a type name" in
      fields := (n, ty, false) :: !fields
    | IDENT "static" -> (
      advance st;
      match peek st with
      | IDENT "field" ->
        advance st;
        let n = ident st "a field name" in
        expect st COLON "':'";
        let ty = ident st "a type name" in
        fields := (n, ty, true) :: !fields
      | IDENT "method" -> methods := method_decl st ~static:true :: !methods
      | t -> fail (line st) "expected 'field' or 'method' after 'static', found %s" (describe t))
    | IDENT "method" -> methods := method_decl st ~static:false :: !methods
    | t -> fail (line st) "expected a class member, found %s" (describe t)
  done;
  {
    sc_name = name;
    sc_super = super;
    sc_interface = false;
    sc_impls = impls;
    sc_fields = List.rev !fields;
    sc_methods = List.rev !methods;
    sc_line = ln;
  }

let surface_program st =
  let classes = ref [] in
  let entries = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | EOF -> continue := false
    | IDENT "class" -> classes := class_decl st :: !classes
    | IDENT "interface" -> classes := interface_decl st :: !classes
    | IDENT "entry" ->
      let ln = line st in
      advance st;
      let c = ident st "a class name" in
      expect st DOT "'.'";
      let m = ident st "a method name" in
      entries := (c, m, ln) :: !entries
    | t -> fail (line st) "expected 'class' or 'entry', found %s" (describe t)
  done;
  { s_classes = List.rev !classes; s_entries = List.rev !entries }

(* --- Elaboration --- *)

let elaborate (sp : s_program) =
  let p = Ir.create () in
  (* Create classes, supers first.  Built-in classes (Object, Thread,
     String) may be "reopened" to add members. *)
  let builtin name = List.mem name [ "Object"; "Thread"; "String" ] in
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun sc ->
      if Hashtbl.mem by_name sc.sc_name && not (builtin sc.sc_name) then fail sc.sc_line "duplicate class %s" sc.sc_name;
      Hashtbl.replace by_name sc.sc_name sc)
    sp.s_classes;
  let rec ensure_class name ~line ~seen =
    if List.mem name seen then fail line "inheritance cycle involving %s" name;
    match Ir.find_class p name with
    | Some c -> c
    | None -> (
      match Hashtbl.find_opt by_name name with
      | None -> fail line "unknown class %s" name
      | Some sc ->
        if sc.sc_interface then begin
          let extends = List.map (fun i -> ensure_class i ~line:sc.sc_line ~seen:(name :: seen)) sc.sc_impls in
          List.iter
            (fun i -> if not (Ir.cls p i).Ir.cls_interface then fail sc.sc_line "%s extends a non-interface" name)
            extends;
          Ir.add_interface p ~extends ~name
        end
        else begin
          let super = ensure_class sc.sc_super ~line:sc.sc_line ~seen:(name :: seen) in
          let impls = List.map (fun i -> ensure_class i ~line:sc.sc_line ~seen:(name :: seen)) sc.sc_impls in
          List.iter
            (fun i -> if not (Ir.cls p i).Ir.cls_interface then fail sc.sc_line "%s implements a non-interface" name)
            impls;
          Ir.add_class p ~impls ~name ~super
        end)
  in
  let class_of name line =
    match Ir.find_class p name with
    | Some c -> c
    | None -> fail line "unknown class %s" name
  in
  (* Create each class and declare its fields and method signatures in
     one declaration-order pass.  Interleaving matters: [Ir.add_class]
     mints the implicit <init> (and its [this] variable), so a separate
     create-all-classes pass would group every <init> id before every
     declared method id — and then appending one class to a file would
     shift the ids of all existing methods.  Keeping each class's
     members contiguous makes element ids stable under append, which is
     what lets `ptacli update` diff a re-parsed edited program against
     stored facts.  Member types may name classes declared later in the
     file; [ensure_class] pulls those (and supers) into existence on
     demand, so creation order is still deterministic in the file
     prefix. *)
  List.iter
    (fun sc ->
      ignore (ensure_class sc.sc_name ~line:sc.sc_line ~seen:[]);
      let c = class_of sc.sc_name sc.sc_line in
      let type_of name line = ensure_class name ~line ~seen:[] in
      List.iter (fun (n, ty, static) -> ignore (Ir.add_field p ~name:n ~owner:c ~ty:(type_of ty sc.sc_line) ~static)) sc.sc_fields;
      List.iter
        (fun sm ->
          let formals = List.map (fun (n, ty) -> (n, type_of ty sm.sm_line)) sm.sm_formals in
          let m =
            if sm.sm_name = "<init>" then begin
              if sm.sm_static then fail sm.sm_line "<init> may not be static";
              Ir.redeclare_init p c ~formals
            end
            else begin
              if Ir.find_method p c sm.sm_name <> None then
                fail sm.sm_line "duplicate method %s in %s" sm.sm_name sc.sc_name;
              let ret = if sm.sm_ret = "void" then None else Some (type_of sm.sm_ret sm.sm_line) in
              Ir.add_method p ~name:sm.sm_name ~owner:c ~static:sm.sm_static ~formals ~ret
            end
          in
          (* Mint the body's declared locals here too — the same
             contiguity argument as for methods applies to variable
             ids.  (A local is thereby in scope for the whole body,
             not just after its `var` line; references ahead of the
             declaration elaborate instead of failing.) *)
          let names = Hashtbl.create 8 in
          List.iter (fun v -> Hashtbl.replace names (Ir.var p v).Ir.v_name ()) (Ir.meth p m).Ir.m_formals;
          List.iter
            (fun (s, ln) ->
              match s with
              | S_var (name, ty) ->
                if Hashtbl.mem names name then fail ln "duplicate variable %s" name;
                Hashtbl.add names name ();
                ignore (Ir.add_local p m ~name ~ty:(type_of ty ln))
              | _ -> ())
            sm.sm_body)
        sc.sc_methods)
    sp.s_classes;
  (* Elaborate bodies. *)
  List.iter
    (fun sc ->
      let c = class_of sc.sc_name sc.sc_line in
      List.iter
        (fun sm ->
          let m =
            match Ir.find_method p c sm.sm_name with
            | Some m -> m
            | None -> fail sm.sm_line "internal: method %s vanished" sm.sm_name
          in
          let mm = Ir.meth p m in
          let env : (string, Ir.var_id) Hashtbl.t = Hashtbl.create 8 in
          List.iter (fun v -> Hashtbl.replace env (Ir.var p v).Ir.v_name v) (mm.Ir.m_formals @ mm.Ir.m_locals);
          let var_of name line =
            match Hashtbl.find_opt env name with
            | Some v -> v
            | None -> fail line "unknown variable %s in %s.%s" name sc.sc_name sm.sm_name
          in
          let field_of cls_id name line ~static =
            (* Walk the hierarchy for the field. *)
            let rec go c =
              let fld =
                List.find_opt
                  (fun f ->
                    let fr = Ir.field p f in
                    fr.Ir.fld_name = name && fr.Ir.fld_static = static)
                  (Ir.cls p c).Ir.cls_fields
              in
              match fld with
              | Some f -> f
              | None -> (
                match (Ir.cls p c).Ir.cls_super with
                | Some s -> go s
                | None ->
                  fail line "unknown %sfield %s on %s" (if static then "static " else "") name (Ir.cls p cls_id).Ir.cls_name)
            in
            go cls_id
          in
          List.iter
            (fun (s, ln) ->
              match s with
              | S_var _ -> () (* minted in the declaration pass above *)
              | S_assign (dst, src) -> Ir.emit_assign p m ~dst:(var_of dst ln) ~src:(var_of src ln)
              | S_new { dst; cls; args; label } ->
                ignore
                  (Ir.emit_new p m ?label ~dst:(var_of dst ln) ~cls:(class_of cls ln)
                     ~args:(List.map (fun a -> var_of a ln) args))
              | S_cast { dst; cls; src } ->
                Ir.emit_cast p m ~dst:(var_of dst ln) ~src:(var_of src ln) ~target:(class_of cls ln)
              | S_get { dst; recv; member } ->
                if Hashtbl.mem env recv then begin
                  let base = var_of recv ln in
                  let fld = field_of (Ir.var p base).Ir.v_type member ln ~static:false in
                  Ir.emit_load p m ~dst:(var_of dst ln) ~base ~fld
                end
                else begin
                  let c = class_of recv ln in
                  Ir.emit_load_static p m ~dst:(var_of dst ln) ~fld:(field_of c member ln ~static:true)
                end
              | S_put { recv; member; src } ->
                if Hashtbl.mem env recv then begin
                  let base = var_of recv ln in
                  let fld = field_of (Ir.var p base).Ir.v_type member ln ~static:false in
                  Ir.emit_store p m ~base ~fld ~src:(var_of src ln)
                end
                else begin
                  let c = class_of recv ln in
                  Ir.emit_store_static p m ~fld:(field_of c member ln ~static:true) ~src:(var_of src ln)
                end
              | S_call { ret; recv; name; args; label } ->
                let ret = Option.map (fun r -> var_of r ln) ret in
                let args = List.map (fun a -> var_of a ln) args in
                if Hashtbl.mem env recv then
                  ignore (Ir.emit_invoke_virtual p m ?label ?ret ~base:(var_of recv ln) ~name ~args)
                else begin
                  let c = class_of recv ln in
                  match Ir.find_method p c name with
                  | Some target when (Ir.meth p target).Ir.m_static ->
                    ignore (Ir.emit_invoke_static p m ?label ?ret ~target ~args)
                  | Some _ -> fail ln "%s.%s is not static" recv name
                  | None -> fail ln "unknown static method %s.%s" recv name
                end
              | S_special { ret; cls; name; args; label } -> (
                let c = class_of cls ln in
                match Ir.find_method p c name with
                | None -> fail ln "unknown method %s.%s" cls name
                | Some target -> (
                  let ret = Option.map (fun r -> var_of r ln) ret in
                  match List.map (fun a -> var_of a ln) args with
                  | [] -> fail ln "special call needs a receiver argument"
                  | base :: rest -> ignore (Ir.emit_invoke_special p m ?label ?ret ~base ~target ~args:rest)))
              | S_array_load { dst; base } -> Ir.emit_array_load p m ~dst:(var_of dst ln) ~base:(var_of base ln)
              | S_array_store { base; src } -> Ir.emit_array_store p m ~base:(var_of base ln) ~src:(var_of src ln)
              | S_throw v -> Ir.emit_throw p m (var_of v ln)
              | S_catch v -> Ir.emit_catch p m (var_of v ln)
              | S_return v -> Ir.emit_return p m (var_of v ln)
              | S_sync v -> Ir.emit_sync p m (var_of v ln))
            sm.sm_body)
        sc.sc_methods)
    sp.s_classes;
  (* Entries. *)
  List.iter
    (fun (cname, mname, ln) ->
      let c = class_of cname ln in
      match Ir.find_method p c mname with
      | Some m -> Ir.add_entry p m
      | None -> fail ln "unknown entry method %s.%s" cname mname)
    sp.s_entries;
  p

let parse src =
  let st = { toks = Array.of_list (lex src); pos = 0 } in
  elaborate (surface_program st)

let parse_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse src
