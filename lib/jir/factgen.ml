type t = {
  program : Ir.t;
  domains : (string * int * string array) list;
  relations : (string * int list list) list;
}

let global_heap t = Ir.global_heap t.program

let dom_size t name =
  let rec go = function
    | [] -> invalid_arg (Printf.sprintf "Factgen.dom_size: unknown domain %s" name)
    | (n, s, _) :: rest -> if n = name then s else go rest
  in
  go t.domains

let element_names t name =
  let rec go = function
    | [] -> None
    | (n, _, names) :: rest -> if n = name then Some names else go rest
  in
  go t.domains

let relation t name =
  let rec go = function
    | [] -> invalid_arg (Printf.sprintf "Factgen.relation: unknown relation %s" name)
    | (n, tuples) :: rest -> if n = name then tuples else go rest
  in
  go t.relations

let domains_decl t =
  let buf = Buffer.create 256 in
  List.iter (fun (n, s, _) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" n s)) t.domains;
  Buffer.contents buf

let extract ?(local_opt = true) (p : Ir.t) =
  if local_opt then ignore (Local_opt.run p);
  (* Method names for the N domain: null name at 0, then every method
     name that can be used in dispatch. *)
  let names = ref [ "<none>" ] in
  let name_index : (string, int) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.add name_index "<none>" 0;
  let intern_name n =
    match Hashtbl.find_opt name_index n with
    | Some i -> i
    | None ->
      let i = Hashtbl.length name_index in
      Hashtbl.add name_index n i;
      names := n :: !names;
      i
  in
  (* Names are interned in one pass over the methods in id order —
     each method's own name, then the names its body dispatches on
     (which may include built-ins like Thread.start that no method
     declares).  First occurrence decides the index, so append-only
     program edits can only append names, never shift existing ones. *)
  (* Relations accumulated as reversed lists. *)
  let vP0 = ref [] in
  let copy_assign = ref [] in
  let store_rel = ref [] in
  let load_rel = ref [] in
  let actual = ref [] in
  let formal = ref [] in
  let ie0 = ref [] in
  let mi = ref [] in
  let mret = ref [] in
  let iret = ref [] in
  let mv = ref [] in
  let mh = ref [] in
  let syncs = ref [] in
  let hrun = ref [] in
  let max_arity = ref 1 in
  let global = Ir.global_var p in
  let global_h = Ir.global_heap p in
  let vP0g = [ [ global; global_h ] ] in
  (* The per-method exception variable (the paper's V includes thrown
     exceptions) is a real program var ([m_exc]), so its id — like
     every other element id here — is stable under append-only program
     edits, which is what lets an incremental update diff as pure
     additions. *)
  let exc_var m = (Ir.meth p m).Ir.m_exc in
  let bind_actuals site receiver args =
    let zs =
      match receiver with
      | Some b -> b :: args
      | None -> args
    in
    List.iteri (fun z v -> actual := [ site; z; v ] :: !actual) zs;
    max_arity := max !max_arity (List.length zs)
  in
  Ir.iter_methods p (fun m ->
      ignore (intern_name m.Ir.m_name);
      List.iteri (fun z v -> formal := [ m.Ir.m_id; z; v ] :: !formal) m.Ir.m_formals;
      max_arity := max !max_arity (List.length m.Ir.m_formals);
      List.iter (fun v -> mv := [ m.Ir.m_id; v ] :: !mv) (m.Ir.m_formals @ m.Ir.m_locals);
      List.iter
        (fun (s : Ir.stmt) ->
          match s with
          | Ir.New { dst; cls; heap; init_site; args } ->
            vP0 := [ dst; heap ] :: !vP0;
            mh := [ m.Ir.m_id; heap ] :: !mh;
            ie0 := [ init_site; Ir.init_method p cls ] :: !ie0;
            mi := [ m.Ir.m_id; init_site; 0 ] :: !mi;
            bind_actuals init_site (Some dst) args;
            (match Hier.run_method p cls with
            | Some run -> hrun := [ heap; run ] :: !hrun
            | None -> ())
          | Ir.Assign { dst; src } -> copy_assign := [ dst; src ] :: !copy_assign
          | Ir.Cast { dst; src; target = _ } -> copy_assign := [ dst; src ] :: !copy_assign
          | Ir.Load { dst; base; fld } -> load_rel := [ base; fld; dst ] :: !load_rel
          | Ir.Store { base; fld; src } -> store_rel := [ base; fld; src ] :: !store_rel
          | Ir.Load_static { dst; fld } -> load_rel := [ global; fld; dst ] :: !load_rel
          | Ir.Store_static { fld; src } -> store_rel := [ global; fld; src ] :: !store_rel
          | Ir.Invoke { ret; kind; site; base; name; target; args } ->
            (match ret with
            | Some r -> iret := [ site; r ] :: !iret
            | None -> ());
            (match kind with
            | Ir.Virtual ->
              mi := [ m.Ir.m_id; site; intern_name name ] :: !mi;
              bind_actuals site base args
            | Ir.Static | Ir.Special ->
              mi := [ m.Ir.m_id; site; 0 ] :: !mi;
              (match target with
              | Some tgt -> ie0 := [ site; tgt ] :: !ie0
              | None -> ());
              bind_actuals site base args)
          | Ir.Array_load { dst; base } -> load_rel := [ base; Ir.array_field p; dst ] :: !load_rel
          | Ir.Array_store { base; src } -> store_rel := [ base; Ir.array_field p; src ] :: !store_rel
          | Ir.Throw v -> copy_assign := [ exc_var m.Ir.m_id; v ] :: !copy_assign
          | Ir.Catch v -> copy_assign := [ v; exc_var m.Ir.m_id ] :: !copy_assign
          | Ir.Return v -> mret := [ m.Ir.m_id; v ] :: !mret
          | Ir.Sync v -> syncs := [ v ] :: !syncs)
        m.Ir.m_body);
  (* Types. *)
  let vt = ref [] in
  Ir.iter_vars p (fun v -> vt := [ v.Ir.v_id; v.Ir.v_type ] :: !vt);
  let mthr = ref [] in
  (* [iter_vars] above already typed every exc var (they are real
     vars); here they only need their method bindings. *)
  Ir.iter_methods p (fun m ->
      mv := [ m.Ir.m_id; m.Ir.m_exc ] :: !mv;
      mthr := [ m.Ir.m_id; m.Ir.m_exc ] :: !mthr);
  let ht = ref [] in
  Ir.iter_heaps p (fun h -> ht := [ h.Ir.h_id; h.Ir.h_cls ] :: !ht);
  let at = List.map (fun (a, b) -> [ a; b ]) (Hier.aT_tuples p) in
  let cha = List.map (fun (c, n, m) -> [ c; intern_name n; m ]) (Hier.cha_tuples p) in
  let cha_thread = List.map (fun (c, n, m) -> [ c; intern_name n; m ]) (Hier.thread_dispatch_tuples p) in
  let mentry = List.map (fun m -> [ m ]) (Ir.entries p) in
  let mcls = ref [] in
  Ir.iter_methods p (fun m -> mcls := [ m.Ir.m_id; m.Ir.m_owner ] :: !mcls);
  (* Element name tables. *)
  let n_all_vars = Ir.num_vars p in
  let v_names =
    Array.init n_all_vars (fun i ->
        let v = Ir.var p i in
        match v.Ir.v_owner with
        | Some m ->
          let mm = Ir.meth p m in
          Printf.sprintf "%s.%s.%s" (Ir.cls p mm.Ir.m_owner).Ir.cls_name mm.Ir.m_name v.Ir.v_name
        | None -> v.Ir.v_name)
  in
  let h_names = Array.init (Ir.num_heaps p) (fun i -> (Ir.heap p i).Ir.h_label) in
  let f_names =
    Array.init (max 1 (Ir.num_fields p)) (fun i ->
        if i < Ir.num_fields p then begin
          let f = Ir.field p i in
          Printf.sprintf "%s.%s" (Ir.cls p f.Ir.fld_owner).Ir.cls_name f.Ir.fld_name
        end
        else "<none>")
  in
  let t_names = Array.init (Ir.num_classes p) (fun i -> (Ir.cls p i).Ir.cls_name) in
  let i_names = Array.init (max 1 (Ir.num_invokes p)) (fun i -> if i < Ir.num_invokes p then (Ir.invoke p i).Ir.i_label else "<none>") in
  let n_names = Array.of_list (List.rev !names) in
  let m_names =
    Array.init (Ir.num_methods p) (fun i ->
        let m = Ir.meth p i in
        Printf.sprintf "%s.%s" (Ir.cls p m.Ir.m_owner).Ir.cls_name m.Ir.m_name)
  in
  let z_names = Array.init !max_arity string_of_int in
  let domains =
    [
      ("V", n_all_vars, v_names);
      ("H", Ir.num_heaps p, h_names);
      ("F", max 1 (Ir.num_fields p), f_names);
      ("T", Ir.num_classes p, t_names);
      ("I", max 1 (Ir.num_invokes p), i_names);
      ("N", Array.length n_names, n_names);
      ("M", Ir.num_methods p, m_names);
      ("Z", !max_arity, z_names);
    ]
  in
  let relations =
    [
      ("vP0", List.rev !vP0);
      ("vP0g", vP0g);
      ("copyAssign", List.rev !copy_assign);
      ("store", List.rev !store_rel);
      ("load", List.rev !load_rel);
      ("vT", List.rev !vt);
      ("hT", List.rev !ht);
      ("aT", at);
      ("cha", cha);
      ("chaT", cha_thread);
      ("actual", List.rev !actual);
      ("formal", List.rev !formal);
      ("IE0", List.rev !ie0);
      ("mI", List.rev !mi);
      ("Mret", List.rev !mret);
      ("Mthr", List.rev !mthr);
      ("Iret", List.rev !iret);
      ("mV", List.rev !mv);
      ("mH", List.rev !mh);
      ("syncs", List.rev !syncs);
      ("Mentry", mentry);
      ("Mcls", List.rev !mcls);
      ("hRun", List.rev !hrun);
    ]
  in
  { program = p; domains; relations }
