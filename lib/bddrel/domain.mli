(** Logical attribute domains (the paper's [V], [H], [F], [T], [I], [N],
    [M], [Z], [C] in Algorithm 1-5's DOMAINS sections).

    A domain is a named, sized set whose elements are ordinals
    [0 .. size-1], optionally with a per-element name map (the paper's
    ["variable.map"] files). *)

type t

val make : ?element_names:string array -> name:string -> size:int -> unit -> t
(** [make ~name ~size ()] builds a domain.  Raises [Invalid_argument] when
    [size < 1] or when [element_names] is shorter than [size]. *)

val name : t -> string
val size : t -> int

val bits : t -> int
(** Number of BDD variables needed: [ceil (log2 size)], at least 1. *)

val element_name : t -> int -> string
(** Name of element [i], falling back to the ordinal in decimal. *)

val element_names : t -> string array option
(** The name table passed to {!make}, if any — what a persisted store
    writes out as the domain's [.map] file. *)

val element_index : t -> string -> int option
(** Reverse of {!element_name}; also accepts a decimal ordinal. *)

val equal : t -> t -> bool
(** Identity: two domains are the same only if created by the same
    {!make} call. *)

val pp : Format.formatter -> t -> unit

val bits_for : int -> int
(** [bits_for n] is the width needed for values [0 .. n-1]. *)
