type t = {
  uid : int;
  name : string;
  size : int;
  bits : int;
  element_names : string array option;
  index : (string, int) Hashtbl.t option;
}

let counter = ref 0

let bits_for n =
  if n < 1 then invalid_arg "Domain.bits_for";
  let rec go b cap = if cap >= n then b else go (b + 1) (cap * 2) in
  go 1 2

let make ?element_names ~name ~size () =
  if size < 1 then invalid_arg "Domain.make: size must be positive";
  let index =
    match element_names with
    | None -> None
    | Some names ->
      if Array.length names < size then invalid_arg "Domain.make: element_names too short";
      let h = Hashtbl.create size in
      Array.iteri (fun i n -> if i < size && not (Hashtbl.mem h n) then Hashtbl.add h n i) names;
      Some h
  in
  incr counter;
  { uid = !counter; name; size; bits = bits_for size; element_names; index }

let name d = d.name
let size d = d.size
let bits d = d.bits
let element_names d = d.element_names

let element_name d i =
  match d.element_names with
  | Some names when i >= 0 && i < Array.length names -> names.(i)
  | Some _ | None -> string_of_int i

let element_index d s =
  let from_map =
    match d.index with
    | Some h -> Hashtbl.find_opt h s
    | None -> None
  in
  match from_map with
  | Some _ as r -> r
  | None -> (
    match int_of_string_opt s with
    | Some i when i >= 0 && i < d.size -> Some i
    | Some _ | None -> None)

let equal a b = a.uid = b.uid
let pp fmt d = Format.fprintf fmt "%s(%d)" d.name d.size
