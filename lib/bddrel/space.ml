type block = { dom : Domain.t; instance : int; bits : int array }

type t = {
  man : Bdd.man;
  by_domain : (string, block list ref) Hashtbl.t; (* instance order *)
  mutable next_var : int;
}

(* Solver spaces default to [Compact] GC: every handle the relational
   layer retains lives behind a [Relation] ref (a registered root) or a
   registered remap path, so renumbering is safe, and the
   level-clustered layout is what makes a byte-capped arena usable. *)
let create ?node_hint ?cache_bits ?page_bits ?mem_cap_bytes ?spill_path ?(gc_mode = Bdd.Compact) () =
  {
    man = Bdd.create ?node_hint ?cache_bits ?page_bits ?max_bytes:mem_cap_bytes ?spill_path ~gc_mode ~nvars:0 ();
    by_domain = Hashtbl.create 16;
    next_var = 0;
  }

let man s = s.man
let num_vars s = s.next_var
let cache_stats_by_class s = Bdd.cache_stats_by_class s.man
let cache_hit_rate s = Bdd.cache_hit_rate s.man

let domain_slot s (d : Domain.t) =
  match Hashtbl.find_opt s.by_domain (Domain.name d) with
  | Some r ->
    (match !r with
    | b :: _ when not (Domain.equal b.dom d) -> invalid_arg "Space: two distinct domains share a name"
    | _ -> r)
  | None ->
    let r = ref [] in
    Hashtbl.add s.by_domain (Domain.name d) r;
    r

let fresh_vars s n =
  let base = s.next_var in
  s.next_var <- base + n;
  Bdd.extend_vars s.man s.next_var;
  base

let alloc s d =
  let slot = domain_slot s d in
  let w = Domain.bits d in
  let base = fresh_vars s w in
  (* Most-significant bit first in the order tends to keep value-ordered
     data compact; bits array is LSB-first, so bit i sits at
     [base + w - 1 - i]. *)
  let bits = Array.init w (fun i -> base + w - 1 - i) in
  let b = { dom = d; instance = List.length !slot; bits } in
  slot := !slot @ [ b ];
  b

let alloc_interleaved s d k =
  if k < 1 then invalid_arg "Space.alloc_interleaved";
  let slot = domain_slot s d in
  let w = Domain.bits d in
  let base = fresh_vars s (w * k) in
  let first_instance = List.length !slot in
  (* Bit position b of instance j lives at [base + (w-1-b)*k + j]: all
     instances' most-significant bits adjacent, then the next bit, ... *)
  let blocks =
    Array.init k (fun j ->
        let bits = Array.init w (fun i -> base + ((w - 1 - i) * k) + j) in
        { dom = d; instance = first_instance + j; bits })
  in
  slot := !slot @ Array.to_list blocks;
  blocks

let instances s d =
  match Hashtbl.find_opt s.by_domain (Domain.name d) with
  | Some r -> !r
  | None -> []

let domains s =
  let ds = Hashtbl.fold (fun _ r acc -> match !r with b :: _ -> b.dom :: acc | [] -> acc) s.by_domain [] in
  List.sort (fun a b -> compare (Domain.name a) (Domain.name b)) ds

let restore_block s d ~instance ~bits =
  let slot = domain_slot s d in
  if List.length !slot <> instance then
    invalid_arg
      (Printf.sprintf "Space.restore_block: %s instance %d restored out of order (next is %d)" (Domain.name d)
         instance (List.length !slot));
  if Array.length bits <> Domain.bits d then
    invalid_arg (Printf.sprintf "Space.restore_block: %s needs %d bits, got %d" (Domain.name d) (Domain.bits d) (Array.length bits));
  Array.iter (fun v -> if v < 0 then invalid_arg "Space.restore_block: negative variable") bits;
  let b = { dom = d; instance; bits } in
  slot := !slot @ [ b ];
  let top = Array.fold_left max (-1) bits in
  if top + 1 > s.next_var then s.next_var <- top + 1;
  Bdd.extend_vars s.man s.next_var;
  b

let instance s d i =
  let rec ensure () =
    let existing = instances s d in
    if List.length existing > i then List.nth existing i
    else begin
      ignore (alloc s d);
      ensure ()
    end
  in
  if i < 0 then invalid_arg "Space.instance";
  ensure ()

let cube s b = Bdd.cube_of_vars s.man (Array.to_list b.bits)
let cube_of_blocks s bs = Bdd.cube_of_vars s.man (List.concat_map (fun b -> Array.to_list b.bits) bs)

let const s b v =
  if v < 0 || v >= Domain.size b.dom then
    invalid_arg (Printf.sprintf "Space.const: %d out of range for %s" v (Domain.name b.dom));
  Bdd.const_value s.man ~bits:b.bits v

let check_same_domain a b =
  if not (Domain.equal a.dom b.dom) then invalid_arg "Space: blocks of different domains"

let equal_blocks s a b =
  check_same_domain a b;
  Bdd.equal_blocks s.man ~src:a.bits ~dst:b.bits

let range s b ~lo ~hi = Bdd.range s.man ~bits:b.bits ~lo ~hi

let add_const s ~src ~dst ~delta =
  check_same_domain src dst;
  Bdd.add_const s.man ~src:src.bits ~dst:dst.bits ~delta

let renaming s pairs =
  let var_pairs =
    List.concat_map
      (fun (src, dst) ->
        check_same_domain src dst;
        Array.to_list (Array.map2 (fun a b -> (a, b)) src.bits dst.bits))
      pairs
  in
  Bdd.make_map s.man var_pairs

let value_of_bits assignment ~offset ~width =
  let v = ref 0 in
  for i = width - 1 downto 0 do
    v := (!v * 2) lor if assignment.(offset + i) then 1 else 0
  done;
  !v

(* --- Frozen spaces --- *)

type frozen = {
  f_bdd : Bdd.frozen;
  f_by_domain : (string * block list) list;
  f_nvars : int;
}

let freeze s =
  {
    f_bdd = Bdd.freeze s.man;
    f_by_domain = Hashtbl.fold (fun name r acc -> (name, !r) :: acc) s.by_domain [];
    f_nvars = s.next_var;
  }

let frozen_bdd f = f.f_bdd
let frozen_bytes f = Bdd.frozen_bytes f.f_bdd
let frozen_num_vars f = f.f_nvars

let frozen_instances f d =
  match List.assoc_opt (Domain.name d) f.f_by_domain with
  | Some bs -> bs
  | None -> []

let frozen_domains f =
  let ds = List.filter_map (fun (_, bs) -> match bs with b :: _ -> Some b.dom | [] -> None) f.f_by_domain in
  List.sort (fun a b -> compare (Domain.name a) (Domain.name b)) ds

let eval_ctx ?node_hint ?cache_bits f = Bdd.eval_ctx ?node_hint ?cache_bits f.f_bdd

let const_ctx ctx b v =
  if v < 0 || v >= Domain.size b.dom then
    invalid_arg (Printf.sprintf "Space.const_ctx: %d out of range for %s" v (Domain.name b.dom));
  Bdd.ctx_const_value ctx ~bits:b.bits v

let cube_of_blocks_ctx ctx bs = Bdd.ctx_cube_of_vars ctx (List.concat_map (fun b -> Array.to_list b.bits) bs)
