(* On-disk results database: domains + variable layout + relation BDDs.

   The manifest is a small line-oriented text file; the BDD payload is
   one Bdd.serialize dump whose roots are the relations in manifest
   order.  Write protocol for crash safety:

   - every file goes through temp + fsync + rename + directory fsync
     (a write barrier: the rename only becomes the commit of that file
     once its content is durable, and the rename itself is durable
     once the directory is);
   - data files are written before the manifest, and an existing
     manifest is removed first (and the removal fsynced) when
     overwriting — the manifest's presence is the commit point of the
     whole store;
   - the manifest records a CRC-32 + size for every data file and a
     CRC-32 of itself (the [selfsum] line), so any corruption between
     save and load is reported as a structured checksum error instead
     of a deserializer crash or, worse, silently wrong answers.

   Every file-system mutation is announced through [Faults.fs_op]
   immediately before it happens, which lets the robustness suite
   enumerate the crash points of a save and simulate a kill at each
   one (see test/test_store.ml's crash matrix). *)

type t = {
  st_key : string;
  st_snapshot : int;
  st_config : (string * string) list;
  st_space : Space.t;
  st_domains : (string * Domain.t) list;
  st_rels : (string * Relation.t) list; (* manifest order *)
  st_layers : int; (* delta layers folded into this load *)
}

(* v2: checksummed manifest + WLBDD02 checksummed BDD framing.
   v3: a [snapshot <n>] identity line — a per-directory save counter
   that lets followers (and their routers) tell two saves of the same
   content key apart and assert exactly which snapshot answered.

   Independent of the base format, a store may carry a chain of delta
   layers ([layer.<n>.*] files, format [whalelam-layer 1]): each layer
   is a self-committed append describing per-relation added/removed
   tuple sets against the state below it.  [load] folds the chain;
   [save] and [compact] squash it back to a single base. *)
let format_version = 3
let layer_format_version = 1

let subdir dir = Filename.concat dir "store"
let manifest_path dir = Filename.concat (subdir dir) "manifest"
let bdd_file = "relations.bdd"
let bdd_path dir = Filename.concat (subdir dir) bdd_file
let map_file dom_name = dom_name ^ ".map"
let map_path dir dom_name = Filename.concat (subdir dir) (map_file dom_name)

(* Delta-layer files live next to the base under numeric names; the
   layer manifest is each layer's single commit point, exactly as the
   base manifest is for the whole store. *)
let layer_manifest_file n = Printf.sprintf "layer.%d.manifest" n
let layer_manifest_path dir n = Filename.concat (subdir dir) (layer_manifest_file n)
let layer_bdd_file n = Printf.sprintf "layer.%d.bdd" n
let layer_map_file n dom_name = Printf.sprintf "layer.%d.%s.map" n dom_name

(* [layer.<n>.<rest>] → [Some n]; anything else → [None]. *)
let layer_file_index f =
  if String.length f > 6 && String.sub f 0 6 = "layer." then
    match String.index_from_opt f 6 '.' with
    | Some dot -> int_of_string_opt (String.sub f 6 (dot - 6))
    | None -> None
  else None

let bad ~path ~line fmt = Solver_error.raise_bad_input ~file:path ~line fmt

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.is_directory path -> ()
  end

(* Directory fsync: makes a completed rename/remove durable.  Best
   effort — some filesystems refuse to fsync a directory fd; the
   in-file checksums still catch whatever such a crash leaves. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* Atomic durable write: the destination either keeps its old content
   or gets the complete new content, never a prefix — and once the
   rename is visible, the content is already on disk (fsync before
   rename, directory fsync after).  The [Faults.fs_op] announcements
   split the path into its crash points; a simulated kill
   ([Faults.Crashed]) stops the protocol dead, leaving the temp file
   behind exactly as a real kill would. *)
let write_atomic path content =
  let tmp = path ^ ".tmp" in
  Faults.fs_op ("create " ^ tmp);
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let write_slice pos len =
    let b = Bytes.unsafe_of_string content in
    let rec go pos len =
      if len > 0 then begin
        let n = Unix.write fd b pos len in
        go (pos + n) (len - n)
      end
    in
    go pos len
  in
  (try
     let n = String.length content in
     let half = n / 2 in
     Faults.fs_op ("write " ^ tmp);
     write_slice 0 half;
     if half < n then Faults.fs_op ("write-rest " ^ tmp);
     write_slice half (n - half);
     Faults.fs_op ("fsync " ^ tmp);
     Unix.fsync fd;
     Unix.close fd
   with
   | Faults.Crashed _ as e ->
     (* Simulated process death: the kernel reclaims the descriptor
        and nothing else runs — the partial temp file stays. *)
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e
   | e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Faults.fs_op ("rename " ^ path);
  Sys.rename tmp path;
  Faults.fs_op ("fsync-dir " ^ Filename.dirname path);
  fsync_dir (Filename.dirname path)

let check_name what s =
  if s = "" || String.exists (fun c -> c = ' ' || c = ':' || c = '\n' || c = '\t' || c = '/') s then
    invalid_arg (Printf.sprintf "Store: %s name %S must be non-empty without spaces, colons or slashes" what s)

(* The snapshot counter's durable home: a one-line [serial] file next
   to the manifest, committed (atomically, before the old manifest is
   even touched) at the start of every save.  A save that crashes at
   any later point — including the torn window where the manifest has
   been removed but the new one is not yet committed — therefore never
   resets the counter: the next save reads the serial file and keeps
   counting.  The manifest scan below is only a fallback for stores
   written before the serial file existed. *)
let serial_path dir = Filename.concat (subdir dir) "serial"

(* Best-effort removal of every delta-layer file.  Called after the
   commit point of a full [save] (which orphans any chain the
   directory carried) and by [compact]: correctness never depends on
   it, because a layer whose [base-snapshot] does not match the
   current base is ignored by the chain walk — this only reclaims the
   disk.  Layer manifests go first so a crash mid-cleanup cannot leave
   a committed layer manifest pointing at removed data. *)
let remove_layer_files dir =
  match Sys.readdir (subdir dir) with
  | exception Sys_error _ -> ()
  | entries ->
    let files = Array.to_list entries |> List.filter (fun f -> layer_file_index f <> None) in
    if files <> [] then begin
      let manifests, rest = List.partition (fun f -> Filename.check_suffix f ".manifest") files in
      List.iter
        (fun f ->
          let path = Filename.concat (subdir dir) f in
          Faults.fs_op ("remove " ^ path);
          try Sys.remove path with Sys_error _ -> ())
        (manifests @ rest);
      Faults.fs_op ("fsync-dir " ^ subdir dir);
      fsync_dir (subdir dir)
    end

let read_serial path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | l -> (match int_of_string_opt (String.trim l) with Some n when n >= 0 -> Some n | _ -> None)
        | exception End_of_file -> None)

(* The previous save's snapshot counter, scanned with a plain line
   match (no full parse: the old manifest may be torn or corrupt, and
   a save must still go through — it starts a fresh history then). *)
let scan_snapshot path =
  if not (Sys.file_exists path) then None
  else
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let found = ref None in
          (try
             while !found = None do
               match String.split_on_char ' ' (input_line ic) with
               | [ "snapshot"; n ] -> found := int_of_string_opt n
               | _ -> ()
             done
           with End_of_file -> ());
          !found)
    with
    | Some n when n >= 0 -> Some n
    | Some _ | None -> None
    | exception Sys_error _ -> None

let save ~dir ~key ~config ~space ~relations =
  List.iter
    (fun r ->
      check_name "relation" (Relation.name r);
      if Relation.space r != space then invalid_arg "Store.save: relation from a different space")
    relations;
  let names = List.map Relation.name relations in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Store.save: duplicate relation names";
  List.iter
    (fun (k, v) ->
      check_name "config" k;
      if String.contains v '\n' then invalid_arg "Store.save: config value contains newline")
    config;
  let doms = Space.domains space in
  List.iter (fun d -> check_name "domain" (Domain.name d)) doms;
  (* Render every data file up front so the checksums the manifest
     records are over the exact bytes written. *)
  let maps =
    List.filter_map
      (fun d ->
        match Domain.element_names d with
        | None -> None
        | Some names ->
          let b = Buffer.create 1024 in
          for i = 0 to Domain.size d - 1 do
            Buffer.add_string b names.(i);
            Buffer.add_char b '\n'
          done;
          Some (Domain.name d, Buffer.contents b))
      doms
  in
  let dump = Bdd.serialize (Space.man space) (List.map Relation.bdd relations) in
  let checksums =
    (bdd_file, String.length dump, Crc32.string dump)
    :: List.map (fun (dn, content) -> (map_file dn, String.length content, Crc32.string content)) maps
  in
  let mpath = manifest_path dir in
  mkdir_p (subdir dir);
  (* Monotonic per-directory save counter: the follower swap protocol
     distinguishes "same key, re-saved" (snapshot bumps) from "nothing
     changed" (identical key and snapshot).  Allocated from the
     dedicated serial file (max'd against the manifest for stores
     predating it) and committed durably *before* the old manifest is
     invalidated, so a save torn at any later crash point cannot make
     the counter go backwards. *)
  let snapshot =
    let prev =
      List.fold_left
        (fun acc o -> match o with Some n -> max acc n | None -> acc)
        0
        [ read_serial (serial_path dir); scan_snapshot mpath ]
    in
    prev + 1
  in
  write_atomic (serial_path dir) (string_of_int snapshot ^ "\n");
  let manifest =
    let b = Buffer.create 1024 in
    Printf.bprintf b "whalelam-store %d\n" format_version;
    Printf.bprintf b "key %s\n" key;
    Printf.bprintf b "snapshot %d\n" snapshot;
    List.iter (fun (k, v) -> Printf.bprintf b "config %s %s\n" k v) config;
    Printf.bprintf b "nvars %d\n" (Space.num_vars space);
    List.iter
      (fun d ->
        Printf.bprintf b "domain %s %d %d\n" (Domain.name d) (Domain.size d)
          (if Domain.element_names d = None then 0 else 1))
      doms;
    List.iter
      (fun d ->
        List.iter
          (fun (blk : Space.block) ->
            Printf.bprintf b "block %s %d %s\n" (Domain.name d) blk.Space.instance
              (String.concat " " (List.map string_of_int (Array.to_list blk.Space.bits))))
          (Space.instances space d))
      doms;
    List.iter
      (fun r ->
        Printf.bprintf b "relation %s %s\n" (Relation.name r)
          (String.concat " "
             (List.map
                (fun (a : Relation.attr) ->
                  Printf.sprintf "%s:%s:%d" a.Relation.attr_name
                    (Domain.name a.Relation.block.Space.dom)
                    a.Relation.block.Space.instance)
                (Relation.attrs r))))
      relations;
    List.iter
      (fun (file, size, crc) -> Printf.bprintf b "checksum %s %d %s\n" file size (Crc32.to_hex crc))
      checksums;
    (* Self-checksum over every preceding byte: a flipped bit anywhere
       above is caught before any field is believed. *)
    Printf.bprintf b "selfsum %s\n" (Crc32.to_hex (Crc32.string (Buffer.contents b)));
    Buffer.add_string b "end\n";
    Buffer.contents b
  in
  (* Invalidate any previous store before touching its data files, and
     make the invalidation durable: a crash after this point must read
     as "no store", never as the old manifest over new data files. *)
  if Sys.file_exists mpath then begin
    Faults.fs_op ("remove " ^ mpath);
    (try Sys.remove mpath with Sys_error _ -> ());
    Faults.fs_op ("fsync-dir " ^ subdir dir);
    fsync_dir (subdir dir)
  end;
  List.iter (fun (dn, content) -> write_atomic (map_path dir dn) content) maps;
  write_atomic (bdd_path dir) dump;
  (* Manifest written last = the commit point of the whole store. *)
  write_atomic mpath manifest;
  (* The new base orphans any delta chain the directory carried (its
     layers name the previous base's snapshot); reclaim the files. *)
  remove_layer_files dir

(* --- Manifest parsing --- *)

let read_lines path =
  let ic = try open_in path with Sys_error msg -> bad ~path ~line:0 "%s" msg in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

type manifest = {
  m_key : string;
  m_snapshot : int;
  m_config : (string * string) list;
  m_nvars : int;
  m_domains : (string * int * bool) list; (* name, size, has map *)
  m_blocks : (string * int * int array) list; (* dom, instance, bits *)
  m_relations : (string * (string * string * int) list) list; (* rel, attrs (name, dom, instance) *)
  m_checksums : (string * int * int) list; (* file, size, crc32 *)
  m_certified : (string * int) option; (* chain-tip (key, snapshot) a semantic certification vouched for *)
}

let split_ws s = String.split_on_char ' ' s |> List.filter (fun f -> f <> "")

(* The manifest self-checksum: the second-to-last line must be
   [selfsum <crc>] where <crc> is the CRC-32 of every line before it
   (each with its '\n' back).  Verified before any field is
   interpreted, so a corrupted manifest is one uniform structured
   error rather than whichever field-level symptom the flip causes. *)
let verify_selfsum path lines =
  let arr = Array.of_list lines in
  let n = Array.length arr in
  if n < 3 then bad ~path ~line:n "manifest too short (%d lines)" n;
  match split_ws arr.(n - 2) with
  | [ "selfsum"; hex ] -> (
    match Crc32.of_hex hex with
    | None -> bad ~path ~line:(n - 1) "malformed selfsum value %s" hex
    | Some recorded ->
      let b = Buffer.create 512 in
      for i = 0 to n - 3 do
        Buffer.add_string b arr.(i);
        Buffer.add_char b '\n'
      done;
      let actual = Crc32.string (Buffer.contents b) in
      if actual <> recorded then
        bad ~path ~line:(n - 1)
          "manifest checksum mismatch: selfsum says crc32 %s, content is %s (corrupt manifest)"
          (Crc32.to_hex recorded) (Crc32.to_hex actual))
  | _ -> bad ~path ~line:(n - 1) "missing selfsum line before the end trailer (truncated manifest)"

let parse_manifest path =
  let lines = read_lines path in
  let int_field ~line what s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> v
    | Some _ | None -> bad ~path ~line "%s: not a non-negative integer: %s" what s
  in
  (match lines with
  | first :: _ when first = Printf.sprintf "whalelam-store %d" format_version -> ()
  | first :: _ -> bad ~path ~line:1 "unsupported store format: %s" first
  | [] -> bad ~path ~line:1 "empty manifest");
  (match List.rev lines with
  | "end" :: _ -> ()
  | _ -> bad ~path ~line:(List.length lines) "missing end trailer (truncated manifest)");
  verify_selfsum path lines;
  let key = ref None
  and snapshot = ref None
  and config = ref []
  and nvars = ref None
  and domains = ref []
  and blocks = ref []
  and relations = ref []
  and checksums = ref []
  and certified = ref None in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      if i > 0 && line <> "end" then
        match split_ws line with
        | [ "key"; k ] -> key := Some k
        | [ "snapshot"; n ] -> snapshot := Some (int_field ~line:line_no "snapshot" n)
        | "config" :: k :: _ ->
          (* The value is everything after the key, spaces included. *)
          let prefix = "config " ^ k ^ " " in
          let v =
            if String.length line >= String.length prefix then
              String.sub line (String.length prefix) (String.length line - String.length prefix)
            else ""
          in
          config := (k, v) :: !config
        | [ "nvars"; n ] -> nvars := Some (int_field ~line:line_no "nvars" n)
        | [ "domain"; name; size; mapped ] ->
          domains := (name, int_field ~line:line_no "domain size" size, mapped = "1") :: !domains
        | "block" :: dname :: inst :: bits ->
          blocks :=
            (dname, int_field ~line:line_no "instance" inst,
             Array.of_list (List.map (int_field ~line:line_no "bit") bits))
            :: !blocks
        | "relation" :: rname :: attrs ->
          let parse_attr spec =
            match String.split_on_char ':' spec with
            | [ a; d; inst ] -> (a, d, int_field ~line:line_no "attr instance" inst)
            | _ -> bad ~path ~line:line_no "malformed attribute spec %s" spec
          in
          relations := (rname, List.map parse_attr attrs) :: !relations
        | [ "checksum"; file; size; crc ] -> (
          match Crc32.of_hex crc with
          | Some c -> checksums := (file, int_field ~line:line_no "checksum size" size, c) :: !checksums
          | None -> bad ~path ~line:line_no "malformed checksum value %s" crc)
        | [ "certified"; k; s ] -> certified := Some (k, int_field ~line:line_no "certified snapshot" s)
        | [ "selfsum"; _ ] -> () (* verified up front by [verify_selfsum] *)
        | _ -> bad ~path ~line:line_no "unrecognized manifest line: %s" line)
    lines;
  let require what = function
    | Some v -> v
    | None -> bad ~path ~line:0 "manifest is missing its %s line" what
  in
  {
    m_key = require "key" !key;
    m_snapshot = require "snapshot" !snapshot;
    m_config = List.rev !config;
    m_nvars = require "nvars" !nvars;
    m_domains = List.rev !domains;
    m_blocks = List.rev !blocks;
    m_relations = List.rev !relations;
    m_checksums = List.rev !checksums;
    m_certified = !certified;
  }

let exists ~dir = Sys.file_exists (manifest_path dir)

(* --- Layer manifests and the chain walk --- *)

type layer = {
  l_index : int;
  l_key : string; (* content key of the chain up to and including this layer *)
  l_snapshot : int;
  l_base_snapshot : int; (* the base save this layer extends *)
  l_prev_snapshot : int; (* the element directly below (base or layer n-1) *)
  l_config : (string * string) list;
  l_nvars : int;
  l_domains : (string * int * bool) list; (* name, final size, carries replacement map *)
  l_deltas : string list; (* relation names; dump roots are (added, removed) pairs in this order *)
  l_checksums : (string * int * int) list;
}

let parse_layer_manifest path =
  let lines = read_lines path in
  let int_field ~line what s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> v
    | Some _ | None -> bad ~path ~line "%s: not a non-negative integer: %s" what s
  in
  (match lines with
  | first :: _ when first = Printf.sprintf "whalelam-layer %d" layer_format_version -> ()
  | first :: _ -> bad ~path ~line:1 "unsupported layer format: %s" first
  | [] -> bad ~path ~line:1 "empty layer manifest");
  (match List.rev lines with
  | "end" :: _ -> ()
  | _ -> bad ~path ~line:(List.length lines) "missing end trailer (truncated layer manifest)");
  verify_selfsum path lines;
  let index = ref None
  and key = ref None
  and snapshot = ref None
  and base_snapshot = ref None
  and prev_snapshot = ref None
  and config = ref []
  and nvars = ref None
  and domains = ref []
  and deltas = ref []
  and checksums = ref [] in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      if i > 0 && line <> "end" then
        match split_ws line with
        | [ "layer"; n ] -> index := Some (int_field ~line:line_no "layer" n)
        | [ "key"; k ] -> key := Some k
        | [ "snapshot"; n ] -> snapshot := Some (int_field ~line:line_no "snapshot" n)
        | [ "base-snapshot"; n ] -> base_snapshot := Some (int_field ~line:line_no "base-snapshot" n)
        | [ "prev-snapshot"; n ] -> prev_snapshot := Some (int_field ~line:line_no "prev-snapshot" n)
        | "config" :: k :: _ ->
          let prefix = "config " ^ k ^ " " in
          let v =
            if String.length line >= String.length prefix then
              String.sub line (String.length prefix) (String.length line - String.length prefix)
            else ""
          in
          config := (k, v) :: !config
        | [ "nvars"; n ] -> nvars := Some (int_field ~line:line_no "nvars" n)
        | [ "domain"; name; size; mapped ] ->
          domains := (name, int_field ~line:line_no "domain size" size, mapped = "1") :: !domains
        | [ "delta"; rname ] -> deltas := rname :: !deltas
        | [ "checksum"; file; size; crc ] -> (
          match Crc32.of_hex crc with
          | Some c -> checksums := (file, int_field ~line:line_no "checksum size" size, c) :: !checksums
          | None -> bad ~path ~line:line_no "malformed checksum value %s" crc)
        | [ "selfsum"; _ ] -> ()
        | _ -> bad ~path ~line:line_no "unrecognized layer manifest line: %s" line)
    lines;
  let require what = function
    | Some v -> v
    | None -> bad ~path ~line:0 "layer manifest is missing its %s line" what
  in
  {
    l_index = require "layer" !index;
    l_key = require "key" !key;
    l_snapshot = require "snapshot" !snapshot;
    l_base_snapshot = require "base-snapshot" !base_snapshot;
    l_prev_snapshot = require "prev-snapshot" !prev_snapshot;
    l_config = List.rev !config;
    l_nvars = require "nvars" !nvars;
    l_domains = List.rev !domains;
    l_deltas = List.rev !deltas;
    l_checksums = List.rev !checksums;
  }

(* Walk the committed chain above a base manifest.  The walk stops
   cleanly at the first missing layer manifest (a torn [save_delta]
   never commits one, so its debris is invisible) and at the first
   {e orphan} — a layer whose [base-snapshot] is not the current
   base's, i.e. a leftover from before a [compact] or full [save]
   whose cleanup did not finish.  A layer that is committed but does
   not parse, misnumbers itself, or breaks the prev-snapshot link is
   {e corruption}: the walk reports it instead of silently serving a
   shorter chain. *)
let read_chain dir (m : manifest) =
  let rec go n prev acc =
    let path = layer_manifest_path dir n in
    if not (Sys.file_exists path) then (List.rev acc, None)
    else
      match parse_layer_manifest path with
      | exception Solver_error.Error e -> (List.rev acc, Some (n, Solver_error.to_string e))
      | l ->
        if l.l_base_snapshot <> m.m_snapshot then (List.rev acc, None) (* orphan: ignore *)
        else if l.l_index <> n then
          (List.rev acc, Some (n, Printf.sprintf "%s: layer line says %d, file name says %d" path l.l_index n))
        else if l.l_prev_snapshot <> prev then
          ( List.rev acc,
            Some
              ( n,
                Printf.sprintf "%s: prev-snapshot %d does not match the element below (snapshot %d)" path
                  l.l_prev_snapshot prev ) )
        else go (n + 1) l.l_snapshot (l :: acc)
  in
  go 1 m.m_snapshot []

(* The identity and config of the chain tip: the last committed layer,
   or the base itself when there is none. *)
let tip_of_chain (m : manifest) layers =
  match List.rev layers with
  | [] -> (m.m_key, m.m_snapshot, m.m_config)
  | l :: _ -> (l.l_key, l.l_snapshot, l.l_config)

let read_key ~dir =
  if not (exists ~dir) then None
  else
    match parse_manifest (manifest_path dir) with
    | m -> (
      match read_chain dir m with
      | _, Some _ -> None
      | layers, None ->
        let k, _, _ = tip_of_chain m layers in
        Some k)
    | exception Solver_error.Error _ -> None

(* The (key, snapshot) pair is the identity followers watch: equal
   pairs mean the same committed chain tip.  Chain-aware, so a base
   that has since been extended by [save_delta] can never masquerade
   as current: the tip's key and snapshot are returned, and a corrupt
   (not merely torn) chain reads as no identity at all. *)
let read_ident ~dir =
  if not (exists ~dir) then None
  else
    match parse_manifest (manifest_path dir) with
    | m -> (
      match read_chain dir m with
      | _, Some _ -> None
      | layers, None ->
        let k, s, _ = tip_of_chain m layers in
        Some (k, s))
    | exception Solver_error.Error _ -> None

let read_snapshot ~dir = Option.map snd (read_ident ~dir)

let read_layers ~dir =
  if not (exists ~dir) then None
  else
    match parse_manifest (manifest_path dir) with
    | m -> (
      match read_chain dir m with
      | _, Some _ -> None
      | layers, None -> Some (List.length layers))
    | exception Solver_error.Error _ -> None

(* Stat triples (inode, mtime, size) of the base manifest followed by
   every consecutive layer manifest on disk: the cheap
   has-anything-changed probe a follower compares between polls.  No
   parsing, no checksums — a changed list only means "look closer".
   The walk does not validate chain links, so orphaned tails appear
   here too; that is fine, the slow path sorts them out. *)
let tip_stat ~dir =
  let stat path =
    match Unix.stat path with
    | st -> Some (st.Unix.st_ino, st.Unix.st_mtime, st.Unix.st_size)
    | exception Unix.Unix_error _ -> None
  in
  match stat (manifest_path dir) with
  | None -> []
  | Some base ->
    let rec go n acc =
      match stat (layer_manifest_path dir n) with
      | None -> List.rev acc
      | Some s -> go (n + 1) (s :: acc)
    in
    go 1 [ base ]

let read_file path =
  let ic = try open_in_bin path with Sys_error msg -> bad ~path ~line:0 "%s" msg in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Read a data file and verify it against its manifest's recorded size
   and CRC-32 before a single byte of it is interpreted.  [mpath] is
   the manifest (base or layer) whose [checksums] vouch for the file. *)
let verified_read_in ~mpath ~checksums dir file =
  let path = Filename.concat (subdir dir) file in
  match List.find_opt (fun (f, _, _) -> f = file) checksums with
  | None -> bad ~path:mpath ~line:0 "no checksum recorded for %s" file
  | Some (_, size, crc) ->
    let data = read_file path in
    if String.length data <> size then
      bad ~path ~line:0 "size mismatch: manifest says %d bytes, file has %d (corrupt or torn write)" size
        (String.length data);
    let actual = Crc32.string data in
    if actual <> crc then
      bad ~path ~line:0 "checksum mismatch: manifest says crc32 %s, content is %s (corrupt store)"
        (Crc32.to_hex crc) (Crc32.to_hex actual);
    data

let verified_read ~mpath m dir file = verified_read_in ~mpath ~checksums:m.m_checksums dir file

let lines_of_string s =
  match List.rev (String.split_on_char '\n' s) with
  | "" :: rest -> List.rev rest (* drop the final newline's empty split *)
  | _ -> String.split_on_char '\n' s

let load_with ?page_bits ?mem_cap_bytes ~dir () =
  let mpath = manifest_path dir in
  if not (Sys.file_exists mpath) then bad ~path:mpath ~line:0 "no store at %s" dir;
  let m = parse_manifest mpath in
  let layers =
    match read_chain dir m with
    | layers, None -> layers
    | _, Some (n, msg) -> bad ~path:(layer_manifest_path dir n) ~line:0 "broken delta chain: %s" msg
  in
  let tip_key, tip_snapshot, tip_config = tip_of_chain m layers in
  (* Domains are created at their {e final} sizes (the tip's domain
     lines), and each mapped domain's element names come from the
     {e latest} element that carries a replacement map — the base, or
     the topmost layer whose edit grew or renamed the domain. *)
  let final_domains =
    match List.rev layers with
    | [] -> m.m_domains
    | top :: _ ->
      List.map
        (fun (name, _, base_mapped) ->
          match List.find_opt (fun (n, _, _) -> n = name) top.l_domains with
          | Some (_, final_size, _) -> (name, final_size, base_mapped)
          | None ->
            bad ~path:(layer_manifest_path dir top.l_index) ~line:0 "layer %d is missing domain %s" top.l_index
              name)
        m.m_domains
  in
  let map_names name =
    (* Topmost provider wins. *)
    let rec from_layers = function
      | [] -> lines_of_string (verified_read ~mpath m dir (map_file name))
      | l :: below ->
        if List.exists (fun (n, _, carries) -> n = name && carries) l.l_domains then
          lines_of_string
            (verified_read_in ~mpath:(layer_manifest_path dir l.l_index) ~checksums:l.l_checksums dir
               (layer_map_file l.l_index name))
        else from_layers below
    in
    from_layers (List.rev layers)
  in
  (* A capped load spills under the store's own directory (the scratch
     file is lazily created, not in the manifest, and ignored by
     [verify]/[load] — debris at worst, removed on [dispose]).  The
     name embeds our pid so the sweep below — run on every load — can
     reclaim scratch files that earlier, since-killed processes never
     disposed, without ever touching a live concurrent loader's. *)
  ignore (Bdd.sweep_stale_spills ~dir:(subdir dir) ());
  let spill = Filename.concat (subdir dir) (Printf.sprintf "arena.%d.spill" (Unix.getpid ())) in
  let space = Space.create ?page_bits ?mem_cap_bytes ~spill_path:spill () in
  let domains =
    List.map
      (fun (name, size, mapped) ->
        let element_names =
          if not mapped then None
          else begin
            let names = Array.of_list (map_names name) in
            if Array.length names < size then
              bad ~path:(map_path dir name) ~line:(Array.length names) "map has %d entries, domain %s needs %d"
                (Array.length names) name size;
            Some names
          end
        in
        (name, Domain.make ?element_names ~name ~size ()))
      final_domains
  in
  let find_domain ~line name =
    match List.assoc_opt name domains with
    | Some d -> d
    | None -> bad ~path:mpath ~line "unknown domain %s" name
  in
  let blocks = Hashtbl.create 16 in
  List.iter
    (fun (dname, instance, bits) ->
      let d = find_domain ~line:0 dname in
      let b =
        try Space.restore_block space d ~instance ~bits
        with Invalid_argument msg -> bad ~path:mpath ~line:0 "%s" msg
      in
      Hashtbl.replace blocks (dname, instance) b)
    m.m_blocks;
  if Space.num_vars space > m.m_nvars then
    bad ~path:mpath ~line:0 "blocks use %d variables but nvars says %d" (Space.num_vars space) m.m_nvars;
  Bdd.extend_vars (Space.man space) (List.fold_left (fun acc l -> max acc l.l_nvars) m.m_nvars layers);
  let rels =
    List.map
      (fun (rname, attr_specs) ->
        let attrs =
          List.map
            (fun (aname, dname, instance) ->
              match Hashtbl.find_opt blocks (dname, instance) with
              | Some b -> { Relation.attr_name = aname; block = b }
              | None -> bad ~path:mpath ~line:0 "relation %s: no block %s#%d" rname dname instance)
            attr_specs
        in
        (rname, Relation.make space ~name:rname attrs))
      m.m_relations
  in
  let bpath = bdd_path dir in
  let roots = Bdd.deserialize ~source:bpath (Space.man space) (verified_read ~mpath m dir bdd_file) in
  if List.length roots <> List.length rels then
    bad ~path:bpath ~line:0 "dump has %d roots, manifest lists %d relations" (List.length roots)
      (List.length rels);
  List.iter2 (fun (_, r) root -> Relation.set_bdd r root) rels roots;
  (* Fold each layer over the state below it:
     rel := (rel \ removed) ∪ added, per delta line. *)
  let man = Space.man space in
  List.iter
    (fun l ->
      let lmpath = layer_manifest_path dir l.l_index in
      let data = verified_read_in ~mpath:lmpath ~checksums:l.l_checksums dir (layer_bdd_file l.l_index) in
      let lpath = Filename.concat (subdir dir) (layer_bdd_file l.l_index) in
      let roots = Bdd.deserialize ~source:lpath man data in
      if List.length roots <> 2 * List.length l.l_deltas then
        bad ~path:lpath ~line:0 "layer dump has %d roots, manifest lists %d delta relations" (List.length roots)
          (List.length l.l_deltas);
      let rec fold names roots =
        match (names, roots) with
        | [], [] -> ()
        | name :: names, added :: removed :: roots ->
          (match List.assoc_opt name rels with
          | None -> bad ~path:lmpath ~line:0 "layer %d: delta for unknown relation %s" l.l_index name
          | Some r -> Relation.set_bdd r (Bdd.mk_or man (Bdd.mk_diff man (Relation.bdd r) removed) added));
          fold names roots
        | _ -> bad ~path:lpath ~line:0 "layer %d: root/delta count mismatch" l.l_index
      in
      fold l.l_deltas roots)
    layers;
  {
    st_key = tip_key;
    st_snapshot = tip_snapshot;
    st_config = tip_config;
    st_space = space;
    st_domains = domains;
    st_rels = rels;
    st_layers = List.length layers;
  }

(* --- Delta layers: append and squash --- *)

let load ~dir = load_with ~dir ()

(* Append one delta layer to the chain at [dir].  The layer is
   committed exactly like a base save: serial first (so the snapshot
   counter survives any tear), data files next, the layer manifest
   last — its rename is the commit point, and a crash anywhere earlier
   leaves the previous chain tip serving unchanged. *)
let save_delta ~dir ~key ~config ~space ~deltas =
  let mpath = manifest_path dir in
  if not (Sys.file_exists mpath) then
    invalid_arg (Printf.sprintf "Store.save_delta: no base store at %s" dir);
  let m = parse_manifest mpath in
  let layers =
    match read_chain dir m with
    | layers, None -> layers
    | _, Some (n, msg) ->
      bad ~path:(layer_manifest_path dir n) ~line:0 "cannot append to a broken delta chain: %s" msg
  in
  (* The layer's BDDs only mean anything under the base's variable
     layout; refuse to append across a layout change. *)
  let doms = Space.domains space in
  let space_blocks =
    List.concat_map
      (fun d ->
        List.map (fun (b : Space.block) -> (Domain.name d, b.Space.instance, b.Space.bits)) (Space.instances space d))
      doms
  in
  let block_eq (n1, i1, b1) (n2, i2, b2) = n1 = n2 && i1 = i2 && b1 = b2 in
  if
    List.length space_blocks <> List.length m.m_blocks
    || not (List.for_all (fun sb -> List.exists (block_eq sb) m.m_blocks) space_blocks)
  then invalid_arg "Store.save_delta: variable layout differs from the base store (cold save required)";
  List.iter
    (fun (name, _, _) ->
      check_name "relation" name;
      if not (List.mem_assoc name m.m_relations) then
        invalid_arg (Printf.sprintf "Store.save_delta: relation %s is not in the base store" name))
    deltas;
  List.iter
    (fun (k, v) ->
      check_name "config" k;
      if String.contains v '\n' then invalid_arg "Store.save_delta: config value contains newline")
    config;
  let n = List.length layers + 1 in
  (* Element-name maps: a layer carries a replacement map for a domain
     only when the rendered content differs from what the chain below
     already provides (detected by CRC against the latest provider's
     recorded checksum) — growth or renames write a full new map,
     untouched domains write nothing. *)
  let current_map_crc name =
    let rec from_layers = function
      | [] ->
        List.find_map
          (fun (f, _, crc) -> if f = map_file name then Some crc else None)
          m.m_checksums
      | l :: below ->
        if List.exists (fun (dn, _, carries) -> dn = name && carries) l.l_domains then
          List.find_map
            (fun (f, _, crc) -> if f = layer_map_file l.l_index name then Some crc else None)
            l.l_checksums
        else from_layers below
    in
    from_layers (List.rev layers)
  in
  let maps =
    List.filter_map
      (fun d ->
        match Domain.element_names d with
        | None -> None
        | Some names ->
          let b = Buffer.create 1024 in
          for i = 0 to Domain.size d - 1 do
            Buffer.add_string b names.(i);
            Buffer.add_char b '\n'
          done;
          let content = Buffer.contents b in
          if current_map_crc (Domain.name d) = Some (Crc32.string content) then None
          else Some (Domain.name d, content))
      doms
  in
  let dump = Bdd.serialize (Space.man space) (List.concat_map (fun (_, a, r) -> [ a; r ]) deltas) in
  let checksums =
    (layer_bdd_file n, String.length dump, Crc32.string dump)
    :: List.map (fun (dn, content) -> (layer_map_file n dn, String.length content, Crc32.string content)) maps
  in
  let prev_snapshot =
    match List.rev layers with [] -> m.m_snapshot | l :: _ -> l.l_snapshot
  in
  let snapshot =
    let prev =
      List.fold_left
        (fun acc o -> match o with Some x -> max acc x | None -> acc)
        prev_snapshot
        [ read_serial (serial_path dir); scan_snapshot mpath ]
    in
    prev + 1
  in
  write_atomic (serial_path dir) (string_of_int snapshot ^ "\n");
  let manifest =
    let b = Buffer.create 1024 in
    Printf.bprintf b "whalelam-layer %d\n" layer_format_version;
    Printf.bprintf b "layer %d\n" n;
    Printf.bprintf b "key %s\n" key;
    Printf.bprintf b "snapshot %d\n" snapshot;
    Printf.bprintf b "base-snapshot %d\n" m.m_snapshot;
    Printf.bprintf b "prev-snapshot %d\n" prev_snapshot;
    List.iter (fun (k, v) -> Printf.bprintf b "config %s %s\n" k v) config;
    Printf.bprintf b "nvars %d\n" (Space.num_vars space);
    List.iter
      (fun d ->
        Printf.bprintf b "domain %s %d %d\n" (Domain.name d) (Domain.size d)
          (if List.mem_assoc (Domain.name d) maps then 1 else 0))
      doms;
    List.iter (fun (name, _, _) -> Printf.bprintf b "delta %s\n" name) deltas;
    List.iter
      (fun (file, size, crc) -> Printf.bprintf b "checksum %s %d %s\n" file size (Crc32.to_hex crc))
      checksums;
    Printf.bprintf b "selfsum %s\n" (Crc32.to_hex (Crc32.string (Buffer.contents b)));
    Buffer.add_string b "end\n";
    Buffer.contents b
  in
  List.iter (fun (dn, content) -> write_atomic (Filename.concat (subdir dir) (layer_map_file n dn)) content) maps;
  write_atomic (Filename.concat (subdir dir) (layer_bdd_file n)) dump;
  (* Layer manifest written last = the commit point of the layer. *)
  write_atomic (layer_manifest_path dir n) manifest;
  n

(* Squash the chain back to a single base (LSM compaction): load the
   folded state, full-save it under the tip's key and config — which
   both orphans and then removes the old layers — and report how many
   layers were squashed.  Crash-safe by construction: every
   intermediate state is either the old chain (before the new base
   manifest commits) or the new base plus ignorable orphans. *)
let compact ~dir =
  let st = load ~dir in
  if st.st_layers = 0 then 0
  else begin
    save ~dir ~key:st.st_key ~config:st.st_config ~space:st.st_space ~relations:(List.map snd st.st_rels);
    st.st_layers
  end

(* --- Semantic certification marks --- *)

(* Record that an independent fixpoint check ({!Pta.Certify}) vouched
   for the current chain tip: a [certified <key> <snapshot>] line in
   the base manifest, rewritten through the same atomic barrier as
   every other manifest write.  The mark names the tip {e identity},
   so it self-invalidates: a later [save_delta] moves the tip snapshot
   past the recorded one, and [save]/[compact] rewrite the manifest
   without the line.  Returns the recorded pair. *)
let mark_certified ~dir =
  let mpath = manifest_path dir in
  if not (Sys.file_exists mpath) then bad ~path:mpath ~line:0 "no store at %s" dir;
  let m = parse_manifest mpath in
  let layers =
    match read_chain dir m with
    | layers, None -> layers
    | _, Some (n, msg) ->
      bad ~path:(layer_manifest_path dir n) ~line:0 "cannot certify a broken delta chain: %s" msg
  in
  let tip_key, tip_snapshot, _ = tip_of_chain m layers in
  let body =
    List.filter
      (fun l ->
        match split_ws l with
        | "certified" :: _ | "selfsum" :: _ | [ "end" ] -> false
        | _ -> true)
      (read_lines mpath)
  in
  let b = Buffer.create 1024 in
  List.iter
    (fun l ->
      Buffer.add_string b l;
      Buffer.add_char b '\n')
    body;
  Printf.bprintf b "certified %s %d\n" tip_key tip_snapshot;
  Printf.bprintf b "selfsum %s\n" (Crc32.to_hex (Crc32.string (Buffer.contents b)));
  Buffer.add_string b "end\n";
  write_atomic mpath (Buffer.contents b);
  (tip_key, tip_snapshot)

let read_certified ~dir =
  if not (exists ~dir) then None
  else
    match parse_manifest (manifest_path dir) with
    | m -> m.m_certified
    | exception Solver_error.Error _ -> None

(* Test-only semantic corruption: delete the first tuple of [relation]
   (or insert an all-zeros tuple when it is empty) and re-save the
   folded state under the same key and config — through the ordinary
   write barrier, so every CRC and the manifest selfsum are freshly
   consistent and byte-level [verify] stays green.  Deletion is the
   interesting direction: a deleted derived tuple is re-derived by its
   own rule in one application, and a deleted input tuple fails input
   containment, so semantic certification must catch what nothing
   byte-level can.  The re-save bumps the snapshot (a new identity
   followers will consider) and carries no [certified] line. *)
let corrupt_tuple_for_tests ~dir ~relation =
  let st = load ~dir in
  match List.assoc_opt relation st.st_rels with
  | None -> invalid_arg (Printf.sprintf "Store.corrupt_tuple_for_tests: no relation %s" relation)
  | Some r ->
    let man = Space.man st.st_space in
    let first = ref None in
    (try
       Relation.iter_tuples r (fun tu ->
           first := Some (Array.copy tu);
           raise Exit)
     with Exit -> ());
    let tmp = Relation.make st.st_space ~name:(relation ^ "#corrupt") (Relation.attrs r) in
    (match !first with
    | Some tu ->
      Relation.set_tuples tmp [ tu ];
      Relation.set_bdd r (Bdd.mk_diff man (Relation.bdd r) (Relation.bdd tmp))
    | None ->
      Relation.set_tuples tmp [ Array.make (Relation.arity r) 0 ];
      Relation.set_bdd r (Bdd.mk_or man (Relation.bdd r) (Relation.bdd tmp)));
    Relation.dispose tmp;
    save ~dir ~key:st.st_key ~config:st.st_config ~space:st.st_space ~relations:(List.map snd st.st_rels)

(* --- Verification and repair --- *)

type check = { chk_name : string; chk_ok : bool; chk_detail : string }

let verify ?(structural = true) ~dir () =
  let checks = ref [] in
  let push name ok detail = checks := { chk_name = name; chk_ok = ok; chk_detail = detail } :: !checks in
  let mpath = manifest_path dir in
  if not (Sys.file_exists mpath) then push "manifest" false (Printf.sprintf "no store at %s" dir)
  else begin
    (match parse_manifest mpath with
    | exception Solver_error.Error e -> push "manifest" false (Solver_error.to_string e)
    | m ->
      push "manifest" true
        (Printf.sprintf "key %s, %d relations, %d checksummed files" m.m_key (List.length m.m_relations)
           (List.length m.m_checksums));
      List.iter
        (fun (file, _, _) ->
          match verified_read ~mpath m dir file with
          | exception Solver_error.Error e -> push file false (Solver_error.to_string e)
          | data -> push file true (Printf.sprintf "crc32 %s, %d bytes" (Crc32.to_hex (Crc32.string data)) (String.length data)))
        m.m_checksums;
      (* Walk the delta chain: per-layer parse + selfsum, link
         validity, and per-layer data-file checksums.  A broken layer
         condemns only the tail from that index up — the base (and any
         layers below it) stay healthy and [quarantine_layers] can cut
         the tail off.  Orphaned layers (a base-snapshot from before a
         compact) and uncommitted debris (layer data with no manifest)
         are ignorable by construction and reported as healthy. *)
      let layers, chain_err = read_chain dir m in
      List.iter
        (fun l ->
          let name = layer_manifest_file l.l_index in
          push name true
            (Printf.sprintf "key %s, snapshot %d, %d delta relations" l.l_key l.l_snapshot
               (List.length l.l_deltas));
          List.iter
            (fun (file, _, _) ->
              match
                verified_read_in ~mpath:(layer_manifest_path dir l.l_index) ~checksums:l.l_checksums dir file
              with
              | exception Solver_error.Error e -> push file false (Solver_error.to_string e)
              | data ->
                push file true
                  (Printf.sprintf "crc32 %s, %d bytes" (Crc32.to_hex (Crc32.string data)) (String.length data)))
            l.l_checksums)
        layers;
      (match chain_err with
      | Some (n, msg) -> push (layer_manifest_file n) false msg
      | None -> ());
      (* Anything with a layer index beyond the valid chain that is
         not condemned above is orphaned/uncommitted debris. *)
      let chain_end = List.length layers in
      let broken_at = match chain_err with Some (n, _) -> Some n | None -> None in
      (match Sys.readdir (subdir dir) with
      | exception Sys_error _ -> ()
      | entries ->
        Array.iter
          (fun f ->
            match layer_file_index f with
            | Some i when i > chain_end && broken_at = None ->
              push f true "orphaned or uncommitted layer debris (ignored by load)"
            | _ -> ())
          entries));
    if structural && List.for_all (fun c -> c.chk_ok) !checks then
      match load ~dir with
      | exception Solver_error.Error e -> push "structural load" false (Solver_error.to_string e)
      | exception e -> push "structural load" false (Printexc.to_string e)
      | st ->
        push "structural load" true
          (Printf.sprintf "%d relations, %d delta layers, %d live BDD nodes" (List.length st.st_rels)
             st.st_layers
             (Bdd.live_nodes (Space.man st.st_space)))
  end;
  List.rev !checks

(* The smallest layer index named by a failing check, when the base
   itself is healthy — the cut point for [quarantine_layers]. *)
let first_broken_layer checks =
  let base_broken =
    List.exists (fun c -> (not c.chk_ok) && layer_file_index c.chk_name = None) checks
  in
  if base_broken then None
  else
    List.fold_left
      (fun acc c ->
        if c.chk_ok then acc
        else
          match (layer_file_index c.chk_name, acc) with
          | Some i, Some j -> Some (min i j)
          | Some i, None -> Some i
          | None, _ -> acc)
      None checks

let quarantine ~dir =
  let sd = subdir dir in
  if not (Sys.file_exists sd) then None
  else begin
    let rec fresh i =
      let cand = Printf.sprintf "%s.broken.%d" sd i in
      if Sys.file_exists cand then fresh (i + 1) else cand
    in
    let dest = fresh 1 in
    Faults.fs_op ("rename " ^ dest);
    Sys.rename sd dest;
    fsync_dir dir;
    Some dest
  end

(* Cut a broken tail off the delta chain: move every layer file with
   index >= [from_layer] into a fresh [store/layers.broken.<k>/]
   directory.  The base and the layers below the cut keep serving —
   this is the surgical repair for a corrupted append, where full
   [quarantine] would throw away a healthy base. *)
let quarantine_layers ~dir ~from_layer =
  let sd = subdir dir in
  if not (Sys.file_exists sd) then None
  else begin
    let victims =
      match Sys.readdir sd with
      | exception Sys_error _ -> []
      | entries ->
        Array.to_list entries
        |> List.filter (fun f -> match layer_file_index f with Some i -> i >= from_layer | None -> false)
    in
    if victims = [] then None
    else begin
      let rec fresh i =
        let cand = Filename.concat sd (Printf.sprintf "layers.broken.%d" i) in
        if Sys.file_exists cand then fresh (i + 1) else cand
      in
      let dest = fresh 1 in
      mkdir_p dest;
      (* Manifests first: once a layer's manifest is gone it is
         uncommitted, so a crash mid-quarantine can only make the
         chain shorter, never inconsistent. *)
      let manifests, rest = List.partition (fun f -> Filename.check_suffix f ".manifest") victims in
      List.iter
        (fun f ->
          let src = Filename.concat sd f in
          Faults.fs_op ("rename " ^ Filename.concat dest f);
          try Sys.rename src (Filename.concat dest f) with Sys_error _ -> ())
        (manifests @ rest);
      fsync_dir sd;
      Some dest
    end
  end

let key t = t.st_key
let snapshot t = t.st_snapshot
let layers t = t.st_layers
let config t = t.st_config
let config_value t k = List.assoc_opt k t.st_config
let space t = t.st_space
let domains t = List.map snd t.st_domains
let domain t name = List.assoc_opt name t.st_domains
let relations t = List.map snd t.st_rels
let find t name = List.assoc_opt name t.st_rels
