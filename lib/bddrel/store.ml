(* On-disk results database: domains + variable layout + relation BDDs.

   The manifest is a small line-oriented text file; the BDD payload is
   one Bdd.serialize dump whose roots are the relations in manifest
   order.  Write protocol for crash safety:

   - every file goes through temp + fsync + rename + directory fsync
     (a write barrier: the rename only becomes the commit of that file
     once its content is durable, and the rename itself is durable
     once the directory is);
   - data files are written before the manifest, and an existing
     manifest is removed first (and the removal fsynced) when
     overwriting — the manifest's presence is the commit point of the
     whole store;
   - the manifest records a CRC-32 + size for every data file and a
     CRC-32 of itself (the [selfsum] line), so any corruption between
     save and load is reported as a structured checksum error instead
     of a deserializer crash or, worse, silently wrong answers.

   Every file-system mutation is announced through [Faults.fs_op]
   immediately before it happens, which lets the robustness suite
   enumerate the crash points of a save and simulate a kill at each
   one (see test/test_store.ml's crash matrix). *)

type t = {
  st_key : string;
  st_snapshot : int;
  st_config : (string * string) list;
  st_space : Space.t;
  st_domains : (string * Domain.t) list;
  st_rels : (string * Relation.t) list; (* manifest order *)
}

(* v2: checksummed manifest + WLBDD02 checksummed BDD framing.
   v3: a [snapshot <n>] identity line — a per-directory save counter
   that lets followers (and their routers) tell two saves of the same
   content key apart and assert exactly which snapshot answered. *)
let format_version = 3

let subdir dir = Filename.concat dir "store"
let manifest_path dir = Filename.concat (subdir dir) "manifest"
let bdd_file = "relations.bdd"
let bdd_path dir = Filename.concat (subdir dir) bdd_file
let map_file dom_name = dom_name ^ ".map"
let map_path dir dom_name = Filename.concat (subdir dir) (map_file dom_name)

let bad ~path ~line fmt = Solver_error.raise_bad_input ~file:path ~line fmt

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.is_directory path -> ()
  end

(* Directory fsync: makes a completed rename/remove durable.  Best
   effort — some filesystems refuse to fsync a directory fd; the
   in-file checksums still catch whatever such a crash leaves. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* Atomic durable write: the destination either keeps its old content
   or gets the complete new content, never a prefix — and once the
   rename is visible, the content is already on disk (fsync before
   rename, directory fsync after).  The [Faults.fs_op] announcements
   split the path into its crash points; a simulated kill
   ([Faults.Crashed]) stops the protocol dead, leaving the temp file
   behind exactly as a real kill would. *)
let write_atomic path content =
  let tmp = path ^ ".tmp" in
  Faults.fs_op ("create " ^ tmp);
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let write_slice pos len =
    let b = Bytes.unsafe_of_string content in
    let rec go pos len =
      if len > 0 then begin
        let n = Unix.write fd b pos len in
        go (pos + n) (len - n)
      end
    in
    go pos len
  in
  (try
     let n = String.length content in
     let half = n / 2 in
     Faults.fs_op ("write " ^ tmp);
     write_slice 0 half;
     if half < n then Faults.fs_op ("write-rest " ^ tmp);
     write_slice half (n - half);
     Faults.fs_op ("fsync " ^ tmp);
     Unix.fsync fd;
     Unix.close fd
   with
   | Faults.Crashed _ as e ->
     (* Simulated process death: the kernel reclaims the descriptor
        and nothing else runs — the partial temp file stays. *)
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e
   | e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Faults.fs_op ("rename " ^ path);
  Sys.rename tmp path;
  Faults.fs_op ("fsync-dir " ^ Filename.dirname path);
  fsync_dir (Filename.dirname path)

let check_name what s =
  if s = "" || String.exists (fun c -> c = ' ' || c = ':' || c = '\n' || c = '\t' || c = '/') s then
    invalid_arg (Printf.sprintf "Store: %s name %S must be non-empty without spaces, colons or slashes" what s)

(* The snapshot counter's durable home: a one-line [serial] file next
   to the manifest, committed (atomically, before the old manifest is
   even touched) at the start of every save.  A save that crashes at
   any later point — including the torn window where the manifest has
   been removed but the new one is not yet committed — therefore never
   resets the counter: the next save reads the serial file and keeps
   counting.  The manifest scan below is only a fallback for stores
   written before the serial file existed. *)
let serial_path dir = Filename.concat (subdir dir) "serial"

let read_serial path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | l -> (match int_of_string_opt (String.trim l) with Some n when n >= 0 -> Some n | _ -> None)
        | exception End_of_file -> None)

(* The previous save's snapshot counter, scanned with a plain line
   match (no full parse: the old manifest may be torn or corrupt, and
   a save must still go through — it starts a fresh history then). *)
let scan_snapshot path =
  if not (Sys.file_exists path) then None
  else
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let found = ref None in
          (try
             while !found = None do
               match String.split_on_char ' ' (input_line ic) with
               | [ "snapshot"; n ] -> found := int_of_string_opt n
               | _ -> ()
             done
           with End_of_file -> ());
          !found)
    with
    | Some n when n >= 0 -> Some n
    | Some _ | None -> None
    | exception Sys_error _ -> None

let save ~dir ~key ~config ~space ~relations =
  List.iter
    (fun r ->
      check_name "relation" (Relation.name r);
      if Relation.space r != space then invalid_arg "Store.save: relation from a different space")
    relations;
  let names = List.map Relation.name relations in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Store.save: duplicate relation names";
  List.iter
    (fun (k, v) ->
      check_name "config" k;
      if String.contains v '\n' then invalid_arg "Store.save: config value contains newline")
    config;
  let doms = Space.domains space in
  List.iter (fun d -> check_name "domain" (Domain.name d)) doms;
  (* Render every data file up front so the checksums the manifest
     records are over the exact bytes written. *)
  let maps =
    List.filter_map
      (fun d ->
        match Domain.element_names d with
        | None -> None
        | Some names ->
          let b = Buffer.create 1024 in
          for i = 0 to Domain.size d - 1 do
            Buffer.add_string b names.(i);
            Buffer.add_char b '\n'
          done;
          Some (Domain.name d, Buffer.contents b))
      doms
  in
  let dump = Bdd.serialize (Space.man space) (List.map Relation.bdd relations) in
  let checksums =
    (bdd_file, String.length dump, Crc32.string dump)
    :: List.map (fun (dn, content) -> (map_file dn, String.length content, Crc32.string content)) maps
  in
  let mpath = manifest_path dir in
  mkdir_p (subdir dir);
  (* Monotonic per-directory save counter: the follower swap protocol
     distinguishes "same key, re-saved" (snapshot bumps) from "nothing
     changed" (identical key and snapshot).  Allocated from the
     dedicated serial file (max'd against the manifest for stores
     predating it) and committed durably *before* the old manifest is
     invalidated, so a save torn at any later crash point cannot make
     the counter go backwards. *)
  let snapshot =
    let prev =
      List.fold_left
        (fun acc o -> match o with Some n -> max acc n | None -> acc)
        0
        [ read_serial (serial_path dir); scan_snapshot mpath ]
    in
    prev + 1
  in
  write_atomic (serial_path dir) (string_of_int snapshot ^ "\n");
  let manifest =
    let b = Buffer.create 1024 in
    Printf.bprintf b "whalelam-store %d\n" format_version;
    Printf.bprintf b "key %s\n" key;
    Printf.bprintf b "snapshot %d\n" snapshot;
    List.iter (fun (k, v) -> Printf.bprintf b "config %s %s\n" k v) config;
    Printf.bprintf b "nvars %d\n" (Space.num_vars space);
    List.iter
      (fun d ->
        Printf.bprintf b "domain %s %d %d\n" (Domain.name d) (Domain.size d)
          (if Domain.element_names d = None then 0 else 1))
      doms;
    List.iter
      (fun d ->
        List.iter
          (fun (blk : Space.block) ->
            Printf.bprintf b "block %s %d %s\n" (Domain.name d) blk.Space.instance
              (String.concat " " (List.map string_of_int (Array.to_list blk.Space.bits))))
          (Space.instances space d))
      doms;
    List.iter
      (fun r ->
        Printf.bprintf b "relation %s %s\n" (Relation.name r)
          (String.concat " "
             (List.map
                (fun (a : Relation.attr) ->
                  Printf.sprintf "%s:%s:%d" a.Relation.attr_name
                    (Domain.name a.Relation.block.Space.dom)
                    a.Relation.block.Space.instance)
                (Relation.attrs r))))
      relations;
    List.iter
      (fun (file, size, crc) -> Printf.bprintf b "checksum %s %d %s\n" file size (Crc32.to_hex crc))
      checksums;
    (* Self-checksum over every preceding byte: a flipped bit anywhere
       above is caught before any field is believed. *)
    Printf.bprintf b "selfsum %s\n" (Crc32.to_hex (Crc32.string (Buffer.contents b)));
    Buffer.add_string b "end\n";
    Buffer.contents b
  in
  (* Invalidate any previous store before touching its data files, and
     make the invalidation durable: a crash after this point must read
     as "no store", never as the old manifest over new data files. *)
  if Sys.file_exists mpath then begin
    Faults.fs_op ("remove " ^ mpath);
    (try Sys.remove mpath with Sys_error _ -> ());
    Faults.fs_op ("fsync-dir " ^ subdir dir);
    fsync_dir (subdir dir)
  end;
  List.iter (fun (dn, content) -> write_atomic (map_path dir dn) content) maps;
  write_atomic (bdd_path dir) dump;
  (* Manifest written last = the commit point of the whole store. *)
  write_atomic mpath manifest

(* --- Manifest parsing --- *)

let read_lines path =
  let ic = try open_in path with Sys_error msg -> bad ~path ~line:0 "%s" msg in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

type manifest = {
  m_key : string;
  m_snapshot : int;
  m_config : (string * string) list;
  m_nvars : int;
  m_domains : (string * int * bool) list; (* name, size, has map *)
  m_blocks : (string * int * int array) list; (* dom, instance, bits *)
  m_relations : (string * (string * string * int) list) list; (* rel, attrs (name, dom, instance) *)
  m_checksums : (string * int * int) list; (* file, size, crc32 *)
}

let split_ws s = String.split_on_char ' ' s |> List.filter (fun f -> f <> "")

(* The manifest self-checksum: the second-to-last line must be
   [selfsum <crc>] where <crc> is the CRC-32 of every line before it
   (each with its '\n' back).  Verified before any field is
   interpreted, so a corrupted manifest is one uniform structured
   error rather than whichever field-level symptom the flip causes. *)
let verify_selfsum path lines =
  let arr = Array.of_list lines in
  let n = Array.length arr in
  if n < 3 then bad ~path ~line:n "manifest too short (%d lines)" n;
  match split_ws arr.(n - 2) with
  | [ "selfsum"; hex ] -> (
    match Crc32.of_hex hex with
    | None -> bad ~path ~line:(n - 1) "malformed selfsum value %s" hex
    | Some recorded ->
      let b = Buffer.create 512 in
      for i = 0 to n - 3 do
        Buffer.add_string b arr.(i);
        Buffer.add_char b '\n'
      done;
      let actual = Crc32.string (Buffer.contents b) in
      if actual <> recorded then
        bad ~path ~line:(n - 1)
          "manifest checksum mismatch: selfsum says crc32 %s, content is %s (corrupt manifest)"
          (Crc32.to_hex recorded) (Crc32.to_hex actual))
  | _ -> bad ~path ~line:(n - 1) "missing selfsum line before the end trailer (truncated manifest)"

let parse_manifest path =
  let lines = read_lines path in
  let int_field ~line what s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> v
    | Some _ | None -> bad ~path ~line "%s: not a non-negative integer: %s" what s
  in
  (match lines with
  | first :: _ when first = Printf.sprintf "whalelam-store %d" format_version -> ()
  | first :: _ -> bad ~path ~line:1 "unsupported store format: %s" first
  | [] -> bad ~path ~line:1 "empty manifest");
  (match List.rev lines with
  | "end" :: _ -> ()
  | _ -> bad ~path ~line:(List.length lines) "missing end trailer (truncated manifest)");
  verify_selfsum path lines;
  let key = ref None
  and snapshot = ref None
  and config = ref []
  and nvars = ref None
  and domains = ref []
  and blocks = ref []
  and relations = ref []
  and checksums = ref [] in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      if i > 0 && line <> "end" then
        match split_ws line with
        | [ "key"; k ] -> key := Some k
        | [ "snapshot"; n ] -> snapshot := Some (int_field ~line:line_no "snapshot" n)
        | "config" :: k :: _ ->
          (* The value is everything after the key, spaces included. *)
          let prefix = "config " ^ k ^ " " in
          let v =
            if String.length line >= String.length prefix then
              String.sub line (String.length prefix) (String.length line - String.length prefix)
            else ""
          in
          config := (k, v) :: !config
        | [ "nvars"; n ] -> nvars := Some (int_field ~line:line_no "nvars" n)
        | [ "domain"; name; size; mapped ] ->
          domains := (name, int_field ~line:line_no "domain size" size, mapped = "1") :: !domains
        | "block" :: dname :: inst :: bits ->
          blocks :=
            (dname, int_field ~line:line_no "instance" inst,
             Array.of_list (List.map (int_field ~line:line_no "bit") bits))
            :: !blocks
        | "relation" :: rname :: attrs ->
          let parse_attr spec =
            match String.split_on_char ':' spec with
            | [ a; d; inst ] -> (a, d, int_field ~line:line_no "attr instance" inst)
            | _ -> bad ~path ~line:line_no "malformed attribute spec %s" spec
          in
          relations := (rname, List.map parse_attr attrs) :: !relations
        | [ "checksum"; file; size; crc ] -> (
          match Crc32.of_hex crc with
          | Some c -> checksums := (file, int_field ~line:line_no "checksum size" size, c) :: !checksums
          | None -> bad ~path ~line:line_no "malformed checksum value %s" crc)
        | [ "selfsum"; _ ] -> () (* verified up front by [verify_selfsum] *)
        | _ -> bad ~path ~line:line_no "unrecognized manifest line: %s" line)
    lines;
  let require what = function
    | Some v -> v
    | None -> bad ~path ~line:0 "manifest is missing its %s line" what
  in
  {
    m_key = require "key" !key;
    m_snapshot = require "snapshot" !snapshot;
    m_config = List.rev !config;
    m_nvars = require "nvars" !nvars;
    m_domains = List.rev !domains;
    m_blocks = List.rev !blocks;
    m_relations = List.rev !relations;
    m_checksums = List.rev !checksums;
  }

let exists ~dir = Sys.file_exists (manifest_path dir)

let read_key ~dir =
  if not (exists ~dir) then None
  else
    match parse_manifest (manifest_path dir) with
    | m -> Some m.m_key
    | exception Solver_error.Error _ -> None

(* The (key, snapshot) pair is the identity followers watch: equal
   pairs mean the manifest describes the same committed save. *)
let read_ident ~dir =
  if not (exists ~dir) then None
  else
    match parse_manifest (manifest_path dir) with
    | m -> Some (m.m_key, m.m_snapshot)
    | exception Solver_error.Error _ -> None

let read_snapshot ~dir = Option.map snd (read_ident ~dir)

let read_file path =
  let ic = try open_in_bin path with Sys_error msg -> bad ~path ~line:0 "%s" msg in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Read a data file and verify it against the manifest's recorded size
   and CRC-32 before a single byte of it is interpreted. *)
let verified_read ~mpath m dir file =
  let path = Filename.concat (subdir dir) file in
  match List.find_opt (fun (f, _, _) -> f = file) m.m_checksums with
  | None -> bad ~path:mpath ~line:0 "no checksum recorded for %s" file
  | Some (_, size, crc) ->
    let data = read_file path in
    if String.length data <> size then
      bad ~path ~line:0 "size mismatch: manifest says %d bytes, file has %d (corrupt or torn write)" size
        (String.length data);
    let actual = Crc32.string data in
    if actual <> crc then
      bad ~path ~line:0 "checksum mismatch: manifest says crc32 %s, content is %s (corrupt store)"
        (Crc32.to_hex crc) (Crc32.to_hex actual);
    data

let lines_of_string s =
  match List.rev (String.split_on_char '\n' s) with
  | "" :: rest -> List.rev rest (* drop the final newline's empty split *)
  | _ -> String.split_on_char '\n' s

let load ~dir =
  let mpath = manifest_path dir in
  if not (Sys.file_exists mpath) then bad ~path:mpath ~line:0 "no store at %s" dir;
  let m = parse_manifest mpath in
  let space = Space.create () in
  let domains =
    List.map
      (fun (name, size, mapped) ->
        let element_names =
          if not mapped then None
          else begin
            let path = map_path dir name in
            let names = Array.of_list (lines_of_string (verified_read ~mpath m dir (map_file name))) in
            if Array.length names < size then
              bad ~path ~line:(Array.length names) "map has %d entries, domain %s needs %d" (Array.length names)
                name size;
            Some names
          end
        in
        (name, Domain.make ?element_names ~name ~size ()))
      m.m_domains
  in
  let find_domain ~line name =
    match List.assoc_opt name domains with
    | Some d -> d
    | None -> bad ~path:mpath ~line "unknown domain %s" name
  in
  let blocks = Hashtbl.create 16 in
  List.iter
    (fun (dname, instance, bits) ->
      let d = find_domain ~line:0 dname in
      let b =
        try Space.restore_block space d ~instance ~bits
        with Invalid_argument msg -> bad ~path:mpath ~line:0 "%s" msg
      in
      Hashtbl.replace blocks (dname, instance) b)
    m.m_blocks;
  if Space.num_vars space > m.m_nvars then
    bad ~path:mpath ~line:0 "blocks use %d variables but nvars says %d" (Space.num_vars space) m.m_nvars;
  Bdd.extend_vars (Space.man space) m.m_nvars;
  let rels =
    List.map
      (fun (rname, attr_specs) ->
        let attrs =
          List.map
            (fun (aname, dname, instance) ->
              match Hashtbl.find_opt blocks (dname, instance) with
              | Some b -> { Relation.attr_name = aname; block = b }
              | None -> bad ~path:mpath ~line:0 "relation %s: no block %s#%d" rname dname instance)
            attr_specs
        in
        (rname, Relation.make space ~name:rname attrs))
      m.m_relations
  in
  let bpath = bdd_path dir in
  let roots = Bdd.deserialize ~source:bpath (Space.man space) (verified_read ~mpath m dir bdd_file) in
  if List.length roots <> List.length rels then
    bad ~path:bpath ~line:0 "dump has %d roots, manifest lists %d relations" (List.length roots)
      (List.length rels);
  List.iter2 (fun (_, r) root -> Relation.set_bdd r root) rels roots;
  {
    st_key = m.m_key;
    st_snapshot = m.m_snapshot;
    st_config = m.m_config;
    st_space = space;
    st_domains = domains;
    st_rels = rels;
  }

(* --- Verification and repair --- *)

type check = { chk_name : string; chk_ok : bool; chk_detail : string }

let verify ?(structural = true) ~dir () =
  let checks = ref [] in
  let push name ok detail = checks := { chk_name = name; chk_ok = ok; chk_detail = detail } :: !checks in
  let mpath = manifest_path dir in
  if not (Sys.file_exists mpath) then push "manifest" false (Printf.sprintf "no store at %s" dir)
  else begin
    (match parse_manifest mpath with
    | exception Solver_error.Error e -> push "manifest" false (Solver_error.to_string e)
    | m ->
      push "manifest" true
        (Printf.sprintf "key %s, %d relations, %d checksummed files" m.m_key (List.length m.m_relations)
           (List.length m.m_checksums));
      List.iter
        (fun (file, _, _) ->
          match verified_read ~mpath m dir file with
          | exception Solver_error.Error e -> push file false (Solver_error.to_string e)
          | data -> push file true (Printf.sprintf "crc32 %s, %d bytes" (Crc32.to_hex (Crc32.string data)) (String.length data)))
        m.m_checksums);
    if structural && List.for_all (fun c -> c.chk_ok) !checks then
      match load ~dir with
      | exception Solver_error.Error e -> push "structural load" false (Solver_error.to_string e)
      | exception e -> push "structural load" false (Printexc.to_string e)
      | st ->
        push "structural load" true
          (Printf.sprintf "%d relations, %d live BDD nodes" (List.length st.st_rels)
             (Bdd.live_nodes (Space.man st.st_space)))
  end;
  List.rev !checks

let quarantine ~dir =
  let sd = subdir dir in
  if not (Sys.file_exists sd) then None
  else begin
    let rec fresh i =
      let cand = Printf.sprintf "%s.broken.%d" sd i in
      if Sys.file_exists cand then fresh (i + 1) else cand
    in
    let dest = fresh 1 in
    Faults.fs_op ("rename " ^ dest);
    Sys.rename sd dest;
    fsync_dir dir;
    Some dest
  end

let key t = t.st_key
let snapshot t = t.st_snapshot
let config t = t.st_config
let config_value t k = List.assoc_opt k t.st_config
let space t = t.st_space
let domains t = List.map snd t.st_domains
let domain t name = List.assoc_opt name t.st_domains
let relations t = List.map snd t.st_rels
let find t name = List.assoc_opt name t.st_rels
