(* On-disk results database: domains + variable layout + relation BDDs.

   The manifest is a small line-oriented text file; the BDD payload is
   one Bdd.serialize dump whose roots are the relations in manifest
   order.  Write protocol for crash safety: every file goes through
   temp + rename, data files are written before the manifest, and an
   existing manifest is removed first when overwriting — the manifest's
   presence is the commit point of the whole store. *)

type t = {
  st_key : string;
  st_config : (string * string) list;
  st_space : Space.t;
  st_domains : (string * Domain.t) list;
  st_rels : (string * Relation.t) list; (* manifest order *)
}

let format_version = 1

let subdir dir = Filename.concat dir "store"
let manifest_path dir = Filename.concat (subdir dir) "manifest"
let bdd_path dir = Filename.concat (subdir dir) "relations.bdd"
let map_path dir dom_name = Filename.concat (subdir dir) (dom_name ^ ".map")

let bad ~path ~line fmt = Solver_error.raise_bad_input ~file:path ~line fmt

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.is_directory path -> ()
  end

(* Atomic write: the destination either keeps its old content or gets
   the complete new content, never a prefix. *)
let write_atomic path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let check_name what s =
  if s = "" || String.exists (fun c -> c = ' ' || c = ':' || c = '\n' || c = '\t' || c = '/') s then
    invalid_arg (Printf.sprintf "Store: %s name %S must be non-empty without spaces, colons or slashes" what s)

let save ~dir ~key ~config ~space ~relations =
  List.iter
    (fun r ->
      check_name "relation" (Relation.name r);
      if Relation.space r != space then invalid_arg "Store.save: relation from a different space")
    relations;
  let names = List.map Relation.name relations in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Store.save: duplicate relation names";
  List.iter
    (fun (k, v) ->
      check_name "config" k;
      if String.contains v '\n' then invalid_arg "Store.save: config value contains newline")
    config;
  let doms = Space.domains space in
  mkdir_p (subdir dir);
  (* Invalidate any previous store before touching its data files. *)
  (try Sys.remove (manifest_path dir) with Sys_error _ -> ());
  List.iter
    (fun d ->
      check_name "domain" (Domain.name d);
      match Domain.element_names d with
      | None -> ()
      | Some names ->
        write_atomic (map_path dir (Domain.name d)) (fun oc ->
            for i = 0 to Domain.size d - 1 do
              output_string oc names.(i);
              output_char oc '\n'
            done))
    doms;
  let dump = Bdd.serialize (Space.man space) (List.map Relation.bdd relations) in
  write_atomic (bdd_path dir) (fun oc -> output_string oc dump);
  write_atomic (manifest_path dir) (fun oc ->
      Printf.fprintf oc "whalelam-store %d\n" format_version;
      Printf.fprintf oc "key %s\n" key;
      List.iter (fun (k, v) -> Printf.fprintf oc "config %s %s\n" k v) config;
      Printf.fprintf oc "nvars %d\n" (Space.num_vars space);
      List.iter
        (fun d ->
          Printf.fprintf oc "domain %s %d %d\n" (Domain.name d) (Domain.size d)
            (if Domain.element_names d = None then 0 else 1))
        doms;
      List.iter
        (fun d ->
          List.iter
            (fun (b : Space.block) ->
              Printf.fprintf oc "block %s %d %s\n" (Domain.name d) b.Space.instance
                (String.concat " " (List.map string_of_int (Array.to_list b.Space.bits))))
            (Space.instances space d))
        doms;
      List.iter
        (fun r ->
          Printf.fprintf oc "relation %s %s\n" (Relation.name r)
            (String.concat " "
               (List.map
                  (fun (a : Relation.attr) ->
                    Printf.sprintf "%s:%s:%d" a.Relation.attr_name
                      (Domain.name a.Relation.block.Space.dom)
                      a.Relation.block.Space.instance)
                  (Relation.attrs r))))
        relations;
      output_string oc "end\n")

(* --- Manifest parsing --- *)

let read_lines path =
  let ic = try open_in path with Sys_error msg -> bad ~path ~line:0 "%s" msg in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

type manifest = {
  m_key : string;
  m_config : (string * string) list;
  m_nvars : int;
  m_domains : (string * int * bool) list; (* name, size, has map *)
  m_blocks : (string * int * int array) list; (* dom, instance, bits *)
  m_relations : (string * (string * string * int) list) list; (* rel, attrs (name, dom, instance) *)
}

let split_ws s = String.split_on_char ' ' s |> List.filter (fun f -> f <> "")

let parse_manifest path =
  let lines = read_lines path in
  let int_field ~line what s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> v
    | Some _ | None -> bad ~path ~line "%s: not a non-negative integer: %s" what s
  in
  (match lines with
  | first :: _ when first = Printf.sprintf "whalelam-store %d" format_version -> ()
  | first :: _ -> bad ~path ~line:1 "unsupported store format: %s" first
  | [] -> bad ~path ~line:1 "empty manifest");
  (match List.rev lines with
  | "end" :: _ -> ()
  | _ -> bad ~path ~line:(List.length lines) "missing end trailer (truncated manifest)");
  let key = ref None
  and config = ref []
  and nvars = ref None
  and domains = ref []
  and blocks = ref []
  and relations = ref [] in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      if i > 0 && line <> "end" then
        match split_ws line with
        | [ "key"; k ] -> key := Some k
        | "config" :: k :: _ ->
          (* The value is everything after the key, spaces included. *)
          let prefix = "config " ^ k ^ " " in
          let v =
            if String.length line >= String.length prefix then
              String.sub line (String.length prefix) (String.length line - String.length prefix)
            else ""
          in
          config := (k, v) :: !config
        | [ "nvars"; n ] -> nvars := Some (int_field ~line:line_no "nvars" n)
        | [ "domain"; name; size; mapped ] ->
          domains := (name, int_field ~line:line_no "domain size" size, mapped = "1") :: !domains
        | "block" :: dname :: inst :: bits ->
          blocks :=
            (dname, int_field ~line:line_no "instance" inst,
             Array.of_list (List.map (int_field ~line:line_no "bit") bits))
            :: !blocks
        | "relation" :: rname :: attrs ->
          let parse_attr spec =
            match String.split_on_char ':' spec with
            | [ a; d; inst ] -> (a, d, int_field ~line:line_no "attr instance" inst)
            | _ -> bad ~path ~line:line_no "malformed attribute spec %s" spec
          in
          relations := (rname, List.map parse_attr attrs) :: !relations
        | _ -> bad ~path ~line:line_no "unrecognized manifest line: %s" line)
    lines;
  let require what = function
    | Some v -> v
    | None -> bad ~path ~line:0 "manifest is missing its %s line" what
  in
  {
    m_key = require "key" !key;
    m_config = List.rev !config;
    m_nvars = require "nvars" !nvars;
    m_domains = List.rev !domains;
    m_blocks = List.rev !blocks;
    m_relations = List.rev !relations;
  }

let exists ~dir = Sys.file_exists (manifest_path dir)

let read_key ~dir =
  if not (exists ~dir) then None
  else
    match parse_manifest (manifest_path dir) with
    | m -> Some m.m_key
    | exception Solver_error.Error _ -> None

let read_file path =
  let ic = try open_in_bin path with Sys_error msg -> bad ~path ~line:0 "%s" msg in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~dir =
  let mpath = manifest_path dir in
  if not (Sys.file_exists mpath) then bad ~path:mpath ~line:0 "no store at %s" dir;
  let m = parse_manifest mpath in
  let space = Space.create () in
  let domains =
    List.map
      (fun (name, size, mapped) ->
        let element_names =
          if not mapped then None
          else begin
            let path = map_path dir name in
            let names = Array.of_list (read_lines path) in
            if Array.length names < size then
              bad ~path ~line:(Array.length names) "map has %d entries, domain %s needs %d" (Array.length names)
                name size;
            Some names
          end
        in
        (name, Domain.make ?element_names ~name ~size ()))
      m.m_domains
  in
  let find_domain ~line name =
    match List.assoc_opt name domains with
    | Some d -> d
    | None -> bad ~path:mpath ~line "unknown domain %s" name
  in
  let blocks = Hashtbl.create 16 in
  List.iter
    (fun (dname, instance, bits) ->
      let d = find_domain ~line:0 dname in
      let b =
        try Space.restore_block space d ~instance ~bits
        with Invalid_argument msg -> bad ~path:mpath ~line:0 "%s" msg
      in
      Hashtbl.replace blocks (dname, instance) b)
    m.m_blocks;
  if Space.num_vars space > m.m_nvars then
    bad ~path:mpath ~line:0 "blocks use %d variables but nvars says %d" (Space.num_vars space) m.m_nvars;
  Bdd.extend_vars (Space.man space) m.m_nvars;
  let rels =
    List.map
      (fun (rname, attr_specs) ->
        let attrs =
          List.map
            (fun (aname, dname, instance) ->
              match Hashtbl.find_opt blocks (dname, instance) with
              | Some b -> { Relation.attr_name = aname; block = b }
              | None -> bad ~path:mpath ~line:0 "relation %s: no block %s#%d" rname dname instance)
            attr_specs
        in
        (rname, Relation.make space ~name:rname attrs))
      m.m_relations
  in
  let bpath = bdd_path dir in
  let roots = Bdd.deserialize ~source:bpath (Space.man space) (read_file bpath) in
  if List.length roots <> List.length rels then
    bad ~path:bpath ~line:0 "dump has %d roots, manifest lists %d relations" (List.length roots)
      (List.length rels);
  List.iter2 (fun (_, r) root -> Relation.set_bdd r root) rels roots;
  { st_key = m.m_key; st_config = m.m_config; st_space = space; st_domains = domains; st_rels = rels }

let key t = t.st_key
let config t = t.st_config
let config_value t k = List.assoc_opt k t.st_config
let space t = t.st_space
let domains t = List.map snd t.st_domains
let domain t name = List.assoc_opt name t.st_domains
let relations t = List.map snd t.st_rels
let find t name = List.assoc_opt name t.st_rels
