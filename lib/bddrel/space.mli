(** Physical BDD variable allocation.

    A [Space] owns a {!Bdd.man} and hands out {e blocks}: contiguous or
    interleaved groups of BDD variables encoding one attribute of one
    logical domain.  This is bddbddb's notion of {e physical domains}
    (V0, V1, C0, ... in the paper's §2.4.1 "attributes naming"
    optimization): a relation attribute is stored in a block, and join/
    rename costs depend on which blocks coincide.

    Variable ordering is fixed at allocation time.  Two layout policies
    are provided, because ordering is the paper's headline scalability
    lever (§2.4.2, §4.1):

    - {!alloc} appends a block after all existing variables;
    - {!alloc_interleaved} allocates several blocks of the same domain
      with their bits interleaved (bit i of every block adjacent).
      Interleaving instances of the same domain makes [equal_blocks],
      [replace] between them, and the context [add_const] relation
      linear-size. *)

type t

type block = {
  dom : Domain.t;
  instance : int; (** 0 for V0, 1 for V1, ... *)
  bits : int array; (** BDD variable ids, least-significant first *)
}

val create :
  ?node_hint:int ->
  ?cache_bits:int ->
  ?page_bits:int ->
  ?mem_cap_bytes:int ->
  ?spill_path:string ->
  ?gc_mode:Bdd.gc_mode ->
  unit ->
  t
(** [node_hint]/[cache_bits] size the manager as in {!Bdd.create}.
    [page_bits] sets the arena page size; [mem_cap_bytes] caps resident
    node-page bytes, spilling cold pages to [spill_path] (default a
    temp file) — see {!Bdd.create}'s [max_bytes].  [gc_mode] defaults
    to {!Bdd.Compact}: solver spaces retain every handle behind
    registered roots or remap hooks, so collections renumber and
    cluster survivors by variable level (the locality that makes the
    byte cap workable and speeds up uncapped solves). *)

val man : t -> Bdd.man

val alloc : t -> Domain.t -> block
(** Allocate the next instance of the domain after all existing
    variables (sequential layout). *)

val alloc_interleaved : t -> Domain.t -> int -> block array
(** [alloc_interleaved s d k] allocates instances of [d] (numbered from
    the next free instance index) with interleaved bits. *)

val instances : t -> Domain.t -> block list
(** Blocks allocated so far for this domain, in instance order. *)

val domains : t -> Domain.t list
(** Every domain with at least one allocated block, sorted by name —
    the schema a persisted {!Store} records. *)

val restore_block : t -> Domain.t -> instance:int -> bits:int array -> block
(** Re-register a block read back from a persisted store, with its
    exact saved variable ids (no fresh allocation: the on-disk BDD dump
    is only meaningful under the saved variable numbering).  Blocks of
    a domain must be restored in instance order; the variable space is
    extended past the highest bit.  Mixing [restore_block] with
    {!alloc} on the same space is not supported. *)

val instance : t -> Domain.t -> int -> block
(** [instance s d i] returns instance [i], allocating sequentially up
    to it if needed. *)

val num_vars : t -> int

val cache_stats_by_class : t -> (string * int * int) list
(** Per-operation-class (name, hits, misses) of the underlying
    manager's op cache — see {!Bdd.cache_stats_by_class}. *)

val cache_hit_rate : t -> float

(** {2 Block-level conveniences} *)

val cube : t -> block -> Bdd.t
(** Conjunction of the block's variables, for quantification. *)

val cube_of_blocks : t -> block list -> Bdd.t

val const : t -> block -> int -> Bdd.t
(** Minterm of one element value in the block. *)

val equal_blocks : t -> block -> block -> Bdd.t
val range : t -> block -> lo:int -> hi:int -> Bdd.t
val add_const : t -> src:block -> dst:block -> delta:int -> Bdd.t

val renaming : t -> (block * block) list -> Bdd.varmap
(** A variable map renaming each [(src, dst)] block pair, bitwise. *)

val value_of_bits : bool array -> offset:int -> width:int -> int
(** Decode an assignment slice (LSB first) into an element value. *)

(** {2 Frozen spaces}

    An immutable snapshot of the whole space — the underlying
    {!Bdd.frozen} plus the block layout — shareable across domains for
    parallel warm-query evaluation.  Blocks are immutable, so block
    values taken before the freeze (e.g. inside relation attributes)
    remain valid against the frozen space. *)

type frozen

val freeze : t -> frozen
(** Snapshot the space.  The live space stays usable; its later
    mutations do not affect the snapshot.  Handles live at freeze time
    keep their meaning (see {!Bdd.freeze}). *)

val frozen_bdd : frozen -> Bdd.frozen

val frozen_bytes : frozen -> int
(** Resident heap footprint of the snapshot (see {!Bdd.frozen_bytes}). *)

val frozen_num_vars : frozen -> int
val frozen_instances : frozen -> Domain.t -> block list
val frozen_domains : frozen -> Domain.t list

val eval_ctx : ?node_hint:int -> ?cache_bits:int -> frozen -> Bdd.ctx
(** A fresh per-domain evaluation context over the snapshot. *)

val const_ctx : Bdd.ctx -> block -> int -> Bdd.t
(** {!const} against a ctx: minterm of one element value. *)

val cube_of_blocks_ctx : Bdd.ctx -> block list -> Bdd.t
