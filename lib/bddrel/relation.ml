type attr = { attr_name : string; block : Space.block }

type t = {
  rel_name : string;
  sp : Space.t;
  attributes : attr array;
  root : Bdd.t ref;
  mutable ver : int;
  mutable disposed : bool;
}

let blocks_disjoint (a : Space.block) (b : Space.block) = a.Space.bits != b.Space.bits && a.Space.bits <> b.Space.bits

let make sp ~name attrs =
  let arr = Array.of_list attrs in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then begin
            if a.attr_name = b.attr_name then invalid_arg (Printf.sprintf "Relation.make %s: duplicate attribute %s" name a.attr_name);
            if not (blocks_disjoint a.block b.block) then
              invalid_arg (Printf.sprintf "Relation.make %s: attributes %s and %s share a block" name a.attr_name b.attr_name)
          end)
        arr)
    arr;
  let root = ref Bdd.bdd_false in
  Bdd.add_root (Space.man sp) root;
  { rel_name = name; sp; attributes = arr; root; ver = 0; disposed = false }

let name r = r.rel_name
let space r = r.sp
let attrs r = Array.to_list r.attributes
let arity r = Array.length r.attributes

let find_attr r n =
  match Array.find_opt (fun a -> a.attr_name = n) r.attributes with
  | Some a -> a
  | None -> raise Not_found

let bdd r = !(r.root)

let set_bdd r b =
  if b <> !(r.root) then begin
    r.root := b;
    r.ver <- r.ver + 1
  end

let version r = r.ver

let dispose r =
  if not r.disposed then begin
    Bdd.remove_root (Space.man r.sp) r.root;
    r.root := Bdd.bdd_false;
    r.disposed <- true
  end

let man r = Space.man r.sp

let tuple_bdd r values =
  if Array.length values <> Array.length r.attributes then invalid_arg "Relation: tuple arity mismatch";
  let acc = ref Bdd.bdd_true in
  Array.iteri (fun i a -> acc := Bdd.mk_and (man r) !acc (Space.const r.sp a.block values.(i))) r.attributes;
  !acc

let add_tuple r values = set_bdd r (Bdd.mk_or (man r) !(r.root) (tuple_bdd r values))
let mem_tuple r values = Bdd.mk_and (man r) !(r.root) (tuple_bdd r values) <> Bdd.bdd_false

(* Bulk tuple load.  OR-ing tuple cubes into the root one at a time
   rebuilds an ever-growing BDD once per tuple, and every union walks
   structure the variable order does not share with the cube —
   quadratic-ish on big inputs.  Instead: write each tuple as its
   bit row in global variable order, sort the rows, and build the BDD
   as a trie aligned with that order, bottom-up.  Every [mk_ite]
   constructs one node over already-built children (the branch
   variable sits above both), so the whole load is linear in trie
   nodes.  The intermediates are unrooted, which is safe: GC only runs
   when asked ([Bdd.gc]), never inside an operation. *)
let set_tuples r tuples =
  match tuples with
  | [] -> ()
  | _ ->
    let m = man r in
    (* (variable, attribute index, bit index), globally order-sorted. *)
    let slots =
      Array.of_list
        (List.sort compare
           (List.concat
              (List.mapi
                 (fun ai a -> Array.to_list (Array.mapi (fun bi v -> (v, ai, bi)) a.block.Space.bits))
                 (Array.to_list r.attributes))))
    in
    let nbits = Array.length slots in
    let nattrs = Array.length r.attributes in
    let row values =
      if Array.length values <> nattrs then invalid_arg "Relation: tuple arity mismatch";
      Array.iteri
        (fun i a ->
          if values.(i) < 0 || values.(i) >= Domain.size a.block.Space.dom then
            invalid_arg (Printf.sprintf "Relation %s: %d out of range for %s" r.rel_name values.(i) a.attr_name))
        r.attributes;
      Array.init nbits (fun j ->
          let _, ai, bi = slots.(j) in
          (values.(ai) lsr bi) land 1 = 1)
    in
    let rows = List.sort_uniq compare (List.map row tuples) in
    let rec build depth rows =
      match rows with
      | [] -> Bdd.bdd_false
      | _ ->
        if depth = nbits then Bdd.bdd_true
        else
          let zeros, ones = List.partition (fun (rw : bool array) -> not rw.(depth)) rows in
          let lo = build (depth + 1) zeros and hi = build (depth + 1) ones in
          if lo = hi then lo
          else
            let v, _, _ = slots.(depth) in
            Bdd.mk_ite m (Bdd.ithvar m v) hi lo
    in
    set_bdd r (Bdd.mk_or m !(r.root) (build 0 rows))

let of_tuples sp ~name attrs tuples =
  let r = make sp ~name attrs in
  set_tuples r tuples;
  r

(* Sorted variable array covering all attributes, plus for each
   attribute and bit the index of that variable in the sorted array. *)
let var_layout r =
  let all = Array.concat (Array.to_list (Array.map (fun a -> a.block.Space.bits) r.attributes)) in
  let sorted = Array.copy all in
  Array.sort compare sorted;
  let pos = Hashtbl.create (Array.length sorted) in
  Array.iteri (fun i v -> Hashtbl.replace pos v i) sorted;
  let index = Array.map (fun a -> Array.map (fun v -> Hashtbl.find pos v) a.block.Space.bits) r.attributes in
  (sorted, index)

let iter_tuples r yield =
  let sorted, index = var_layout r in
  let n_attrs = Array.length r.attributes in
  Bdd.iter_sat (man r) ~vars:sorted
    (fun assignment ->
      let tuple = Array.make n_attrs 0 in
      let in_range = ref true in
      for i = 0 to n_attrs - 1 do
        let bits = index.(i) in
        let v = ref 0 in
        for b = Array.length bits - 1 downto 0 do
          v := (!v * 2) lor if assignment.(bits.(b)) then 1 else 0
        done;
        tuple.(i) <- !v;
        (* Assignments encoding values beyond the domain size are
           unreachable if writers respect Space.const's range check,
           but guard anyway. *)
        if !v >= Domain.size r.attributes.(i).block.Space.dom then in_range := false
      done;
      if !in_range then yield tuple)
    !(r.root)

let fold_tuples r ~init ~f =
  let acc = ref init in
  iter_tuples r (fun t -> acc := f !acc t);
  !acc

let tuples r = List.rev (fold_tuples r ~init:[] ~f:(fun acc t -> t :: acc))

let count r =
  let sorted, _ = var_layout r in
  Bdd.satcount (man r) ~vars:sorted !(r.root)

let count_big r =
  let sorted, _ = var_layout r in
  Bdd.satcount_big (man r) ~vars:sorted !(r.root)

let is_empty r = !(r.root) = Bdd.bdd_false

let same_schema a b =
  Array.length a.attributes = Array.length b.attributes
  && Array.for_all2 (fun x y -> x.attr_name = y.attr_name && x.block == y.block) a.attributes b.attributes

let with_bdd ?name src b =
  let r = make src.sp ~name:(Option.value name ~default:src.rel_name) (attrs src) in
  set_bdd r b;
  r

let copy ?name r = with_bdd ?name r !(r.root)

let union a b =
  if not (same_schema a b) then invalid_arg "Relation.union: schema mismatch";
  with_bdd a (Bdd.mk_or (man a) !(a.root) !(b.root))

let union_in_place dst src =
  if not (same_schema dst src) then invalid_arg "Relation.union_in_place: schema mismatch";
  set_bdd dst (Bdd.mk_or (man dst) !(dst.root) !(src.root))

let diff a b =
  if not (same_schema a b) then invalid_arg "Relation.diff: schema mismatch";
  with_bdd a (Bdd.mk_diff (man a) !(a.root) !(b.root))

let inter a b =
  if not (same_schema a b) then invalid_arg "Relation.inter: schema mismatch";
  with_bdd a (Bdd.mk_and (man a) !(a.root) !(b.root))

let equal a b =
  if not (same_schema a b) then invalid_arg "Relation.equal: schema mismatch";
  !(a.root) = !(b.root)

let select r attr_name v =
  let a = find_attr r attr_name in
  with_bdd r (Bdd.mk_and (man r) !(r.root) (Space.const r.sp a.block v))

let project r keep =
  let kept = List.map (fun n -> find_attr r n) keep in
  let away = List.filter (fun a -> not (List.exists (fun k -> k.attr_name = a.attr_name) kept)) (attrs r) in
  let cube = Space.cube_of_blocks r.sp (List.map (fun a -> a.block) away) in
  let b = Bdd.exist (man r) ~cube !(r.root) in
  let r' = make r.sp ~name:r.rel_name kept in
  set_bdd r' b;
  r'

let project_away r names =
  List.iter (fun n -> ignore (find_attr r n)) names;
  let keep = List.filter (fun a -> not (List.mem a.attr_name names)) (attrs r) in
  project r (List.map (fun a -> a.attr_name) keep)

let rename ?name r moves =
  let moved_old = List.map (fun (o, _, _) -> o) moves in
  List.iter (fun o -> ignore (find_attr r o)) moved_old;
  let new_attrs =
    Array.to_list
      (Array.map
         (fun a ->
           match List.find_opt (fun (o, _, _) -> o = a.attr_name) moves with
           | Some (_, n, blk) -> { attr_name = n; block = blk }
           | None -> a)
         r.attributes)
  in
  let pairs =
    List.filter_map
      (fun (o, _, blk) ->
        let old_attr = find_attr r o in
        if old_attr.block == blk then None else Some (old_attr.block, blk))
      moves
  in
  let b = if pairs = [] then !(r.root) else Bdd.replace (man r) (Space.renaming r.sp pairs) !(r.root) in
  let r' = make r.sp ~name:(Option.value name ~default:r.rel_name) new_attrs in
  set_bdd r' b;
  r'

let join_attrs a b =
  (* Shared attributes must agree on blocks; all blocks in the result
     must be pairwise distinct. *)
  let out = ref (attrs a) in
  List.iter
    (fun battr ->
      match List.find_opt (fun x -> x.attr_name = battr.attr_name) !out with
      | Some shared ->
        if shared.block != battr.block then
          invalid_arg (Printf.sprintf "Relation.join: attribute %s stored in different blocks" battr.attr_name)
      | None -> out := !out @ [ battr ])
    (attrs b);
  !out

let join a b =
  let out_attrs = join_attrs a b in
  let r = make a.sp ~name:(a.rel_name ^ "*" ^ b.rel_name) out_attrs in
  set_bdd r (Bdd.mk_and (man a) !(a.root) !(b.root));
  r

let compose a b away =
  let out_attrs = join_attrs a b in
  let away_attrs =
    List.map
      (fun n ->
        match List.find_opt (fun x -> x.attr_name = n) out_attrs with
        | Some x -> x
        | None -> invalid_arg (Printf.sprintf "Relation.compose: unknown attribute %s" n))
      away
  in
  let keep = List.filter (fun x -> not (List.mem x.attr_name away)) out_attrs in
  let cube = Space.cube_of_blocks a.sp (List.map (fun x -> x.block) away_attrs) in
  let r = make a.sp ~name:(a.rel_name ^ "*" ^ b.rel_name) keep in
  set_bdd r (Bdd.relprod (man a) ~cube !(a.root) !(b.root));
  r

(* --- Frozen relation handles ---------------------------------------

   A [frozen] is a relation value against a frozen space: name, attrs,
   root handle.  It is immutable and shareable across domains; the
   _ctx operations below mirror the live algebra but allocate only in
   the caller's ctx, so any number of domains can evaluate over the
   same frozen relations with no shared-state writes and no disposal
   bookkeeping (a ctx_reset reclaims everything at once). *)

type frozen = { fr_name : string; fr_attrs : attr array; fr_bdd : Bdd.t }

let freeze r = { fr_name = r.rel_name; fr_attrs = r.attributes; fr_bdd = !(r.root) }

let frozen_name fr = fr.fr_name
let frozen_attrs fr = Array.to_list fr.fr_attrs
let frozen_arity fr = Array.length fr.fr_attrs
let frozen_bdd fr = fr.fr_bdd

let frozen_find_attr fr n =
  match Array.find_opt (fun a -> a.attr_name = n) fr.fr_attrs with
  | Some a -> a
  | None -> raise Not_found

let select_ctx ctx fr attr_name v =
  let a = frozen_find_attr fr attr_name in
  { fr with fr_bdd = Bdd.ctx_and ctx fr.fr_bdd (Space.const_ctx ctx a.block v) }

let project_ctx ctx fr keep =
  let kept = List.map (fun n -> frozen_find_attr fr n) keep in
  let away =
    List.filter (fun a -> not (List.exists (fun k -> k.attr_name = a.attr_name) kept)) (frozen_attrs fr)
  in
  let cube = Space.cube_of_blocks_ctx ctx (List.map (fun a -> a.block) away) in
  { fr_name = fr.fr_name; fr_attrs = Array.of_list kept; fr_bdd = Bdd.ctx_exist ctx ~cube fr.fr_bdd }

let inter_ctx ctx a b =
  let same =
    Array.length a.fr_attrs = Array.length b.fr_attrs
    && Array.for_all2 (fun (x : attr) (y : attr) -> x.attr_name = y.attr_name && x.block == y.block) a.fr_attrs
         b.fr_attrs
  in
  if not same then invalid_arg "Relation.inter_ctx: schema mismatch";
  { a with fr_bdd = Bdd.ctx_and ctx a.fr_bdd b.fr_bdd }

(* Mirror of [var_layout] over the frozen attribute array. *)
let frozen_var_layout fr =
  let all = Array.concat (Array.to_list (Array.map (fun a -> a.block.Space.bits) fr.fr_attrs)) in
  let sorted = Array.copy all in
  Array.sort compare sorted;
  let pos = Hashtbl.create (Array.length sorted) in
  Array.iteri (fun i v -> Hashtbl.replace pos v i) sorted;
  let index = Array.map (fun a -> Array.map (fun v -> Hashtbl.find pos v) a.block.Space.bits) fr.fr_attrs in
  (sorted, index)

let iter_tuples_ctx ctx fr yield =
  let sorted, index = frozen_var_layout fr in
  let n_attrs = Array.length fr.fr_attrs in
  Bdd.ctx_iter_sat ctx ~vars:sorted
    (fun assignment ->
      let tuple = Array.make n_attrs 0 in
      let in_range = ref true in
      for i = 0 to n_attrs - 1 do
        let bits = index.(i) in
        let v = ref 0 in
        for b = Array.length bits - 1 downto 0 do
          v := (!v * 2) lor if assignment.(bits.(b)) then 1 else 0
        done;
        tuple.(i) <- !v;
        if !v >= Domain.size fr.fr_attrs.(i).block.Space.dom then in_range := false
      done;
      if !in_range then yield tuple)
    fr.fr_bdd

let tuples_ctx ctx fr =
  let acc = ref [] in
  iter_tuples_ctx ctx fr (fun t -> acc := t :: !acc);
  List.rev !acc

let count_ctx ctx fr =
  let sorted, _ = frozen_var_layout fr in
  Bdd.ctx_satcount ctx ~vars:sorted fr.fr_bdd
