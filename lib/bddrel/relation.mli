(** BDD-backed finite relations.

    A relation is a named tuple set over attributes, each stored in a
    {!Space.block}.  The BDD root is registered with the manager so the
    contents survive {!Bdd.gc}; call {!dispose} when a relation is no
    longer needed.

    Algebraic operations follow §2.4.1 of the paper: [join]
    (natural join), [project] (existential quantification), [rename]
    (block change via [Bdd.replace]), with [compose] fusing join and
    project through [Bdd.relprod]. *)

type t

type attr = { attr_name : string; block : Space.block }

val make : Space.t -> name:string -> attr list -> t
(** An empty relation.  Attribute names must be distinct; two
    attributes may not share a block. *)

val name : t -> string
val space : t -> Space.t
val attrs : t -> attr list
val arity : t -> int

val find_attr : t -> string -> attr
(** Raises [Not_found]. *)

val bdd : t -> Bdd.t
val set_bdd : t -> Bdd.t -> unit
val version : t -> int
(** Incremented every time the contents change; used for
    loop-invariant caching in the engine. *)

val dispose : t -> unit

(** {2 Tuples} *)

val add_tuple : t -> int array -> unit
(** Values in attribute order.  Raises [Invalid_argument] on arity or
    range errors. *)

val set_tuples : t -> int array list -> unit
(** Union a whole tuple list into the relation at once: tuples are
    written as bit rows in global variable order and the BDD is built
    bottom-up as a trie aligned with that order — much faster than
    repeated {!add_tuple} on large inputs. *)

val of_tuples : Space.t -> name:string -> attr list -> int array list -> t
val mem_tuple : t -> int array -> bool
val iter_tuples : t -> (int array -> unit) -> unit
(** The callback array is fresh for each tuple, in attribute order. *)

val fold_tuples : t -> init:'a -> f:('a -> int array -> 'a) -> 'a
val tuples : t -> int array list
val count : t -> float
val count_big : t -> Bignat.t
val is_empty : t -> bool

(** {2 Algebra}

    All results are freshly allocated relations; inputs are unchanged
    unless the operation says "in place". *)

val copy : ?name:string -> t -> t
val union : t -> t -> t
val union_in_place : t -> t -> unit
(** [union_in_place dst src]: requires identical attribute lists. *)

val diff : t -> t -> t
val inter : t -> t -> t
val equal : t -> t -> bool
val select : t -> string -> int -> t
(** [select r a v] keeps tuples whose attribute [a] equals [v]. *)

val project : t -> string list -> t
(** Keep exactly the named attributes (existentially quantifying the
    rest), in the order given. *)

val project_away : t -> string list -> t

val rename : ?name:string -> t -> (string * string * Space.block) list -> t
(** [rename r moves] simultaneously renames/moves attributes:
    [(old_name, new_name, new_block)].  Unlisted attributes are kept.
    All target blocks must be distinct from each other and from the
    kept attributes' blocks. *)

val join : t -> t -> t
(** Natural join on equal attribute names.  Shared attributes must
    live in the same block in both relations (the engine arranges
    this); attributes exclusive to either side must not collide. *)

val compose : t -> t -> string list -> t
(** [compose r1 r2 away] = [project_away (join r1 r2) away], fused via
    [Bdd.relprod]. *)

(** {2 Frozen relation handles}

    Immutable relation values against a {!Space.frozen}: shareable
    across domains, evaluated with the [_ctx] operations below, which
    allocate only in the caller's {!Bdd.ctx} — no disposal needed, a
    {!Bdd.ctx_reset} reclaims every intermediate at once. *)

type frozen

val freeze : t -> frozen
(** Capture the relation's current contents.  Take the capture {e
    after} {!Space.freeze}: the freeze-time collection may renumber
    handles (under {!Bdd.Compact}), and the relation's registered root
    is rewritten in place by that collection — a capture taken
    afterwards reads the renumbered handle, valid against the frozen
    space; one taken before would go stale. *)

val frozen_name : frozen -> string
val frozen_attrs : frozen -> attr list
val frozen_arity : frozen -> int
val frozen_bdd : frozen -> Bdd.t

val frozen_find_attr : frozen -> string -> attr
(** Raises [Not_found], like {!find_attr}. *)

val select_ctx : Bdd.ctx -> frozen -> string -> int -> frozen
val project_ctx : Bdd.ctx -> frozen -> string list -> frozen
val inter_ctx : Bdd.ctx -> frozen -> frozen -> frozen
val iter_tuples_ctx : Bdd.ctx -> frozen -> (int array -> unit) -> unit
val tuples_ctx : Bdd.ctx -> frozen -> int array list
val count_ctx : Bdd.ctx -> frozen -> float
