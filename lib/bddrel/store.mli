(** Persistent, content-addressed BDD relation store.

    A store is an on-disk results database for one solved analysis:
    the logical domains (with their element-name maps), the physical
    variable layout ({!Space.block}s), and a set of named relations —
    all relation BDDs saved as {e one} shared DAG ({!Bdd.serialize}),
    so structure repeated across relations is written once.

    Layout under the store root [dir]:

    {v
    dir/store/manifest        versioned text manifest (written last)
    dir/store/relations.bdd   shared-DAG dump, one root per relation
    dir/store/<dom>.map       element names, one per line (optional)
    v}

    The manifest carries a [key]: a content hash of the analysis
    inputs (program bytes + configuration), computed by the caller.  A
    re-run whose key matches can skip solving entirely and answer from
    the store.  Every file is written atomically (temp file + rename)
    and the manifest is written {e last} and removed {e first} when
    overwriting, so an interrupted save can never leave a manifest
    describing missing or mismatched data: the store is either
    complete or treated as absent/invalid.

    Load errors are reported as [Solver_error.Error (Bad_input _)]
    with the offending file and line (or byte offset for the BDD
    dump). *)

type t

val format_version : int

val save :
  dir:string ->
  key:string ->
  config:(string * string) list ->
  space:Space.t ->
  relations:Relation.t list ->
  unit
(** Persist [relations] (all owned by [space]) under [dir].  [config]
    is an informational key/value list recorded in the manifest
    (algorithm, query suffixes, scale, ...); keys must be
    space/newline-free, values newline-free.  Relation and domain
    names must be unique.  Overwrites any previous store at [dir]. *)

val exists : dir:string -> bool
(** A complete store (manifest present) exists at [dir]. *)

val read_key : dir:string -> string option
(** The saved key, reading only the manifest header; [None] when there
    is no complete, well-formed store at [dir].  Cheap: no BDD load. *)

val load : dir:string -> t
(** Rebuild the store into a fresh {!Space}: domains (with element
    names), blocks at their saved variable ids, and every relation
    BDD-exact.  Raises [Solver_error.Error (Bad_input _)] on a missing
    or malformed store. *)

val key : t -> string
val config : t -> (string * string) list
val config_value : t -> string -> string option
val space : t -> Space.t
val domains : t -> Domain.t list
val domain : t -> string -> Domain.t option
val relations : t -> Relation.t list
(** In manifest (= save) order. *)

val find : t -> string -> Relation.t option
