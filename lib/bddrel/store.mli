(** Persistent, content-addressed BDD relation store.

    A store is an on-disk results database for one solved analysis:
    the logical domains (with their element-name maps), the physical
    variable layout ({!Space.block}s), and a set of named relations —
    all relation BDDs saved as {e one} shared DAG ({!Bdd.serialize}),
    so structure repeated across relations is written once.

    Layout under the store root [dir]:

    {v
    dir/store/manifest        versioned text manifest (written last)
    dir/store/relations.bdd   shared-DAG dump, one root per relation
    dir/store/<dom>.map       element names, one per line (optional)
    v}

    The manifest carries a [key]: a content hash of the analysis
    inputs (program bytes + configuration), computed by the caller.  A
    re-run whose key matches can skip solving entirely and answer from
    the store.

    {b Crash safety (write barriers).}  Every file is written through
    temp + [fsync] + rename + directory [fsync], so a visible rename
    implies durable content; the manifest is written {e last} and
    removed {e first} (removal fsynced) when overwriting, so an
    interrupted or killed save can never leave a manifest describing
    missing or mismatched data: the store is either complete or
    treated as absent/invalid.  Every mutation is announced through
    {!Faults.fs_op} just before it happens, so the robustness suite
    can enumerate the crash points and simulate a kill at each one.

    {b Integrity (checksums).}  The manifest records a CRC-32 and byte
    size for each data file — verified on {!load} before a byte is
    interpreted — plus a [selfsum] CRC-32 of the manifest itself.  Any
    corruption is a structured checksum error naming the file and the
    expected/actual CRC, never a crash deep in [Bdd.deserialize].

    Load errors are reported as [Solver_error.Error (Bad_input _)]
    with the offending file and line (or byte offset for the BDD
    dump). *)

type t

val format_version : int

val save :
  dir:string ->
  key:string ->
  config:(string * string) list ->
  space:Space.t ->
  relations:Relation.t list ->
  unit
(** Persist [relations] (all owned by [space]) under [dir].  [config]
    is an informational key/value list recorded in the manifest
    (algorithm, query suffixes, scale, ...); keys must be
    space/newline-free, values newline-free.  Relation and domain
    names must be unique.  Overwrites any previous store at [dir]. *)

val exists : dir:string -> bool
(** A complete store (manifest present) exists at [dir]. *)

val manifest_path : string -> string
(** [manifest_path dir] is the manifest file's path under the store
    root [dir] — the single commit point of a save.  Followers [stat]
    it as a cheap has-anything-changed probe before reading. *)

val read_key : dir:string -> string option
(** The saved key, reading only the manifest header; [None] when there
    is no complete, well-formed store at [dir].  Cheap: no BDD load. *)

val read_snapshot : dir:string -> int option
(** The saved snapshot counter (see {!snapshot}); [None] when there is
    no complete, well-formed store at [dir].  Cheap: no BDD load. *)

val read_ident : dir:string -> (string * int) option
(** The [(key, snapshot)] identity pair of the committed store at
    [dir], or [None].  Two equal pairs describe the same save: this is
    what a follower daemon polls to decide whether to hot-swap. *)

val load : dir:string -> t
(** Rebuild the store into a fresh {!Space}: domains (with element
    names), blocks at their saved variable ids, and every relation
    BDD-exact.  Every data file's size and CRC-32 are verified against
    the manifest before it is parsed.  Raises
    [Solver_error.Error (Bad_input _)] on a missing or malformed
    store. *)

(** {2 Verification and repair} *)

type check = {
  chk_name : string;  (** ["manifest"], a data file name, or ["structural load"] *)
  chk_ok : bool;
  chk_detail : string;  (** human-readable outcome (sizes, CRCs, or the error) *)
}

val verify : ?structural:bool -> dir:string -> unit -> check list
(** Full health check, cheapest first: manifest parse (including its
    selfsum), per-file size + CRC-32, and — only when those pass — a
    complete structural load.  Never raises; a store is healthy iff
    every {!check} has [chk_ok = true].  The [ptacli store verify]
    subcommand prints this list.  [~structural:false] skips the final
    load (manifest + checksums only) — the cheap pre-check a follower
    runs before committing to a hot-swap load. *)

val quarantine : dir:string -> string option
(** Move a (presumably broken) store directory aside to
    [<dir>/store.broken.<n>] so the next save starts clean, returning
    the quarantine path, or [None] when there is nothing at [dir].
    The [ptacli store repair] subcommand drives this. *)

val key : t -> string

val snapshot : t -> int
(** Monotonic per-directory save counter, written as the manifest's
    [snapshot] line: each {!save} over the same directory records the
    previous counter plus one (1 for a fresh directory).  Unlike
    {!key} — a content hash of the analysis inputs — the snapshot
    distinguishes two saves of identical content, so followers and
    routers can assert exactly which save answered a query.  The
    counter lives in a dedicated [serial] file committed before the
    old manifest is invalidated, so it survives saves torn by a crash
    and never goes backwards over a directory's lifetime. *)

val config : t -> (string * string) list
val config_value : t -> string -> string option
val space : t -> Space.t
val domains : t -> Domain.t list
val domain : t -> string -> Domain.t option
val relations : t -> Relation.t list
(** In manifest (= save) order. *)

val find : t -> string -> Relation.t option
