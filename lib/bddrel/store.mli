(** Persistent, content-addressed BDD relation store.

    A store is an on-disk results database for one solved analysis:
    the logical domains (with their element-name maps), the physical
    variable layout ({!Space.block}s), and a set of named relations —
    all relation BDDs saved as {e one} shared DAG ({!Bdd.serialize}),
    so structure repeated across relations is written once.

    Layout under the store root [dir]:

    {v
    dir/store/manifest        versioned text manifest (written last)
    dir/store/relations.bdd   shared-DAG dump, one root per relation
    dir/store/<dom>.map       element names, one per line (optional)
    v}

    The manifest carries a [key]: a content hash of the analysis
    inputs (program bytes + configuration), computed by the caller.  A
    re-run whose key matches can skip solving entirely and answer from
    the store.

    {b Crash safety (write barriers).}  Every file is written through
    temp + [fsync] + rename + directory [fsync], so a visible rename
    implies durable content; the manifest is written {e last} and
    removed {e first} (removal fsynced) when overwriting, so an
    interrupted or killed save can never leave a manifest describing
    missing or mismatched data: the store is either complete or
    treated as absent/invalid.  Every mutation is announced through
    {!Faults.fs_op} just before it happens, so the robustness suite
    can enumerate the crash points and simulate a kill at each one.

    {b Integrity (checksums).}  The manifest records a CRC-32 and byte
    size for each data file — verified on {!load} before a byte is
    interpreted — plus a [selfsum] CRC-32 of the manifest itself.  Any
    corruption is a structured checksum error naming the file and the
    expected/actual CRC, never a crash deep in [Bdd.deserialize].

    Load errors are reported as [Solver_error.Error (Bad_input _)]
    with the offending file and line (or byte offset for the BDD
    dump). *)

type t

val format_version : int

val layer_format_version : int
(** Format of the delta-layer manifests ([layer.<n>.manifest]); the
    chain format evolves independently of the base store format. *)

val save :
  dir:string ->
  key:string ->
  config:(string * string) list ->
  space:Space.t ->
  relations:Relation.t list ->
  unit
(** Persist [relations] (all owned by [space]) under [dir].  [config]
    is an informational key/value list recorded in the manifest
    (algorithm, query suffixes, scale, ...); keys must be
    space/newline-free, values newline-free.  Relation and domain
    names must be unique.  Overwrites any previous store at [dir]. *)

val save_delta :
  dir:string ->
  key:string ->
  config:(string * string) list ->
  space:Space.t ->
  deltas:(string * Bdd.t * Bdd.t) list ->
  int
(** Append one delta layer to the chain at [dir] and return its index
    (1 for the first layer over a fresh base).  Each [(name, added,
    removed)] entry describes one relation's change against the
    current chain tip: on {!load} the fold is
    [rel := (rel \ removed) ∪ added], applied base-upward.  [key] and
    [config] describe the {e new} tip (a subsequent {!read_ident}
    reports them); [space] must carry the exact variable layout of the
    base store — the BDDs are meaningless under any other layout, and
    a layout change must go through a full {!save}.  Domains may have
    {e grown} within their bit widths (appended program entities): the
    layer records the final sizes and a full replacement element-name
    map for any mapped domain whose names changed.  The same write
    barriers as {!save} apply — serial first, data files next, the
    layer manifest last as the commit point — so a torn append leaves
    the previous tip serving unchanged.  An empty [deltas] list is
    legal and re-keys the tip (a byte-level program change with no
    semantic diff). *)

val compact : dir:string -> int
(** Squash the delta chain back to a single base: load the folded
    state, full-save it under the tip's key and config, and remove the
    (now orphaned) layer files.  Returns the number of layers
    squashed (0 = nothing to do).  Crash-safe: interrupted, the
    directory reads as either the old chain or the new base plus
    orphaned layers that {!load} ignores. *)

val exists : dir:string -> bool
(** A complete store (manifest present) exists at [dir]. *)

val manifest_path : string -> string
(** [manifest_path dir] is the manifest file's path under the store
    root [dir] — the single commit point of a save.  Followers [stat]
    it as a cheap has-anything-changed probe before reading. *)

val read_key : dir:string -> string option
(** The {e chain-tip} key — the topmost delta layer's key, or the base
    key when no layers exist — so a stale base can never masquerade as
    the current save.  Reads only manifest headers; [None] when there
    is no complete, well-formed store at [dir].  Cheap: no BDD load. *)

val read_snapshot : dir:string -> int option
(** The saved snapshot counter (see {!snapshot}); [None] when there is
    no complete, well-formed store at [dir].  Cheap: no BDD load. *)

val read_ident : dir:string -> (string * int) option
(** The [(key, snapshot)] identity pair of the committed {e chain tip}
    at [dir], or [None].  Two equal pairs describe the same state:
    this is what a follower daemon polls to decide whether to
    hot-swap.  Chain-aware: after a {!save_delta} the tip's key and
    snapshot are reported, so a stale base can never masquerade as
    current; a corrupt (not merely torn) chain reads as [None]. *)

val read_layers : dir:string -> int option
(** Number of committed delta layers above the base; [None] when there
    is no well-formed store (or the chain is corrupt). *)

val tip_stat : dir:string -> (int * float * int) list
(** [stat] triples (inode, mtime, size) of the base manifest followed
    by every consecutive layer manifest — the cheap
    has-anything-changed probe a follower compares between polls
    before paying for {!read_ident}.  Empty when there is no base
    manifest. *)

val load : dir:string -> t
(** Rebuild the store into a fresh {!Space}: domains (with element
    names), blocks at their saved variable ids, and every relation
    BDD-exact.  Every data file's size and CRC-32 are verified against
    the manifest before it is parsed.  Raises
    [Solver_error.Error (Bad_input _)] on a missing or malformed
    store. *)

val load_with : ?page_bits:int -> ?mem_cap_bytes:int -> dir:string -> unit -> t
(** {!load} with node-arena knobs: [page_bits]/[mem_cap_bytes]
    configure the rebuilt space's arena (see {!Space.create}); a
    capped load spills cold pages to a pid-named scratch file under
    [dir]'s store directory (not manifested — invisible to {!verify},
    debris at worst).  Every load first sweeps scratch files abandoned
    by dead processes ({!Bdd.sweep_stale_spills}), so a SIGKILLed
    capped load cannot leak disk space forever. *)

(** {2 Semantic certification marks}

    Byte-level integrity (checksums, write barriers) cannot tell a
    well-formed store holding a wrong answer from a right one.  An
    independent fixpoint check ([Pta.Certify]) can; these record its
    verdict in the manifest so followers can {e demand} certified
    snapshots. *)

val mark_certified : dir:string -> string * int
(** Record that a semantic certification vouched for the current chain
    tip: rewrites the base manifest — through the ordinary atomic
    write barrier — with a [certified <key> <snapshot>] line naming
    the tip identity, and returns that pair.  The mark self-
    invalidates: {!save_delta} moves the tip identity past the
    recorded pair, and {!save}/{!compact} drop the line entirely, so a
    stale mark can never vouch for state it did not see.  Raises
    [Solver_error.Error (Bad_input _)] when there is no store or the
    chain is broken. *)

val read_certified : dir:string -> (string * int) option
(** The recorded certification mark, or [None] when there is none (or
    no well-formed store).  The tip is certified iff this equals
    {!read_ident} — callers must compare, not merely test presence. *)

val corrupt_tuple_for_tests : dir:string -> relation:string -> unit
(** {b Test only.}  Inject semantic corruption that byte-level
    {!verify} cannot see: delete the first tuple of [relation] (or
    insert an all-zeros tuple when it is empty) and re-save the folded
    state under the same key and config.  The re-save runs the
    ordinary write barrier, so every CRC and selfsum is freshly
    consistent; the snapshot bumps (followers see a new candidate) and
    the [certified] mark, if any, is dropped.  Raises
    [Invalid_argument] for an unknown relation. *)

(** {2 Verification and repair} *)

type check = {
  chk_name : string;  (** ["manifest"], a data file name, or ["structural load"] *)
  chk_ok : bool;
  chk_detail : string;  (** human-readable outcome (sizes, CRCs, or the error) *)
}

val verify : ?structural:bool -> dir:string -> unit -> check list
(** Full health check, cheapest first: manifest parse (including its
    selfsum), per-file size + CRC-32, and — only when those pass — a
    complete structural load.  Never raises; a store is healthy iff
    every {!check} has [chk_ok = true].  The [ptacli store verify]
    subcommand prints this list.  [~structural:false] skips the final
    load (manifest + checksums only) — the cheap pre-check a follower
    runs before committing to a hot-swap load. *)

val quarantine : dir:string -> string option
(** Move a (presumably broken) store directory aside to
    [<dir>/store.broken.<n>] so the next save starts clean, returning
    the quarantine path, or [None] when there is nothing at [dir].
    The [ptacli store repair] subcommand drives this. *)

val quarantine_layers : dir:string -> from_layer:int -> string option
(** Cut a broken tail off the delta chain: move every layer file with
    index >= [from_layer] into a fresh [store/layers.broken.<k>/]
    directory, returning its path ([None] when there was nothing to
    move).  The base and the layers below the cut keep serving — the
    surgical repair when {!verify} blames a layer but the base is
    healthy. *)

val first_broken_layer : check list -> int option
(** The smallest layer index named by a failing check, provided the
    base checks themselves all pass — i.e. the [from_layer] to hand
    {!quarantine_layers}.  [None] when the store is healthy or the
    base itself is broken (full {!quarantine} territory). *)

val key : t -> string

val snapshot : t -> int
(** Monotonic per-directory save counter, written as the manifest's
    [snapshot] line: each {!save} over the same directory records the
    previous counter plus one (1 for a fresh directory).  Unlike
    {!key} — a content hash of the analysis inputs — the snapshot
    distinguishes two saves of identical content, so followers and
    routers can assert exactly which save answered a query.  The
    counter lives in a dedicated [serial] file committed before the
    old manifest is invalidated, so it survives saves torn by a crash
    and never goes backwards over a directory's lifetime. *)

val layers : t -> int
(** Delta layers folded into this load (0 for a plain base). *)

val config : t -> (string * string) list
val config_value : t -> string -> string option
val space : t -> Space.t
val domains : t -> Domain.t list
val domain : t -> string -> Domain.t option
val relations : t -> Relation.t list
(** In manifest (= save) order. *)

val find : t -> string -> Relation.t option
