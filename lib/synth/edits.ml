module Ir = Jir.Ir

type kind = Add_method | Add_alloc | Remove_alloc

type spec = { kind : kind; seed : int }

let kind_names = [ ("add-method", Add_method); ("add-alloc", Add_alloc); ("remove-alloc", Remove_alloc) ]

let names = List.map fst kind_names

let parse s =
  let name, seed =
    match String.index_opt s ':' with
    | None -> (s, 0)
    | Some i -> (String.sub s 0 i, int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) |> Option.value ~default:(-1))
  in
  if seed < 0 then Error (Printf.sprintf "bad edit seed in %S" s)
  else
    match List.assoc_opt name kind_names with
    | Some kind -> Ok { kind; seed }
    | None -> Error (Printf.sprintf "unknown edit %S (expected %s)" name (String.concat " | " names))

(* Concrete classes declaring at least one instance method besides the
   constructor — the dispatch targets an added call can exercise. *)
let concrete_with_methods ir =
  let cands = ref [] in
  Ir.iter_classes ir (fun c ->
      if not c.Ir.cls_interface then begin
        let ms =
          List.filter
            (fun mid ->
              let m = Ir.meth ir mid in
              (not m.Ir.m_static) && m.Ir.m_name <> "<init>")
            c.Ir.cls_methods
        in
        if ms <> [] then cands := (c, ms) :: !cands
      end);
  List.rev !cands

(* Classes whose implicit constructor takes no arguments, so an added
   [new] site needs no plumbing. *)
let default_constructible ir =
  let cands = ref [] in
  Ir.iter_classes ir (fun c ->
      if (not c.Ir.cls_interface) && List.length (Ir.meth ir (Ir.init_method ir c.Ir.cls_id)).Ir.m_formals <= 1 then
        cands := c :: !cands);
  List.rev !cands

(* Append a self-contained entry: a new class subclassing an existing
   one, plus a static entry method that allocates it, copies it through
   a local, and calls an inherited virtual method.  Every new entity id
   (class, method, vars, heap site, invoke sites) is allocated past the
   existing ones, so the edit diffs as pure additions — the
   incremental-friendly shape. *)
let add_method ir rng =
  match concrete_with_methods ir with
  | [] -> "add-method: no concrete class with instance methods; program unchanged"
  | cands ->
    let c, ms = Rng.pick rng cands in
    let name = Printf.sprintf "EditC%d" (Ir.num_classes ir) in
    let cid = Ir.add_class ir ~name ~super:c.Ir.cls_id in
    let entry = Ir.add_method ir ~name:"editEntry" ~owner:cid ~static:true ~formals:[] ~ret:None in
    let o = Ir.add_local ir entry ~name:"o" ~ty:cid in
    let p = Ir.add_local ir entry ~name:"p" ~ty:c.Ir.cls_id in
    ignore (Ir.emit_new ir ~label:"edit" entry ~dst:o ~cls:cid ~args:[]);
    Ir.emit_assign ir entry ~dst:p ~src:o;
    let target = Ir.meth ir (Rng.pick rng ms) in
    let args = List.map (fun _ -> o) (List.tl target.Ir.m_formals) in
    ignore (Ir.emit_invoke_virtual ir ~label:"edit" entry ~base:p ~name:target.Ir.m_name ~args);
    Ir.add_entry ir entry;
    Printf.sprintf "add-method: appended class %s extending %s with entry calling %s.%s" name c.Ir.cls_name
      c.Ir.cls_name target.Ir.m_name

(* Append an allocation and a copy inside an {e existing} method body.
   The new entities still get fresh trailing ids, but touching an
   existing body can change how {!Jir.Local_opt} factors its copy
   chains, so the extracted relations may shift — the edit that
   exercises the cold fall-back without renumbering anything. *)
let add_alloc ir rng =
  let bodies = ref [] in
  Ir.iter_methods ir (fun m -> if m.Ir.m_body <> [] && m.Ir.m_name <> "<init>" then bodies := m :: !bodies);
  match (List.rev !bodies, default_constructible ir) with
  | [], _ | _, [] -> "add-alloc: no editable method body; program unchanged"
  | bodies, ctors ->
    let m = Rng.pick rng bodies in
    let c = Rng.pick rng ctors in
    let v = Ir.add_local ir m.Ir.m_id ~name:"editv" ~ty:c.Ir.cls_id in
    let w = Ir.add_local ir m.Ir.m_id ~name:"editw" ~ty:c.Ir.cls_id in
    ignore (Ir.emit_new ir ~label:"edit-alloc" m.Ir.m_id ~dst:v ~cls:c.Ir.cls_id ~args:[]);
    Ir.emit_assign ir m.Ir.m_id ~dst:w ~src:v;
    Printf.sprintf "add-alloc: new %s plus copy appended to %s.%s" c.Ir.cls_name (Ir.cls ir m.Ir.m_owner).Ir.cls_name
      m.Ir.m_name

(* Delete one [New] from some method body: a guaranteed retraction.
   The allocation's vP0 tuple is unique to its (now silent) heap site
   and allocations survive local copy factoring, so the extracted
   relations always shrink and an incremental update must take the
   cold path.  (Deleting a plain [Assign] would be weaker: copy
   propagation can make it invisible in the extracted facts.) *)
let remove_alloc ir rng =
  let cands = ref [] in
  Ir.iter_methods ir (fun m ->
      let n = List.length (List.filter (function Ir.New _ -> true | _ -> false) m.Ir.m_body) in
      if n > 0 then cands := (m, n) :: !cands);
  match List.rev !cands with
  | [] -> "remove-alloc: no allocation to remove; program unchanged"
  | cands ->
    let m, n = Rng.pick rng cands in
    let victim = Rng.int rng n in
    let seen = ref 0 in
    m.Ir.m_body <-
      List.filter
        (function
          | Ir.New _ ->
            let keep = !seen <> victim in
            incr seen;
            keep
          | _ -> true)
        m.Ir.m_body;
    Printf.sprintf "remove-alloc: dropped allocation %d of %d from %s.%s" (victim + 1) n
      (Ir.cls ir m.Ir.m_owner).Ir.cls_name m.Ir.m_name

let apply ir { kind; seed } =
  let rng = Rng.create (0x5eed1 + seed) in
  match kind with
  | Add_method -> add_method ir rng
  | Add_alloc -> add_alloc ir rng
  | Remove_alloc -> remove_alloc ir rng
