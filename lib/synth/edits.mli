(** Scripted program edits, for exercising incremental re-analysis.

    Each edit mutates a {!Jir.Ir.t} in place the way a developer commit
    would, in one of three deliberately different shapes:

    - [add-method]: appends a self-contained class + entry method
      (allocation, copy, virtual call).  All new entity ids land past
      the existing ones, so the extracted relations diff as {e pure
      additions} — the shape [ptacli update] re-solves incrementally.
    - [add-alloc]: appends an allocation + copy into an existing
      method body.  Still additive at the IR level, but local-copy
      factoring may re-shape that method's extracted tuples, so the
      update may legitimately fall back to a cold solve.
    - [remove-alloc]: deletes one allocation — a guaranteed retraction
      (the heap site's seed tuple is unique and survives local copy
      factoring), forcing the "any removal ⇒ cold" policy rung.

    Specs are spelled [<name>] or [<name>:<seed>] (e.g.
    [add-method:7]); the seed drives the deterministic choice of which
    class/method/statement to touch, so an edit script is reproducible
    bit-for-bit. *)

type kind = Add_method | Add_alloc | Remove_alloc

type spec = { kind : kind; seed : int }

val names : string list
(** The accepted edit names, for CLI help. *)

val parse : string -> (spec, string) result
(** Parse [<name>] or [<name>:<seed>] (seed defaults to 0). *)

val apply : Jir.Ir.t -> spec -> string
(** Apply the edit in place; returns a one-line description of what
    was changed (or that nothing applied, on a program without a
    suitable edit site).  Deterministic in (program, spec). *)
