(* Warm-query evaluation over a *frozen* store.

   [make] projects the points-to relation once, then freezes the whole
   space: the packed node arrays and unique table become an immutable
   snapshot ([Space.frozen] / [Relation.frozen]) that any number of
   domains may read concurrently.  Every evaluator takes a [Bdd.ctx] —
   a per-domain operation cache plus allocation arena for query-local
   intermediates — so the hot apply/relprod path does no cross-domain
   writes and takes no locks.  One ctx belongs to exactly one domain;
   [serve_line] resets it after every request, reclaiming all
   intermediates wholesale. *)

type t = {
  store : Store.t;
  fspace : Space.frozen;
  fpt : Relation.frozen;  (* "variable", "heap"; context already projected away *)
  frels : (string * Relation.frozen) list;  (* store order *)
  vdom : Domain.t;
  hdom : Domain.t;
}

let store t = t.store

type outcome = { ok : bool; command : string; lines : string list; count : int }

let help_lines =
  [
    "points-to <var>        heaps <var> may point to";
    "alias <var1> <var2>    heaps both may point to (aliased iff any)";
    "leak <heap>            variables that may point to <heap>";
    "modref <method>        mod and ref (heap, field) sites";
    "vuln                   stored vulnerability tuples";
    "refine                 stored refinement ratios";
    "count <relation>       tuple count of a stored relation";
    "relations              list stored relations";
    "health                 liveness probe (uptime, key, snapshot, pid)";
    "stats                  served-query counters and per-command latency";
    "help                   this summary";
    "quit                   end this connection";
  ]

let attr_domain fr name = (Relation.frozen_find_attr fr name).Relation.block.Space.dom

let make store =
  let pt_live =
    match Store.find store "vPC" with
    | Some vpc -> Relation.project vpc [ "variable"; "heap" ]
    | None -> (
      match Store.find store "vP" with
      | Some vp -> vp
      | None ->
        Solver_error.raise_bad_input ~file:"<store>" ~line:0
          "store has neither vPC nor vP: not a solved points-to store")
  in
  (* Freeze the space first: the compacting GC inside [Space.freeze]
     renumbers every surviving node and rewrites the relations'
     registered roots in place, so capturing [Relation.freeze] handles
     only afterwards yields handles valid against the snapshot.  After
     the freeze the live manager is never touched again. *)
  let fspace = Space.freeze (Store.space store) in
  let fpt = Relation.freeze pt_live in
  let frels = List.map (fun r -> (Relation.name r, Relation.freeze r)) (Store.relations store) in
  { store; fspace; fpt; frels; vdom = attr_domain fpt "variable"; hdom = attr_domain fpt "heap" }

let new_ctx t = Space.eval_ctx t.fspace

(* --- answers --- *)

let ok command lines = { ok = true; command; lines; count = List.length lines }
let err command fmt = Printf.ksprintf (fun msg -> { ok = false; command; lines = [ msg ]; count = 0 }) fmt

let resolve command dom what token k =
  match Domain.element_index dom token with
  | Some v -> k v
  | None -> err command "unknown %s %S (domain %s)" what token (Domain.name dom)

let require command t name k =
  match List.assoc_opt name t.frels with
  | Some r -> k r
  | None ->
    err command "relation %s is not in this store (re-solve with the matching query suffix)" name

let points_to t ctx v =
  ok "points-to" (List.map (Domain.element_name t.hdom) (Queries.points_to_ctx ctx t.fpt ~var:v))

let alias t ctx v1 v2 =
  let shared = Queries.alias_heaps_ctx ctx t.fpt ~v1 ~v2 in
  (* The yes/no verdict is a reply line like any other: it must be part
     of the advertised row count or length-prefixed clients desync. *)
  ok "alias"
    ((if shared = [] then "no" else "yes")
    :: List.map (Domain.element_name t.hdom) shared)

let leak t ctx h =
  ok "leak" (List.map (Domain.element_name t.vdom) (Queries.pointed_by_ctx ctx t.fpt ~heap:h))

let modref t ctx m =
  require "modref" t "modset" @@ fun modset ->
  require "modref" t "refset" @@ fun refset ->
  let hdom = attr_domain modset "heap" and fdom = attr_domain modset "field" in
  let row tag (h, f) =
    Printf.sprintf "%s %s.%s" tag (Domain.element_name hdom h) (Domain.element_name fdom f)
  in
  ok "modref"
    (List.map (row "mod") (Queries.mod_ref_sites_ctx ctx modset ~meth:m)
    @ List.map (row "ref") (Queries.mod_ref_sites_ctx ctx refset ~meth:m))

let vuln t ctx =
  require "vuln" t "vuln" @@ fun rel ->
  let doms = List.map (fun (a : Relation.attr) -> a.Relation.block.Space.dom) (Relation.frozen_attrs rel) in
  let row tup =
    String.concat " " (List.mapi (fun i d -> Domain.element_name d tup.(i)) doms)
  in
  ok "vuln" (List.map row (List.sort compare (Relation.tuples_ctx ctx rel)))

(* Same arithmetic as [Analyses.refinement_ratios], over whichever
   refinement family (per-variable or per-clone) the store holds. *)
let refine t ctx =
  let family =
    if List.mem_assoc "activeC" t.frels then Some ("activeC", "multiC", "refinableC")
    else if List.mem_assoc "activeV" t.frels then Some ("activeV", "multiT", "refinable")
    else None
  in
  match family with
  | None -> err "refine" "no refinement relations in this store (solve with --refine)"
  | Some (active, multi, refinable) ->
    require "refine" t active @@ fun a ->
    require "refine" t multi @@ fun m ->
    require "refine" t refinable @@ fun r ->
    let population = Relation.count_ctx ctx a in
    let pct x = if population = 0.0 then 0.0 else 100.0 *. x /. population in
    ok "refine"
      [
        Printf.sprintf "population %.0f" population;
        Printf.sprintf "multi-type %.2f%%" (pct (Relation.count_ctx ctx m));
        Printf.sprintf "refinable %.2f%%" (pct (Relation.count_ctx ctx r));
      ]

let count t ctx name =
  require "count" t name @@ fun rel ->
  ok "count" [ Printf.sprintf "%s %.0f" name (Relation.count_ctx ctx rel) ]

let relations t ctx =
  ok "relations"
    (List.map
       (fun (name, rel) ->
         Printf.sprintf "%s/%d %.0f" name (Relation.frozen_arity rel) (Relation.count_ctx ctx rel))
       t.frels)

let split_ws line =
  String.split_on_char ' ' line |> List.concat_map (String.split_on_char '\t') |> List.filter (fun s -> s <> "")

let handle t ctx line =
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  match split_ws line with
  | [] -> ok "" []
  | [ "points-to"; v ] -> resolve "points-to" t.vdom "variable" v (points_to t ctx)
  | [ "alias"; v1; v2 ] ->
    resolve "alias" t.vdom "variable" v1 (fun a ->
        resolve "alias" t.vdom "variable" v2 (fun b -> alias t ctx a b))
  | [ "leak"; h ] -> resolve "leak" t.hdom "heap" h (leak t ctx)
  | [ "modref"; m ] ->
    require "modref" t "modset" @@ fun modset ->
    resolve "modref" (attr_domain modset "method") "method" m (modref t ctx)
  | [ "vuln" ] -> vuln t ctx
  | [ "refine" ] -> refine t ctx
  | [ "count"; name ] -> count t ctx name
  | [ "relations" ] -> relations t ctx
  | [ "help" ] -> ok "help" help_lines
  | cmd :: _ -> err "error" "unknown or malformed query %S (try: help)" cmd

(* --- Request isolation, stats, and lifecycle ------------------------

   The hardened entry point the daemon drivers use: [serve_line] wraps
   [handle] with a per-request resource budget (installed on the
   caller's ctx for the duration of the request), an exception
   firewall, latency accounting, and the [health]/[stats] protocol
   commands.  [handle] itself stays pure so the §5 evaluation logic
   remains directly testable.

   Counters are [Atomic.t] and the latency table is mutex-guarded:
   with a worker pool, many domains record into one [server_stats]
   while [health]/[stats] read it. *)

type limits = {
  rq_timeout_s : float option;  (** wall-clock per request *)
  rq_max_allocs : int option;  (** fresh BDD node allocations per request *)
  rq_max_nodes : int option;  (** live-node growth allowed per request *)
}

let no_limits = { rq_timeout_s = None; rq_max_allocs = None; rq_max_nodes = None }

type latency = { mutable l_count : int; mutable l_total_us : float; mutable l_max_us : float }

type server_stats = {
  s_started : float;
  s_queries : int Atomic.t;
  s_ok : int Atomic.t;
  s_err : int Atomic.t;
  s_budget_kills : int Atomic.t;
  s_firewall_trips : int Atomic.t;
  s_connections : int Atomic.t;
  s_rejected : int Atomic.t;
  s_lat_mutex : Mutex.t;
  s_latency : (string, latency) Hashtbl.t;  (* guarded by s_lat_mutex *)
}

let make_stats () =
  {
    s_started = Unix.gettimeofday ();
    s_queries = Atomic.make 0;
    s_ok = Atomic.make 0;
    s_err = Atomic.make 0;
    s_budget_kills = Atomic.make 0;
    s_firewall_trips = Atomic.make 0;
    s_connections = Atomic.make 0;
    s_rejected = Atomic.make 0;
    s_lat_mutex = Mutex.create ();
    s_latency = Hashtbl.create 16;
  }

let record_latency stats cmd us =
  Mutex.lock stats.s_lat_mutex;
  let l =
    match Hashtbl.find_opt stats.s_latency cmd with
    | Some l -> l
    | None ->
      let l = { l_count = 0; l_total_us = 0.0; l_max_us = 0.0 } in
      Hashtbl.add stats.s_latency cmd l;
      l
  in
  l.l_count <- l.l_count + 1;
  l.l_total_us <- l.l_total_us +. us;
  if us > l.l_max_us then l.l_max_us <- us;
  Mutex.unlock stats.s_lat_mutex

let health t stats =
  ok "health"
    [
      "status ok";
      Printf.sprintf "uptime %.1fs" (Unix.gettimeofday () -. stats.s_started);
      Printf.sprintf "pid %d" (Unix.getpid ());
      Printf.sprintf "key %s" (Store.key t.store);
      (* Snapshot identity: with followers hot-swapping stores, a
         router or soak test must be able to ask "which save answered
         this?" — key alone cannot distinguish two saves of identical
         content. *)
      Printf.sprintf "snapshot %d" (Store.snapshot t.store);
      Printf.sprintf "relations %d" (List.length t.frels);
    ]

let stats_lines stats =
  let totals =
    [
      Printf.sprintf "uptime %.1fs" (Unix.gettimeofday () -. stats.s_started);
      Printf.sprintf "connections %d" (Atomic.get stats.s_connections);
      Printf.sprintf "rejected-busy %d" (Atomic.get stats.s_rejected);
      Printf.sprintf "queries %d" (Atomic.get stats.s_queries);
      Printf.sprintf "ok %d" (Atomic.get stats.s_ok);
      Printf.sprintf "err %d" (Atomic.get stats.s_err);
      Printf.sprintf "budget-exceeded %d" (Atomic.get stats.s_budget_kills);
      Printf.sprintf "internal-errors %d" (Atomic.get stats.s_firewall_trips);
    ]
  in
  Mutex.lock stats.s_lat_mutex;
  let per_command =
    Hashtbl.fold (fun cmd l acc -> (cmd, l) :: acc) stats.s_latency []
    |> List.sort compare
    |> List.map (fun (cmd, l) ->
           Printf.sprintf "command %s %d %.0fus avg %.0fus max" cmd l.l_count
             (l.l_total_us /. float_of_int l.l_count)
             l.l_max_us)
  in
  Mutex.unlock stats.s_lat_mutex;
  totals @ per_command

(* Memory observability: frozen snapshots never page, so the whole
   serving footprint is the snapshot itself plus the process peak. *)
let mem_lines t =
  let rss =
    match Meminfo.peak_rss_kb () with
    | Some kb -> [ Printf.sprintf "peak-rss-kib %d" kb ]
    | None -> []
  in
  Printf.sprintf "snapshot-bytes %d" (Space.frozen_bytes t.fspace)
  :: Printf.sprintf "snapshot-nodes %d"
       (Bdd.frozen_live_nodes (Space.frozen_bdd t.fspace))
  :: rss

type served = { outcome : outcome; latency_us : float; close : bool }

let serve_line ?(limits = no_limits) ~stats t ctx line =
  let t0 = Unix.gettimeofday () in
  let stripped = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  let outcome, close =
    match split_ws stripped with
    | [ "health" ] -> (health t stats, false)
    | [ "stats" ] -> (ok "stats" (stats_lines stats @ mem_lines t), false)
    | first_tokens -> (
      let budget =
        if limits = no_limits then None
        else
          Some
            (Budget.make ?timeout_s:limits.rq_timeout_s
               ?max_allocations:
                 (Option.map (fun c -> Bdd.ctx_allocations ctx + c) limits.rq_max_allocs)
               ?max_live_nodes:(Option.map (fun c -> Bdd.ctx_live_nodes ctx + c) limits.rq_max_nodes)
               ())
      in
      Bdd.ctx_set_budget ctx budget;
      (* The reset in [finally] reclaims every query-local node at
         once — aborted or not, the next request on this ctx starts
         from an empty arena.  (The frozen snapshot is untouched.) *)
      match
        Fun.protect
          ~finally:(fun () ->
            Bdd.ctx_set_budget ctx None;
            Bdd.ctx_reset ctx)
          (fun () -> handle t ctx line)
      with
      | o -> (o, false)
      | exception Bdd.Limit_exceeded reason ->
        Atomic.incr stats.s_budget_kills;
        (err "budget" "request aborted: %s" (Budget.reason_to_string reason), false)
      | exception Solver_error.Error e ->
        (err "error" "%s" (Solver_error.to_string e), false)
      | exception e ->
        (* Exception firewall: an unexpected raise poisons only this
           connection, never the daemon. *)
        Atomic.incr stats.s_firewall_trips;
        let cmd = match first_tokens with c :: _ -> c | [] -> "?" in
        (err "internal" "unexpected exception in %S: %s (closing this connection)" cmd (Printexc.to_string e), true))
  in
  let latency_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  if not (outcome.command = "" && outcome.lines = []) then begin
    Atomic.incr stats.s_queries;
    Atomic.incr (if outcome.ok then stats.s_ok else stats.s_err);
    record_latency stats (if outcome.command = "" then "?" else outcome.command) latency_us
  end;
  { outcome; latency_us; close }

(* --- Swappable server source ----------------------------------------

   The replication layer's hinge: a [Source.source] is a mutable cell
   holding the current frozen server, with a generation counter that
   lets readers detect a swap without taking the mutex on every
   request.  [swap] installs a new server atomically; workers notice
   the generation change at their next check, dispose their ctx over
   the old space, and rebuild over the new one.  Once the last worker
   has moved on (and the follower has dropped its own reference), the
   old frozen space is unreachable and the GC reclaims it — see the
   lifecycle notes on [Bdd.frozen]. *)

module Source = struct
  type source = {
    mutable s_srv : t;  (* guarded by s_mu *)
    s_gen : int Atomic.t;
    s_mu : Mutex.t;
  }

  let create srv = { s_srv = srv; s_gen = Atomic.make 0; s_mu = Mutex.create () }
  let generation s = Atomic.get s.s_gen

  let get s =
    Mutex.lock s.s_mu;
    let v = (Atomic.get s.s_gen, s.s_srv) in
    Mutex.unlock s.s_mu;
    v

  let current s = snd (get s)

  let swap s srv =
    Mutex.lock s.s_mu;
    s.s_srv <- srv;
    (* Bumped inside the mutex: a reader seeing the new generation is
       guaranteed to read the new server under [get]. *)
    Atomic.incr s.s_gen;
    Mutex.unlock s.s_mu
end

(* --- Worker pool ----------------------------------------------------

   A fixed set of OCaml domains, each owning one ctx over the shared
   frozen space, pulling requests off a bounded queue.  [run] blocks
   the calling (connection) thread until its request's worker is done,
   so backpressure propagates naturally: the queue bound caps how far
   accepted connections can run ahead of evaluation.

   The pool reads its server through a [Source.source]: before every
   request (and whenever poked awake while idle) a worker compares the
   source generation with its own; on mismatch it disposes its ctx
   over the old space and rebuilds over the new one.  A request
   already executing when a swap lands completes against the old
   snapshot — the swap is between requests, never under one. *)

module Pool = struct
  type job = {
    j_line : string;
    j_mutex : Mutex.t;
    j_cond : Condition.t;
    mutable j_result : served option;
  }

  type pool = {
    p_source : Source.source;
    p_jobs : job Queue.t;
    p_mutex : Mutex.t;
    p_can_pop : Condition.t;
    p_can_push : Condition.t;
    p_capacity : int;
    p_workers : int;
    mutable p_closed : bool;
    mutable p_domains : unit Stdlib.Domain.t list;
  }

  let draining =
    {
      outcome = err "shutdown" "daemon is draining; connection closing";
      latency_us = 0.0;
      close = true;
    }

  let finish job result =
    Mutex.lock job.j_mutex;
    job.j_result <- Some result;
    Condition.signal job.j_cond;
    Mutex.unlock job.j_mutex

  (* [serve_line] never raises by contract; the extra match is a
     belt-and-braces guard so a worker bug can never leave a
     connection thread blocked on a job that will not complete. *)
  let worker ?limits ~stats p () =
    let gen0, srv0 = Source.get p.p_source in
    let gen = ref gen0 and srv = ref srv0 in
    let ctx = ref (new_ctx srv0) in
    (* On a generation change: tear down this worker's arena over the
       old space and rebuild over the new server.  Called between
       requests and from the idle wait loop (after [poke]), so an old
       snapshot is released promptly even by workers with nothing to
       do. *)
    let refresh () =
      if Source.generation p.p_source <> !gen then begin
        Bdd.ctx_dispose !ctx;
        let g, s = Source.get p.p_source in
        gen := g;
        srv := s;
        ctx := new_ctx s
      end
    in
    let rec loop () =
      Mutex.lock p.p_mutex;
      while Queue.is_empty p.p_jobs && not p.p_closed do
        Condition.wait p.p_can_pop p.p_mutex;
        if Queue.is_empty p.p_jobs then refresh ()
      done;
      if Queue.is_empty p.p_jobs then Mutex.unlock p.p_mutex (* closed: drain done *)
      else begin
        let job = Queue.pop p.p_jobs in
        Condition.signal p.p_can_push;
        Mutex.unlock p.p_mutex;
        refresh ();
        (match serve_line ?limits ~stats !srv !ctx job.j_line with
        | result -> finish job result
        | exception e ->
          finish job
            {
              outcome =
                err "internal" "worker failure: %s (closing this connection)" (Printexc.to_string e);
              latency_us = 0.0;
              close = true;
            });
        loop ()
      end
    in
    loop ()

  let create ?limits ~stats ~workers source =
    let workers = max 1 workers in
    let p =
      {
        p_source = source;
        p_jobs = Queue.create ();
        p_mutex = Mutex.create ();
        p_can_pop = Condition.create ();
        p_can_push = Condition.create ();
        p_capacity = max 16 (4 * workers);
        p_workers = workers;
        p_closed = false;
        p_domains = [];
      }
    in
    p.p_domains <- List.init workers (fun _ -> Stdlib.Domain.spawn (worker ?limits ~stats p));
    p

  let workers p = p.p_workers
  let source p = p.p_source

  (* Wake idle workers so they notice a source swap now instead of at
     their next request: without this, a quiet follower would retain
     the old frozen space until traffic arrives. *)
  let poke p =
    Mutex.lock p.p_mutex;
    Condition.broadcast p.p_can_pop;
    Mutex.unlock p.p_mutex

  let run p line =
    let job =
      { j_line = line; j_mutex = Mutex.create (); j_cond = Condition.create (); j_result = None }
    in
    Mutex.lock p.p_mutex;
    while Queue.length p.p_jobs >= p.p_capacity && not p.p_closed do
      Condition.wait p.p_can_push p.p_mutex
    done;
    if p.p_closed then begin
      Mutex.unlock p.p_mutex;
      draining
    end
    else begin
      Queue.push job p.p_jobs;
      Condition.signal p.p_can_pop;
      Mutex.unlock p.p_mutex;
      Mutex.lock job.j_mutex;
      while job.j_result = None do
        Condition.wait job.j_cond job.j_mutex
      done;
      let r = Option.get job.j_result in
      Mutex.unlock job.j_mutex;
      r
    end

  (* Drain order: mark closed (new [run]s bounce with [draining]),
     wake everyone, then join.  Workers finish jobs already queued
     before exiting, so every accepted request gets its answer. *)
  let shutdown p =
    Mutex.lock p.p_mutex;
    p.p_closed <- true;
    Condition.broadcast p.p_can_pop;
    Condition.broadcast p.p_can_push;
    Mutex.unlock p.p_mutex;
    List.iter Stdlib.Domain.join p.p_domains;
    p.p_domains <- []
end

(* --- Snapshot follower ----------------------------------------------

   The watch half of `ptacli serve --follow`: poll the store directory
   for a new committed save and hot-swap the pool's source to it.

   Change detection is two-tier.  The fast path [stat]s the manifest —
   the single commit point of a save, always renamed into place, so
   any new save changes its (inode, mtime, size) triple — and does no
   file reads when the triple is unchanged.  On a triple change the
   (key, snapshot) identity pair is read from the manifest and
   compared with what is currently served; only a genuinely different
   save proceeds to verification and load.

   Swap protocol, per candidate:

     verify (manifest + checksums, no structural load)
       -> load (itself CRC- and structure-checked)
       -> make (project + freeze)
       -> Source.swap

   Any failure — torn manifest, checksum mismatch, structural error —
   yields [Rejected] and the old snapshot keeps serving; the failed
   disk state's stat triple is remembered so one broken save is
   reported once, not every poll tick.  A later, complete save changes
   the triple again and is re-examined from scratch. *)

module Follow = struct
  (* The top-level server constructor; [Follow.make] below shadows the
     name. *)
  let server_of_store = make

  type outcome =
    | Unchanged
    | Swapped of { snapshot : int; key : string; seconds : float }
    | Rejected of { reason : string }

  type state = {
    f_dir : string;
    f_source : Source.source;
    f_require_certified : bool;
    mutable f_seen : string * int;  (* identity currently served *)
    mutable f_stat : (int * float * int) list;
        (* (ino, mtime, size) of the base manifest and every committed
           layer manifest — so an incremental [save_delta], which never
           touches the base manifest, still changes the cheap probe *)
  }

  let manifest_stat dir = Store.tip_stat ~dir

  let make ?(require_certified = false) ~dir source =
    let srv = Source.current source in
    {
      f_dir = dir;
      f_source = source;
      f_require_certified = require_certified;
      f_seen = (Store.key srv.store, Store.snapshot srv.store);
      f_stat = manifest_stat dir;
    }

  let served_ident st = st.f_seen

  let reject st stat reason =
    (* Remember the broken state's stat triple: polls seeing the same
       bytes stay [Unchanged] instead of re-reporting. *)
    st.f_stat <- stat;
    Rejected { reason }

  let poll st =
    let stat = manifest_stat st.f_dir in
    if stat = st.f_stat then Unchanged
    else
      match Store.read_ident ~dir:st.f_dir with
      | None -> reject st stat "manifest missing or unreadable (save in progress or torn?)"
      | Some ident when ident = st.f_seen ->
        (* Same save re-examined (e.g. the manifest was touched):
           nothing to do. *)
        st.f_stat <- stat;
        Unchanged
      | Some (key, snapshot) when st.f_require_certified && Store.read_certified ~dir:st.f_dir <> Some (key, snapshot)
        ->
        (* The candidate's identity carries no matching certification
           mark: the snapshot may be byte-perfect yet semantically
           wrong (a bad delta fold, a missed remap), which is exactly
           what this gate exists to keep off the wire.  The old
           snapshot keeps serving. *)
        reject st stat
          (Printf.sprintf "snapshot %d is not certified (require-certified; run `ptacli certify` and retry)" snapshot)
      | Some (key, snapshot) -> (
        let t0 = Unix.gettimeofday () in
        let checks = Store.verify ~structural:false ~dir:st.f_dir () in
        match List.find_opt (fun (c : Store.check) -> not c.Store.chk_ok) checks with
        | Some bad ->
          reject st stat (Printf.sprintf "%s: %s" bad.Store.chk_name bad.Store.chk_detail)
        | None -> (
          match server_of_store (Store.load ~dir:st.f_dir) with
          | srv ->
            Source.swap st.f_source srv;
            st.f_seen <- (Store.key srv.store, Store.snapshot srv.store);
            st.f_stat <- stat;
            Swapped { snapshot; key; seconds = Unix.gettimeofday () -. t0 }
          | exception Solver_error.Error e ->
            reject st stat (Solver_error.to_string e)))
end
