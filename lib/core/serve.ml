type t = {
  store : Store.t;
  pt : Relation.t;  (* "variable", "heap"; context already projected away *)
  vdom : Domain.t;
  hdom : Domain.t;
}

let store t = t.store

type outcome = { ok : bool; command : string; lines : string list; count : int }

let help_lines =
  [
    "points-to <var>        heaps <var> may point to";
    "alias <var1> <var2>    heaps both may point to (aliased iff any)";
    "leak <heap>            variables that may point to <heap>";
    "modref <method>        mod and ref (heap, field) sites";
    "vuln                   stored vulnerability tuples";
    "refine                 stored refinement ratios";
    "count <relation>       tuple count of a stored relation";
    "relations              list stored relations";
    "health                 liveness probe (uptime, key, pid)";
    "stats                  served-query counters and per-command latency";
    "help                   this summary";
    "quit                   end this connection";
  ]

let attr_domain rel name = (Relation.find_attr rel name).Relation.block.Space.dom

let make store =
  let pt =
    match Store.find store "vPC" with
    | Some vpc -> Relation.project vpc [ "variable"; "heap" ]
    | None -> (
      match Store.find store "vP" with
      | Some vp -> vp
      | None ->
        Solver_error.raise_bad_input ~file:"<store>" ~line:0
          "store has neither vPC nor vP: not a solved points-to store")
  in
  { store; pt; vdom = attr_domain pt "variable"; hdom = attr_domain pt "heap" }

(* --- answers --- *)

let ok command lines = { ok = true; command; lines; count = List.length lines }
let err command fmt = Printf.ksprintf (fun msg -> { ok = false; command; lines = [ msg ]; count = 0 }) fmt

let resolve command dom what token k =
  match Domain.element_index dom token with
  | Some v -> k v
  | None -> err command "unknown %s %S (domain %s)" what token (Domain.name dom)

let require command t name k =
  match Store.find t.store name with
  | Some r -> k r
  | None ->
    err command "relation %s is not in this store (re-solve with the matching query suffix)" name

let points_to t v =
  ok "points-to" (List.map (Domain.element_name t.hdom) (Queries.points_to t.pt ~var:v))

let alias t v1 v2 =
  let shared = Queries.alias_heaps t.pt ~v1 ~v2 in
  let o = ok "alias" (List.map (Domain.element_name t.hdom) shared) in
  { o with lines = (if shared = [] then "no" else "yes") :: o.lines }

let leak t h = ok "leak" (List.map (Domain.element_name t.vdom) (Queries.pointed_by t.pt ~heap:h))

let modref t m =
  require "modref" t "modset" @@ fun modset ->
  require "modref" t "refset" @@ fun refset ->
  let hdom = attr_domain modset "heap" and fdom = attr_domain modset "field" in
  let row tag (h, f) =
    Printf.sprintf "%s %s.%s" tag (Domain.element_name hdom h) (Domain.element_name fdom f)
  in
  ok "modref"
    (List.map (row "mod") (Queries.mod_ref_sites modset ~meth:m)
    @ List.map (row "ref") (Queries.mod_ref_sites refset ~meth:m))

let vuln t =
  require "vuln" t "vuln" @@ fun rel ->
  let doms = List.map (fun (a : Relation.attr) -> a.Relation.block.Space.dom) (Relation.attrs rel) in
  let row tup =
    String.concat " " (List.mapi (fun i d -> Domain.element_name d tup.(i)) doms)
  in
  ok "vuln" (List.map row (List.sort compare (Relation.tuples rel)))

(* Same arithmetic as [Analyses.refinement_ratios], over whichever
   refinement family (per-variable or per-clone) the store holds. *)
let refine t =
  let family =
    if Store.find t.store "activeC" <> None then Some ("activeC", "multiC", "refinableC")
    else if Store.find t.store "activeV" <> None then Some ("activeV", "multiT", "refinable")
    else None
  in
  match family with
  | None -> err "refine" "no refinement relations in this store (solve with --refine)"
  | Some (active, multi, refinable) ->
    require "refine" t active @@ fun a ->
    require "refine" t multi @@ fun m ->
    require "refine" t refinable @@ fun r ->
    let population = Relation.count a in
    let pct x = if population = 0.0 then 0.0 else 100.0 *. x /. population in
    ok "refine"
      [
        Printf.sprintf "population %.0f" population;
        Printf.sprintf "multi-type %.2f%%" (pct (Relation.count m));
        Printf.sprintf "refinable %.2f%%" (pct (Relation.count r));
      ]

let count t name =
  require "count" t name @@ fun rel ->
  ok "count" [ Printf.sprintf "%s %.0f" name (Relation.count rel) ]

let relations t =
  ok "relations"
    (List.map
       (fun rel ->
         Printf.sprintf "%s/%d %.0f" (Relation.name rel) (Relation.arity rel) (Relation.count rel))
       (Store.relations t.store))

let split_ws line =
  String.split_on_char ' ' line |> List.concat_map (String.split_on_char '\t') |> List.filter (fun s -> s <> "")

let handle t line =
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  match split_ws line with
  | [] -> ok "" []
  | [ "points-to"; v ] -> resolve "points-to" t.vdom "variable" v (points_to t)
  | [ "alias"; v1; v2 ] ->
    resolve "alias" t.vdom "variable" v1 (fun a ->
        resolve "alias" t.vdom "variable" v2 (fun b -> alias t a b))
  | [ "leak"; h ] -> resolve "leak" t.hdom "heap" h (leak t)
  | [ "modref"; m ] ->
    require "modref" t "modset" @@ fun modset ->
    resolve "modref" (attr_domain modset "method") "method" m (modref t)
  | [ "vuln" ] -> vuln t
  | [ "refine" ] -> refine t
  | [ "count"; name ] -> count t name
  | [ "relations" ] -> relations t
  | [ "help" ] -> ok "help" help_lines
  | cmd :: _ -> err "error" "unknown or malformed query %S (try: help)" cmd

(* --- Request isolation, stats, and lifecycle ------------------------

   The hardened entry point the daemon drivers use: [serve_line] wraps
   [handle] with a per-request resource budget (installed on the
   store's BDD manager for the duration of the request), an exception
   firewall, latency accounting, and the [health]/[stats] protocol
   commands.  [handle] itself stays pure so the §5 evaluation logic
   remains directly testable. *)

type limits = {
  rq_timeout_s : float option;  (** wall-clock per request *)
  rq_max_allocs : int option;  (** fresh BDD node allocations per request *)
  rq_max_nodes : int option;  (** live-node growth allowed per request *)
}

let no_limits = { rq_timeout_s = None; rq_max_allocs = None; rq_max_nodes = None }

type latency = { mutable l_count : int; mutable l_total_us : float; mutable l_max_us : float }

type server_stats = {
  s_started : float;
  mutable s_queries : int;
  mutable s_ok : int;
  mutable s_err : int;
  mutable s_budget_kills : int;
  mutable s_firewall_trips : int;
  mutable s_connections : int;
  mutable s_rejected : int;
  s_latency : (string, latency) Hashtbl.t;
}

let make_stats () =
  {
    s_started = Unix.gettimeofday ();
    s_queries = 0;
    s_ok = 0;
    s_err = 0;
    s_budget_kills = 0;
    s_firewall_trips = 0;
    s_connections = 0;
    s_rejected = 0;
    s_latency = Hashtbl.create 16;
  }

let record_latency stats cmd us =
  let l =
    match Hashtbl.find_opt stats.s_latency cmd with
    | Some l -> l
    | None ->
      let l = { l_count = 0; l_total_us = 0.0; l_max_us = 0.0 } in
      Hashtbl.add stats.s_latency cmd l;
      l
  in
  l.l_count <- l.l_count + 1;
  l.l_total_us <- l.l_total_us +. us;
  if us > l.l_max_us then l.l_max_us <- us

let health t stats =
  ok "health"
    [
      "status ok";
      Printf.sprintf "uptime %.1fs" (Unix.gettimeofday () -. stats.s_started);
      Printf.sprintf "pid %d" (Unix.getpid ());
      Printf.sprintf "key %s" (Store.key t.store);
      Printf.sprintf "relations %d" (List.length (Store.relations t.store));
    ]

let stats_lines stats =
  let totals =
    [
      Printf.sprintf "uptime %.1fs" (Unix.gettimeofday () -. stats.s_started);
      Printf.sprintf "connections %d" stats.s_connections;
      Printf.sprintf "rejected-busy %d" stats.s_rejected;
      Printf.sprintf "queries %d" stats.s_queries;
      Printf.sprintf "ok %d" stats.s_ok;
      Printf.sprintf "err %d" stats.s_err;
      Printf.sprintf "budget-exceeded %d" stats.s_budget_kills;
      Printf.sprintf "internal-errors %d" stats.s_firewall_trips;
    ]
  in
  let per_command =
    Hashtbl.fold (fun cmd l acc -> (cmd, l) :: acc) stats.s_latency []
    |> List.sort compare
    |> List.map (fun (cmd, l) ->
           Printf.sprintf "command %s %d %.0fus avg %.0fus max" cmd l.l_count
             (l.l_total_us /. float_of_int l.l_count)
             l.l_max_us)
  in
  totals @ per_command

(* GC the store's manager occasionally: query evaluation disposes its
   intermediate relations, but their dead nodes stay in the table until
   a collection, and a long-lived daemon must not let them pile up. *)
let gc_every = 512

type served = { outcome : outcome; latency_us : float; close : bool }

let serve_line ?(limits = no_limits) ~stats t line =
  let t0 = Unix.gettimeofday () in
  let man = Space.man (Store.space t.store) in
  let stripped = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  let outcome, close =
    match split_ws stripped with
    | [ "health" ] -> (health t stats, false)
    | [ "stats" ] -> (ok "stats" (stats_lines stats), false)
    | first_tokens -> (
      let budget =
        if limits = no_limits then None
        else
          Some
            (Budget.make ?timeout_s:limits.rq_timeout_s
               ?max_allocations:(Option.map (fun c -> Bdd.allocations man + c) limits.rq_max_allocs)
               ?max_live_nodes:(Option.map (fun c -> Bdd.live_nodes man + c) limits.rq_max_nodes)
               ())
      in
      Bdd.set_budget man budget;
      match Fun.protect ~finally:(fun () -> Bdd.set_budget man None) (fun () -> handle t line) with
      | o -> (o, false)
      | exception Bdd.Limit_exceeded reason ->
        (* The aborted query's intermediates are already disposed
           (evaluators use Fun.protect); collect their dead nodes now
           so one pathological request does not inflate the live-node
           baseline of the next. *)
        Bdd.gc man;
        stats.s_budget_kills <- stats.s_budget_kills + 1;
        (err "budget" "request aborted: %s" (Budget.reason_to_string reason), false)
      | exception Solver_error.Error e ->
        (err "error" "%s" (Solver_error.to_string e), false)
      | exception e ->
        (* Exception firewall: an unexpected raise poisons only this
           connection, never the daemon. *)
        stats.s_firewall_trips <- stats.s_firewall_trips + 1;
        let cmd = match first_tokens with c :: _ -> c | [] -> "?" in
        (err "internal" "unexpected exception in %S: %s (closing this connection)" cmd (Printexc.to_string e), true))
  in
  let latency_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  if not (outcome.command = "" && outcome.lines = []) then begin
    stats.s_queries <- stats.s_queries + 1;
    if outcome.ok then stats.s_ok <- stats.s_ok + 1 else stats.s_err <- stats.s_err + 1;
    record_latency stats (if outcome.command = "" then "?" else outcome.command) latency_us;
    if stats.s_queries mod gc_every = 0 then Bdd.gc man
  end;
  { outcome; latency_us; close }
