type t = {
  store : Store.t;
  pt : Relation.t;  (* "variable", "heap"; context already projected away *)
  vdom : Domain.t;
  hdom : Domain.t;
}

let store t = t.store

type outcome = { ok : bool; command : string; lines : string list; count : int }

let help_lines =
  [
    "points-to <var>        heaps <var> may point to";
    "alias <var1> <var2>    heaps both may point to (aliased iff any)";
    "leak <heap>            variables that may point to <heap>";
    "modref <method>        mod and ref (heap, field) sites";
    "vuln                   stored vulnerability tuples";
    "refine                 stored refinement ratios";
    "count <relation>       tuple count of a stored relation";
    "relations              list stored relations";
    "help                   this summary";
  ]

let attr_domain rel name = (Relation.find_attr rel name).Relation.block.Space.dom

let make store =
  let pt =
    match Store.find store "vPC" with
    | Some vpc -> Relation.project vpc [ "variable"; "heap" ]
    | None -> (
      match Store.find store "vP" with
      | Some vp -> vp
      | None ->
        Solver_error.raise_bad_input ~file:"<store>" ~line:0
          "store has neither vPC nor vP: not a solved points-to store")
  in
  { store; pt; vdom = attr_domain pt "variable"; hdom = attr_domain pt "heap" }

(* --- answers --- *)

let ok command lines = { ok = true; command; lines; count = List.length lines }
let err command fmt = Printf.ksprintf (fun msg -> { ok = false; command; lines = [ msg ]; count = 0 }) fmt

let resolve command dom what token k =
  match Domain.element_index dom token with
  | Some v -> k v
  | None -> err command "unknown %s %S (domain %s)" what token (Domain.name dom)

let require command t name k =
  match Store.find t.store name with
  | Some r -> k r
  | None ->
    err command "relation %s is not in this store (re-solve with the matching query suffix)" name

let points_to t v =
  ok "points-to" (List.map (Domain.element_name t.hdom) (Queries.points_to t.pt ~var:v))

let alias t v1 v2 =
  let shared = Queries.alias_heaps t.pt ~v1 ~v2 in
  let o = ok "alias" (List.map (Domain.element_name t.hdom) shared) in
  { o with lines = (if shared = [] then "no" else "yes") :: o.lines }

let leak t h = ok "leak" (List.map (Domain.element_name t.vdom) (Queries.pointed_by t.pt ~heap:h))

let modref t m =
  require "modref" t "modset" @@ fun modset ->
  require "modref" t "refset" @@ fun refset ->
  let hdom = attr_domain modset "heap" and fdom = attr_domain modset "field" in
  let row tag (h, f) =
    Printf.sprintf "%s %s.%s" tag (Domain.element_name hdom h) (Domain.element_name fdom f)
  in
  ok "modref"
    (List.map (row "mod") (Queries.mod_ref_sites modset ~meth:m)
    @ List.map (row "ref") (Queries.mod_ref_sites refset ~meth:m))

let vuln t =
  require "vuln" t "vuln" @@ fun rel ->
  let doms = List.map (fun (a : Relation.attr) -> a.Relation.block.Space.dom) (Relation.attrs rel) in
  let row tup =
    String.concat " " (List.mapi (fun i d -> Domain.element_name d tup.(i)) doms)
  in
  ok "vuln" (List.map row (List.sort compare (Relation.tuples rel)))

(* Same arithmetic as [Analyses.refinement_ratios], over whichever
   refinement family (per-variable or per-clone) the store holds. *)
let refine t =
  let family =
    if Store.find t.store "activeC" <> None then Some ("activeC", "multiC", "refinableC")
    else if Store.find t.store "activeV" <> None then Some ("activeV", "multiT", "refinable")
    else None
  in
  match family with
  | None -> err "refine" "no refinement relations in this store (solve with --refine)"
  | Some (active, multi, refinable) ->
    require "refine" t active @@ fun a ->
    require "refine" t multi @@ fun m ->
    require "refine" t refinable @@ fun r ->
    let population = Relation.count a in
    let pct x = if population = 0.0 then 0.0 else 100.0 *. x /. population in
    ok "refine"
      [
        Printf.sprintf "population %.0f" population;
        Printf.sprintf "multi-type %.2f%%" (pct (Relation.count m));
        Printf.sprintf "refinable %.2f%%" (pct (Relation.count r));
      ]

let count t name =
  require "count" t name @@ fun rel ->
  ok "count" [ Printf.sprintf "%s %.0f" name (Relation.count rel) ]

let relations t =
  ok "relations"
    (List.map
       (fun rel ->
         Printf.sprintf "%s/%d %.0f" (Relation.name rel) (Relation.arity rel) (Relation.count rel))
       (Store.relations t.store))

let handle t line =
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  let toks = String.split_on_char ' ' line |> List.concat_map (String.split_on_char '\t') in
  match List.filter (fun s -> s <> "") toks with
  | [] -> ok "" []
  | [ "points-to"; v ] -> resolve "points-to" t.vdom "variable" v (points_to t)
  | [ "alias"; v1; v2 ] ->
    resolve "alias" t.vdom "variable" v1 (fun a ->
        resolve "alias" t.vdom "variable" v2 (fun b -> alias t a b))
  | [ "leak"; h ] -> resolve "leak" t.hdom "heap" h (leak t)
  | [ "modref"; m ] ->
    require "modref" t "modset" @@ fun modset ->
    resolve "modref" (attr_domain modset "method") "method" m (modref t)
  | [ "vuln" ] -> vuln t
  | [ "refine" ] -> refine t
  | [ "count"; name ] -> count t name
  | [ "relations" ] -> relations t
  | [ "help" ] -> ok "help" help_lines
  | cmd :: _ -> err "error" "unknown or malformed query %S (try: help)" cmd
