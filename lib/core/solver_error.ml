type bad_input = { file : string; line : int; msg : string }
type exhaustion = { reason : Budget.reason; partial_iterations : int; live_nodes : int }

type t =
  | Budget_exhausted of exhaustion
  | Bad_input of bad_input
  | Internal of string

exception Error of t

let raise_bad_input ~file ~line fmt =
  Format.kasprintf (fun msg -> raise (Error (Bad_input { file; line; msg }))) fmt

let to_string = function
  | Budget_exhausted { reason; partial_iterations; live_nodes } ->
    (* The counters are 0 when the budget fired before the fixpoint
       started (e.g. while loading input relations) — omit them then. *)
    if partial_iterations = 0 && live_nodes = 0 then
      Printf.sprintf "budget exhausted: %s (before the fixpoint started)" (Budget.reason_to_string reason)
    else
      Printf.sprintf "budget exhausted: %s (after %d fixpoint rounds, %d live nodes)" (Budget.reason_to_string reason)
        partial_iterations live_nodes
  | Bad_input { file; line; msg } ->
    if line > 0 then Printf.sprintf "%s:%d: %s" file line msg else Printf.sprintf "%s: %s" file msg
  | Internal msg -> Printf.sprintf "internal error: %s" msg

let exit_code = function
  | Bad_input _ -> 1
  | Budget_exhausted _ -> 2
  | Internal _ -> 3
