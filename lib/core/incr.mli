(** Incremental re-analysis: re-solve a modified program from a stored
    fixpoint, paying only for what the edit dirtied.

    {!update} diffs the freshly extracted input relations against the
    ones persisted by a previous run (per-relation added/removed tuple
    sets, computed as BDD diffs so the comparison scales with BDD size,
    not tuple count), seeds the engine's semi-naive delta path with
    only the added tuples ({!Datalog.Engine.run_incremental}), and
    re-solves to fixpoint.  The result is bit-identical to a cold
    solve of the modified program.

    {b Soundness gates.}  The incremental path is only exact when the
    stored fixpoint under-approximates the new one, which additions to
    a monotone program guarantee.  Anything else falls back to a cold
    solve, with the reason reported:

    - {e removals}: any input tuple removed ("any removal ⇒ cold" —
      the deliberate first rung of the removal policy; DRed-style
      over-deletion can later slot in behind the same verdict type);
    - {e negation}: the program subtracts some relation, making rules
      non-monotone in it;
    - {e layout change}: a domain crossed a power of two or the block
      assignment moved, so the stored BDDs are meaningless in the new
      variable numbering;
    - {e relation-set change}: the store does not hold exactly the
      program's declared relations (e.g. a legacy store that saved
      only the interface relations, without the internal working
      relations an incremental restart needs).

    Element-id stability: Jir program ids are dense in construction
    order, so append-only edits (new classes, methods, statements at
    the end) keep existing ids stable and diff as pure additions;
    edits that renumber existing entities surface as removals and take
    the cold path — slower, never wrong. *)

type cold_reason =
  | Layout_changed of string  (** human-readable description of the first mismatch *)
  | Relation_set_changed of string list  (** symmetric difference of the relation name sets *)
  | Removals of string list  (** inputs that lost tuples *)
  | Negation of string list  (** relations read under negation *)

type verdict =
  | Incremental  (** re-solved from the added tuples only *)
  | Unchanged  (** inputs semantically identical: stored fixpoint adopted, nothing solved *)
  | Cold of cold_reason  (** full re-solve, with why *)

type outcome = {
  engine : Datalog.Engine.t;
      (** holds the complete new fixpoint whatever the verdict; its
          space is the one to persist against *)
  program_text : string;
  verdict : verdict;
  stats : Datalog.Engine.stats option;  (** [None] only for [Unchanged] *)
  deltas : (string * Bdd.t * Bdd.t) list;
      (** per-relation (name, added, removed) vs the stored fixpoint,
          unchanged relations omitted — exactly the
          {!Bddrel.Store.save_delta} payload.  Empty for [Unchanged];
          meaningless for [Cold] (full-save instead). *)
  changed_inputs : string list;  (** inputs that gained tuples *)
}

val update :
  ?options:Datalog.Engine.options ->
  ?query:Programs.query_suffix ->
  algo:Analyses.basic ->
  store:Store.t ->
  Jir.Factgen.t ->
  (outcome, Solver_error.t) result
(** Prepare the modified program's engine ({!Analyses.prepare_basic}),
    compare against [store], and re-solve by the cheapest sound route.
    [store] must have been saved from the same algorithm and query
    suffix (the caller's content key discipline); mismatches are
    caught by the relation-set and layout gates, not trusted.
    [Error _] carries budget violations from whichever solve ran. *)

val verdict_to_string : verdict -> string
val cold_reason_to_string : cold_reason -> string

val layout_mismatch : stored:Space.t -> current:Space.t -> string option
(** [None] when the two spaces give the same meaning to the same BDD:
    equal variable counts and every (domain, instance) block at the
    same variable ids.  Otherwise a human-readable description of the
    first mismatch.  This is {!update}'s layout gate, exported so
    {!Certify} can refuse to interpret a store's BDDs against a
    checker engine with a different physical layout. *)
