(** Fault-tolerant query router: the thin tier between clients and a
    fleet of [ptacli serve] followers, speaking the same line protocol
    on both sides.

    Each client line is relayed to one healthy backend and the reply
    (header + body rows) is relayed back verbatim.  Robustness around
    the relay: per-backend circuit breakers (closed / open /
    half-open), bounded retry with exponential backoff + full jitter,
    and failover to a different backend on connect failure, mid-stream
    EOF, per-attempt timeout, or an explicit [err busy]/[err shutdown]
    reply.  Semantic errors from a backend (unknown variable, missing
    relation) are relayed immediately — the backend answered them
    authoritatively.  Only when every attempt is exhausted does the
    client see a synthesized [err unavailable].

    Thread-free by construction (Unix + Mutex/Atomic only): the accept
    loop and periodic {!probe_all} thread live in the ptacli driver.
    Every function is safe to call concurrently. *)

type policy = {
  connect_timeout_s : float;
  request_timeout_s : float;  (** per forwarded attempt, send + full reply *)
  health_timeout_s : float;  (** per {!probe_all} probe *)
  retries : int;  (** extra attempts after the first *)
  backoff_base_s : float;  (** retry [i] sleeps [base * 2^(i-1)], jittered *)
  backoff_max_s : float;
  breaker_threshold : int;  (** consecutive failures that open a breaker *)
  breaker_cooldown_s : float;  (** open duration before a half-open trial *)
}

val default_policy : policy

type t

val create : ?policy:policy -> string list -> t
(** [create addrs] routes over the given unix-socket paths.  Breakers
    start closed; probe state is unknown until the first
    {!probe_all}.  Raises [Invalid_argument] on an empty list. *)

(** Per-client-connection state: a cached (sticky) backend connection
    and a private jitter source.  One session belongs to one
    connection-handler thread at a time. *)
type session

val session : seed:int -> session
(** [seed] differentiates jitter streams across concurrent clients
    (e.g. the connection id). *)

val close_session : session -> unit
(** Close the cached backend connection, if any. *)

(** One framed reply: the backend's header line (or a synthesized
    router header) and its body lines — [rows] lines after [ok],
    exactly one message line after [err]. *)
type reply = { rp_header : string; rp_body : string list }

val handle : t -> session -> string -> reply option
(** One client line: [None] for blank/comment lines (no reply owed);
    [stats] and [health] answered locally from the router's view of
    the fleet (counters, per-backend breaker/probe/identity state);
    anything else relayed through {!forward}.  Never raises. *)

val forward : t -> session -> string -> reply
(** Relay one query with retry/backoff/failover per the policy.  Never
    raises; total failure yields an [err unavailable] reply. *)

val probe_all : t -> unit
(** Health-probe every backend once ([health] with
    [health_timeout_s]): refreshes the per-backend probe state and
    (key, snapshot) identity, closes the breaker of a backend that
    answers, and counts a failure (possibly opening the breaker) for
    one that does not.  The driver calls this from a periodic prober
    thread — it is also the breaker's recovery path when client
    traffic alone would not re-trial an open backend. *)

val stats_lines : t -> string list
(** The router [stats] body: uptime and request/relayed/retries/
    failovers/breaker-trips/unavailable counters, then one
    [backend <addr> state=... probe=... key=... snapshot=...] line per
    backend. *)

val health_lines : t -> string list
(** The router [health] body: [status ok] when at least one breaker is
    closed ([degraded] otherwise), live count, and per-backend
    lines. *)
