let count_checks b =
  let n = ref 0 in
  Budget.set_check_hook b (Some (fun _ -> incr n));
  n

let cancel_after_checks b n =
  let seen = ref 0 in
  Budget.set_check_hook b
    (Some
       (fun b ->
         incr seen;
         if !seen >= n then Budget.cancel b))

let corrupt_file path ~at garbage =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd at Unix.SEEK_SET);
      let b = Bytes.of_string garbage in
      ignore (Unix.write fd b 0 (Bytes.length b)))

(* --- Crash-point injection on the file-system write path --- *)

exception Crashed of string

let fs_hook : (string -> unit) option ref = ref None

let set_fs_hook h = fs_hook := h

let fs_op label =
  match !fs_hook with
  | Some f -> f label
  | None -> ()

let record_fs_ops f =
  let ops = ref [] in
  set_fs_hook (Some (fun l -> ops := l :: !ops));
  Fun.protect
    ~finally:(fun () -> set_fs_hook None)
    (fun () ->
      f ();
      List.rev !ops)

let crash_at_fs_op n f =
  if n < 1 then invalid_arg "Faults.crash_at_fs_op: crash points are 1-based";
  let seen = ref 0 in
  set_fs_hook
    (Some
       (fun l ->
         incr seen;
         if !seen = n then raise (Crashed l)));
  Fun.protect
    ~finally:(fun () -> set_fs_hook None)
    (fun () -> match f () with _ -> None | exception Crashed l -> Some l)
