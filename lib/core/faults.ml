let count_checks b =
  let n = ref 0 in
  Budget.set_check_hook b (Some (fun _ -> incr n));
  n

let cancel_after_checks b n =
  let seen = ref 0 in
  Budget.set_check_hook b
    (Some
       (fun b ->
         incr seen;
         if !seen >= n then Budget.cancel b))

let corrupt_file path ~at garbage =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd at Unix.SEEK_SET);
      let b = Bytes.of_string garbage in
      ignore (Unix.write fd b 0 (Bytes.length b)))
