(* Table-driven reflected CRC-32.  All intermediate values fit in 32
   bits, so plain [int] arithmetic is exact on 64-bit platforms. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then invalid_arg "Crc32.update";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = update 0 s ~pos:0 ~len:(String.length s)

let to_hex c = Printf.sprintf "%08x" (c land 0xFFFFFFFF)

let of_hex s =
  if String.length s <> 8 then None
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some v when v >= 0 && v <= 0xFFFFFFFF -> Some v
    | Some _ | None -> None
