(** Structured solver outcomes.

    Every failure mode of a solve — resource exhaustion, malformed
    input, internal invariant breakage — is represented as a value so
    callers can match on it, rather than as a raw [Failure] backtrace.
    [Datalog.Engine.solve] and the [Analyses] drivers return
    [(_, Solver_error.t) result]; loaders raise {!Error} (the
    exception form exists because parsing happens deep inside
    [input_line] loops), which the drivers and [ptacli] catch and
    convert back to the value form. *)

type bad_input = {
  file : string;
  line : int;  (** 1-based; 0 when the error is not tied to a line *)
  msg : string;
}

type exhaustion = {
  reason : Budget.reason;
  partial_iterations : int;  (** fixpoint rounds completed before the abort *)
  live_nodes : int;  (** live BDD nodes at the moment of the abort *)
}

type t =
  | Budget_exhausted of exhaustion
  | Bad_input of bad_input
  | Internal of string

exception Error of t

val raise_bad_input : file:string -> line:int -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format the message and raise [Error (Bad_input _)]. *)

val to_string : t -> string
(** One-line, user-facing: ["file:line: msg"] for bad input,
    ["budget exhausted: ..."] for exhaustion. *)

val exit_code : t -> int
(** The [ptacli] exit-code convention: 1 = bad input, 2 = budget
    exhausted, 3 = internal error. *)
