type reason =
  | Live_nodes of { limit : int; actual : int }
  | Allocations of { limit : int; actual : int }
  | Table_bytes of { limit : int; actual : int }
  | Timeout of { limit_s : float }
  | Iterations of { limit : int }
  | Cancelled

type t = {
  max_live_nodes : int option;
  max_allocations : int option;
  max_table_bytes : int option;
  max_iterations : int option;
  timeout_s : float option;
  deadline : float option; (* absolute, fixed at [make] *)
  mutable cancelled : bool;
  mutable on_check : (t -> unit) option; (* fault injection; tests only *)
}

let make ?max_live_nodes ?max_allocations ?max_table_bytes ?max_iterations ?timeout_s () =
  {
    max_live_nodes;
    max_allocations;
    max_table_bytes;
    max_iterations;
    timeout_s;
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s;
    cancelled = false;
    on_check = None;
  }

let unlimited () = make ()

let is_unlimited b =
  b.max_live_nodes = None && b.max_allocations = None && b.max_table_bytes = None && b.max_iterations = None
  && b.deadline = None
  && not b.cancelled

let max_live_nodes b = b.max_live_nodes
let max_allocations b = b.max_allocations
let max_table_bytes b = b.max_table_bytes
let max_iterations b = b.max_iterations
let deadline b = b.deadline

let cancel b = b.cancelled <- true
let is_cancelled b = b.cancelled

let set_check_hook b h = b.on_check <- h

let run_hook b =
  match b.on_check with
  | Some f -> f b
  | None -> ()

(* Cancellation is tested before the deadline so an injected cancel is
   reported as [Cancelled] even when the clock has also run out. *)
let interrupt_after_hook b =
  if b.cancelled then Some Cancelled
  else
    match b.deadline with
    | Some d when Unix.gettimeofday () > d -> Some (Timeout { limit_s = Option.value b.timeout_s ~default:0.0 })
    | Some _ | None -> None

let check_interrupt b =
  run_hook b;
  interrupt_after_hook b

let check_nodes b ?(bytes = 0) ~live ~allocs () =
  run_hook b;
  match interrupt_after_hook b with
  | Some r -> Some r
  | None -> (
    match b.max_live_nodes with
    | Some limit when live > limit -> Some (Live_nodes { limit; actual = live })
    | Some _ | None -> (
      match b.max_allocations with
      | Some limit when allocs > limit -> Some (Allocations { limit; actual = allocs })
      | Some _ | None -> (
        match b.max_table_bytes with
        | Some limit when bytes > limit -> Some (Table_bytes { limit; actual = bytes })
        | Some _ | None -> None)))

let check_iterations b ~iterations =
  run_hook b;
  match interrupt_after_hook b with
  | Some r -> Some r
  | None -> (
    match b.max_iterations with
    | Some limit when iterations > limit -> Some (Iterations { limit })
    | Some _ | None -> None)

let reason_to_string = function
  | Live_nodes { limit; actual } -> Printf.sprintf "live BDD nodes %d exceeded the limit of %d" actual limit
  | Allocations { limit; actual } -> Printf.sprintf "BDD node allocations %d exceeded the limit of %d" actual limit
  | Table_bytes { limit; actual } ->
    Printf.sprintf "BDD node-table bytes %d exceeded the limit of %d" actual limit
  | Timeout { limit_s } -> Printf.sprintf "wall-clock timeout of %gs exceeded" limit_s
  | Iterations { limit } -> Printf.sprintf "fixpoint iteration limit of %d exceeded" limit
  | Cancelled -> "cancelled"

let pp_reason fmt r = Format.pp_print_string fmt (reason_to_string r)
