(** Drivers for the paper's analyses.

    Each driver instantiates the corresponding Datalog program from
    {!Programs} over a {!Jir.Factgen} extraction, loads the input
    relations, installs the OCaml-computed inputs (the context
    numbering's [IEC]/[mC] for Algorithms 5-6, the thread contexts'
    [HT]/[vP0T] for Algorithm 7), and solves. *)

type result = { engine : Datalog.Engine.t; stats : Datalog.Engine.stats; program_text : string }

type basic = Algo1  (** context-insensitive, CHA call graph, no filter *)
           | Algo2  (** + type filtering *)
           | Algo3  (** + on-the-fly call graph discovery *)

val prepare_basic :
  ?options:Datalog.Engine.options ->
  ?query:Programs.query_suffix ->
  algo:basic ->
  Jir.Factgen.t ->
  Datalog.Engine.t * string
(** Build the engine (program instantiated, inputs loaded, plans
    compiled) without running it — for [ptacli explain] and custom
    drivers.  Returns the engine and the program text. *)

val run_basic :
  ?options:Datalog.Engine.options -> ?query:Programs.query_suffix -> algo:basic -> Jir.Factgen.t -> result

val solve_basic :
  ?options:Datalog.Engine.options ->
  ?query:Programs.query_suffix ->
  algo:basic ->
  Jir.Factgen.t ->
  (result, Solver_error.t) Stdlib.result
(** {!run_basic} with structured errors: budget violations — including
    ones raised while input relations are still being loaded — come
    back as [Error (Budget_exhausted _)] instead of an exception. *)

val ie_tuples : result -> (int * int) list
(** The discovered call graph of an Algorithm 3 result. *)

val make_context : ?max_bits:int -> Jir.Factgen.t -> ie:(int * int) list -> Context.t
(** Algorithm 4 over a discovered call graph (roots:
    {!Callgraph.default_roots}). *)

val prepare_cs :
  ?options:Datalog.Engine.options ->
  ?query:Programs.query_suffix ->
  Jir.Factgen.t ->
  Context.t ->
  Datalog.Engine.t * string
(** {!prepare_basic}'s analog for Algorithm 5: engine built, inputs and
    computed [IEC]/[mC] installed, not yet run. *)

val prepare_cs_claimed :
  ?options:Datalog.Engine.options ->
  ?query:Programs.query_suffix ->
  ?otf:bool ->
  Jir.Factgen.t ->
  csize:int ->
  Datalog.Engine.t * string
(** The Algorithm 5 program (the [IECd] on-the-fly variant when [otf])
    over an externally claimed context structure: the engine is built
    with the extracted inputs loaded but [IEC]/[mC] left {e empty} —
    the caller installs whatever a candidate solution claims they were.
    This is {!Certify}'s checker for context-sensitive stores, where
    the context numbering is part of the answer being checked, not
    something to recompute. *)

val run_cs :
  ?options:Datalog.Engine.options -> ?query:Programs.query_suffix -> Jir.Factgen.t -> Context.t -> result
(** Algorithm 5: context-sensitive points-to. *)

val solve_cs :
  ?options:Datalog.Engine.options ->
  ?query:Programs.query_suffix ->
  Jir.Factgen.t ->
  Context.t ->
  (result, Solver_error.t) Stdlib.result
(** {!run_cs} with structured errors (see {!solve_basic}). *)

val run_cs_with :
  ?options:Datalog.Engine.options ->
  ?query:Programs.query_suffix ->
  Jir.Factgen.t ->
  csize:int ->
  iec:(int * int * int * int) list ->
  mc:(int * int) list ->
  result
(** Algorithm 5 with an arbitrary context structure supplied as
    explicit [IEC]/[mC] tuples — how alternative context abstractions
    (e.g. {!Kcfa}) plug into the same program. *)

val run_1cfa :
  ?options:Datalog.Engine.options -> ?query:Programs.query_suffix -> Jir.Factgen.t -> result * Kcfa.t
(** Algorithm 5 under 1-CFA contexts (last call site), for the
    cloning-vs-k-CFA precision ablation. *)

val run_cs_otf :
  ?options:Datalog.Engine.options -> ?query:Programs.query_suffix -> Jir.Factgen.t -> result * Context.t
(** §4.2's variant: Algorithm 5 with contexts numbered over the
    conservative CHA call graph and invocation edges ([IECd])
    discovered on the fly from [vPC]. *)

val run_cs_types :
  ?options:Datalog.Engine.options -> ?query:Programs.query_suffix -> Jir.Factgen.t -> Context.t -> result
(** Algorithm 6: context-sensitive type analysis. *)

type thread_info = {
  n_contexts : int;  (** C domain size: 0 = global, 1 = startup thread, then 2 per creation site *)
  thread_sites : (Jir.Ir.heap_id * int * int) list;  (** site, first and second clone context *)
}

val run_thread_escape :
  ?options:Datalog.Engine.options -> ?query:Programs.query_suffix -> Jir.Factgen.t -> result * thread_info
(** Algorithm 7 + §5.6 queries. *)

type escape_counts = { captured_sites : int; escaped_sites : int; needed_syncs : int; unneeded_syncs : int }

val escape_counts : Jir.Factgen.t -> result -> escape_counts
(** Figure 5's per-benchmark counts, from a {!run_thread_escape}
    result: allocation sites captured vs escaped, and sync operations
    needed vs unneeded. *)

(** {2 Graceful degradation}

    A resource-governed run that cannot finish the precise analysis can
    still return a sound answer: every rung of the ladder is a sound
    overapproximation of the one above it
    (vP{_ cs} ⊆ vP{_ ci} ⊆ vP{_ steens}), so degrading trades precision,
    never soundness. *)

type rung =
  | Rung_cs  (** Algorithms 3+4+5: on-the-fly call graph, context numbering, context-sensitive solve *)
  | Rung_ci  (** Algorithm 2: context-insensitive with type filtering *)
  | Rung_steens  (** Steensgaard unification — near-linear, no BDDs *)

type fallback = {
  rung : rung;  (** the rung that produced the answer *)
  result : result option;  (** engine-backed result for [Rung_cs]/[Rung_ci] *)
  steens : Steensgaard.result option;  (** set only for [Rung_steens] *)
  vp : (int * int) list;
      (** the variable points-to pairs [(v, h)] of the answering rung,
          context-projected for [Rung_cs]; sorted, duplicate-free *)
  failures : (rung * Solver_error.t) list;  (** rungs tried and exhausted before the answer, in order *)
}

val rung_name : rung -> string

val solve_with_fallback :
  ?options:Datalog.Engine.options ->
  ?budget:Budget.t ->
  ?query:Programs.query_suffix ->
  ?certify_rungs:bool ->
  Jir.Factgen.t ->
  (fallback, Solver_error.t) Stdlib.result
(** Try [Rung_cs] under [budget]; on budget exhaustion retry [Rung_ci],
    then [Rung_steens].  The single budget governs the whole ladder
    (its deadline is absolute; node/allocation limits reset per rung
    because each rung builds a fresh manager).  Only resource
    exhaustion degrades: cancellation, bad input and internal errors
    are returned as [Error] immediately.

    With [certify_rungs] (default off), each BDD-backed rung's answer
    is certified before being accepted — one non-committing application
    of every rule ({!Datalog.Engine.check_fixpoint}); a violation is
    recorded in [failures] as an [Internal] error naming the unclosed
    rule, and the ladder degrades to the next rung exactly as if the
    rung had exhausted its budget.  [Rung_steens] has no Datalog engine
    and is accepted unchecked. *)

(** {2 Result access} *)

val relation : result -> string -> Relation.t
val tuples : result -> string -> int array list
val count : result -> string -> float

type refinement_ratios = { population : float; multi_pct : float; refinable_pct : float }

val refinement_ratios : result -> per_clone:bool -> refinement_ratios
(** Read the Figure 6 percentages off a result whose program included
    one of the {!Queries} refinement suffixes ([per_clone] selects the
    [activeC]/[multiC]/[refinableC] outputs). *)
