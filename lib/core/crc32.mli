(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the
    content checksum used by the persistence layer.

    Dependency-free and allocation-free after the first call (the
    lookup table is built lazily).  Values are non-negative 32-bit
    integers carried in OCaml [int]s; {!to_hex}/{!of_hex} give the
    8-digit lowercase form recorded in store manifests.

    Detection properties relied on by the store's corruption tests:
    CRC-32 detects every single-byte error and every burst error up to
    32 bits, so a random byte flip in a checksummed file is always
    caught. *)

val update : int -> string -> pos:int -> len:int -> int
(** [update crc s ~pos ~len] extends [crc] over [s.[pos .. pos+len-1]].
    Start from [0]; chaining [update] over consecutive slices equals
    one pass over the concatenation. *)

val string : string -> int
(** [string s = update 0 s ~pos:0 ~len:(String.length s)]. *)

val to_hex : int -> string
(** 8 lowercase hex digits, zero-padded. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex digits. *)
