(** The §5 queries, as {!Programs.query_suffix} values composed onto
    the analysis programs.

    All six Figure 6 type-refinement variants share the outputs
    [activeV]/[multiT]/[refinable] (or their per-clone counterparts
    [activeC]/[multiC]/[refinableC]) so the drivers can compute the
    percentages uniformly. *)

val refinement_ci : Programs.query_suffix
(** §5.3 over a context-insensitive [vP] (Figure 6 columns 1-2,
    depending on the base algorithm). *)

val refinement_projected_cs : Programs.query_suffix
(** Over [vPC] with the context projected away (Figure 6 column 3). *)

val refinement_projected_ts : Programs.query_suffix
(** Over [vTC] projected (Figure 6 column 4). *)

val refinement_full_cs : Programs.query_suffix
(** Per-clone refinement over [vPC] (Figure 6 column 5). *)

val refinement_full_ts : Programs.query_suffix
(** Per-clone refinement over [vTC] (Figure 6 column 6). *)

val mod_ref : Programs.query_suffix
(** §5.4 context-sensitive mod-ref over Algorithm 5's results:
    outputs [mVC], [modset], [refset]. *)

val who_points_to : heap_label:string -> Programs.query_suffix
(** §5.1 memory-leak debugging: who may point to objects allocated at
    the site labelled [heap_label], and which stores (with contexts)
    created the references.  Outputs [whoPointsTo], [whoDunnit]. *)

val jce_vuln : init_method:string -> Programs.query_suffix
(** §5.2 security audit: objects derived from [String] flowing into
    the first argument of [init_method] (e.g. ["PBEKeySpec.init"]).
    Outputs [fromString], [vuln]. *)

val combine : Programs.query_suffix -> Programs.query_suffix -> Programs.query_suffix
(** Concatenate two query suffixes so one solve materializes both
    result sets (e.g. mod-ref plus refinement before persisting a
    store that will serve either kind of question). *)

(** {2 Store-backed evaluation}

    The same questions answered directly from already-solved relations
    — fresh from an engine or loaded back from a {!Bddrel.Store} —
    with plain relational algebra, no Datalog re-solve.  All
    intermediate relations are disposed, so these are safe to call in
    a long-running query server.  Results are sorted and duplicate
    free.

    Each takes the relevant solved relation: a points-to relation with
    ["variable"] and ["heap"] attributes ([vP], or [vPC] with its
    context attribute existentially projected per query), or a mod/ref
    set with ["method"], ["heap"], ["field"] attributes. *)

val points_to : Bddrel.Relation.t -> var:int -> int list
(** Heap ordinals the variable may point to. *)

val pointed_by : Bddrel.Relation.t -> heap:int -> int list
(** Variable ordinals that may point to the heap object — the §5.1
    memory-leak direction. *)

val alias_heaps : Bddrel.Relation.t -> v1:int -> v2:int -> int list
(** Heap ordinals both variables may point to; the variables alias iff
    this is non-empty.  Computed as a BDD intersection of the two
    projected heap sets. *)

val mod_ref_sites : Bddrel.Relation.t -> meth:int -> (int * int) list
(** [(heap, field)] pairs the method may modify (pass [modset]) or
    read (pass [refset]), in any calling context. *)

(** {2 Frozen-space evaluation}

    The same four evaluators over {!Bddrel.Relation.frozen} handles,
    parameterized by a per-domain {!Bdd.ctx}: intermediates
    live in the ctx (no disposal — the caller's [ctx_reset] reclaims
    them wholesale), so many domains can evaluate concurrently over
    one frozen store.  Results are identical to the live versions. *)

val points_to_ctx : Bdd.ctx -> Bddrel.Relation.frozen -> var:int -> int list
val pointed_by_ctx : Bdd.ctx -> Bddrel.Relation.frozen -> heap:int -> int list
val alias_heaps_ctx : Bdd.ctx -> Bddrel.Relation.frozen -> v1:int -> v2:int -> int list
val mod_ref_sites_ctx : Bdd.ctx -> Bddrel.Relation.frozen -> meth:int -> (int * int) list
