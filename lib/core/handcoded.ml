module Factgen = Jir.Factgen

type stats = { vp_count : float; hp_count : float; iterations : int; peak_live_nodes : int; seconds : float }
type result = { vp_rel : Relation.t; hp_rel : Relation.t; st : stats }

let stats r = r.st

(* Precomputed CHA assign tuples (the paper's Algorithm 2 assumes the
   assign relation is derived from an a-priori call graph). *)
let assign_tuples fg =
  let p = fg.Factgen.program in
  let actuals : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun t ->
      match t with
      | [ i; z; v ] -> Hashtbl.replace actuals (i, z) v
      | _ -> ())
    (Factgen.relation fg "actual");
  let irets : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun t ->
      match t with
      | [ i; v ] -> Hashtbl.replace irets i v
      | _ -> ())
    (Factgen.relation fg "Iret");
  let mthrs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun t ->
      match t with
      | [ m; v ] -> Hashtbl.replace mthrs m v
      | _ -> ())
    (Factgen.relation fg "Mthr");
  let out = ref [] in
  List.iter
    (fun t ->
      match t with
      | [ d; s ] -> out := (d, s) :: !out
      | _ -> ())
    (Factgen.relation fg "copyAssign");
  List.iter
    (fun (e : Callgraph.edge) ->
      let callee = Jir.Ir.meth p e.Callgraph.callee in
      List.iteri
        (fun z formal ->
          match Hashtbl.find_opt actuals (e.Callgraph.site, z) with
          | Some actual -> out := (formal, actual) :: !out
          | None -> ())
        callee.Jir.Ir.m_formals;
      (* Exceptions: the callee's in-flight exception flows to the
         caller's. *)
      (match
         ( Hashtbl.find_opt mthrs (Jir.Ir.invoke p e.Callgraph.site).Jir.Ir.i_method,
           Hashtbl.find_opt mthrs e.Callgraph.callee )
       with
      | Some caller_exc, Some callee_exc -> out := (caller_exc, callee_exc) :: !out
      | _, _ -> ());
      (match Hashtbl.find_opt irets e.Callgraph.site with
      | Some ret_var ->
        List.iter
          (fun t ->
            match t with
            | [ m; v ] when m = e.Callgraph.callee -> out := (ret_var, v) :: !out
            | _ -> ())
          (Factgen.relation fg "Mret")
      | None -> ()))
    (Callgraph.cha_edges p);
  List.sort_uniq compare !out

let run fg =
  let t0 = Unix.gettimeofday () in
  let sp = Space.create ~cache_bits:18 () in
  let man = Space.man sp in
  let dom name = Domain.make ~name ~size:(Factgen.dom_size fg name) () in
  let dv = dom "V" and dh = dom "H" and df = dom "F" and dt = dom "T" in
  let vb = Space.alloc_interleaved sp dv 2 in
  let hb = Space.alloc_interleaved sp dh 2 in
  let f0 = Space.alloc sp df in
  let tb = Space.alloc_interleaved sp dt 2 in
  let v0 = vb.(0) and v1 = vb.(1) and h0 = hb.(0) and h1 = hb.(1) in
  let t0b = tb.(0) and t1b = tb.(1) in
  (* Load input relations into fixed blocks. *)
  let load_rel name blocks =
    let b = ref Bdd.bdd_false in
    List.iter
      (fun tu ->
        let minterm =
          List.fold_left2 (fun acc blk v -> Bdd.mk_and man acc (Space.const sp blk v)) Bdd.bdd_true blocks tu
        in
        b := Bdd.mk_or man !b minterm)
      (Factgen.relation fg name);
    ref !b
  in
  let vp = load_rel "vP0" [ v0; h0 ] in
  List.iter
    (fun tu ->
      match tu with
      | [ v; h ] -> vp := Bdd.mk_or man !vp (Bdd.mk_and man (Space.const sp v0 v) (Space.const sp h0 h))
      | _ -> ())
    (Factgen.relation fg "vP0g");
  let store_b = load_rel "store" [ v0; f0; v1 ] in
  let load_b = load_rel "load" [ v0; f0; v1 ] in
  let vt = load_rel "vT" [ v0; t0b ] in
  let ht = load_rel "hT" [ h0; t1b ] in
  let at = load_rel "aT" [ t0b; t1b ] in
  let assign = ref Bdd.bdd_false in
  List.iter
    (fun (d, s) ->
      assign := Bdd.mk_or man !assign (Bdd.mk_and man (Space.const sp v0 d) (Space.const sp v1 s)))
    (assign_tuples fg);
  (* vPfilter(v, h) = exists t0 t1. vT(v,t0) & aT(t0,t1) & hT(h,t1). *)
  let tmp = Bdd.relprod man ~cube:(Space.cube sp t1b) !at !ht in
  let vpfilter = ref (Bdd.relprod man ~cube:(Space.cube sp t0b) !vt tmp) in
  let hp = ref Bdd.bdd_false in
  List.iter (Bdd.add_root man) [ vp; store_b; load_b; vt; ht; at; assign; vpfilter; hp ];
  (* Renamings used by the §2.4.1 pseudocode. *)
  let v0_to_v1 = Space.renaming sp [ (v0, v1) ] in
  let v0h0_to_v1h1 = Space.renaming sp [ (v0, v1); (h0, h1) ] in
  let v1h1_to_v0h0 = Space.renaming sp [ (v1, v0); (h1, h0) ] in
  (* The cubes must survive the in-loop collections too — as registered
     refs, so a compacting collection rewrites them in place. *)
  let cube_v0 = ref (Space.cube sp v0) in
  let cube_v1 = ref (Space.cube sp v1) in
  let cube_h0f0 = ref (Space.cube_of_blocks sp [ h0; f0 ]) in
  List.iter (Bdd.add_root man) [ cube_v0; cube_v1; cube_h0f0 ];
  let iterations = ref 0 in
  let changed = ref true in
  while !changed do
    incr iterations;
    changed := false;
    (* Rule (7), incrementalized exactly as in the paper's example:
       join only the new vP tuples against assign. *)
    let d = ref !vp in
    while !d <> Bdd.bdd_false do
      let t1 = Bdd.replace man v0_to_v1 !d in
      let t2 = Bdd.relprod man ~cube:!cube_v1 !assign t1 in
      let t2 = Bdd.mk_and man t2 !vpfilter in
      let fresh = Bdd.mk_diff man t2 !vp in
      vp := Bdd.mk_or man !vp fresh;
      if fresh <> Bdd.bdd_false then changed := true;
      d := fresh
    done;
    (* Rule (8): hP(h1,f,h2) from stores. *)
    let s1 = Bdd.relprod man ~cube:!cube_v0 !store_b !vp in
    let vp_v1h1 = Bdd.replace man v0h0_to_v1h1 !vp in
    let hp_new = Bdd.relprod man ~cube:!cube_v1 s1 vp_v1h1 in
    let hp' = Bdd.mk_or man !hp hp_new in
    if hp' <> !hp then begin
      hp := hp';
      changed := true
    end;
    (* Rule (9): loads. *)
    let l1 = Bdd.relprod man ~cube:!cube_v0 !load_b !vp in
    let l2 = Bdd.relprod man ~cube:!cube_h0f0 l1 !hp in
    let l3 = Bdd.mk_and man (Bdd.replace man v1h1_to_v0h0 l2) !vpfilter in
    let fresh = Bdd.mk_diff man l3 !vp in
    if fresh <> Bdd.bdd_false then begin
      vp := Bdd.mk_or man !vp fresh;
      changed := true
    end;
    Bdd.gc man
  done;
  (* Wrap the results for tuple access. *)
  let vp_rel =
    Relation.make sp ~name:"vP" [ { Relation.attr_name = "v"; block = v0 }; { Relation.attr_name = "h"; block = h0 } ]
  in
  Relation.set_bdd vp_rel !vp;
  let hp_rel =
    Relation.make sp ~name:"hP"
      [
        { Relation.attr_name = "h1"; block = h0 };
        { Relation.attr_name = "f"; block = f0 };
        { Relation.attr_name = "h2"; block = h1 };
      ]
  in
  Relation.set_bdd hp_rel !hp;
  {
    vp_rel;
    hp_rel;
    st =
      {
        vp_count = Relation.count vp_rel;
        hp_count = Relation.count hp_rel;
        iterations = !iterations;
        peak_live_nodes = Bdd.peak_live_nodes man;
        seconds = Unix.gettimeofday () -. t0;
      };
  }

let vp_tuples r =
  List.map
    (fun t ->
      match Array.to_list t with
      | [ v; h ] -> (v, h)
      | _ -> invalid_arg "Handcoded.vp_tuples")
    (Relation.tuples r.vp_rel)
  |> List.sort compare

let hp_tuples r =
  List.map
    (fun t ->
      match Array.to_list t with
      | [ a; b; c ] -> (a, b, c)
      | _ -> invalid_arg "Handcoded.hp_tuples")
    (Relation.tuples r.hp_rel)
  |> List.sort compare
