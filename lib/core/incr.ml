module Factgen = Jir.Factgen
module Engine = Datalog.Engine

type cold_reason =
  | Layout_changed of string
  | Relation_set_changed of string list
  | Removals of string list
  | Negation of string list

type verdict = Incremental | Unchanged | Cold of cold_reason

type outcome = {
  engine : Engine.t;
  program_text : string;
  verdict : verdict;
  stats : Engine.stats option; (* None for Unchanged: nothing was solved *)
  deltas : (string * Bdd.t * Bdd.t) list;
  changed_inputs : string list;
}

let cold_reason_to_string = function
  | Layout_changed msg -> Printf.sprintf "variable layout changed (%s)" msg
  | Relation_set_changed names ->
    Printf.sprintf "stored relation set differs from the program's (%s)" (String.concat ", " names)
  | Removals names -> Printf.sprintf "input tuples removed (%s)" (String.concat ", " names)
  | Negation names -> Printf.sprintf "program negates %s" (String.concat ", " names)

let verdict_to_string = function
  | Incremental -> "incremental"
  | Unchanged -> "unchanged"
  | Cold reason -> Printf.sprintf "cold (%s)" (cold_reason_to_string reason)

(* The exact physical layout of a space: every block's (domain,
   instance, variable ids), sorted.  Two spaces with equal shapes give
   the same meaning to the same BDD, which is what makes the
   serialize/deserialize transfer below — and the whole delta-layer
   scheme — valid.  Domain {e sizes} are deliberately not part of the
   shape: a domain may grow within its bit width without moving any
   variable. *)
let space_shape sp =
  List.sort compare
    (List.concat_map
       (fun d ->
         List.map (fun (b : Space.block) -> (Domain.name d, b.Space.instance, b.Space.bits)) (Space.instances sp d))
       (Space.domains sp))

let layout_mismatch ~stored ~current =
  if Space.num_vars stored <> Space.num_vars current then
    Some (Printf.sprintf "%d variables stored, %d now" (Space.num_vars stored) (Space.num_vars current))
  else
    let s = space_shape stored and c = space_shape current in
    if s = c then None
    else
      let rec first_diff s c =
        match (s, c) with
        | (dn, i, _) :: s', (dn', i', _) :: c' ->
          if (dn, i) = (dn', i') then first_diff s' c' else Some (Printf.sprintf "block %s#%d" dn i)
        | ((dn, i, _) :: _, []) | ([], (dn, i, _) :: _) -> Some (Printf.sprintf "block %s#%d" dn i)
        | [], [] -> None
      in
      Some
        (match first_diff s c with
        | Some which -> which ^ " moved or resized"
        | None -> "block widths changed")

(* Copy every stored relation's BDD into the engine's manager as one
   shared-DAG transfer.  Only valid when the layouts match. *)
let transfer_relations store eng =
  let srels = Store.relations store in
  let roots = Bdd.copy (Space.man (Store.space store)) (Space.man (Engine.space eng)) (List.map Relation.bdd srels) in
  List.map2 (fun r b -> (Relation.name r, b)) srels roots

let sym_diff a b =
  List.sort_uniq compare (List.filter (fun x -> not (List.mem x b)) a @ List.filter (fun x -> not (List.mem x a)) b)

let update ?options ?query ~algo ~store fg =
  let engine, program_text = Analyses.prepare_basic ?options ?query ~algo fg in
  let man = Space.man (Engine.space engine) in
  let declared = List.map Relation.name (Engine.declared_relations engine) in
  let stored = List.map Relation.name (Store.relations store) in
  let finish verdict stats deltas changed_inputs = Ok { engine; program_text; verdict; stats; deltas; changed_inputs } in
  (* A cold fall-back is just the ordinary full solve on the freshly
     prepared engine: inputs already hold the new program's tuples and
     no derived relation has been seeded with stale state. *)
  let cold reason =
    match Engine.solve engine with
    | Ok stats -> finish (Cold reason) (Some stats) [] []
    | Error e -> Error e
  in
  if List.sort compare declared <> List.sort compare stored then
    cold (Relation_set_changed (sym_diff declared stored))
  else
    match layout_mismatch ~stored:(Store.space store) ~current:(Engine.space engine) with
    | Some msg -> cold (Layout_changed msg)
    | None -> (
      let old = transfer_relations store engine in
      let old_of name = List.assoc name old in
      (* Per-input BDD diffs against the stored run's inputs. *)
      let input_diffs =
        List.map
          (fun r ->
            let name = Relation.name r in
            let prev = old_of name and now = Relation.bdd r in
            (name, Bdd.mk_diff man now prev, Bdd.mk_diff man prev now))
          (Engine.input_relations engine)
      in
      let removals = List.filter_map (fun (n, _, rem) -> if rem <> Bdd.bdd_false then Some n else None) input_diffs in
      let additions = List.filter_map (fun (n, add, _) -> if add <> Bdd.bdd_false then Some n else None) input_diffs in
      if removals <> [] then
        (* Retracting an input can retract derived facts, and the
           engine's commits are strictly monotone — the stored fixpoint
           is no longer an under-approximation of the new one.  The
           explicit policy rung: any removal ⇒ cold. *)
        cold (Removals removals)
      else if additions = [] then begin
        (* Semantically identical inputs: adopt the stored fixpoint
           wholesale, solve nothing. *)
        List.iter (fun r -> Relation.set_bdd r (old_of (Relation.name r))) (Engine.declared_relations engine);
        finish Unchanged None [] []
      end
      else
        match Engine.negated_relations engine with
        | _ :: _ as negated ->
          (* Subtraction makes rules non-monotone in the subtracted
             relation; additions anywhere upstream of one can retract
             derived facts.  Conservative gate: any negation ⇒ cold. *)
          cold (Negation (List.sort compare negated))
        | [] -> (
          (* Incremental path: start every derived relation from the
             stored fixpoint, keep the freshly extracted inputs, and
             re-solve from only the added tuples. *)
          let is_input name = List.exists (fun (n, _, _) -> n = name) input_diffs in
          List.iter
            (fun r ->
              let name = Relation.name r in
              if not (is_input name) then Relation.set_bdd r (old_of name))
            (Engine.declared_relations engine);
          (* The old values are read again after the solve (to compute
             the store deltas) — keep them alive across its GCs as a
             registered root list, which compacting collections rewrite
             in place (so the handles stay valid after renumbering;
             [old]'s own handles are stale once the solve has GC'd). *)
          let names = List.map fst old in
          let rooted = ref (List.map snd old) in
          Bdd.add_root_list man rooted;
          let changed = List.filter_map (fun (n, add, _) -> if add <> Bdd.bdd_false then Some (n, add) else None) input_diffs in
          match Engine.solve_incremental engine ~changed with
          | Error e ->
            Bdd.remove_root_list man rooted;
            Error e
          | Ok stats ->
            let old_now name = List.assoc name (List.combine names !rooted) in
            let deltas =
              List.filter_map
                (fun name ->
                  let prev = old_now name and now = Relation.bdd (Engine.relation engine name) in
                  let add = Bdd.mk_diff man now prev and rem = Bdd.mk_diff man prev now in
                  if add = Bdd.bdd_false && rem = Bdd.bdd_false then None else Some (name, add, rem))
                declared
            in
            Bdd.remove_root_list man rooted;
            finish Incremental (Some stats) deltas additions))
