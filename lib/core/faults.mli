(** Deterministic fault injection for the robustness test-suite.

    Two families of hooks:

    - {b Budget checks} work through {!Budget.set_check_hook}: the hook
      fires at the start of every amortized budget check — inside
      [Bdd.mk] every [Bdd.budget_check_interval] fresh allocations, and
      in the Datalog engine between rule applications and at the top of
      each fixpoint round — so faults land at exactly the points where
      a real limit violation would be observed.

    - {b File-system write ops} work through {!fs_op}: the persistence
      layer ([Bddrel.Store]) announces every mutation it is about to
      make (create temp, write, fsync, rename, remove), and the
      {!crash_at_fs_op} harness simulates a [kill -9] at any one of
      them by raising {!Crashed} there — every syscall before the
      crash point has happened, nothing after it does.  The crash
      model is process death, not power loss: completed writes are
      assumed durable (which the store's fsync barriers make true of
      the real thing as well).

    Production code calls only {!fs_op}, which is a no-op unless a
    test installed a hook; nothing else here is used by production
    code paths. *)

val count_checks : Budget.t -> int ref
(** Install a counting hook and return the counter; replaces any
    previously installed hook. *)

val cancel_after_checks : Budget.t -> int -> unit
(** Flip the budget's cancellation flag at the [n]-th check (1-based):
    the solve aborts with [Budget.Cancelled] mid-flight, at a
    deterministic point.  Replaces any previously installed hook. *)

val corrupt_file : string -> at:int -> string -> unit
(** Overwrite the file in place starting at byte offset [at] with the
    given bytes — a deterministic input corruption for loader tests
    (the file keeps its length when the patch fits). *)

(** {2 Write-path crash points} *)

exception Crashed of string
(** Raised by the injected hook at the chosen crash point; the payload
    is the {!fs_op} label.  Write paths treat it like process death:
    they stop immediately and run {e no} cleanup (a killed process
    removes nothing), only releasing OS resources such as open file
    descriptors (which the kernel would reclaim). *)

val fs_op : string -> unit
(** Announce an imminent file-system mutation.  Called by production
    write paths immediately {e before} each mutation; a no-op unless a
    hook is installed.  Labels are ["<verb> <path>"], e.g.
    ["rename /x/store/manifest"]. *)

val set_fs_hook : (string -> unit) option -> unit
(** Install (or clear) the global {!fs_op} hook.  Tests only. *)

val record_fs_ops : (unit -> unit) -> string list
(** Run the action with a recording hook installed and return every
    {!fs_op} label in order — the enumeration of crash points a write
    path exposes.  The hook is removed afterwards. *)

val crash_at_fs_op : int -> (unit -> 'a) -> string option
(** [crash_at_fs_op n f] runs [f] with a hook that raises {!Crashed}
    at the [n]-th (1-based) {!fs_op}, simulating a kill at that exact
    point.  Returns [Some label] when the crash fired, [None] when [f]
    finished with fewer than [n] ops.  The hook is removed afterwards,
    even if [f] raises something else. *)
