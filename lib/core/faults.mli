(** Deterministic fault injection for the robustness test-suite.

    All helpers work through {!Budget.set_check_hook}: the hook fires
    at the start of every amortized budget check — inside [Bdd.mk]
    every [Bdd.budget_check_interval] fresh allocations, and in the
    Datalog engine between rule applications and at the top of each
    fixpoint round — so faults land at exactly the points where a real
    limit violation would be observed.  Nothing here is used by
    production code paths. *)

val count_checks : Budget.t -> int ref
(** Install a counting hook and return the counter; replaces any
    previously installed hook. *)

val cancel_after_checks : Budget.t -> int -> unit
(** Flip the budget's cancellation flag at the [n]-th check (1-based):
    the solve aborts with [Budget.Cancelled] mid-flight, at a
    deterministic point.  Replaces any previously installed hook. *)

val corrupt_file : string -> at:int -> string -> unit
(** Overwrite the file in place starting at byte offset [at] with the
    given bytes — a deterministic input corruption for loader tests
    (the file keeps its length when the patch fits). *)
