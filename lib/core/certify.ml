module Engine = Datalog.Engine
module Ast = Datalog.Ast

type witness = {
  w_relation : string;
  w_attrs : string list;
  w_tuples : string list list;
  w_total : float;
}

type failure =
  | Unsupported of string
  | Shape_mismatch of string
  | Input_not_contained of { relation : string; witness : witness }
  | Rule_not_closed of { rule : string; rule_pos : string option; stratum : int; witness : witness }

type report = { c_algo : string; c_relations : int; c_rules : int; c_strata : int; c_seconds : float }
type verdict = { v_report : report; v_failure : failure option }

let passed v = v.v_failure = None

(* Read a bounded sample out of [rel] — a scratch relation holding a
   violating tuple set — rendering elements through their domains'
   names.  [relation] is the violated relation's real name (the scratch
   holder's is a mangled internal one). *)
let sample_of ~max_witness ~relation rel =
  let total = Relation.count rel in
  let attrs = Relation.attrs rel in
  let doms = List.map (fun (a : Relation.attr) -> a.Relation.block.Space.dom) attrs in
  let sample = ref [] and n = ref 0 in
  (try
     Relation.iter_tuples rel (fun tu ->
         if !n >= max_witness then raise Exit;
         incr n;
         sample := List.mapi (fun i d -> Domain.element_name d tu.(i)) doms :: !sample)
   with Exit -> ());
  {
    w_relation = relation;
    w_attrs = List.map (fun (a : Relation.attr) -> a.Relation.attr_name) attrs;
    w_tuples = List.rev !sample;
    w_total = total;
  }

(* Materialize [get ()] — a violating tuple set over [src]'s attributes
   — into a scratch relation and sample it.  [get] re-reads a rooted
   handle at the last possible moment: any allocation here can trigger
   a compacting collection, which rewrites rooted lists in place, so a
   handle captured earlier may be stale. *)
let witness_of ~max_witness src get =
  let tmp = Relation.make (Relation.space src) ~name:(Relation.name src ^ "#viol") (Relation.attrs src) in
  Fun.protect
    ~finally:(fun () -> Relation.dispose tmp)
    (fun () ->
      Relation.set_bdd tmp (get ());
      sample_of ~max_witness ~relation:(Relation.name src) tmp)

(* Containment check: every freshly extracted input tuple must already
   be in the candidate.  The fresh tuples come in as explicit lists (a
   new {!Programs.input_relations} extraction), deliberately not read
   from the engine — by the time this runs the engine's relations hold
   the candidate's values, which is the thing under suspicion. *)
let input_failure ~max_witness eng inputs =
  let sp = Engine.space eng in
  let man = Space.man sp in
  List.fold_left
    (fun acc (name, tuples) ->
      match acc with
      | Some _ -> acc
      | None -> (
        match Engine.relation eng name with
        | exception Engine.Engine_error _ ->
          (* Extraction relations the checked program doesn't declare
             (a query-suffix-less variant, say) constrain nothing. *)
          None
        | rel ->
          let tmp = Relation.make sp ~name:(name ^ "#fresh") (Relation.attrs rel) in
          Fun.protect
            ~finally:(fun () -> Relation.dispose tmp)
            (fun () ->
              Relation.set_tuples tmp (List.map Array.of_list tuples);
              let diff = Bdd.mk_diff man (Relation.bdd tmp) (Relation.bdd rel) in
              if diff = Bdd.bdd_false then None
              else begin
                (* Park the diff in the scratch relation: its BDD slot
                   is a GC root, so the sampling work can't lose it. *)
                Relation.set_bdd tmp diff;
                Some (Input_not_contained { relation = name; witness = sample_of ~max_witness ~relation:name tmp })
              end)))
    None inputs

(* Closure check: one full, non-committing application of every
   compiled rule.  The first violation's fresh-tuple set is unrooted
   the moment [check_fixpoint] returns (no BDD work happens in
   between), so re-root it before sampling. *)
let rule_failure ~max_witness eng =
  let man = Space.man (Engine.space eng) in
  match Engine.check_fixpoint ~max_violations:1 eng with
  | [] -> None
  | { Engine.vio_stratum; vio_rule; vio_head; vio_fresh } :: _ ->
    let dref = ref [ vio_fresh ] in
    Bdd.add_root_list man dref;
    Fun.protect
      ~finally:(fun () -> Bdd.remove_root_list man dref)
      (fun () ->
        let witness = witness_of ~max_witness vio_head (fun () -> List.hd !dref) in
        Some
          (Rule_not_closed
             {
               rule = Format.asprintf "%a" Ast.pp_rule vio_rule;
               rule_pos = Option.map (fun p -> Format.asprintf "%a" Ast.pp_pos p) vio_rule.Ast.rule_pos;
               stratum = vio_stratum;
               witness;
             }))

let certify_engine ?(algo = "<live>") ?(max_witness = 5) ?fresh_inputs eng =
  let t0 = Unix.gettimeofday () in
  let strata = Engine.ir_plans eng in
  let v_failure =
    match
      match fresh_inputs with
      | None -> None
      | Some inputs -> input_failure ~max_witness eng inputs
    with
    | Some _ as f -> f
    | None -> rule_failure ~max_witness eng
  in
  {
    v_report =
      {
        c_algo = algo;
        c_relations = List.length (Engine.declared_relations eng);
        c_rules = List.fold_left (fun n (once, loop) -> n + List.length once + List.length loop) 0 strata;
        c_strata = List.length strata;
        c_seconds = Unix.gettimeofday () -. t0;
      };
    v_failure;
  }

(* --- Store certification --- *)

(* Rebuild an independent checker engine for the algorithm tag the
   store's config records.  The context-sensitive tags share one
   claimed-context checker: the Algorithm 5 program at the store's C
   domain size, with IEC/mC left empty for the candidate to fill —
   the context numbering is part of the answer, not recomputed. *)
let checker_engine ?options ?query fg store =
  match Store.config_value store "algo" with
  | None -> Error (Unsupported "store config records no algo tag")
  | Some algo -> (
    match algo with
    | "algo1" | "algo2" | "algo3" ->
      let basic =
        match algo with
        | "algo1" -> Analyses.Algo1
        | "algo2" -> Analyses.Algo2
        | _ -> Analyses.Algo3
      in
      Ok (fst (Analyses.prepare_basic ?options ?query ~algo:basic fg), algo)
    | "algo5" | "1cfa" | "algo5-otf" -> (
      match Store.domain store "C" with
      | None -> Error (Shape_mismatch (Printf.sprintf "%s store has no C domain" algo))
      | Some d ->
        Ok
          ( fst (Analyses.prepare_cs_claimed ?options ?query ~otf:(algo = "algo5-otf") fg ~csize:(Domain.size d)),
            algo ))
    | other -> Error (Unsupported (Printf.sprintf "no independent rule set for algo %S" other)))

let report_stub algo seconds = { c_algo = algo; c_relations = 0; c_rules = 0; c_strata = 0; c_seconds = seconds }

let certify_store ?options ?query ?(max_witness = 5) fg store =
  let t0 = Unix.gettimeofday () in
  let fail algo f = { v_report = report_stub algo (Unix.gettimeofday () -. t0); v_failure = Some f } in
  match checker_engine ?options ?query fg store with
  | Error f -> fail (Option.value (Store.config_value store "algo") ~default:"?") f
  | Ok (eng, algo) -> (
    match Incr.layout_mismatch ~stored:(Store.space store) ~current:(Engine.space eng) with
    | Some msg -> fail algo (Shape_mismatch msg)
    | None -> (
      let declared = Engine.declared_relations eng in
      match List.filter (fun r -> Option.is_none (Store.find store (Relation.name r))) declared with
      | _ :: _ as missing ->
        fail algo
          (Shape_mismatch
             (Printf.sprintf "store lacks relation(s) %s" (String.concat ", " (List.map Relation.name missing))))
      | [] ->
        let man = Space.man (Engine.space eng) in
        let srels = List.map (fun r -> Option.get (Store.find store (Relation.name r))) declared in
        let rooted = ref (Bdd.copy (Space.man (Store.space store)) man (List.map Relation.bdd srels)) in
        Bdd.add_root_list man rooted;
        Fun.protect
          ~finally:(fun () -> Bdd.remove_root_list man rooted)
          (fun () ->
            (* Install the candidate wholesale — including its claimed
               computed inputs (IEC/mC for Algorithm 5 programs), which
               the claimed-context checker deliberately left empty.
               Handles are re-read through the rooted ref at each use:
               compacting collections rewrite the list in place. *)
            List.iteri (fun i r -> Relation.set_bdd r (List.nth !rooted i)) declared;
            let v = certify_engine ~algo ~max_witness ~fresh_inputs:(Programs.input_relations fg) eng in
            { v with v_report = { v.v_report with c_seconds = Unix.gettimeofday () -. t0 } })))

(* --- Rendering --- *)

let witness_lines w =
  let shown = List.length w.w_tuples in
  let header =
    Printf.sprintf "  %s(%s): %.0f violating tuple%s%s" w.w_relation (String.concat ", " w.w_attrs) w.w_total
      (if w.w_total = 1.0 then "" else "s")
      (if float_of_int shown < w.w_total then Printf.sprintf ", showing %d" shown else "")
  in
  header :: List.map (fun t -> "    (" ^ String.concat ", " t ^ ")") w.w_tuples

let failure_to_string = function
  | Unsupported msg -> "unsupported: " ^ msg
  | Shape_mismatch msg -> "shape mismatch: " ^ msg
  | Input_not_contained { relation; witness } ->
    Printf.sprintf "input %s not contained in the solution (%.0f tuple(s) missing)" relation witness.w_total
  | Rule_not_closed { rule; rule_pos; stratum; witness } ->
    Printf.sprintf "rule not closed (stratum %d%s): %s derives %.0f new tuple(s)" stratum
      (match rule_pos with Some p -> ", " ^ p | None -> "")
      rule witness.w_total

let verdict_lines v =
  let r = v.v_report in
  match v.v_failure with
  | None ->
    [
      Printf.sprintf "certify: ok algo=%s relations=%d rules=%d strata=%d seconds=%.3f" r.c_algo r.c_relations
        r.c_rules r.c_strata r.c_seconds;
    ]
  | Some f ->
    Printf.sprintf "certify: FAILED algo=%s seconds=%.3f: %s" r.c_algo r.c_seconds (failure_to_string f)
    ::
    (match f with
    | Input_not_contained { witness; _ } | Rule_not_closed { witness; _ } -> witness_lines witness
    | Unsupported _ | Shape_mismatch _ -> [])
