module Factgen = Jir.Factgen
module Ir = Jir.Ir
module Hier = Jir.Hier
module Engine = Datalog.Engine

type result = { engine : Engine.t; stats : Engine.stats; program_text : string }
type basic = Algo1 | Algo2 | Algo3

let engine_of_program ?options ?file fg text =
  let element_names name = Factgen.element_names fg name in
  let eng = Engine.parse_and_create ?options ~element_names ?file text in
  List.iter
    (fun (name, tuples) -> Engine.set_tuples eng name (List.map Array.of_list tuples))
    (Programs.input_relations fg);
  eng

let basic_text ?query ~algo fg =
  match algo with
  | Algo1 -> (Programs.algo1 ?query fg, "<algo1>")
  | Algo2 -> (Programs.algo2 ?query fg, "<algo2>")
  | Algo3 -> (Programs.algo3 ?query fg, "<algo3>")

let prepare_basic ?options ?query ~algo fg =
  let text, file = basic_text ?query ~algo fg in
  let engine = engine_of_program ?options ~file fg text in
  (engine, text)

let run_basic ?options ?query ~algo fg =
  let engine, text = prepare_basic ?options ?query ~algo fg in
  let stats = Engine.run engine in
  { engine; stats; program_text = text }

(* Budget violations can fire while the engine is still being built —
   loading input relations and installing computed inputs allocate BDD
   nodes too.  [partial_iterations = 0] then says the abort happened
   before any fixpoint round; [live_nodes = 0] means unknown (the
   manager is not reachable once creation has been abandoned). *)
let wrap_limit f =
  match f () with
  | r -> r
  | exception Bdd.Limit_exceeded reason ->
    Error (Solver_error.Budget_exhausted { Solver_error.reason; partial_iterations = 0; live_nodes = 0 })

let solve_basic ?options ?query ~algo fg =
  wrap_limit (fun () ->
      let engine, text = prepare_basic ?options ?query ~algo fg in
      match Engine.solve engine with
      | Ok stats -> Ok { engine; stats; program_text = text }
      | Error e -> Error e)

let relation r name = Engine.relation r.engine name
let tuples r name = Relation.tuples (relation r name)
let count r name = Relation.count (relation r name)

let ie_tuples r =
  List.map
    (fun t ->
      match Array.to_list t with
      | [ i; m ] -> (i, m)
      | _ -> invalid_arg "Analyses.ie_tuples: IE arity")
    (tuples r "IE")

let make_context ?max_bits fg ~ie =
  let p = fg.Factgen.program in
  let edges = Callgraph.of_ie_tuples p ie in
  Context.number ?max_bits p ~edges ~roots:(Callgraph.default_roots p)

let block_of rel name = (Relation.find_attr rel name).Relation.block

let install_context_inputs eng ctx =
  let sp = Engine.space eng in
  let iec = Engine.relation eng "IEC" in
  Relation.set_bdd iec
    (Context.iec_bdd ctx sp ~caller:(block_of iec "caller") ~invoke:(block_of iec "invoke")
       ~callee:(block_of iec "callee") ~target:(block_of iec "tgt"));
  let mc = Engine.relation eng "mC" in
  Relation.set_bdd mc (Context.mc_bdd ctx sp ~context:(block_of mc "context") ~target:(block_of mc "method"))

let prepare_cs ?options ?query fg ctx =
  let text = Programs.algo5 ?query fg ~csize:(Context.csize ctx) in
  let engine = engine_of_program ?options ~file:"<algo5>" fg text in
  install_context_inputs engine ctx;
  (engine, text)

let prepare_cs_claimed ?options ?query ?(otf = false) fg ~csize =
  let text, file =
    if otf then (Programs.algo5_otf ?query fg ~csize, "<algo5otf>") else (Programs.algo5 ?query fg ~csize, "<algo5>")
  in
  let engine = engine_of_program ?options ~file fg text in
  (engine, text)

let run_cs ?options ?query fg ctx =
  let engine, text = prepare_cs ?options ?query fg ctx in
  let stats = Engine.run engine in
  { engine; stats; program_text = text }

let solve_cs ?options ?query fg ctx =
  wrap_limit (fun () ->
      let engine, text = prepare_cs ?options ?query fg ctx in
      match Engine.solve engine with
      | Ok stats -> Ok { engine; stats; program_text = text }
      | Error e -> Error e)

let run_cs_with ?options ?query fg ~csize ~iec ~mc =
  let text = Programs.algo5 ?query fg ~csize in
  let engine = engine_of_program ?options ~file:"<algo5>" fg text in
  Engine.set_tuples engine "IEC" (List.map (fun (a, b, c, d) -> [| a; b; c; d |]) iec);
  Engine.set_tuples engine "mC" (List.map (fun (a, b) -> [| a; b |]) mc);
  let stats = Engine.run engine in
  { engine; stats; program_text = text }

let run_1cfa ?options ?query fg =
  let p = fg.Factgen.program in
  let k = Kcfa.number p ~edges:(Callgraph.cha_edges p) ~roots:(Callgraph.default_roots p) in
  (run_cs_with ?options ?query fg ~csize:(Kcfa.csize k) ~iec:(Kcfa.iec_tuples k) ~mc:(Kcfa.mc_tuples k), k)

let run_cs_otf ?options ?query fg =
  (* Conservative numbering over the CHA call graph. *)
  let p = fg.Factgen.program in
  let ctx = Context.number p ~edges:(Callgraph.cha_edges p) ~roots:(Callgraph.default_roots p) in
  let text = Programs.algo5_otf ?query fg ~csize:(Context.csize ctx) in
  let engine = engine_of_program ?options ~file:"<algo5otf>" fg text in
  install_context_inputs engine ctx;
  let stats = Engine.run engine in
  ({ engine; stats; program_text = text }, ctx)

let run_cs_types ?options ?query fg ctx =
  let text = Programs.algo6 ?query fg ~csize:(Context.csize ctx) in
  let engine = engine_of_program ?options ~file:"<algo6>" fg text in
  install_context_inputs engine ctx;
  let stats = Engine.run engine in
  { engine; stats; program_text = text }

(* --- Algorithm 7 driver --- *)

type thread_info = { n_contexts : int; thread_sites : (Ir.heap_id * int * int) list }

(* The destination variable of each allocation site. *)
let heap_dst_vars p =
  let dst = Array.make (Ir.num_heaps p) (-1) in
  Ir.iter_methods p (fun m ->
      List.iter
        (fun (s : Ir.stmt) ->
          match s with
          | Ir.New { dst = d; heap; _ } -> dst.(heap) <- d
          | Ir.Assign _ | Ir.Cast _ | Ir.Load _ | Ir.Store _ | Ir.Load_static _ | Ir.Store_static _ | Ir.Invoke _
          | Ir.Array_load _ | Ir.Array_store _ | Ir.Throw _ | Ir.Catch _ | Ir.Return _ | Ir.Sync _ -> ())
        m.Ir.m_body);
  dst

let run_thread_escape ?options ?query fg =
  let p = fg.Factgen.program in
  (* Call graph without the thread-start matching: every thread context
     is rooted only at its own run() clone. *)
  let edges = Callgraph.cha_edges ~thread_start:false p in
  let dst_of = heap_dst_vars p in
  let run_of h = Hier.run_method p (Ir.heap p h).Ir.h_cls in
  (* Context id allocation: 0 global, 1 startup thread, then pairs per
     discovered thread-creation site. *)
  let site_contexts : (Ir.heap_id, int * int) Hashtbl.t = Hashtbl.create 8 in
  let next_ctx = ref 2 in
  let context_reaches = ref [] in
  (* (context id, reachable-method set) in discovery order *)
  let pending = Queue.create () in
  Queue.add (1, Ir.entries p) pending;
  let discovered_order = ref [] in
  while not (Queue.is_empty pending) do
    let c, roots = Queue.pop pending in
    let reach = Callgraph.reachable_methods p edges ~roots in
    context_reaches := (c, reach) :: !context_reaches;
    discovered_order := c :: !discovered_order;
    (* New thread sites visible from this context spawn contexts. *)
    Ir.iter_heaps p (fun h ->
        if reach.(h.Ir.h_method) && not (Hashtbl.mem site_contexts h.Ir.h_id) then
          match run_of h.Ir.h_id with
          | Some run ->
            let ca = !next_ctx and cb = !next_ctx + 1 in
            next_ctx := !next_ctx + 2;
            Hashtbl.add site_contexts h.Ir.h_id (ca, cb);
            (* Both clones of the thread share one reachable set; give
               each its own context id. *)
            Queue.add (ca, [ run ]) pending;
            Queue.add (cb, [ run ]) pending
          | None -> ())
  done;
  let n_contexts = !next_ctx in
  let thread_sites = Hashtbl.fold (fun h (a, b) acc -> (h, a, b) :: acc) site_contexts [] in
  let thread_sites = List.sort compare thread_sites in
  (* HT: non-thread allocation sites per context. *)
  let ht = ref [] in
  let vp0t = ref [] in
  List.iter
    (fun (c, reach) ->
      Ir.iter_heaps p (fun h ->
          if reach.(h.Ir.h_method) then
            match Hashtbl.find_opt site_contexts h.Ir.h_id with
            | None -> ht := [ c; h.Ir.h_id ] :: !ht
            | Some (ca, cb) ->
              (* The creating context's destination variable points to
                 both clones of the new thread object. *)
              let d = dst_of.(h.Ir.h_id) in
              if d >= 0 then begin
                vp0t := [ c; d; ca; h.Ir.h_id ] :: !vp0t;
                vp0t := [ c; d; cb; h.Ir.h_id ] :: !vp0t
              end))
    !context_reaches;
  (* run() receiver seeding: each clone's `this` points to its own
     thread object. *)
  List.iter
    (fun (h, ca, cb) ->
      match run_of h with
      | Some run -> (
        match (Ir.meth p run).Ir.m_formals with
        | this :: _ ->
          vp0t := [ ca; this; ca; h ] :: !vp0t;
          vp0t := [ cb; this; cb; h ] :: !vp0t
        | [] -> ())
      | None -> ())
    thread_sites;
  (* The global object lives in the distinguished context 0 and is
     visible from every thread context. *)
  let global_v = Ir.global_var p in
  let global_h = Factgen.global_heap fg in
  for c = 1 to n_contexts - 1 do
    vp0t := [ c; global_v; 0; global_h ] :: !vp0t
  done;
  let text = Programs.algo7 ?query fg ~csize:(max 2 n_contexts) in
  let engine = engine_of_program ?options ~file:"<algo7>" fg text in
  Engine.set_tuples engine "HT" (List.map Array.of_list !ht);
  Engine.set_tuples engine "vP0T" (List.map Array.of_list !vp0t);
  let stats = Engine.run engine in
  ({ engine; stats; program_text = text }, { n_contexts; thread_sites })

type escape_counts = { captured_sites : int; escaped_sites : int; needed_syncs : int; unneeded_syncs : int }

let escape_counts fg r =
  let distinct idx rel =
    let seen = Hashtbl.create 64 in
    List.iter (fun t -> Hashtbl.replace seen t.(idx) ()) (tuples r rel);
    seen
  in
  let escaped_h = distinct 1 "escaped" in
  let captured_h = distinct 1 "captured" in
  (* A site escaped under any context counts as escaped. *)
  Hashtbl.iter (fun h () -> Hashtbl.remove captured_h h) escaped_h;
  let needed_v = distinct 1 "neededSyncs" in
  let sync_vars = Hashtbl.create 64 in
  List.iter
    (fun t ->
      match t with
      | [ v ] -> Hashtbl.replace sync_vars v ()
      | _ -> ())
    (Factgen.relation fg "syncs");
  let total_syncs = Hashtbl.length sync_vars in
  {
    captured_sites = Hashtbl.length captured_h;
    escaped_sites = Hashtbl.length escaped_h;
    needed_syncs = Hashtbl.length needed_v;
    unneeded_syncs = total_syncs - Hashtbl.length needed_v;
  }

(* --- Graceful-degradation ladder --- *)

type rung = Rung_cs | Rung_ci | Rung_steens

type fallback = {
  rung : rung;
  result : result option;
  steens : Steensgaard.result option;
  vp : (int * int) list;
  failures : (rung * Solver_error.t) list;
}

let rung_name = function
  | Rung_cs -> "context-sensitive (Algorithm 5)"
  | Rung_ci -> "context-insensitive, type-filtered (Algorithm 2)"
  | Rung_steens -> "unification-based (Steensgaard)"

(* Degrade only when the solver ran out of resources; a user-requested
   cancellation means stop, and bad input or an internal error would
   fail identically on every rung. *)
let degradable = function
  | Solver_error.Budget_exhausted { Solver_error.reason = Budget.Cancelled; _ } -> false
  | Solver_error.Budget_exhausted _ -> true
  | Solver_error.Bad_input _ | Solver_error.Internal _ -> false

let vp_pairs ~v ~h ts = List.sort_uniq compare (List.map (fun (t : int array) -> (t.(v), t.(h))) ts)

(* One-rule-application certification of a rung's result (the closure
   half of {!Certify}).  A violation means the engine that produced the
   result is broken, not that resources ran out — but the response is
   the same as exhaustion: record the failure and answer from the next
   rung, whose independent computation path is unlikely to share the
   bug.  Budget deadlines can fire mid-check; report them as ordinary
   exhaustion. *)
let rung_certification_failure r =
  match Engine.check_fixpoint ~max_violations:1 r.engine with
  | [] -> None
  | { Engine.vio_rule; _ } :: _ ->
    Some
      (Solver_error.Internal
         (Format.asprintf "result failed certification: rule not closed: %a%a" Datalog.Ast.pp_pos_prefix vio_rule
            Datalog.Ast.pp_rule vio_rule))
  | exception Bdd.Limit_exceeded reason ->
    Some (Solver_error.Budget_exhausted { Solver_error.reason; partial_iterations = 0; live_nodes = 0 })

let solve_with_fallback ?(options = Engine.default_options) ?budget ?query ?(certify_rungs = false) fg =
  (* One budget governs the whole ladder: a deadline is absolute, so
     time spent on a failed precise attempt is not granted again to the
     fallback; node/allocation limits are per-manager and each rung
     builds a fresh manager, so they reset naturally. *)
  let options =
    match budget with Some _ -> { options with Engine.budget } | None -> options
  in
  let cs_attempt () =
    (* The precise rung is the paper's full pipeline: discover the call
       graph on the fly (Algorithm 3), number contexts (Algorithm 4),
       then solve context-sensitively (Algorithm 5). *)
    match solve_basic ~options ~algo:Algo3 fg with
    | Error e -> Error e
    | Ok r3 -> (
      let ctx = make_context fg ~ie:(ie_tuples r3) in
      match solve_cs ~options ?query fg ctx with
      | Ok r -> Ok (r, ctx)
      | Error e -> Error e)
  in
  let certified r = if certify_rungs then rung_certification_failure r else None in
  (* Last rung: union-find, near-linear, no BDDs — effectively immune
     to the budgets that exhausted the rungs above.  It has no Datalog
     engine, so [certify_rungs] cannot check it; its unification closure
     is enforced structurally by {!Steensgaard} itself. *)
  let steens_rung failures =
    let s = Steensgaard.run fg in
    Ok
      { rung = Rung_steens; result = None; steens = Some s; vp = List.sort_uniq compare (Steensgaard.vp_tuples s); failures }
  in
  let ci_rung failures =
    match solve_basic ~options ?query ~algo:Algo2 fg with
    | Ok r -> (
      match certified r with
      | None -> Ok { rung = Rung_ci; result = Some r; steens = None; vp = vp_pairs ~v:0 ~h:1 (tuples r "vP"); failures }
      | Some e -> steens_rung (failures @ [ (Rung_ci, e) ]))
    | Error e when degradable e -> steens_rung (failures @ [ (Rung_ci, e) ])
    | Error e -> Error e
  in
  match cs_attempt () with
  | Ok (r, _ctx) -> (
    match certified r with
    | None ->
      Ok { rung = Rung_cs; result = Some r; steens = None; vp = vp_pairs ~v:1 ~h:2 (tuples r "vPC"); failures = [] }
    | Some e -> ci_rung [ (Rung_cs, e) ])
  | Error e when degradable e -> ci_rung [ (Rung_cs, e) ]
  | Error e -> Error e

type refinement_ratios = { population : float; multi_pct : float; refinable_pct : float }

let refinement_ratios r ~per_clone =
  let active, multi, refinable =
    if per_clone then ("activeC", "multiC", "refinableC") else ("activeV", "multiT", "refinable")
  in
  let population = count r active in
  let pct x = if population = 0.0 then 0.0 else 100.0 *. x /. population in
  { population; multi_pct = pct (count r multi); refinable_pct = pct (count r refinable) }
