(** Resource budgets for the solver runtime.

    Whaley & Lam's solve lives or dies by BDD behavior: a bad variable
    order or a pathological input makes the node table grow without
    bound.  A [Budget.t] turns resource exhaustion into a first-class,
    detectable outcome instead of an OOM kill: it carries limits on
    live BDD nodes, total node allocations, wall-clock time and
    fixpoint iterations, plus a cooperative cancellation flag.

    A budget is shared by every layer of one logical solve: the {!Bdd}
    manager checks the node/allocation/time limits on an amortized
    schedule inside [mk] (every {!Bdd.budget_check_interval} fresh
    allocations), and the Datalog engine checks the iteration/time
    limits between rule applications.  Exceeding any limit raises
    [Bdd.Limit_exceeded] carrying the {!reason}, which
    [Datalog.Engine.solve] converts into a structured
    {!Solver_error.t}.

    Cancellation is {e cooperative}: {!cancel} only sets a flag, and
    the solver observes it at the same amortized check sites.  There
    are no signals or threads involved, so the node table and caches
    are always left in a consistent, reusable state — an aborted solve
    can be resumed by calling the engine again.

    Budgets are mutable (the cancellation flag, the fault-injection
    hook) and must not be shared between unrelated solves; create a
    fresh one per request.  Limits on allocations are compared against
    the {e per-manager} allocation counter, so one budget can be
    reused across the rungs of a degradation ladder where each rung
    builds a fresh manager. *)

type reason =
  | Live_nodes of { limit : int; actual : int }
      (** live BDD nodes exceeded [max_live_nodes] (checked every
          {!Bdd.budget_check_interval} allocations, so the actual count
          can overshoot the limit by at most that interval) *)
  | Allocations of { limit : int; actual : int }
      (** total fresh-node allocations exceeded [max_allocations] *)
  | Table_bytes of { limit : int; actual : int }
      (** total BDD node-table bytes (resident plus spilled arena
          pages) exceeded [max_table_bytes] — the paged-arena analogue
          of [max_live_nodes], checked on the same amortized
          schedule *)
  | Timeout of { limit_s : float }  (** wall-clock deadline passed *)
  | Iterations of { limit : int }  (** fixpoint round limit reached *)
  | Cancelled  (** {!cancel} was called *)

type t

val make :
  ?max_live_nodes:int ->
  ?max_allocations:int ->
  ?max_table_bytes:int ->
  ?max_iterations:int ->
  ?timeout_s:float ->
  unit ->
  t
(** All limits default to absent (unlimited).  [timeout_s] is relative
    to the call: the absolute deadline is computed here. *)

val unlimited : unit -> t
(** A fresh budget with no limits — still cancellable. *)

val is_unlimited : t -> bool
(** No limits set and not yet cancelled (the hook is ignored). *)

val max_live_nodes : t -> int option
val max_allocations : t -> int option
val max_table_bytes : t -> int option
val max_iterations : t -> int option
val deadline : t -> float option
(** Absolute [Unix.gettimeofday] deadline, if a timeout was set. *)

val cancel : t -> unit
(** Cooperative: sets a flag the solver polls at its amortized check
    sites; the solve aborts with {!Cancelled} at the next check. *)

val is_cancelled : t -> bool

(** {2 Checks}

    Called by the solver layers; each returns the first violated
    limit, or [None].  All of them start by running the
    fault-injection hook (see {!set_check_hook}), then test
    cancellation and the deadline. *)

val check_interrupt : t -> reason option
(** Cancellation and deadline only — the per-rule-application check in
    the Datalog engine. *)

val check_nodes : t -> ?bytes:int -> live:int -> allocs:int -> unit -> reason option
(** Interrupts plus the node-count, allocation and node-table-byte
    limits — the amortized check inside [Bdd.mk].  [bytes] is the
    total arena size (resident plus spilled pages); it defaults to 0,
    which never trips the byte limit. *)

val check_iterations : t -> iterations:int -> reason option
(** Interrupts plus the fixpoint-round limit — checked by the engine
    at the top of every semi-naive round. *)

(** {2 Fault injection}

    Deterministic hooks for the robustness test-suite (see {!Faults}):
    the hook runs at the start of {e every} check above, before any
    limit is tested, so it can flip the cancellation flag or count
    check sites to trigger failures at a precise point of the solve.
    Production code never sets a hook. *)

val set_check_hook : t -> (t -> unit) option -> unit
val run_hook : t -> unit
(** Run the hook if any (exposed for checkers living outside this
    module; the [check_*] functions call it themselves). *)

val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit
