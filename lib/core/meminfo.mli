(** Process-level memory observability.

    The paged node arena accounts for its own bytes exactly, but the
    paper-style memory story ("did the solve fit?") also needs the
    process view: peak resident set size as the kernel saw it,
    including the OCaml heap, the op caches and the buffer pool.  Both
    probes read [/proc/self/status] and return [None] where it does
    not exist (non-Linux), so callers print "n/a" rather than fail. *)

val rss_kb : unit -> int option
(** Current resident set size ([VmRSS]) in kilobytes. *)

val peak_rss_kb : unit -> int option
(** Peak resident set size ([VmHWM]) in kilobytes. *)
