(* Fault-tolerant query router: the thin tier in front of a fleet of
   [ptacli serve] followers.

   The router speaks the same line protocol as the daemons on both
   sides: a client line is relayed to one healthy backend and the
   backend's reply (header + body rows) is relayed back verbatim.  All
   the robustness lives around that relay:

   - per-backend circuit breaker (closed / open / half-open): a
     backend failing [breaker_threshold] consecutive attempts is
     opened and skipped until [breaker_cooldown_s] elapses, after
     which one trial request (half-open) decides whether it closes
     again or re-opens;
   - bounded retry with exponential backoff + jitter: connect
     failures, mid-stream EOF, per-attempt timeouts, and explicit
     [err busy]/[err shutdown] replies are retryable — each retry
     prefers a different backend (failover) and sleeps
     [backoff_base_s * 2^i], jittered, capped at [backoff_max_s];
   - only when every attempt is exhausted does the client see
     [err unavailable] — semantic errors (unknown variable, missing
     relation) are relayed immediately and never retried, because the
     backend answered them authoritatively.

   Wire framing (one reply): header [ok|err <cmd> <rows> <latency>],
   then [<rows>] body lines after an [ok] header and exactly one
   message line after an [err] header (every server error is a single
   explanatory line; the row count of an error is 0).

   This module is deliberately thread-free (Unix + Mutex/Atomic only):
   the pta library does not link threads.posix.  The accept loop and
   the periodic [probe_all] prober thread live in the ptacli driver;
   every function here is safe to call from many threads at once. *)

type policy = {
  connect_timeout_s : float;
  request_timeout_s : float;  (* per forwarded attempt, send + full reply *)
  health_timeout_s : float;  (* per [probe_all] probe *)
  retries : int;  (* extra attempts after the first *)
  backoff_base_s : float;
  backoff_max_s : float;
  breaker_threshold : int;  (* consecutive failures that open the breaker *)
  breaker_cooldown_s : float;
}

let default_policy =
  {
    connect_timeout_s = 2.0;
    request_timeout_s = 30.0;
    health_timeout_s = 2.0;
    retries = 3;
    backoff_base_s = 0.02;
    backoff_max_s = 0.5;
    breaker_threshold = 3;
    breaker_cooldown_s = 1.0;
  }

type breaker = Closed | Open_until of float | Half_open

type backend = {
  b_addr : string;  (* unix socket path *)
  b_mu : Mutex.t;  (* guards every mutable field below *)
  mutable b_state : breaker;
  mutable b_consec : int;  (* consecutive failed attempts *)
  mutable b_trips : int;  (* times the breaker opened *)
  mutable b_probe_ok : bool;  (* last health probe outcome *)
  mutable b_ident : (string * int) option;  (* (key, snapshot) from last probe *)
  mutable b_relayed : int;  (* successful relays through this backend *)
  mutable b_failures : int;  (* failed attempts (all causes) *)
}

type t = {
  r_policy : policy;
  r_backends : backend array;
  r_cursor : int Atomic.t;  (* round-robin start point *)
  r_started : float;
  r_requests : int Atomic.t;  (* client lines accepted for forwarding *)
  r_relayed : int Atomic.t;  (* replies relayed back *)
  r_retries : int Atomic.t;
  r_failovers : int Atomic.t;  (* retries that switched backend *)
  r_trips : int Atomic.t;
  r_unavailable : int Atomic.t;  (* requests that exhausted every attempt *)
}

let create ?(policy = default_policy) addrs =
  if addrs = [] then invalid_arg "Router.create: no backends";
  {
    r_policy = policy;
    r_backends =
      Array.of_list
        (List.map
           (fun addr ->
             {
               b_addr = addr;
               b_mu = Mutex.create ();
               b_state = Closed;
               b_consec = 0;
               b_trips = 0;
               b_probe_ok = false;
               b_ident = None;
               b_relayed = 0;
               b_failures = 0;
             })
           addrs);
    r_cursor = Atomic.make 0;
    r_started = Unix.gettimeofday ();
    r_requests = Atomic.make 0;
    r_relayed = Atomic.make 0;
    r_retries = Atomic.make 0;
    r_failovers = Atomic.make 0;
    r_trips = Atomic.make 0;
    r_unavailable = Atomic.make 0;
  }

(* --- breaker transitions --- *)

(* May this backend take a request now?  An open breaker whose cooldown
   has elapsed moves to half-open and admits exactly this trial. *)
let admit t b now =
  Mutex.lock b.b_mu;
  let yes =
    match b.b_state with
    | Closed | Half_open -> true
    | Open_until until when now >= until ->
      b.b_state <- Half_open;
      true
    | Open_until _ -> false
  in
  ignore t;
  Mutex.unlock b.b_mu;
  yes

let record_success b =
  Mutex.lock b.b_mu;
  b.b_state <- Closed;
  b.b_consec <- 0;
  b.b_relayed <- b.b_relayed + 1;
  Mutex.unlock b.b_mu

let record_failure t b now =
  Mutex.lock b.b_mu;
  b.b_failures <- b.b_failures + 1;
  b.b_consec <- b.b_consec + 1;
  (match b.b_state with
  | Half_open ->
    (* The half-open trial failed: straight back to open. *)
    b.b_state <- Open_until (now +. t.r_policy.breaker_cooldown_s);
    b.b_trips <- b.b_trips + 1;
    Atomic.incr t.r_trips
  | Closed when b.b_consec >= t.r_policy.breaker_threshold ->
    b.b_state <- Open_until (now +. t.r_policy.breaker_cooldown_s);
    b.b_trips <- b.b_trips + 1;
    Atomic.incr t.r_trips
  | Closed | Open_until _ -> ());
  Mutex.unlock b.b_mu

(* --- buffered line I/O over a raw fd with kernel-level timeouts --- *)

exception Attempt_failed of string

type conn = {
  c_addr : string;
  c_fd : Unix.file_descr;
  c_buf : Bytes.t;
  mutable c_len : int;  (* bytes buffered but not yet consumed *)
}

let conn_close c = try Unix.close c.c_fd with Unix.Unix_error _ -> ()

let connect ~timeout_s addr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_UNIX addr);
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
  with
  | () -> { c_addr = addr; c_fd = fd; c_buf = Bytes.create 65536; c_len = 0 }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise (Attempt_failed (Printf.sprintf "connect %s: %s" addr (Unix.error_message e)))

let set_timeouts c timeout_s =
  Unix.setsockopt_float c.c_fd Unix.SO_RCVTIMEO timeout_s;
  Unix.setsockopt_float c.c_fd Unix.SO_SNDTIMEO timeout_s

let send_line c line =
  let msg = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length msg in
  let rec go off =
    if off < len then begin
      match Unix.write c.c_fd msg off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise (Attempt_failed (Printf.sprintf "%s: send timeout" c.c_addr))
      | exception Unix.Unix_error (e, _, _) ->
        raise (Attempt_failed (Printf.sprintf "%s: send: %s" c.c_addr (Unix.error_message e)))
    end
  in
  go 0

(* One protocol line, without the newline.  EOF and timeouts are
   attempt failures: the caller closes the conn and (if retryable)
   fails over — a half-relayed reply must never reach the client. *)
let recv_line c =
  let rec find_nl i = if i >= c.c_len then -1 else if Bytes.get c.c_buf i = '\n' then i else find_nl (i + 1) in
  let rec go () =
    match find_nl 0 with
    | nl when nl >= 0 ->
      let line = Bytes.sub_string c.c_buf 0 nl in
      Bytes.blit c.c_buf (nl + 1) c.c_buf 0 (c.c_len - nl - 1);
      c.c_len <- c.c_len - nl - 1;
      line
    | _ ->
      if c.c_len = Bytes.length c.c_buf then
        raise (Attempt_failed (Printf.sprintf "%s: reply line over %d bytes" c.c_addr (Bytes.length c.c_buf)));
      (match Unix.read c.c_fd c.c_buf c.c_len (Bytes.length c.c_buf - c.c_len) with
      | 0 -> raise (Attempt_failed (Printf.sprintf "%s: connection closed mid-reply" c.c_addr))
      | n ->
        c.c_len <- c.c_len + n;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise (Attempt_failed (Printf.sprintf "%s: reply timeout" c.c_addr))
      | exception Unix.Unix_error (e, _, _) ->
        raise (Attempt_failed (Printf.sprintf "%s: recv: %s" c.c_addr (Unix.error_message e))))
  in
  go ()

(* --- one reply, framed --- *)

type reply = { rp_header : string; rp_body : string list }

let split_ws line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

(* Read a full reply off [c].  Raises [Attempt_failed] on framing
   violations too: a malformed header means we cannot know how many
   body lines follow, so the connection is poisoned. *)
let recv_reply c =
  let header = recv_line c in
  match split_ws header with
  | status :: _cmd :: rows :: _ when status = "ok" || status = "err" ->
    let n =
      match int_of_string_opt rows with
      | Some n when n >= 0 -> if status = "ok" then n else 1
      | _ -> raise (Attempt_failed (Printf.sprintf "%s: malformed reply header %S" c.c_addr header))
    in
    (* Explicit loop: body lines must be read in order (List.init's
       application order is unspecified). *)
    let rec read_n k acc = if k = 0 then List.rev acc else read_n (k - 1) (recv_line c :: acc) in
    { rp_header = header; rp_body = read_n n [] }
  | _ -> raise (Attempt_failed (Printf.sprintf "%s: malformed reply header %S" c.c_addr header))

(* --- per-client session --- *)

type session = {
  s_rng : Random.State.t;  (* private jitter source: no locks, no global state *)
  mutable s_conn : conn option;  (* cached backend connection (stickiness) *)
}

let session ~seed = { s_rng = Random.State.make [| seed; 0x5eed |]; s_conn = None }

let close_session s =
  (match s.s_conn with Some c -> conn_close c | None -> ());
  s.s_conn <- None

(* --- forwarding --- *)

let err_reply fmt =
  Printf.ksprintf (fun msg -> { rp_header = "err unavailable 0 0us"; rp_body = [ msg ] }) fmt

(* Pick the next admitted backend, round-robin from the shared cursor,
   preferring one different from [avoid] (the backend that just
   failed) when the fleet has an alternative. *)
let pick t ~now ~avoid =
  let n = Array.length t.r_backends in
  let start = Atomic.fetch_and_add t.r_cursor 1 in
  let candidate i = t.r_backends.((start + i) mod n) in
  let rec first_admitted i ~skip_avoided =
    if i >= n then None
    else
      let b = candidate i in
      if skip_avoided && avoid = Some b.b_addr then first_admitted (i + 1) ~skip_avoided
      else if admit t b now then Some b
      else first_admitted (i + 1) ~skip_avoided
  in
  match first_admitted 0 ~skip_avoided:(avoid <> None && n > 1) with
  | Some b -> Some b
  | None -> first_admitted 0 ~skip_avoided:false

let is_retryable_err header =
  match split_ws header with
  | "err" :: cmd :: _ -> cmd = "busy" || cmd = "shutdown"
  | _ -> false

let is_internal_err header =
  match split_ws header with "err" :: "internal" :: _ -> true | _ -> false

(* Relay [line] with retry/failover.  Never raises. *)
let forward t sess line =
  Atomic.incr t.r_requests;
  let p = t.r_policy in
  let last_failure = ref "no backend admitted a connection" in
  let rec attempt i prev_addr =
    if i > p.retries then begin
      Atomic.incr t.r_unavailable;
      err_reply "all %d backend(s) unavailable after %d attempts (last: %s)"
        (Array.length t.r_backends) (p.retries + 1) !last_failure
    end
    else begin
      if i > 0 then begin
        Atomic.incr t.r_retries;
        let backoff = min p.backoff_max_s (p.backoff_base_s *. (2.0 ** float_of_int (i - 1))) in
        (* Full jitter: a fleet of clients retrying a common failure
           must not stampede the surviving backends in lockstep. *)
        Unix.sleepf (backoff *. (0.5 +. Random.State.float sess.s_rng 0.5))
      end;
      let now = Unix.gettimeofday () in
      (* Stickiness: reuse the cached connection when its backend is
         still admitted; otherwise pick (and connect) fresh. *)
      let reusable =
        match sess.s_conn with
        | Some c when Some c.c_addr <> prev_addr ->
          let b = Array.to_seq t.r_backends |> Seq.find (fun b -> b.b_addr = c.c_addr) in
          (match b with Some b when admit t b now -> Some (c, b) | _ -> None)
        | _ -> None
      in
      match reusable with
      | Some (c, b) -> attempt_on i prev_addr c b ~fresh:false
      | None -> (
        (match sess.s_conn with Some c -> conn_close c | None -> ());
        sess.s_conn <- None;
        match pick t ~now ~avoid:prev_addr with
        | None ->
          last_failure := "every breaker open";
          (* Nothing admitted right now; back off and re-examine
             (cooldowns expire, half-open trials become available). *)
          attempt (i + 1) prev_addr
        | Some b -> (
          match connect ~timeout_s:p.request_timeout_s b.b_addr with
          | c ->
            sess.s_conn <- Some c;
            attempt_on i prev_addr c b ~fresh:true
          | exception Attempt_failed msg ->
            last_failure := msg;
            record_failure t b now;
            if prev_addr <> None && prev_addr <> Some b.b_addr then Atomic.incr t.r_failovers;
            attempt (i + 1) (Some b.b_addr)))
    end
  and attempt_on i prev_addr c b ~fresh =
    if prev_addr <> None && prev_addr <> Some b.b_addr then Atomic.incr t.r_failovers;
    ignore fresh;
    match
      set_timeouts c t.r_policy.request_timeout_s;
      send_line c line;
      recv_reply c
    with
    | reply when is_retryable_err reply.rp_header ->
      (* The backend is full or draining: its answer is valid but not
         final — close, count the failure, try elsewhere. *)
      last_failure := Printf.sprintf "%s: %s" c.c_addr reply.rp_header;
      conn_close c;
      sess.s_conn <- None;
      record_failure t b (Unix.gettimeofday ());
      attempt (i + 1) (Some b.b_addr)
    | reply ->
      (* Success — including semantic errors, which the backend
         answered authoritatively.  [err internal] closes the backend
         connection on the server side, so drop the cached conn. *)
      record_success b;
      Atomic.incr t.r_relayed;
      if is_internal_err reply.rp_header then begin
        conn_close c;
        sess.s_conn <- None
      end;
      reply
    | exception Attempt_failed msg ->
      last_failure := msg;
      conn_close c;
      sess.s_conn <- None;
      record_failure t b (Unix.gettimeofday ());
      attempt (i + 1) (Some b.b_addr)
  in
  attempt 0 None

(* --- health probing (driven by the ptacli prober thread) --- *)

(* Probe one backend with [health]: refreshes [b_probe_ok] and the
   advertised (key, snapshot) identity, and doubles as the breaker's
   recovery path — a successful probe closes an open breaker without
   waiting for a client request to trial it. *)
let probe t b =
  let now = Unix.gettimeofday () in
  let fail () =
    Mutex.lock b.b_mu;
    b.b_probe_ok <- false;
    Mutex.unlock b.b_mu;
    record_failure t b now
  in
  match
    let c = connect ~timeout_s:t.r_policy.health_timeout_s b.b_addr in
    Fun.protect
      ~finally:(fun () -> conn_close c)
      (fun () ->
        send_line c "health";
        recv_reply c)
  with
  | reply when String.length reply.rp_header >= 2 && String.sub reply.rp_header 0 2 = "ok" ->
    let find prefix =
      List.find_map
        (fun l ->
          match split_ws l with
          | [ p; v ] when p = prefix -> Some v
          | _ -> None)
        reply.rp_body
    in
    Mutex.lock b.b_mu;
    b.b_probe_ok <- true;
    b.b_state <- Closed;
    b.b_consec <- 0;
    (match (find "key", Option.bind (find "snapshot") int_of_string_opt) with
    | Some k, Some s -> b.b_ident <- Some (k, s)
    | _ -> ());
    Mutex.unlock b.b_mu
  | _ -> fail ()
  | exception Attempt_failed _ -> fail ()

let probe_all t = Array.iter (probe t) t.r_backends

(* --- local protocol commands --- *)

let breaker_name = function
  | Closed -> "closed"
  | Open_until _ -> "open"
  | Half_open -> "half-open"

let backend_lines t =
  Array.to_list t.r_backends
  |> List.map (fun b ->
         Mutex.lock b.b_mu;
         let line =
           Printf.sprintf "backend %s state=%s probe=%s%s relayed=%d failures=%d trips=%d" b.b_addr
             (breaker_name b.b_state)
             (if b.b_probe_ok then "ok" else "fail")
             (match b.b_ident with
             | Some (k, s) -> Printf.sprintf " key=%s snapshot=%d" k s
             | None -> "")
             b.b_relayed b.b_failures b.b_trips
         in
         Mutex.unlock b.b_mu;
         line)

let stats_lines t =
  [
    Printf.sprintf "uptime %.1fs" (Unix.gettimeofday () -. t.r_started);
    Printf.sprintf "backends %d" (Array.length t.r_backends);
    Printf.sprintf "requests %d" (Atomic.get t.r_requests);
    Printf.sprintf "relayed %d" (Atomic.get t.r_relayed);
    Printf.sprintf "retries %d" (Atomic.get t.r_retries);
    Printf.sprintf "failovers %d" (Atomic.get t.r_failovers);
    Printf.sprintf "breaker-trips %d" (Atomic.get t.r_trips);
    Printf.sprintf "unavailable %d" (Atomic.get t.r_unavailable);
  ]
  @ backend_lines t

let health_lines t =
  let live =
    Array.to_list t.r_backends
    |> List.filter (fun b ->
           Mutex.lock b.b_mu;
           let ok = b.b_state = Closed in
           Mutex.unlock b.b_mu;
           ok)
    |> List.length
  in
  [
    Printf.sprintf "status %s" (if live > 0 then "ok" else "degraded");
    Printf.sprintf "uptime %.1fs" (Unix.gettimeofday () -. t.r_started);
    Printf.sprintf "pid %d" (Unix.getpid ());
    Printf.sprintf "live %d/%d" live (Array.length t.r_backends);
  ]
  @ backend_lines t

let local_reply cmd lines =
  { rp_header = Printf.sprintf "ok %s %d 0us" cmd (List.length lines); rp_body = lines }

(* The router's own entry point per client line: [stats] and [health]
   are answered locally (the router's view of the fleet — per-backend
   identity, breaker state, retry/failover/trip counters); everything
   else is relayed.  Never raises. *)
let handle t sess line =
  let stripped = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  match split_ws (String.split_on_char '\t' stripped |> String.concat " ") with
  | [] -> None
  | [ "stats" ] -> Some (local_reply "stats" (stats_lines t))
  | [ "health" ] -> Some (local_reply "health" (health_lines t))
  | _ -> Some (forward t sess line)
