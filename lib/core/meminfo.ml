(* /proc/self/status is line-oriented "Key:\tvalue kB"; absent on
   non-Linux systems, in which case every probe reports None. *)

let status_field key =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let prefix = key ^ ":" in
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line > String.length prefix && String.sub line 0 (String.length prefix) = prefix then begin
          let rest = String.sub line (String.length prefix) (String.length line - String.length prefix) in
          let digits = String.to_seq rest |> Seq.filter (fun c -> c >= '0' && c <= '9') |> String.of_seq in
          match int_of_string_opt digits with
          | Some v -> Some v
          | None -> None
        end
        else scan ()
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let rss_kb () = status_field "VmRSS"
let peak_rss_kb () = status_field "VmHWM"
