(** Query server over a loaded {!Bddrel.Store}: the warm half of
    [ptacli serve].

    A {!t} wraps a persisted analysis result and answers the §5
    questions with {!Queries} relational algebra only — no Datalog
    engine, no re-solve.  At {!make} time the solved space is
    {e frozen}: an immutable snapshot any number of OCaml domains can
    read concurrently.  Each evaluation runs against a per-domain
    {!Bdd.ctx} (operation cache + arena for query-local nodes), so a
    {!Pool} of worker domains serves queries genuinely in parallel
    with no locks on the evaluation path.

    Protocol (whitespace-separated tokens, one query per line):

    {v
    points-to <var>        heaps <var> may point to
    alias <var1> <var2>    heaps both may point to (aliased iff any)
    leak <heap>            variables that may point to <heap>   (§5.1)
    modref <method>        mod and ref (heap, field) sites      (§5.4)
    vuln                   stored §5.2 vulnerability tuples
    refine                 stored §5.3 refinement ratios
    count <relation>       tuple count of a stored relation
    relations              list stored relations
    help                   this summary
    v}

    Elements are named by their [.map] entries when the store has
    them, or by decimal ordinals ({!Bddrel.Domain.element_index}). *)

type t

val make : Bddrel.Store.t -> t
(** Prepare the server: locates the points-to relation ([vPC], whose
    context attribute is projected away once up front, or [vP]),
    freezes every stored relation, then freezes the space.  The live
    manager is never touched again after this.  Raises
    [Solver_error.Error (Bad_input _)] when the store has neither
    [vPC] nor [vP]. *)

val store : t -> Bddrel.Store.t

val new_ctx : t -> Bdd.ctx
(** A fresh evaluation context over the frozen space.  One ctx belongs
    to exactly one domain at a time; make one per worker. *)

type outcome = {
  ok : bool;  (** false: parse/lookup error, [lines] is the message *)
  command : string;  (** the recognized command word, or ["error"] *)
  lines : string list;  (** result rows (or error text), ready to print *)
  count : int;  (** number of result rows ([0] when [ok] is false) *)
}

val handle : t -> Bdd.ctx -> string -> outcome
(** Evaluate one protocol line in the given ctx.  Never raises on bad
    input — unknown commands, unknown element names, and missing
    stored relations come back as [ok = false] with an explanatory
    message.  Blank lines and [#] comments yield an empty successful
    outcome.  Intermediates accumulate in the ctx; the caller decides
    when to {!Bdd.ctx_reset} ({!serve_line} does it per request). *)

val help_lines : string list

(** {2 Request isolation and daemon lifecycle}

    {!serve_line} is what the daemon drivers call per request: it
    wraps {!handle} with a per-request resource budget, an exception
    firewall, latency/error accounting, and the [health]/[stats]
    liveness commands, so one pathological or malformed query can
    never wedge or kill the daemon. *)

type limits = {
  rq_timeout_s : float option;  (** wall-clock seconds per request *)
  rq_max_allocs : int option;
      (** fresh BDD node allocations one request may make (enforced on
          the worker's ctx at its amortized check sites) *)
  rq_max_nodes : int option;  (** ctx live-node growth one request may cause *)
}

val no_limits : limits

(** Counters are atomic and the latency table mutex-guarded: with a
    worker pool, many domains record into one [server_stats] while
    [health]/[stats] read it. *)
type server_stats = {
  s_started : float;
  s_queries : int Atomic.t;  (** protocol queries answered (ok or err) *)
  s_ok : int Atomic.t;
  s_err : int Atomic.t;
  s_budget_kills : int Atomic.t;  (** requests aborted by the per-request budget *)
  s_firewall_trips : int Atomic.t;  (** unexpected exceptions caught by the firewall *)
  s_connections : int Atomic.t;  (** maintained by the socket driver *)
  s_rejected : int Atomic.t;  (** connections refused with [err busy] *)
  s_lat_mutex : Mutex.t;  (** guards [s_latency] *)
  s_latency : (string, latency) Hashtbl.t;  (** per-command latency *)
}

and latency = { mutable l_count : int; mutable l_total_us : float; mutable l_max_us : float }

val make_stats : unit -> server_stats

val stats_lines : server_stats -> string list
(** The [stats] command body: totals then per-command
    count/avg/max latency lines; also printed at graceful shutdown. *)

type served = {
  outcome : outcome;
  latency_us : float;
  close : bool;
      (** the firewall tripped: send the outcome, then close this
          connection (the daemon itself lives on) *)
}

val serve_line : ?limits:limits -> stats:server_stats -> t -> Bdd.ctx -> string -> served
(** Evaluate one request under isolation, in the caller's ctx:

    - [health] / [stats] are answered from [stats] without touching
      the store;
    - any other line runs through {!handle} with a fresh
      {!Budget.t} (from [limits], resolved against the ctx's current
      counters) installed on the ctx — exceeding it yields an
      [err budget] outcome;
    - a structured loader error yields [err error];
    - any other exception is the firewall case: [err internal] with
      [close = true].

    Whatever the outcome, the ctx is reset afterwards: every
    query-local node is reclaimed wholesale and the next request on
    this ctx starts from an empty arena.  Latency and outcome counters
    are recorded into [stats].  Never raises.

    Determinism: over one frozen space, a given query sequence on a
    fresh ctx is fully deterministic — allocation trajectory, cache
    behaviour, and budget-kill messages included — which is what makes
    parallel answers bit-comparable to a single-threaded run. *)

(** {2 Swappable server source}

    The replication hinge: a mutable cell holding the currently-served
    {!t}, with a generation counter so pool workers detect a swap with
    one atomic read per request.  {!Source.swap} is what a follower
    calls after loading and freezing a new snapshot; in-flight
    requests finish against the old server, every later request runs
    against the new one, and the old frozen space is GC-reclaimed once
    the last worker has rebuilt its ctx (see {!Bdd.ctx_dispose}). *)
module Source : sig
  type source

  val create : t -> source

  val generation : source -> int
  (** Incremented by every {!swap}; starts at 0. *)

  val get : source -> int * t
  (** The current (generation, server) pair, read consistently. *)

  val current : source -> t

  val swap : source -> t -> unit
  (** Atomically install a new server and bump the generation.  Safe
      against concurrent {!get}/{!current} from any thread. *)
end

(** {2 Worker pool}

    A fixed set of OCaml domains, each owning one ctx over the shared
    frozen space, pulling requests off a bounded queue.  Connection
    threads call {!Pool.run} and block until their answer is ready, so
    the queue bound is natural backpressure.

    Workers read the server through a {!Source.source}: before each
    request (and when {!Pool.poke}d while idle) they compare
    generations and, on a swap, dispose their old-space ctx and
    rebuild over the new server — the hot-swap is always between
    requests, never under one. *)
module Pool : sig
  type pool

  val create : ?limits:limits -> stats:server_stats -> workers:int -> Source.source -> pool
  (** Spawn [workers] (at least 1) domains, each with its own ctx over
      the source's current server.  The queue holds at most
      [max 16 (4 * workers)] pending requests. *)

  val workers : pool -> int

  val source : pool -> Source.source

  val run : pool -> string -> served
  (** Enqueue one request line and wait for its result.  Blocks while
      the queue is full.  After {!shutdown} has begun, returns an
      [err shutdown] outcome with [close = true] instead of
      enqueueing.  Safe to call from many threads. *)

  val poke : pool -> unit
  (** Wake idle workers so they notice a {!Source.swap} immediately
      (and release the old frozen space) instead of at their next
      request. *)

  val shutdown : pool -> unit
  (** Drain and join: new {!run}s bounce, already-queued requests are
      still answered, then the worker domains exit and are joined.
      Idempotent. *)
end

(** {2 Snapshot follower}

    The watch half of [ptacli serve --follow]: poll the store
    directory and hot-swap the source when a new committed save
    appears.  Change detection stats the base manifest {e and} every
    committed delta-layer manifest ({!Bddrel.Store.tip_stat}) — each
    one is its save's single commit point, so both full saves and
    incremental [save_delta] appends are noticed — then compares the
    chain-tip [(key, snapshot)] identity before doing any real work; a
    candidate is verified
    ({!Bddrel.Store.verify} [~structural:false]) and loaded (itself
    checksum- and structure-checked) before {!Source.swap} — any
    failure leaves the old snapshot serving and reports [Rejected]
    once per distinct broken disk state. *)
module Follow : sig
  type outcome =
    | Unchanged
    | Swapped of { snapshot : int; key : string; seconds : float }
        (** [seconds] = verify + load + freeze wall time *)
    | Rejected of { reason : string }

  type state

  val make : ?require_certified:bool -> dir:string -> Source.source -> state
  (** Start following [dir]; the source's current server is assumed to
      be the store currently on disk there (the driver loads it before
      calling this).  With [require_certified] (default off), a
      candidate whose identity does not match the store's recorded
      certification mark ({!Bddrel.Store.read_certified}) is
      [Rejected] before any verify/load cost is paid, and the old
      snapshot keeps serving — byte-perfect but semantically
      unvouched-for saves never reach the wire. *)

  val served_ident : state -> string * int
  (** The [(key, snapshot)] identity last swapped in (or initial). *)

  val poll : state -> outcome
  (** One poll tick.  Cheap when nothing changed (one [stat] per chain
      manifest).  On
      [Swapped] the source already holds the new server — the driver
      should {!Pool.poke} and log; on [Rejected] the old server keeps
      serving.  Never raises. *)
end
