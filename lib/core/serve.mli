(** Query server over a loaded {!Bddrel.Store}: the warm half of
    [ptacli serve].

    A {!t} wraps a persisted analysis result and answers the §5
    questions with {!Queries} relational algebra only — no Datalog
    engine, no re-solve.  The driver (CLI or socket loop) feeds one
    line per query to {!handle} and prints the outcome; this module is
    pure protocol + evaluation so it can be exercised directly in
    tests.

    Protocol (whitespace-separated tokens, one query per line):

    {v
    points-to <var>        heaps <var> may point to
    alias <var1> <var2>    heaps both may point to (aliased iff any)
    leak <heap>            variables that may point to <heap>   (§5.1)
    modref <method>        mod and ref (heap, field) sites      (§5.4)
    vuln                   stored §5.2 vulnerability tuples
    refine                 stored §5.3 refinement ratios
    count <relation>       tuple count of a stored relation
    relations              list stored relations
    help                   this summary
    v}

    Elements are named by their [.map] entries when the store has
    them, or by decimal ordinals ({!Bddrel.Domain.element_index}). *)

type t

val make : Bddrel.Store.t -> t
(** Prepare the server: locates the points-to relation ([vPC], whose
    context attribute is projected away once up front, or [vP]) and
    the optional query relations.  Raises
    [Solver_error.Error (Bad_input _)] when the store has neither
    [vPC] nor [vP]. *)

val store : t -> Bddrel.Store.t

type outcome = {
  ok : bool;  (** false: parse/lookup error, [lines] is the message *)
  command : string;  (** the recognized command word, or ["error"] *)
  lines : string list;  (** result rows (or error text), ready to print *)
  count : int;  (** number of result rows ([0] when [ok] is false) *)
}

val handle : t -> string -> outcome
(** Evaluate one protocol line.  Never raises on bad input — unknown
    commands, unknown element names, and missing stored relations come
    back as [ok = false] with an explanatory message.  Blank lines and
    [#] comments yield an empty successful outcome. *)

val help_lines : string list
