(** Query server over a loaded {!Bddrel.Store}: the warm half of
    [ptacli serve].

    A {!t} wraps a persisted analysis result and answers the §5
    questions with {!Queries} relational algebra only — no Datalog
    engine, no re-solve.  The driver (CLI or socket loop) feeds one
    line per query to {!handle} and prints the outcome; this module is
    pure protocol + evaluation so it can be exercised directly in
    tests.

    Protocol (whitespace-separated tokens, one query per line):

    {v
    points-to <var>        heaps <var> may point to
    alias <var1> <var2>    heaps both may point to (aliased iff any)
    leak <heap>            variables that may point to <heap>   (§5.1)
    modref <method>        mod and ref (heap, field) sites      (§5.4)
    vuln                   stored §5.2 vulnerability tuples
    refine                 stored §5.3 refinement ratios
    count <relation>       tuple count of a stored relation
    relations              list stored relations
    help                   this summary
    v}

    Elements are named by their [.map] entries when the store has
    them, or by decimal ordinals ({!Bddrel.Domain.element_index}). *)

type t

val make : Bddrel.Store.t -> t
(** Prepare the server: locates the points-to relation ([vPC], whose
    context attribute is projected away once up front, or [vP]) and
    the optional query relations.  Raises
    [Solver_error.Error (Bad_input _)] when the store has neither
    [vPC] nor [vP]. *)

val store : t -> Bddrel.Store.t

type outcome = {
  ok : bool;  (** false: parse/lookup error, [lines] is the message *)
  command : string;  (** the recognized command word, or ["error"] *)
  lines : string list;  (** result rows (or error text), ready to print *)
  count : int;  (** number of result rows ([0] when [ok] is false) *)
}

val handle : t -> string -> outcome
(** Evaluate one protocol line.  Never raises on bad input — unknown
    commands, unknown element names, and missing stored relations come
    back as [ok = false] with an explanatory message.  Blank lines and
    [#] comments yield an empty successful outcome. *)

val help_lines : string list

(** {2 Request isolation and daemon lifecycle}

    {!serve_line} is what the daemon drivers call per request: it
    wraps {!handle} with a per-request resource budget, an exception
    firewall, latency/error accounting, and the [health]/[stats]
    liveness commands, so one pathological or malformed query can
    never wedge or kill the daemon. *)

type limits = {
  rq_timeout_s : float option;  (** wall-clock seconds per request *)
  rq_max_allocs : int option;
      (** fresh BDD node allocations one request may make (enforced on
          the store's manager at its amortized check sites) *)
  rq_max_nodes : int option;  (** live-node growth one request may cause *)
}

val no_limits : limits

type server_stats = {
  s_started : float;
  mutable s_queries : int;  (** protocol queries answered (ok or err) *)
  mutable s_ok : int;
  mutable s_err : int;
  mutable s_budget_kills : int;  (** requests aborted by the per-request budget *)
  mutable s_firewall_trips : int;  (** unexpected exceptions caught by the firewall *)
  mutable s_connections : int;  (** maintained by the socket driver *)
  mutable s_rejected : int;  (** connections refused with [err busy] *)
  s_latency : (string, latency) Hashtbl.t;  (** per-command latency *)
}

and latency = { mutable l_count : int; mutable l_total_us : float; mutable l_max_us : float }

val make_stats : unit -> server_stats

val stats_lines : server_stats -> string list
(** The [stats] command body: totals then per-command
    count/avg/max latency lines; also printed at graceful shutdown. *)

type served = {
  outcome : outcome;
  latency_us : float;
  close : bool;
      (** the firewall tripped: send the outcome, then close this
          connection (the daemon itself lives on) *)
}

val serve_line : ?limits:limits -> stats:server_stats -> t -> string -> served
(** Evaluate one request under isolation:

    - [health] / [stats] are answered from [stats] without touching
      the store;
    - any other line runs through {!handle} with a fresh
      {!Budget.t} (from [limits], resolved against the manager's
      current counters) installed on the store's BDD manager —
      exceeding it yields an [err budget] outcome, with the aborted
      request's dead nodes collected so the next request starts from a
      clean baseline;
    - a structured loader error yields [err error];
    - any other exception is the firewall case: [err internal] with
      [close = true].

    Latency and outcome counters are recorded into [stats]; the
    manager is additionally collected every few hundred queries so a
    long-running daemon's node table does not accumulate query
    garbage.  Never raises. *)
