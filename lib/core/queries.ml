(* Shared §5.3 refinement core over a context-insensitive exact-type
   relation [exactT]. *)
let refinement_ci_core =
  {|candidate(v, tc) :- vT(v, td), aT(td, tc), td != tc.
activeV(v) :- exactT(v, _).
notVarType(v, t) :- candidate(v, t), exactT(v, tv), !aT(t, tv).
multiT(v) :- exactT(v, t1), exactT(v, t2), t1 != t2.
refinable(v) :- activeV(v), candidate(v, t), !notVarType(v, t).
|}

let refinement_ci_relations =
  {|exactT (variable : V, type : T)
candidate (variable : V, type : T)
notVarType (variable : V, type : T)
output activeV (variable : V)
output multiT (variable : V)
output refinable (variable : V)
|}

let refinement_ci =
  {
    Programs.q_relations = refinement_ci_relations;
    q_rules = "exactT(v, t) :- vP(v, h), hT(h, t).\n" ^ refinement_ci_core;
  }

let refinement_projected_cs =
  {
    Programs.q_relations = refinement_ci_relations;
    q_rules = "exactT(v, t) :- vPC(_, v, h), hT(h, t).\n" ^ refinement_ci_core;
  }

let refinement_projected_ts =
  {
    Programs.q_relations = refinement_ci_relations;
    q_rules = "exactT(v, t) :- vTC(_, v, t).\n" ^ refinement_ci_core;
  }

(* Per-clone refinement: the population is (context, variable) pairs,
   which is how the full context-sensitive columns of Figure 6 stay
   under 1-2% multi-typed.  The population is restricted to a method's
   actual clones (mV/mC): loads through the context-blind global
   variable propagate values into every context (rule (17) with the
   global as base), and those phantom clones are not part of the
   cloned program. *)
let refinement_full_core =
  {|candidate(v, tc) :- vT(v, td), aT(td, tc), td != tc.
activeC(c, v) :- exactC(c, v, _), mV(m, v), mC(c, m).
candC(c, v, t) :- activeC(c, v), candidate(v, t).
notVarTypeC(c, v, t) :- candC(c, v, t), exactC(c, v, tv), !aT(t, tv).
multiC(c, v) :- activeC(c, v), exactC(c, v, t1), exactC(c, v, t2), t1 != t2.
refinableC(c, v) :- candC(c, v, t), !notVarTypeC(c, v, t).
|}

let refinement_full_relations =
  {|exactC (context : C, variable : V, type : T)
candidate (variable : V, type : T)
candC (context : C, variable : V, type : T)
notVarTypeC (context : C, variable : V, type : T)
output activeC (context : C, variable : V)
output multiC (context : C, variable : V)
output refinableC (context : C, variable : V)
|}

let refinement_full_cs =
  {
    Programs.q_relations = refinement_full_relations;
    q_rules = "exactC(c, v, t) :- vPC(c, v, h), hT(h, t).\n" ^ refinement_full_core;
  }

let refinement_full_ts =
  {
    Programs.q_relations = refinement_full_relations;
    q_rules = "exactC(c, v, t) :- vTC(c, v, t).\n" ^ refinement_full_core;
  }

let mod_ref =
  {
    Programs.q_relations =
      {|output mVC (c1 : C, m1 : M, c2 : C, var : V)
output modset (context : C, method : M, heap : H, field : F)
output refset (context : C, method : M, heap : H, field : F)
|};
    q_rules =
      {|mVC(c, m, c, v) :- mV(m, v), mC(c, m).
mVC(c1, m1, c3, v3) :- mI(m1, i, _), IEC(c1, i, c2, m2), mVC(c2, m2, c3, v3).
modset(c, m, h, f) :- mVC(c, m, cv, v), store(v, f, _), vPC(cv, v, h).
refset(c, m, h, f) :- mVC(c, m, cv, v), load(v, f, _), vPC(cv, v, h).
|};
  }

let who_points_to ~heap_label =
  {
    Programs.q_relations =
      {|output whoPointsTo (heap : H, field : F)
output whoDunnit (context : C, base : V, field : F, src : V)
|};
    q_rules =
      Printf.sprintf
        {|whoPointsTo(h, f) :- hP(h, f, %S).
whoDunnit(c, v1, f, v2) :- store(v1, f, v2), vPC(c, v2, %S).
|}
        heap_label heap_label;
  }

(* --- Store-backed evaluation ---

   The same questions answered directly from solved relations (fresh
   from an engine or loaded back from a Bddrel.Store) with plain
   relational algebra — no Datalog re-solve.  This is what the query
   daemon serves: a select+project over the persisted BDD is
   milliseconds, a cold solve is seconds.  Every intermediate relation
   is disposed so a long-running server does not accumulate GC
   roots. *)

let combine a b =
  {
    Programs.q_relations = a.Programs.q_relations ^ b.Programs.q_relations;
    q_rules = a.Programs.q_rules ^ b.Programs.q_rules;
  }

let with_disposal r f =
  Fun.protect ~finally:(fun () -> Relation.dispose r) (fun () -> f r)

(* Project the (possibly context-qualified) points-to relation down to
   one attribute after fixing another: the shared shape of the
   evaluators below. *)
let select_project rel ~fix ~value ~keep =
  with_disposal (Relation.select rel fix value) (fun sel ->
      with_disposal (Relation.project sel keep) (fun proj ->
          List.sort_uniq compare (List.map (fun t -> t.(0)) (Relation.tuples proj))))

let points_to pt ~var = select_project pt ~fix:"variable" ~value:var ~keep:[ "heap" ]

let pointed_by pt ~heap = select_project pt ~fix:"heap" ~value:heap ~keep:[ "variable" ]

(* Shared heaps of two variables, computed as a BDD intersection of the
   two projected heap sets (not a list intersection: the sets stay
   shared-structure until the final enumeration). *)
let alias_heaps pt ~v1 ~v2 =
  with_disposal (Relation.select pt "variable" v1) (fun s1 ->
      with_disposal (Relation.project s1 [ "heap" ]) (fun h1 ->
          with_disposal (Relation.select pt "variable" v2) (fun s2 ->
              with_disposal (Relation.project s2 [ "heap" ]) (fun h2 ->
                  with_disposal (Relation.inter h1 h2) (fun shared ->
                      List.sort_uniq compare (List.map (fun t -> t.(0)) (Relation.tuples shared)))))))

(* Mod/ref (heap, field) pairs of one method, any context: project the
   §5.4 [modset]/[refset] down from (context, method, heap, field). *)
let mod_ref_sites rel ~meth =
  with_disposal (Relation.select rel "method" meth) (fun sel ->
      with_disposal (Relation.project sel [ "heap"; "field" ]) (fun proj ->
          List.sort_uniq compare (List.map (fun t -> (t.(0), t.(1))) (Relation.tuples proj))))

let jce_vuln ~init_method =
  {
    Programs.q_relations = {|output fromString (heap : H)
output vuln (context : C, invoke : I)
|};
    q_rules =
      Printf.sprintf
        {|fromString(h) :- Mcls(m, "String"), Mret(m, v), vPC(_, v, h).
vuln(c, i) :- IEC(c, i, _, %S), actual(i, 1, v), vPC(c, v, h), fromString(h).
|}
        init_method;
  }

(* --- Frozen-space evaluation (parallel warm queries) ---------------

   The same evaluators over frozen relation handles, parameterized by
   a per-domain Bdd.ctx.  No disposal: every intermediate lives in the
   ctx and is reclaimed wholesale by the caller's ctx_reset, so these
   are safe to run from many domains at once over one frozen store. *)

let select_project_ctx ctx rel ~fix ~value ~keep =
  let sel = Relation.select_ctx ctx rel fix value in
  let proj = Relation.project_ctx ctx sel keep in
  List.sort_uniq compare (List.map (fun t -> t.(0)) (Relation.tuples_ctx ctx proj))

let points_to_ctx ctx pt ~var = select_project_ctx ctx pt ~fix:"variable" ~value:var ~keep:[ "heap" ]

let pointed_by_ctx ctx pt ~heap = select_project_ctx ctx pt ~fix:"heap" ~value:heap ~keep:[ "variable" ]

let alias_heaps_ctx ctx pt ~v1 ~v2 =
  let h1 = Relation.project_ctx ctx (Relation.select_ctx ctx pt "variable" v1) [ "heap" ] in
  let h2 = Relation.project_ctx ctx (Relation.select_ctx ctx pt "variable" v2) [ "heap" ] in
  let shared = Relation.inter_ctx ctx h1 h2 in
  List.sort_uniq compare (List.map (fun t -> t.(0)) (Relation.tuples_ctx ctx shared))

let mod_ref_sites_ctx ctx rel ~meth =
  let sel = Relation.select_ctx ctx rel "method" meth in
  let proj = Relation.project_ctx ctx sel [ "heap"; "field" ] in
  List.sort_uniq compare (List.map (fun t -> (t.(0), t.(1))) (Relation.tuples_ctx ctx proj))
