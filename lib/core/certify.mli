(** Semantic self-certification: independent checking that a claimed
    solution really is the stratified fixpoint of its program.

    Every durability layer below this one (store CRCs and write
    barriers, swap-time verification, spill checksums) defends against
    {e byte} corruption; none of it can tell a well-formed store
    holding a wrong answer from a right one.  This module closes that
    gap with the classic result-certification move: a candidate
    solution is correct iff

    + every input relation is contained in it,
    + one application of every rule adds zero tuples (per-rule BDD
      containment — {!Datalog.Engine.check_fixpoint}), and
    + the stratification/negation side conditions hold — guaranteed
      here by construction, because the checker re-resolves and
      re-stratifies the program text itself
      ({!Datalog.Stratify.Not_stratified} would fire at engine build).

    That is a single non-semi-naive evaluation round: far cheaper than
    solving, and valid against whichever engine path produced the
    candidate (cold, incremental delta fold, capped/spilling arena,
    a follower's loaded snapshot).

    {b What a pass means.}  Certification proves the candidate is a
    {e model} of the rules containing the inputs — i.e. a sound
    {e over}-approximation of the least fixpoint.  A closed strict
    superset would also pass; minimality is not checked.  What the
    check does catch is precisely the failure mode of the risky
    machinery: any {e missing} derived tuple whose derivation's other
    premises survive is re-derived by its own rule in one step, and a
    missing {e input} tuple is caught by the containment check (which
    is why {!certify_engine} takes the freshly extracted inputs rather
    than trusting the candidate's own copy). *)

type witness = {
  w_relation : string;
  w_attrs : string list;  (** attribute names, in relation order *)
  w_tuples : string list list;  (** bounded sample, element names in attribute order *)
  w_total : float;  (** exact count of the full violating set *)
}
(** A bounded, human-readable sample of the tuples that violate a
    check, plus the exact size of the full violating set. *)

type failure =
  | Unsupported of string
      (** the store was produced by a path this checker cannot rebuild
          a rule set for (e.g. the hand-coded solver, Steensgaard) *)
  | Shape_mismatch of string
      (** the candidate cannot even be interpreted against the checker
          engine: variable layout differs, or a declared relation is
          missing from the store *)
  | Input_not_contained of { relation : string; witness : witness }
      (** freshly extracted input tuples absent from the candidate *)
  | Rule_not_closed of { rule : string; rule_pos : string option; stratum : int; witness : witness }
      (** one application of [rule] (rendered in concrete syntax, with
          its [file:line] when known) derives tuples the candidate
          lacks *)

type report = {
  c_algo : string;  (** algorithm tag the check ran against *)
  c_relations : int;  (** declared relations checked *)
  c_rules : int;  (** rules applied once *)
  c_strata : int;
  c_seconds : float;  (** wall time of the whole check *)
}

type verdict = { v_report : report; v_failure : failure option }
(** [v_failure = None] means certified.  Checks run in order
    (shape, inputs, rules) and stop at the first failure. *)

val passed : verdict -> bool
val failure_to_string : failure -> string

val verdict_lines : verdict -> string list
(** The verdict rendered for logs and the CLI: a [certify: ok …] or
    [certify: FAILED …] headline followed by indented witness tuples. *)

val certify_engine :
  ?algo:string ->
  ?max_witness:int ->
  ?fresh_inputs:(string * int list list) list ->
  Datalog.Engine.t ->
  verdict
(** Certify whatever the engine's relations currently hold, against its
    own compiled plans.  [fresh_inputs] (typically
    {!Programs.input_relations} of a fresh extraction) enables the
    input-containment check — without it only rule closure is checked,
    and a candidate missing input tuples could pass.  Witness samples
    are capped at [max_witness] (default 5) tuples.  [algo] is recorded
    in the report (default ["<live>"]).  Commits nothing: relations are
    left exactly as found. *)

val certify_store :
  ?options:Datalog.Engine.options ->
  ?query:Programs.query_suffix ->
  ?max_witness:int ->
  Jir.Factgen.t ->
  Store.t ->
  verdict
(** Certify a loaded store against a fresh extraction of the same
    program: rebuild the checker engine for the store's recorded
    [algo] config tag (Algorithms 1-3 directly; Algorithm 5 / 1-CFA /
    on-the-fly variants via {!Analyses.prepare_cs_claimed} with the
    store's [C] domain size, treating the stored [IEC]/[mC] as the
    claimed context structure), refuse on layout or relation-set
    mismatch ({!failure.Shape_mismatch}), copy every stored relation
    into the checker, and run {!certify_engine} with the extraction's
    input tuples.  Stores from unrecognized tags (hand-coded,
    Steensgaard, Algorithms 6-7) yield {!failure.Unsupported}. *)
