(** Ordered, reduced binary decision diagrams.

    This is the substrate the paper builds on (it used BuDDy via the
    JavaBDD wrapper): a hash-consed node table, memoizing operation
    cache, mark-sweep garbage collection with registered roots, the
    relational-product ([relprod]) and variable-renaming ([replace])
    operations that implement relational algebra, and satisfying-
    assignment counting/enumeration used to read results back out.

    Variables are identified by their position in the (fixed) variable
    order: variable [i] is at level [i].  Variable ordering choices are
    therefore made when allocating variables (see {!Space} in the
    [relation] library), matching the paper's static-order-with-search
    approach; there is no dynamic reordering.

    Node handles ([t]) are only meaningful together with the manager
    that created them.  A handle is kept alive across {!gc} only if it
    is reachable from a registered root. *)

type man
(** A BDD manager: node table, caches, roots. *)

type t = private int
(** A BDD node handle.  The terminals are {!bdd_false} and
    {!bdd_true}. *)

type varmap
(** A variable renaming, created with {!make_map}. *)

type gc_mode =
  | Sweep
      (** Non-moving collection: dead slots go on a free list and every
          surviving handle keeps its number.  The only mode safe for
          clients that hold raw handles without registering a remapping
          path.  Default for {!create}. *)
  | Compact
      (** Moving collection: survivors are renumbered, clustered by
          variable level so the level-by-level recursive kernels touch
          consecutive arena pages (the locality that makes a byte-capped
          buffer pool workable).  Every handle retained across {!gc}
          must then be reachable through {!add_root}, {!add_root_list}
          or an {!on_remap} hook — those are rewritten in place;
          {!add_root_fn} results are marked live but NOT rewritten.
          The op cache is rebuilt through the relocation map, so warm
          entries survive.  Chosen by the solver layers
          ([Bddrel.Space]). *)

exception Limit_exceeded of Budget.reason
(** Raised from inside an operation when the installed {!Budget.t} is
    violated.  The node table, unique table and operation cache are
    left consistent: completed sub-results are cached, the in-flight
    intermediates become garbage for the next {!gc}, and the manager
    remains fully usable (lift or replace the budget and retry). *)

val create :
  ?node_hint:int ->
  ?cache_bits:int ->
  ?page_bits:int ->
  ?max_bytes:int ->
  ?spill_path:string ->
  ?gc_mode:gc_mode ->
  nvars:int ->
  unit ->
  man
(** [create ~nvars ()] makes a manager with variables [0 .. nvars-1].
    [node_hint] sizes the initial unique-table bucket array (default
    64K); node storage itself grows page by page.  [cache_bits] sizes
    the operation cache at [2^cache_bits] entries (default 16).

    [page_bits] sets the arena page size at [2^page_bits] node slots
    (default 12, i.e. 128 KiB of packed records per page; valid range
    4–22).  [max_bytes], if given, caps the bytes of node pages held
    in memory: cold pages spill to a CRC-32-checked scratch file
    ([spill_path], default a fresh temp file created lazily) and fault
    back in on access through clock replacement.  Without [max_bytes]
    every page stays resident and the manager never touches the file
    system.  Spill IO failures and checksum mismatches raise
    [Solver_error.Error (Internal _)] with the arena left consistent.

    [gc_mode] selects the collection strategy (default {!Sweep}; see
    {!gc_mode}). *)

val dispose : man -> unit
(** Close and delete the spill scratch file, if one was created.  The
    resident node table remains readable, but a capped manager must
    not allocate past its cap afterwards.  A no-op for uncapped
    managers. *)

val sweep_stale_spills : ?max_age_s:float -> dir:string -> unit -> int
(** Remove orphaned spill scratch files under [dir]: files whose name
    embeds a creator pid ([arena.<pid>.spill],
    [whalelam-arena.<pid>.<rand>.spill]) where that pid is dead and the
    file has not been touched for [max_age_s] seconds (default 60) —
    the debris a SIGKILLed capped solve leaves behind, which {!dispose}
    never got to delete.  Run automatically for the temp directory when
    a capped manager is created without an explicit [spill_path], and
    by [Bddrel.Store] for a store's own scratch area on load.  Returns
    the number of files removed. *)

val nvars : man -> int

val extend_vars : man -> int -> unit
(** [extend_vars man n] ensures variables [0 .. n-1] exist.  New
    variables are appended at the bottom of the order. *)

val bdd_false : t
val bdd_true : t

val is_const : t -> bool
val is_true : t -> bool
val is_false : t -> bool

val ithvar : man -> int -> t
(** The function [fun x -> x_i]. *)

val nithvar : man -> int -> t
(** The function [fun x -> not x_i]. *)

val var : man -> t -> int
(** Top variable of a non-terminal node. Raises [Invalid_argument] on
    terminals. *)

val low : man -> t -> t
val high : man -> t -> t

val mk_not : man -> t -> t
val mk_and : man -> t -> t -> t
val mk_or : man -> t -> t -> t
val mk_xor : man -> t -> t -> t
val mk_diff : man -> t -> t -> t
(** [mk_diff m f g] is [f AND NOT g]. *)

val mk_imp : man -> t -> t -> t
val mk_biimp : man -> t -> t -> t
val mk_ite : man -> t -> t -> t -> t

val cube_of_vars : man -> int list -> t
(** Conjunction of the given variables (a positive cube), the shape
    expected by [exist]/[forall]/[relprod]. *)

val exist : man -> cube:t -> t -> t
(** Existential quantification over the variables of [cube]. *)

val forall : man -> cube:t -> t -> t

val relprod : man -> cube:t -> t -> t -> t
(** [relprod m ~cube f g] is [exist cube (f AND g)] computed in one
    pass — the workhorse of relational join in the paper (§2.4.2). *)

val make_map : man -> (int * int) list -> varmap
(** [make_map m pairs] renames variable [a] to [b] for each [(a, b)];
    unlisted variables are unchanged.  The combined mapping must be
    injective on the support of the BDDs it is applied to.

    Monotonicity is detected here: if the combined map is non-decreasing
    over the variable order (the common case — renames between
    interleaved instances of the same domain are monotone shifts), then
    {!replace} uses a linear-time order-preserving rebuild instead of
    the general ite-based reconstruction. *)

val map_is_monotone : varmap -> bool
(** Whether the order-preserving {!replace} fast path applies. *)

val replace : man -> varmap -> t -> t
(** Apply a renaming.  Correct for arbitrary (order-changing) maps;
    order-preserving maps take a direct [mk]-rebuild fast path. *)

val support : man -> t -> int list
(** Variables the function depends on, ascending. *)

val node_count : man -> t -> int
(** Number of DAG nodes reachable from the handle (terminals excluded). *)

val satcount : man -> vars:int array -> t -> float
(** Number of satisfying assignments over exactly the variables in
    [vars] (sorted ascending; must include the support). *)

val satcount_big : man -> vars:int array -> t -> Bignat.t
(** Exact version of {!satcount}. *)

val iter_sat : man -> vars:int array -> (bool array -> unit) -> t -> unit
(** Enumerate satisfying assignments over [vars] (sorted ascending,
    including the support); the callback receives the values of
    [vars] positionally.  The array is reused between calls. *)

(** {2 Arithmetic primitives}

    The paper's context-numbering scheme depends on two O(bits)
    constructions (§4.1): the BDD of a contiguous range of numbers, and
    "adding a constant to the contexts of the callers". Bit arrays are
    least-significant first. *)

val range : man -> bits:int array -> lo:int -> hi:int -> t
(** Numbers [x] with [lo <= x <= hi] over the bit-vector [bits]. *)

val const_value : man -> bits:int array -> int -> t
(** The minterm encoding one value over [bits]. *)

val add_const : man -> src:int array -> dst:int array -> delta:int -> t
(** The relation [dst = src + delta] (no overflow: assignments whose
    sum does not fit in [dst]'s width are excluded). *)

val equal_blocks : man -> src:int array -> dst:int array -> t
(** The relation [dst = src] between two equal-width bit blocks. *)

(** {2 Serialization}

    A reduced shared-DAG binary dump (BuDDy [bdd_save]-style): magic
    [WLBDD02], variable count, node count, topologically-ordered
    [(var, lo, hi)] triples, root ids, then a trailing CRC-32 of the
    whole frame.  Many roots share one DAG, so a set of relations
    persists with every common sub-function written once. *)

val serialize : man -> t list -> string
(** Dump the shared DAG reachable from [roots].  Root order is
    preserved by {!deserialize}. *)

val copy : man -> man -> t list -> t list
(** [copy src dst roots] re-interns the shared DAG reachable from
    [roots] directly into [dst] — semantically [serialize] piped into
    [deserialize], minus the intermediate byte string.  Both managers
    must agree on what the variable ids mean; [dst]'s variable space is
    extended if needed.  The results are unrooted in [dst]. *)

val deserialize : ?source:string -> man -> string -> t list
(** Rebuild the dumped functions in [m] (which need not be the dumping
    manager: nodes are re-interned through the constructor, so the
    result is reduced and hash-consed regardless of the manager's GC or
    table-growth history; the variable space is extended if needed).
    Returns the roots in dump order.

    Raises [Solver_error.Error (Bad_input _)] — with [source] as the
    file and the byte offset in the message — on truncation, bad magic,
    a CRC-32 mismatch (verified before any triple is parsed, so bit
    rot and torn writes surface as one early checksum error),
    out-of-range variables or edges, non-topological or non-reduced
    triples, and variable-order violations.  No partial result escapes:
    already-interned nodes are unreachable garbage for the next
    {!gc}. *)

(** {2 Memory management} *)

val add_root : man -> t ref -> unit
(** Register a location whose content must survive {!gc}. *)

val remove_root : man -> t ref -> unit

val add_root_list : man -> t list ref -> unit
(** Register a list of handles that must survive {!gc}.  Under
    {!Compact} the list is rewritten in place with the relocated
    handles, so reading through the ref always yields valid handles. *)

val remove_root_list : man -> t list ref -> unit

val add_root_fn : man -> (unit -> t list) -> unit
(** Register a function producing additional roots at collection time;
    useful for rooting caches whose contents change.  The produced
    handles are marked live but — under {!Compact} — NOT rewritten;
    storage that must stay valid across a compacting collection needs
    a ref, a list ref, or an {!on_remap} hook as well. *)

val on_remap : man -> ((t -> t) -> unit) -> unit
(** Register a hook run at the end of every {!Compact} collection (and
    never under {!Sweep}).  The hook receives the relocation function
    — total on handles that were live at mark time, identity on
    terminals — and must rewrite any raw handles its layer stores
    privately (caches, prepared plans, ...).  Applying it to a handle
    that was not reachable from any root is undefined. *)

val gc : man -> unit
(** Collection from the registered roots, in the manager's {!gc_mode}.
    Never called implicitly during an operation; callers (e.g. the
    Datalog engine) invoke it between rule applications.  The operation
    cache survives collection: only entries whose operands or result
    died are invalidated (and under {!Compact} the survivors are
    rewritten to the new numbering). *)

val gc_mode : man -> gc_mode

(** {2 Resource governance} *)

val set_budget : man -> Budget.t option -> unit
(** Install (or clear) the budget this manager enforces.  Enforcement
    is amortized: the limits are tested on the fresh-allocation slow
    path of the node constructor, once every {!budget_check_interval}
    allocations, so cache-hit lookups pay nothing and a live-node
    limit can be overshot by at most the interval.  With no budget
    installed the only cost is one counter increment per fresh node. *)

val budget : man -> Budget.t option

val allocations : man -> int
(** Total fresh-node allocations since creation (never decreases;
    compare with {!live_nodes}, which GC shrinks).  This is the
    counter [Budget.max_allocations] is compared against. *)

val budget_check_interval : int
(** Allocations between two budget checks (a power of two). *)

val live_nodes : man -> int
(** Currently allocated (live) nodes, terminals excluded. *)

val peak_live_nodes : man -> int
(** High-water mark of {!live_nodes} — the paper's Figure 4 memory
    metric is the peak number of live BDD nodes. *)

val reset_peak : man -> unit
val gc_count : man -> int
val cache_stats : man -> int * int
(** (hits, misses) of the operation cache since creation, summed over
    all operation classes. *)

val cache_stats_by_class : man -> (string * int * int) list
(** Per-operation-class [(name, hits, misses)] counters, in a fixed
    order: and, or, diff, apply-other (xor/imp/biimp), not, ite, exist,
    relprod, replace. *)

val cache_hit_rate : man -> float
(** Overall hit fraction in [0, 1]; 0 if no lookups happened. *)

(** {2 Arena observability}

    Counters for the paged node arena behind the manager: how big the
    table is, how much of it is resident, and how hard the buffer pool
    is working.  On an uncapped manager every page is resident and the
    eviction/spill counters stay 0 forever. *)

type arena_stats = {
  page_bits : int;  (** log2 of node slots per page *)
  pages_total : int;  (** pages ever allocated, resident or spilled *)
  pages_resident : int;
  pages_pinned : int;  (** terminal page, allocation tail, active pins *)
  peak_pages_resident : int;
  evictions : int;
  fault_ins : int;  (** spilled pages brought back on access *)
  spill_reads : int;
  spill_writes : int;
  table_bytes : int;  (** {!table_bytes} at sample time *)
  resident_bytes : int;  (** bytes of node pages currently in memory *)
}

val arena_stats : man -> arena_stats

val table_bytes : man -> int
(** Total node-table bytes: all arena pages (resident and spilled)
    plus the unique-table bucket array.  This is the quantity
    [Budget.max_table_bytes] is checked against — spilled pages count,
    so the byte budget bounds the problem size, while [max_bytes]
    bounds the memory footprint. *)

val to_dot : ?var_name:(int -> string) -> man -> t -> string
(** Graphviz rendering of the DAG: solid edges for high (1) branches,
    dashed for low (0); terminals as boxes.  [var_name] labels the
    decision nodes (default ["x<i>"]). *)

(** {2 Frozen spaces and per-domain evaluation contexts}

    Multicore warm-query serving: {!freeze} snapshots the manager into
    an immutable value that any number of domains may read in parallel,
    and {!eval_ctx} gives one domain a private arena for the fresh
    nodes its queries allocate.  Under {!Sweep} freezing never
    renumbers, so every live handle (a relation root, a cube) denotes
    exactly the same function in the frozen space; under {!Compact}
    the pre-freeze collection renumbers but rewrites every registered
    root, so handles read back from their rooted homes after [freeze]
    are equally valid against the snapshot.  Either way frozen
    evaluation is bit-identical to the live evaluator.  The snapshot
    is always fully resident (spilled pages are faulted in to be
    copied), so ctx reads never touch the buffer pool or the file
    system.

    Ownership rules: a [frozen] is immutable and freely shareable; a
    [ctx] belongs to exactly one domain at a time and must not be used
    concurrently.  Handles returned by ctx operations are meaningful
    only together with that ctx (handles below the frozen base are
    also valid against the frozen space and any other ctx over it).
    No ctx operation writes shared state, takes a lock, or touches the
    originating manager. *)

type frozen
(** An immutable snapshot of a manager: packed node array compacted by
    GC, read-only unique table.

    {b Lifecycle.}  A [frozen] value owns no external resources — it
    is a handful of plain OCaml arrays.  There is no [unfreeze]:
    releasing a snapshot is simply dropping the last reference to it
    (and to every {!ctx} built over it, each of which retains its
    frozen space through {!ctx_frozen}); the GC then reclaims the node
    arrays like any other heap block.  A long-running follower that
    hot-swaps snapshots must therefore (a) {!ctx_dispose} or drop each
    old ctx and (b) drop the old [frozen] — the soak suite pins
    RSS/heap stability across ≥20 such swaps. *)

val freeze : man -> frozen
(** [freeze m] collects [m] (dropping garbage) and snapshots the node
    table.  Handles that were live at freeze time remain valid frozen
    handles; the manager itself stays fully usable afterwards, and its
    later mutations do not affect the snapshot. *)

val frozen_nvars : frozen -> int

val frozen_live_nodes : frozen -> int
(** Live nodes captured by the snapshot (terminals excluded). *)

val frozen_bytes : frozen -> int
(** Heap footprint of the snapshot itself (node pages + hash buckets),
    in bytes — always fully resident; frozen spaces never page. *)

type ctx
(** A per-domain evaluation context over one frozen space: its own
    operation cache and node arena for query-local intermediates,
    disposed wholesale by {!ctx_reset}. *)

val eval_ctx : ?node_hint:int -> ?cache_bits:int -> frozen -> ctx
(** [node_hint] sizes the initial arena (default 4K nodes); the arena
    grows by doubling.  [cache_bits] sizes the ctx operation cache at
    [2^cache_bits] stride-6 entries (default 14). *)

val ctx_frozen : ctx -> frozen

val ctx_reset : ctx -> unit
(** Dispose every node allocated in the ctx since the last reset — the
    per-request wholesale disposal the query daemon relies on.  O(ctx
    live nodes).  Cache entries whose operands and result are all
    frozen survive (repeated warm queries stay cached across
    requests); entries touching disposed ctx nodes are invalidated by
    a generation stamp. *)

val ctx_dispose : ctx -> unit
(** Eager teardown for snapshot hot-swap: {!ctx_reset}, then drop the
    arena and unique table, leaving the ctx retaining only its (shared)
    frozen space and a fixed-size cache.  Once every ctx over an old
    snapshot is disposed and the [frozen] value itself is dropped, the
    whole old space is unreachable and GC-reclaimed.  A disposed ctx
    must not be used again: the first fresh allocation through it
    raises [Failure]. *)

val ctx_set_budget : ctx -> Budget.t option -> unit
(** Per-ctx budget, enforced like {!set_budget}: tested on the ctx's
    fresh-allocation path every {!budget_check_interval} allocations,
    raising {!Limit_exceeded}.  Aborting leaves the ctx consistent;
    {!ctx_reset} reclaims the partial work. *)

val ctx_allocations : ctx -> int
(** Total ctx-local fresh-node allocations since creation (never
    reset; the analogue of {!allocations}). *)

val ctx_live_nodes : ctx -> int
(** Ctx-local nodes allocated since the last {!ctx_reset}. *)

val ctx_cache_stats : ctx -> int * int
(** (hits, misses) of this ctx's operation cache. *)

val ctx_ithvar : ctx -> int -> t
val ctx_nithvar : ctx -> int -> t
val ctx_not : ctx -> t -> t
val ctx_and : ctx -> t -> t -> t
val ctx_or : ctx -> t -> t -> t
val ctx_diff : ctx -> t -> t -> t
val ctx_exist : ctx -> cube:t -> t -> t
val ctx_relprod : ctx -> cube:t -> t -> t -> t
val ctx_cube_of_vars : ctx -> int list -> t
val ctx_const_value : ctx -> bits:int array -> int -> t

val ctx_satcount : ctx -> vars:int array -> t -> float
(** As {!satcount}, against the ctx's view of the space. *)

val ctx_iter_sat : ctx -> vars:int array -> (bool array -> unit) -> t -> unit
(** As {!iter_sat}, against the ctx's view of the space. *)
